// Use Case 1 (data-driven business users): balance latency against cloud
// cost for a recurring batch analytics job.
//
// Full pipeline on the simulated Spark substrate: run the workload under
// sampled configurations, train DNN objective models in the model server,
// compute a Pareto frontier, and recommend configurations under different
// latency-vs-cost preferences. Each recommendation is then "deployed" on the
// simulator to show the measured effect.
//
// Build & run:  ./build/examples/cloud_cost_latency
#include <cstdio>

#include "common/random.h"
#include "spark/engine.h"
#include "tuning/udao.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

int main() {
  using namespace udao;

  // The recurring job: TPCx-BB Q2 (the paper's running example, job id "2").
  SparkEngine engine;
  BatchWorkload workload = MakeTpcxbbWorkload(2);
  std::printf("Workload: %s (%.1f GB input)\n", workload.flow.name().c_str(),
              workload.flow.TotalInputBytes() / 1e9);

  // First run: no models yet, so the job executes with defaults while the
  // model server collects traces in the background (here: an offline
  // sampling pass of 60 configurations).
  const Vector defaults = BatchParamSpace().Defaults();
  const double default_latency = engine.Latency(workload.flow, defaults);
  std::printf("Default configuration: %.1f s at %.0f cores\n\n",
              default_latency, CostInCores(defaults));

  ModelServerConfig server_config;
  server_config.kind = ModelKind::kDnn;
  server_config.dnn.hidden = {48, 48};
  server_config.dnn.train.epochs = 200;
  ModelServer server(server_config);
  Rng rng(2024);
  auto configs = SampleConfigs(BatchParamSpace(), 60,
                               SamplingStrategy::kLatinHypercube, &rng);
  CollectBatchTraces(engine, workload, configs, &server);
  std::printf("Collected %d traces; training DNN models on demand...\n\n",
              server.NumTraces(workload.id, objectives::kLatency));

  // Subsequent runs consult the optimizer.
  Udao optimizer(&server);
  UdaoRequest request;
  request.workload_id = workload.id;
  request.space = &BatchParamSpace();
  request.objectives = {{.name = objectives::kLatency},
                        {.name = objectives::kCostCores}};

  std::printf("%-18s %-12s %-12s %-14s %-12s\n", "preference(w)",
              "pred lat(s)", "pred cores", "meas lat(s)", "meas cores");
  for (const auto& [wl, wc] : std::initializer_list<std::pair<double, double>>{
           {0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}}) {
    request.preference_weights = {wl, wc};
    auto rec = optimizer.Optimize(request);
    if (!rec.ok()) {
      std::printf("optimization failed: %s\n", rec.status().ToString().c_str());
      return 1;
    }
    const double measured = engine.Latency(workload.flow, rec->conf_raw);
    std::printf("(%.1f, %.1f)         %-12.1f %-12.0f %-14.1f %-12.0f\n", wl,
                wc, rec->predicted_objectives[0],
                rec->predicted_objectives[1], measured,
                CostInCores(rec->conf_raw));
  }

  std::printf("\nHigher latency weight -> more cores and lower measured "
              "latency; the frontier lets the business pick its tradeoff.\n");
  return 0;
}
