// Quickstart: multi-objective optimization over hand-crafted models.
//
// Reproduces the paper's running example (TPCx-BB Q2, Fig. 2/3): two
// objectives -- latency and cost in #cores -- over two knobs (#executors,
// #cores per executor), solved with the Progressive Frontier algorithm, then
// a configuration recommended with Utopia-Nearest.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "model/analytic_models.h"
#include "moo/progressive_frontier.h"
#include "moo/recommend.h"
#include "spark/conf.h"

namespace {

// The two relaxed knobs of Fig. 3(f): x1 = #executors in [1,12],
// x2 = #cores/executor in [1,2].
const udao::ParamSpace& Fig3Space() {
  static const udao::ParamSpace& space = *new udao::ParamSpace({
      {"executors", udao::ParamType::kInteger, 1, 12, {}, 4},
      {"cores_per_executor", udao::ParamType::kInteger, 1, 2, {}, 2},
  });
  return space;
}

}  // namespace

int main() {
  using namespace udao;

  // 1. Objective models: latency = max(100, 2400/min(24, x1*x2)) seconds,
  //    cost = min(24, x1*x2) cores (Fig. 3(e)-(f), softened for gradients).
  MooProblem problem(&Fig3Space(),
                     {MooObjective{"latency", MakeFig3LatencyModel()},
                      MooObjective{"cost_cores", MakeFig3CostModel()}});

  // 2. Compute the Pareto frontier with PF-AP (the production default).
  PfConfig config;
  config.parallel = true;
  ProgressiveFrontier pf(&problem, config);
  const PfResult& result = pf.Run(/*total_points=*/10);

  std::printf("Utopia  point: latency %7.1f s, cost %5.1f cores\n",
              result.utopia[0], result.utopia[1]);
  std::printf("Nadir   point: latency %7.1f s, cost %5.1f cores\n\n",
              result.nadir[0], result.nadir[1]);
  std::printf("Pareto frontier (%zu points, %.1f%% uncertain space left, "
              "%d probes):\n",
              result.frontier.size(), result.uncertain_percent,
              result.probes);
  std::printf("  %-12s %-12s %-11s %s\n", "latency(s)", "cost(cores)",
              "executors", "cores/exec");
  for (const MooPoint& p : result.frontier) {
    const Vector raw = Fig3Space().Decode(p.conf_encoded);
    std::printf("  %-12.1f %-12.1f %-11.0f %.0f\n", p.objectives[0],
                p.objectives[1], raw[0], raw[1]);
  }

  // 3. Recommend one configuration from the frontier.
  auto balanced = WeightedUtopiaNearest(result.frontier, result.utopia,
                                        result.nadir, {0.5, 0.5});
  auto latency_first = WeightedUtopiaNearest(result.frontier, result.utopia,
                                             result.nadir, {0.9, 0.1});
  if (balanced.has_value() && latency_first.has_value()) {
    const Vector rb = Fig3Space().Decode(balanced->conf_encoded);
    const Vector rl = Fig3Space().Decode(latency_first->conf_encoded);
    std::printf("\nRecommendation, weights (0.5, 0.5): "
                "%2.0f executors x %1.0f cores -> latency %6.1f s, "
                "cost %4.1f cores\n",
                rb[0], rb[1], balanced->objectives[0],
                balanced->objectives[1]);
    std::printf("Recommendation, weights (0.9, 0.1): "
                "%2.0f executors x %1.0f cores -> latency %6.1f s, "
                "cost %4.1f cores\n",
                rl[0], rl[1], latency_first->objectives[0],
                latency_first->objectives[1]);
  }
  return 0;
}
