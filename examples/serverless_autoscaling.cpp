// Use Case 2 (serverless analytics): a cloud provider auto-scales a
// streaming analytics job as the load changes across the day, asking UDAO
// for a fresh configuration at every load change.
//
// The provider wants low record latency for end users while using as few
// computing units (cores) as possible; at each load level the optimizer is
// re-run with a throughput constraint matching the incoming rate.
//
// Build & run:  ./build/examples/serverless_autoscaling
#include <cstdio>

#include "common/random.h"
#include "spark/streaming.h"
#include "tuning/udao.h"
#include "workload/streambench.h"
#include "workload/trace_gen.h"

int main() {
  using namespace udao;

  StreamEngine engine;
  StreamWorkload workload = MakeStreamWorkload(54);
  std::printf("Serverless workload: %s\n\n", workload.profile.name.c_str());

  // Offline phase: the provider samples the configuration space once and
  // trains models; they are reused for every scaling decision.
  ModelServerConfig server_config;
  server_config.kind = ModelKind::kDnn;
  server_config.dnn.hidden = {48, 48};
  server_config.dnn.train.epochs = 200;
  ModelServer server(server_config);
  Rng rng(7);
  auto configs = SampleConfigs(StreamParamSpace(), 72,
                               SamplingStrategy::kLatinHypercube, &rng);
  CollectStreamTraces(engine, workload, configs, &server);

  UdaoOptions options;
  options.workload_aware = false;  // 3 objectives; plain WUN
  options.frontier_points = 12;
  Udao optimizer(&server, options);

  // A day in the life of a news site: quiet night, morning peak, breaking
  // news spike, evening cool-down (expected load in thousand records/s).
  struct LoadPoint {
    const char* period;
    double load_krps;
  };
  const LoadPoint day[] = {{"02:00 night", 80},    {"07:00 ramp-up", 300},
                           {"09:00 peak", 700},    {"13:00 midday", 400},
                           {"15:30 breaking news", 1000},
                           {"21:00 evening", 200}};

  std::printf("%-22s %-10s %-8s %-14s %-12s\n", "period", "load(k/s)",
              "cores", "latency(s)", "opt time(s)");
  for (const LoadPoint& lp : day) {
    UdaoRequest request;
    request.workload_id = workload.id;
    request.space = &StreamParamSpace();
    // Objectives: minimize record latency, maximize throughput (must at
    // least carry the expected load), minimize cost in cores.
    UdaoRequest::Objective latency{.name = objectives::kLatency};
    UdaoRequest::Objective throughput{.name = objectives::kThroughput,
                                      .minimize = false};
    throughput.lower = lp.load_krps;  // serve at least the incoming rate
    UdaoRequest::Objective cost{.name = objectives::kCostCores};
    request.objectives = {latency, throughput, cost};
    request.preference_weights = {0.4, 0.2, 0.4};

    auto rec = optimizer.Optimize(request);
    if (!rec.ok()) {
      std::printf("%-22s %-10.0f -- no feasible configuration (%s)\n",
                  lp.period, lp.load_krps,
                  rec.status().ToString().c_str());
      continue;
    }
    const StreamConf conf = StreamConf::FromRaw(rec->conf_raw);
    std::printf("%-22s %-10.0f %-8.0f %-14.2f %-12.2f\n", lp.period,
                lp.load_krps, conf.TotalCores(),
                rec->predicted_objectives[0], rec->seconds);
  }

  std::printf("\nComputing units scale with the load while latency stays "
              "bounded -- each decision comes from one optimizer call.\n");
  return 0;
}
