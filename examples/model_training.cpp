// Model-server walkthrough: collect traces from the simulated Spark engine,
// train both model families, and compare their accuracy on held-out
// configurations -- the setup behind the paper's Expt 4/5 (latency error
// rates of ~35% for OtterTune's GP vs ~20% for UDAO's DNN, in weighted mean
// absolute percentage error). OtterTune's GP is handicapped by its workload
// *mapping*: it pads the training set with traces borrowed from the most
// similar past workload, which biases predictions for the target workload;
// UDAO's DNN trains on the target's own traces.
//
// Build & run:  ./build/examples/model_training
#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "model/gp_model.h"
#include "model/mlp_model.h"
#include "spark/engine.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

int main() {
  using namespace udao;

  SparkEngine engine;
  BatchWorkload workload = MakeTpcxbbWorkload(9);
  Rng rng(99);

  // Training set: 64 sampled configurations; test set: 32 fresh ones.
  auto train_confs = SampleConfigs(BatchParamSpace(), 64,
                                   SamplingStrategy::kLatinHypercube, &rng);
  auto test_confs = SampleConfigs(BatchParamSpace(), 32,
                                  SamplingStrategy::kLatinHypercube, &rng);

  const ParamSpace& space = BatchParamSpace();
  std::vector<Vector> x_train;
  Vector y_train;
  for (const Vector& raw : train_confs) {
    x_train.push_back(space.Encode(raw));
    y_train.push_back(engine.Latency(workload.flow, raw));
  }
  std::printf("Trained on %zu traces of workload %s\n", x_train.size(),
              workload.flow.name().c_str());

  // GP model, OtterTune style: own traces plus traces mapped in from a
  // similar-but-different workload (here: the same template at another data
  // scale, which is exactly what metric-distance mapping tends to pick).
  BatchWorkload mapped = MakeTpcxbbWorkload(9 + 6 * 30);
  std::vector<Vector> x_gp = x_train;
  Vector y_gp = y_train;
  for (const Vector& raw : train_confs) {
    x_gp.push_back(space.Encode(raw));
    y_gp.push_back(engine.Latency(mapped.flow, raw));
  }
  GpConfig gp_config;
  auto gp = GpModel::Fit(Matrix::FromRows(x_gp), y_gp, gp_config);
  if (!gp.ok()) {
    std::printf("GP training failed: %s\n", gp.status().ToString().c_str());
    return 1;
  }

  // DNN model (UDAO's family).
  MlpModelConfig dnn_config;
  dnn_config.hidden = {64, 64};
  dnn_config.train.epochs = 800;
  auto dnn = MlpModel::Fit(Matrix::FromRows(x_train), y_train, dnn_config,
                           &rng);
  if (!dnn.ok()) {
    std::printf("DNN training failed: %s\n", dnn.status().ToString().c_str());
    return 1;
  }

  // Held-out accuracy (weighted MAPE, as in Expt 5).
  std::vector<double> actual;
  std::vector<double> gp_pred;
  std::vector<double> dnn_pred;
  for (const Vector& raw : test_confs) {
    actual.push_back(engine.Latency(workload.flow, raw));
    const Vector enc = space.Encode(raw);
    gp_pred.push_back((*gp)->Predict(enc));
    dnn_pred.push_back((*dnn)->Predict(enc));
  }
  std::printf("\nHeld-out weighted MAPE on latency:\n");
  std::printf("  GP  model (with workload mapping): %5.1f%%\n",
              100.0 * WeightedMape(actual, gp_pred));
  std::printf("  DNN model (own traces only):       %5.1f%%\n",
              100.0 * WeightedMape(actual, dnn_pred));

  // Uncertainty: both families report predictive stddev, which the MOGD
  // solver uses for conservative optimization (F~ = E[F] + alpha std[F]).
  const Vector probe = space.Encode(space.Defaults());
  double mean = 0.0;
  double stddev = 0.0;
  (*gp)->PredictWithUncertainty(probe, &mean, &stddev);
  std::printf("\nAt the default configuration:\n");
  std::printf("  GP : %.1f s +/- %.1f s\n", mean, stddev);
  (*dnn)->PredictWithUncertainty(probe, &mean, &stddev);
  std::printf("  DNN: %.1f s +/- %.1f s (MC dropout)\n", mean, stddev);
  std::printf("  simulator ground truth: %.1f s\n",
              engine.Latency(workload.flow, space.Defaults()));
  return 0;
}
