// Pipeline tuning: the paper's future-work extension ("support a pipeline of
// analytic tasks"), implemented over the simulated substrate.
//
// A three-stage nightly pipeline -- ETL (SQL), feature extraction (UDF), and
// model training (ML) -- is optimized end to end over additive objectives
// (latency in seconds, cost in CPU-hours). Each stage gets its own Pareto
// frontier; the composed pipeline frontier decomposes every trade-off point
// back into one configuration per stage.
//
// Build & run:  ./build/examples/pipeline_tuning
#include <cstdio>

#include "common/random.h"
#include "model/analytic_models.h"
#include "spark/engine.h"
#include "tuning/pipeline.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

int main() {
  using namespace udao;

  SparkEngine engine;
  // Stage workloads: template 10 (SQL scan/aggregate), template 16 (UDF
  // join), template 27 (ML training).
  const int stage_jobs[] = {10, 16, 27};
  const char* stage_names[] = {"etl", "features", "train"};

  // Per-stage problems over (latency, CPU-hour): both objectives add up
  // across sequential stages. Latency models are DNNs trained on traces;
  // CPU-hour = latency * cores / 3600 composes the learned latency model
  // with the exact cores function.
  std::vector<std::unique_ptr<ModelServer>> servers;
  std::vector<std::unique_ptr<MooProblem>> problems;
  std::vector<BatchWorkload> workloads;
  for (int job : stage_jobs) {
    workloads.push_back(MakeTpcxbbWorkload(job));
    auto server = std::make_unique<ModelServer>();
    Rng rng(100 + job);
    auto configs = SampleConfigs(BatchParamSpace(), 100,
                                 SamplingStrategy::kLatinHypercube, &rng);
    CollectBatchTraces(engine, workloads.back(), configs, server.get());
    auto latency = server->GetModel(workloads.back().id, objectives::kLatency);
    if (!latency.ok()) {
      std::printf("training failed: %s\n",
                  latency.status().ToString().c_str());
      return 1;
    }
    auto floored = std::make_shared<NonNegativeModel>(*latency);
    problems.push_back(std::make_unique<MooProblem>(
        &BatchParamSpace(),
        std::vector<MooObjective>{
            MooObjective{objectives::kLatency, floored},
            MooObjective{objectives::kCostCpuHour,
                         MakeCpuHourModel(floored)}}));
    servers.push_back(std::move(server));
  }

  std::vector<PipelineStage> stages;
  for (size_t i = 0; i < problems.size(); ++i) {
    stages.push_back(PipelineStage{stage_names[i], problems[i].get()});
  }

  PipelineOptions options;
  options.points_per_stage = 10;
  PipelineOptimizer optimizer(options);
  auto result = optimizer.Optimize(stages);
  if (!result.ok()) {
    std::printf("pipeline optimization failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  std::printf("pipeline frontier: %zu points (stage frontiers:",
              result->frontier.size());
  for (int s : result->stage_frontier_sizes) std::printf(" %d", s);
  std::printf(")\n");
  std::printf("pipeline latency range [%.1f, %.1f] s, cost range "
              "[%.3f, %.3f] CPU-hours\n\n",
              result->utopia[0], result->nadir[0], result->utopia[1],
              result->nadir[1]);

  for (const auto& [wl, wc] : std::initializer_list<std::pair<double, double>>{
           {0.5, 0.5}, {0.9, 0.1}}) {
    auto choice = PipelineOptimizer::Recommend(*result, {wl, wc});
    if (!choice.has_value()) continue;
    std::printf("weights (%.1f, %.1f): predicted pipeline latency %.1f s, "
                "cost %.3f CPU-hours\n",
                wl, wc, choice->objectives[0], choice->objectives[1]);
    double measured_total = 0;
    for (size_t s = 0; s < stages.size(); ++s) {
      const Vector raw =
          BatchParamSpace().Decode(choice->stage_confs_encoded[s]);
      const SparkConf conf = SparkConf::FromRaw(raw);
      const double measured = engine.Latency(workloads[s].flow, raw);
      measured_total += measured;
      std::printf("  stage %-9s -> %2.0f executors x %1.0f cores "
                  "(measured %.1f s)\n",
                  stage_names[s], conf.executor_instances,
                  conf.executor_cores, measured);
    }
    std::printf("  measured pipeline latency: %.1f s\n\n", measured_total);
  }
  std::printf("One preference vector picks a coherent per-stage plan; "
              "shifting it re-balances every stage at once.\n");
  return 0;
}
