#include <gtest/gtest.h>

#include <cmath>

#include "moo/exhaustive.h"
#include "moo/progressive_frontier.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConcaveProblem;
using testing_problems::ConvexProblem;
using testing_problems::Tri;

ThreadPool* SharedPool() {
  static ThreadPool pool(4);
  return &pool;
}

PfConfig FastSequential() {
  PfConfig cfg;
  cfg.mogd.multistart = 4;
  cfg.mogd.max_iters = 120;
  return cfg;
}

PfConfig FastParallel() {
  PfConfig cfg = FastSequential();
  cfg.parallel = true;
  cfg.mogd.pool = SharedPool();
  return cfg;
}

TEST(PfTest, FrontierIsMutuallyNonDominated) {
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(10);
  EXPECT_GE(result.frontier.size(), 5u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
}

TEST(PfTest, UtopiaAndNadirBracketTheFrontier) {
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(8);
  for (const MooPoint& p : result.frontier) {
    for (size_t j = 0; j < p.objectives.size(); ++j) {
      EXPECT_GE(p.objectives[j], result.utopia[j] - 0.05);
      EXPECT_LE(p.objectives[j], result.nadir[j] + 0.05);
    }
  }
}

TEST(PfTest, PointsLieNearTrueFrontier) {
  // True frontier of ConvexProblem: F2 = (1 - F1)^2 with x1 = 0.
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(12);
  for (const MooPoint& p : result.frontier) {
    const double expected_f2 = (1.0 - p.objectives[0]) * (1.0 - p.objectives[0]);
    EXPECT_NEAR(p.objectives[1], expected_f2, 0.05)
        << "F1=" << p.objectives[0];
  }
}

TEST(PfTest, UncertainSpaceShrinksMonotonically) {
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(15);
  double prev = 100.0;
  for (const PfSnapshot& snap : result.history) {
    EXPECT_LE(snap.uncertain_percent, prev + 1e-9);
    prev = snap.uncertain_percent;
  }
  EXPECT_LT(result.uncertain_percent, 40.0);
}

TEST(PfTest, IncrementalExpansionIsConsistent) {
  // The paper's consistency property: points found with a small budget
  // remain in the frontier computed with a larger budget.
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  std::vector<MooPoint> small = pf.Run(6).frontier;
  const PfResult& big = pf.Run(14);
  EXPECT_GE(big.frontier.size(), small.size());
  for (const MooPoint& p : small) {
    bool found = false;
    for (const MooPoint& q : big.frontier) {
      if (q.objectives == p.objectives) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "point lost during expansion";
  }
}

TEST(PfTest, IncrementalInsertMatchesBatchParetoFilter) {
  // AddPoint maintains the frontier with a single-pass insert; re-filtering
  // the final frontier with the batch ParetoFilter must be a no-op (same
  // points, same order): the incremental path never leaves a dominated point
  // behind nor reorders survivors.
  for (const bool parallel : {false, true}) {
    MooProblem problem = ConvexProblem();
    ProgressiveFrontier pf(&problem,
                           parallel ? FastParallel() : FastSequential());
    const PfResult& result = pf.Run(12);
    ASSERT_GE(result.frontier.size(), 5u);
    const std::vector<MooPoint> refiltered = ParetoFilter(result.frontier);
    ASSERT_EQ(refiltered.size(), result.frontier.size());
    for (size_t i = 0; i < refiltered.size(); ++i) {
      EXPECT_EQ(refiltered[i].objectives, result.frontier[i].objectives);
      EXPECT_EQ(refiltered[i].conf_encoded, result.frontier[i].conf_encoded);
    }
  }
}

TEST(PfTest, ParallelVariantCoversFrontier) {
  MooProblem problem = ConvexProblem();
  ProgressiveFrontier pf(&problem, FastParallel());
  const PfResult& result = pf.Run(12);
  EXPECT_GE(result.frontier.size(), 8u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  EXPECT_LT(result.uncertain_percent, 40.0);
}

TEST(PfTest, HandlesConcaveFrontier) {
  // Weighted-sum methods miss concave frontiers; PF must not.
  MooProblem problem = ConcaveProblem();
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(12);
  // Expect interior points (F1 well inside (0,1)) on the concave frontier.
  int interior = 0;
  for (const MooPoint& p : result.frontier) {
    if (p.objectives[0] > 0.15 && p.objectives[0] < 0.85) ++interior;
  }
  EXPECT_GE(interior, 3);
}

TEST(PfTest, ThreeObjectives) {
  MooProblem problem = Tri();
  PfConfig cfg = FastParallel();
  ProgressiveFrontier pf(&problem, cfg);
  const PfResult& result = pf.Run(10);
  EXPECT_GE(result.frontier.size(), 6u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  EXPECT_EQ(result.utopia.size(), 3u);
}

TEST(PfTest, ExhaustiveSolverVariantMatchesMogdFrontier) {
  MooProblem problem = ConvexProblem();
  PfConfig cfg;
  cfg.use_exhaustive = true;
  cfg.exhaustive_budget = 3000;
  ProgressiveFrontier pf(&problem, cfg);
  const PfResult& result = pf.Run(8);
  EXPECT_GE(result.frontier.size(), 5u);
  for (const MooPoint& p : result.frontier) {
    const double expected_f2 = (1.0 - p.objectives[0]) * (1.0 - p.objectives[0]);
    EXPECT_NEAR(p.objectives[1], expected_f2, 0.1);
  }
}

TEST(PfTest, UserConstraintsRestrictTheFrontier) {
  auto f1 = std::make_shared<CallableModel>(
      "f1", 2, [](const Vector& x) { return x[0] + x[1]; });
  auto f2 = std::make_shared<CallableModel>("f2", 2, [](const Vector& x) {
    return (1.0 - x[0]) * (1.0 - x[0]) + x[1];
  });
  MooObjective o1{"f1", f1};
  o1.lower = 0.3;
  o1.upper = 0.7;
  MooObjective o2{"f2", f2};
  MooProblem problem(&testing_problems::UnitSpace2(), {o1, o2});
  ProgressiveFrontier pf(&problem, FastSequential());
  const PfResult& result = pf.Run(8);
  for (const MooPoint& p : result.frontier) {
    EXPECT_GE(p.objectives[0], 0.3 - 0.02);
    EXPECT_LE(p.objectives[0], 0.7 + 0.02);
  }
}

TEST(PfTest, FourObjectivesUseQmcHypervolume) {
  // k = 4 exercises the generic 2^k splitting and the QMC hypervolume path.
  auto f1 = std::make_shared<CallableModel>(
      "f1", 2, [](const Vector& x) { return x[0]; });
  auto f2 = std::make_shared<CallableModel>(
      "f2", 2, [](const Vector& x) { return x[1]; });
  auto f3 = std::make_shared<CallableModel>("f3", 2, [](const Vector& x) {
    return (1 - x[0]) * (1 - x[0]);
  });
  auto f4 = std::make_shared<CallableModel>("f4", 2, [](const Vector& x) {
    return (1 - x[1]) * (1 - x[1]);
  });
  MooProblem problem(&testing_problems::UnitSpace2(),
                     {MooObjective{"f1", f1}, MooObjective{"f2", f2},
                      MooObjective{"f3", f3}, MooObjective{"f4", f4}});
  PfConfig cfg = FastSequential();
  cfg.max_probes = 60;
  ProgressiveFrontier pf(&problem, cfg);
  const PfResult& result = pf.Run(8);
  EXPECT_GE(result.frontier.size(), 4u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  EXPECT_EQ(result.utopia.size(), 4u);
  EXPECT_LE(result.uncertain_percent, 100.0);
}

TEST(PfTest, FifoOrderStillFindsValidFrontier) {
  MooProblem problem = ConvexProblem();
  PfConfig cfg = FastSequential();
  cfg.fifo_queue = true;
  ProgressiveFrontier pf(&problem, cfg);
  const PfResult& result = pf.Run(10);
  EXPECT_GE(result.frontier.size(), 5u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
}

// Property: every PF frontier point is (close to) non-dominated with respect
// to a dense exhaustive reference frontier.
class PfGroundTruthProperty : public ::testing::TestWithParam<int> {};

TEST_P(PfGroundTruthProperty, NoPointFarBehindTrueFrontier) {
  MooProblem problem =
      GetParam() % 2 == 0 ? ConvexProblem() : ConcaveProblem();
  PfConfig cfg = FastSequential();
  cfg.mogd.seed = 100 + GetParam();
  ProgressiveFrontier pf(&problem, cfg);
  const PfResult& result = pf.Run(10);
  ExhaustiveSolver ex(5000);
  std::vector<MooPoint> truth = ex.Frontier(problem);
  for (const MooPoint& p : result.frontier) {
    // Distance from p to the closest true frontier point must be small.
    double best = 1e100;
    for (const MooPoint& t : truth) {
      best = std::min(best, SquaredDistance(p.objectives, t.objectives));
    }
    EXPECT_LT(std::sqrt(best), 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfGroundTruthProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace udao
