// Concurrency stress tests, written to be run under ThreadSanitizer
// (-DCMAKE_BUILD_TYPE=Tsan; tools/check.sh builds and runs them there).
// They also pass in normal builds, where they still catch deadlocks and
// lost-wakeup bugs via the aggressive interleavings below.
//
// Raw std::thread is used deliberately here (the udao_lint raw-thread rule
// covers src/ only): the point is to attack the pool and the solvers from
// *outside* threads the way concurrent request handlers would.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "json_lite.h"
#include "model/model_server.h"
#include "nn/kernels.h"
#include "nn/mlp.h"
#include "moo/mogd.h"
#include "serving/udao_service.h"
#include "spark/metrics.h"
#include "test_problems.h"

namespace udao {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(RaceStressTest, SubmitWaitIdleParallelForInterleave) {
  ThreadPool pool(4);
  std::atomic<int> submitted_work{0};
  std::atomic<int> parallel_work{0};

  std::vector<std::thread> attackers;
  // Two submitters pushing independent task streams.
  for (int t = 0; t < 2; ++t) {
    attackers.emplace_back([&pool, &submitted_work] {
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&submitted_work] {
          submitted_work.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  // One thread running ParallelFor rounds concurrently with the submitters.
  attackers.emplace_back([&pool, &parallel_work] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(16, [&parallel_work](int) {
        parallel_work.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  // Two threads hammering WaitIdle the whole time.
  for (int t = 0; t < 2; ++t) {
    attackers.emplace_back([&pool] {
      for (int i = 0; i < 50; ++i) pool.WaitIdle();
    });
  }
  for (std::thread& t : attackers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(submitted_work.load(), 400);
  EXPECT_EQ(parallel_work.load(), 20 * 16);
}

TEST(RaceStressTest, ConcurrentWaitIdleBothObserveCompletion) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> waiters;
  std::atomic<int> observed_incomplete{0};
  for (int t = 0; t < 4; ++t) {
    waiters.emplace_back([&pool, &done, &observed_incomplete] {
      pool.WaitIdle();
      if (done.load() != 64) observed_incomplete.fetch_add(1);
    });
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(observed_incomplete.load(), 0);
}

TEST(RaceStressTest, TasksSubmittingTasksDuringShutdownAllRun) {
  // A task that chains follow-up work while the destructor is draining: the
  // whole chain must run before destruction completes.
  std::atomic<int> chain{0};
  {
    // `link` outlives the pool: worker-held copies call pool.Submit(link)
    // while the destructor drains, so it must still be alive then.
    std::function<void()> link;
    ThreadPool pool(2);
    link = [&] {
      if (chain.fetch_add(1) < 40) pool.Submit(link);
    };
    for (int i = 0; i < 4; ++i) pool.Submit(link);
    // Destructor starts immediately; submissions race against shutdown.
  }
  EXPECT_GE(chain.load(), 41);
}

// ------------------------------------------------------------- MogdSolver

// Concurrent SolveBatch calls on one shared pool must neither race nor
// change results: every caller gets the same bitwise answer the solver
// produces single-threaded.
TEST(RaceStressTest, ConcurrentSolveBatchOnSharedPoolIsDeterministic) {
  MooProblem problem = testing_problems::ConvexProblem();
  ThreadPool pool(4);
  MogdConfig config;
  config.multistart = 4;
  config.max_iters = 30;
  config.pool = &pool;
  MogdSolver solver(config);

  std::vector<CoProblem> cos(6);
  for (int i = 0; i < 6; ++i) {
    cos[i].target = i % 2;
    cos[i].lower = {0.0, 0.0};
    cos[i].upper = {0.5 + 0.3 * i, 2.0};
  }
  const std::vector<std::optional<CoResult>> baseline =
      solver.SolveBatch(problem, cos);

  constexpr int kCallers = 4;
  std::vector<std::vector<std::optional<CoResult>>> results(kCallers);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] { results[t] = solver.SolveBatch(problem, cos); });
  }
  for (std::thread& t : callers) t.join();

  for (int t = 0; t < kCallers; ++t) {
    ASSERT_EQ(results[t].size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_EQ(results[t][i].has_value(), baseline[i].has_value());
      if (!baseline[i].has_value()) continue;
      EXPECT_EQ(results[t][i]->x, baseline[i]->x) << "caller " << t;
      EXPECT_EQ(results[t][i]->objectives, baseline[i]->objectives);
      EXPECT_EQ(results[t][i]->target_value, baseline[i]->target_value);
    }
  }
}

// ------------------------------------------------------------- ModelServer

TEST(RaceStressTest, ConcurrentModelServerLookupsAndIngest) {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kGp;
  cfg.gp.hyper_opt_steps = 5;
  cfg.retrain_threshold = 8;
  ModelServer server(cfg);

  Rng rng(3);
  auto trace = [&rng] {
    Vector x(4);
    for (double& v : x) v = rng.Uniform();
    return x;
  };
  for (int i = 0; i < 16; ++i) {
    server.Ingest("w", "latency", trace(), 1.0 + rng.Uniform());
    server.Ingest("w", "cost", trace(), 2.0 + rng.Uniform());
  }

  std::atomic<int> model_failures{0};
  std::vector<std::thread> clients;
  // Readers: repeated GetModel on both objectives (exercises the lazy
  // retrain path concurrently with ingestion).
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&server, &model_failures, t] {
      const std::string objective = (t % 2 == 0) ? "latency" : "cost";
      for (int i = 0; i < 25; ++i) {
        auto model = server.GetModel("w", objective);
        if (!model.ok() || *model == nullptr) model_failures.fetch_add(1);
      }
    });
  }
  // Writer: keeps ingesting traces (tripping retrains) while readers query.
  clients.emplace_back([&server] {
    Rng wrng(11);
    for (int i = 0; i < 40; ++i) {
      Vector x(4);
      for (double& v : x) v = wrng.Uniform();
      server.Ingest("w", "latency", x, 1.0 + wrng.Uniform());
    }
  });
  // Metadata reader + metrics writer.
  clients.emplace_back([&server] {
    for (int i = 0; i < 40; ++i) {
      (void)server.HasTraces("w", "latency");
      (void)server.NumTraces("w", "cost");
      RuntimeMetrics m;
      m.latency_s = 1.0 + i;
      server.IngestMetrics("w", m);
      (void)server.MeanMetrics("w");
      (void)server.WorkloadsWithMetrics();
    }
  });
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(model_failures.load(), 0);
  auto final_model = server.GetModel("w", "latency");
  ASSERT_TRUE(final_model.ok());
  EXPECT_EQ(server.NumTraces("w", "latency"), 56);
}

// The DNN path is the one where "handed-out models are immutable snapshots"
// is easiest to break: a small trace update fine-tunes network weights, and
// doing that in place would race with (and silently change) every handle a
// caller already holds. Readers here retain a handle and keep calling
// Predict on it while a writer ingests enough traces to trip fine-tunes and
// other readers pull fresh models; the retained handle must keep returning
// the bitwise-identical prediction throughout.
TEST(RaceStressTest, DnnFineTuneLeavesRetainedHandlesUntouched) {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kDnn;
  cfg.dnn.hidden = {8};
  cfg.dnn.train.epochs = 20;
  cfg.retrain_threshold = 1 << 20;  // Only the initial train is full.
  cfg.finetune_threshold = 4;
  cfg.finetune_epochs = 5;
  ModelServer server(cfg);

  Rng rng(17);
  auto trace = [&rng] {
    Vector x(4);
    for (double& v : x) v = rng.Uniform();
    return x;
  };
  for (int i = 0; i < 8; ++i) {
    server.Ingest("w", "latency", trace(), 1.0 + rng.Uniform());
  }

  auto initial = server.GetModel("w", "latency");
  ASSERT_TRUE(initial.ok());
  const std::shared_ptr<const ObjectiveModel> retained = *initial;
  const Vector probe = trace();
  const double baseline = retained->Predict(probe);

  std::atomic<int> drift{0};
  std::atomic<int> model_failures{0};
  std::vector<std::thread> clients;
  // Retained-handle readers: the snapshot they hold must never move.
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&retained, &probe, baseline, &drift] {
      for (int i = 0; i < 200; ++i) {
        if (retained->Predict(probe) != baseline) drift.fetch_add(1);
      }
    });
  }
  // Fresh-model readers: GetModel trips the fine-tune policy, and the model
  // it returns is predicted from immediately (as MOGD would).
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&server, &probe, &model_failures] {
      for (int i = 0; i < 25; ++i) {
        auto model = server.GetModel("w", "latency");
        if (!model.ok() || *model == nullptr) {
          model_failures.fetch_add(1);
          continue;
        }
        (void)(*model)->Predict(probe);
      }
    });
  }
  // Writer: keeps crossing finetune_threshold while readers run.
  clients.emplace_back([&server] {
    Rng wrng(23);
    for (int i = 0; i < 40; ++i) {
      Vector x(4);
      for (double& v : x) v = wrng.Uniform();
      server.Ingest("w", "latency", x, 1.0 + wrng.Uniform());
    }
  });
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(model_failures.load(), 0);
  EXPECT_EQ(drift.load(), 0);
  EXPECT_EQ(retained->Predict(probe), baseline);
  // The served model did move on from the snapshot: at least one fine-tune
  // ran (40 ingests over threshold 4), so a fresh GetModel returns a
  // different object than the retained handle.
  auto final_model = server.GetModel("w", "latency");
  ASSERT_TRUE(final_model.ok());
  EXPECT_NE(final_model->get(), retained.get());
}

// ------------------------------------------------------------- UdaoService

// Client threads hammer the serving layer's synchronous Optimize while an
// ingest thread keeps bumping the workload generation: cache lookups,
// inserts, LRU touches, and generation-based invalidations all race here.
// Every request must still come back with a valid recommendation (the
// frontier is recomputed, never served stale or half-built).
TEST(RaceStressTest, ConcurrentServiceOptimizeVsIngest) {
  ModelServer server;
  UdaoServiceConfig cfg;
  cfg.udao.pf.mogd.multistart = 2;
  cfg.udao.pf.mogd.max_iters = 20;
  cfg.udao.solver_threads = 2;
  cfg.udao.frontier_points = 5;
  cfg.admission_threads = 3;
  UdaoService service(&server, cfg);

  // Explicit models shared by every request, so cache keys collide by
  // design and the threads contend on one entry.
  const MooProblem problem = testing_problems::ConvexProblem();
  auto make_request = [&problem](int i) {
    UdaoRequest request;
    request.workload_id = "w";
    request.space = &testing_problems::UnitSpace2();
    request.objectives = {problem.objective(0), problem.objective(1)};
    const double wl = 0.1 + 0.2 * (i % 5);
    request.preference_weights = {wl, 1.0 - wl};
    return request;
  };

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> failures{0};
  std::atomic<int> empty_frontiers{0};
  std::atomic<bool> stop_ingest{false};
  std::vector<std::thread> attackers;
  for (int t = 0; t < kClients; ++t) {
    attackers.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto rec = service.Submit(make_request(kRequestsPerClient * t + i)).Wait();
        if (!rec.ok()) {
          failures.fetch_add(1);
        } else if (rec->frontier.frontier.empty()) {
          empty_frontiers.fetch_add(1);
        }
      }
    });
  }
  attackers.emplace_back([&] {
    Rng wrng(29);
    while (!stop_ingest.load(std::memory_order_relaxed)) {
      server.Ingest("w", "f1", {wrng.Uniform(), wrng.Uniform()},
                    1.0 + wrng.Uniform());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (int t = 0; t < kClients; ++t) attackers[t].join();
  stop_ingest.store(true);
  attackers.back().join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(empty_frontiers.load(), 0);
  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, kClients * kRequestsPerClient);
  EXPECT_EQ(s.cache_hits + s.cache_misses, kClients * kRequestsPerClient);
  EXPECT_GE(s.cache_misses, 1);
  EXPECT_EQ(s.errors, 0);
}

// Destroying the service while submitted requests are still queued and
// running: the destructor's pool drain has tasks locking the cache mutex and
// bumping the stats atomics, so those members must outlive the pool
// (admission_ is deliberately the last-declared member). TSan/ASan catch any
// regression as lock-of-destroyed-mutex / use-after-free.
TEST(RaceStressTest, ServiceDestructionWithInflightRequests) {
  for (int round = 0; round < 4; ++round) {
    ModelServer server;
    UdaoServiceConfig cfg;
    cfg.udao.pf.mogd.multistart = 2;
    cfg.udao.pf.mogd.max_iters = 20;
    cfg.udao.solver_threads = 2;
    cfg.udao.frontier_points = 4;
    cfg.admission_threads = 3;

    const MooProblem problem = testing_problems::ConvexProblem();
    std::atomic<int> delivered{0};
    constexpr int kRequests = 12;
    auto make_request = [&problem](int i) {
      UdaoRequest request;
      request.workload_id = "w";
      request.space = &testing_problems::UnitSpace2();
      request.objectives = {problem.objective(0), problem.objective(1)};
      // Vary a constraint so some requests rebuild the frontier while
      // others hit/evict concurrently with the drain.
      request.objectives[0].upper = 10.0 - 0.5 * (i % 3);
      return request;
    };
    std::vector<RequestTicket> tickets;
    tickets.reserve(kRequests);
    {
      UdaoService service(&server, cfg);
      // Prime the cache synchronously so the service destructor frees real
      // heap (map nodes, LRU strings, bucket arrays); draining lookups would
      // read that freed memory if destruction order regressed.
      ASSERT_TRUE(service.Submit(make_request(0)).Wait().ok());
      for (int i = 0; i < kRequests; ++i) {
        tickets.push_back(service.Submit(make_request(i)));
      }
    }  // destructor drains while requests are in flight
    // Tickets outlive the service: the drain delivered every result.
    for (RequestTicket& ticket : tickets) {
      if (ticket.Wait().ok()) delivered.fetch_add(1);
    }
    EXPECT_EQ(delivered.load(), kRequests);
  }
}

// Cancellation racing completion: a batch of async requests shares one
// CancellationSource, and a separate thread fires Cancel() while they are in
// every possible state -- queued, mid-solve, already finished. TSan attacks
// the token's atomic against the solver loops' reads; in any build, every
// request must resolve exactly once into either a valid frontier or an
// explicit DeadlineExceeded -- a cancelled request never hangs and never
// reports success with an empty frontier.
TEST(RaceStressTest, CancellationRacingCompletion) {
  ModelServer server;
  UdaoServiceConfig cfg;
  cfg.udao.pf.mogd.multistart = 2;
  cfg.udao.pf.mogd.max_iters = 30;
  cfg.udao.solver_threads = 2;
  cfg.udao.frontier_points = 6;
  cfg.admission_threads = 2;
  cfg.frontier_cache_capacity = 0;  // every request really runs the solver

  const MooProblem problem = testing_problems::ConvexProblem();
  constexpr int kRequests = 12;
  std::atomic<int> delivered{0};
  std::atomic<int> bad_responses{0};
  CancellationSource source;
  std::vector<RequestTicket> tickets;
  tickets.reserve(kRequests);
  {
    UdaoService service(&server, cfg);
    for (int i = 0; i < kRequests; ++i) {
      UdaoRequest request;
      request.workload_id = "w";
      request.space = &testing_problems::UnitSpace2();
      request.objectives = {problem.objective(0), problem.objective(1)};
      request.objectives[0].upper = 10.0 - 0.25 * i;  // distinct keys
      request.options.cancel = source.token();
      tickets.push_back(service.Submit(request));
    }
    std::thread canceller([&source] { source.Cancel(); });
    canceller.join();
  }  // destructor drains whatever the cancellation did not cut short
  for (RequestTicket& ticket : tickets) {
    StatusOr<UdaoRecommendation> r = ticket.Wait();
    const bool valid_success = r.ok() && !r->frontier.frontier.empty();
    const bool explicit_stop =
        !r.ok() && r.status().code() == StatusCode::kDeadlineExceeded;
    if (!valid_success && !explicit_stop) bad_responses.fetch_add(1);
    delivered.fetch_add(1);
  }
  EXPECT_EQ(delivered.load(), kRequests);
  EXPECT_EQ(bad_responses.load(), 0);
}

// The unified Submit() surface under fire: client threads submit tickets
// (some through the coalescer's fused path, some cancelled mid-flight via
// RequestTicket::Cancel) while an ingest thread churns the workload's
// generation, forcing invalidation/recompute races in the sharded cache.
// TSan attacks the lock-free snapshot reads, the coalescer window, and the
// ticket state; in any build every ticket must resolve exactly once into a
// valid frontier or an explicit DeadlineExceeded.
TEST(RaceStressTest, ConcurrentSubmitCancelAndIngest) {
  ModelServer server;
  UdaoServiceConfig cfg;
  cfg.udao.pf.mogd.multistart = 2;
  cfg.udao.pf.mogd.max_iters = 30;
  cfg.udao.solver_threads = 2;
  cfg.udao.frontier_points = 6;
  cfg.admission_threads = 3;
  cfg.coalesce_max_wait_us = 500.0;  // wide-ish window: force real fusion

  const MooProblem problem = testing_problems::ConvexProblem();
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::atomic<int> bad_responses{0};
  std::atomic<bool> stop_ingest{false};
  {
    UdaoService service(&server, cfg);
    std::thread ingester([&] {
      int i = 0;
      while (!stop_ingest.load(std::memory_order_acquire)) {
        const double v = 0.25 + 0.5 * ((i % 3) / 2.0);
        (void)server.Ingest("w", "f1", {v, 1.0 - v}, 1.0 + v);
        ++i;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          UdaoRequest request;
          request.workload_id = "w";
          request.space = &testing_problems::UnitSpace2();
          request.objectives = {problem.objective(0), problem.objective(1)};
          // Few distinct keys across clients: hits, misses, invalidations,
          // and coalesced recomputes all genuinely interleave.
          request.objectives[0].upper = 10.0 - 0.5 * (i % 3);
          RequestTicket ticket = service.Submit(request);
          if ((c + i) % 3 == 0) ticket.Cancel();
          const auto r = ticket.Wait();
          const bool valid_success = r.ok() && !r->frontier.frontier.empty();
          const bool explicit_stop =
              !r.ok() &&
              r.status().code() == StatusCode::kDeadlineExceeded;
          if (!valid_success && !explicit_stop) bad_responses.fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    stop_ingest.store(true, std::memory_order_release);
    ingester.join();
  }
  EXPECT_EQ(bad_responses.load(), 0);
}

// --------------------------------------------------------- MetricsRegistry

// Writers on all three metric kinds (some sharing names across threads, so
// stripes genuinely contend) race against SnapshotJson/Counters readers and
// a Reset. Under TSan this attacks the lock striping; in normal builds it
// still validates that a snapshot taken mid-insert parses as a consistent
// document and that non-reset counts add up.
TEST(RaceStressTest, MetricsWritersVsSnapshotReaders) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 400;
  std::vector<std::thread> attackers;
  for (int t = 0; t < kWriters; ++t) {
    attackers.emplace_back([&reg, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        reg.AddCounter("udao.race.shared");
        reg.AddCounter("udao.race.counter." + std::to_string(t));
        reg.SetGauge("udao.race.gauge." + std::to_string(i % 8),
                     static_cast<double>(i));
        reg.Observe("udao.race.hist", static_cast<double>(i % 100));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad_snapshots{0};
  for (int t = 0; t < 2; ++t) {
    attackers.emplace_back([&reg, &stop, &bad_snapshots] {
      while (!stop.load(std::memory_order_relaxed)) {
        // The snapshot must always parse as a complete JSON object, even
        // while writers are mid-flight.
        bool ok = false;
        (void)testing::ParseJson(reg.SnapshotJson(), &ok);
        if (!ok) bad_snapshots.fetch_add(1);
        (void)reg.Counters();
        (void)reg.HistogramValue("udao.race.hist");
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) attackers[t].join();
  stop.store(true);
  for (size_t t = kWriters; t < attackers.size(); ++t) attackers[t].join();

  EXPECT_EQ(bad_snapshots.load(), 0);
  EXPECT_EQ(reg.CounterValue("udao.race.shared"), kWriters * kOpsPerWriter);
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(reg.CounterValue("udao.race.counter." + std::to_string(t)),
              kOpsPerWriter);
  }
  EXPECT_EQ(reg.HistogramValue("udao.race.hist").count,
            kWriters * kOpsPerWriter);

  // Reset racing against late readers must leave an empty, parseable state.
  reg.Reset();
  EXPECT_TRUE(reg.Counters().empty());
}

// TraceSpan trees assembled on racing threads: each thread builds its own
// nested tree, so RecordTrace and the span histograms contend but the trees
// themselves never interleave.
TEST(RaceStressTest, TraceSpansOnRacingThreads) {
#if UDAO_METRICS_ENABLED
  MetricsRegistry::Global().Reset();
  std::vector<std::thread> attackers;
  for (int t = 0; t < 4; ++t) {
    attackers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        UDAO_TRACE_SPAN("race.root");
        { UDAO_TRACE_SPAN("race.inner"); }
      }
    });
  }
  for (std::thread& t : attackers) t.join();
  // 4 threads x 50 roots each closed cleanly into the span histogram.
  EXPECT_EQ(
      MetricsRegistry::Global().HistogramValue("udao.span.race.root_ms").count,
      200);
  EXPECT_EQ(MetricsRegistry::Global()
                .HistogramValue("udao.span.race.inner_ms")
                .count,
            200);
  MetricsRegistry::Global().Reset();
#endif
}

// ---------------------------------------------------------- kernel dispatch

TEST(RaceStressTest, ConcurrentPredictBatchWhileBackendFlips) {
  // The kernel table is one atomic pointer shared by every dense op in the
  // process. Attack it from both sides: reader threads hammer PredictBatch /
  // InputGradientBatch (each call acquires the table once per primitive and
  // bumps its thread-local arena) while a flipper thread swaps the backend.
  // Every observed result must match one of the two backends' single-thread
  // answers -- a torn table, a half-switched call, or cross-thread arena
  // sharing would produce values matching neither.
  MlpConfig config;
  config.layer_sizes = {6, 128, 128, 1};
  Rng rng(21);
  const Mlp mlp(config, &rng);
  Matrix x(16, 6);
  for (double& v : x.data()) v = rng.Uniform();

  std::vector<Vector> expected;
  {
    kernels::ScopedBackendForTesting scoped(kernels::Backend::kScalar);
    Vector out;
    mlp.PredictBatch(x, &out);
    expected.push_back(std::move(out));
  }
  if (kernels::CpuSupportsAvx2()) {
    kernels::ScopedBackendForTesting scoped(kernels::Backend::kAvx2);
    Vector out;
    mlp.PredictBatch(x, &out);
    expected.push_back(std::move(out));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> attackers;
  for (int t = 0; t < 4; ++t) {
    attackers.emplace_back([&] {
      Vector out;
      Matrix grads;
      for (int i = 0; i < 300; ++i) {
        mlp.PredictBatch(x, &out);
        bool matched = false;
        for (const Vector& want : expected) {
          if (out == want) {
            matched = true;
            break;
          }
        }
        if (!matched) mismatches.fetch_add(1, std::memory_order_relaxed);
        mlp.InputGradientBatch(x, &grads);
      }
    });
  }
  std::thread flipper([&] {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool avx = kernels::CpuSupportsAvx2() && (flips % 2 == 0);
      kernels::SetBackendForTesting(avx ? kernels::Backend::kAvx2
                                        : kernels::Backend::kScalar);
      ++flips;
      std::this_thread::yield();
    }
  });
  for (std::thread& t : attackers) t.join();
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  kernels::SetBackendForTesting(kernels::CpuSupportsAvx2()
                                    ? kernels::Backend::kAvx2
                                    : kernels::Backend::kScalar);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace udao
