// End-to-end MOO over the hand-crafted regression models (modeling option 1
// of Section II-B) on the full 12-knob batch space: no trace collection or
// training involved, so these tests pin down the optimizer stack itself.
#include <gtest/gtest.h>

#include <cmath>

#include "model/analytic_models.h"
#include "moo/progressive_frontier.h"
#include "moo/recommend.h"
#include "spark/conf.h"

namespace udao {
namespace {

MooProblem LatencyCostProblem(const AnalyticWorkload& workload) {
  return MooProblem(&BatchParamSpace(),
                    {MooObjective{"latency",
                                  MakeAnalyticBatchLatencyModel(workload)},
                     MooObjective{"cost_cores", MakeCostCoresModel()}});
}

PfConfig FastConfig() {
  PfConfig cfg;
  cfg.parallel = true;
  cfg.mogd.multistart = 6;
  cfg.mogd.max_iters = 120;
  return cfg;
}

TEST(AnalyticMooTest, FrontierSpansTheResourceRange) {
  MooProblem problem = LatencyCostProblem(AnalyticWorkload{});
  ProgressiveFrontier pf(&problem, FastConfig());
  const PfResult& result = pf.Run(15);
  ASSERT_GE(result.frontier.size(), 8u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  double min_cost = 1e9;
  double max_cost = 0;
  for (const MooPoint& p : result.frontier) {
    min_cost = std::min(min_cost, p.objectives[1]);
    max_cost = std::max(max_cost, p.objectives[1]);
  }
  // The frontier should reach both cheap and expensive allocations.
  EXPECT_LT(min_cost, 10.0);
  EXPECT_GT(max_cost, 60.0);
}

TEST(AnalyticMooTest, LatencyDecreasesAlongRisingCost) {
  MooProblem problem = LatencyCostProblem(AnalyticWorkload{});
  ProgressiveFrontier pf(&problem, FastConfig());
  const PfResult& result = pf.Run(12);
  // Sort by cost; latency must be non-increasing (frontier property).
  std::vector<MooPoint> sorted = result.frontier;
  std::sort(sorted.begin(), sorted.end(),
            [](const MooPoint& a, const MooPoint& b) {
              return a.objectives[1] < b.objectives[1];
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i].objectives[0], sorted[i - 1].objectives[0] + 1e-6);
  }
}

TEST(AnalyticMooTest, HeavierWorkloadsShiftTheFrontierUp) {
  AnalyticWorkload light;
  light.work = 2.0;
  AnalyticWorkload heavy;
  heavy.work = 40.0;
  MooProblem light_problem = LatencyCostProblem(light);
  MooProblem heavy_problem = LatencyCostProblem(heavy);
  ProgressiveFrontier pf_light(&light_problem, FastConfig());
  ProgressiveFrontier pf_heavy(&heavy_problem, FastConfig());
  const PfResult& rl = pf_light.Run(8);
  const PfResult& rh = pf_heavy.Run(8);
  // At any cost, the heavy workload's best latency exceeds the light one's
  // best latency; compare the utopia points.
  EXPECT_GT(rh.utopia[0], rl.utopia[0]);
}

TEST(AnalyticMooTest, DecodedFrontierConfigurationsAreValid) {
  MooProblem problem = LatencyCostProblem(AnalyticWorkload{});
  ProgressiveFrontier pf(&problem, FastConfig());
  const PfResult& result = pf.Run(10);
  for (const MooPoint& p : result.frontier) {
    const Vector raw = BatchParamSpace().Decode(p.conf_encoded);
    EXPECT_TRUE(BatchParamSpace().Validate(raw).ok());
  }
}

TEST(AnalyticMooTest, WunTracksPreferencesOnAnalyticFrontier) {
  MooProblem problem = LatencyCostProblem(AnalyticWorkload{});
  ProgressiveFrontier pf(&problem, FastConfig());
  const PfResult& result = pf.Run(15);
  auto latency_heavy = WeightedUtopiaNearest(result.frontier, result.utopia,
                                             result.nadir, {0.9, 0.1});
  auto cost_heavy = WeightedUtopiaNearest(result.frontier, result.utopia,
                                          result.nadir, {0.1, 0.9});
  ASSERT_TRUE(latency_heavy.has_value());
  ASSERT_TRUE(cost_heavy.has_value());
  EXPECT_LE(latency_heavy->objectives[0], cost_heavy->objectives[0] + 1e-9);
  EXPECT_GE(latency_heavy->objectives[1], cost_heavy->objectives[1] - 1e-9);
}

TEST(AnalyticMooTest, CpuHourObjectiveComposes) {
  auto latency = MakeAnalyticBatchLatencyModel(AnalyticWorkload{});
  MooProblem problem(&BatchParamSpace(),
                     {MooObjective{"latency", latency},
                      MooObjective{"cpu_hour", MakeCpuHourModel(latency)}});
  ProgressiveFrontier pf(&problem, FastConfig());
  const PfResult& result = pf.Run(10);
  EXPECT_GE(result.frontier.size(), 3u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
}

}  // namespace
}  // namespace udao
