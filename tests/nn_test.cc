#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"
#include "common/random.h"
#include "nn/adam.h"
#include "nn/mlp.h"
#include "nn/train.h"

namespace udao {
namespace {

MlpConfig SmallConfig(Activation act = Activation::kTanh) {
  MlpConfig cfg;
  cfg.layer_sizes = {3, 8, 8, 1};
  cfg.activation = act;
  cfg.l2 = 0.0;
  return cfg;
}

// ---------------------------------------------------------------- Mlp

TEST(MlpTest, ForwardShapeAndDeterminism) {
  Rng rng(1);
  Mlp mlp(SmallConfig(), &rng);
  Vector x = {0.1, 0.5, 0.9};
  Vector y1 = mlp.Forward(x);
  Vector y2 = mlp.Forward(x);
  ASSERT_EQ(y1.size(), 1u);
  EXPECT_DOUBLE_EQ(y1[0], y2[0]);
}

TEST(MlpTest, SnapshotRestoreRoundTrips) {
  Rng rng(2);
  Mlp a(SmallConfig(), &rng);
  Mlp b(SmallConfig(), &rng);
  Vector x = {0.2, 0.4, 0.6};
  EXPECT_NE(a.Predict(x), b.Predict(x));
  b.Restore(a.Snapshot());
  EXPECT_DOUBLE_EQ(a.Predict(x), b.Predict(x));
}

// Central finite differences validate the analytic input gradient for both
// activations across random points -- the property MOGD depends on.
class InputGradientProperty
    : public ::testing::TestWithParam<std::tuple<int, Activation>> {};

TEST_P(InputGradientProperty, MatchesFiniteDifferences) {
  const auto [seed, act] = GetParam();
  Rng rng(seed);
  Mlp mlp(SmallConfig(act), &rng);
  const double h = 1e-6;
  for (int trial = 0; trial < 10; ++trial) {
    Vector x = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Vector grad = mlp.InputGradient(x);
    ASSERT_EQ(grad.size(), x.size());
    for (size_t d = 0; d < x.size(); ++d) {
      Vector xp = x;
      Vector xm = x;
      xp[d] += h;
      xm[d] -= h;
      const double fd = (mlp.Predict(xp) - mlp.Predict(xm)) / (2 * h);
      EXPECT_NEAR(grad[d], fd, 1e-4) << "dim " << d << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndActivations, InputGradientProperty,
    ::testing::Combine(::testing::Values(10, 11, 12, 13),
                       ::testing::Values(Activation::kTanh,
                                         Activation::kRelu)));

// Weight gradients also validated against finite differences on a tiny batch.
TEST(MlpTest, WeightGradientsMatchFiniteDifferences) {
  Rng rng(3);
  Mlp mlp(SmallConfig(Activation::kTanh), &rng);
  Matrix x = Matrix::FromRows({{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}});
  Vector y = {1.0, -1.0};

  std::vector<Mlp::LayerGrad> grads = mlp.ZeroGrads();
  mlp.ForwardBackward(x, y, &grads);
  Vector flat;
  for (const auto& g : grads) {
    flat.insert(flat.end(), g.dw.data().begin(), g.dw.data().end());
    flat.insert(flat.end(), g.db.begin(), g.db.end());
  }

  auto loss_at = [&](const Vector& params) {
    Mlp probe(SmallConfig(Activation::kTanh), &rng);
    probe.Restore(params);
    double loss = 0.0;
    for (int n = 0; n < x.rows(); ++n) {
      const double err = probe.Predict(x.Row(n)) - y[n];
      loss += err * err;
    }
    return loss / x.rows();
  };

  Vector params = mlp.Snapshot();
  const double h = 1e-6;
  // Spot-check a spread of parameter indices.
  for (size_t i = 0; i < params.size(); i += 7) {
    Vector pp = params;
    Vector pm = params;
    pp[i] += h;
    pm[i] -= h;
    const double fd = (loss_at(pp) - loss_at(pm)) / (2 * h);
    EXPECT_NEAR(flat[i], fd, 1e-4) << "param " << i;
  }
}

TEST(MlpTest, L2PenaltyIncreasesLossAndGradients) {
  Rng rng(4);
  MlpConfig cfg = SmallConfig();
  Mlp plain(cfg, &rng);
  MlpConfig cfg_l2 = cfg;
  cfg_l2.l2 = 0.1;
  Rng rng2(4);
  Mlp reg(cfg_l2, &rng2);  // same seed -> same weights
  Matrix x = Matrix::FromRows({{0.5, 0.5, 0.5}});
  Vector y = {0.0};
  auto g1 = plain.ZeroGrads();
  auto g2 = reg.ZeroGrads();
  const double l_plain = plain.ForwardBackward(x, y, &g1);
  const double l_reg = reg.ForwardBackward(x, y, &g2);
  EXPECT_GT(l_reg, l_plain);
}

TEST(MlpTest, DropoutUncertaintyIsNonNegativeAndMeanReasonable) {
  Rng rng(5);
  MlpConfig cfg = SmallConfig();
  cfg.dropout = 0.2;
  Mlp mlp(cfg, &rng);
  Vector x = {0.3, 0.3, 0.3};
  double mean = 0.0;
  double stddev = -1.0;
  Rng mc(99);
  mlp.PredictWithUncertainty(x, 200, &mc, &mean, &stddev);
  EXPECT_GE(stddev, 0.0);
  // MC-dropout mean should be in the ballpark of the deterministic output.
  EXPECT_NEAR(mean, mlp.Predict(x), 5.0 * (stddev + 0.05));
}

// The batched MC-dropout surface must be bitwise-interchangeable with the
// scalar one per row (same per-row Rng stream, same fused kernels): the
// recommendation re-ranker switched to the batch entry point on exactly
// this contract, for both activations.
TEST(MlpTest, BatchedUncertaintyMatchesScalarBitwise) {
  for (const Activation act : {Activation::kRelu, Activation::kTanh}) {
    Rng rng(7);
    MlpConfig cfg = SmallConfig(act);
    cfg.dropout = 0.2;
    Mlp mlp(cfg, &rng);
    const int rows = 5;
    const int samples = 16;
    Matrix x(rows, 3);
    Rng points(11);
    for (int r = 0; r < rows; ++r) {
      for (int d = 0; d < 3; ++d) x(r, d) = points.Uniform();
    }
    std::vector<Rng> rngs;
    for (int r = 0; r < rows; ++r) rngs.emplace_back(100 + r);
    Vector mean;
    Vector stddev;
    mlp.PredictWithUncertaintyBatch(x, samples, &rngs, &mean, &stddev);
    ASSERT_EQ(mean.size(), static_cast<size_t>(rows));
    ASSERT_EQ(stddev.size(), static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      Rng mc(100 + r);
      double m = 0.0;
      double s = 0.0;
      mlp.PredictWithUncertainty(x.Row(r), samples, &mc, &m, &s);
      EXPECT_EQ(mean[r], m) << "row " << r;
      EXPECT_EQ(stddev[r], s) << "row " << r;
    }
  }
}

TEST(MlpTest, ZeroDropoutGivesZeroUncertainty) {
  Rng rng(6);
  MlpConfig cfg = SmallConfig();
  cfg.dropout = 0.0;
  Mlp mlp(cfg, &rng);
  double mean = 0.0;
  double stddev = -1.0;
  Rng mc(1);
  mlp.PredictWithUncertainty({0.1, 0.2, 0.3}, 32, &mc, &mean, &stddev);
  EXPECT_DOUBLE_EQ(stddev, 0.0);
  EXPECT_DOUBLE_EQ(mean, mlp.Predict({0.1, 0.2, 0.3}));
}

TEST(MlpTest, MultiOutputTrainingLearnsVectorTargets) {
  Rng rng(20);
  MlpConfig cfg;
  cfg.layer_sizes = {2, 16, 2};
  cfg.activation = Activation::kTanh;
  cfg.l2 = 0.0;
  Mlp mlp(cfg, &rng);
  const int n = 120;
  Matrix x(n, 2);
  Matrix y(n, 2);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y(i, 0) = 0.7 * x(i, 0) - 0.2 * x(i, 1);
    y(i, 1) = 0.3 * x(i, 1) + 0.1;
  }
  TrainConfig tc;
  tc.epochs = 300;
  tc.learning_rate = 5e-3;
  TrainResult result = TrainMlpMulti(&mlp, x, y, tc, &rng);
  EXPECT_LT(result.best_loss, 5e-3);
  Vector out = mlp.Forward({0.5, 0.5});
  EXPECT_NEAR(out[0], 0.7 * 0.5 - 0.2 * 0.5, 0.08);
  EXPECT_NEAR(out[1], 0.3 * 0.5 + 0.1, 0.08);
}

TEST(MlpTest, LayerActivationsMatchManualForward) {
  Rng rng(21);
  MlpConfig cfg;
  cfg.layer_sizes = {2, 3, 1};
  cfg.activation = Activation::kTanh;
  Mlp mlp(cfg, &rng);
  Vector x = {0.2, 0.8};
  const Vector hidden = mlp.LayerActivations(x, 0);
  ASSERT_EQ(hidden.size(), 3u);
  // Recompute layer 0 by hand from the weights.
  const Mlp::Layer& layer = mlp.layers()[0];
  for (int i = 0; i < 3; ++i) {
    double z = layer.b[i];
    for (int c = 0; c < 2; ++c) z += layer.w(i, c) * x[c];
    EXPECT_NEAR(hidden[i], std::tanh(z), 1e-12);
  }
  // The last layer's activation is the network output itself.
  EXPECT_DOUBLE_EQ(mlp.LayerActivations(x, 1)[0], mlp.Predict(x));
}

TEST(MlpTest, MultiOutputGradientsMatchFiniteDifferences) {
  Rng rng(22);
  MlpConfig cfg;
  cfg.layer_sizes = {2, 4, 3};
  cfg.activation = Activation::kTanh;
  cfg.l2 = 0.0;
  Mlp mlp(cfg, &rng);
  Matrix x = Matrix::FromRows({{0.3, 0.7}});
  Matrix y = Matrix::FromRows({{0.1, -0.2, 0.4}});
  auto grads = mlp.ZeroGrads();
  mlp.ForwardBackwardMulti(x, y, &grads);
  Vector flat;
  for (const auto& g : grads) {
    flat.insert(flat.end(), g.dw.data().begin(), g.dw.data().end());
    flat.insert(flat.end(), g.db.begin(), g.db.end());
  }
  auto loss_at = [&](const Vector& params) {
    Mlp probe(cfg, &rng);
    probe.Restore(params);
    const Vector out = probe.Forward(x.Row(0));
    double loss = 0.0;
    for (int o = 0; o < 3; ++o) {
      const double err = out[o] - y(0, o);
      loss += err * err / 3.0;
    }
    return loss;
  };
  const Vector params = mlp.Snapshot();
  const double h = 1e-6;
  for (size_t i = 0; i < params.size(); i += 3) {
    Vector pp = params;
    Vector pm = params;
    pp[i] += h;
    pm[i] -= h;
    const double fd = (loss_at(pp) - loss_at(pm)) / (2 * h);
    EXPECT_NEAR(flat[i], fd, 1e-5) << "param " << i;
  }
}

// ---------------------------------------------------------------- Adam

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  // minimize f(p) = (p0-3)^2 + (p1+2)^2
  Vector p = {0.0, 0.0};
  Adam adam(2, AdamConfig{.learning_rate = 0.1});
  for (int i = 0; i < 2000; ++i) {
    Vector grad = {2 * (p[0] - 3), 2 * (p[1] + 2)};
    adam.Step(&p, grad);
  }
  EXPECT_NEAR(p[0], 3.0, 1e-3);
  EXPECT_NEAR(p[1], -2.0, 1e-3);
}

TEST(AdamTest, ResetClearsMoments) {
  Vector p = {1.0};
  Adam adam(1);
  adam.Step(&p, {1.0});
  EXPECT_EQ(adam.step_count(), 1);
  adam.Reset();
  EXPECT_EQ(adam.step_count(), 0);
}

TEST(AdamTest, FirstStepHasMagnitudeNearLearningRate) {
  // Adam's bias correction makes the first step ~lr regardless of grad scale.
  Vector p = {0.0};
  Adam adam(1, AdamConfig{.learning_rate = 0.01});
  adam.Step(&p, {1234.5});
  EXPECT_NEAR(p[0], -0.01, 1e-5);
}

// ---------------------------------------------------------------- Training

TEST(TrainTest, LearnsLinearFunction) {
  Rng rng(7);
  MlpConfig cfg;
  cfg.layer_sizes = {2, 16, 1};
  cfg.activation = Activation::kTanh;
  cfg.l2 = 0.0;
  Mlp mlp(cfg, &rng);
  const int n = 128;
  Matrix x(n, 2);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = 0.5 * x(i, 0) - 0.3 * x(i, 1) + 0.1;
  }
  TrainConfig tc;
  tc.epochs = 300;
  tc.learning_rate = 5e-3;
  TrainResult result = TrainMlp(&mlp, x, y, tc, &rng);
  EXPECT_LT(result.best_loss, 1e-3);
  // Generalizes to a held-out point.
  EXPECT_NEAR(mlp.Predict({0.5, 0.5}), 0.5 * 0.5 - 0.3 * 0.5 + 0.1, 0.05);
}

TEST(TrainTest, EarlyStoppingHaltsBeforeMaxEpochs) {
  Rng rng(8);
  MlpConfig cfg;
  cfg.layer_sizes = {1, 4, 1};
  cfg.l2 = 0.0;
  Mlp mlp(cfg, &rng);
  Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  Vector y = {0.0, 0.0};  // trivially learnable
  TrainConfig tc;
  tc.epochs = 10000;
  tc.early_stop_patience = 5;
  TrainResult result = TrainMlp(&mlp, x, y, tc, &rng);
  EXPECT_LT(result.epochs_run, 10000);
}

TEST(TrainTest, FineTuningImprovesShiftedTarget) {
  Rng rng(9);
  MlpConfig cfg;
  cfg.layer_sizes = {1, 16, 1};
  cfg.activation = Activation::kTanh;
  cfg.l2 = 0.0;
  Mlp mlp(cfg, &rng);
  const int n = 64;
  Matrix x(n, 1);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = std::sin(3 * x(i, 0));
  }
  TrainConfig tc;
  tc.epochs = 200;
  TrainMlp(&mlp, x, y, tc, &rng);

  // Shift targets slightly; a short fine-tune should track the shift.
  Vector y2 = y;
  for (double& v : y2) v += 0.2;
  double before = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = mlp.Predict(x.Row(i)) - y2[i];
    before += e * e;
  }
  TrainConfig ft;
  ft.epochs = 100;
  ft.learning_rate = 1e-3;
  TrainResult result = TrainMlp(&mlp, x, y2, ft, &rng);
  EXPECT_LT(result.best_loss, before / n);
}

}  // namespace
}  // namespace udao
