// Deadline-aware anytime solving: the Deadline/CancellationToken/StopToken
// primitives, the FaultInjector that makes expiry deterministic in tests,
// and the contract that every layer of the solve stack (MOGD, PF, Udao,
// UdaoService) returns a valid best-so-far answer -- never a crash, never a
// silent empty result -- when the budget dies at the worst possible moment.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "common/deadline.h"
#include "common/fault_injector.h"
#include "moo/mogd.h"
#include "moo/progressive_frontier.h"
#include "serving/udao_service.h"
#include "test_problems.h"
#include "tuning/udao.h"

namespace udao {
namespace {

using testing_problems::UnitSpace2;

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, NeverHasNoDeadlineAndInfiniteBudget) {
  const Deadline d = Deadline::Never();
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.IsExpired());
  EXPECT_TRUE(std::isinf(d.RemainingMs()));
}

TEST(DeadlineTest, ZeroAndNegativeBudgetsAreAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMs(0.0).IsExpired());
  EXPECT_TRUE(Deadline::AfterMs(-5.0).IsExpired());
  EXPECT_LE(Deadline::AfterMs(-5.0).RemainingMs(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetIsNotExpired) {
  const Deadline d = Deadline::AfterMs(1e6);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_FALSE(d.IsExpired());
  EXPECT_GT(d.RemainingMs(), 0.0);
}

TEST(DeadlineTest, EarlierPicksTheSoonerDeadline) {
  const Deadline never = Deadline::Never();
  const Deadline soon = Deadline::AfterMs(10.0);
  const Deadline late = Deadline::AfterMs(1e6);
  EXPECT_FALSE(Deadline::Earlier(never, never).has_deadline());
  // Never is the identity element on either side.
  EXPECT_GT(Deadline::Earlier(never, late).RemainingMs(), 1e3);
  EXPECT_GT(Deadline::Earlier(late, never).RemainingMs(), 1e3);
  EXPECT_LT(Deadline::Earlier(late, soon).RemainingMs(), 1e3);
  EXPECT_LT(Deadline::Earlier(soon, late).RemainingMs(), 1e3);
}

// ------------------------------------------------------------ Cancellation

TEST(CancellationTest, DefaultTokenNeverCancels) {
  const CancellationToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancellationTest, CancelReachesEveryTokenCopyAndIsIdempotent) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = a;
  EXPECT_TRUE(a.CanBeCancelled());
  EXPECT_FALSE(a.IsCancelled());
  source.Cancel();
  source.Cancel();
  EXPECT_TRUE(source.IsCancelled());
  EXPECT_TRUE(a.IsCancelled());
  EXPECT_TRUE(b.IsCancelled());
}

TEST(StopTokenTest, DefaultNeverStops) {
  const StopToken token;
  EXPECT_FALSE(token.CanStop());
  EXPECT_FALSE(token.ShouldStop());
}

TEST(StopTokenTest, StopsOnEitherSignal) {
  EXPECT_TRUE(StopToken(Deadline::AfterMs(0.0)).ShouldStop());
  CancellationSource source;
  const StopToken token(Deadline::Never(), source.token());
  EXPECT_TRUE(token.CanStop());
  EXPECT_FALSE(token.ShouldStop());
  source.Cancel();
  EXPECT_TRUE(token.ShouldStop());
}

// ----------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, FailNextFiresExactlyCountTimesThenDisarms) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Reset();
  fi.FailNext("test.site", Status::Unavailable("injected"), 2);
  EXPECT_EQ(fi.Traverse("test.site").code(), StatusCode::kUnavailable);
  EXPECT_EQ(fi.Traverse("other.site").code(), StatusCode::kOk);
  EXPECT_EQ(fi.Traverse("test.site").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fi.Traverse("test.site").ok());  // auto-disarmed after count
  fi.Reset();
}

TEST(FaultInjectorTest, DelayNextStallsTheTraversal) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Reset();
  fi.DelayNext("test.delay", 30.0, 1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(fi.Traverse("test.delay").ok());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 25.0);  // sleep_for may round, never undershoots by much
  fi.Reset();
}

TEST(FaultInjectorTest, ResetDisarmsEverything) {
  FaultInjector& fi = FaultInjector::Global();
  fi.FailNext("test.a", Status::NotFound("x"), 100);
  fi.DelayNext("test.b", 1000.0, 100);
  fi.Reset();
  EXPECT_TRUE(fi.Traverse("test.a").ok());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(fi.Traverse("test.b").ok());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 100.0);
}

// ------------------------------------------------------------- MOGD anytime

TEST(DeadlineSolveTest, MinimizeWithExpiredBudgetReturnsFiniteIncumbent) {
  const MooProblem problem = testing_problems::ConvexProblem();
  for (const bool batched : {true, false}) {
    MogdConfig config;
    config.multistart = 4;
    config.max_iters = 50;
    config.batched = batched;
    const MogdSolver solver(config);
    // The first iteration is unconditional, so even a dead-on-arrival budget
    // produces a real evaluated point (the UDAO_CHECK(isfinite) inside
    // Minimize depends on this).
    const CoResult r = solver.Minimize(problem, 0, nullptr,
                                       StopToken(Deadline::AfterMs(0.0)));
    EXPECT_TRUE(std::isfinite(r.target_value)) << "batched=" << batched;
    EXPECT_FALSE(r.x.empty());
    EXPECT_FALSE(r.objectives.empty());
  }
}

TEST(DeadlineSolveTest, SolveCoWithExpiredBudgetStillEvaluatesOnce) {
  const MooProblem problem = testing_problems::ConvexProblem();
  CoProblem co;
  co.target = 0;
  co.lower = {0.0, 0.0};
  co.upper = {10.0, 10.0};  // wide open: the first evaluation is feasible
  for (const bool batched : {true, false}) {
    MogdConfig config;
    config.multistart = 4;
    config.max_iters = 50;
    config.batched = batched;
    const MogdSolver solver(config);
    const auto r = solver.SolveCo(problem, co, nullptr,
                                  StopToken(Deadline::AfterMs(0.0)));
    ASSERT_TRUE(r.has_value()) << "batched=" << batched;
    EXPECT_TRUE(std::isfinite(r->target_value));
  }
}

// --------------------------------------------------------------- PF anytime

PfConfig SmallPf() {
  PfConfig cfg;
  cfg.mogd.multistart = 2;
  cfg.mogd.max_iters = 20;
  return cfg;
}

TEST(DeadlineSolveTest, PfExpiredBudgetReturnsDegradedSeedFrontier) {
  const MooProblem problem = testing_problems::ConvexProblem();
  ProgressiveFrontier pf(&problem, SmallPf());
  const PfResult partial = pf.Run(10, StopToken(Deadline::AfterMs(0.0)));
  EXPECT_TRUE(partial.degraded);
  // Initialize's reference solves always run: there is a best-so-far
  // frontier to hand back even under a zero budget.
  EXPECT_FALSE(partial.frontier.empty());

  // Anytime resume: the queue survived the early exit, so a later Run on the
  // same instance completes the frontier and clears the degraded tag.
  const PfResult& full = pf.Run(10);
  EXPECT_FALSE(full.degraded);
  EXPECT_GE(full.frontier.size(), partial.frontier.size());
}

TEST(DeadlineSolveTest, DeadlineExpiringDuringFirstExpansionDegrades) {
  const MooProblem problem = testing_problems::ConvexProblem();
  ProgressiveFrontier pf(&problem, SmallPf());
  // A 60 ms stall on the first probe guarantees the 30 ms budget dies inside
  // the first expansion, not before it -- the mid-flight case.
  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 60.0, 1);
  const PfResult r = pf.Run(32, StopToken(Deadline::AfterMs(30.0)));
  FaultInjector::Global().Reset();
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.frontier.empty());
  EXPECT_LT(r.frontier.size(), 32u);
}

// ------------------------------------------------------------ Udao / service

UdaoOptions FastOptions() {
  UdaoOptions options;
  options.pf.mogd.multistart = 4;
  options.pf.mogd.max_iters = 40;
  options.solver_threads = 2;
  options.frontier_points = 8;
  return options;
}

UdaoRequest ConvexRequest() {
  static const MooProblem& problem =
      *new MooProblem(testing_problems::ConvexProblem());
  UdaoRequest request;
  request.workload_id = "w";
  request.space = &UnitSpace2();
  request.objectives = {problem.objective(0), problem.objective(1)};
  return request;
}

TEST(DeadlineSolveTest, CancelledBeforeSolvingFailsWithDeadlineExceeded) {
  ModelServer server;
  Udao optimizer(&server, FastOptions());
  UdaoRequest request = ConvexRequest();
  CancellationSource source;
  source.Cancel();
  request.options.cancel = source.token();
  const auto rec = optimizer.Optimize(request);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineSolveTest, ZeroBudgetOptimizeAnswersDegraded) {
  ModelServer server;
  Udao optimizer(&server, FastOptions());
  UdaoRequest request = ConvexRequest();
  request.options.deadline = Deadline::AfterMs(0.0);
  const auto rec = optimizer.Optimize(request);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->degraded);
  EXPECT_FALSE(rec->frontier.frontier.empty());
  EXPECT_FALSE(rec->conf_raw.empty());
}

TEST(DeadlineServiceTest, ExpiredBudgetNeverReachesTheSolver) {
  // A request whose budget is already dead at dequeue is failed by the
  // admission queue itself: no miss is counted because Handle never runs --
  // solving for a caller that already gave up is the overload death spiral.
  ModelServer server;
  UdaoServiceConfig config;
  config.udao = FastOptions();
  config.admission_threads = 2;
  UdaoService service(&server, config);

  UdaoRequest zero = ConvexRequest();
  zero.options.deadline = Deadline::AfterMs(0.0);
  const auto rec = service.Submit(zero).Wait();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kDeadlineExceeded);
  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.deadline_exceeded, 1);
  EXPECT_EQ(s.errors, 1);
  EXPECT_EQ(s.cache_misses, 0);
  EXPECT_EQ(service.CacheSize(), 0);
}

TEST(DeadlineServiceTest, DegradedFrontiersAreNeverCached) {
  ModelServer server;
  UdaoServiceConfig config;
  config.udao = FastOptions();
  config.admission_threads = 2;
  UdaoService service(&server, config);

  // A budget generous enough to survive the admission queue but -- thanks to
  // a 500 ms stall injected into the first PF probe -- guaranteed dead
  // before the frontier completes: the solve runs and comes back truncated.
  UdaoRequest budgeted = ConvexRequest();
  budgeted.options.deadline = Deadline::AfterMs(250.0);
  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 500.0, 1);
  const auto degraded = service.Submit(budgeted).Wait();
  FaultInjector::Global().Reset();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_FALSE(degraded->frontier.frontier.empty());
  EXPECT_EQ(service.CacheSize(), 0);  // budget-truncated: not cacheable

  // The same key without a budget computes the complete frontier and caches
  // it -- a second miss, never a hit on degraded leftovers.
  const auto full = service.Submit(ConvexRequest()).Wait();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->degraded);
  EXPECT_EQ(service.CacheSize(), 1);
  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 2);
  EXPECT_EQ(s.cache_hits, 0);
  EXPECT_EQ(s.degraded, 1);
  EXPECT_EQ(s.errors, 0);
}

// ----------------------------------------------------- options fingerprint

TEST(SolverOptionsTest, FingerprintIsCanonicalAndExcludesThreading) {
  const SolverOptions base;
  EXPECT_EQ(base.Fingerprint(), SolverOptions().Fingerprint());
  EXPECT_FALSE(base.Fingerprint().empty());
  // Hex rendering is stable and matches the raw fingerprint's length.
  EXPECT_EQ(base.FingerprintHex().size(), 2 * base.Fingerprint().size());

  // Threading never changes solutions, so it never changes the fingerprint.
  SolverOptions threaded = base;
  threaded.solver_threads = 16;
  static ThreadPool pool(2);
  threaded.pf.mogd.pool = &pool;
  EXPECT_EQ(threaded.Fingerprint(), base.Fingerprint());

  // Every solver-behavior field does.
  SolverOptions points = base;
  points.frontier_points += 1;
  EXPECT_NE(points.Fingerprint(), base.Fingerprint());
  SolverOptions mogd = base;
  mogd.pf.mogd.learning_rate *= 2.0;
  EXPECT_NE(mogd.Fingerprint(), base.Fingerprint());
  SolverOptions alpha = base;
  alpha.uncertainty_alpha = 0.0;
  EXPECT_NE(alpha.Fingerprint(), base.Fingerprint());
}

}  // namespace
}  // namespace udao
