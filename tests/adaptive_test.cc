// Adaptive stage-level tuning: StageConfOverlay semantics, the engine's
// RunWithOverlay/RunAdaptive contracts (empty overlay bitwise-identical to
// Run; resolver failures fall back to the incumbent without failing the
// run), and the determinism guarantees the hierarchical solver inherits from
// MogdSolver -- per-stage configs must be bitwise-equal across solver thread
// counts and across scalar/AVX2 kernel backends, because a re-solve that
// depends on pool sizing or ISA would make adaptive runs irreproducible.
#include <gtest/gtest.h>

#include <map>
#include <type_traits>
#include <vector>

#include "common/deadline.h"
#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "moo/hierarchical.h"
#include "moo/solve_coalescer.h"
#include "nn/kernels.h"
#include "spark/conf.h"
#include "spark/dataflow.h"
#include "spark/engine.h"

namespace udao {
namespace {

using kernels::Backend;
using kernels::ScopedBackendForTesting;

EngineOptions NoNoise() {
  EngineOptions opt;
  opt.noise_stddev = 0.0;
  return opt;
}

// Three-stage SQL flow: scan -> filter -> exchange -> aggregate -> exchange
// -> aggregate. The filter's planner estimate is badly wrong (0.05 estimated
// vs 0.7 runtime-true), so plan-time per-stage choices undersize the shuffle
// stages -- the cardinality misestimation adaptive re-solves exist to fix.
Dataflow SkewedFlow() {
  Dataflow flow("skewed_sql", WorkloadClass::kSql);
  int scan = flow.AddScan(8e7, 120);
  int filter = flow.AddOp({.type = OpType::kFilter,
                           .inputs = {scan},
                           .selectivity = 0.05,
                           .actual_selectivity = 0.7});
  int ex1 = flow.AddOp({.type = OpType::kExchange, .inputs = {filter}});
  int agg1 = flow.AddOp(
      {.type = OpType::kHashAggregate, .inputs = {ex1}, .selectivity = 0.5});
  int ex2 = flow.AddOp({.type = OpType::kExchange, .inputs = {agg1}});
  flow.AddOp(
      {.type = OpType::kHashAggregate, .inputs = {ex2}, .selectivity = 0.1});
  return flow;
}

void ExpectBitwiseEqualMetrics(const RuntimeMetrics& a,
                               const RuntimeMetrics& b) {
  EXPECT_EQ(a.ToVector(), b.ToVector());
  EXPECT_EQ(a.num_stages, b.num_stages);
}

// Builds the hierarchical solver's boundary hook: concatenates observed +
// re-estimated profiles into the absolute-indexed vector ResolveStages
// expects, exactly as the serving layer and udao_cli do.
BoundaryResolver MakeResolver(const HierarchicalMoo& hmoo, const Vector& base,
                              WorkloadClass wclass) {
  return [&hmoo, &base, wclass](const RuntimeObservation& obs,
                                const Deadline& budget) {
    std::vector<StageProfile> stages = obs.completed;
    stages.insert(stages.end(), obs.remaining.begin(), obs.remaining.end());
    return hmoo.ResolveStages(base, stages, obs.next_stage, wclass,
                              StopToken(budget, CancellationToken()));
  };
}

TEST(StageConfOverlayTest, SetResolveAndMergeSemantics) {
  const Vector base = BatchParamSpace().Defaults();
  StageConfOverlay overlay;
  EXPECT_TRUE(overlay.empty());

  overlay.Set(1, 0, 320.0);   // stage 1: spark.default.parallelism
  overlay.Set(1, 11, 96.0);   // stage 1: spark.sql.shuffle.partitions
  EXPECT_FALSE(overlay.empty());

  // Untouched stages resolve to the base conf unchanged.
  EXPECT_EQ(overlay.Resolve(0, base), base);

  // Touched stages differ exactly at the overridden knobs.
  const Vector stage1 = overlay.Resolve(1, base);
  ASSERT_EQ(stage1.size(), base.size());
  EXPECT_EQ(stage1[0], 320.0);
  EXPECT_EQ(stage1[11], 96.0);
  for (size_t i = 0; i < base.size(); ++i) {
    if (i != 0 && i != 11) {
      EXPECT_EQ(stage1[i], base[i]) << "knob " << i;
    }
  }

  // Set replaces; MergeFrom adopts the other side on conflicts.
  overlay.Set(1, 0, 280.0);
  EXPECT_EQ(overlay.Resolve(1, base)[0], 280.0);
  StageConfOverlay incoming;
  incoming.Set(1, 0, 200.0);
  incoming.Set(2, 4, 24.0);
  overlay.MergeFrom(incoming);
  EXPECT_EQ(overlay.Resolve(1, base)[0], 200.0);
  EXPECT_EQ(overlay.Resolve(1, base)[11], 96.0);  // non-conflicting survives
  EXPECT_EQ(overlay.Resolve(2, base)[4], 24.0);
}

TEST(StageConfOverlayTest, ValidateRejectsBadKnobsAndValues) {
  const ParamSpace& space = BatchParamSpace();
  const Vector base = space.Defaults();

  StageConfOverlay ok;
  ok.Set(0, 0, 320.0);
  EXPECT_TRUE(ok.Validate(space, base).ok());

  StageConfOverlay bad_knob;
  bad_knob.Set(0, 99, 1.0);  // no such ParamSpace index
  EXPECT_FALSE(bad_knob.Validate(space, base).ok());

  StageConfOverlay bad_value;
  bad_value.Set(0, 0, 1e9);  // parallelism far above its upper bound
  EXPECT_FALSE(bad_value.Validate(space, base).ok());

  // Out-of-plan stage ids are inert, not invalid: overlays must survive
  // re-planning that drops stages.
  StageConfOverlay future_stage;
  future_stage.Set(99, 0, 320.0);
  EXPECT_TRUE(future_stage.Validate(space, base).ok());
}

TEST(AdaptiveEngineTest, EmptyOverlayIsBitwiseIdenticalToRun) {
  SparkEngine engine;  // default noise ON: the seed path must match too
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();
  ExpectBitwiseEqualMetrics(engine.Run(flow, conf),
                            engine.RunWithOverlay(flow, conf, {}));
}

TEST(AdaptiveEngineTest, OutOfPlanStageOverridesAreInert) {
  SparkEngine engine;  // noise on: overlay must not perturb the seed either
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();
  StageConfOverlay overlay;
  overlay.Set(99, 0, 320.0);  // the plan has 3 stages; stage 99 never runs
  ExpectBitwiseEqualMetrics(engine.Run(flow, conf),
                            engine.RunWithOverlay(flow, conf, overlay));
}

TEST(AdaptiveEngineTest, OverlayChangesOnlyStageCostingNotStructure) {
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();
  const RuntimeMetrics base = engine.Run(flow, conf);

  StageConfOverlay overlay;
  overlay.Set(1, 0, 8.0);    // strangle stage 1's parallelism
  overlay.Set(1, 11, 8.0);   // and its shuffle partitions
  const RuntimeMetrics tuned = engine.RunWithOverlay(flow, conf, overlay);

  EXPECT_EQ(tuned.num_stages, base.num_stages);  // structure is plan-time
  EXPECT_NE(tuned.latency_s, base.latency_s);    // costing is per-stage
}

TEST(AdaptiveEngineTest, NumStagesIsIntegralAndMatchesPlan) {
  static_assert(std::is_integral_v<decltype(RuntimeMetrics::num_stages)>,
                "num_stages is a count; keep it integral");
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();
  const RuntimeMetrics m = engine.Run(flow, conf);
  EXPECT_EQ(static_cast<size_t>(m.num_stages),
            engine.PlanStages(flow, conf, true).size());
}

TEST(AdaptiveEngineTest, RunAdaptiveEmitsStageResolveMetrics) {
  MetricsRegistry::Global().Reset();
  SparkEngine engine(NoNoise());
  HierarchicalMoo hmoo(&engine, HierarchicalConfig{});
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();

  AdaptiveRunOptions options;
  options.resolver = MakeResolver(hmoo, conf, flow.workload_class());
  options.resolve_budget_ms = 200.0;
  const AdaptiveRunResult result = engine.RunAdaptive(flow, conf, options);

  EXPECT_GT(result.boundaries, 0);
  EXPECT_EQ(result.boundaries, result.applied + result.fallbacks);
  EXPECT_EQ(static_cast<int>(result.resolve_ms.size()), result.boundaries);
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.CounterValue("udao.engine.stage_resolves"), result.boundaries);
  EXPECT_EQ(reg.CounterValue("udao.engine.stage_resolve_applied"),
            result.applied);
  EXPECT_EQ(reg.CounterValue("udao.engine.stage_resolve_fallbacks"),
            result.fallbacks);
  EXPECT_EQ(reg.HistogramValue("udao.engine.stage_resolve_ms").count,
            result.boundaries);
}

TEST(AdaptiveEngineTest, AdaptiveRunKeepsUpWithJobLevelOnSkew) {
  SparkEngine engine(NoNoise());
  HierarchicalMoo hmoo(&engine, HierarchicalConfig{});
  const Dataflow flow = SkewedFlow();
  const Vector conf = BatchParamSpace().Defaults();

  AdaptiveRunOptions options;
  options.resolver = MakeResolver(hmoo, conf, flow.workload_class());
  options.resolve_budget_ms = 200.0;
  const AdaptiveRunResult result = engine.RunAdaptive(flow, conf, options);

  // With a generous budget every boundary re-solve lands, and per-stage
  // minimization over the exact stage cost can only improve on the shared
  // job-level conf (the bench gate asserts a strict win; here we pin the
  // non-regression half of the contract).
  EXPECT_EQ(result.fallbacks, 0);
  EXPECT_GT(result.applied, 0);
  EXPECT_LE(result.metrics.latency_s,
            engine.Run(flow, conf).latency_s * 1.001);
}

// ---- Determinism: the accept-gate guarantees -------------------------------

StageConfOverlay ResolveAll(const SparkEngine& engine,
                            const HierarchicalConfig& config,
                            const Dataflow& flow, const Vector& base) {
  HierarchicalMoo hmoo(&engine, config);
  const std::vector<StageProfile> stages = engine.PlanStages(flow, base, true);
  StatusOr<StageConfOverlay> overlay = hmoo.ResolveStages(
      base, stages, 0, flow.workload_class(), StopToken());
  EXPECT_TRUE(overlay.ok()) << overlay.status().message();
  return overlay.ok() ? *overlay : StageConfOverlay{};
}

TEST(AdaptiveDeterminismTest, PerStageConfsBitwiseEqualAcrossThreadCounts) {
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector base = BatchParamSpace().Defaults();

  ThreadPool pool2(2);
  ThreadPool pool8(8);
  HierarchicalConfig with2;
  with2.mogd.pool = &pool2;
  HierarchicalConfig with8;
  with8.mogd.pool = &pool8;

  const StageConfOverlay a = ResolveAll(engine, with2, flow, base);
  const StageConfOverlay b = ResolveAll(engine, with8, flow, base);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.overrides, b.overrides);  // bitwise: map equality on doubles
}

TEST(AdaptiveDeterminismTest, PerStageConfsBitwiseEqualAcrossKernelBackends) {
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector base = BatchParamSpace().Defaults();
  const HierarchicalConfig config;

  const StageConfOverlay scalar = [&] {
    ScopedBackendForTesting scoped(Backend::kScalar);
    return ResolveAll(engine, config, flow, base);
  }();
  const StageConfOverlay scalar_again = [&] {
    ScopedBackendForTesting scoped(Backend::kScalar);
    return ResolveAll(engine, config, flow, base);
  }();
  EXPECT_FALSE(scalar.empty());
  EXPECT_EQ(scalar.overrides, scalar_again.overrides);

  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const StageConfOverlay avx2 = [&] {
    ScopedBackendForTesting scoped(Backend::kAvx2);
    return ResolveAll(engine, config, flow, base);
  }();
  EXPECT_EQ(scalar.overrides, avx2.overrides);
}

TEST(AdaptiveDeterminismTest, CoalescedResolveMatchesInlineBitwise) {
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector base = BatchParamSpace().Defaults();

  const HierarchicalConfig inline_config;
  SolveCoalescerConfig cc;
  cc.mogd = inline_config.mogd;  // coalescer contract: identical MogdConfig
  SolveCoalescer coalescer(cc);
  HierarchicalConfig coalesced_config;
  coalesced_config.co_solver = &coalescer;

  const StageConfOverlay inline_overlay =
      ResolveAll(engine, inline_config, flow, base);
  const StageConfOverlay coalesced =
      ResolveAll(engine, coalesced_config, flow, base);
  EXPECT_FALSE(inline_overlay.empty());
  EXPECT_EQ(inline_overlay.overrides, coalesced.overrides);
}

TEST(AdaptiveDeterminismTest, ResolveStagesFailsClosedOnExpiredBudget) {
  SparkEngine engine(NoNoise());
  HierarchicalMoo hmoo(&engine, HierarchicalConfig{});
  const Dataflow flow = SkewedFlow();
  const Vector base = BatchParamSpace().Defaults();
  const std::vector<StageProfile> stages = engine.PlanStages(flow, base, true);

  const StopToken expired(Deadline::AfterMs(0.0), CancellationToken());
  StatusOr<StageConfOverlay> overlay =
      hmoo.ResolveStages(base, stages, 0, flow.workload_class(), expired);
  // All-or-nothing: an exhausted budget is an error, never a half-tuned
  // overlay the caller might mistakenly deploy.
  EXPECT_FALSE(overlay.ok());
}

TEST(AdaptiveDeterminismTest,
     FaultedBoundaryFallsBackWithoutPerturbingBatchmates) {
  SparkEngine engine(NoNoise());
  const Dataflow flow = SkewedFlow();
  const Vector base = BatchParamSpace().Defaults();

  SolveCoalescerConfig cc;
  cc.mogd = HierarchicalConfig{}.mogd;
  SolveCoalescer coalescer(cc);
  HierarchicalConfig config;
  config.co_solver = &coalescer;
  HierarchicalMoo hmoo(&engine, config);

  // Baseline: what a healthy batchmate's re-solve returns.
  const std::vector<StageProfile> stages = engine.PlanStages(flow, base, true);
  StatusOr<StageConfOverlay> baseline = hmoo.ResolveStages(
      base, stages, 0, flow.workload_class(), StopToken());
  ASSERT_TRUE(baseline.ok());

  // Fault exactly one boundary re-solve mid-run.
  FaultInjector::Global().FailNext("moo.stage_resolve",
                                   Status::Unavailable("injected"));
  AdaptiveRunOptions options;
  options.resolver = MakeResolver(hmoo, base, flow.workload_class());
  options.resolve_budget_ms = 200.0;
  const AdaptiveRunResult result = engine.RunAdaptive(flow, base, options);
  FaultInjector::Global().Reset();

  // The faulted boundary kept the incumbent; the run itself never fails.
  EXPECT_EQ(result.fallbacks, 1);
  EXPECT_EQ(result.boundaries, result.applied + 1);
  EXPECT_GT(result.metrics.latency_s, 0.0);

  // A batchmate solving through the same coalescer after the fault sees
  // bitwise-identical results: the injected failure poisoned no shared
  // state (memo entries, fuse groups, seeds).
  StatusOr<StageConfOverlay> after = hmoo.ResolveStages(
      base, stages, 0, flow.workload_class(), StopToken());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->overrides, baseline->overrides);
}

}  // namespace
}  // namespace udao
