#include <gtest/gtest.h>

#include <cmath>

#include "moo/exhaustive.h"
#include "moo/mogd.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConvexProblem;
using testing_problems::UnitSpace2;

MogdConfig FastConfig() {
  MogdConfig cfg;
  cfg.multistart = 4;
  cfg.max_iters = 150;
  return cfg;
}

TEST(MogdTest, MinimizeFindsGlobalMinimum) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  // F1 = x0 + x1 minimized at (0,0) with value 0.
  CoResult r1 = solver.Minimize(problem, 0);
  EXPECT_NEAR(r1.target_value, 0.0, 1e-3);
  // F2 = (1-x0)^2 + x1 minimized at (1,0) with value 0.
  CoResult r2 = solver.Minimize(problem, 1);
  EXPECT_NEAR(r2.target_value, 0.0, 1e-3);
}

TEST(MogdTest, MinimizeReturnsDecodedRaw) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  CoResult r = solver.Minimize(problem, 0);
  EXPECT_EQ(r.raw.size(), 2u);
  EXPECT_TRUE(UnitSpace2().Validate(r.raw).ok());
}

TEST(MogdTest, SolveCoRespectsConstraints) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  // Middle-point-probe style box: F1 in [0.4, 0.6], F2 in [0.0, 0.5].
  CoProblem co;
  co.target = 0;
  co.lower = {0.4, 0.0};
  co.upper = {0.6, 0.5};
  auto result = solver.SolveCo(problem, co);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->objectives[0], 0.4 - 1e-4);
  EXPECT_LE(result->objectives[0], 0.6 + 1e-4);
  EXPECT_GE(result->objectives[1], -1e-4);
  EXPECT_LE(result->objectives[1], 0.5 + 1e-4);
  // The constrained optimum of F1 is at its lower bound 0.4 (frontier point).
  EXPECT_NEAR(result->target_value, 0.4, 0.02);
}

TEST(MogdTest, SolveCoDetectsInfeasibleBox) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  // Frontier is F2 = (1-F1)^2 >= (1-0.2)^2 = 0.64 when F1 <= 0.2; demanding
  // F2 <= 0.1 simultaneously is impossible.
  CoProblem co;
  co.target = 0;
  co.lower = {0.0, 0.0};
  co.upper = {0.2, 0.1};
  auto result = solver.SolveCo(problem, co);
  EXPECT_FALSE(result.has_value());
}

TEST(MogdTest, SolveCoHonorsLinearConstraints) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  CoProblem co;
  co.target = 1;
  co.lower = {0.0, 0.0};
  co.upper = {1.0, 1.5};
  // Linear constraint: F1 >= 0.5, i.e. -F1 <= -0.5.
  co.linear.push_back({{-1.0, 0.0}, -0.5});
  auto result = solver.SolveCo(problem, co);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->objectives[0], 0.5 - 1e-4);
  // min F2 given F1 >= 0.5 is (1-1)^2 = 0 at x0=1.
  EXPECT_NEAR(result->target_value, 0.0, 0.02);
}

TEST(MogdTest, BatchMatchesSequentialResults) {
  MooProblem problem = ConvexProblem();
  ThreadPool pool(4);
  MogdConfig cfg = FastConfig();
  cfg.pool = &pool;
  MogdSolver solver(cfg);
  std::vector<CoProblem> problems;
  for (int i = 0; i < 6; ++i) {
    CoProblem co;
    co.target = 0;
    co.lower = {i * 0.15, 0.0};
    co.upper = {i * 0.15 + 0.15, 1.2};
    problems.push_back(co);
  }
  auto batch = solver.SolveBatch(problem, problems);
  ASSERT_EQ(batch.size(), problems.size());
  MogdConfig seq_cfg = cfg;
  seq_cfg.pool = nullptr;
  MogdSolver seq(seq_cfg);
  auto sequential = seq.SolveBatch(problem, problems);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i].has_value(), sequential[i].has_value()) << i;
    if (batch[i].has_value()) {
      EXPECT_NEAR(batch[i]->target_value, sequential[i]->target_value, 1e-9)
          << i;
    }
  }
}

TEST(MogdTest, UncertaintyAlphaMakesValuesConservative) {
  // A model with constant stddev 0.2.
  class Noisy : public ObjectiveModel {
   public:
    double Predict(const Vector& x) const override { return x[0]; }
    void PredictWithUncertainty(const Vector& x, double* mean,
                                double* stddev) const override {
      *mean = x[0];
      *stddev = 0.2;
    }
    Vector InputGradient(const Vector& x) const override {
      return {1.0, 0.0};
    }
    int input_dim() const override { return 2; }
    std::string Name() const override { return "noisy"; }
  };
  auto noisy = std::make_shared<Noisy>();
  auto other = std::make_shared<CallableModel>(
      "o", 2, [](const Vector& x) { return 1.0 - x[0]; });
  MooProblem problem(&UnitSpace2(), {MooObjective{"noisy", noisy},
                                     MooObjective{"o", other}});
  MogdConfig cfg = FastConfig();
  cfg.alpha = 1.0;
  MogdSolver solver(cfg);
  CoProblem co;
  co.target = 0;
  co.lower = {0.0, 0.0};
  co.upper = {1.5, 1.5};
  auto result = solver.SolveCo(problem, co);
  ASSERT_TRUE(result.has_value());
  // Reported objective includes +alpha*std = +0.2.
  EXPECT_NEAR(result->objectives[0] - result->x[0], 0.2, 1e-6);
}

TEST(MogdTest, MaximizationObjectiveIsNegatedInternally) {
  auto up = std::make_shared<CallableModel>(
      "up", 2, [](const Vector& x) { return x[0]; });
  MooProblem problem(&UnitSpace2(),
                     {MooObjective{"up", up, /*minimize=*/false}});
  MogdSolver solver(FastConfig());
  CoResult r = solver.Minimize(problem, 0);
  // Minimizing -x0 drives x0 to 1.
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(problem.ToNatural(0, r.target_value), 1.0, 1e-3);
}

TEST(MogdTest, DeterministicForFixedSeed) {
  MooProblem problem = ConvexProblem();
  MogdConfig cfg = FastConfig();
  cfg.seed = 123;
  MogdSolver a(cfg);
  MogdSolver b(cfg);
  CoProblem co;
  co.target = 0;
  co.lower = {0.2, 0.0};
  co.upper = {0.8, 0.8};
  auto ra = a.SolveCo(problem, co);
  auto rb = b.SolveCo(problem, co);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->x, rb->x);
  EXPECT_DOUBLE_EQ(ra->target_value, rb->target_value);
}

TEST(MogdTest, EmptyBatchReturnsEmpty) {
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  EXPECT_TRUE(solver.SolveBatch(problem, {}).empty());
}

// --------------------------------------------------------- Exhaustive

TEST(ExhaustiveTest, MinimizeAgreesWithMogd) {
  MooProblem problem = ConvexProblem();
  ExhaustiveSolver ex(20000);
  MogdSolver gd(FastConfig());
  for (int target = 0; target < 2; ++target) {
    const double ve = ex.Minimize(problem, target).target_value;
    const double vg = gd.Minimize(problem, target).target_value;
    EXPECT_NEAR(ve, vg, 0.02) << "target " << target;
  }
}

TEST(ExhaustiveTest, SolveCoAgreesWithMogdOnFeasibleBox) {
  MooProblem problem = ConvexProblem();
  ExhaustiveSolver ex(20000);
  MogdSolver gd(FastConfig());
  CoProblem co;
  co.target = 0;
  co.lower = {0.3, 0.0};
  co.upper = {0.7, 0.6};
  auto re = ex.SolveCo(problem, co);
  auto rg = gd.SolveCo(problem, co);
  ASSERT_TRUE(re.has_value());
  ASSERT_TRUE(rg.has_value());
  EXPECT_NEAR(re->target_value, rg->target_value, 0.03);
}

TEST(ExhaustiveTest, FrontierIsMutuallyNonDominated) {
  MooProblem problem = ConvexProblem();
  ExhaustiveSolver ex(2000);
  auto frontier = ex.Frontier(problem);
  EXPECT_GT(frontier.size(), 5u);
  EXPECT_TRUE(MutuallyNonDominated(frontier));
}

// Property: MOGD never reports an infeasible solution as feasible.
class MogdFeasibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MogdFeasibilityProperty, ReportedSolutionsSatisfyBounds) {
  Rng rng(GetParam());
  MooProblem problem = ConvexProblem();
  MogdSolver solver(FastConfig());
  for (int trial = 0; trial < 5; ++trial) {
    CoProblem co;
    co.target = rng.UniformInt(0, 1);
    const double l0 = rng.Uniform(0, 0.8);
    const double l1 = rng.Uniform(0, 0.8);
    co.lower = {l0, l1};
    co.upper = {l0 + rng.Uniform(0.1, 0.6), l1 + rng.Uniform(0.1, 0.6)};
    auto result = solver.SolveCo(problem, co);
    if (!result.has_value()) continue;
    for (int j = 0; j < 2; ++j) {
      EXPECT_GE(result->objectives[j], co.lower[j] - 1e-4);
      EXPECT_LE(result->objectives[j], co.upper[j] + 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MogdFeasibilityProperty,
                         ::testing::Range(70, 78));

}  // namespace
}  // namespace udao
