#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <future>
#include <limits>
#include <set>
#include <thread>

#include "common/check.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace udao {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposeRoundTrips) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  Matrix tt = t.Transpose();
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
  }
}

TEST(MatrixTest, ApplyAndApplyTranspose) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Vector v = {1, 1};
  Vector av = a.Apply(v);
  EXPECT_EQ(av, (Vector{3, 7, 11}));
  Vector w = {1, 1, 1};
  Vector atw = a.ApplyTranspose(w);
  EXPECT_EQ(atw, (Vector{9, 12}));
}

TEST(MatrixTest, IdentityIsMultiplicativeUnit) {
  Matrix a = Matrix::FromRows({{2, -1}, {0.5, 3}});
  Matrix i = Matrix::Identity(2);
  Matrix ai = a.Multiply(i);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
  }
}

TEST(CholeskyTest, FactorReconstructsSpdMatrix) {
  Matrix a = Matrix::FromRows({{4, 2, 0.5}, {2, 5, 1}, {0.5, 1, 3}});
  StatusOr<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix rec = l->Multiply(l->Transpose());
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-12);
  }
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  StatusOr<Matrix> l = CholeskyFactor(a);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
}

TEST(SolveSpdTest, SolvesLinearSystem) {
  Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  Vector b = {1, 2};
  StatusOr<Vector> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  Vector ax = a.Apply(*x);
  EXPECT_NEAR(ax[0], b[0], 1e-12);
  EXPECT_NEAR(ax[1], b[1], 1e-12);
}

TEST(VectorOpsTest, DotNormDistance) {
  Vector a = {3, 4};
  Vector b = {0, 0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25);
  EXPECT_DOUBLE_EQ(Norm2(a), 5);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25);
}

// Property: for random SPD matrices A = M M^T + nI, SolveSpd returns x with
// ||Ax - b|| tiny.
class SpdSolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveProperty, ResidualIsTiny) {
  const int n = GetParam();
  Rng rng(1234 + n);
  Matrix m(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) m(r, c) = rng.Gaussian();
  }
  Matrix a = m.Multiply(m.Transpose());
  for (int i = 0; i < n; ++i) a(i, i) += n;  // well conditioned
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.Uniform(-1, 1);
  StatusOr<Vector> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  Vector ax = a.Apply(*x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------- Random

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 4));
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4}));
}

TEST(LatinHypercubeTest, EachStratumHitOnce) {
  Rng rng(5);
  const int n = 16;
  auto pts = LatinHypercube(n, 3, &rng);
  ASSERT_EQ(pts.size(), static_cast<size_t>(n));
  for (int d = 0; d < 3; ++d) {
    std::set<int> strata;
    for (const auto& p : pts) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LT(p[d], 1.0);
      strata.insert(static_cast<int>(p[d] * n));
    }
    EXPECT_EQ(strata.size(), static_cast<size_t>(n));
  }
}

TEST(HaltonTest, DeterministicAndInUnitCube) {
  auto a = HaltonSequence(50, 4);
  auto b = HaltonSequence(50, 4);
  EXPECT_EQ(a, b);
  for (const auto& p : a) {
    for (double v : p) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(HaltonTest, FirstBase2ValuesMatchKnownSequence) {
  auto pts = HaltonSequence(4, 1);
  EXPECT_DOUBLE_EQ(pts[0][0], 0.5);
  EXPECT_DOUBLE_EQ(pts[1][0], 0.25);
  EXPECT_DOUBLE_EQ(pts[2][0], 0.75);
  EXPECT_DOUBLE_EQ(pts[3][0], 0.125);
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.13809, 1e-4);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(StatsTest, WeightedMapeMatchesDefinition) {
  std::vector<double> actual = {100, 10};
  std::vector<double> pred = {90, 20};
  // (10 + 10) / 110
  EXPECT_NEAR(WeightedMape(actual, pred), 20.0 / 110.0, 1e-12);
}

TEST(StatsTest, WeightedMapePerfectPrediction) {
  std::vector<double> actual = {5, 7, 9};
  EXPECT_DOUBLE_EQ(WeightedMape(actual, actual), 0.0);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, AtLeastOneThreadEvenIfZeroRequested) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not deadlock
}

TEST(ThreadPoolTest, ParallelForZeroNeverWaitsOnUnrelatedTasks) {
  ThreadPool pool(1);
  // Block the lone worker on a task we control. If ParallelFor(0) waited
  // for pool-wide idle it would deadlock here (the blocker cannot finish
  // until after the call returns), which ctest reports as a timeout.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] { gate.wait(); });
  int calls = 0;
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  pool.ParallelFor(-3, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  release.set_value();
  pool.WaitIdle();
}

TEST(ThreadPoolTest, WaitIdleFromTwoThreadsConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  std::thread a([&pool] { pool.WaitIdle(); });
  std::thread b([&pool] { pool.WaitIdle(); });
  a.join();
  b.join();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, SubmitFromTaskDuringShutdownStillRuns) {
  std::atomic<bool> follow_up_ran{false};
  {
    ThreadPool pool(1);
    // The outer task is still executing when the destructor flips the
    // shutdown flag; its follow-up submission must be drained, not dropped.
    std::atomic<bool>* flag = &follow_up_ran;
    ThreadPool* p = &pool;
    pool.Submit([p, flag] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      p->Submit([flag] { flag->store(true); });
    });
  }
  EXPECT_TRUE(follow_up_ran.load());
}

// ---------------------------------------------------------------- Check

TEST(CheckTest, PassingChecksAreSilent) {
  UDAO_CHECK(true);
  UDAO_CHECK_EQ(2, 2);
  UDAO_CHECK_LT(1, 2);
  UDAO_CHECK_FINITE(0.0);
  UDAO_CHECK_FINITE(-1e300);
  UDAO_DCHECK(true);
  UDAO_DCHECK_FINITE(1.5);
}

TEST(CheckDeathTest, CheckFailureAbortsWithLocation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(UDAO_CHECK(1 == 2), "UDAO_CHECK failed");
}

TEST(CheckDeathTest, CheckOpPrintsOperands) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(UDAO_CHECK_LT(5, 3), "5 < 3");
}

TEST(CheckDeathTest, CheckFiniteAbortsOnNanAndInf) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(UDAO_CHECK_FINITE(std::nan("")), "UDAO_CHECK_FINITE");
  // An infinity literal, not 1.0/0.0: under the strict-UBSan build
  // (float-divide-by-zero, non-recoverable) the division itself would abort
  // before CHECK_FINITE gets to print.
  EXPECT_DEATH(UDAO_CHECK_FINITE(std::numeric_limits<double>::infinity()),
               "UDAO_CHECK_FINITE");
}

#ifdef NDEBUG
TEST(CheckTest, DcheckCompilesOutInReleaseBuilds) {
  // Deliberately-false conditions: Release keeps UDAO_CHECK but drops
  // UDAO_DCHECK, the contract udao_lint's no-assert rule exists to protect.
  UDAO_DCHECK(false);
  UDAO_DCHECK_FINITE(std::nan(""));
}
#else
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(UDAO_DCHECK(false), "UDAO_CHECK failed");
  EXPECT_DEATH(UDAO_DCHECK_FINITE(std::nan("")), "UDAO_CHECK_FINITE");
}
#endif

}  // namespace
}  // namespace udao
