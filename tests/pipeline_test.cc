#include <gtest/gtest.h>

#include <cmath>

#include "tuning/pipeline.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConvexProblem;
using testing_problems::UnitSpace2;

PipelinePoint P(Vector objectives, std::vector<Vector> confs = {{0.0}}) {
  return PipelinePoint{std::move(objectives), std::move(confs)};
}

TEST(PipelineComposeTest, SumsAndFilters) {
  // a: (1,4) and (3,1); b: (2,2) and (5,0).
  // Sums: (3,6) (6,4) (5,3) (8,1) -- (6,4) dominated by (5,3).
  std::vector<PipelinePoint> a = {P({1, 4}, {{0.1}}), P({3, 1}, {{0.2}})};
  std::vector<PipelinePoint> b = {P({2, 2}, {{0.3}}), P({5, 0}, {{0.4}})};
  auto out = PipelineOptimizer::Compose(a, b, 100);
  ASSERT_EQ(out.size(), 3u);
  for (const PipelinePoint& p : out) {
    EXPECT_NE(p.objectives, (Vector{6, 4}));
    EXPECT_EQ(p.stage_confs_encoded.size(), 2u);
  }
}

TEST(PipelineComposeTest, TracksStageDecomposition) {
  std::vector<PipelinePoint> a = {P({1, 4}, {{0.1}})};
  std::vector<PipelinePoint> b = {P({2, 2}, {{0.3}})};
  auto out = PipelineOptimizer::Compose(a, b, 100);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].objectives, (Vector{3, 6}));
  EXPECT_DOUBLE_EQ(out[0].stage_confs_encoded[0][0], 0.1);
  EXPECT_DOUBLE_EQ(out[0].stage_confs_encoded[1][0], 0.3);
}

TEST(PipelineComposeTest, ThinningKeepsExtremes) {
  std::vector<PipelinePoint> a;
  std::vector<PipelinePoint> b;
  for (int i = 0; i <= 20; ++i) {
    const double t = i / 20.0;
    a.push_back(P({t, 1.0 - t}, {{t}}));
    b.push_back(P({t, 1.0 - t}, {{t}}));
  }
  auto out = PipelineOptimizer::Compose(a, b, 8);
  EXPECT_LE(out.size(), 8u);
  double min0 = 1e9;
  double max0 = -1e9;
  for (const PipelinePoint& p : out) {
    min0 = std::min(min0, p.objectives[0]);
    max0 = std::max(max0, p.objectives[0]);
  }
  EXPECT_NEAR(min0, 0.0, 1e-9);  // both stage minima kept
  EXPECT_NEAR(max0, 2.0, 1e-9);
}

class PipelineOptimizerTest : public ::testing::Test {
 protected:
  PipelineOptions FastOptions() {
    PipelineOptions options;
    options.pf.mogd.multistart = 4;
    options.pf.mogd.max_iters = 100;
    options.points_per_stage = 8;
    // Test problems are exact models: no conservative adjustment, so the
    // composed objectives equal the plain stage sums.
    options.uncertainty_alpha = 0.0;
    return options;
  }
};

TEST_F(PipelineOptimizerTest, TwoStagePipelineFrontier) {
  MooProblem stage_a = ConvexProblem();
  MooProblem stage_b = ConvexProblem();
  PipelineOptimizer optimizer(FastOptions());
  auto result = optimizer.Optimize(
      {{"etl", &stage_a}, {"train", &stage_b}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->frontier.size(), 5u);
  EXPECT_EQ(result->stage_frontier_sizes.size(), 2u);
  // Each frontier point decomposes into 2 configurations, and the summed
  // frontier is mutually non-dominated.
  std::vector<MooPoint> as_points;
  for (const PipelinePoint& p : result->frontier) {
    EXPECT_EQ(p.stage_confs_encoded.size(), 2u);
    as_points.push_back(MooPoint{p.objectives, {}});
  }
  EXPECT_TRUE(MutuallyNonDominated(as_points));
  // Sums of two frontiers bounded below by 0 (both problems have min 0).
  EXPECT_GE(result->utopia[0], -1e-6);
}

TEST_F(PipelineOptimizerTest, PipelinePointObjectivesMatchStageSums) {
  MooProblem stage = ConvexProblem();
  PipelineOptimizer optimizer(FastOptions());
  auto result = optimizer.Optimize({{"a", &stage}, {"b", &stage}});
  ASSERT_TRUE(result.ok());
  for (const PipelinePoint& p : result->frontier) {
    Vector sum(2, 0.0);
    for (const Vector& conf : p.stage_confs_encoded) {
      const Vector f = stage.Evaluate(conf);
      for (int d = 0; d < 2; ++d) sum[d] += f[d];
    }
    EXPECT_NEAR(sum[0], p.objectives[0], 1e-9);
    EXPECT_NEAR(sum[1], p.objectives[1], 1e-9);
  }
}

TEST_F(PipelineOptimizerTest, RecommendFollowsWeights) {
  MooProblem stage = ConvexProblem();
  PipelineOptimizer optimizer(FastOptions());
  auto result = optimizer.Optimize({{"a", &stage}, {"b", &stage}});
  ASSERT_TRUE(result.ok());
  auto f1_heavy = PipelineOptimizer::Recommend(*result, {0.9, 0.1});
  auto f2_heavy = PipelineOptimizer::Recommend(*result, {0.1, 0.9});
  ASSERT_TRUE(f1_heavy.has_value());
  ASSERT_TRUE(f2_heavy.has_value());
  EXPECT_LE(f1_heavy->objectives[0], f2_heavy->objectives[0] + 1e-9);
  EXPECT_GE(f1_heavy->objectives[1], f2_heavy->objectives[1] - 1e-9);
}

TEST_F(PipelineOptimizerTest, RejectsBadPipelines) {
  PipelineOptimizer optimizer(FastOptions());
  EXPECT_FALSE(optimizer.Optimize({}).ok());
  MooProblem two = ConvexProblem();
  MooProblem three = testing_problems::Tri();
  EXPECT_FALSE(optimizer.Optimize({{"a", &two}, {"b", &three}}).ok());
}

TEST_F(PipelineOptimizerTest, SingleStageDegeneratesToPlainFrontier) {
  MooProblem stage = ConvexProblem();
  PipelineOptimizer optimizer(FastOptions());
  auto result = optimizer.Optimize({{"only", &stage}});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->frontier.size(), 5u);
  for (const PipelinePoint& p : result->frontier) {
    EXPECT_EQ(p.stage_confs_encoded.size(), 1u);
  }
}

}  // namespace
}  // namespace udao
