#include <gtest/gtest.h>

#include "common/random.h"
#include "spark/conf.h"
#include "spark/dataflow.h"
#include "spark/engine.h"

namespace udao {
namespace {

// A representative SQL dataflow: scan -> filter -> exchange -> aggregate.
Dataflow SimpleSqlFlow(double rows = 5e7) {
  Dataflow flow("test_sql", WorkloadClass::kSql);
  int scan = flow.AddScan(rows, 120);
  int filter = flow.AddOp(
      {.type = OpType::kFilter, .inputs = {scan}, .selectivity = 0.4});
  int exchange = flow.AddOp({.type = OpType::kExchange, .inputs = {filter}});
  flow.AddOp({.type = OpType::kHashAggregate,
              .inputs = {exchange},
              .selectivity = 0.05});
  return flow;
}

// Join-heavy dataflow whose small side can be broadcast.
Dataflow JoinFlow(double small_rows) {
  Dataflow flow("test_join", WorkloadClass::kSql);
  int big = flow.AddScan(4e7, 150);
  int small = flow.AddScan(small_rows, 100);
  flow.AddOp(
      {.type = OpType::kJoin, .inputs = {small, big}, .selectivity = 0.8});
  return flow;
}

EngineOptions NoNoise() {
  EngineOptions opt;
  opt.noise_stddev = 0.0;
  return opt;
}

TEST(DataflowTest, ValidatesStructure) {
  Dataflow flow = SimpleSqlFlow();
  EXPECT_TRUE(flow.Validate().ok());
  EXPECT_EQ(flow.CountOps(OpType::kScan), 1);
  EXPECT_EQ(flow.CountOps(OpType::kExchange), 1);
  EXPECT_GT(flow.TotalInputBytes(), 0.0);
}

TEST(DataflowTest, RejectsEmptyFlow) {
  Dataflow flow("empty", WorkloadClass::kSql);
  EXPECT_FALSE(flow.Validate().ok());
}

TEST(EngineTest, RunProducesPositiveSaneMetrics) {
  SparkEngine engine(NoNoise());
  RuntimeMetrics m = engine.Run(SimpleSqlFlow(), BatchParamSpace().Defaults());
  EXPECT_GT(m.latency_s, 0.0);
  EXPECT_GT(m.cpu_time_s, 0.0);
  EXPECT_GT(m.bytes_read_mb, 0.0);
  EXPECT_GT(m.shuffle_write_mb, 0.0);
  EXPECT_EQ(m.num_stages, 2.0);
  EXPECT_GE(m.cpu_utilization, 0.0);
  EXPECT_LE(m.cpu_utilization, 1.0);
}

TEST(EngineTest, DeterministicEvenWithNoise) {
  SparkEngine engine;  // default noise on
  Vector conf = BatchParamSpace().Defaults();
  double l1 = engine.Latency(SimpleSqlFlow(), conf);
  double l2 = engine.Latency(SimpleSqlFlow(), conf);
  EXPECT_DOUBLE_EQ(l1, l2);
}

TEST(EngineTest, MoreCoresNeverHurtOnBigJob) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(2e8);
  Vector small = BatchParamSpace().Defaults();
  Vector big = small;
  small[1] = 4;   // 4 executors
  small[2] = 2;   // 2 cores each -> 8 cores
  big[1] = 24;    // 24 executors
  big[2] = 4;     // 4 cores each -> 96 cores
  EXPECT_GT(engine.Latency(flow, small), engine.Latency(flow, big));
}

TEST(EngineTest, TinyMemoryCausesSpill) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(2e8);
  Vector conf = BatchParamSpace().Defaults();
  conf[3] = 1;     // 1 GB per executor
  conf[11] = 8;    // very few shuffle partitions -> huge per-task state
  RuntimeMetrics starved = engine.Run(flow, conf);
  Vector roomy = conf;
  roomy[3] = 32;   // 32 GB per executor
  RuntimeMetrics fine = engine.Run(flow, roomy);
  EXPECT_GT(starved.spill_mb, fine.spill_mb);
  EXPECT_GT(starved.latency_s, fine.latency_s);
}

TEST(EngineTest, CompressionTradesNetworkForCpu) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(1e8);
  Vector on = BatchParamSpace().Defaults();
  Vector off = on;
  on[6] = 1;
  off[6] = 0;
  RuntimeMetrics with = engine.Run(flow, on);
  RuntimeMetrics without = engine.Run(flow, off);
  EXPECT_LT(with.shuffle_write_mb, without.shuffle_write_mb);
  EXPECT_GT(with.cpu_time_s, without.cpu_time_s);
}

TEST(EngineTest, BroadcastThresholdSwitchesJoinStrategy) {
  SparkEngine engine(NoNoise());
  // Small side ~ 5 MB: broadcast when threshold is 16 MB, shuffle when 1 MB.
  Dataflow flow = JoinFlow(5e4);
  Vector broadcast = BatchParamSpace().Defaults();
  Vector shuffle = broadcast;
  broadcast[10] = 16;
  shuffle[10] = 1;
  RuntimeMetrics b = engine.Run(flow, broadcast);
  RuntimeMetrics s = engine.Run(flow, shuffle);
  EXPECT_LT(b.num_stages, s.num_stages);
  EXPECT_LT(b.shuffle_write_mb, s.shuffle_write_mb);
}

TEST(EngineTest, ExcessivePartitionsAddOverhead) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(1e6);  // small job
  Vector few = BatchParamSpace().Defaults();
  Vector many = few;
  few[11] = 16;
  many[11] = 400;
  EXPECT_LT(engine.Latency(flow, few), engine.Latency(flow, many));
}

TEST(EngineTest, SmallFetchWindowInflatesFetchWait) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(2e8);
  Vector conf = BatchParamSpace().Defaults();
  conf[11] = 16;  // few shuffle partitions -> large per-task fetches
  Vector tight = conf;
  Vector roomy = conf;
  tight[4] = 8;    // spark.reducer.maxSizeInFlight = 8 MB
  roomy[4] = 128;  // 128 MB
  RuntimeMetrics m_tight = engine.Run(flow, tight);
  RuntimeMetrics m_roomy = engine.Run(flow, roomy);
  EXPECT_GT(m_tight.fetch_wait_s, m_roomy.fetch_wait_s);
  EXPECT_GT(m_tight.latency_s, m_roomy.latency_s);
}

TEST(EngineTest, BypassMergeThresholdDiscountsShuffleWrites) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(2e8);
  Vector conf = BatchParamSpace().Defaults();
  conf[11] = 150;  // shuffle partitions
  Vector bypass = conf;
  Vector merge = conf;
  bypass[5] = 800;  // threshold above partition count -> bypass path
  merge[5] = 100;   // below -> full merge sort writes
  EXPECT_LT(engine.Latency(flow, bypass), engine.Latency(flow, merge));
}

TEST(EngineTest, NoiseCreatesVarianceAcrossWorkloadNames) {
  SparkEngine engine;  // noise on
  Vector conf = BatchParamSpace().Defaults();
  Dataflow a = SimpleSqlFlow();
  Dataflow b("other_name", WorkloadClass::kSql);
  b.AddScan(5e7, 120);
  int f = b.AddOp(
      {.type = OpType::kFilter, .inputs = {0}, .selectivity = 0.4});
  int e = b.AddOp({.type = OpType::kExchange, .inputs = {f}});
  b.AddOp({.type = OpType::kHashAggregate,
           .inputs = {e},
           .selectivity = 0.05});
  // Same plan, different workload name -> different noise draw.
  EXPECT_NE(engine.Latency(a, conf), engine.Latency(b, conf));
}

TEST(CostTest, CostInCoresIsInstancesTimesCores) {
  Vector conf = BatchParamSpace().Defaults();
  conf[1] = 10;
  conf[2] = 4;
  EXPECT_DOUBLE_EQ(CostInCores(conf), 40.0);
}

TEST(CostTest, CpuHoursScalesWithLatency) {
  Vector conf = BatchParamSpace().Defaults();
  EXPECT_DOUBLE_EQ(CostInCpuHours(3600.0, conf), CostInCores(conf));
  EXPECT_DOUBLE_EQ(CostInCpuHours(0.0, conf), 0.0);
}

TEST(CostTest, Cost2IncludesIoComponent) {
  Vector conf = BatchParamSpace().Defaults();
  RuntimeMetrics none;
  RuntimeMetrics heavy;
  heavy.bytes_read_mb = 1e5;
  EXPECT_GT(Cost2(10.0, heavy, conf), Cost2(10.0, none, conf));
}

// Property: latency is monotone non-increasing in total cores for a fixed
// large workload, sweeping executor counts (wave-quantization can plateau but
// adding executors must never make the simulated job slower by much).
class CoreMonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoreMonotonicityProperty, AddingExecutorsNeverHurtsMuch) {
  SparkEngine engine(NoNoise());
  Dataflow flow = SimpleSqlFlow(1e8 * (1 + GetParam() % 3));
  Vector conf = BatchParamSpace().Defaults();
  double prev = 1e100;
  for (int execs = 2; execs <= 28; execs += 2) {
    conf[1] = execs;
    const double lat = engine.Latency(flow, conf);
    EXPECT_LE(lat, prev * 1.02) << "execs " << execs;
    prev = lat;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, CoreMonotonicityProperty,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace udao
