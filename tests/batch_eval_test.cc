// Equivalence of the batched model-inference surface with the scalar one:
// PredictBatch / GradientBatch / PredictWithUncertaintyBatch must reproduce
// the per-point entry points exactly for every ObjectiveModel subclass, and
// the solvers built on top (MOGD lockstep multistarts, SolveBatch on a
// thread pool) must return identical solutions regardless of batching mode,
// thread count, or repetition.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "model/analytic_models.h"
#include "model/gp_model.h"
#include "model/mlp_model.h"
#include "model/objective_model.h"
#include "moo/mogd.h"
#include "moo/problem.h"
#include "moo/progressive_frontier.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConvexProblem;
using testing_problems::UnitSpace2;

Matrix RandomPoints(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, dim);
  for (double& v : x.data()) v = rng.Uniform();
  return x;
}

Vector Row(const Matrix& x, int i) {
  return Vector(x.RowPtr(i), x.RowPtr(i) + x.cols());
}

// Asserts the three batch entry points agree exactly with their scalar
// counterparts on every row of `x`.
void ExpectBatchMatchesScalar(const ObjectiveModel& model, const Matrix& x) {
  const int n = x.rows();
  const int dim = x.cols();

  Vector batch_values;
  model.PredictBatch(x, &batch_values);
  ASSERT_EQ(static_cast<int>(batch_values.size()), n);

  Matrix batch_grads;
  Vector fused_values;
  model.GradientBatch(x, &batch_grads, &fused_values);
  ASSERT_EQ(batch_grads.rows(), n);
  ASSERT_EQ(batch_grads.cols(), dim);
  ASSERT_EQ(static_cast<int>(fused_values.size()), n);

  Matrix grads_only;
  model.GradientBatch(x, &grads_only);

  Vector batch_mean;
  Vector batch_std;
  model.PredictWithUncertaintyBatch(x, &batch_mean, &batch_std);
  ASSERT_EQ(static_cast<int>(batch_mean.size()), n);
  ASSERT_EQ(static_cast<int>(batch_std.size()), n);

  for (int i = 0; i < n; ++i) {
    const Vector xi = Row(x, i);
    const double scalar_value = model.Predict(xi);
    EXPECT_EQ(batch_values[i], scalar_value) << "PredictBatch row " << i;
    EXPECT_EQ(fused_values[i], scalar_value) << "fused values row " << i;
    const Vector scalar_grad = model.InputGradient(xi);
    for (int d = 0; d < dim; ++d) {
      EXPECT_EQ(batch_grads(i, d), scalar_grad[d])
          << "GradientBatch row " << i << " dim " << d;
      EXPECT_EQ(grads_only(i, d), scalar_grad[d])
          << "GradientBatch (no values) row " << i << " dim " << d;
    }
    double mean = 0.0;
    double stddev = 0.0;
    model.PredictWithUncertainty(xi, &mean, &stddev);
    EXPECT_EQ(batch_mean[i], mean) << "uncertainty mean row " << i;
    EXPECT_EQ(batch_std[i], stddev) << "uncertainty std row " << i;
  }
}

std::shared_ptr<MlpModel> FitTinyMlp(int dim, bool log_targets) {
  Rng rng(11);
  Matrix x = RandomPoints(48, dim, 5);
  Vector y(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    y[i] = 1.5 + x(i, 0) * 2.0 + (dim > 1 ? x(i, 1) * x(i, 1) : 0.0);
  }
  MlpModelConfig cfg;
  cfg.hidden = {16, 16};
  cfg.train.epochs = 60;
  cfg.log_transform_targets = log_targets;
  auto fitted = MlpModel::Fit(x, y, cfg, &rng);
  EXPECT_TRUE(fitted.ok());
  return *fitted;
}

std::shared_ptr<GpModel> FitTinyGp(int dim, bool log_targets) {
  Matrix x = RandomPoints(32, dim, 6);
  Vector y(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    y[i] = 2.0 + x(i, 0) + 0.5 * x(i, dim - 1);
  }
  GpConfig cfg;
  cfg.hyper_opt_steps = 20;
  cfg.log_transform_targets = log_targets;
  auto fitted = GpModel::Fit(x, y, cfg);
  EXPECT_TRUE(fitted.ok());
  return *fitted;
}

TEST(BatchEvalTest, MlpModelMatchesScalar) {
  ExpectBatchMatchesScalar(*FitTinyMlp(4, false), RandomPoints(17, 4, 21));
}

TEST(BatchEvalTest, MlpModelLogTargetsMatchesScalar) {
  ExpectBatchMatchesScalar(*FitTinyMlp(3, true), RandomPoints(9, 3, 22));
}

TEST(BatchEvalTest, GpModelMatchesScalar) {
  ExpectBatchMatchesScalar(*FitTinyGp(4, false), RandomPoints(13, 4, 23));
}

TEST(BatchEvalTest, GpModelLogTargetsMatchesScalar) {
  ExpectBatchMatchesScalar(*FitTinyGp(3, true), RandomPoints(7, 3, 24));
}

TEST(BatchEvalTest, AnalyticModelsMatchScalar) {
  const int batch_dim = BatchParamSpace().EncodedDim();
  const int stream_dim = StreamParamSpace().EncodedDim();
  auto latency = MakeAnalyticBatchLatencyModel(AnalyticWorkload{});
  ExpectBatchMatchesScalar(*latency, RandomPoints(11, batch_dim, 31));
  ExpectBatchMatchesScalar(*MakeCostCoresModel(),
                           RandomPoints(11, batch_dim, 32));
  ExpectBatchMatchesScalar(*MakeStreamCostCoresModel(),
                           RandomPoints(11, stream_dim, 33));
  ExpectBatchMatchesScalar(*MakeCpuHourModel(latency),
                           RandomPoints(11, batch_dim, 34));
  ExpectBatchMatchesScalar(*MakeFig3LatencyModel(), RandomPoints(11, 2, 35));
  ExpectBatchMatchesScalar(*MakeFig3CostModel(), RandomPoints(11, 2, 36));
}

TEST(BatchEvalTest, CallableModelDefaultLoopMatchesScalar) {
  // No WithBatch installed: exercises the ObjectiveModel base-class
  // fallbacks (scalar loop) end to end.
  CallableModel model("quad", 3, [](const Vector& x) {
    return x[0] * x[0] + 2.0 * x[1] + x[2];
  });
  ExpectBatchMatchesScalar(model, RandomPoints(6, 3, 41));
}

TEST(BatchEvalTest, WrapperModelsMatchScalar) {
  auto mlp = FitTinyMlp(3, false);
  ExpectBatchMatchesScalar(NonNegativeModel(mlp), RandomPoints(9, 3, 51));
  auto gp = FitTinyGp(3, false);
  ExpectBatchMatchesScalar(NonNegativeModel(gp), RandomPoints(9, 3, 52));
  // UncertaintyAdjustedModel has no GradientBatch override of its own; its
  // value surface must still match per-point exactly.
  UncertaintyAdjustedModel adjusted(gp, /*alpha=*/1.5);
  const Matrix pts = RandomPoints(9, 3, 53);
  Vector batch;
  adjusted.PredictBatch(pts, &batch);
  Vector mean_b;
  Vector std_b;
  adjusted.PredictWithUncertaintyBatch(pts, &mean_b, &std_b);
  for (int i = 0; i < pts.rows(); ++i) {
    const Vector xi = Row(pts, i);
    EXPECT_EQ(batch[i], adjusted.Predict(xi));
    double mean = 0.0;
    double stddev = 0.0;
    adjusted.PredictWithUncertainty(xi, &mean, &stddev);
    EXPECT_EQ(mean_b[i], mean);
    EXPECT_EQ(std_b[i], stddev);
  }
}

// A DNN-backed bi-objective problem over UnitSpace2, exercising the GEMM
// batch path inside the solvers.
MooProblem DnnProblem(std::shared_ptr<MlpModel>* keep_alive) {
  *keep_alive = FitTinyMlp(2, false);
  auto cost = std::make_shared<CallableModel>(
      "cost", 2, [](const Vector& x) { return x[0] + 0.3 * x[1]; },
      [](const Vector& x) {
        (void)x;
        return Vector{1.0, 0.3};
      });
  return MooProblem(&UnitSpace2(),
                    {ObjectiveSpec{"lat", *keep_alive},
                     ObjectiveSpec{"cost", cost}});
}

MogdConfig SmallConfig() {
  MogdConfig cfg;
  cfg.multistart = 4;
  cfg.max_iters = 40;
  return cfg;
}

CoProblem CenterBox(const MooProblem& problem) {
  MogdSolver solver(SmallConfig());
  CoResult a = solver.Minimize(problem, 0);
  CoResult b = solver.Minimize(problem, 1);
  CoProblem co;
  co.target = 0;
  co.lower = {std::min(a.objectives[0], b.objectives[0]),
              std::min(a.objectives[1], b.objectives[1])};
  co.upper = {std::max(a.objectives[0], b.objectives[0]),
              std::max(a.objectives[1], b.objectives[1])};
  return co;
}

TEST(BatchEvalTest, MogdBatchedMatchesScalarSolutions) {
  std::shared_ptr<MlpModel> keep;
  MooProblem dnn = DnnProblem(&keep);
  for (const MooProblem* problem : {&dnn}) {
    MogdConfig batched = SmallConfig();
    batched.batched = true;
    MogdConfig scalar = SmallConfig();
    scalar.batched = false;

    const CoProblem co = CenterBox(*problem);
    auto r_batched = MogdSolver(batched).SolveCo(*problem, co);
    auto r_scalar = MogdSolver(scalar).SolveCo(*problem, co);
    ASSERT_EQ(r_batched.has_value(), r_scalar.has_value());
    if (r_batched.has_value()) {
      EXPECT_EQ(r_batched->x, r_scalar->x);
      EXPECT_EQ(r_batched->target_value, r_scalar->target_value);
      EXPECT_EQ(r_batched->objectives, r_scalar->objectives);
    }

    for (int target : {0, 1}) {
      CoResult m_batched = MogdSolver(batched).Minimize(*problem, target);
      CoResult m_scalar = MogdSolver(scalar).Minimize(*problem, target);
      EXPECT_EQ(m_batched.x, m_scalar.x) << "target " << target;
      EXPECT_EQ(m_batched.target_value, m_scalar.target_value)
          << "target " << target;
    }
  }
  // Same equivalence on the callable convex problem (default batch loops).
  MooProblem convex = ConvexProblem();
  MogdConfig batched = SmallConfig();
  MogdConfig scalar = SmallConfig();
  scalar.batched = false;
  const CoProblem co = CenterBox(convex);
  auto r_batched = MogdSolver(batched).SolveCo(convex, co);
  auto r_scalar = MogdSolver(scalar).SolveCo(convex, co);
  ASSERT_EQ(r_batched.has_value(), r_scalar.has_value());
  if (r_batched.has_value()) {
    EXPECT_EQ(r_batched->x, r_scalar->x);
    EXPECT_EQ(r_batched->target_value, r_scalar->target_value);
  }
}

TEST(BatchEvalTest, SolveBatchStableAcrossThreadsAndRuns) {
  std::shared_ptr<MlpModel> keep;
  MooProblem problem = DnnProblem(&keep);
  std::vector<CoProblem> problems;
  const CoProblem base = CenterBox(problem);
  for (int i = 0; i < 6; ++i) {
    CoProblem co = base;
    const double span = base.upper[0] - base.lower[0];
    co.lower[0] = base.lower[0] + span * i / 6.0;
    co.upper[0] = base.lower[0] + span * (i + 1) / 6.0;
    problems.push_back(std::move(co));
  }

  MogdConfig inline_cfg = SmallConfig();  // pool == nullptr
  ThreadPool pool(8);
  MogdConfig pooled_cfg = SmallConfig();
  pooled_cfg.pool = &pool;

  auto inline_1 = MogdSolver(inline_cfg).SolveBatch(problem, problems);
  auto inline_2 = MogdSolver(inline_cfg).SolveBatch(problem, problems);
  auto pooled_1 = MogdSolver(pooled_cfg).SolveBatch(problem, problems);
  auto pooled_2 = MogdSolver(pooled_cfg).SolveBatch(problem, problems);

  for (size_t i = 0; i < problems.size(); ++i) {
    ASSERT_EQ(inline_1[i].has_value(), pooled_1[i].has_value()) << i;
    ASSERT_EQ(inline_1[i].has_value(), inline_2[i].has_value()) << i;
    ASSERT_EQ(pooled_1[i].has_value(), pooled_2[i].has_value()) << i;
    if (!inline_1[i].has_value()) continue;
    // Bitwise-stable: threads=1 vs threads=8, and run-to-run.
    EXPECT_EQ(inline_1[i]->x, pooled_1[i]->x) << i;
    EXPECT_EQ(inline_1[i]->target_value, pooled_1[i]->target_value) << i;
    EXPECT_EQ(inline_1[i]->x, inline_2[i]->x) << i;
    EXPECT_EQ(pooled_1[i]->x, pooled_2[i]->x) << i;
  }
}

TEST(BatchEvalTest, PerfCountersPopulated) {
  MooProblem problem = ConvexProblem();
  MogdConfig cfg = SmallConfig();
  MogdSolver solver(cfg);

  SolvePerf perf;
  const CoProblem co = CenterBox(problem);
  auto result = solver.SolveCo(problem, co, &perf);
  // multistart x (max_iters + 1 final) evaluations x 2 objectives.
  const long long expected_evals =
      2LL * cfg.multistart * (cfg.max_iters + 1);
  EXPECT_EQ(perf.model_evals, expected_evals);
  // Lockstep: one batch call per objective per evaluation round.
  EXPECT_EQ(perf.batch_calls, 2LL * (cfg.max_iters + 1));
  EXPECT_EQ(perf.iterations,
            static_cast<long long>(cfg.multistart) * cfg.max_iters);
  EXPECT_DOUBLE_EQ(perf.AvgBatch(), cfg.multistart);
  EXPECT_GE(perf.solve_seconds, perf.eval_seconds);
  EXPECT_GT(perf.solve_seconds, 0.0);
  if (result.has_value()) {
    EXPECT_EQ(result->perf.model_evals, expected_evals);
  }

  // PF aggregates counters across reference points and probes.
  PfConfig pf_cfg;
  pf_cfg.mogd = cfg;
  ProgressiveFrontier pf(&problem, pf_cfg);
  const PfResult& pf_result = pf.Run(6);
  EXPECT_GT(pf_result.perf.model_evals, 0);
  EXPECT_GT(pf_result.perf.batch_calls, 0);
  EXPECT_GT(pf_result.perf.iterations, 0);
  EXPECT_GT(pf_result.probes, 0);
}

}  // namespace
}  // namespace udao
