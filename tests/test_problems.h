#ifndef UDAO_TESTS_TEST_PROBLEMS_H_
#define UDAO_TESTS_TEST_PROBLEMS_H_

#include <cmath>
#include <memory>

#include "model/objective_model.h"
#include "moo/problem.h"
#include "spark/conf.h"

namespace udao {
namespace testing_problems {

/// A two-continuous-knob parameter space over [0,1]^2 (EncodedDim == 2).
inline const ParamSpace& UnitSpace2() {
  static const ParamSpace& space = *new ParamSpace({
      {"u0", ParamType::kContinuous, 0.0, 1.0, {}, 0.5},
      {"u1", ParamType::kContinuous, 0.0, 1.0, {}, 0.5},
  });
  return space;
}

/// Convex bi-objective problem with known frontier:
///   F1 = x0 + x1,  F2 = (1 - x0)^2 + x1.
/// Pareto-optimal iff x1 = 0; the frontier is F2 = (1 - F1)^2, F1 in [0,1].
inline MooProblem ConvexProblem() {
  auto f1 = std::make_shared<CallableModel>(
      "f1", 2, [](const Vector& x) { return x[0] + x[1]; });
  auto f2 = std::make_shared<CallableModel>("f2", 2, [](const Vector& x) {
    return (1.0 - x[0]) * (1.0 - x[0]) + x[1];
  });
  return MooProblem(&UnitSpace2(),
                    {MooObjective{"f1", f1}, MooObjective{"f2", f2}});
}

/// ZDT2-style problem whose frontier (F2 = 1 - F1^2) is non-convex, the
/// regime where Weighted Sum only reaches the endpoints.
inline MooProblem ConcaveProblem() {
  auto f1 = std::make_shared<CallableModel>(
      "f1", 2, [](const Vector& x) { return x[0]; });
  auto f2 = std::make_shared<CallableModel>("f2", 2, [](const Vector& x) {
    const double g = 1.0 + 9.0 * x[1];
    return g * (1.0 - (x[0] / g) * (x[0] / g));
  });
  return MooProblem(&UnitSpace2(),
                    {MooObjective{"f1", f1}, MooObjective{"f2", f2}});
}

/// Three-objective problem over the same space: F3 trades against both.
inline MooProblem Tri() {
  auto f1 = std::make_shared<CallableModel>(
      "f1", 2, [](const Vector& x) { return x[0]; });
  auto f2 = std::make_shared<CallableModel>(
      "f2", 2, [](const Vector& x) { return x[1]; });
  auto f3 = std::make_shared<CallableModel>("f3", 2, [](const Vector& x) {
    return (1 - x[0]) * (1 - x[0]) + (1 - x[1]) * (1 - x[1]);
  });
  return MooProblem(&UnitSpace2(), {MooObjective{"f1", f1},
                                    MooObjective{"f2", f2},
                                    MooObjective{"f3", f3}});
}

}  // namespace testing_problems
}  // namespace udao

#endif  // UDAO_TESTS_TEST_PROBLEMS_H_
