#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "model/feature.h"

namespace udao {
namespace {

TEST(StandardScalerTest, TransformsToZeroMeanUnitVariance) {
  Matrix x = Matrix::FromRows({{1, 10}, {2, 20}, {3, 30}});
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix t = scaler.Transform(x);
  for (int c = 0; c < 2; ++c) {
    double sum = 0;
    for (int r = 0; r < 3; ++r) sum += t(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  EXPECT_NEAR(t(0, 0), -1.0, 1e-9);
  EXPECT_NEAR(t(2, 0), 1.0, 1e-9);
}

TEST(StandardScalerTest, ConstantColumnsAreFlaggedAndSafe) {
  Matrix x = Matrix::FromRows({{5, 1}, {5, 2}, {5, 3}});
  StandardScaler scaler;
  scaler.Fit(x);
  EXPECT_TRUE(scaler.constant_columns()[0]);
  EXPECT_FALSE(scaler.constant_columns()[1]);
  Matrix t = scaler.Transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);  // (5-5)/1
}

TEST(StandardScalerTest, InverseRoundTrips) {
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}, {7, 8}});
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix t = scaler.Transform(x);
  EXPECT_NEAR(scaler.Inverse(0, t(1, 0)), 3.0, 1e-12);
  EXPECT_NEAR(scaler.Inverse(1, t(2, 1)), 8.0, 1e-12);
}

TEST(StandardScalerTest, TransformRowMatchesMatrixTransform) {
  Matrix x = Matrix::FromRows({{1, 5}, {2, 6}, {3, 7}});
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix t = scaler.Transform(x);
  Vector row = scaler.TransformRow({2, 6});
  EXPECT_NEAR(row[0], t(1, 0), 1e-12);
  EXPECT_NEAR(row[1], t(1, 1), 1e-12);
}

TEST(LassoTest, StrongRegularizationZeroesEverything) {
  Rng rng(1);
  Matrix x(50, 3);
  Vector y(50);
  for (int i = 0; i < 50; ++i) {
    for (int c = 0; c < 3; ++c) x(i, c) = rng.Uniform();
    y[i] = 2.0 * x(i, 0);
  }
  LassoResult fit = LassoFit(x, y, /*lambda=*/100.0);
  for (double w : fit.coefficients) EXPECT_DOUBLE_EQ(w, 0.0);
  EXPECT_NEAR(fit.intercept, 1.0, 0.2);  // mean of y
}

TEST(LassoTest, WeakRegularizationRecoversSignal) {
  Rng rng(2);
  const int n = 200;
  Matrix x(n, 4);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 4; ++c) x(i, c) = rng.Uniform();
    y[i] = 5.0 * x(i, 0) - 3.0 * x(i, 1) + 0.01 * rng.Gaussian();
  }
  LassoResult fit = LassoFit(x, y, /*lambda=*/1e-4);
  // Standardized coefficients: signs preserved, noise dims near zero.
  EXPECT_GT(fit.coefficients[0], 0.5);
  EXPECT_LT(fit.coefficients[1], -0.3);
  EXPECT_NEAR(fit.coefficients[2], 0.0, 0.05);
  EXPECT_NEAR(fit.coefficients[3], 0.0, 0.05);
}

TEST(LassoTest, SparsityIncreasesWithLambda) {
  Rng rng(3);
  const int n = 120;
  Matrix x(n, 6);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 6; ++c) x(i, c) = rng.Uniform();
    y[i] = 4 * x(i, 0) + 2 * x(i, 1) + 1 * x(i, 2) + 0.5 * x(i, 3);
  }
  auto nonzeros = [&](double lambda) {
    LassoResult fit = LassoFit(x, y, lambda);
    int count = 0;
    for (double w : fit.coefficients) count += (w != 0.0);
    return count;
  };
  EXPECT_GE(nonzeros(1e-4), nonzeros(0.1));
  EXPECT_GE(nonzeros(0.1), nonzeros(0.5));
}

TEST(LassoPathTest, RanksTrueSignalsFirst) {
  Rng rng(4);
  const int n = 300;
  Matrix x(n, 8);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 8; ++c) x(i, c) = rng.Uniform();
    y[i] = 10 * x(i, 2) + 5 * x(i, 5) + 0.05 * rng.Gaussian();
  }
  std::vector<int> order = LassoPathRank(x, y);
  ASSERT_EQ(order.size(), 8u);
  // The two real signals must rank in the top two.
  EXPECT_TRUE((order[0] == 2 && order[1] == 5) ||
              (order[0] == 5 && order[1] == 2));
}

TEST(SelectKnobsTest, HonorsAlwaysKeepAndBudget) {
  Rng rng(5);
  const int n = 200;
  Matrix x(n, 6);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 6; ++c) x(i, c) = rng.Uniform();
    y[i] = 7 * x(i, 1) + 3 * x(i, 4);
  }
  std::vector<int> knobs = SelectKnobs(x, y, 3, {0});
  EXPECT_EQ(knobs.size(), 3u);
  EXPECT_TRUE(std::count(knobs.begin(), knobs.end(), 0));  // always kept
  EXPECT_TRUE(std::count(knobs.begin(), knobs.end(), 1));  // strongest signal
  EXPECT_TRUE(std::is_sorted(knobs.begin(), knobs.end()));
}

}  // namespace
}  // namespace udao
