#include <gtest/gtest.h>

#include <cmath>

#include "moo/evo.h"
#include "moo/mobo.h"
#include "moo/normal_constraints.h"
#include "moo/weighted_sum.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConcaveProblem;
using testing_problems::ConvexProblem;

MetricBox UnitBox() { return MetricBox{{0.0, 0.0}, {1.2, 1.2}}; }

// ------------------------------------------------------------ Weighted Sum

TEST(SimplexWeightsTest, TwoObjectives) {
  auto w = SimplexWeights(3, 2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], (Vector{0.0, 1.0}));
  EXPECT_EQ(w[1], (Vector{0.5, 0.5}));
  EXPECT_EQ(w[2], (Vector{1.0, 0.0}));
}

TEST(SimplexWeightsTest, ThreeObjectivesSumToOne) {
  auto weights = SimplexWeights(12, 3);
  ASSERT_EQ(weights.size(), 12u);
  for (const Vector& w : weights) {
    double sum = 0;
    for (double v : w) {
      sum += v;
      EXPECT_GE(v, 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(WeightedSumTest, FindsConvexFrontierPoints) {
  MooProblem problem = ConvexProblem();
  WsConfig cfg;
  cfg.mogd.multistart = 4;
  cfg.mogd.max_iters = 150;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunWeightedSum(problem, 8, cfg);
  EXPECT_GE(result.frontier.size(), 3u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  for (const MooPoint& p : result.frontier) {
    const double expected = (1.0 - p.objectives[0]) * (1.0 - p.objectives[0]);
    EXPECT_NEAR(p.objectives[1], expected, 0.08);
  }
}

TEST(WeightedSumTest, PoorCoverageOnConcaveFrontier) {
  // The known WS failure the paper leverages: on a concave frontier WS
  // collapses to the endpoints regardless of how many weights are tried.
  MooProblem problem = ConcaveProblem();
  WsConfig cfg;
  cfg.mogd.multistart = 4;
  cfg.mogd.max_iters = 150;
  MooRunResult result = RunWeightedSum(problem, 10, cfg);
  int interior = 0;
  for (const MooPoint& p : result.frontier) {
    if (p.objectives[0] > 0.15 && p.objectives[0] < 0.85) ++interior;
  }
  EXPECT_LE(interior, 2);
  EXPECT_LT(result.frontier.size(), 6u);  // far fewer than 10 requested
}

TEST(WeightedSumTest, IntermediateSnapshotsStayAt100) {
  MooProblem problem = ConvexProblem();
  WsConfig cfg;
  cfg.mogd.multistart = 2;
  cfg.mogd.max_iters = 50;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunWeightedSum(problem, 5, cfg);
  ASSERT_GE(result.history.size(), 2u);
  for (size_t i = 0; i + 1 < result.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.history[i].uncertain_percent, 100.0);
  }
  EXPECT_LT(result.history.back().uncertain_percent, 100.0);
}

// ------------------------------------------------------ Normal Constraints

TEST(NormalConstraintsTest, CoversConvexFrontier) {
  MooProblem problem = ConvexProblem();
  NcConfig cfg;
  cfg.mogd.multistart = 4;
  cfg.mogd.max_iters = 150;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunNormalConstraints(problem, 8, cfg);
  EXPECT_GE(result.frontier.size(), 4u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
}

TEST(NormalConstraintsTest, ReachesConcaveInterior) {
  // Unlike WS, NNC can land on concave sections.
  MooProblem problem = ConcaveProblem();
  NcConfig cfg;
  cfg.mogd.multistart = 6;
  cfg.mogd.max_iters = 200;
  MooRunResult result = RunNormalConstraints(problem, 10, cfg);
  int interior = 0;
  for (const MooPoint& p : result.frontier) {
    if (p.objectives[0] > 0.15 && p.objectives[0] < 0.85) ++interior;
  }
  EXPECT_GE(interior, 2);
}

TEST(NormalConstraintsTest, MayReturnFewerPointsThanRequested) {
  MooProblem problem = ConvexProblem();
  NcConfig cfg;
  cfg.mogd.multistart = 3;
  cfg.mogd.max_iters = 100;
  MooRunResult result = RunNormalConstraints(problem, 20, cfg);
  // The paper notes NC "often returns fewer points than k".
  EXPECT_LE(result.frontier.size(), 20u);
  EXPECT_GE(result.frontier.size(), 3u);
}

// ------------------------------------------------------------ NSGA-II

TEST(Nsga2InternalsTest, FastNonDominatedSortRanks) {
  std::vector<Vector> objs = {{1, 1}, {2, 2}, {3, 3}, {0.5, 3.5}};
  std::vector<int> ranks = FastNonDominatedSort(objs);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 1);
  EXPECT_EQ(ranks[2], 2);
  EXPECT_EQ(ranks[3], 0);  // incomparable with (1,1)
}

TEST(Nsga2InternalsTest, CrowdingDistanceBoundaryIsInfinite) {
  std::vector<Vector> front = {{0, 3}, {1, 2}, {2, 1}, {3, 0}};
  Vector crowd = CrowdingDistance(front);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[3]));
  EXPECT_GT(crowd[1], 0.0);
  EXPECT_FALSE(std::isinf(crowd[1]));
}

TEST(Nsga2Test, ConvergesToConvexFrontier) {
  MooProblem problem = ConvexProblem();
  EvoConfig cfg;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunNsga2(problem, 20, cfg);
  EXPECT_GE(result.frontier.size(), 10u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  for (const MooPoint& p : result.frontier) {
    const double expected = (1.0 - p.objectives[0]) * (1.0 - p.objectives[0]);
    EXPECT_NEAR(p.objectives[1], expected, 0.15);
  }
}

TEST(Nsga2Test, IndependentBudgetsProduceDifferentFrontiers) {
  // The inconsistency phenomenon of Fig. 4(e).
  MooProblem problem = ConvexProblem();
  EvoConfig cfg;
  MooRunResult r30 = RunNsga2(problem, 30, cfg);
  MooRunResult r40 = RunNsga2(problem, 40, cfg);
  bool identical = r30.frontier.size() == r40.frontier.size();
  if (identical) {
    for (size_t i = 0; i < r30.frontier.size(); ++i) {
      if (!(r30.frontier[i].objectives == r40.frontier[i].objectives)) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Nsga2Test, HistoryRecordsProgress) {
  MooProblem problem = ConvexProblem();
  EvoConfig cfg;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunNsga2(problem, 15, cfg);
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.history.back().uncertain_percent, 60.0);
}

// ------------------------------------------------------------ MOBO

TEST(MoboTest, QehviFindsFrontierPoints) {
  MooProblem problem = ConvexProblem();
  MoboConfig cfg;
  cfg.init_samples = 6;
  cfg.candidate_pool = 32;
  cfg.mc_samples = 8;
  cfg.gp.hyper_opt_steps = 5;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunMobo(problem, 10, cfg);
  EXPECT_GE(result.frontier.size(), 4u);
  EXPECT_TRUE(MutuallyNonDominated(result.frontier));
  EXPECT_EQ(result.history.size(), 10u);
}

TEST(MoboTest, PesmIsSlowerPerProbeThanQehvi) {
  MooProblem problem = ConvexProblem();
  MoboConfig fast;
  fast.init_samples = 6;
  fast.candidate_pool = 16;
  fast.mc_samples = 4;
  fast.gp.hyper_opt_steps = 3;
  MoboConfig slow = fast;
  slow.kind = MoboConfig::Kind::kPesm;
  MooRunResult rq = RunMobo(problem, 4, fast);
  MooRunResult rp = RunMobo(problem, 4, slow);
  EXPECT_GT(rp.seconds_total, rq.seconds_total);
}

TEST(MoboTest, UncertaintyDecreasesOverProbes) {
  MooProblem problem = ConvexProblem();
  MoboConfig cfg;
  cfg.init_samples = 6;
  cfg.candidate_pool = 24;
  cfg.mc_samples = 8;
  cfg.gp.hyper_opt_steps = 5;
  cfg.metric_box = UnitBox();
  MooRunResult result = RunMobo(problem, 12, cfg);
  EXPECT_LE(result.history.back().uncertain_percent,
            result.history.front().uncertain_percent);
}

}  // namespace
}  // namespace udao
