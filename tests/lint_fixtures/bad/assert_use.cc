// Seeded assert violation (line 6): NDEBUG-dependent invariant.

#include <cassert>

void Check(int v) {
  assert(v > 0);
}
