// Seeded raw-random violation (line 6): raw engine construction.

#include <random>

unsigned Draw() {
  std::mt19937 gen(42);
  return static_cast<unsigned>(gen());
}
