// Seeded raw-thread violation (line 6): parallelism outside the pool.

#include <thread>

void Spawn() {
  std::thread t([] {});
  t.join();
}
