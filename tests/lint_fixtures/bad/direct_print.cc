// Seeded direct-print violation (line 6): stdout write in library code.

#include <cstdio>

void Report() {
  printf("done\n");
}
