// Seeded include-guard violation (line 3): guard does not match the path.

#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#endif  // WRONG_GUARD_H
