// Seeded raw-intrinsic violation (line 6): inline AVX intrinsic call
// outside the kernel layer.

double FirstLane(const double* a);

double FirstLaneImpl(const double* a) { return _mm_cvtsd_f64(_mm_load_pd(a)); }
