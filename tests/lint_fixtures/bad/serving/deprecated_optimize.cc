// Seeded deprecated-optimize violations (lines 9 and 10): the pre-ticket
// serving entry points must be flagged in serving scope. Not compiled --
// fixtures are only scanned by udao_lint.

struct Service;

void Call(Service& service);

void CallOld(Service& s) { Optimize(s); }
void CallOldAsync(Service& s) { OptimizeAsync(s); }
