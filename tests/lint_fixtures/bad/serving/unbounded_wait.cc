// Seeded unbounded-wait violation (line 8): plain .wait() in serving scope.

struct Waiter {
  void wait() {}
};

void Drain(Waiter& w) {
  w.wait();
}
