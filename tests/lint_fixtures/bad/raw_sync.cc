// Seeded raw-sync violation (line 6): std::mutex outside common/sync.h.

#include <mutex>

namespace example {
std::mutex global_mu;
}  // namespace example
