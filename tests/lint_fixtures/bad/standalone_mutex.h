#ifndef UDAO_STANDALONE_MUTEX_H_
#define UDAO_STANDALONE_MUTEX_H_

// Seeded standalone-mutex violation (line 12): a udao::Mutex member with no
// UDAO_GUARDED_BY sibling naming it and no "lint: standalone-mutex" tag.

class Widget {
 public:
  void Touch();

 private:
  udao::Mutex mu_;
  int value_ = 0;
};

#endif  // UDAO_STANDALONE_MUTEX_H_
