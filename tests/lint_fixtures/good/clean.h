#ifndef UDAO_CLEAN_H_
#define UDAO_CLEAN_H_

// Clean fixture: exercises the patterns the udao_lint rules allow --
// correct include guard, annotated sync wrappers with a guarded member, and
// a tagged pure-serialization mutex. Zero findings expected.

class Coordinator {
 public:
  void Touch();

 private:
  mutable udao::Mutex mu_;
  int value_ UDAO_GUARDED_BY(mu_) = 0;
  // Serializes Touch() calls without guarding data of its own.
  udao::Mutex phase_mu_;  // lint: standalone-mutex
};

#endif  // UDAO_CLEAN_H_
