// End-to-end integration tests: trace generation -> model training -> MOO ->
// recommendation, over the simulated Spark substrate.
#include <gtest/gtest.h>

#include "common/random.h"
#include "model/encoder.h"
#include "spark/engine.h"
#include "spark/streaming.h"
#include "tuning/udao.h"
#include "workload/streambench.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

namespace udao {
namespace {

UdaoOptions FastOptions() {
  UdaoOptions options;
  options.pf.mogd.multistart = 4;
  options.pf.mogd.max_iters = 80;
  options.solver_threads = 4;
  options.frontier_points = 10;
  return options;
}

ModelServerConfig TinyDnn() {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kDnn;
  cfg.dnn.hidden = {24, 24};
  cfg.dnn.train.epochs = 120;
  return cfg;
}

class UdaoEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ModelServer>(TinyDnn());
    engine_ = std::make_unique<SparkEngine>();
    Rng rng(7);
    workload_ = std::make_unique<BatchWorkload>(MakeTpcxbbWorkload(9));
    auto configs = SampleConfigs(BatchParamSpace(), 48,
                                 SamplingStrategy::kLatinHypercube, &rng);
    CollectBatchTraces(*engine_, *workload_, configs, server_.get());
  }

  UdaoRequest LatencyCostRequest() {
    UdaoRequest request;
    request.workload_id = workload_->id;
    request.space = &BatchParamSpace();
    request.objectives = {{.name = objectives::kLatency},
                          {.name = objectives::kCostCores}};
    return request;
  }

  std::unique_ptr<ModelServer> server_;
  std::unique_ptr<SparkEngine> engine_;
  std::unique_ptr<BatchWorkload> workload_;
};

TEST_F(UdaoEndToEndTest, OptimizeProducesValidRecommendation) {
  Udao optimizer(server_.get(), FastOptions());
  auto rec = optimizer.Optimize(LatencyCostRequest());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(BatchParamSpace().Validate(rec->conf_raw).ok());
  EXPECT_GE(rec->frontier.frontier.size(), 3u);
  EXPECT_TRUE(MutuallyNonDominated(rec->frontier.frontier));
  EXPECT_EQ(rec->predicted_objectives.size(), 2u);
  EXPECT_GT(rec->predicted_objectives[0], 0.0);  // latency
}

TEST_F(UdaoEndToEndTest, RecommendationImprovesOnDefaults) {
  Udao optimizer(server_.get(), FastOptions());
  UdaoRequest request = LatencyCostRequest();
  request.preference_weights = {0.9, 0.1};
  auto rec = optimizer.Optimize(request);
  ASSERT_TRUE(rec.ok());
  // Measured on the simulator, the recommendation with strong latency
  // preference must beat the default configuration's latency.
  const double tuned = engine_->Latency(workload_->flow, rec->conf_raw);
  const double defaults =
      engine_->Latency(workload_->flow, BatchParamSpace().Defaults());
  EXPECT_LT(tuned, defaults);
}

TEST_F(UdaoEndToEndTest, WeightsShiftTheRecommendation) {
  Udao optimizer(server_.get(), FastOptions());
  UdaoRequest latency_heavy = LatencyCostRequest();
  latency_heavy.preference_weights = {0.9, 0.1};
  UdaoRequest cost_heavy = LatencyCostRequest();
  cost_heavy.preference_weights = {0.1, 0.9};
  auto r_lat = optimizer.Optimize(latency_heavy);
  auto r_cost = optimizer.Optimize(cost_heavy);
  ASSERT_TRUE(r_lat.ok());
  ASSERT_TRUE(r_cost.ok());
  // The latency-heavy recommendation should use at least as many cores.
  EXPECT_GE(SparkConf::FromRaw(r_lat->conf_raw).TotalCores(),
            SparkConf::FromRaw(r_cost->conf_raw).TotalCores());
  // And predict lower or equal latency.
  EXPECT_LE(r_lat->predicted_objectives[0],
            r_cost->predicted_objectives[0] + 1e-9);
}

TEST_F(UdaoEndToEndTest, ValueConstraintsAreRespected) {
  Udao optimizer(server_.get(), FastOptions());
  UdaoRequest request = LatencyCostRequest();
  request.objectives[1].upper = 24.0;  // at most 24 cores
  auto rec = optimizer.Optimize(request);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_LE(rec->predicted_objectives[1], 24.0 + 1e-6);
}

TEST_F(UdaoEndToEndTest, UnknownWorkloadIsNotFound) {
  Udao optimizer(server_.get(), FastOptions());
  UdaoRequest request = LatencyCostRequest();
  request.workload_id = "never-seen";
  auto rec = optimizer.Optimize(request);
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
}

TEST_F(UdaoEndToEndTest, InvalidRequestsAreRejected) {
  Udao optimizer(server_.get(), FastOptions());
  UdaoRequest request = LatencyCostRequest();
  request.space = nullptr;
  EXPECT_FALSE(optimizer.Optimize(request).ok());

  request = LatencyCostRequest();
  request.objectives.clear();
  EXPECT_FALSE(optimizer.Optimize(request).ok());

  request = LatencyCostRequest();
  request.preference_weights = {1.0};  // arity mismatch
  EXPECT_FALSE(optimizer.Optimize(request).ok());
}

TEST(UdaoStreamingTest, LatencyThroughputTradeoffEndToEnd) {
  ModelServer server(TinyDnn());
  StreamEngine engine;
  Rng rng(11);
  StreamWorkload w = MakeStreamWorkload(54);
  auto configs = SampleConfigs(StreamParamSpace(), 48,
                               SamplingStrategy::kLatinHypercube, &rng);
  CollectStreamTraces(engine, w, configs, &server);

  UdaoOptions options = FastOptions();
  options.workload_aware = false;
  Udao optimizer(&server, options);
  UdaoRequest request;
  request.workload_id = w.id;
  request.space = &StreamParamSpace();
  request.objectives = {{.name = objectives::kLatency},
                        {.name = objectives::kThroughput, .minimize = false}};
  auto rec = optimizer.Optimize(request);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(StreamParamSpace().Validate(rec->conf_raw).ok());
  // Throughput prediction comes back in natural (maximize) orientation.
  EXPECT_GT(rec->predicted_objectives[1], 0.0);
}

TEST(UdaoRetrainTest, RecommendationsTrackModelUpdates) {
  // After a large trace update the server retrains and the optimizer uses
  // the new model transparently.
  ModelServerConfig cfg = TinyDnn();
  cfg.retrain_threshold = 24;
  ModelServer server(cfg);
  SparkEngine engine;
  Rng rng(13);
  BatchWorkload w = MakeTpcxbbWorkload(5);
  auto configs = SampleConfigs(BatchParamSpace(), 24,
                               SamplingStrategy::kLatinHypercube, &rng);
  CollectBatchTraces(engine, w, configs, &server);
  Udao optimizer(&server, FastOptions());
  UdaoRequest request;
  request.workload_id = w.id;
  request.space = &BatchParamSpace();
  request.objectives = {{.name = objectives::kLatency},
                        {.name = objectives::kCostCores}};
  auto r1 = optimizer.Optimize(request);
  ASSERT_TRUE(r1.ok());
  // Large update: retrain must kick in and optimization still succeeds.
  auto more = SampleConfigs(BatchParamSpace(), 30,
                            SamplingStrategy::kLatinHypercube, &rng);
  CollectBatchTraces(engine, w, more, &server);
  auto r2 = optimizer.Optimize(request);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(BatchParamSpace().Validate(r2->conf_raw).ok());
}

TEST(WorkloadEncoderIntegration, EncodingsClusterByTemplate) {
  // Metric vectors from the simulator: several variants each of a small SQL
  // template and a heavy UDF template. Encodings of runs of the same
  // template should sit closer together than across templates -- the
  // property that makes cross-workload (cold-start) prediction work.
  SparkEngine engine;
  Rng rng(21);
  std::vector<Vector> rows;
  std::vector<int> label;
  for (int variant = 0; variant < 4; ++variant) {
    for (int t : {7, 2}) {  // small SQL vs heavy UDF
      BatchWorkload w =
          MakeTpcxbbWorkload(t + variant * kNumTpcxbbTemplates);
      for (int run = 0; run < 3; ++run) {
        const Vector conf = BatchParamSpace().Sample(&rng);
        rows.push_back(engine.Run(w.flow, conf).ToVector());
        label.push_back(t);
      }
    }
  }
  EncoderConfig cfg;
  cfg.encoding_dim = 3;
  cfg.hidden = 24;
  cfg.train.epochs = 250;
  auto encoder =
      WorkloadEncoder::Fit(Matrix::FromRows(rows), cfg, &rng);
  ASSERT_TRUE(encoder.ok()) << encoder.status().ToString();

  std::vector<Vector> encodings;
  for (const Vector& row : rows) {
    encodings.push_back((*encoder)->Encode(row));
  }
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  for (size_t i = 0; i < encodings.size(); ++i) {
    for (size_t j = i + 1; j < encodings.size(); ++j) {
      const double dist = SquaredDistance(encodings[i], encodings[j]);
      if (label[i] == label[j]) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, 0.6 * inter / n_inter);
}

}  // namespace
}  // namespace udao
