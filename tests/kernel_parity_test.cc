// Parity contracts of the dispatched dense-kernel layer (nn/kernels.h):
//
//  * within one backend, dot(a, b, 128) is bitwise-equal to the unrolled
//    dot128 (the 4x128-topology fast path), and the fused layer_forward is
//    bitwise-equal to composing dot + bias + relu by hand;
//  * across backends, every primitive and the batched MLP entry points built
//    on them (PredictBatch / GradientBatch) agree to a tight relative
//    tolerance -- AVX2's multi-accumulator reductions and FMA contraction
//    may differ from the scalar chain only in the last bits;
//  * the UDAO_KERNEL environment contract holds (the CI parity matrix runs
//    this binary once per backend);
//  * the KernelArena stops touching the heap after the first iteration of a
//    fixed-shape batched workload, and reports its growth through the
//    udao.nn.arena_bytes counter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/random.h"
#include "nn/kernels.h"
#include "nn/mlp.h"

namespace udao {
namespace {

using kernels::Backend;
using kernels::Fused;
using kernels::KernelArena;
using kernels::KernelTable;
using kernels::ScopedBackendForTesting;

// Relative tolerance for cross-backend comparisons. The backends reorder
// additions (4 accumulators) and contract multiply-adds, so results may
// differ by a few ulps; anything past 1e-12 relative would indicate a kernel
// bug, not rounding.
constexpr double kCrossBackendRelTol = 1e-12;

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends{Backend::kScalar};
  if (kernels::CpuSupportsAvx2()) backends.push_back(Backend::kAvx2);
  return backends;
}

Vector RandomVector(int n, uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  for (double& x : v) x = rng.Uniform() * 2.0 - 1.0;
  return v;
}

void ExpectNear(double a, double b, const char* what, int i) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_LE(std::fabs(a - b), kCrossBackendRelTol * scale)
      << what << " element " << i << ": " << a << " vs " << b;
}

// The env contract: when the CI matrix exports UDAO_KERNEL, the process must
// actually be running that backend. Declared first so it observes the
// startup dispatch before any scoped override runs (overrides restore, but
// order makes the intent explicit).
TEST(KernelParityTest, ActiveBackendHonorsEnvironment) {
  const char* env = std::getenv("UDAO_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "native") == 0) {
    const Backend expected = kernels::CpuSupportsAvx2() ? Backend::kAvx2
                                                        : Backend::kScalar;
    EXPECT_EQ(kernels::ActiveBackend(), expected);
  } else if (std::strcmp(env, "scalar") == 0) {
    EXPECT_EQ(kernels::ActiveBackend(), Backend::kScalar);
  } else if (std::strcmp(env, "avx2") == 0) {
    EXPECT_EQ(kernels::ActiveBackend(), Backend::kAvx2);
  } else {
    FAIL() << "unexpected UDAO_KERNEL value " << env;
  }
  EXPECT_EQ(kernels::ActiveTable()->backend, kernels::ActiveBackend());
}

// dot128 is the specialized kernel the 4x128 topology rides on; each backend
// promises it is bitwise-identical to its generic dot at n == 128.
TEST(KernelParityTest, Dot128MatchesGenericDotBitwise) {
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = kernels::TableForBackend(backend);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      const Vector a = RandomVector(128, 1000 + seed);
      const Vector b = RandomVector(128, 2000 + seed);
      EXPECT_EQ(t->dot(a.data(), b.data(), 128), t->dot128(a.data(), b.data()))
          << t->name << " seed " << seed;
    }
  }
}

// The fused layer kernel must be exactly dot + bias + relu of the same
// backend -- that is what keeps batched and scalar MLP paths bitwise-equal
// within a backend.
TEST(KernelParityTest, LayerForwardMatchesComposedPrimitivesBitwise) {
  const int rows = 5;
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = kernels::TableForBackend(backend);
    for (int in_dim : {7, 128}) {
      const int out_dim = 9;
      const Vector in = RandomVector(rows * in_dim, 42);
      const Vector w = RandomVector(out_dim * in_dim, 43);
      const Vector bias = RandomVector(out_dim, 44);
      Vector fused(rows * out_dim);
      t->layer_forward(in.data(), rows, in_dim, w.data(), bias.data(),
                       out_dim, Fused::kBiasRelu, fused.data());
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < out_dim; ++c) {
          const double* row = in.data() + static_cast<size_t>(r) * in_dim;
          const double* wr = w.data() + static_cast<size_t>(c) * in_dim;
          double z = in_dim == 128 ? t->dot128(row, wr)
                                   : t->dot(row, wr, in_dim);
          z += bias[c];
          z = z > 0.0 ? z : 0.0;
          EXPECT_EQ(fused[r * out_dim + c], z)
              << t->name << " in_dim " << in_dim << " r " << r << " c " << c;
        }
      }
    }
  }
}

TEST(KernelParityTest, DotAgreesAcrossBackends) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const KernelTable* scalar = kernels::TableForBackend(Backend::kScalar);
  const KernelTable* avx2 = kernels::TableForBackend(Backend::kAvx2);
  // Lengths cover the remainder lanes: sub-vector, 4-wide tail, scalar tail.
  for (int n : {1, 3, 4, 15, 16, 17, 31, 64, 127, 128, 129, 1000}) {
    const Vector a = RandomVector(n, 7 * n);
    const Vector b = RandomVector(n, 11 * n);
    ExpectNear(scalar->dot(a.data(), b.data(), n),
               avx2->dot(a.data(), b.data(), n), "dot", n);
  }
}

TEST(KernelParityTest, AxpyAgreesAcrossBackends) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const KernelTable* scalar = kernels::TableForBackend(Backend::kScalar);
  const KernelTable* avx2 = kernels::TableForBackend(Backend::kAvx2);
  for (int n : {1, 4, 5, 16, 37, 128}) {
    const Vector src = RandomVector(n, 3 * n);
    Vector a = RandomVector(n, 5 * n);
    Vector b = a;
    scalar->axpy(a.data(), src.data(), 0.37, n);
    avx2->axpy(b.data(), src.data(), 0.37, n);
    for (int i = 0; i < n; ++i) ExpectNear(a[i], b[i], "axpy", i);
  }
}

TEST(KernelParityTest, GemmAgreesAcrossBackends) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const KernelTable* scalar = kernels::TableForBackend(Backend::kScalar);
  const KernelTable* avx2 = kernels::TableForBackend(Backend::kAvx2);
  const int rows = 6;
  const int k = 11;
  const int cols = 13;
  const Vector a = RandomVector(rows * k, 21);
  const Vector b = RandomVector(k * cols, 22);
  Vector out_s(rows * cols);
  Vector out_v(rows * cols);
  scalar->gemm_nn(a.data(), rows, k, b.data(), cols, out_s.data());
  avx2->gemm_nn(a.data(), rows, k, b.data(), cols, out_v.data());
  for (int i = 0; i < rows * cols; ++i) {
    ExpectNear(out_s[i], out_v[i], "gemm_nn", i);
  }
}

Mlp MakeMlp(const std::vector<int>& sizes, Activation act, uint64_t seed) {
  MlpConfig config;
  config.layer_sizes = sizes;
  config.activation = act;
  Rng rng(seed);
  return Mlp(config, &rng);
}

// The end-to-end contract the CI parity matrix enforces: the batched MLP
// entry points agree across backends on random shapes and on the paper's
// 4x128 ReLU topology (which exercises the unrolled dot128 path).
TEST(KernelParityTest, MlpBatchPathsAgreeAcrossBackends) {
  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  struct Case {
    std::vector<int> sizes;
    Activation act;
  };
  const std::vector<Case> cases = {
      {{3, 5, 1}, Activation::kRelu},
      {{7, 33, 17, 1}, Activation::kTanh},
      {{12, 128, 128, 128, 128, 1}, Activation::kRelu},
  };
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const Mlp mlp = MakeMlp(c.sizes, c.act, 100 + ci);
    Rng rng(200 + ci);
    const int rows = 17;
    Matrix x(rows, c.sizes.front());
    for (double& v : x.data()) v = rng.Uniform() * 2.0 - 1.0;

    Vector values_s;
    Vector values_v;
    Matrix grads_s;
    Matrix grads_v;
    {
      ScopedBackendForTesting scoped(Backend::kScalar);
      mlp.PredictBatch(x, &values_s);
      mlp.InputGradientBatch(x, &grads_s);
    }
    {
      ScopedBackendForTesting scoped(Backend::kAvx2);
      mlp.PredictBatch(x, &values_v);
      mlp.InputGradientBatch(x, &grads_v);
    }
    for (int i = 0; i < rows; ++i) {
      ExpectNear(values_s[i], values_v[i], "PredictBatch", i);
    }
    ASSERT_EQ(grads_s.rows(), grads_v.rows());
    ASSERT_EQ(grads_s.cols(), grads_v.cols());
    for (size_t i = 0; i < grads_s.data().size(); ++i) {
      ExpectNear(grads_s.data()[i], grads_v.data()[i], "GradientBatch",
                 static_cast<int>(i));
    }
  }
}

// Zero heap allocations per solver iteration after warmup: repeated
// fixed-shape batched calls must not grow the thread's arena beyond what the
// first iteration reserved.
TEST(KernelParityTest, ArenaStopsGrowingAfterWarmup) {
  const Mlp mlp =
      MakeMlp({12, 128, 128, 128, 128, 1}, Activation::kRelu, 5);
  Rng rng(6);
  Matrix x(32, 12);
  for (double& v : x.data()) v = rng.Uniform();

  KernelArena& arena = KernelArena::ThreadLocal();
  Vector values;
  Matrix grads;
  // Warmup: first iteration may grow the arena (and the gradient matrix).
  mlp.PredictBatch(x, &values);
  mlp.InputGradientBatch(x, &grads, &values);
  const size_t grown = arena.grow_count();
  const size_t reserved = arena.reserved_bytes();
  EXPECT_GT(grown, 0u);
  EXPECT_GT(reserved, 0u);
  for (int iter = 0; iter < 50; ++iter) {
    mlp.PredictBatch(x, &values);
    mlp.InputGradientBatch(x, &grads, &values);
  }
  EXPECT_EQ(arena.grow_count(), grown);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

// Arena growth is observable: a fresh thread's first batched call reserves
// slabs and reports the bytes through the metrics registry.
TEST(KernelParityTest, ArenaGrowthReportsCounter) {
  const long long before =
      MetricsRegistry::Global().CounterValue("udao.nn.arena_bytes");
  const Mlp mlp = MakeMlp({4, 16, 1}, Activation::kRelu, 9);
  Rng rng(10);
  Matrix x(8, 4);
  for (double& v : x.data()) v = rng.Uniform();
  size_t thread_reserved = 0;
  std::thread worker([&] {
    Vector values;
    mlp.PredictBatch(x, &values);
    thread_reserved = KernelArena::ThreadLocal().reserved_bytes();
  });
  worker.join();
  EXPECT_GT(thread_reserved, 0u);
  const long long after =
      MetricsRegistry::Global().CounterValue("udao.nn.arena_bytes");
  EXPECT_GE(after - before, static_cast<long long>(thread_reserved));
}

}  // namespace
}  // namespace udao
