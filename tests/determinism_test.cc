// Locks in the solver's thread-count-invariance claim: with identical seeds,
// Udao::Optimize returns bitwise-identical Pareto sets and recommendations
// whether the PF-AP fan-out runs on 2 threads or 8 (MogdConfig documents
// that "threading never changes solutions"), and reruns are bitwise
// reproducible. Any drift here means a worker wrote into shared solver
// state or consumed a shared RNG out of order.
#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/random.h"
#include "nn/kernels.h"
#include "spark/engine.h"
#include "tuning/udao.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

namespace udao {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ModelServerConfig cfg;
    cfg.kind = ModelKind::kGp;
    cfg.gp.hyper_opt_steps = 10;
    server_ = std::make_unique<ModelServer>(cfg);
    SparkEngine engine;
    workload_ = std::make_unique<BatchWorkload>(MakeTpcxbbWorkload(9));
    Rng rng(7);
    auto configs = SampleConfigs(BatchParamSpace(), 24,
                                 SamplingStrategy::kLatinHypercube, &rng);
    CollectBatchTraces(engine, *workload_, configs, server_.get());
  }

  UdaoRequest Request() {
    UdaoRequest request;
    request.workload_id = workload_->id;
    request.space = &BatchParamSpace();
    request.objectives = {{.name = objectives::kLatency},
                          {.name = objectives::kCostCores}};
    return request;
  }

  UdaoRecommendation OptimizeWithThreads(int solver_threads) {
    UdaoOptions options;
    options.pf.mogd.multistart = 4;
    options.pf.mogd.max_iters = 60;
    options.solver_threads = solver_threads;
    options.frontier_points = 10;
    Udao optimizer(server_.get(), options);
    auto rec = optimizer.Optimize(Request());
    EXPECT_TRUE(rec.ok()) << rec.status().ToString();
    return *rec;
  }

  static void ExpectBitwiseEqual(const UdaoRecommendation& a,
                                 const UdaoRecommendation& b) {
    // Vector operator== is element-wise exact double equality, so these are
    // bitwise comparisons (no result here is ever NaN or -0.0 vs 0.0).
    ASSERT_EQ(a.frontier.frontier.size(), b.frontier.frontier.size());
    for (size_t i = 0; i < a.frontier.frontier.size(); ++i) {
      EXPECT_EQ(a.frontier.frontier[i].conf_encoded,
                b.frontier.frontier[i].conf_encoded)
          << "frontier point " << i;
      EXPECT_EQ(a.frontier.frontier[i].objectives,
                b.frontier.frontier[i].objectives)
          << "frontier point " << i;
    }
    EXPECT_EQ(a.frontier.utopia, b.frontier.utopia);
    EXPECT_EQ(a.frontier.nadir, b.frontier.nadir);
    EXPECT_EQ(a.conf_encoded, b.conf_encoded);
    EXPECT_EQ(a.conf_raw, b.conf_raw);
    EXPECT_EQ(a.predicted_objectives, b.predicted_objectives);
  }

  std::unique_ptr<ModelServer> server_;
  std::unique_ptr<BatchWorkload> workload_;
};

TEST_F(DeterminismTest, ParetoSetIdenticalAcross2And8Threads) {
  const UdaoRecommendation two = OptimizeWithThreads(2);
  const UdaoRecommendation eight = OptimizeWithThreads(8);
  ASSERT_GE(two.frontier.frontier.size(), 3u);
  ExpectBitwiseEqual(two, eight);
}

TEST_F(DeterminismTest, RerunWithSameSeedsIsBitwiseIdentical) {
  const UdaoRecommendation first = OptimizeWithThreads(4);
  const UdaoRecommendation second = OptimizeWithThreads(4);
  ExpectBitwiseEqual(first, second);
}

TEST_F(DeterminismTest, ThreadInvarianceHoldsWithinEachKernelBackend) {
  // Thread-count invariance is a per-backend property: within one kernel
  // dispatch mode every dense primitive is deterministic, so 2-thread and
  // 8-thread solves must stay bitwise identical whether the scalar or the
  // AVX2 kernels are active. (Cross-backend results may differ in the last
  // bits; kernel_parity_test pins that tolerance.)
  std::vector<kernels::Backend> backends{kernels::Backend::kScalar};
  if (kernels::CpuSupportsAvx2()) {
    backends.push_back(kernels::Backend::kAvx2);
  }
  for (const kernels::Backend backend : backends) {
    kernels::ScopedBackendForTesting scoped(backend);
    const UdaoRecommendation two = OptimizeWithThreads(2);
    const UdaoRecommendation eight = OptimizeWithThreads(8);
    ASSERT_GE(two.frontier.frontier.size(), 3u);
    ExpectBitwiseEqual(two, eight);
  }
}

TEST_F(DeterminismTest, GenerousDeadlineDoesNotPerturbResults) {
  // The deadline plumbing must be pure overhead until it fires: a request
  // carrying a far-future deadline and a live (never-cancelled) token takes
  // exactly the same path through PF/MOGD as one with the default tokens,
  // and returns the bitwise-identical recommendation, untagged.
  const UdaoRecommendation plain = OptimizeWithThreads(4);

  UdaoOptions options;
  options.pf.mogd.multistart = 4;
  options.pf.mogd.max_iters = 60;
  options.solver_threads = 4;
  options.frontier_points = 10;
  Udao optimizer(server_.get(), options);
  UdaoRequest request = Request();
  CancellationSource source;  // stays un-cancelled for the whole solve
  request.options.deadline = Deadline::AfterMs(1e9);
  request.options.cancel = source.token();
  auto budgeted = optimizer.Optimize(request);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_FALSE(budgeted->degraded);
  ExpectBitwiseEqual(plain, *budgeted);
}

}  // namespace
}  // namespace udao
