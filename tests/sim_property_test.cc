// Property sweeps of the execution substrate across the full benchmark:
// every template, many random configurations, global invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "spark/engine.h"
#include "spark/streaming.h"
#include "workload/streambench.h"
#include "workload/tpcxbb.h"

namespace udao {
namespace {

// Every template, random configurations: metrics are finite, non-negative,
// and internally consistent.
class BatchTemplateProperty : public ::testing::TestWithParam<int> {};

TEST_P(BatchTemplateProperty, MetricsAreSane) {
  const int template_id = GetParam();
  SparkEngine engine;
  BatchWorkload w = MakeTpcxbbWorkload(template_id);
  Rng rng(500 + template_id);
  for (int trial = 0; trial < 10; ++trial) {
    const Vector conf = BatchParamSpace().Sample(&rng);
    RuntimeMetrics m = engine.Run(w.flow, conf);
    const Vector values = m.ToVector();
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_TRUE(std::isfinite(values[i]))
          << RuntimeMetrics::Names()[i] << " trial " << trial;
      EXPECT_GE(values[i], 0.0)
          << RuntimeMetrics::Names()[i] << " trial " << trial;
    }
    EXPECT_GT(m.latency_s, 0.0);
    EXPECT_GE(m.num_tasks, 1.0);
    EXPECT_GE(m.num_stages, 1.0);
    EXPECT_LE(m.cpu_utilization, 1.0);
    // Per-run costs are consistent with the latency.
    EXPECT_NEAR(CostInCpuHours(m.latency_s, conf),
                m.latency_s * CostInCores(conf) / 3600.0, 1e-9);
    EXPECT_GT(Cost2(m.latency_s, m, conf), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, BatchTemplateProperty,
                         ::testing::Range(1, kNumTpcxbbTemplates + 1));

// Job-level invariants at defaults across a sample of all 258 workloads.
TEST(BatchBenchmarkTest, VariantsScaleLatencyWithinTemplate) {
  SparkEngine engine;
  const Vector conf = BatchParamSpace().Defaults();
  int scale_monotone = 0;
  int total = 0;
  for (int t = 1; t <= kNumTpcxbbTemplates; ++t) {
    // Variants 0 and 7 of the same template: bigger scale, bigger input.
    BatchWorkload small = MakeTpcxbbWorkload(t);
    BatchWorkload large = MakeTpcxbbWorkload(t + 7 * kNumTpcxbbTemplates);
    EXPECT_GT(large.flow.TotalInputBytes(), small.flow.TotalInputBytes());
    ++total;
    if (engine.Latency(large.flow, conf) > engine.Latency(small.flow, conf)) {
      ++scale_monotone;
    }
  }
  // Latency noise can flip a few, but the trend must hold broadly.
  EXPECT_GE(scale_monotone, total - 2);
}

TEST(BatchBenchmarkTest, UdfTemplatesAreCpuBound) {
  SparkEngine engine;
  const Vector conf = BatchParamSpace().Defaults();
  // The Q2-style UDF pipeline spends most of its time in CPU.
  BatchWorkload udf = MakeTpcxbbWorkload(2);
  RuntimeMetrics m = engine.Run(udf.flow, conf);
  EXPECT_GT(m.cpu_time_s, 2.0 * m.io_wait_s);
}

// Streaming: every template, random configurations.
class StreamTemplateProperty : public ::testing::TestWithParam<int> {};

TEST_P(StreamTemplateProperty, ResultsAreSane) {
  StreamEngine engine;
  StreamWorkload w = MakeStreamWorkload(GetParam());
  Rng rng(600 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Vector conf = StreamParamSpace().Sample(&rng);
    StreamResult r = engine.Run(w.profile, conf);
    EXPECT_TRUE(std::isfinite(r.record_latency_s));
    EXPECT_GT(r.record_latency_s, 0.0);
    EXPECT_GT(r.throughput_krps, 0.0);
    EXPECT_LE(r.throughput_krps,
              StreamConf::FromRaw(conf).input_rate_krps + 1e-9);
    EXPECT_GT(r.batch_processing_s, 0.0);
    if (r.stable) {
      // Stable: all incoming records are carried.
      EXPECT_DOUBLE_EQ(r.throughput_krps,
                       StreamConf::FromRaw(conf).input_rate_krps);
      // And latency is bounded by interval + processing.
      EXPECT_LE(r.record_latency_s,
                conf[0] / 1000.0 + r.batch_processing_s + 1e-9);
    } else {
      EXPECT_LT(r.throughput_krps,
                StreamConf::FromRaw(conf).input_rate_krps);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, StreamTemplateProperty,
                         ::testing::Range(1, kNumStreamTemplates + 1));

TEST(StreamBenchmarkTest, HigherIntensityVariantsProcessSlower) {
  StreamEngine engine;
  const Vector conf = StreamParamSpace().Defaults();
  // Same template, low vs high intensity variant.
  StreamResult low = engine.Run(MakeStreamWorkload(1).profile, conf);
  StreamResult high = engine.Run(
      MakeStreamWorkload(1 + 9 * kNumStreamTemplates).profile, conf);
  EXPECT_GT(high.batch_processing_s, low.batch_processing_s);
}

}  // namespace
}  // namespace udao
