// UdaoService: the serving layer's frontier cache must be invisible in the
// results (a cache hit returns bitwise what a cold solve returns), visible
// in the counters (hits / misses / invalidations), and safely invalidated
// by model-server generation bumps (Ingest, lazy retrain).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/random.h"
#include "serving/udao_service.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::UnitSpace2;

UdaoOptions FastOptions() {
  UdaoOptions options;
  options.pf.mogd.multistart = 4;
  options.pf.mogd.max_iters = 40;
  options.solver_threads = 2;
  options.frontier_points = 8;
  return options;
}

UdaoServiceConfig FastServiceConfig() {
  UdaoServiceConfig config;
  config.udao = FastOptions();
  config.admission_threads = 2;
  return config;
}

// The ConvexProblem objectives as a request (explicit models, so the model
// server is only consulted for its generation counter).
UdaoRequest ConvexRequest() {
  static const MooProblem& problem =
      *new MooProblem(testing_problems::ConvexProblem());
  UdaoRequest request;
  request.workload_id = "w";
  request.space = &UnitSpace2();
  request.objectives = {problem.objective(0), problem.objective(1)};
  return request;
}

void ExpectBitwiseEqual(const UdaoRecommendation& a,
                        const UdaoRecommendation& b) {
  ASSERT_EQ(a.frontier.frontier.size(), b.frontier.frontier.size());
  for (size_t i = 0; i < a.frontier.frontier.size(); ++i) {
    EXPECT_EQ(a.frontier.frontier[i].conf_encoded,
              b.frontier.frontier[i].conf_encoded)
        << "frontier point " << i;
    EXPECT_EQ(a.frontier.frontier[i].objectives,
              b.frontier.frontier[i].objectives)
        << "frontier point " << i;
  }
  EXPECT_EQ(a.frontier.utopia, b.frontier.utopia);
  EXPECT_EQ(a.frontier.nadir, b.frontier.nadir);
  EXPECT_EQ(a.conf_encoded, b.conf_encoded);
  EXPECT_EQ(a.conf_raw, b.conf_raw);
  EXPECT_EQ(a.predicted_objectives, b.predicted_objectives);
  EXPECT_EQ(a.weights_used, b.weights_used);
}

TEST(UdaoServiceTest, CacheHitIsBitwiseIdenticalToColdSolve) {
  ModelServer server;
  // Ground truth: the plain optimizer, no cache anywhere.
  Udao direct(&server, FastOptions());
  auto baseline = direct.Optimize(ConvexRequest());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  UdaoService service(&server, FastServiceConfig());
  auto cold = service.Submit(ConvexRequest()).Wait();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = service.Submit(ConvexRequest()).Wait();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  ExpectBitwiseEqual(*baseline, *cold);
  ExpectBitwiseEqual(*cold, *warm);

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.invalidations, 0);
  EXPECT_EQ(s.errors, 0);
  EXPECT_EQ(service.CacheSize(), 1);
}

TEST(UdaoServiceTest, WeightAndPolicyOnlyVariationsShareOneFrontier) {
  ModelServer server;
  Udao direct(&server, FastOptions());
  UdaoService service(&server, FastServiceConfig());

  // Prime the cache.
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());

  // Different preference weights: served from the cached frontier, yet
  // bitwise identical to what a cold optimizer computes for those weights.
  UdaoRequest weighted = ConvexRequest();
  weighted.preference_weights = {0.9, 0.1};
  auto from_cache = service.Submit(weighted).Wait();
  ASSERT_TRUE(from_cache.ok()) << from_cache.status().ToString();
  auto from_cold = direct.Optimize(weighted);
  ASSERT_TRUE(from_cold.ok());
  ExpectBitwiseEqual(*from_cold, *from_cache);

  // Different recommendation policy: also weight-only as far as step 2 is
  // concerned.
  UdaoRequest knee = ConvexRequest();
  knee.options.policy = RecommendPolicy::kKnee;
  auto knee_cached = service.Submit(knee).Wait();
  ASSERT_TRUE(knee_cached.ok());
  auto knee_cold = direct.Optimize(knee);
  ASSERT_TRUE(knee_cold.ok());
  ExpectBitwiseEqual(*knee_cold, *knee_cached);

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 3);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 2);
}

TEST(UdaoServiceTest, ConstraintChangesMissTheCache) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());

  // A different value constraint changes what PF computes: new key.
  UdaoRequest constrained = ConvexRequest();
  constrained.objectives[0].upper = 0.8;
  ASSERT_TRUE(service.Submit(constrained).Wait().ok());

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 2);
  EXPECT_EQ(s.cache_hits, 0);
  EXPECT_EQ(service.CacheSize(), 2);
}

TEST(UdaoServiceTest, IngestInvalidatesCachedFrontier) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());
  EXPECT_EQ(service.stats().cache_hits, 1);

  // A trace lands for this workload: its generation moves, so the cached
  // frontier may rest on out-of-date models and must not be served.
  server.Ingest("w", "f1", {0.5, 0.5}, 1.0);
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());
  UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.cache_misses, 2);

  // Generation is per-workload: other workloads' entries are untouched, and
  // the recomputed entry serves hits again.
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());
  s = service.stats();
  EXPECT_EQ(s.cache_hits, 2);
  EXPECT_EQ(s.invalidations, 1);
}

TEST(UdaoServiceTest, LazyRetrainCausesAtMostOneSpuriousRecompute) {
  // Server-resolved models: the first request's resolve triggers the initial
  // (lazy) train, which bumps the generation *after* the service read it.
  // The conservative protocol makes the second request recompute once; from
  // then on the cache serves hits.
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kGp;
  cfg.gp.hyper_opt_steps = 5;
  ModelServer server(cfg);
  Rng rng(5);
  for (int i = 0; i < 24; ++i) {
    const Vector x = {rng.Uniform(), rng.Uniform()};
    server.Ingest("w", "lat", x, 1.0 + x[0] + x[1]);
  }

  UdaoService service(&server, FastServiceConfig());
  UdaoRequest request = ConvexRequest();
  request.objectives[0] = ObjectiveSpec{.name = "lat"};  // server-resolved

  ASSERT_TRUE(service.Submit(request).Wait().ok());  // miss; resolve trains
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // spurious miss (gen moved)
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // hit
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // hit

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 2);
  EXPECT_EQ(s.invalidations, 1);
  EXPECT_EQ(s.cache_hits, 2);
  EXPECT_EQ(s.errors, 0);
}

TEST(UdaoServiceTest, LruEvictsLeastRecentlyUsedFrontier) {
  ModelServer server;
  UdaoServiceConfig config = FastServiceConfig();
  config.frontier_cache_capacity = 1;
  UdaoService service(&server, config);

  UdaoRequest a = ConvexRequest();
  UdaoRequest b = ConvexRequest();
  b.objectives[0].upper = 0.8;

  ASSERT_TRUE(service.Submit(a).Wait().ok());  // miss, cached
  ASSERT_TRUE(service.Submit(b).Wait().ok());  // miss, evicts a
  EXPECT_EQ(service.CacheSize(), 1);
  ASSERT_TRUE(service.Submit(b).Wait().ok());  // hit
  ASSERT_TRUE(service.Submit(a).Wait().ok());  // miss again (was evicted)

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 3);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_GE(s.evictions, 2);
}

TEST(UdaoServiceTest, InvalidRequestsAreCountedAsErrors) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());
  UdaoRequest bad;  // no space, no objectives
  auto rec = service.Submit(bad).Wait();
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.errors, 1);
  EXPECT_EQ(service.CacheSize(), 0);
}

TEST(UdaoServiceTest, RecycledSpaceAddressWithDifferentStructureMisses) {
  // The lifetime contract says spaces outlive the service, but a caller that
  // breaks it by destroying a space and building a different one at the
  // recycled address must get a cache miss, never the old space's frontier.
  // std::optional stores its value inline, so re-emplacing reuses the exact
  // same address deterministically.
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  std::optional<ParamSpace> space;
  space.emplace(std::vector<ParamSpec>{
      {"u0", ParamType::kContinuous, 0.0, 1.0, {}, 0.5},
      {"u1", ParamType::kContinuous, 0.0, 1.0, {}, 0.5},
  });
  UdaoRequest request = ConvexRequest();
  request.space = &*space;

  ASSERT_TRUE(service.Submit(request).Wait().ok());  // miss, cached
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // hit (same space)

  // Same address, different knob bounds: structurally a different space.
  space.emplace(std::vector<ParamSpec>{
      {"u0", ParamType::kContinuous, 0.0, 2.0, {}, 0.5},
      {"u1", ParamType::kContinuous, 0.0, 1.0, {}, 0.5},
  });
  ASSERT_EQ(request.space, &*space);  // address really was recycled
  ASSERT_TRUE(service.Submit(request).Wait().ok());

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 2);
  EXPECT_EQ(s.cache_hits, 1);
}

TEST(UdaoServiceTest, DestructorDrainsInflightRequests) {
  // Every request admitted before destruction must complete (and its ticket
  // resolve) before the destructor returns: the admission pool is the
  // last-destroyed member, so draining tasks still see a live cache/mutex.
  ModelServer server;
  constexpr int kRequests = 16;
  std::vector<RequestTicket> tickets;
  tickets.reserve(kRequests);
  {
    UdaoService service(&server, FastServiceConfig());
    for (int i = 0; i < kRequests; ++i) {
      UdaoRequest request = ConvexRequest();
      const double w = 0.1 + 0.05 * i;  // distinct weights, shared frontier
      request.preference_weights = {w, 1.0 - w};
      tickets.push_back(service.Submit(request));
    }
  }  // destructor runs with most requests still queued
  int ok = 0;
  for (RequestTicket& ticket : tickets) {
    ASSERT_TRUE(ticket.TryGet().has_value());  // drain already delivered
    if (ticket.Wait().ok()) ++ok;
  }
  EXPECT_EQ(ok, kRequests);
}

TEST(UdaoServiceTest, ModelFailureUnderStalePolicyServesCachedFrontier) {
  // Server-resolved models, so the "model_server.get_model" fault site sits
  // on this request's resolve path.
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kGp;
  cfg.gp.hyper_opt_steps = 5;
  ModelServer server(cfg);
  Rng rng(5);
  for (int i = 0; i < 24; ++i) {
    const Vector x = {rng.Uniform(), rng.Uniform()};
    server.Ingest("w", "lat", x, 1.0 + x[0] + x[1]);
  }

  UdaoServiceConfig config = FastServiceConfig();
  config.shed_policy = ShedPolicy::kServeStaleCache;
  UdaoService service(&server, config);
  UdaoRequest request = ConvexRequest();
  request.objectives[0] = ObjectiveSpec{.name = "lat"};  // server-resolved

  ASSERT_TRUE(service.Submit(request).Wait().ok());  // miss; resolve trains
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // spurious miss (gen moved)
  ASSERT_TRUE(service.Submit(request).Wait().ok());  // hit; cache is current now

  // A new trace bumps the generation, and the model server faults before
  // the forced recompute can resolve its objectives. The stale policy falls
  // back to the previous-generation frontier, explicitly tagged degraded,
  // instead of failing the request.
  server.Ingest("w", "lat", {0.25, 0.75}, 1.6);
  FaultInjector::Global().Reset();
  FaultInjector::Global().FailNext("model_server.get_model",
                                   Status::Unavailable("injected"), 1);
  auto stale = service.Submit(request).Wait();
  FaultInjector::Global().Reset();
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_TRUE(stale->degraded);
  EXPECT_FALSE(stale->frontier.frontier.empty());

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.degraded, 1);
  EXPECT_EQ(s.errors, 0);

  // With the fault gone, the next request recomputes against the new
  // generation and serves a normal (non-degraded) result again.
  auto recovered = service.Submit(request).Wait();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->degraded);
}

TEST(UdaoServiceTest, QueueWaitTimeIsSurfacedInMetadata) {
  ModelServer server;
  UdaoServiceConfig config = FastServiceConfig();
  config.admission_threads = 1;  // one worker: the second request must queue
  UdaoService service(&server, config);

  // Stall the first request's solve so the second demonstrably waits.
  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 60.0, 1);
  RequestTicket stalled = service.Submit(ConvexRequest());
  // Distinct key: the waiter cannot ride the first request's cache entry.
  UdaoRequest second = ConvexRequest();
  second.objectives[0].upper = 0.9;
  auto rec = service.Submit(second).Wait();
  FaultInjector::Global().Reset();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(rec->queue_wait_ms, 5.0);
  EXPECT_FALSE(rec->degraded);
  EXPECT_TRUE(stalled.Wait().ok());
}

TEST(UdaoServiceTest, FullQueueWithRejectPolicyShedsExplicitly) {
  ModelServer server;
  UdaoServiceConfig config = FastServiceConfig();
  config.admission_threads = 1;
  config.max_queue_depth = 1;
  config.shed_policy = ShedPolicy::kReject;
  UdaoService service(&server, config);

  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 100.0, 1);
  RequestTicket stalled = service.Submit(ConvexRequest());
  // Depth is already 1 (counted at admission), so this request is shed on
  // the caller thread with an explicit error -- it never queues.
  auto shed = service.Submit(ConvexRequest()).Wait();
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.sheds, 1);
  EXPECT_EQ(s.errors, 1);

  EXPECT_TRUE(stalled.Wait().ok());
  FaultInjector::Global().Reset();
}

TEST(UdaoServiceTest, FullQueueWithDegradePolicyStillAnswers) {
  ModelServer server;
  UdaoServiceConfig config = FastServiceConfig();
  config.admission_threads = 1;
  config.max_queue_depth = 1;
  config.shed_policy = ShedPolicy::kDegrade;
  config.degraded_budget_ms = 1.0;
  config.frontier_cache_capacity = 0;  // every request really solves
  UdaoService service(&server, config);

  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 80.0, 1);
  RequestTicket stalled = service.Submit(ConvexRequest());
  // Overflow request is admitted anyway, but its budget is clamped to
  // degraded_budget_ms at dequeue: it must come back quickly as either a
  // valid (possibly truncated) frontier or an explicit deadline error --
  // never be silently rejected, never run unbounded.
  auto rec = service.Submit(ConvexRequest()).Wait();
  FaultInjector::Global().Reset();
  if (rec.ok()) {
    EXPECT_FALSE(rec->frontier.frontier.empty());
  } else {
    EXPECT_EQ(rec.status().code(), StatusCode::kDeadlineExceeded);
  }

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.sheds, 1);
  EXPECT_TRUE(stalled.Wait().ok());
}

TEST(UdaoServiceTest, TicketTryGetPollsWithoutBlocking) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  // The async consumption pattern on the unified surface: poll TryGet until
  // the admission worker delivers, never blocking the polling thread.
  RequestTicket ticket = service.Submit(ConvexRequest());
  std::optional<StatusOr<UdaoRecommendation>> result;
  while (!(result = ticket.TryGet()).has_value()) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(result->ok()) << result->status().ToString();
  EXPECT_FALSE((*result)->frontier.frontier.empty());
}

}  // namespace
}  // namespace udao
