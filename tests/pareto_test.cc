#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "moo/pareto.h"

namespace udao {
namespace {

MooPoint P(Vector objectives) { return MooPoint{std::move(objectives), {}}; }

TEST(DominatesTest, BasicCases) {
  EXPECT_TRUE(Dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(Dominates({1, 2}, {1, 3}));
  EXPECT_FALSE(Dominates({1, 1}, {1, 1}));  // equal: not strict
  EXPECT_FALSE(Dominates({1, 3}, {2, 2}));  // incomparable
  EXPECT_FALSE(Dominates({2, 2}, {1, 1}));
}

TEST(ParetoFilterTest, RemovesDominatedAndDuplicates) {
  auto out = ParetoFilter({P({1, 5}), P({2, 4}), P({3, 6}), P({2, 4}),
                           P({5, 1})});
  // (3,6) dominated by (2,4); one (2,4) deduplicated.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(MutuallyNonDominated(out));
}

TEST(ParetoFilterTest, EmptyAndSingleton) {
  EXPECT_TRUE(ParetoFilter({}).empty());
  auto out = ParetoFilter({P({1, 2})});
  EXPECT_EQ(out.size(), 1u);
}

TEST(HyperrectVolumeTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(HyperrectVolume({0, 0}, {2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(HyperrectVolume({0, 0}, {2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(HyperrectVolume({0, 0}, {-1, 3}), 0.0);
}

TEST(HypervolumeTest, SinglePoint2D) {
  // Box [p, ref] area.
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{1, 1}}, {3, 4}), 2.0 * 3.0);
}

TEST(HypervolumeTest, TwoPoints2DWithOverlap) {
  // Points (1,3) and (2,1), ref (4,4): union area = 3*1 + 2*3 - 2*1 = 7.
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{1, 3}, {2, 1}}, {4, 4}), 7.0);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  const double hv1 = DominatedHypervolume({{1, 1}}, {4, 4});
  const double hv2 = DominatedHypervolume({{1, 1}, {2, 2}}, {4, 4});
  EXPECT_DOUBLE_EQ(hv1, hv2);
}

TEST(HypervolumeTest, PointsBeyondRefIgnored) {
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{5, 5}}, {4, 4}), 0.0);
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{1, 5}}, {4, 4}), 0.0);
}

TEST(HypervolumeTest, Exact3DBox) {
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{0, 0, 0}}, {2, 3, 4}), 24.0);
  // Two disjoint-ish boxes: (0,0,2)->(2,3,4): 2*3*2=12; (1,1,0)->(2,3,4):
  // 1*2*4=8; overlap (1,1,2)->(2,3,4): 1*2*2=4 -> union 16.
  EXPECT_DOUBLE_EQ(DominatedHypervolume({{0, 0, 2}, {1, 1, 0}}, {2, 3, 4}),
                   16.0);
}

TEST(HypervolumeTest, QmcApproximates4DBox) {
  const double hv = DominatedHypervolume({{0, 0, 0, 0}}, {1, 1, 1, 1});
  EXPECT_NEAR(hv, 1.0, 0.02);
}

// Property: exact 2D/3D hypervolume agrees with a brute-force Monte-Carlo
// estimate on random point clouds.
class HypervolumeCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(HypervolumeCrossCheck, ExactMatchesMonteCarlo) {
  Rng rng(GetParam());
  const int k = 2 + GetParam() % 2;
  std::vector<Vector> points;
  for (int i = 0; i < 8; ++i) {
    Vector f(k);
    for (int d = 0; d < k; ++d) f[d] = rng.Uniform();
    points.push_back(std::move(f));
  }
  Vector ref(k, 1.2);
  const double exact = DominatedHypervolume(points, ref);
  // Brute-force MC over [0, ref].
  const int samples = 60000;
  int dominated = 0;
  for (int s = 0; s < samples; ++s) {
    Vector q(k);
    for (int d = 0; d < k; ++d) q[d] = rng.Uniform(0.0, 1.2);
    for (const Vector& p : points) {
      bool dom = true;
      for (int d = 0; d < k; ++d) {
        if (p[d] > q[d]) {
          dom = false;
          break;
        }
      }
      if (dom) {
        ++dominated;
        break;
      }
    }
  }
  const double mc = std::pow(1.2, k) * dominated / samples;
  EXPECT_NEAR(exact, mc, 0.03 * std::pow(1.2, k));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervolumeCrossCheck,
                         ::testing::Range(200, 208));

TEST(UncertainSpaceTest, EmptyFrontierIs100) {
  EXPECT_DOUBLE_EQ(UncertainSpacePercent({}, {0, 0}, {1, 1}), 100.0);
}

TEST(UncertainSpaceTest, CenterPointLeavesHalf) {
  // Center of the unit box: dominated quarter + dominating quarter removed.
  const double u = UncertainSpacePercent({P({0.5, 0.5})}, {0, 0}, {1, 1});
  EXPECT_NEAR(u, 50.0, 1e-9);
}

TEST(UncertainSpaceTest, DenseFrontierApproachesZero) {
  // Points along the anti-diagonal y = 1 - x.
  std::vector<MooPoint> frontier;
  const int n = 200;
  for (int i = 0; i <= n; ++i) {
    const double x = static_cast<double>(i) / n;
    frontier.push_back(P({x, 1.0 - x}));
  }
  const double u = UncertainSpacePercent(frontier, {0, 0}, {1, 1});
  EXPECT_LT(u, 2.0);
}

TEST(UncertainSpaceTest, MorePointsNeverIncreaseUncertainty) {
  Rng rng(9);
  std::vector<MooPoint> frontier;
  double prev = 100.0;
  for (int i = 0; i < 20; ++i) {
    const double x = rng.Uniform();
    frontier.push_back(P({x, 1.0 - x}));
    const double u = UncertainSpacePercent(frontier, {0, 0}, {1, 1});
    EXPECT_LE(u, prev + 1e-9);
    prev = u;
  }
}

TEST(UncertainSpaceTest, PointsOutsideBoxAreClamped) {
  const double u = UncertainSpacePercent({P({-1.0, 2.0})}, {0, 0}, {1, 1});
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 100.0);
}

// Property: dominated + dominating volumes never exceed the box volume for
// mutually non-dominated random frontiers.
class UncertainSpaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(UncertainSpaceProperty, StaysWithinBounds) {
  Rng rng(GetParam());
  const int k = 2 + GetParam() % 2;  // 2D and 3D
  std::vector<MooPoint> points;
  for (int i = 0; i < 15; ++i) {
    Vector f(k);
    for (int j = 0; j < k; ++j) f[j] = rng.Uniform();
    points.push_back(P(f));
  }
  points = ParetoFilter(std::move(points));
  Vector utopia(k, 0.0);
  Vector nadir(k, 1.0);
  const double u = UncertainSpacePercent(points, utopia, nadir);
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UncertainSpaceProperty,
                         ::testing::Range(50, 62));

}  // namespace
}  // namespace udao
