#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "model/checkpoint.h"

namespace udao {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("udao_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

std::shared_ptr<MlpModel> TrainSmallMlp(Rng* rng, bool log_targets = false) {
  Matrix x(40, 2);
  Vector y(40);
  for (int i = 0; i < 40; ++i) {
    x(i, 0) = rng->Uniform();
    x(i, 1) = rng->Uniform();
    y[i] = 3.0 + 2.0 * x(i, 0) - x(i, 1);
  }
  MlpModelConfig cfg;
  cfg.hidden = {8};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 100;
  cfg.log_transform_targets = log_targets;
  auto model = MlpModel::Fit(x, y, cfg, rng);
  EXPECT_TRUE(model.ok());
  return *model;
}

TEST_F(CheckpointTest, MlpRoundTripsExactly) {
  Rng rng(1);
  auto model = TrainSmallMlp(&rng);
  ASSERT_TRUE(SaveMlpModel(*model, Path("m.ckpt")).ok());
  auto loaded = LoadMlpModel(Path("m.ckpt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (double a : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Vector p = {a, 1.0 - a};
    EXPECT_DOUBLE_EQ(model->Predict(p), (*loaded)->Predict(p));
    Vector g1 = model->InputGradient(p);
    Vector g2 = (*loaded)->InputGradient(p);
    EXPECT_DOUBLE_EQ(g1[0], g2[0]);
    EXPECT_DOUBLE_EQ(g1[1], g2[1]);
  }
}

TEST_F(CheckpointTest, MlpLogTransformSurvivesRoundTrip) {
  Rng rng(2);
  auto model = TrainSmallMlp(&rng, /*log_targets=*/true);
  ASSERT_TRUE(SaveMlpModel(*model, Path("m.ckpt")).ok());
  auto loaded = LoadMlpModel(Path("m.ckpt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(model->Predict({0.3, 0.7}), (*loaded)->Predict({0.3, 0.7}));
}

TEST_F(CheckpointTest, GpRoundTripsPredictions) {
  Rng rng(3);
  Matrix x(30, 2);
  Vector y(30);
  for (int i = 0; i < 30; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = std::sin(3 * x(i, 0)) + x(i, 1);
  }
  GpConfig cfg;
  cfg.hyper_opt_steps = 20;
  auto gp = GpModel::Fit(x, y, cfg);
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(SaveGpModel(**gp, Path("g.ckpt")).ok());
  auto loaded = LoadGpModel(Path("g.ckpt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (double a : {0.1, 0.5, 0.9}) {
    double m1 = 0.0;
    double s1 = 0.0;
    double m2 = 0.0;
    double s2 = 0.0;
    (*gp)->PredictWithUncertainty({a, a}, &m1, &s1);
    (*loaded)->PredictWithUncertainty({a, a}, &m2, &s2);
    EXPECT_NEAR(m1, m2, 1e-9);
    EXPECT_NEAR(s1, s2, 1e-9);
  }
}

TEST_F(CheckpointTest, LoadRejectsGarbage) {
  {
    std::ofstream out(Path("junk"));
    out << "not a checkpoint at all";
  }
  EXPECT_FALSE(LoadMlpModel(Path("junk")).ok());
  EXPECT_FALSE(LoadGpModel(Path("junk")).ok());
  EXPECT_FALSE(LoadMlpModel(Path("missing")).ok());
}

TEST_F(CheckpointTest, DeserializeRejectsTruncatedStream) {
  Rng rng(4);
  auto model = TrainSmallMlp(&rng);
  std::ostringstream full;
  model->SerializeTo(full);
  const std::string text = full.str();
  std::istringstream cut(text.substr(0, text.size() / 2));
  EXPECT_FALSE(MlpModel::Deserialize(cut).ok());
}

TEST_F(CheckpointTest, ModelServerDataRoundTrips) {
  ModelServer original;
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    Vector conf = {rng.Uniform(), rng.Uniform()};
    original.Ingest("w1", "latency", conf, 10.0 + conf[0]);
    original.Ingest("w1", "cost", conf, conf[1]);
    original.Ingest("w/2", "latency", conf, 5.0);
  }
  ASSERT_TRUE(SaveModelServerData(original, {"w1", "w/2"},
                                  {"latency", "cost"}, dir_.string())
                  .ok());
  ModelServer restored;
  ASSERT_TRUE(LoadModelServerData(dir_.string(), &restored).ok());
  EXPECT_EQ(restored.NumTraces("w1", "latency"), 12);
  EXPECT_EQ(restored.NumTraces("w1", "cost"), 12);
  EXPECT_EQ(restored.NumTraces("w/2", "latency"), 12);
  auto data = restored.GetData("w1", "latency");
  ASSERT_TRUE(data.ok());
  auto orig = original.GetData("w1", "latency");
  for (size_t i = 0; i < data->y.size(); ++i) {
    EXPECT_DOUBLE_EQ(data->y[i], orig->y[i]);
  }
}

TEST_F(CheckpointTest, LoadFromMissingDirectoryFails) {
  ModelServer server;
  EXPECT_FALSE(LoadModelServerData(Path("nope"), &server).ok());
}

}  // namespace
}  // namespace udao
