#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.h"
#include "common/random.h"
#include "model/gp_model.h"

namespace udao {
namespace {

// Samples a smooth 2D function on random points.
void MakeSmoothData(int n, Rng* rng, Matrix* x, Vector* y,
                    double noise = 0.0) {
  *x = Matrix(n, 2);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    (*x)(i, 0) = rng->Uniform();
    (*x)(i, 1) = rng->Uniform();
    (*y)[i] = std::sin(3.0 * (*x)(i, 0)) + 0.5 * (*x)(i, 1) +
              (noise > 0 ? rng->Gaussian(0, noise) : 0.0);
  }
}

GpConfig FastConfig() {
  GpConfig cfg;
  cfg.hyper_opt_steps = 40;
  return cfg;
}

TEST(GpModelTest, RejectsEmptyAndMismatchedInputs) {
  EXPECT_FALSE(GpModel::Fit(Matrix(), {}, GpConfig()).ok());
  Matrix x(3, 2);
  Vector y = {1.0, 2.0};
  EXPECT_FALSE(GpModel::Fit(x, y, GpConfig()).ok());
}

TEST(GpModelTest, InterpolatesTrainingPointsWithLowNoise) {
  Rng rng(1);
  Matrix x;
  Vector y;
  MakeSmoothData(40, &rng, &x, &y);
  GpConfig cfg = FastConfig();
  auto gp = GpModel::Fit(x, y, cfg);
  ASSERT_TRUE(gp.ok());
  for (int i = 0; i < x.rows(); i += 5) {
    EXPECT_NEAR((*gp)->Predict(x.Row(i)), y[i], 0.1) << "point " << i;
  }
}

TEST(GpModelTest, GeneralizesToHeldOutPoints) {
  Rng rng(2);
  Matrix x;
  Vector y;
  MakeSmoothData(80, &rng, &x, &y);
  auto gp = GpModel::Fit(x, y, FastConfig());
  ASSERT_TRUE(gp.ok());
  Matrix xt;
  Vector yt;
  MakeSmoothData(20, &rng, &xt, &yt);
  for (int i = 0; i < xt.rows(); ++i) {
    EXPECT_NEAR((*gp)->Predict(xt.Row(i)), yt[i], 0.25) << "point " << i;
  }
}

TEST(GpModelTest, UncertaintyGrowsAwayFromData) {
  Rng rng(3);
  // Cluster all training points near the origin corner.
  const int n = 30;
  Matrix x(n, 2);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(0.0, 0.2);
    x(i, 1) = rng.Uniform(0.0, 0.2);
    y[i] = x(i, 0) + x(i, 1);
  }
  auto gp = GpModel::Fit(x, y, FastConfig());
  ASSERT_TRUE(gp.ok());
  double mean_near = 0.0;
  double std_near = 0.0;
  double mean_far = 0.0;
  double std_far = 0.0;
  (*gp)->PredictWithUncertainty({0.1, 0.1}, &mean_near, &std_near);
  (*gp)->PredictWithUncertainty({0.95, 0.95}, &mean_far, &std_far);
  EXPECT_GT(std_far, std_near);
}

TEST(GpModelTest, HyperparameterFitImprovesMarginalLikelihood) {
  Rng rng(4);
  Matrix x;
  Vector y;
  MakeSmoothData(50, &rng, &x, &y, /*noise=*/0.05);
  GpConfig fixed = FastConfig();
  fixed.hyper_opt_steps = 0;
  GpConfig fitted = FastConfig();
  auto gp0 = GpModel::Fit(x, y, fixed);
  auto gp1 = GpModel::Fit(x, y, fitted);
  ASSERT_TRUE(gp0.ok());
  ASSERT_TRUE(gp1.ok());
  EXPECT_GE((*gp1)->log_marginal_likelihood(),
            (*gp0)->log_marginal_likelihood());
}

TEST(GpModelTest, SurvivesDuplicateTrainingPoints) {
  Matrix x(6, 1);
  Vector y(6);
  for (int i = 0; i < 6; ++i) {
    x(i, 0) = 0.5;  // all identical inputs
    y[i] = 1.0 + 0.01 * i;
  }
  auto gp = GpModel::Fit(x, y, FastConfig());
  ASSERT_TRUE(gp.ok());
  EXPECT_NEAR((*gp)->Predict({0.5}), 1.025, 0.2);
}

TEST(GpModelTest, ConstantTargetsPredictConstant) {
  Rng rng(5);
  Matrix x(10, 2);
  Vector y(10, 3.14);
  for (int i = 0; i < 10; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
  }
  auto gp = GpModel::Fit(x, y, FastConfig());
  ASSERT_TRUE(gp.ok());
  EXPECT_NEAR((*gp)->Predict({0.5, 0.5}), 3.14, 0.05);
}

// Property: analytic posterior-mean gradient matches finite differences.
class GpGradientProperty : public ::testing::TestWithParam<int> {};

TEST_P(GpGradientProperty, MeanGradientMatchesFiniteDifferences) {
  Rng rng(GetParam());
  Matrix x;
  Vector y;
  MakeSmoothData(30, &rng, &x, &y);
  auto gp = GpModel::Fit(x, y, FastConfig());
  ASSERT_TRUE(gp.ok());
  const double h = 1e-6;
  for (int trial = 0; trial < 5; ++trial) {
    Vector p = {rng.Uniform(), rng.Uniform()};
    Vector grad = (*gp)->InputGradient(p);
    for (int d = 0; d < 2; ++d) {
      Vector pp = p;
      Vector pm = p;
      pp[d] += h;
      pm[d] -= h;
      const double fd = ((*gp)->Predict(pp) - (*gp)->Predict(pm)) / (2 * h);
      EXPECT_NEAR(grad[d], fd, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpGradientProperty,
                         ::testing::Values(20, 21, 22, 23));

TEST(GpModelTest, NoisyTargetsLearnNonTrivialNoiseVariance) {
  Rng rng(6);
  Matrix x;
  Vector y;
  MakeSmoothData(60, &rng, &x, &y, /*noise=*/0.3);
  GpConfig cfg = FastConfig();
  cfg.hyper_opt_steps = 80;
  auto gp = GpModel::Fit(x, y, cfg);
  ASSERT_TRUE(gp.ok());
  // With sizable observation noise the fitted noise variance should exceed
  // the near-zero init region.
  EXPECT_GT((*gp)->noise_var(), 1e-3);
}

TEST(GpModelTest, LogTransformPositivePredictionsAndGradient) {
  Rng rng(30);
  const int n = 50;
  Matrix x(n, 2);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = std::exp(1.0 + x(i, 0) - x(i, 1));
  }
  GpConfig cfg;
  cfg.hyper_opt_steps = 30;
  cfg.log_transform_targets = true;
  auto gp = GpModel::Fit(x, y, cfg);
  ASSERT_TRUE(gp.ok());
  const double h = 1e-6;
  for (int trial = 0; trial < 5; ++trial) {
    Vector p = {rng.Uniform(), rng.Uniform()};
    EXPECT_GT((*gp)->Predict(p), 0.0);
    Vector grad = (*gp)->InputGradient(p);
    for (int d = 0; d < 2; ++d) {
      Vector pp = p;
      Vector pm = p;
      pp[d] += h;
      pm[d] -= h;
      const double fd = ((*gp)->Predict(pp) - (*gp)->Predict(pm)) / (2 * h);
      EXPECT_NEAR(grad[d], fd, 1e-3 * std::max(1.0, std::abs(fd)));
    }
  }
}

TEST(GpModelTest, LogTransformUncertaintyScalesWithMean) {
  Rng rng(31);
  Matrix x(20, 1);
  Vector y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = rng.Uniform(0.0, 0.3);
    y[i] = 100.0;
  }
  GpConfig cfg;
  cfg.hyper_opt_steps = 10;
  cfg.log_transform_targets = true;
  auto gp = GpModel::Fit(x, y, cfg);
  ASSERT_TRUE(gp.ok());
  double mean = 0.0;
  double stddev = 0.0;
  (*gp)->PredictWithUncertainty({0.9}, &mean, &stddev);
  EXPECT_GT(mean, 0.0);
  EXPECT_GT(stddev, 0.0);
}

}  // namespace
}  // namespace udao
