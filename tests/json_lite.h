#ifndef UDAO_TESTS_JSON_LITE_H_
#define UDAO_TESTS_JSON_LITE_H_

// Minimal recursive-descent JSON parser for tests: just enough to round-trip
// the MetricsRegistry snapshots and bench reports the observability layer
// emits (objects, arrays, strings, numbers, booleans, null). Not a general
// JSON library -- no \u escapes beyond pass-through, no streaming.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace udao {
namespace testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input; sets *ok to false on any syntax error or
  // trailing garbage.
  JsonValue Parse(bool* ok) {
    pos_ = 0;
    failed_ = false;
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) failed_ = true;
    *ok = !failed_;
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      failed_ = true;
      return JsonValue{};
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Consume('{');
    if (Consume('}')) return v;
    while (!failed_) {
      JsonValue key = ParseString();
      if (failed_ || !Consume(':')) {
        failed_ = true;
        return v;
      }
      v.object[key.str] = ParseValue();
      if (Consume('}')) return v;
      if (!Consume(',')) {
        failed_ = true;
        return v;
      }
    }
    return v;
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Consume('[');
    if (Consume(']')) return v;
    while (!failed_) {
      v.array.push_back(ParseValue());
      if (Consume(']')) return v;
      if (!Consume(',')) {
        failed_ = true;
        return v;
      }
    }
    return v;
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!Consume('"')) {
      failed_ = true;
      return v;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            // \uXXXX and anything else: keep the escape verbatim.
            v.str.push_back(c);
            c = esc;
            break;
        }
      }
      v.str.push_back(c);
    }
    if (pos_ >= text_.size()) {
      failed_ = true;
      return v;
    }
    ++pos_;  // closing quote
    return v;
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      failed_ = true;
    }
    return v;
  }

  JsonValue ParseNull() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      failed_ = true;
    }
    return v;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      failed_ = true;
      return v;
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') failed_ = true;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool failed_ = false;
};

inline JsonValue ParseJson(const std::string& text, bool* ok) {
  return JsonParser(text).Parse(ok);
}

}  // namespace testing
}  // namespace udao

#endif  // UDAO_TESTS_JSON_LITE_H_
