#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "spark/conf.h"

namespace udao {
namespace {

ParamSpace TestSpace() {
  return ParamSpace({
      {"cont", ParamType::kContinuous, 0.0, 10.0, {}, 5.0},
      {"int", ParamType::kInteger, 1, 9, {}, 3},
      {"bool", ParamType::kBoolean, 0, 1, {}, 1},
      {"cat", ParamType::kCategorical, 0, 2, {"a", "b", "c"}, 1},
  });
}

TEST(ParamSpaceTest, EncodedDimCountsOneHot) {
  ParamSpace space = TestSpace();
  EXPECT_EQ(space.NumParams(), 4);
  EXPECT_EQ(space.EncodedDim(), 3 + 3);  // 3 scalars + 3-way one-hot
}

TEST(ParamSpaceTest, EncodeDecodeRoundTripsValidConfigs) {
  ParamSpace space = TestSpace();
  Vector raw = {2.5, 7, 0, 2};
  Vector enc = space.Encode(raw);
  Vector back = space.Decode(enc);
  ASSERT_EQ(back.size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) EXPECT_DOUBLE_EQ(back[i], raw[i]);
}

TEST(ParamSpaceTest, EncodeNormalizesToUnitRange) {
  ParamSpace space = TestSpace();
  Vector enc = space.Encode({10.0, 9, 1, 0});
  for (double v : enc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(enc[0], 1.0);
  EXPECT_DOUBLE_EQ(enc[1], 1.0);
}

TEST(ParamSpaceTest, EncodeClampsOutOfRangeRawsIntoUnitBox) {
  ParamSpace space = TestSpace();
  // Continuous above hi, integer below lo, boolean above 1: each must clamp
  // into the unit box (MOGD seeds descents from encodings and assumes
  // [0, 1]) and round-trip to the nearest in-range raw value.
  Vector enc = space.Encode({25.0, -4.0, 3.0, 1.0});
  for (double v : enc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_DOUBLE_EQ(enc[0], 1.0);
  EXPECT_DOUBLE_EQ(enc[1], 0.0);
  EXPECT_DOUBLE_EQ(enc[2], 1.0);
  Vector back = space.Decode(enc);
  EXPECT_DOUBLE_EQ(back[0], 10.0);  // clamped to hi
  EXPECT_DOUBLE_EQ(back[1], 1.0);   // clamped to lo
  EXPECT_DOUBLE_EQ(back[2], 1.0);
  EXPECT_TRUE(space.Validate(back).ok());
}

TEST(ParamSpaceTest, DecodeRoundsIntegersAndBooleans) {
  ParamSpace space = TestSpace();
  // int in [1,9]: encoded 0.5 -> 5; bool 0.49 -> 0; 0.51 -> 1.
  Vector raw = space.Decode({0.5, 0.5, 0.49, 0.1, 0.9, 0.2});
  EXPECT_DOUBLE_EQ(raw[1], 5.0);
  EXPECT_DOUBLE_EQ(raw[2], 0.0);
  EXPECT_DOUBLE_EQ(raw[3], 1.0);  // argmax of {0.1, 0.9, 0.2}
}

TEST(ParamSpaceTest, DecodeClampsOutOfRangeEncodings) {
  ParamSpace space = TestSpace();
  Vector raw = space.Decode({1.7, -0.3, 2.0, 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(raw[0], 10.0);
  EXPECT_DOUBLE_EQ(raw[1], 1.0);
  EXPECT_TRUE(space.Validate(raw).ok());
}

TEST(ParamSpaceTest, DefaultsAreValid) {
  EXPECT_TRUE(TestSpace().Validate(TestSpace().Defaults()).ok());
  EXPECT_TRUE(
      BatchParamSpace().Validate(BatchParamSpace().Defaults()).ok());
  EXPECT_TRUE(
      StreamParamSpace().Validate(StreamParamSpace().Defaults()).ok());
}

TEST(ParamSpaceTest, SamplesAreAlwaysValid) {
  ParamSpace space = TestSpace();
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    Vector raw = space.Sample(&rng);
    EXPECT_TRUE(space.Validate(raw).ok());
  }
}

TEST(ParamSpaceTest, FromUnitHitsRangeEndpoints) {
  ParamSpace space = TestSpace();
  Vector lo = space.FromUnit({0, 0, 0, 0});
  Vector hi = space.FromUnit({1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 10.0);
  EXPECT_DOUBLE_EQ(lo[1], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 9.0);
  EXPECT_DOUBLE_EQ(hi[3], 2.0);  // last category
}

TEST(ParamSpaceTest, ValidateRejectsBadConfigs) {
  ParamSpace space = TestSpace();
  EXPECT_FALSE(space.Validate({1.0, 2.0}).ok());              // arity
  EXPECT_FALSE(space.Validate({11.0, 3, 0, 1}).ok());         // range
  EXPECT_FALSE(space.Validate({5.0, 3.5, 0, 1}).ok());        // non-integer
  EXPECT_FALSE(space.Validate({5.0, 3, 0, 5}).ok());          // bad category
  EXPECT_FALSE(space.Validate({NAN, 3, 0, 1}).ok());          // non-finite
  EXPECT_TRUE(space.Validate({5.0, 3, 0, 1}).ok());
}

TEST(ParamSpaceTest, IndexOfFindsKnobs) {
  const ParamSpace& space = BatchParamSpace();
  auto idx = space.IndexOf("spark.executor.cores");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(space.spec(*idx).name, "spark.executor.cores");
  EXPECT_FALSE(space.IndexOf("nope").ok());
}

TEST(SparkConfTest, RawRoundTrip) {
  SparkConf conf;
  conf.parallelism = 100;
  conf.executor_instances = 10;
  conf.executor_cores = 4;
  SparkConf back = SparkConf::FromRaw(conf.ToRaw());
  EXPECT_DOUBLE_EQ(back.parallelism, 100);
  EXPECT_DOUBLE_EQ(back.TotalCores(), 40);
}

TEST(SparkConfTest, DefaultsMatchBatchSpace) {
  SparkConf conf;
  Vector defaults = BatchParamSpace().Defaults();
  Vector raw = conf.ToRaw();
  ASSERT_EQ(raw.size(), defaults.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw[i], defaults[i]) << "knob " << i;
  }
}

TEST(StreamConfTest, DefaultsMatchStreamSpace) {
  StreamConf conf;
  Vector defaults = StreamParamSpace().Defaults();
  Vector raw = conf.ToRaw();
  ASSERT_EQ(raw.size(), defaults.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw[i], defaults[i]) << "knob " << i;
  }
}

// Property: encode/decode is idempotent for any decoded point.
class EncodeDecodeProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodeDecodeProperty, DecodeEncodeDecodeIsStable) {
  Rng rng(GetParam());
  const ParamSpace& space = BatchParamSpace();
  Vector enc(space.EncodedDim());
  for (double& v : enc) v = rng.Uniform();
  Vector raw1 = space.Decode(enc);
  Vector raw2 = space.Decode(space.Encode(raw1));
  for (size_t i = 0; i < raw1.size(); ++i) {
    EXPECT_NEAR(raw1[i], raw2[i], 1e-9);
  }
  EXPECT_TRUE(space.Validate(raw1).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeProperty,
                         ::testing::Range(100, 120));

}  // namespace
}  // namespace udao
