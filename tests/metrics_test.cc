// MetricsRegistry / TraceSpan unit tests plus JSON round-trips for the two
// machine-readable surfaces the observability layer exposes: the registry
// snapshot (udao_cli --metrics-json) and the bench report (bench_* --json).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics_registry.h"
#include "json_lite.h"

namespace udao {
namespace {

using ::udao::testing::JsonValue;
using ::udao::testing::ParseJson;

TEST(MetricsRegistryTest, CountersAccumulateAndRead) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.CounterValue("udao.test.c"), 0);
  reg.AddCounter("udao.test.c");
  reg.AddCounter("udao.test.c", 41);
  EXPECT_EQ(reg.CounterValue("udao.test.c"), 42);
  reg.AddCounter("udao.test.other", 7);
  auto all = reg.Counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all["udao.test.c"], 42);
  EXPECT_EQ(all["udao.test.other"], 7);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GaugeValue("udao.test.g"), 0.0);
  reg.SetGauge("udao.test.g", 1.5);
  reg.SetGauge("udao.test.g", -3.25);
  EXPECT_EQ(reg.GaugeValue("udao.test.g"), -3.25);
}

TEST(MetricsRegistryTest, HistogramStats) {
  MetricsRegistry reg;
  reg.Observe("udao.test.h", 1.0);
  reg.Observe("udao.test.h", 4.0);
  reg.Observe("udao.test.h", 0.25);
  HistogramSnapshot snap = reg.HistogramValue("udao.test.h");
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 5.25);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
  ASSERT_EQ(static_cast<int>(snap.buckets.size()),
            MetricsRegistry::kNumBuckets);
  long long total = 0;
  for (long long b : snap.buckets) total += b;
  EXPECT_EQ(total, 3);
}

TEST(MetricsRegistryTest, BucketEdges) {
  // Degenerate inputs land in the underflow bucket.
  EXPECT_EQ(MetricsRegistry::BucketIndex(0.0), 0);
  EXPECT_EQ(MetricsRegistry::BucketIndex(-5.0), 0);
  EXPECT_EQ(MetricsRegistry::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(MetricsRegistry::BucketIndex(std::ldexp(1.0, -40)), 0);

  // 1.0 sits at the lower edge of its bucket; [1, 2) share it, 2 moves up.
  const int one = MetricsRegistry::BucketIndex(1.0);
  EXPECT_DOUBLE_EQ(MetricsRegistry::BucketLowerBound(one), 1.0);
  EXPECT_EQ(MetricsRegistry::BucketIndex(1.999), one);
  EXPECT_EQ(MetricsRegistry::BucketIndex(2.0), one + 1);
  EXPECT_EQ(MetricsRegistry::BucketIndex(0.999), one - 1);

  // Every interior bucket's lower edge maps back to that bucket, and the
  // value just below the edge maps to the previous one.
  for (int i = 1; i < MetricsRegistry::kNumBuckets - 1; ++i) {
    const double edge = MetricsRegistry::BucketLowerBound(i);
    EXPECT_EQ(MetricsRegistry::BucketIndex(edge), i) << "bucket " << i;
    const double below = std::nextafter(edge, 0.0);
    EXPECT_EQ(MetricsRegistry::BucketIndex(below), i - 1) << "bucket " << i;
    EXPECT_GT(edge, MetricsRegistry::BucketLowerBound(i - 1));
  }

  // Overflow bucket catches everything huge.
  EXPECT_EQ(MetricsRegistry::BucketIndex(std::ldexp(1.0, 40)),
            MetricsRegistry::kNumBuckets - 1);
  EXPECT_EQ(MetricsRegistry::BucketIndex(1e300),
            MetricsRegistry::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.AddCounter("udao.test.c", 3);
  reg.SetGauge("udao.test.g", 2.0);
  reg.Observe("udao.test.h", 1.0);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("udao.test.c"), 0);
  EXPECT_EQ(reg.GaugeValue("udao.test.g"), 0.0);
  EXPECT_EQ(reg.HistogramValue("udao.test.h").count, 0);
  EXPECT_TRUE(reg.Counters().empty());
}

TEST(MetricsRegistryTest, SnapshotJsonRoundTrips) {
  MetricsRegistry reg;
  reg.AddCounter("udao.test.counter", 5);
  reg.SetGauge("udao.test.gauge", 1.25);
  reg.Observe("udao.test.hist", 3.0);
  reg.Observe("udao.test.hist", 0.5);
  // A name that needs escaping must not corrupt the document.
  reg.AddCounter("udao.test.\"quoted\\name\"", 1);

  bool ok = false;
  JsonValue doc = ParseJson(reg.SnapshotJson(), &ok);
  ASSERT_TRUE(ok) << reg.SnapshotJson();
  ASSERT_TRUE(doc.IsObject());
  for (const char* key : {"counters", "gauges", "histograms", "traces"}) {
    EXPECT_TRUE(doc.Has(key)) << key;
  }
  EXPECT_EQ(doc.At("counters").At("udao.test.counter").number, 5.0);
  EXPECT_EQ(doc.At("counters").At("udao.test.\"quoted\\name\"").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.At("gauges").At("udao.test.gauge").number, 1.25);

  const JsonValue& hist = doc.At("histograms").At("udao.test.hist");
  ASSERT_TRUE(hist.IsObject());
  EXPECT_EQ(hist.At("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.At("sum").number, 3.5);
  EXPECT_DOUBLE_EQ(hist.At("min").number, 0.5);
  EXPECT_DOUBLE_EQ(hist.At("max").number, 3.0);
  // Only occupied buckets are emitted: two observations, two buckets.
  ASSERT_TRUE(hist.At("buckets").IsArray());
  EXPECT_EQ(hist.At("buckets").array.size(), 2u);
  long long from_buckets = 0;
  for (const JsonValue& pair : hist.At("buckets").array) {
    ASSERT_TRUE(pair.IsArray());
    ASSERT_EQ(pair.array.size(), 2u);
    from_buckets += static_cast<long long>(pair.array[1].number);
  }
  EXPECT_EQ(from_buckets, 2);
}

#if UDAO_METRICS_ENABLED
TEST(TraceSpanTest, NestedSpansFormOneTree) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  {
    UDAO_TRACE_SPAN("test.root");
    { UDAO_TRACE_SPAN("test.child_a"); }
    { UDAO_TRACE_SPAN("test.child_b"); }
  }
  bool ok = false;
  JsonValue doc = ParseJson(reg.SnapshotJson(), &ok);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(doc.At("traces").IsArray());
  ASSERT_EQ(doc.At("traces").array.size(), 1u);
  const JsonValue& tree = doc.At("traces").array[0];
  ASSERT_EQ(tree.array.size(), 3u);
  EXPECT_EQ(tree.array[0].At("name").str, "test.root");
  EXPECT_EQ(tree.array[0].At("parent").number, -1.0);
  EXPECT_EQ(tree.array[1].At("name").str, "test.child_a");
  EXPECT_EQ(tree.array[1].At("parent").number, 0.0);
  EXPECT_EQ(tree.array[2].At("name").str, "test.child_b");
  EXPECT_EQ(tree.array[2].At("parent").number, 0.0);
  // Every span also feeds its duration histogram.
  EXPECT_EQ(reg.HistogramValue("udao.span.test.root_ms").count, 1);
  EXPECT_EQ(reg.HistogramValue("udao.span.test.child_a_ms").count, 1);
  reg.Reset();
}

TEST(TraceSpanTest, SpansOnDifferentThreadsFormSeparateTrees) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  {
    UDAO_TRACE_SPAN("test.main_root");
    std::thread worker([] { UDAO_TRACE_SPAN("test.worker_root"); });
    worker.join();
  }
  bool ok = false;
  JsonValue doc = ParseJson(reg.SnapshotJson(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(doc.At("traces").array.size(), 2u);
  reg.Reset();
}
#endif  // UDAO_METRICS_ENABLED

TEST(BenchReportTest, ReportJsonMatchesSchema) {
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().AddCounter("udao.test.bench_counter", 9);
  bench::BenchOptions options;
  options.quick = true;
  const std::string report =
      bench::BenchReportJson("metrics_test_bench", options, 123.5);
  bool ok = false;
  JsonValue doc = ParseJson(report, &ok);
  ASSERT_TRUE(ok) << report;
  for (const char* key :
       {"benchmark", "git_sha", "config", "wall_ms", "counters"}) {
    EXPECT_TRUE(doc.Has(key)) << key;
  }
  EXPECT_EQ(doc.At("benchmark").str, "metrics_test_bench");
  EXPECT_TRUE(doc.At("git_sha").IsString());
  EXPECT_TRUE(doc.At("config").At("quick").boolean);
  EXPECT_FALSE(doc.At("config").At("full").boolean);
  EXPECT_DOUBLE_EQ(doc.At("wall_ms").number, 123.5);
  EXPECT_EQ(doc.At("counters").At("udao.test.bench_counter").number, 9.0);
  MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace udao
