#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "common/stats.h"
#include "spark/engine.h"
#include "workload/streambench.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

namespace udao {
namespace {

// ------------------------------------------------------------ TPCx-BB

TEST(TpcxbbTest, All258WorkloadsAreValidAndUnique) {
  std::vector<BatchWorkload> workloads = MakeTpcxbbWorkloads();
  ASSERT_EQ(workloads.size(), static_cast<size_t>(kNumTpcxbbWorkloads));
  std::set<std::string> ids;
  std::set<std::string> flow_names;
  for (const BatchWorkload& w : workloads) {
    EXPECT_TRUE(w.flow.Validate().ok()) << w.id;
    ids.insert(w.id);
    flow_names.insert(w.flow.name());
    EXPECT_GE(w.template_id, 1);
    EXPECT_LE(w.template_id, kNumTpcxbbTemplates);
  }
  EXPECT_EQ(ids.size(), workloads.size());
  EXPECT_EQ(flow_names.size(), workloads.size());
}

TEST(TpcxbbTest, TemplateCompositionMatchesBenchmark) {
  // 14 SQL, 11 SQL+UDF, 5 ML.
  int sql = 0;
  int udf = 0;
  int ml = 0;
  for (int t = 1; t <= kNumTpcxbbTemplates; ++t) {
    Dataflow flow = MakeTpcxbbTemplate(t, 1.0, 0.0);
    switch (flow.workload_class()) {
      case WorkloadClass::kSql:
        ++sql;
        break;
      case WorkloadClass::kSqlUdf:
        ++udf;
        break;
      case WorkloadClass::kMl:
        ++ml;
        break;
    }
  }
  EXPECT_EQ(sql, 13);  // template 2 is SQL+UDF (the paper's Q2)
  EXPECT_EQ(udf, 12);
  EXPECT_EQ(ml, 5);
}

TEST(TpcxbbTest, VariantsChangeDataScale) {
  BatchWorkload v0 = MakeTpcxbbWorkload(9);          // template 9 variant 0
  BatchWorkload v5 = MakeTpcxbbWorkload(9 + 5 * 30); // template 9 variant 5
  EXPECT_EQ(v0.template_id, v5.template_id);
  EXPECT_NE(v0.variant, v5.variant);
  EXPECT_NE(v0.flow.TotalInputBytes(), v5.flow.TotalInputBytes());
}

TEST(TpcxbbTest, LatencySpansTwoOrdersOfMagnitude) {
  SparkEngine engine;
  Vector conf = BatchParamSpace().Defaults();
  double min_lat = 1e100;
  double max_lat = 0;
  for (int t = 1; t <= kNumTpcxbbTemplates; ++t) {
    BatchWorkload w = MakeTpcxbbWorkload(t);
    const double lat = engine.Latency(w.flow, conf);
    min_lat = std::min(min_lat, lat);
    max_lat = std::max(max_lat, lat);
  }
  EXPECT_GT(max_lat / min_lat, 20.0)
      << "min " << min_lat << " max " << max_lat;
}

TEST(TpcxbbTest, DeterministicConstruction) {
  BatchWorkload a = MakeTpcxbbWorkload(42);
  BatchWorkload b = MakeTpcxbbWorkload(42);
  EXPECT_EQ(a.flow.name(), b.flow.name());
  EXPECT_DOUBLE_EQ(a.flow.TotalInputBytes(), b.flow.TotalInputBytes());
}

// ------------------------------------------------------------ Streaming

TEST(StreamBenchTest, All63WorkloadsAreUnique) {
  std::vector<StreamWorkload> workloads = MakeStreamWorkloads();
  ASSERT_EQ(workloads.size(), static_cast<size_t>(kNumStreamWorkloads));
  std::set<std::string> names;
  for (const StreamWorkload& w : workloads) {
    names.insert(w.profile.name);
    EXPECT_GT(w.profile.map_ops_per_record, 0);
    EXPECT_GT(w.profile.bytes_per_record, 0);
    EXPECT_LE(w.profile.shuffle_fraction, 0.9);
  }
  EXPECT_EQ(names.size(), workloads.size());
}

TEST(StreamBenchTest, TemplatesDiffer) {
  StreamWorkloadProfile a = MakeStreamTemplate(1, 1.0);
  StreamWorkloadProfile b = MakeStreamTemplate(6, 1.0);
  EXPECT_NE(a.map_ops_per_record, b.map_ops_per_record);
}

// ------------------------------------------------------------ Sampling

TEST(SamplingTest, LhsProducesValidConfigs) {
  Rng rng(1);
  auto configs = SampleConfigs(BatchParamSpace(), 50,
                               SamplingStrategy::kLatinHypercube, &rng);
  EXPECT_EQ(configs.size(), 50u);
  for (const Vector& c : configs) {
    EXPECT_TRUE(BatchParamSpace().Validate(c).ok());
  }
}

TEST(SamplingTest, HeuristicStartsWithDefaults) {
  Rng rng(2);
  auto configs = SampleConfigs(BatchParamSpace(), 20,
                               SamplingStrategy::kHeuristic, &rng);
  EXPECT_EQ(configs.size(), 20u);
  EXPECT_EQ(configs[0], BatchParamSpace().Defaults());
  for (const Vector& c : configs) {
    EXPECT_TRUE(BatchParamSpace().Validate(c).ok());
  }
}

TEST(SamplingTest, HeuristicWorksForStreamSpaceToo) {
  Rng rng(3);
  auto configs = SampleConfigs(StreamParamSpace(), 12,
                               SamplingStrategy::kHeuristic, &rng);
  EXPECT_EQ(configs.size(), 12u);
  for (const Vector& c : configs) {
    EXPECT_TRUE(StreamParamSpace().Validate(c).ok());
  }
}

TEST(SamplingTest, BoGuidedConcentratesOnLowLatency) {
  Rng rng(4);
  // Synthetic latency: minimized when knob 1 (executors) is large.
  auto latency_fn = [](const Vector& raw) {
    return 100.0 / raw[1];
  };
  auto configs = BoGuidedConfigs(BatchParamSpace(), 40, latency_fn, &rng);
  EXPECT_EQ(configs.size(), 40u);
  // The BO tail should push executors higher than the seed average.
  double seed_mean = 0;
  double tail_mean = 0;
  for (int i = 0; i < 10; ++i) seed_mean += configs[i][1];
  for (int i = 30; i < 40; ++i) tail_mean += configs[i][1];
  EXPECT_GT(tail_mean, seed_mean * 0.9);
  for (const Vector& c : configs) {
    EXPECT_TRUE(BatchParamSpace().Validate(c).ok());
  }
}

// ------------------------------------------------------------ Traces

TEST(TraceGenTest, BatchTracesIngestAllObjectives) {
  SparkEngine engine;
  ModelServer server;
  Rng rng(5);
  BatchWorkload w = MakeTpcxbbWorkload(9);
  auto configs = SampleConfigs(BatchParamSpace(), 10,
                               SamplingStrategy::kLatinHypercube, &rng);
  auto traces = CollectBatchTraces(engine, w, configs, &server);
  EXPECT_EQ(traces.size(), 10u);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kLatency), 10);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kCostCores), 10);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kCostCpuHour), 10);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kCost2), 10);
  EXPECT_TRUE(server.MeanMetrics(w.id).ok());
}

TEST(TraceGenTest, StreamTracesIngestThroughput) {
  StreamEngine engine;
  ModelServer server;
  Rng rng(6);
  StreamWorkload w = MakeStreamWorkload(54);
  auto configs = SampleConfigs(StreamParamSpace(), 8,
                               SamplingStrategy::kLatinHypercube, &rng);
  auto traces = CollectStreamTraces(engine, w, configs, &server);
  EXPECT_EQ(traces.size(), 8u);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kThroughput), 8);
  EXPECT_EQ(server.NumTraces(w.id, objectives::kLatency), 8);
}

TEST(TraceGenTest, TracesWorkWithoutServer) {
  SparkEngine engine;
  Rng rng(7);
  BatchWorkload w = MakeTpcxbbWorkload(1);
  auto configs = SampleConfigs(BatchParamSpace(), 3,
                               SamplingStrategy::kLatinHypercube, &rng);
  auto traces = CollectBatchTraces(engine, w, configs, nullptr);
  EXPECT_EQ(traces.size(), 3u);
  for (const TraceRecord& t : traces) {
    EXPECT_GT(t.metrics.latency_s, 0);
    EXPECT_EQ(t.workload_id, "1");
  }
}

}  // namespace
}  // namespace udao
