// Seeded violation: acquiring a non-reentrant udao::Mutex twice in one
// scope (self-deadlock at runtime). The thread-safety gate must reject this
// file.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    udao::MutexLock lock(mu_);
    udao::MutexLock again(mu_);  // already held: guaranteed diagnostic
    value_ += d;
  }

 private:
  udao::Mutex mu_;
  int value_ UDAO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return 0;
}
