// Seeded violation: calling an UDAO_REQUIRES helper without holding the
// required mutex. The thread-safety gate must reject this file.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    AddLocked(d);  // mu_ not held: guaranteed diagnostic
  }

 private:
  void AddLocked(int d) UDAO_REQUIRES(mu_) { value_ += d; }

  udao::Mutex mu_;
  int value_ UDAO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return 0;
}
