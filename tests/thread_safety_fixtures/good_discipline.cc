// Control fixture: correct lock discipline over udao::Mutex / CondVar /
// MutexLock must compile cleanly under -Werror=thread-safety. Exercises the
// exact patterns the production code uses: GUARDED_BY members, a *Locked()
// helper with UDAO_REQUIRES, a condvar wait loop, and scoped locking.

#include "common/sync.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    {
      udao::MutexLock lock(mu_);
      PushLocked(v);
    }
    cv_.NotifyOne();
  }

  int Pop() {
    udao::MutexLock lock(mu_);
    while (size_ == 0) {
      cv_.Wait(mu_);
    }
    --size_;
    return last_;
  }

  int Size() const {
    udao::MutexLock lock(mu_);
    return size_;
  }

 private:
  void PushLocked(int v) UDAO_REQUIRES(mu_) {
    last_ = v;
    ++size_;
  }

  mutable udao::Mutex mu_;
  udao::CondVar cv_;
  int last_ UDAO_GUARDED_BY(mu_) = 0;
  int size_ UDAO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  return q.Pop() == 1 && q.Size() == 0 ? 0 : 1;
}
