// Seeded violation: reading a GUARDED_BY member with its mutex not held.
// The thread-safety gate must reject this file (the fixture test asserts a
// -Wthread-safety diagnostic).

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Add(int d) {
    udao::MutexLock lock(mu_);
    value_ += d;
  }

  int Racy() const {
    return value_;  // no lock: guaranteed diagnostic
  }

 private:
  mutable udao::Mutex mu_;
  int value_ UDAO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Racy();
}
