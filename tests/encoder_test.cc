#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "model/encoder.h"

namespace udao {
namespace {

// Metrics generated from a low-dimensional latent structure: two workload
// "families" whose 8 metrics are linear images of 2 latent factors.
Matrix FamilyMetrics(int n, Rng* rng, Vector* family_of_row = nullptr) {
  Matrix m(n, 8);
  if (family_of_row != nullptr) family_of_row->resize(n);
  for (int i = 0; i < n; ++i) {
    const int family = i % 2;
    const double a = (family == 0 ? 1.0 : 8.0) + rng->Gaussian(0, 0.2);
    const double b = (family == 0 ? 5.0 : 1.0) + rng->Gaussian(0, 0.2);
    for (int c = 0; c < 8; ++c) {
      m(i, c) = (c + 1) * a + (8 - c) * b + rng->Gaussian(0, 0.05);
    }
    if (family_of_row != nullptr) (*family_of_row)[i] = family;
  }
  return m;
}

EncoderConfig FastEncoder() {
  EncoderConfig cfg;
  cfg.encoding_dim = 2;
  cfg.hidden = 16;
  cfg.train.epochs = 300;
  return cfg;
}

TEST(WorkloadEncoderTest, RejectsBadConfigs) {
  Rng rng(1);
  Matrix m = FamilyMetrics(10, &rng);
  EncoderConfig cfg = FastEncoder();
  cfg.encoding_dim = 8;  // not a bottleneck
  EXPECT_FALSE(WorkloadEncoder::Fit(m, cfg, &rng).ok());
  EXPECT_FALSE(WorkloadEncoder::Fit(Matrix(), FastEncoder(), &rng).ok());
}

TEST(WorkloadEncoderTest, ReconstructsLowRankMetrics) {
  Rng rng(2);
  Matrix m = FamilyMetrics(80, &rng);
  auto encoder = WorkloadEncoder::Fit(m, FastEncoder(), &rng);
  ASSERT_TRUE(encoder.ok());
  // The metrics have 2 latent factors and the bottleneck has 2 units:
  // standardized reconstruction error should be far below variance 1.
  EXPECT_LT((*encoder)->ReconstructionError(m), 0.15);
  EXPECT_EQ((*encoder)->encoding_dim(), 2);
  EXPECT_EQ((*encoder)->metric_dim(), 8);
}

TEST(WorkloadEncoderTest, EncodingsSeparateWorkloadFamilies) {
  Rng rng(3);
  Vector family;
  Matrix m = FamilyMetrics(80, &rng, &family);
  auto encoder = WorkloadEncoder::Fit(m, FastEncoder(), &rng);
  ASSERT_TRUE(encoder.ok());
  // Mean intra-family encoding distance must be far below inter-family.
  std::vector<Vector> encodings;
  for (int i = 0; i < m.rows(); ++i) {
    encodings.push_back((*encoder)->Encode(m.Row(i)));
  }
  double intra = 0.0;
  double inter = 0.0;
  int n_intra = 0;
  int n_inter = 0;
  for (size_t i = 0; i < encodings.size(); ++i) {
    for (size_t j = i + 1; j < encodings.size(); ++j) {
      const double dist = SquaredDistance(encodings[i], encodings[j]);
      if (family[i] == family[j]) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, 0.3 * inter / n_inter);
}

TEST(WorkloadEncoderTest, ReconstructIsInOriginalUnits) {
  Rng rng(4);
  Matrix m = FamilyMetrics(60, &rng);
  auto encoder = WorkloadEncoder::Fit(m, FastEncoder(), &rng);
  ASSERT_TRUE(encoder.ok());
  const Vector row = m.Row(0);
  const Vector rec = (*encoder)->Reconstruct(row);
  ASSERT_EQ(rec.size(), row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    EXPECT_NEAR(rec[c], row[c], 0.35 * std::abs(row[c]) + 2.0);
  }
}

TEST(GlobalPredictorTest, ColdStartBeatsMeanBaseline) {
  Rng rng(5);
  // Two workload families with different latency laws over one knob; a third
  // "new" workload behaves like family 0 and is held out entirely.
  auto latency = [](int family, double knob) {
    return family == 0 ? 20.0 - 10.0 * knob : 100.0 - 60.0 * knob;
  };
  Vector family;
  Matrix metrics = FamilyMetrics(60, &rng, &family);
  auto encoder = WorkloadEncoder::Fit(metrics, FastEncoder(), &rng);
  ASSERT_TRUE(encoder.ok());

  std::vector<GlobalPredictor::Observation> observations;
  for (int i = 0; i < metrics.rows(); ++i) {
    GlobalPredictor::Observation obs;
    obs.metrics = metrics.Row(i);
    const double knob = rng.Uniform();
    obs.conf_encoded = {knob};
    obs.value = latency(static_cast<int>(family[i]), knob) +
                rng.Gaussian(0, 0.5);
    observations.push_back(obs);
  }
  MlpModelConfig cfg;
  cfg.hidden = {24};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 500;
  auto global = GlobalPredictor::Fit(observations, *encoder, cfg, &rng);
  ASSERT_TRUE(global.ok());

  // Cold-start: a brand new family-0 workload's metric vector.
  Rng fresh(99);
  Vector fresh_family;
  Matrix fresh_metrics = FamilyMetrics(2, &fresh, &fresh_family);
  const Vector new_metrics = fresh_metrics.Row(0);  // family 0
  double model_err = 0.0;
  double mean_err = 0.0;
  double mean_latency = 0.0;
  for (const auto& obs : observations) mean_latency += obs.value;
  mean_latency /= observations.size();
  for (double knob : {0.1, 0.5, 0.9}) {
    const double truth = latency(0, knob);
    model_err += std::abs((*global)->Predict(new_metrics, {knob}) - truth);
    mean_err += std::abs(mean_latency - truth);
  }
  EXPECT_LT(model_err, 0.5 * mean_err);
}

TEST(GlobalPredictorTest, RejectsEmptyAndInconsistentInputs) {
  Rng rng(6);
  Matrix m = FamilyMetrics(20, &rng);
  auto encoder = WorkloadEncoder::Fit(m, FastEncoder(), &rng);
  ASSERT_TRUE(encoder.ok());
  MlpModelConfig cfg;
  EXPECT_FALSE(GlobalPredictor::Fit({}, *encoder, cfg, &rng).ok());
  std::vector<GlobalPredictor::Observation> bad = {
      {m.Row(0), {0.5}, 1.0}, {m.Row(1), {0.5, 0.6}, 2.0}};
  EXPECT_FALSE(GlobalPredictor::Fit(bad, *encoder, cfg, &rng).ok());
}

}  // namespace
}  // namespace udao
