// SolveCoalescer: fusing the CO subproblems of concurrent requests into
// shared batched descents must be invisible in the results -- every problem
// solves bitwise-identically to a solo run with the same seed, no matter how
// submissions share windows, fuse groups, or chunks -- and visible only in
// the counters (fused chunks, cross-request problems) and the wall clock.
// Also covers the serving layer's RequestTicket/Submit surface and shard
// routing, which exist to feed the coalescer concurrent traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/random.h"
#include "moo/progressive_frontier.h"
#include "moo/solve_coalescer.h"
#include "serving/udao_service.h"
#include "test_problems.h"

namespace udao {
namespace {

using testing_problems::ConvexProblem;
using testing_problems::UnitSpace2;

MogdConfig FastMogd() {
  MogdConfig cfg;
  cfg.multistart = 4;
  cfg.max_iters = 40;
  return cfg;
}

std::vector<CoProblem> ProbeLadder(int n) {
  std::vector<CoProblem> problems;
  for (int i = 0; i < n; ++i) {
    CoProblem co;
    co.target = i % 2;
    co.lower = {i * 0.1, 0.0};
    co.upper = {i * 0.1 + 0.3, 1.5};
    problems.push_back(co);
  }
  return problems;
}

void ExpectBitwiseEqual(const std::optional<CoResult>& a,
                        const std::optional<CoResult>& b, int i) {
  ASSERT_EQ(a.has_value(), b.has_value()) << "problem " << i;
  if (!a.has_value()) return;
  EXPECT_EQ(a->x, b->x) << "problem " << i;
  EXPECT_EQ(a->raw, b->raw) << "problem " << i;
  EXPECT_EQ(a->objectives, b->objectives) << "problem " << i;
  EXPECT_EQ(a->target_value, b->target_value) << "problem " << i;
}

// The fused kernel itself: one SolveCoFused call over K problems must equal
// K seeded solo solves bit for bit (same seeds, same trajectories).
TEST(SolveCoalescerTest, FusedSolveMatchesSeededSoloSolvesBitwise) {
  const MooProblem problem = ConvexProblem();
  const MogdConfig cfg = FastMogd();
  MogdSolver solver(cfg);
  const std::vector<CoProblem> problems = ProbeLadder(5);

  std::vector<const CoProblem*> cos;
  std::vector<uint64_t> seeds;
  const StopToken none;
  std::vector<const StopToken*> stops;
  for (size_t i = 0; i < problems.size(); ++i) {
    cos.push_back(&problems[i]);
    seeds.push_back(cfg.seed + 17 * i);  // any seeds; solo uses the same
    stops.push_back(&none);
  }
  std::vector<SolvePerf> perfs;
  const auto fused = solver.SolveCoFused(problem, cos, seeds, stops, &perfs);

  ASSERT_EQ(fused.size(), problems.size());
  for (size_t i = 0; i < problems.size(); ++i) {
    const auto solo =
        solver.SolveCoSeeded(problem, problems[i], seeds[i], nullptr, none);
    ExpectBitwiseEqual(fused[i], solo, static_cast<int>(i));
  }
}

// The full coalescer path for one submission must reproduce
// MogdSolver::SolveBatch bitwise: same per-slot seed contract, same results,
// whether or not anyone shared the window.
TEST(SolveCoalescerTest, SingleSubmissionMatchesSolveBatchBitwise) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 64;
  cc.max_wait_us = 0.0;  // flush immediately; no idle latency in tests
  SolveCoalescer coalescer(cc);
  const std::vector<CoProblem> problems = ProbeLadder(6);

  const auto coalesced =
      coalescer.SolveBatch(problem, problems, nullptr, StopToken());
  MogdSolver solo(cc.mogd);
  const auto reference = solo.SolveBatch(problem, problems);

  ASSERT_EQ(coalesced.size(), reference.size());
  for (size_t i = 0; i < problems.size(); ++i) {
    ExpectBitwiseEqual(coalesced[i], reference[i], static_cast<int>(i));
  }
  EXPECT_EQ(coalescer.stats().submissions, 1);
  EXPECT_GE(coalescer.stats().fused_chunks, 1);
}

// Two concurrent submissions against the same problem shapes: the window is
// sized so the flusher only fires once both are pending, which forces them
// into one fuse group and (with no pool, one chunk) one fused descent. Both
// callers must still get exactly their solo-solve results.
TEST(SolveCoalescerTest, ConcurrentSubmissionsFuseAndStayBitwiseIdentical) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 2;          // exactly the two submissions below
  cc.max_wait_us = 2e6;      // far longer than the test: flush on fullness
  SolveCoalescer coalescer(cc);

  const std::vector<CoProblem> pa = {ProbeLadder(3)[0]};
  const std::vector<CoProblem> pb = {ProbeLadder(3)[2]};
  std::vector<std::optional<CoResult>> ra, rb;
  std::thread ta([&] {
    ra = coalescer.SolveBatch(problem, pa, nullptr, StopToken());
  });
  std::thread tb([&] {
    rb = coalescer.SolveBatch(problem, pb, nullptr, StopToken());
  });
  ta.join();
  tb.join();

  MogdSolver solo(cc.mogd);
  ExpectBitwiseEqual(ra[0], solo.SolveBatch(problem, pa)[0], 0);
  ExpectBitwiseEqual(rb[0], solo.SolveBatch(problem, pb)[0], 1);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.submissions, 2);
  EXPECT_EQ(stats.flushes, 1);
  // One fuse group (same problem identity), one chunk, both problems of it
  // from different submissions: certified cross-request fusion.
  EXPECT_EQ(stats.fuse_groups, 1);
  EXPECT_EQ(stats.fused_chunks, 1);
  EXPECT_EQ(stats.fused_problems, 2);
}

// A cancelled batchmate never perturbs (or stalls) its windowmates: the
// surviving submission's result must remain bitwise identical to its solo
// solve, and the doomed one still delivers. (A cancel-only submission is
// dedup-eligible, so its descent runs under the never-stop token -- a twin
// could join it mid-flight -- and cancellation lands between probes at the
// frontier layer instead; deadline-armed submissions keep per-iteration
// freezing, covered by the deadline tests.)
TEST(SolveCoalescerTest, CancelledSubmissionDoesNotPerturbBatchmates) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 2;
  cc.max_wait_us = 2e6;
  SolveCoalescer coalescer(cc);

  CancellationSource source;
  source.Cancel();  // doomed from the start: freezes at the first stop check
  const StopToken doomed(Deadline(), source.token());

  const std::vector<CoProblem> pa = {ProbeLadder(3)[0]};
  const std::vector<CoProblem> pb = {ProbeLadder(3)[2]};
  std::vector<std::optional<CoResult>> ra, rb;
  std::thread ta(
      [&] { ra = coalescer.SolveBatch(problem, pa, nullptr, doomed); });
  std::thread tb([&] {
    rb = coalescer.SolveBatch(problem, pb, nullptr, StopToken());
  });
  ta.join();
  tb.join();

  // The survivor is untouched by its batchmate's cancellation.
  MogdSolver solo(cc.mogd);
  ExpectBitwiseEqual(rb[0], solo.SolveBatch(problem, pb)[0], 1);
  // The doomed submission still delivered instead of hanging its caller or
  // the window.
  ASSERT_EQ(ra.size(), 1u);
  EXPECT_EQ(coalescer.stats().fused_problems, 2);
}

// Identical subproblems submitted concurrently collapse to one descent: the
// second submission joins the first's in-flight slot (singleflight) and
// receives the same bits a solo solve would have produced.
TEST(SolveCoalescerTest, IdenticalConcurrentSubmissionsShareOneDescent) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 2;
  cc.max_wait_us = 2e6;
  SolveCoalescer coalescer(cc);

  const std::vector<CoProblem> shared = {ProbeLadder(3)[0]};
  std::vector<std::optional<CoResult>> ra, rb;
  std::thread ta([&] {
    ra = coalescer.SolveBatch(problem, shared, nullptr, StopToken());
  });
  std::thread tb([&] {
    rb = coalescer.SolveBatch(problem, shared, nullptr, StopToken());
  });
  ta.join();
  tb.join();

  MogdSolver solo(cc.mogd);
  const auto reference = solo.SolveBatch(problem, shared);
  ExpectBitwiseEqual(ra[0], reference[0], 0);
  ExpectBitwiseEqual(rb[0], reference[0], 1);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.dedup_hits, 1);   // one twin joined, one descent ran
  EXPECT_EQ(stats.fused_chunks, 1);
}

// A resubmitted subproblem after its twin completed is served from the memo:
// no new descent, bitwise-identical bits.
TEST(SolveCoalescerTest, RepeatedSubmissionHitsTheMemo) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 64;
  cc.max_wait_us = 0.0;
  SolveCoalescer coalescer(cc);
  const std::vector<CoProblem> problems = ProbeLadder(3);

  const auto first =
      coalescer.SolveBatch(problem, problems, nullptr, StopToken());
  const long long chunks_after_first = coalescer.stats().fused_chunks;
  const auto second =
      coalescer.SolveBatch(problem, problems, nullptr, StopToken());

  for (size_t i = 0; i < problems.size(); ++i) {
    ExpectBitwiseEqual(second[i], first[i], static_cast<int>(i));
  }
  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.memo_hits, static_cast<long long>(problems.size()));
  EXPECT_EQ(stats.fused_chunks, chunks_after_first);  // nothing re-descended
}

// memo_capacity = 0 turns cross-window sharing off: the repeat really
// re-solves (and, being deterministic, still matches bitwise).
TEST(SolveCoalescerTest, MemoCapacityZeroDisablesCrossWindowSharing) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 64;
  cc.max_wait_us = 0.0;
  cc.memo_capacity = 0;
  SolveCoalescer coalescer(cc);
  const std::vector<CoProblem> problems = ProbeLadder(3);

  const auto first =
      coalescer.SolveBatch(problem, problems, nullptr, StopToken());
  const long long chunks_after_first = coalescer.stats().fused_chunks;
  const auto second =
      coalescer.SolveBatch(problem, problems, nullptr, StopToken());

  for (size_t i = 0; i < problems.size(); ++i) {
    ExpectBitwiseEqual(second[i], first[i], static_cast<int>(i));
  }
  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.memo_hits, 0);
  EXPECT_GT(stats.fused_chunks, chunks_after_first);
}

// Deadline-armed submissions bypass dedup and memo entirely: their anytime
// truncation semantics must stay exactly solo, so identical repeats under a
// deadline never share bits with anyone.
TEST(SolveCoalescerTest, DeadlineArmedSubmissionsBypassDedupAndMemo) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  cc.max_batch = 64;
  cc.max_wait_us = 0.0;
  SolveCoalescer coalescer(cc);
  const std::vector<CoProblem> problems = ProbeLadder(2);
  const StopToken armed(Deadline::AfterMs(3600e3));  // far future: never fires

  (void)coalescer.SolveBatch(problem, problems, nullptr, armed);
  (void)coalescer.SolveBatch(problem, problems, nullptr, armed);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.dedup_hits, 0);
  EXPECT_EQ(stats.memo_hits, 0);
}

void ExpectBitwiseEqual(const CoResult& a, const CoResult& b) {
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.raw, b.raw);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.target_value, b.target_value);
}

// Two identical Minimize calls that provably overlap collapse to one
// descent. The gate: each thread bumps `entered` before calling, and the
// target objective's model spins until both have, so the representative
// cannot finish before the second call is issued -- the second is then
// served either by joining the in-flight solve (dedup) or, if it lost the
// race to the representative's completion, by the memo. Never by a second
// descent.
TEST(SolveCoalescerTest, ConcurrentIdenticalMinimizesShareOneDescent) {
  std::atomic<int> entered{0};
  auto f1 = std::make_shared<CallableModel>(
      "g1", 2, [&entered](const Vector& x) {
        while (entered.load() < 2) std::this_thread::yield();
        return x[0] + x[1];
      });
  auto f2 = std::make_shared<CallableModel>("g2", 2, [](const Vector& x) {
    return (1.0 - x[0]) * (1.0 - x[0]) + x[1];
  });
  const MooProblem problem(&testing_problems::UnitSpace2(),
                           {MooObjective{"g1", f1}, MooObjective{"g2", f2}});
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  SolveCoalescer coalescer(cc);

  CoResult ra, rb;
  std::thread ta([&] {
    entered.fetch_add(1);
    ra = coalescer.Minimize(problem, 0, nullptr, StopToken());
  });
  std::thread tb([&] {
    entered.fetch_add(1);
    rb = coalescer.Minimize(problem, 0, nullptr, StopToken());
  });
  ta.join();
  tb.join();

  MogdSolver solo(cc.mogd);
  const CoResult reference = solo.Minimize(problem, 0);
  ExpectBitwiseEqual(ra, reference);
  ExpectBitwiseEqual(rb, reference);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.min_solves, 2);
  EXPECT_EQ(stats.min_dedup_hits + stats.min_memo_hits, 1);
}

// A sequential repeat of the same Minimize is served from the memo:
// no new descent, same bits as a solo MogdSolver::Minimize.
TEST(SolveCoalescerTest, RepeatedMinimizeHitsTheMemo) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  SolveCoalescer coalescer(cc);

  const CoResult first = coalescer.Minimize(problem, 1, nullptr, StopToken());
  const CoResult second = coalescer.Minimize(problem, 1, nullptr, StopToken());
  MogdSolver solo(cc.mogd);
  const CoResult reference = solo.Minimize(problem, 1);
  ExpectBitwiseEqual(first, reference);
  ExpectBitwiseEqual(second, reference);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.min_solves, 2);
  EXPECT_EQ(stats.min_dedup_hits, 0);
  EXPECT_EQ(stats.min_memo_hits, 1);
}

// Deadline-armed Minimize calls stay exactly solo: no registration, no
// memo -- the same anytime opt-out SolveBatch's dedup applies.
TEST(SolveCoalescerTest, DeadlineArmedMinimizeBypassesDedupAndMemo) {
  const MooProblem problem = ConvexProblem();
  SolveCoalescerConfig cc;
  cc.mogd = FastMogd();
  SolveCoalescer coalescer(cc);
  const StopToken armed(Deadline::AfterMs(3600e3));  // far future: never fires

  (void)coalescer.Minimize(problem, 0, nullptr, armed);
  (void)coalescer.Minimize(problem, 0, nullptr, armed);

  const SolveCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.min_solves, 0);
  EXPECT_EQ(stats.min_dedup_hits, 0);
  EXPECT_EQ(stats.min_memo_hits, 0);
}

// PF's Initialize now routes its per-objective reference-point solves
// through the CoBatchSolver: the coalescer sees one Minimize per objective,
// and the frontier stays bitwise-identical to the unrouted run.
TEST(SolveCoalescerTest, PfInitializeRoutesMinimizeThroughCoalescer) {
  const MooProblem problem = ConvexProblem();
  PfConfig base;
  base.mogd = FastMogd();
  ProgressiveFrontier solo_pf(&problem, base);
  const PfResult solo = solo_pf.Run(6);

  SolveCoalescerConfig cc;
  cc.mogd = base.mogd;
  cc.max_batch = 64;
  cc.max_wait_us = 0.0;
  SolveCoalescer coalescer(cc);
  PfConfig routed = base;
  routed.co_solver = &coalescer;
  ProgressiveFrontier routed_pf(&problem, routed);
  const PfResult result = routed_pf.Run(6);

  ASSERT_EQ(result.frontier.size(), solo.frontier.size());
  for (size_t i = 0; i < result.frontier.size(); ++i) {
    EXPECT_EQ(result.frontier[i].objectives, solo.frontier[i].objectives);
    EXPECT_EQ(result.frontier[i].conf_encoded, solo.frontier[i].conf_encoded);
  }
  EXPECT_EQ(result.utopia, solo.utopia);
  EXPECT_EQ(result.nadir, solo.nadir);
  EXPECT_EQ(coalescer.stats().min_solves, 2);  // one per objective
}

// ------------------------------------------------------------ serving layer

UdaoServiceConfig FastServiceConfig() {
  UdaoServiceConfig config;
  config.udao.pf.mogd.multistart = 4;
  config.udao.pf.mogd.max_iters = 40;
  config.udao.solver_threads = 2;
  config.udao.frontier_points = 8;
  config.admission_threads = 2;
  return config;
}

UdaoRequest ConvexRequest() {
  static const MooProblem& problem = *new MooProblem(ConvexProblem());
  UdaoRequest request;
  request.workload_id = "w";
  request.space = &UnitSpace2();
  request.objectives = {problem.objective(0), problem.objective(1)};
  return request;
}

// Submit/Wait is the synchronous path now; the ticket must deliver the same
// result repeatedly (Wait idempotence) and expose it to TryGet once done.
TEST(RequestTicketTest, SubmitWaitAndTryGetDeliverTheResult) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  RequestTicket ticket = service.Submit(ConvexRequest());
  ASSERT_TRUE(ticket.Valid());
  const auto first = ticket.Wait();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->frontier.frontier.empty());

  // Idempotent: a second Wait and a TryGet see the same delivered result.
  const auto again = ticket.Wait();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first->conf_encoded, again->conf_encoded);
  const auto polled = ticket.TryGet();
  ASSERT_TRUE(polled.has_value());
  ASSERT_TRUE(polled->ok());
  EXPECT_EQ(first->conf_encoded, (*polled)->conf_encoded);

  EXPECT_FALSE(RequestTicket().Valid());
}

// Ticket cancellation composes with queue-deadline enforcement: a request
// cancelled while still queued is never solved and resolves to an explicit
// DeadlineExceeded, not a hang and not a silent drop.
TEST(RequestTicketTest, CancelWhileQueuedResolvesExplicitly) {
  ModelServer server;
  UdaoServiceConfig config = FastServiceConfig();
  config.admission_threads = 1;  // one worker, deliberately busy below
  UdaoService service(&server, config);

  FaultInjector::Global().Reset();
  FaultInjector::Global().DelayNext("pf.probe", 60.0, 1);
  RequestTicket blocker = service.Submit(ConvexRequest());

  UdaoRequest queued = ConvexRequest();
  queued.objectives[0].upper = 0.9;  // distinct key: cannot ride the cache
  RequestTicket ticket = service.Submit(queued);
  EXPECT_FALSE(ticket.TryGet().has_value());  // still queued behind blocker
  ticket.Cancel();

  const auto result = ticket.Wait();
  FaultInjector::Global().Reset();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(blocker.Wait().ok());
}

// Shard routing is a pure function of the workload id, and the per-shard
// stats split carries exactly the traffic routed there (aggregate view stays
// schema-compatible with the pre-sharding counters).
TEST(UdaoServiceShardingTest, ShardRoutingIsStableAndStatsSplitPerShard) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  const int shard = service.ShardOf("w");
  for (int i = 0; i < 8; ++i) EXPECT_EQ(service.ShardOf("w"), shard);
  ASSERT_GE(shard, 0);
  ASSERT_LT(shard, service.config().cache_shards);

  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());  // miss
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());  // hit

  const UdaoServiceStats s = service.stats();
  ASSERT_EQ(static_cast<int>(s.shards.size()), service.config().cache_shards);
  EXPECT_EQ(s.shards[shard].cache_misses, 1);
  EXPECT_EQ(s.shards[shard].cache_hits, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 1);
  for (int i = 0; i < static_cast<int>(s.shards.size()); ++i) {
    if (i == shard) continue;
    EXPECT_EQ(s.shards[i].cache_hits + s.shards[i].cache_misses, 0)
        << "traffic leaked into shard " << i;
  }
}

// Coalesced serving must stay bitwise-identical to the coalescing-off
// service AND the plain optimizer -- the tentpole determinism guarantee at
// the API boundary, under genuinely concurrent submissions.
TEST(UdaoServiceCoalescingTest, ConcurrentSubmissionsMatchSoloBitwise) {
  ModelServer server;
  Udao direct(&server, FastServiceConfig().udao);

  UdaoServiceConfig off = FastServiceConfig();
  off.coalesce_solves = false;
  off.frontier_cache_capacity = 0;  // force every request to really solve
  UdaoServiceConfig on = FastServiceConfig();
  on.coalesce_solves = true;
  on.frontier_cache_capacity = 0;
  on.admission_threads = 4;
  on.coalesce_max_wait_us = 2000.0;  // wide window: maximize actual fusion

  constexpr int kVariants = 6;
  auto variant = [](int i) {
    UdaoRequest request = ConvexRequest();
    request.objectives[0].upper = 1.6 - 0.1 * i;  // distinct cache keys
    return request;
  };

  std::vector<StatusOr<UdaoRecommendation>> baseline;
  for (int i = 0; i < kVariants; ++i) {
    baseline.push_back(direct.Optimize(variant(i)));
    ASSERT_TRUE(baseline.back().ok()) << baseline.back().status().ToString();
  }

  for (const UdaoServiceConfig& cfg : {off, on}) {
    UdaoService service(&server, cfg);
    std::vector<RequestTicket> tickets(kVariants);
    for (int i = 0; i < kVariants; ++i) {
      tickets[i] = service.Submit(variant(i));
    }
    for (int i = 0; i < kVariants; ++i) {
      const auto got = tickets[i].Wait();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->conf_encoded, baseline[i]->conf_encoded) << i;
      EXPECT_EQ(got->predicted_objectives, baseline[i]->predicted_objectives)
          << i;
      ASSERT_EQ(got->frontier.frontier.size(),
                baseline[i]->frontier.frontier.size())
          << i;
      for (size_t p = 0; p < got->frontier.frontier.size(); ++p) {
        EXPECT_EQ(got->frontier.frontier[p].conf_encoded,
                  baseline[i]->frontier.frontier[p].conf_encoded)
            << i << "/" << p;
        EXPECT_EQ(got->frontier.frontier[p].objectives,
                  baseline[i]->frontier.frontier[p].objectives)
            << i << "/" << p;
      }
    }
  }
}

// One batched request's model resolution failing must not poison its
// concurrent batchmate: exactly the faulted request errors, the other
// completes with a full frontier.
TEST(UdaoServiceCoalescingTest, ModelFaultHitsOnlyTheFaultedRequest) {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kGp;
  cfg.gp.hyper_opt_steps = 5;
  ModelServer server(cfg);
  Rng rng(5);
  for (int i = 0; i < 24; ++i) {
    const Vector x = {rng.Uniform(), rng.Uniform()};
    server.Ingest("wa", "lat", x, 1.0 + x[0] + x[1]);
    server.Ingest("wb", "lat", x, 2.0 + x[0] - 0.5 * x[1]);
  }

  UdaoServiceConfig config = FastServiceConfig();
  config.frontier_cache_capacity = 0;
  UdaoService service(&server, config);

  auto request_for = [](const std::string& workload) {
    UdaoRequest request = ConvexRequest();
    request.workload_id = workload;
    request.objectives[0] = ObjectiveSpec{.name = "lat"};  // server-resolved
    return request;
  };
  // Warm both models so the faulted run below fails at resolve, not train.
  ASSERT_TRUE(service.Submit(request_for("wa")).Wait().ok());
  ASSERT_TRUE(service.Submit(request_for("wb")).Wait().ok());

  FaultInjector::Global().Reset();
  FaultInjector::Global().FailNext("model_server.get_model",
                                   Status::Unavailable("injected"), 1);
  RequestTicket ta = service.Submit(request_for("wa"));
  RequestTicket tb = service.Submit(request_for("wb"));
  const auto ra = ta.Wait();
  const auto rb = tb.Wait();
  FaultInjector::Global().Reset();

  // Exactly one request absorbed the injected fault (whichever resolved
  // first); its batchmate is untouched.
  const int failures = (ra.ok() ? 0 : 1) + (rb.ok() ? 0 : 1);
  EXPECT_EQ(failures, 1);
  const auto& survivor = ra.ok() ? ra : rb;
  EXPECT_FALSE(survivor->frontier.frontier.empty());
  const auto& victim = ra.ok() ? rb : ra;
  EXPECT_EQ(victim.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace udao
