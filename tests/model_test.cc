#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "model/analytic_models.h"
#include "model/mlp_model.h"
#include "model/model_server.h"
#include "model/objective_model.h"
#include "spark/conf.h"

namespace udao {
namespace {

// ------------------------------------------------------------ CallableModel

TEST(CallableModelTest, FiniteDifferenceFallbackGradient) {
  CallableModel m("quad", 2, [](const Vector& x) {
    return x[0] * x[0] + 3.0 * x[1];
  });
  Vector g = m.InputGradient({0.5, 0.2});
  EXPECT_NEAR(g[0], 1.0, 1e-6);
  EXPECT_NEAR(g[1], 3.0, 1e-6);
}

TEST(CallableModelTest, ExplicitGradientIsUsed) {
  CallableModel m(
      "lin", 1, [](const Vector& x) { return 2.0 * x[0]; },
      [](const Vector& x) { return Vector{42.0}; });
  EXPECT_DOUBLE_EQ(m.InputGradient({0.0})[0], 42.0);
}

// ------------------------------------------- UncertaintyAdjustedModel

class FakeUncertainModel : public ObjectiveModel {
 public:
  double Predict(const Vector& x) const override { return x[0]; }
  void PredictWithUncertainty(const Vector& x, double* mean,
                              double* stddev) const override {
    *mean = x[0];
    *stddev = 2.0 * x[0];  // stddev grows with x
  }
  Vector InputGradient(const Vector& x) const override { return {1.0}; }
  int input_dim() const override { return 1; }
  std::string Name() const override { return "fake"; }
};

TEST(UncertaintyAdjustedModelTest, AddsAlphaTimesStd) {
  auto base = std::make_shared<FakeUncertainModel>();
  UncertaintyAdjustedModel adj(base, 0.5);
  EXPECT_DOUBLE_EQ(adj.Predict({1.0}), 1.0 + 0.5 * 2.0);
  // Gradient: d/dx (x + 0.5*2x) = 2.
  EXPECT_NEAR(adj.InputGradient({1.0})[0], 2.0, 1e-4);
}

TEST(UncertaintyAdjustedModelTest, AlphaZeroIsIdentity) {
  auto base = std::make_shared<FakeUncertainModel>();
  UncertaintyAdjustedModel adj(base, 0.0);
  EXPECT_DOUBLE_EQ(adj.Predict({1.5}), 1.5);
  EXPECT_DOUBLE_EQ(adj.InputGradient({1.5})[0], 1.0);
}

// ------------------------------------------------------------ MlpModel

TEST(MlpModelTest, FitsAndGeneralizes) {
  Rng rng(1);
  const int n = 200;
  Matrix x(n, 2);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = 100.0 + 50.0 * x(i, 0) - 30.0 * x(i, 1);
  }
  MlpModelConfig cfg;
  cfg.hidden = {16, 16};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 300;
  cfg.train.learning_rate = 3e-3;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR((*model)->Predict({0.5, 0.5}), 110.0, 6.0);
}

TEST(MlpModelTest, InputGradientScalesWithTargetStd) {
  Rng rng(2);
  Matrix x(50, 1);
  Vector y(50);
  for (int i = 0; i < 50; ++i) {
    x(i, 0) = i / 50.0;
    y[i] = 1000.0 * x(i, 0);
  }
  MlpModelConfig cfg;
  cfg.hidden = {16};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 400;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  // Around the middle, slope should approximate 1000 in original units.
  Vector g = (*model)->InputGradient({0.5});
  EXPECT_NEAR(g[0], 1000.0, 300.0);
}

TEST(MlpModelTest, UncertaintyIsDeterministicPerPoint) {
  Rng rng(3);
  Matrix x(20, 1);
  Vector y(20);
  for (int i = 0; i < 20; ++i) {
    x(i, 0) = i / 20.0;
    y[i] = x(i, 0);
  }
  MlpModelConfig cfg;
  cfg.hidden = {8};
  cfg.dropout = 0.3;
  cfg.train.epochs = 50;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  double m1 = 0.0;
  double s1 = 0.0;
  double m2 = 0.0;
  double s2 = 0.0;
  (*model)->PredictWithUncertainty({0.4}, &m1, &s1);
  (*model)->PredictWithUncertainty({0.4}, &m2, &s2);
  EXPECT_DOUBLE_EQ(m1, m2);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GE(s1, 0.0);
}

TEST(MlpModelTest, FineTuneTracksShiftedTargets) {
  Rng rng(4);
  Matrix x(60, 1);
  Vector y(60);
  for (int i = 0; i < 60; ++i) {
    x(i, 0) = i / 60.0;
    y[i] = 10.0 * x(i, 0);
  }
  MlpModelConfig cfg;
  cfg.hidden = {16};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 300;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  Vector y2 = y;
  for (double& v : y2) v += 3.0;
  double before = std::abs((*model)->Predict({0.5}) - (10.0 * 0.5 + 3.0));
  (*model)->FineTune(x, y2, 200, &rng);
  double after = std::abs((*model)->Predict({0.5}) - (10.0 * 0.5 + 3.0));
  EXPECT_LT(after, before);
}

TEST(MlpModelTest, LogTransformPredictsPositiveAndAccurate) {
  Rng rng(41);
  const int n = 150;
  Matrix x(n, 1);
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i) / n;
    y[i] = 5.0 * std::exp(-3.0 * x(i, 0));  // spans ~0.25 .. 5
  }
  MlpModelConfig cfg;
  cfg.hidden = {16};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 400;
  cfg.log_transform_targets = true;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  for (double probe : {0.0, 0.3, 0.7, 1.0}) {
    const double pred = (*model)->Predict({probe});
    EXPECT_GT(pred, 0.0);
    EXPECT_NEAR(pred, 5.0 * std::exp(-3.0 * probe),
                0.3 * 5.0 * std::exp(-3.0 * probe) + 0.1);
  }
}

TEST(MlpModelTest, LogTransformGradientMatchesFiniteDifferences) {
  Rng rng(42);
  Matrix x(60, 2);
  Vector y(60);
  for (int i = 0; i < 60; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = std::exp(1.0 + x(i, 0) - 0.5 * x(i, 1));
  }
  MlpModelConfig cfg;
  cfg.hidden = {12};
  cfg.activation = Activation::kTanh;
  cfg.train.epochs = 150;
  cfg.log_transform_targets = true;
  auto model = MlpModel::Fit(x, y, cfg, &rng);
  ASSERT_TRUE(model.ok());
  const double h = 1e-6;
  Vector p = {0.4, 0.6};
  Vector grad = (*model)->InputGradient(p);
  for (int d = 0; d < 2; ++d) {
    Vector pp = p;
    Vector pm = p;
    pp[d] += h;
    pm[d] -= h;
    const double fd = ((*model)->Predict(pp) - (*model)->Predict(pm)) / (2 * h);
    EXPECT_NEAR(grad[d], fd, 1e-3 * std::max(1.0, std::abs(fd)));
  }
}

// ----------------------------------------------------- NonNegativeModel

TEST(NonNegativeModelTest, FloorsNegativePredictions) {
  auto base = std::make_shared<CallableModel>(
      "lin", 1, [](const Vector& x) { return x[0] - 0.5; });
  NonNegativeModel floored(base);
  EXPECT_DOUBLE_EQ(floored.Predict({0.8}), 0.3);
  EXPECT_DOUBLE_EQ(floored.Predict({0.2}), 0.0);
  // Pseudo-gradient passes through so constraints can push back.
  EXPECT_NEAR(floored.InputGradient({0.2})[0], 1.0, 1e-6);
}

TEST(NonNegativeModelTest, UncertaintyMeanIsFloored) {
  auto base = std::make_shared<FakeUncertainModel>();
  NonNegativeModel floored(base);
  double mean = 0.0;
  double stddev = 0.0;
  floored.PredictWithUncertainty({-2.0}, &mean, &stddev);
  EXPECT_DOUBLE_EQ(mean, 0.0);
}

// ------------------------------------------------------------ Analytic

TEST(AnalyticModelsTest, LatencyDecreasesWithMoreCores) {
  auto model = MakeAnalyticBatchLatencyModel(AnalyticWorkload{});
  const ParamSpace& space = BatchParamSpace();
  Vector small = space.Encode(space.Defaults());
  Vector big = small;
  small[1] = 0.0;  // min executors
  small[2] = 0.2;
  big[1] = 1.0;    // max executors
  big[2] = 0.8;
  EXPECT_GT(model->Predict(small), model->Predict(big));
}

TEST(AnalyticModelsTest, CostCoresGradientIsExact) {
  auto model = MakeCostCoresModel();
  const ParamSpace& space = BatchParamSpace();
  Vector x = space.Encode(space.Defaults());
  Vector analytic = model->InputGradient(x);
  Vector fd = FiniteDifferenceGradient(*model, x);
  for (size_t d = 0; d < fd.size(); ++d) {
    EXPECT_NEAR(analytic[d], fd[d], 1e-5) << "dim " << d;
  }
}

TEST(AnalyticModelsTest, CpuHourIsLatencyTimesCores) {
  auto latency = MakeAnalyticBatchLatencyModel(AnalyticWorkload{});
  auto cores = MakeCostCoresModel();
  auto cpu_hour = MakeCpuHourModel(latency);
  const ParamSpace& space = BatchParamSpace();
  Vector x = space.Encode(space.Defaults());
  EXPECT_NEAR(cpu_hour->Predict(x),
              latency->Predict(x) * cores->Predict(x) / 3600.0, 1e-9);
}

TEST(AnalyticModelsTest, Fig3ModelsMatchPaperShape) {
  auto lat = MakeFig3LatencyModel();
  auto cost = MakeFig3CostModel();
  // Max resources: 12 execs x 2 cores = 24 cores -> latency ~ 100, cost ~ 24.
  EXPECT_NEAR(lat->Predict({1.0, 1.0}), 100.0, 5.0);
  EXPECT_NEAR(cost->Predict({1.0, 1.0}), 24.0, 1.0);
  // Min resources: 1 core -> latency ~ 2400.
  EXPECT_NEAR(lat->Predict({0.0, 0.0}), 2400.0, 120.0);
  EXPECT_NEAR(cost->Predict({0.0, 0.0}), 1.0, 0.7);
}

// ------------------------------------------------------------ ModelServer

TEST(ModelServerTest, NotFoundBeforeIngestion) {
  ModelServer server;
  EXPECT_FALSE(server.GetModel("w1", "latency").ok());
  EXPECT_FALSE(server.HasTraces("w1", "latency"));
  EXPECT_EQ(server.NumTraces("w1", "latency"), 0);
}

ModelServerConfig TinyDnnConfig() {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kDnn;
  cfg.dnn.hidden = {8};
  cfg.dnn.train.epochs = 30;
  return cfg;
}

TEST(ModelServerTest, TrainsOnFirstGet) {
  ModelServer server(TinyDnnConfig());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Vector conf = {rng.Uniform(), rng.Uniform()};
    server.Ingest("w1", "latency", conf, 10.0 + conf[0]);
  }
  auto model = server.GetModel("w1", "latency");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->input_dim(), 2);
  EXPECT_EQ(server.NumTraces("w1", "latency"), 20);
}

TEST(ModelServerTest, SmallUpdateKeepsModelIdentity) {
  ModelServer server(TinyDnnConfig());
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Vector conf = {rng.Uniform(), rng.Uniform()};
    server.Ingest("w1", "latency", conf, conf[0]);
  }
  auto m1 = server.GetModel("w1", "latency");
  ASSERT_TRUE(m1.ok());
  // Fewer new traces than finetune_threshold: same object, untouched.
  for (int i = 0; i < 3; ++i) {
    server.Ingest("w1", "latency", {0.5, 0.5}, 0.5);
  }
  auto m2 = server.GetModel("w1", "latency");
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1->get(), m2->get());
}

TEST(ModelServerTest, LargeUpdateRetrains) {
  ModelServerConfig cfg = TinyDnnConfig();
  cfg.retrain_threshold = 10;
  ModelServer server(cfg);
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    server.Ingest("w1", "latency", {rng.Uniform(), rng.Uniform()}, 1.0);
  }
  auto m1 = server.GetModel("w1", "latency");
  ASSERT_TRUE(m1.ok());
  for (int i = 0; i < 12; ++i) {
    server.Ingest("w1", "latency", {rng.Uniform(), rng.Uniform()}, 2.0);
  }
  auto m2 = server.GetModel("w1", "latency");
  ASSERT_TRUE(m2.ok());
  EXPECT_NE(m1->get(), m2->get());
}

TEST(ModelServerTest, GpKindTrainsGp) {
  ModelServerConfig cfg;
  cfg.kind = ModelKind::kGp;
  cfg.gp.hyper_opt_steps = 10;
  ModelServer server(cfg);
  Rng rng(8);
  for (int i = 0; i < 15; ++i) {
    Vector conf = {rng.Uniform()};
    server.Ingest("w", "latency", conf, std::sin(conf[0]));
  }
  auto model = server.GetModel("w", "latency");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->Name(), "gp");
}

TEST(ModelServerTest, MetricsAggregation) {
  ModelServer server;
  RuntimeMetrics m1;
  m1.latency_s = 10;
  RuntimeMetrics m2;
  m2.latency_s = 20;
  server.IngestMetrics("w1", m1);
  server.IngestMetrics("w1", m2);
  auto mean = server.MeanMetrics("w1");
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ((*mean)[0], 15.0);
  EXPECT_FALSE(server.MeanMetrics("nope").ok());
  EXPECT_EQ(server.WorkloadsWithMetrics(),
            std::vector<std::string>{"w1"});
}

}  // namespace
}  // namespace udao
