// Pins the udao_lint rule set against known-good and known-bad fixtures
// (tests/lint_fixtures/): the good tree must come back clean, and each bad
// file -- one per rule -- must be reported at its exact file:line with its
// exact rule tag, nothing more. This is what keeps a regex tweak from
// silently widening (false findings on clean code) or narrowing (seeded
// violations slipping through) a rule.
//
// UDAO_LINT_BIN / UDAO_LINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <cstdio>
#include <regex>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved.
};

LintRun RunLint(const std::string& dir) {
  LintRun run;
  const std::string cmd = std::string(UDAO_LINT_BIN) + " " + dir + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

// Reduces each reported finding line ("file:line: [rule] detail") to the
// comparable "file:line:rule" triple; summary/clean lines do not match.
std::multiset<std::string> Findings(const std::string& output) {
  std::multiset<std::string> found;
  const std::regex finding_re(R"(([^\s:]+):(\d+): \[([\w-]+)\])");
  for (std::sregex_iterator it(output.begin(), output.end(), finding_re), end;
       it != end; ++it) {
    found.insert((*it)[1].str() + ":" + (*it)[2].str() + ":" + (*it)[3].str());
  }
  return found;
}

TEST(UdaoLintTest, GoodFixturesAreClean) {
  const LintRun run = RunLint(std::string(UDAO_LINT_FIXTURES) + "/good");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(Findings(run.output).empty()) << run.output;
}

TEST(UdaoLintTest, BadFixturesReportExactFindings) {
  const LintRun run = RunLint(std::string(UDAO_LINT_FIXTURES) + "/bad");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::multiset<std::string> want = {
      "assert_use.cc:6:assert",
      "direct_print.cc:6:direct-print",
      "include_guard.h:3:include-guard",
      "raw_intrinsic.cc:6:raw-intrinsic",
      "raw_random.cc:6:raw-random",
      "raw_sync.cc:6:raw-sync",
      "raw_thread.cc:6:raw-thread",
      "serving/deprecated_optimize.cc:9:deprecated-optimize",
      "serving/deprecated_optimize.cc:10:deprecated-optimize",
      "serving/unbounded_wait.cc:8:unbounded-wait",
      "standalone_mutex.h:12:standalone-mutex",
  };
  EXPECT_EQ(Findings(run.output), want) << run.output;
}

}  // namespace
