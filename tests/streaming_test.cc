#include <gtest/gtest.h>

#include "spark/conf.h"
#include "spark/streaming.h"

namespace udao {
namespace {

StreamWorkloadProfile Profile() {
  StreamWorkloadProfile p;
  p.name = "click_agg";
  p.map_ops_per_record = 4.0;
  p.reduce_ops_per_record = 3.0;
  p.bytes_per_record = 250;
  p.shuffle_fraction = 0.4;
  return p;
}

StreamEngineOptions NoNoise() {
  StreamEngineOptions opt;
  opt.noise_stddev = 0.0;
  return opt;
}

TEST(StreamEngineTest, StableUnderLightLoad) {
  StreamEngine engine(NoNoise());
  Vector conf = StreamParamSpace().Defaults();
  conf[2] = 100;  // 100k records/s
  conf[4] = 16;   // plenty of executors
  conf[5] = 4;
  StreamResult r = engine.Run(Profile(), conf);
  EXPECT_TRUE(r.stable);
  EXPECT_DOUBLE_EQ(r.throughput_krps, 100);
  // Stable latency >= half the batch interval.
  EXPECT_GE(r.record_latency_s, conf[0] / 1000.0 / 2.0);
}

TEST(StreamEngineTest, OverloadSaturatesThroughputAndInflatesLatency) {
  StreamEngine engine(NoNoise());
  Vector conf = StreamParamSpace().Defaults();
  conf[2] = 1200;  // max input rate
  conf[4] = 2;     // starved: 2 executors x 1 core
  conf[5] = 1;
  StreamResult r = engine.Run(Profile(), conf);
  EXPECT_FALSE(r.stable);
  EXPECT_LT(r.throughput_krps, 1200);
  EXPECT_GT(r.record_latency_s, r.batch_processing_s);
}

TEST(StreamEngineTest, MoreCoresReduceProcessingTime) {
  StreamEngine engine(NoNoise());
  Vector small = StreamParamSpace().Defaults();
  small[2] = 800;
  small[4] = 2;
  small[5] = 1;
  Vector big = small;
  big[4] = 24;
  big[5] = 6;
  StreamResult rs = engine.Run(Profile(), small);
  StreamResult rb = engine.Run(Profile(), big);
  EXPECT_GT(rs.batch_processing_s, rb.batch_processing_s);
}

TEST(StreamEngineTest, LatencyThroughputTradeoffExists) {
  // With fixed resources, pushing the input rate up raises throughput until
  // saturation while raising latency -- the Fig. 5 tension.
  StreamEngine engine(NoNoise());
  Vector conf = StreamParamSpace().Defaults();
  conf[4] = 6;
  conf[5] = 2;
  conf[2] = 100;
  StreamResult low = engine.Run(Profile(), conf);
  conf[2] = 1200;
  StreamResult high = engine.Run(Profile(), conf);
  EXPECT_GT(high.throughput_krps, low.throughput_krps);
  EXPECT_GT(high.record_latency_s, low.record_latency_s);
}

TEST(StreamEngineTest, ShorterBatchIntervalLowersStableLatency) {
  StreamEngine engine(NoNoise());
  Vector conf = StreamParamSpace().Defaults();
  conf[2] = 100;
  conf[4] = 16;
  conf[5] = 4;
  conf[0] = 8000;
  StreamResult slow = engine.Run(Profile(), conf);
  conf[0] = 2000;
  StreamResult fast = engine.Run(Profile(), conf);
  ASSERT_TRUE(slow.stable);
  ASSERT_TRUE(fast.stable);
  EXPECT_LT(fast.record_latency_s, slow.record_latency_s);
}

TEST(StreamEngineTest, DeterministicWithNoise) {
  StreamEngine engine;  // noise on
  Vector conf = StreamParamSpace().Defaults();
  StreamResult a = engine.Run(Profile(), conf);
  StreamResult b = engine.Run(Profile(), conf);
  EXPECT_DOUBLE_EQ(a.record_latency_s, b.record_latency_s);
  EXPECT_DOUBLE_EQ(a.throughput_krps, b.throughput_krps);
}

TEST(StreamEngineTest, MetricsArePopulated) {
  StreamEngine engine(NoNoise());
  StreamResult r = engine.Run(Profile(), StreamParamSpace().Defaults());
  EXPECT_GT(r.metrics.cpu_time_s, 0);
  EXPECT_GT(r.metrics.shuffle_read_mb, 0);
  EXPECT_EQ(r.metrics.num_stages, 2);
  EXPECT_GT(r.metrics.num_tasks, 0);
}

}  // namespace
}  // namespace udao
