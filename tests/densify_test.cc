// Frontier densification (src/moo/densify.h): sampling around incumbents
// must only ever improve the frontier -- the merged set weakly dominates the
// input point-for-point and stays mutually non-dominated, every added point
// respects the user value constraints, the whole operation is a pure
// function of (problem, frontier, config) per kernel backend (1e-12 across
// backends), and a fired StopToken makes it a transactional no-op. The
// serving-layer tests pin the cache interaction: hits densify a private
// copy, the cached entry never mutates, densified results are never cached.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "model/mlp_model.h"
#include "moo/densify.h"
#include "moo/pareto.h"
#include "nn/kernels.h"
#include "serving/udao_service.h"
#include "test_problems.h"

namespace udao {
namespace {

using kernels::Backend;
using kernels::ScopedBackendForTesting;
using testing_problems::ConvexProblem;
using testing_problems::UnitSpace2;

// A deliberately sparse slice of ConvexProblem's true frontier (x1 = 0, so
// F2 = (1 - F1)^2 exactly).
std::vector<MooPoint> SparseConvexFrontier(const MooProblem& problem) {
  std::vector<MooPoint> frontier;
  for (const double x0 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Vector x = {x0, 0.0};
    frontier.push_back(MooPoint{problem.Evaluate(x), x});
  }
  return frontier;
}

// True when some merged point weakly dominates `p` (equal or dominating):
// the guarantee that merging never loses ground anywhere on the frontier.
bool WeaklyCovered(const std::vector<MooPoint>& merged, const MooPoint& p) {
  for (const MooPoint& m : merged) {
    if (m.objectives == p.objectives || Dominates(m.objectives, p.objectives)) {
      return true;
    }
  }
  return false;
}

void ExpectBitwiseEqual(const std::vector<MooPoint>& a,
                        const std::vector<MooPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "point " << i;
    EXPECT_EQ(a[i].conf_encoded, b[i].conf_encoded) << "point " << i;
  }
}

TEST(DensifyTest, MergedFrontierWeaklyDominatesInputAndStaysValid) {
  const MooProblem problem = ConvexProblem();
  const std::vector<MooPoint> input = SparseConvexFrontier(problem);
  DensifyConfig config;
  config.samples_per_point = 32;
  config.radius = 0.1;
  DensifyStats stats;
  const std::vector<MooPoint> merged =
      DensifyFrontier(problem, input, config, StopToken(), &stats);

  EXPECT_TRUE(MutuallyNonDominated(merged));
  for (const MooPoint& p : input) {
    EXPECT_TRUE(WeaklyCovered(merged, p));
  }
  // Clamped-to-zero x1 jitter lands exact Pareto points between the sparse
  // incumbents, so this configuration genuinely thickens the frontier.
  EXPECT_GT(stats.added, 0);
  EXPECT_EQ(static_cast<int>(merged.size()),
            static_cast<int>(input.size()) + stats.added - stats.evicted);
  EXPECT_EQ(stats.candidates, 32 * static_cast<int>(input.size()));
  EXPECT_FALSE(stats.stopped);
  // Every merged point's objectives are real evaluations of its encoded
  // configuration, not sampling artifacts.
  for (const MooPoint& m : merged) {
    EXPECT_EQ(m.objectives, problem.Evaluate(m.conf_encoded));
  }
}

TEST(DensifyTest, AddedPointsSatisfyUserConstraints) {
  MooProblem base = ConvexProblem();
  std::vector<ObjectiveSpec> objectives = {base.objective(0),
                                           base.objective(1)};
  objectives[0].lower = 0.3;
  objectives[0].upper = 1.2;
  objectives[1].upper = 0.5;
  const MooProblem problem(&UnitSpace2(), std::move(objectives));

  const std::vector<MooPoint> input = SparseConvexFrontier(problem);
  DensifyConfig config;
  config.samples_per_point = 64;
  config.radius = 0.15;
  DensifyStats stats;
  const std::vector<MooPoint> merged =
      DensifyFrontier(problem, input, config, StopToken(), &stats);

  // Input points survive unconditionally (they may predate the bounds); only
  // *added* points owe feasibility.
  int added_seen = 0;
  for (const MooPoint& m : merged) {
    bool from_input = false;
    for (const MooPoint& p : input) {
      if (m.objectives == p.objectives) {
        from_input = true;
        break;
      }
    }
    if (from_input) continue;
    ++added_seen;
    for (int j = 0; j < problem.NumObjectives(); ++j) {
      EXPECT_GE(m.objectives[j], problem.UserLower(j) - 1e-9);
      EXPECT_LE(m.objectives[j], problem.UserUpper(j) + 1e-9);
    }
  }
  EXPECT_EQ(added_seen, stats.added);
}

TEST(DensifyTest, BitwiseDeterministicPerBackendAndParityAcrossBackends) {
  // An MLP-backed problem exercises the real kernel path (GEMM + activation
  // arena) rather than the closed-form test models.
  Rng rng(11);
  Matrix x(48, 2);
  for (double& v : x.data()) v = rng.Uniform();
  Vector y1(x.rows()), y2(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    y1[i] = 1.5 + 2.0 * x(i, 0) + x(i, 1) * x(i, 1);
    y2[i] = 2.0 - x(i, 0) + 0.5 * x(i, 1);
  }
  MlpModelConfig cfg;
  cfg.hidden = {16, 16};
  cfg.train.epochs = 60;
  Rng fit1(11), fit2(12);
  auto m1 = MlpModel::Fit(x, y1, cfg, &fit1);
  auto m2 = MlpModel::Fit(x, y2, cfg, &fit2);
  ASSERT_TRUE(m1.ok() && m2.ok());
  const MooProblem problem(&UnitSpace2(),
                           {MooObjective{"m1", *m1}, MooObjective{"m2", *m2}});

  std::vector<MooPoint> input;
  for (const double x0 : {0.1, 0.5, 0.9}) {
    const Vector point = {x0, 1.0 - x0};
    input.push_back(MooPoint{problem.Evaluate(point), point});
  }
  input = ParetoFilter(std::move(input));
  ASSERT_FALSE(input.empty());

  DensifyConfig config;
  config.samples_per_point = 16;
  config.radius = 0.1;

  const std::vector<MooPoint> scalar_run = [&] {
    ScopedBackendForTesting scoped(Backend::kScalar);
    return DensifyFrontier(problem, input, config);
  }();
  const std::vector<MooPoint> scalar_again = [&] {
    ScopedBackendForTesting scoped(Backend::kScalar);
    return DensifyFrontier(problem, input, config);
  }();
  ExpectBitwiseEqual(scalar_run, scalar_again);

  if (!kernels::CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this host";
  const std::vector<MooPoint> avx2_run = [&] {
    ScopedBackendForTesting scoped(Backend::kAvx2);
    return DensifyFrontier(problem, input, config);
  }();
  // Candidate *selection* may not flip across backends (the sampling is
  // backend-independent and the dedup/dominance margins are far above a few
  // ulps here), so the sets align 1:1 within the kernel parity envelope.
  ASSERT_EQ(avx2_run.size(), scalar_run.size());
  for (size_t i = 0; i < avx2_run.size(); ++i) {
    EXPECT_EQ(avx2_run[i].conf_encoded, scalar_run[i].conf_encoded);
    for (size_t j = 0; j < avx2_run[i].objectives.size(); ++j) {
      const double a = avx2_run[i].objectives[j];
      const double s = scalar_run[i].objectives[j];
      const double scale = std::max({1.0, std::abs(a), std::abs(s)});
      EXPECT_LE(std::abs(a - s), 1e-12 * scale) << "point " << i;
    }
  }
}

TEST(DensifyTest, FiredStopTokenIsATransactionalNoOp) {
  const MooProblem problem = ConvexProblem();
  const std::vector<MooPoint> input = SparseConvexFrontier(problem);
  CancellationSource source;
  source.Cancel();
  const StopToken fired(Deadline(), source.token());

  DensifyConfig config;
  config.samples_per_point = 32;
  DensifyStats stats;
  const std::vector<MooPoint> out =
      DensifyFrontier(problem, input, config, fired, &stats);

  ExpectBitwiseEqual(out, input);
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.added, 0);
}

TEST(DensifyTest, DisabledOrEmptyInputsPassThrough) {
  const MooProblem problem = ConvexProblem();
  const std::vector<MooPoint> input = SparseConvexFrontier(problem);
  DensifyConfig off;
  off.samples_per_point = 0;
  ExpectBitwiseEqual(DensifyFrontier(problem, input, off), input);
  EXPECT_TRUE(DensifyFrontier(problem, {}, DensifyConfig()).empty());
}

TEST(DensifyTest, CandidateCapSharesBudgetDeterministically) {
  const MooProblem problem = ConvexProblem();
  const std::vector<MooPoint> input = SparseConvexFrontier(problem);
  DensifyConfig config;
  config.samples_per_point = 64;
  config.max_candidates = 10;  // 5 incumbents -> 2 candidates each
  DensifyStats stats;
  (void)DensifyFrontier(problem, input, config, StopToken(), &stats);
  EXPECT_EQ(stats.candidates, 10);
}

// ------------------------------------------------------------ serving layer

UdaoServiceConfig FastServiceConfig() {
  UdaoServiceConfig config;
  config.udao.pf.mogd.multistart = 4;
  config.udao.pf.mogd.max_iters = 40;
  config.udao.solver_threads = 2;
  config.udao.frontier_points = 8;
  config.admission_threads = 2;
  return config;
}

UdaoRequest ConvexRequest() {
  static const MooProblem& problem = *new MooProblem(ConvexProblem());
  UdaoRequest request;
  request.workload_id = "w";
  request.space = &UnitSpace2();
  request.objectives = {problem.objective(0), problem.objective(1)};
  return request;
}

// A warm repeat that opts into densification gets a strictly thicker
// frontier (higher box hypervolume) than the cold solve, while the cached
// entry itself stays exactly what PF produced -- a later plain repeat sees
// the undensified frontier bitwise.
TEST(DensifyServiceTest, CacheHitDensifiesACopyAndNeverMutatesTheCache) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());

  const UdaoRequest plain = ConvexRequest();
  const auto cold = service.Submit(plain).Wait();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  UdaoRequest warm = ConvexRequest();
  warm.options.densify_samples = 32;
  warm.options.densify_radius = 0.1;
  const auto densified = service.Submit(warm).Wait();
  ASSERT_TRUE(densified.ok()) << densified.status().ToString();

  const auto replay = service.Submit(plain).Wait();
  ASSERT_TRUE(replay.ok());

  const UdaoServiceStats s = service.stats();
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 2);

  // The densified response is a strict quality improvement...
  const std::vector<MooPoint>& base = cold->frontier.frontier;
  const std::vector<MooPoint>& thick = densified->frontier.frontier;
  EXPECT_GT(thick.size(), base.size());
  EXPECT_TRUE(MutuallyNonDominated(thick));
  EXPECT_GT(BoxHypervolume(thick, densified->frontier.utopia,
                           densified->frontier.nadir),
            BoxHypervolume(base, cold->frontier.utopia, cold->frontier.nadir));
  for (const MooPoint& p : base) {
    EXPECT_TRUE(WeaklyCovered(thick, p));
  }
  // ... and it never leaked into the cache: the plain replay is served the
  // undensified frontier bitwise.
  ExpectBitwiseEqual(replay->frontier.frontier, base);
}

// Densification is deterministic end-to-end at the service boundary: two
// identical warm densified repeats return bitwise-identical frontiers.
TEST(DensifyServiceTest, WarmDensifiedRepeatsAreBitwiseIdentical) {
  ModelServer server;
  UdaoService service(&server, FastServiceConfig());
  ASSERT_TRUE(service.Submit(ConvexRequest()).Wait().ok());

  UdaoRequest warm = ConvexRequest();
  warm.options.densify_samples = 16;
  const auto first = service.Submit(warm).Wait();
  const auto second = service.Submit(warm).Wait();
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectBitwiseEqual(first->frontier.frontier, second->frontier.frontier);
  EXPECT_EQ(first->conf_encoded, second->conf_encoded);
}

}  // namespace
}  // namespace udao
