#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "moo/recommend.h"

namespace udao {
namespace {

MooPoint P(Vector objectives) { return MooPoint{std::move(objectives), {}}; }

// A convex frontier in (latency, cost) space.
std::vector<MooPoint> Frontier() {
  return {P({100, 24}), P({120, 20}), P({150, 16}), P({200, 12}),
          P({300, 8})};
}

TEST(UtopiaNearestTest, PicksBalancedPoint) {
  auto best = UtopiaNearest(Frontier(), {100, 8}, {300, 24});
  ASSERT_TRUE(best.has_value());
  // The middle point (150,16) has normalized coords (.25,.5); (200,12) has
  // (.5,.25); (120,20) has (.1,.75). Distances: (150,16) is the minimum.
  EXPECT_EQ(best->objectives, (Vector{150, 16}));
}

TEST(UtopiaNearestTest, EmptyFrontierIsNullopt) {
  EXPECT_FALSE(UtopiaNearest({}, {0, 0}, {1, 1}).has_value());
}

TEST(WeightedUtopiaNearestTest, LatencyWeightPullsTowardFastConfigs) {
  Vector utopia = {100, 8};
  Vector nadir = {300, 24};
  auto balanced = WeightedUtopiaNearest(Frontier(), utopia, nadir, {0.5, 0.5});
  auto latency_heavy =
      WeightedUtopiaNearest(Frontier(), utopia, nadir, {0.9, 0.1});
  auto cost_heavy =
      WeightedUtopiaNearest(Frontier(), utopia, nadir, {0.1, 0.9});
  ASSERT_TRUE(balanced.has_value());
  ASSERT_TRUE(latency_heavy.has_value());
  ASSERT_TRUE(cost_heavy.has_value());
  EXPECT_LE(latency_heavy->objectives[0], balanced->objectives[0]);
  EXPECT_GE(cost_heavy->objectives[0], balanced->objectives[0]);
  EXPECT_LE(cost_heavy->objectives[1], balanced->objectives[1]);
}

TEST(CombineWeightsTest, ProductRenormalized) {
  Vector w = CombineWeights({0.7, 0.3}, {0.5, 0.5});
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_NEAR(w[0] / w[1], 0.7 / 0.3, 1e-9);
}

TEST(CombineWeightsTest, DegenerateFallsBackToUniform) {
  Vector w = CombineWeights({1.0, 0.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(WorkloadAwareWeightsTest, LongJobsFavorLatency) {
  Vector short_job = WorkloadAwareInternalWeights(5.0);
  Vector medium_job = WorkloadAwareInternalWeights(30.0);
  Vector long_job = WorkloadAwareInternalWeights(200.0);
  EXPECT_LT(short_job[0], medium_job[0]);
  EXPECT_LT(medium_job[0], long_job[0]);
  EXPECT_GT(short_job[1], long_job[1]);
}

TEST(SlopeMaximizationTest, PicksSteepestFromLeftAnchor) {
  // Left anchor is (100,24). Slopes to others: (120,20): 4/20=0.2;
  // (150,16): 8/50=0.16; (200,12): 12/100=0.12; (300,8): 16/200=0.08.
  auto best = SlopeMaximization(Frontier(), SlopeSide::kLeft);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->objectives, (Vector{120, 20}));
}

TEST(SlopeMaximizationTest, SingletonFrontierReturnsIt) {
  auto best = SlopeMaximization({P({10, 10})}, SlopeSide::kRight);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->objectives, (Vector{10, 10}));
}

TEST(KneePointTest, PrefersInteriorTradeoffPoint) {
  auto knee = KneePoint(Frontier(), SlopeSide::kLeft);
  ASSERT_TRUE(knee.has_value());
  // Knee must be an interior point, not an anchor.
  EXPECT_NE(knee->objectives, (Vector{100, 24}));
  EXPECT_NE(knee->objectives, (Vector{300, 8}));
}

TEST(KneePointTest, TwoPointFrontierReturnsAnAnchor) {
  std::vector<MooPoint> two = {P({1, 10}), P({10, 1})};
  auto left = KneePoint(two, SlopeSide::kLeft);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->objectives, (Vector{1, 10}));
  auto right = KneePoint(two, SlopeSide::kRight);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->objectives, (Vector{10, 1}));
}

TEST(RecommendTest, EmptyFrontiersAreSafeEverywhere) {
  EXPECT_FALSE(WeightedUtopiaNearest({}, {0, 0}, {1, 1}, {0.5, 0.5}));
  EXPECT_FALSE(SlopeMaximization({}, SlopeSide::kLeft));
  EXPECT_FALSE(KneePoint({}, SlopeSide::kRight));
}

// Regression: a vertical segment off the anchor (dx below SlopeBetween's
// 1e-12 threshold, as densification can produce) has infinite slope -- the
// steepest possible -- and must be selected, not skipped as non-finite.
TEST(SlopeMaximizationTest, VerticalSegmentIsSteepestAndSelected) {
  const std::vector<MooPoint> frontier = {
      P({100, 24}), P({100 + 5e-13, 20}), P({150, 16})};
  auto best = SlopeMaximization(frontier, SlopeSide::kLeft);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->objectives, (Vector{100 + 5e-13, 20}));
}

// Equal slopes resolve by lexicographic objectives, independent of frontier
// order: anchor (0,10); both (1,8) and (2,6) have |slope| = 2.
TEST(SlopeMaximizationTest, SlopeTiesBreakLexicographically) {
  std::vector<MooPoint> frontier = {P({0, 10}), P({1, 8}), P({2, 6})};
  auto best = SlopeMaximization(frontier, SlopeSide::kLeft);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->objectives, (Vector{1, 8}));
  std::swap(frontier[1], frontier[2]);
  best = SlopeMaximization(frontier, SlopeSide::kLeft);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->objectives, (Vector{1, 8}));
}

// Regression: an interior point forming an axis-aligned segment with an
// anchor used to be silently excluded (non-finite / zero slope skip). From
// the right anchor it is maximally knee-like and must win; from the left it
// still competes instead of forfeiting to the anchor fallback.
TEST(KneePointTest, AxisAlignedSegmentsCompete) {
  const std::vector<MooPoint> frontier = {
      P({0, 10}), P({10, 5}), P({10 + 5e-13, 1})};
  auto right = KneePoint(frontier, SlopeSide::kRight);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->objectives, (Vector{10, 5}));
  auto left = KneePoint(frontier, SlopeSide::kLeft);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->objectives, (Vector{10, 5}));
}

// Regression: equal-distance WUN candidates used to be resolved by frontier
// iteration order, so densification (or a cache merge) reordering the
// frontier could flip the recommendation. The tie-break is now total --
// distance, then lexicographic objectives -- hence permutation-invariant.
TEST(WeightedUtopiaNearestTest, DistanceTiesArePermutationInvariant) {
  // (0.2,0.8) and (0.8,0.2) normalize to mirrored coordinates: identical
  // distance under equal weights. The lexicographically smaller one wins.
  const std::vector<MooPoint> base = {P({0.8, 0.2}), P({0.2, 0.8}),
                                      P({0.05, 0.95}), P({0.95, 0.05})};
  std::vector<size_t> idx(base.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end());
  do {
    std::vector<MooPoint> frontier;
    for (const size_t i : idx) frontier.push_back(base[i]);
    auto best =
        WeightedUtopiaNearest(frontier, {0, 0}, {1, 1}, {0.5, 0.5});
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->objectives, (Vector{0.2, 0.8}));
  } while (std::next_permutation(idx.begin(), idx.end()));
}

}  // namespace
}  // namespace udao
