#include <gtest/gtest.h>

#include "common/random.h"
#include "spark/engine.h"
#include "tuning/expert.h"
#include "tuning/ottertune.h"
#include "workload/tpcxbb.h"
#include "workload/trace_gen.h"

namespace udao {
namespace {

// ------------------------------------------------------------ Expert

TEST(ExpertTest, BatchConfigIsValidAndScalesWithData) {
  BatchWorkload small = MakeTpcxbbWorkload(7);   // small scan template
  BatchWorkload large = MakeTpcxbbWorkload(2);   // heavy UDF template
  Vector cs = ExpertBatchConfig(small.flow);
  Vector cl = ExpertBatchConfig(large.flow);
  EXPECT_TRUE(BatchParamSpace().Validate(cs).ok());
  EXPECT_TRUE(BatchParamSpace().Validate(cl).ok());
  EXPECT_GE(SparkConf::FromRaw(cl).TotalCores(),
            SparkConf::FromRaw(cs).TotalCores());
}

TEST(ExpertTest, BatchConfigBeatsWorstCaseDefaults) {
  // The expert config should be a credible baseline: never dramatically
  // worse than defaults on a heavy job.
  SparkEngine engine;
  BatchWorkload w = MakeTpcxbbWorkload(2);
  const double expert = engine.Latency(w.flow, ExpertBatchConfig(w.flow));
  const double defaults =
      engine.Latency(w.flow, BatchParamSpace().Defaults());
  EXPECT_LT(expert, defaults * 1.5);
}

TEST(ExpertTest, StreamConfigSizesForRate) {
  StreamWorkloadProfile profile;
  profile.name = "t";
  Vector low = ExpertStreamConfig(profile, 100);
  Vector high = ExpertStreamConfig(profile, 1200);
  EXPECT_TRUE(StreamParamSpace().Validate(low).ok());
  EXPECT_TRUE(StreamParamSpace().Validate(high).ok());
  EXPECT_GE(StreamConf::FromRaw(high).TotalCores(),
            StreamConf::FromRaw(low).TotalCores());
}

// ------------------------------------------------------------ OtterTune

class OtterTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ModelServerConfig cfg;
    cfg.kind = ModelKind::kGp;
    cfg.gp.hyper_opt_steps = 10;
    server_ = std::make_unique<ModelServer>(cfg);
    engine_ = std::make_unique<SparkEngine>();
    Rng rng(5);
    // Traces for three workloads; workload "9" is the target.
    for (int job : {9, 10, 11}) {
      BatchWorkload w = MakeTpcxbbWorkload(job);
      auto configs = SampleConfigs(BatchParamSpace(), 24,
                                   SamplingStrategy::kLatinHypercube, &rng);
      CollectBatchTraces(*engine_, w, configs, server_.get());
    }
  }

  std::unique_ptr<ModelServer> server_;
  std::unique_ptr<SparkEngine> engine_;
};

TEST_F(OtterTuneTest, MapWorkloadFindsAnotherWorkload) {
  OtterTune tuner(server_.get(), OtterTuneConfig{.gp = {.hyper_opt_steps = 5}});
  auto mapped = tuner.MapWorkload("9");
  ASSERT_TRUE(mapped.ok());
  EXPECT_NE(*mapped, "9");
}

TEST_F(OtterTuneTest, MapWorkloadFailsWithoutMetrics) {
  ModelServer empty;
  OtterTune tuner(&empty, OtterTuneConfig{});
  EXPECT_FALSE(tuner.MapWorkload("9").ok());
}

TEST_F(OtterTuneTest, RecommendReturnsValidConfig) {
  OtterTuneConfig cfg;
  cfg.gp.hyper_opt_steps = 5;
  cfg.search_candidates = 100;
  OtterTune tuner(server_.get(), cfg);
  auto rec = tuner.Recommend(BatchParamSpace(), "9",
                             {objectives::kLatency, objectives::kCostCores},
                             {0.5, 0.5});
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(BatchParamSpace().Validate(*rec).ok());
}

TEST_F(OtterTuneTest, RecommendationBeatsMedianSample) {
  // The tuned config should beat the median sampled latency on the weighted
  // (1, 0) objective, i.e. pure latency.
  OtterTuneConfig cfg;
  cfg.gp.hyper_opt_steps = 10;
  cfg.search_candidates = 300;
  OtterTune tuner(server_.get(), cfg);
  auto rec = tuner.Recommend(BatchParamSpace(), "9",
                             {objectives::kLatency}, {1.0});
  ASSERT_TRUE(rec.ok());
  BatchWorkload w = MakeTpcxbbWorkload(9);
  const double tuned = engine_->Latency(w.flow, *rec);
  // Median of the sampled training latencies.
  auto data = server_->GetData("9", objectives::kLatency);
  ASSERT_TRUE(data.ok());
  Vector ys = data->y;
  std::sort(ys.begin(), ys.end());
  EXPECT_LT(tuned, ys[ys.size() / 2]);
}

TEST_F(OtterTuneTest, RecommendFailsForUnknownWorkload) {
  OtterTune tuner(server_.get(), OtterTuneConfig{});
  EXPECT_FALSE(tuner
                   .Recommend(BatchParamSpace(), "unknown",
                              {objectives::kLatency}, {1.0})
                   .ok());
}

TEST_F(OtterTuneTest, BuildSurrogatesServesCostCoresExactly) {
  OtterTuneConfig cfg;
  cfg.gp.hyper_opt_steps = 5;
  OtterTune tuner(server_.get(), cfg);
  auto surrogates = tuner.BuildSurrogates(
      BatchParamSpace(), "9", {objectives::kLatency, objectives::kCostCores});
  ASSERT_TRUE(surrogates.ok());
  ASSERT_EQ(surrogates->size(), 2u);
  // The cores surrogate is the exact analytic function, not a learned one.
  Vector conf = BatchParamSpace().Defaults();
  conf[1] = 10;
  conf[2] = 4;
  EXPECT_NEAR((*surrogates)[1].model->Predict(BatchParamSpace().Encode(conf)),
              40.0, 1e-6);
}

TEST_F(OtterTuneTest, NegativeWeightMaximizesThatObjective) {
  // Recommend with strong negative weight on cost-in-cores: the search
  // should then prefer *large* allocations.
  OtterTuneConfig cfg;
  cfg.gp.hyper_opt_steps = 5;
  cfg.search_candidates = 150;
  OtterTune tuner(server_.get(), cfg);
  auto min_cores = tuner.Recommend(BatchParamSpace(), "9",
                                   {objectives::kCostCores}, {1.0});
  auto max_cores = tuner.Recommend(BatchParamSpace(), "9",
                                   {objectives::kCostCores}, {-1.0});
  ASSERT_TRUE(min_cores.ok());
  ASSERT_TRUE(max_cores.ok());
  EXPECT_GT(CostInCores(*max_cores), CostInCores(*min_cores));
}

TEST_F(OtterTuneTest, RejectsMismatchedWeights) {
  OtterTune tuner(server_.get(), OtterTuneConfig{});
  EXPECT_FALSE(
      tuner.Recommend(BatchParamSpace(), "9", {objectives::kLatency}, {})
          .ok());
}

}  // namespace
}  // namespace udao
