#include "serving/udao_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/byte_key.h"
#include "common/check.h"
#include "common/metrics_registry.h"
#include "moo/densify.h"
#include "moo/progressive_frontier.h"

namespace udao {
namespace {

double NowMs(const std::chrono::steady_clock::time_point& since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Per-shard metric names are built at construction time, so they cannot go
// through the UDAO_METRIC_* macros (which require literal names); they hit
// the registry directly, compiled out with the rest of the instrumentation.
void EmitShardCounter(const std::string& name) {
#if UDAO_METRICS_ENABLED
  MetricsRegistry::Global().AddCounter(name, 1);
#else
  (void)name;
#endif
}

}  // namespace

/// Shared result slot behind every copy of one ticket. The service-side
/// delivery callback holds a shared_ptr, so the state outlives both an
/// early-destroyed ticket and an early-destroyed service request.
struct RequestTicket::State {
  Mutex mu;
  CondVar cv;
  std::optional<StatusOr<UdaoRecommendation>> result UDAO_GUARDED_BY(mu);
  /// Fired by RequestTicket::Cancel; composed (CancellationToken::Any) with
  /// any token the request itself carried.
  CancellationSource cancel;
};

StatusOr<UdaoRecommendation> RequestTicket::Wait() {
  UDAO_CHECK(state_ != nullptr);
  // Raw pointer rather than the shared_ptr: thread-safety analysis resolves
  // capability expressions through plain pointers, not smart-pointer
  // operator->.
  State* s = state_.get();
  MutexLock lock(s->mu);
  // Bounded waits only in the serving layer (udao_lint unbounded-wait): the
  // re-check loop makes the timeout purely a liveness backstop -- a
  // lost-wakeup or stuck-worker bug degrades to 50 ms extra latency and a
  // re-check instead of a hung client thread.
  while (!s->result.has_value()) {
    s->cv.WaitFor(s->mu, std::chrono::milliseconds(50));
  }
  return *s->result;
}

std::optional<StatusOr<UdaoRecommendation>> RequestTicket::TryGet() {
  UDAO_CHECK(state_ != nullptr);
  State* s = state_.get();
  MutexLock lock(s->mu);
  return s->result;
}

void RequestTicket::Cancel() {
  UDAO_CHECK(state_ != nullptr);
  state_->cancel.Cancel();
}

UdaoService::UdaoService(ModelServer* server, UdaoServiceConfig config)
    : server_(server),
      config_(config),
      udao_(server, config.udao),
      admission_(config.admission_threads) {
  UDAO_CHECK(server_ != nullptr);
  // The canonical SolverOptions serialization: every field that can change
  // what step 2 computes, in one place (tuning/udao.cc) instead of a
  // hand-maintained field list here.
  udao_.options().AppendFingerprint(&options_fingerprint_);

  const int num_shards = std::max(1, config_.cache_shards);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<CacheShard>();
    const std::string prefix = "udao.service.shard" + std::to_string(i) + ".";
    shard->hits_metric = prefix + "cache_hits";
    shard->misses_metric = prefix + "cache_misses";
    shard->invalidations_metric = prefix + "invalidations";
    shard->evictions_metric = prefix + "evictions";
    shards_.push_back(std::move(shard));
  }
  per_shard_capacity_ =
      config_.frontier_cache_capacity > 0
          ? std::max(1, config_.frontier_cache_capacity / num_shards)
          : 0;

  // The coalescer shares the solver's exact MogdConfig (seed, iterations,
  // pool) -- the bitwise-determinism contract -- and the PF instances built
  // per request route their CO subproblems through it via pf_config_.
  if (config_.coalesce_solves && udao_.options().pf.mogd.batched) {
    SolveCoalescerConfig cc;
    cc.max_batch = config_.coalesce_max_batch;
    cc.max_wait_us = config_.coalesce_max_wait_us;
    cc.memo_capacity = config_.coalesce_memo_capacity;
    cc.mogd = udao_.options().pf.mogd;
    coalescer_ = std::make_unique<SolveCoalescer>(cc);
  }
  pf_config_ = udao_.options().pf;
  pf_config_.co_solver = coalescer_.get();

  // Stage-level solver: per-stage Minimize calls route through the same
  // coalescer as the frontier solves, so boundary re-solves from concurrent
  // requests coalesce with everything else in flight.
  if (config_.engine != nullptr) {
    HierarchicalConfig hc;
    hc.co_solver = coalescer_.get();
    hierarchical_ = std::make_unique<HierarchicalMoo>(config_.engine, hc);
  }
}

StatusOr<StageConfOverlay> UdaoService::ResolveStages(
    const Vector& base_raw, const std::vector<StageProfile>& stages,
    int first_stage, WorkloadClass wclass, const StopToken& stop) const {
  if (hierarchical_ == nullptr) {
    return Status::FailedPrecondition(
        "stage-level tuning requires UdaoServiceConfig::engine");
  }
  return hierarchical_->ResolveStages(base_raw, stages, first_stage, wclass,
                                      stop);
}

std::string UdaoService::CacheKey(const UdaoRequest& request) const {
  std::string key;
  key.reserve(256 + options_fingerprint_.size());
  AppendString(&key, request.workload_id);
  // The space enters by address AND by structural content. Address alone is
  // not enough: the documented lifetime contract (spaces outlive the
  // service) is not enforceable here, and a caller that destroys a space and
  // allocates a different one at the recycled address would otherwise be
  // silently served the old space's frontier. With the structure in the key
  // that scenario degrades to a cache miss; an address recycled by a
  // structurally identical space hits, which is semantically sound.
  AppendPod(&key, request.space);
  AppendPod(&key, request.space->NumParams());
  for (const ParamSpec& spec : request.space->specs()) {
    AppendString(&key, spec.name);
    AppendPod(&key, spec.type);
    AppendPod(&key, spec.lo);
    AppendPod(&key, spec.hi);
    AppendPod(&key, spec.default_value);
    // The count keeps variable-length category lists from aliasing across
    // adjacent specs.
    AppendPod(&key, spec.NumCategories());
    for (const std::string& category : spec.categories) {
      AppendString(&key, category);
    }
  }
  for (const ObjectiveSpec& obj : request.objectives) {
    AppendString(&key, obj.name);
    AppendPod(&key, obj.minimize);
    AppendPod(&key, obj.lower);
    AppendPod(&key, obj.upper);
    // Explicit models participate by identity. A cached entry's problem
    // holds a shared_ptr to the model, so the address cannot be recycled
    // while the entry is alive; null (server-resolved) models are covered
    // by workload_id + the generation tag instead.
    AppendPod(&key, obj.model.get());
  }
  key.append(options_fingerprint_);
  return key;
}

UdaoService::CacheShard& UdaoService::ShardFor(
    const std::string& workload_id) const {
  return *shards_[std::hash<std::string>{}(workload_id) % shards_.size()];
}

int UdaoService::ShardOf(const std::string& workload_id) const {
  return static_cast<int>(std::hash<std::string>{}(workload_id) %
                          shards_.size());
}

bool UdaoService::Lookup(CacheShard& shard, const std::string& key,
                         uint64_t generation,
                         std::shared_ptr<const MooProblem>* problem,
                         std::shared_ptr<const PfResult>* frontier,
                         std::shared_ptr<RecommendMemo>* memo, bool emit) {
  // Warm path: probe the shard's last published snapshot, no lock. The
  // snapshot mirrors the live map after every mutation, so the only race is
  // with a concurrent Insert -- which degrades to a spurious miss, and
  // deterministic recomputation makes concurrent misses interchangeable.
  const std::shared_ptr<const Snapshot> snap =
      shard.snapshot.load(std::memory_order_acquire);
  if (snap == nullptr) return false;
  const auto it = snap->find(key);
  if (it == snap->end()) return false;
  if (it->second.generation != generation) {
    // The workload saw new traces (or a retrain) since this frontier was
    // computed: the models behind it are no longer the latest available, so
    // report a miss and let the caller recompute. The entry itself stays --
    // LookupAnyGeneration serves it as a last resort under the stale-cache
    // shed policy, and the recompute's Insert overwrites it with the newer
    // generation.
    shard.invalidations.fetch_add(1, std::memory_order_relaxed);
    if (emit) {
      UDAO_METRIC_COUNTER_ADD("udao.service.invalidations", 1);
      EmitShardCounter(shard.invalidations_metric);
    }
    return false;
  }
  // Recency refresh: the tick cell is shared between the live map and every
  // snapshot of it, so eviction sees hits made through old snapshots too.
  it->second.tick->store(lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  *problem = it->second.problem;
  *frontier = it->second.frontier;
  *memo = it->second.memo;
  return true;
}

bool UdaoService::LookupAnyGeneration(
    CacheShard& shard, const std::string& key,
    std::shared_ptr<const MooProblem>* problem,
    std::shared_ptr<const PfResult>* frontier) {
  const std::shared_ptr<const Snapshot> snap =
      shard.snapshot.load(std::memory_order_acquire);
  if (snap == nullptr) return false;
  const auto it = snap->find(key);
  if (it == snap->end()) return false;
  it->second.tick->store(lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  *problem = it->second.problem;
  *frontier = it->second.frontier;
  return true;
}

void UdaoService::Insert(CacheShard& shard, const std::string& key,
                         uint64_t generation,
                         std::shared_ptr<const MooProblem> problem,
                         std::shared_ptr<const PfResult> frontier,
                         std::shared_ptr<RecommendMemo> memo) {
  if (per_shard_capacity_ <= 0) return;
  // Never cache a degraded frontier: it is whatever the budget allowed, not
  // the deterministic function of the key that makes concurrent misses and
  // later hits interchangeable.
  UDAO_DCHECK(!frontier->degraded);
  MutexLock lock(shard.mu);
  const uint64_t tick = lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto it = shard.cache.find(key);
  if (it != shard.cache.end()) {
    // A concurrent miss on the same key got here first. Deterministic
    // computation means both entries are identical; keep the newer tag in
    // case the other racer observed an older generation.
    it->second.tick->store(tick, std::memory_order_relaxed);
    if (generation > it->second.generation) {
      it->second.problem = std::move(problem);
      it->second.frontier = std::move(frontier);
      // The memo describes the frontier it was computed from; it travels
      // with it. (Equal-generation overwrites keep the incumbent entry AND
      // its memo: deterministic recomputation makes them interchangeable,
      // and the incumbent's memo may already be warm.)
      it->second.memo = std::move(memo);
      it->second.generation = generation;
      RepublishLocked(shard);
    }
    // A recency-only touch needs no republish: tick cells are shared with
    // already-published snapshots.
    return;
  }
  CacheEntry entry;
  entry.problem = std::move(problem);
  entry.frontier = std::move(frontier);
  entry.memo = std::move(memo);
  entry.generation = generation;
  entry.tick = std::make_shared<std::atomic<uint64_t>>(tick);
  shard.cache.emplace(key, std::move(entry));
  EvictOverflowLocked(shard);
  RepublishLocked(shard);
  cache_entries_.store(CountEntries(), std::memory_order_relaxed);
  UDAO_METRIC_GAUGE_SET(
      "udao.service.cache_size",
      static_cast<double>(cache_entries_.load(std::memory_order_relaxed)));
}

void UdaoService::EvictOverflowLocked(CacheShard& shard) {
  while (static_cast<int>(shard.cache.size()) > per_shard_capacity_) {
    // Tick-based LRU: evict the least recently touched entry. A linear scan
    // over at most per_shard_capacity_+1 entries, only on insert overflow.
    auto victim = shard.cache.begin();
    uint64_t victim_tick =
        victim->second.tick->load(std::memory_order_relaxed);
    for (auto i = std::next(shard.cache.begin()); i != shard.cache.end();
         ++i) {
      const uint64_t t = i->second.tick->load(std::memory_order_relaxed);
      if (t < victim_tick) {
        victim = i;
        victim_tick = t;
      }
    }
    shard.cache.erase(victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.evictions", 1);
    EmitShardCounter(shard.evictions_metric);
  }
}

void UdaoService::RepublishLocked(CacheShard& shard) {
  shard.snapshot.store(std::make_shared<const Snapshot>(shard.cache),
                       std::memory_order_release);
}

StatusOr<UdaoRecommendation> UdaoService::ServeStale(
    const UdaoRequest& request, const std::string& key,
    double queue_wait_ms) {
  std::shared_ptr<const MooProblem> problem;
  std::shared_ptr<const PfResult> frontier;
  CacheShard& shard = ShardFor(request.workload_id);
  if (!LookupAnyGeneration(shard, key, &problem, &frontier)) {
    return Status::Unavailable(
        "overloaded and no cached frontier to degrade to");
  }
  if (request.options.metrics) {
    UDAO_METRIC_COUNTER_ADD("udao.service.stale_serves", 1);
  }
  StatusOr<UdaoRecommendation> rec =
      udao_.Recommend(request, *problem, *frontier);
  if (!rec.ok()) return rec.status();
  // The frontier may predate newer traces (any-generation lookup): correct
  // trade-offs as of some recent past, explicitly marked best-effort.
  rec->degraded = true;
  rec->queue_wait_ms = queue_wait_ms;
  return rec;
}

StatusOr<UdaoRecommendation> UdaoService::Handle(const UdaoRequest& request,
                                                 double queue_wait_ms) {
  UDAO_TRACE_SPAN("service.handle");
  const auto t0 = std::chrono::steady_clock::now();
  const bool emit = request.options.metrics;

  Status valid = Udao::Validate(request);
  if (!valid.ok()) return valid;

  // Read the generation BEFORE resolving models: ResolveObjectives may
  // lazily retrain (bumping the generation), and a concurrent Ingest may
  // land between resolve and insert. Tagging with the pre-read value keeps
  // the entry conservatively old, so staleness detection can only err
  // toward recomputing, never toward serving a stale frontier.
  const uint64_t generation = server_->Generation(request.workload_id);
  const std::string key = CacheKey(request);
  const StopToken stop = request.Stop();
  CacheShard& shard = ShardFor(request.workload_id);

  std::shared_ptr<const MooProblem> problem;
  std::shared_ptr<const PfResult> frontier;
  // The entry's recommendation memo: non-null exactly when `frontier` is (or
  // is about to become) a cached entry's frontier. Degraded and cache-off
  // paths leave it null and compute their re-rank inline, as before.
  std::shared_ptr<RecommendMemo> memo;
  const bool hit =
      config_.frontier_cache_capacity > 0 &&
      Lookup(shard, key, generation, &problem, &frontier, &memo, emit);
  if (hit) {
    shard.cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (emit) {
      UDAO_METRIC_COUNTER_ADD("udao.service.cache_hits", 1);
      EmitShardCounter(shard.hits_metric);
    }
  } else {
    shard.cache_misses.fetch_add(1, std::memory_order_relaxed);
    if (emit) {
      UDAO_METRIC_COUNTER_ADD("udao.service.cache_misses", 1);
      EmitShardCounter(shard.misses_metric);
    }
    StatusOr<std::vector<ObjectiveSpec>> objectives =
        udao_.ResolveObjectives(request);
    if (!objectives.ok()) {
      // Model resolution failed (server fault, missing traces). Under the
      // stale-cache shed policy a previously computed frontier -- possibly
      // for older models -- still beats an error.
      const ShedPolicy shed =
          request.options.shed_policy.value_or(config_.shed_policy);
      if (shed == ShedPolicy::kServeStaleCache) {
        StatusOr<UdaoRecommendation> stale =
            ServeStale(request, key, queue_wait_ms);
        if (stale.ok()) return stale;
      }
      return objectives.status();
    }
    auto owned_problem =
        std::make_shared<MooProblem>(request.space, std::move(*objectives));
    auto owned_frontier = std::make_shared<PfResult>();
    {
      UDAO_TRACE_SPAN("service.pf");
      // pf_config_ = the service's solver options with co_solver pointed at
      // the cross-request coalescer, so this request's CO subproblems may
      // share fused descents with concurrent requests' (bitwise-identical
      // results either way).
      ProgressiveFrontier pf(owned_problem.get(), pf_config_);
      *owned_frontier = pf.Run(udao_.options().frontier_points, stop);
    }
    problem = owned_problem;
    frontier = owned_frontier;
    if (frontier->degraded) {
      if (frontier->frontier.empty()) {
        return Status::DeadlineExceeded(
            "budget expired before any Pareto point was found");
      }
      if (emit) {
        UDAO_METRIC_COUNTER_ADD("udao.service.degraded_solves", 1);
      }
    } else {
      // Empty (infeasible) frontiers are cached too: re-asking the same
      // constraints deterministically re-derives the same emptiness. Only
      // complete frontiers enter the cache (see Insert). The fresh memo is
      // seeded below with this request's own conservative re-rank, so the
      // first warm hit already skips the MC-dropout pass.
      memo = std::make_shared<RecommendMemo>();
      Insert(shard, key, generation, problem, frontier, memo);
    }
  }

  // Frontier densification (between steps 2 and 3): a cache hit means this
  // request paid no solve, so some of the saved budget can buy a thicker
  // frontier -- deadline-aware through the request's own token. A degraded
  // deadline-hit frontier is thickened post-hoc instead: its token already
  // fired (that is what degraded means), and densification is bounded,
  // solve-free sampling, so it runs under a never-stopping token. Both paths
  // operate on a private copy; cached entries stay immutable. The densified
  // variant and its conservative re-rank are pure functions of the entry and
  // the (samples, radius) knobs, so cache hits memoize them in the entry's
  // RecommendMemo keyed by those knobs -- warm repeats serve the memo
  // instead of re-sampling and re-paying MC-dropout. A variant whose
  // densification was stopped by the deadline is served but never memoized
  // (it is whatever the budget allowed, not the pure-function value).
  // Degraded frontiers have no entry and no memo. Cold complete solves are
  // served as computed.
  //
  // `ranked` is the conservative (uncertainty-adjusted) companion of
  // whatever `frontier` ends up being; Recommend skips its own re-rank when
  // it is supplied.
  std::shared_ptr<const std::vector<MooPoint>> ranked;
  if (request.options.densify_samples > 0 && !frontier->frontier.empty() &&
      (hit || frontier->degraded)) {
    UDAO_TRACE_SPAN("service.densify");
    const std::pair<int, double> vkey{request.options.densify_samples,
                                      request.options.densify_radius};
    if (memo != nullptr) {
      MutexLock lock(memo->mu);
      auto it = memo->variants.find(vkey);
      if (it != memo->variants.end()) {
        frontier = it->second.frontier;
        ranked = it->second.ranked;
        if (emit) UDAO_METRIC_COUNTER_ADD("udao.densify.memo_hits", 1);
      }
    }
    if (ranked == nullptr) {
      const auto d0 = std::chrono::steady_clock::now();
      DensifyConfig dc;
      dc.samples_per_point = request.options.densify_samples;
      dc.radius = request.options.densify_radius;
      dc.seed = pf_config_.mogd.seed;
      DensifyStats dstats;
      auto densified = std::make_shared<PfResult>(*frontier);
      densified->frontier =
          DensifyFrontier(*problem, frontier->frontier, dc,
                          frontier->degraded ? StopToken() : stop, &dstats);
      auto densified_ranked =
          std::make_shared<const std::vector<MooPoint>>(
              udao_.ConservativeRank(*problem, densified->frontier));
      if (memo != nullptr && !dstats.stopped) {
        MutexLock lock(memo->mu);
        memo->variants[vkey] = DensifiedVariant{densified, densified_ranked};
      }
      frontier = std::move(densified);
      ranked = std::move(densified_ranked);
      if (emit) {
        UDAO_METRIC_COUNTER_ADD("udao.densify.runs", 1);
        if (dstats.stopped) {
          UDAO_METRIC_COUNTER_ADD("udao.densify.stopped", 1);
        }
        UDAO_METRIC_OBSERVE("udao.densify.ms", NowMs(d0));
      }
    }
  }

  // Undensified serve: reuse (or lazily seed) the entry's memoized base
  // re-rank; paths without an entry -- degraded solves, caching disabled --
  // compute it inline exactly as Recommend itself would.
  if (ranked == nullptr) {
    if (memo != nullptr) {
      MutexLock lock(memo->mu);
      ranked = memo->base_ranked;
    }
    if (ranked == nullptr) {
      ranked = std::make_shared<const std::vector<MooPoint>>(
          udao_.ConservativeRank(*problem, frontier->frontier));
      if (memo != nullptr) {
        MutexLock lock(memo->mu);
        memo->base_ranked = ranked;
      }
    }
  }

  StatusOr<UdaoRecommendation> rec =
      udao_.Recommend(request, *problem, *frontier, ranked.get());
  if (!rec.ok()) {
    if (emit) UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
    return rec.status();
  }
  // Stage-level refinement (step 4, for kStage requests): per-stage knobs
  // solved around the chosen point. Runs at recommend time, never cached:
  // the chosen point depends on the request's preference weights, which the
  // frontier cache key deliberately excludes. Failure -- budget, invalid
  // space, solver error -- keeps the flat recommendation (stage-level tuning
  // is advice on top of a complete answer, so it degrades, never errors).
  if (request.options.adaptive.granularity == AdaptiveGranularity::kStage &&
      request.flow != nullptr && hierarchical_ != nullptr) {
    const auto a0 = std::chrono::steady_clock::now();
    const std::vector<StageProfile> stages = config_.engine->PlanStages(
        *request.flow, rec->conf_raw, /*planner_estimates=*/true);
    // The per-boundary budget scales to a whole-overlay budget here: this is
    // the one place every stage is solved at once.
    const Deadline budget =
        Deadline::AfterMs(request.options.adaptive.resolve_budget_ms *
                          std::max<std::size_t>(1, stages.size()));
    const StopToken refine_stop(budget, request.options.cancel);
    StatusOr<StageConfOverlay> overlay = hierarchical_->ResolveStages(
        rec->conf_raw, stages, /*first_stage=*/0,
        request.flow->workload_class(), refine_stop);
    if (overlay.ok()) {
      rec->stage_overlay = std::move(overlay).value();
      rec->stage_confs.reserve(stages.size());
      for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
        rec->stage_confs.push_back(rec->stage_overlay.Resolve(s, rec->conf_raw));
      }
      if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.stage_refines", 1);
    } else if (emit) {
      UDAO_METRIC_COUNTER_ADD("udao.service.stage_refine_fallbacks", 1);
    }
    if (emit) UDAO_METRIC_OBSERVE("udao.service.stage_refine_ms", NowMs(a0));
  }
  rec->seconds = NowMs(t0) / 1e3;
  rec->queue_wait_ms = queue_wait_ms;
  if (emit) UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
  return rec;
}

void UdaoService::AccountResponse(
    const StatusOr<UdaoRecommendation>& response, bool emit) {
  if (response.ok()) {
    if (response->degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.degraded", 1);
    }
    return;
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.errors", 1);
  if (response.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.deadline_exceeded", 1);
  }
}

void UdaoService::SubmitInternal(const UdaoRequest& request, Callback done) {
  UDAO_CHECK(done != nullptr);
  const bool emit = request.options.metrics;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.requests", 1);
  const ShedPolicy shed =
      request.options.shed_policy.value_or(config_.shed_policy);

  // Overload control: bound the backlog, shed per policy (the request's own
  // override wins over the service default). kDegrade admits (flagged); the
  // other policies answer on the calling thread right here.
  bool degrade_admission = false;
  if (config_.max_queue_depth > 0 &&
      queue_depth_.load(std::memory_order_relaxed) >=
          config_.max_queue_depth) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    if (emit) UDAO_METRIC_COUNTER_ADD("udao.service.sheds", 1);
    switch (shed) {
      case ShedPolicy::kReject: {
        StatusOr<UdaoRecommendation> rejected =
            Status::Unavailable("admission queue full (max depth " +
                                std::to_string(config_.max_queue_depth) +
                                ")");
        AccountResponse(rejected, emit);
        done(std::move(rejected));
        return;
      }
      case ShedPolicy::kServeStaleCache: {
        // Step-3-only work (microseconds): cheap enough for the caller's
        // thread, which is the point -- no queue slot consumed.
        StatusOr<UdaoRecommendation> stale =
            ServeStale(request, CacheKey(request), /*queue_wait_ms=*/0.0);
        AccountResponse(stale, emit);
        done(std::move(stale));
        return;
      }
      case ShedPolicy::kDegrade:
        degrade_admission = true;
        break;
    }
  }

  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  UDAO_METRIC_GAUGE_SET(
      "udao.service.queue_depth",
      static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
  const auto enqueued = std::chrono::steady_clock::now();
  // Init-capture: a plain-copy capture of the const reference parameter
  // would keep its const, and the degrade clamp below mutates the deadline.
  admission_.Submit([this, request = request, done = std::move(done), enqueued,
                     degrade_admission, shed, emit]() mutable {
    const double queue_wait_ms = NowMs(enqueued);
    if (emit) {
      UDAO_METRIC_OBSERVE("udao.service.queue_wait_ms", queue_wait_ms);
    }
    if (degrade_admission) {
      // The degraded budget starts when solving starts; a request that also
      // carries its own (tighter) deadline keeps it.
      request.options.deadline =
          Deadline::Earlier(request.options.deadline,
                            Deadline::AfterMs(config_.degraded_budget_ms));
    }
    StatusOr<UdaoRecommendation> out = [&]() -> StatusOr<UdaoRecommendation> {
      // Queue-deadline enforcement: a request whose budget died while
      // queued is never solved -- solving it anyway is exactly the overload
      // death spiral (all workers busy computing answers nobody is waiting
      // for) that deadlines exist to prevent.
      if (request.options.deadline.IsExpired() ||
          request.options.cancel.IsCancelled()) {
        if (shed == ShedPolicy::kServeStaleCache &&
            !request.options.cancel.IsCancelled()) {
          return ServeStale(request, CacheKey(request), queue_wait_ms);
        }
        return Status::DeadlineExceeded(
            "request budget expired after " +
            std::to_string(queue_wait_ms) + " ms in the admission queue");
      }
      return Handle(request, queue_wait_ms);
    }();
    AccountResponse(out, emit);
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(out));
  });
}

RequestTicket UdaoService::Submit(const UdaoRequest& request) {
  RequestTicket ticket;
  ticket.state_ = std::make_shared<RequestTicket::State>();
  std::shared_ptr<RequestTicket::State> state = ticket.state_;
  UdaoRequest composed = request;
  // Either source firing -- the caller's own token or the ticket's Cancel()
  // -- stops this request's solve; composing here keeps the solve stack
  // single-token.
  composed.options.cancel = CancellationToken::Any(
      request.options.cancel, state->cancel.token());
  SubmitInternal(composed, [state](StatusOr<UdaoRecommendation> r) {
    // Notify while holding the lock: a Wait()er may otherwise observe the
    // result and destroy the last ticket copy before NotifyAll touches cv.
    // The delivery lambda's own shared_ptr keeps the state alive regardless.
    RequestTicket::State* s = state.get();
    MutexLock lock(s->mu);
    s->result.emplace(std::move(r));
    s->cv.NotifyAll();
  });
  return ticket;
}

UdaoServiceStats UdaoService::stats() const {
  UdaoServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.shards.reserve(shards_.size());
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    UdaoServiceShardStats ss;
    ss.cache_hits = shard->cache_hits.load(std::memory_order_relaxed);
    ss.cache_misses = shard->cache_misses.load(std::memory_order_relaxed);
    ss.invalidations = shard->invalidations.load(std::memory_order_relaxed);
    ss.evictions = shard->evictions.load(std::memory_order_relaxed);
    s.cache_hits += ss.cache_hits;
    s.cache_misses += ss.cache_misses;
    s.invalidations += ss.invalidations;
    s.evictions += ss.evictions;
    s.shards.push_back(ss);
  }
  return s;
}

int UdaoService::CountEntries() const {
  int total = 0;
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    const std::shared_ptr<const Snapshot> snap =
        shard->snapshot.load(std::memory_order_acquire);
    if (snap != nullptr) total += static_cast<int>(snap->size());
  }
  return total;
}

int UdaoService::CacheSize() const { return CountEntries(); }

int UdaoService::QueueDepth() const {
  return queue_depth_.load(std::memory_order_relaxed);
}

}  // namespace udao
