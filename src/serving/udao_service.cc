#include "serving/udao_service.h"

#include <chrono>
#include <condition_variable>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "moo/progressive_frontier.h"

namespace udao {
namespace {

// Cache keys are exact byte serializations, not hashes: a collision would
// silently serve the wrong frontier, and the keys are small enough (a few
// hundred bytes) that exactness costs nothing. Fields are separated by a
// unit separator so variable-length strings cannot alias across field
// boundaries; numeric fields are appended as raw fixed-width bytes.
constexpr char kSep = '\x1f';

template <typename T>
void AppendPod(std::string* out, T value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(value));
  out->push_back(kSep);
}

void AppendString(std::string* out, const std::string& s) {
  out->append(s);
  out->push_back(kSep);
}

double NowMs(const std::chrono::steady_clock::time_point& since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

UdaoService::UdaoService(ModelServer* server, UdaoServiceConfig config)
    : server_(server),
      config_(config),
      udao_(server, config.udao),
      admission_(config.admission_threads) {
  UDAO_CHECK(server_ != nullptr);
  // Every field of the solver configuration that can change what step 2
  // computes (which points PF probes and in what order). The MOGD pool
  // pointer is excluded on purpose: threading never changes solutions.
  const UdaoOptions& o = udao_.options();
  std::string* f = &options_fingerprint_;
  AppendPod(f, o.pf.parallel);
  AppendPod(f, o.pf.grid_per_dim);
  AppendPod(f, o.pf.use_exhaustive);
  AppendPod(f, o.pf.exhaustive_budget);
  AppendPod(f, o.pf.max_probes);
  AppendPod(f, o.pf.fifo_queue);
  AppendPod(f, o.pf.mogd.multistart);
  AppendPod(f, o.pf.mogd.max_iters);
  AppendPod(f, o.pf.mogd.learning_rate);
  AppendPod(f, o.pf.mogd.alpha);
  AppendPod(f, o.pf.mogd.batched);
  AppendPod(f, o.pf.mogd.seed);
  AppendPod(f, o.frontier_points);
  AppendPod(f, o.workload_aware);
  AppendPod(f, o.uncertainty_alpha);
}

std::string UdaoService::CacheKey(const UdaoRequest& request) const {
  std::string key;
  key.reserve(256 + options_fingerprint_.size());
  AppendString(&key, request.workload_id);
  // The space enters by address AND by structural content. Address alone is
  // not enough: the documented lifetime contract (spaces outlive the
  // service) is not enforceable here, and a caller that destroys a space and
  // allocates a different one at the recycled address would otherwise be
  // silently served the old space's frontier. With the structure in the key
  // that scenario degrades to a cache miss; an address recycled by a
  // structurally identical space hits, which is semantically sound.
  AppendPod(&key, request.space);
  AppendPod(&key, request.space->NumParams());
  for (const ParamSpec& spec : request.space->specs()) {
    AppendString(&key, spec.name);
    AppendPod(&key, spec.type);
    AppendPod(&key, spec.lo);
    AppendPod(&key, spec.hi);
    AppendPod(&key, spec.default_value);
    // The count keeps variable-length category lists from aliasing across
    // adjacent specs.
    AppendPod(&key, spec.NumCategories());
    for (const std::string& category : spec.categories) {
      AppendString(&key, category);
    }
  }
  for (const ObjectiveSpec& obj : request.objectives) {
    AppendString(&key, obj.name);
    AppendPod(&key, obj.minimize);
    AppendPod(&key, obj.lower);
    AppendPod(&key, obj.upper);
    // Explicit models participate by identity. A cached entry's problem
    // holds a shared_ptr to the model, so the address cannot be recycled
    // while the entry is alive; null (server-resolved) models are covered
    // by workload_id + the generation tag instead.
    AppendPod(&key, obj.model.get());
  }
  key.append(options_fingerprint_);
  return key;
}

bool UdaoService::Lookup(const std::string& key, uint64_t generation,
                         std::shared_ptr<const MooProblem>* problem,
                         std::shared_ptr<const PfResult>* frontier) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  if (it->second.generation != generation) {
    // The workload saw new traces (or a retrain) since this frontier was
    // computed: the models behind it are no longer the latest available.
    lru_.erase(it->second.lru_it);
    cache_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.invalidations", 1);
    UDAO_METRIC_GAUGE_SET("udao.service.cache_size",
                          static_cast<double>(cache_.size()));
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *problem = it->second.problem;
  *frontier = it->second.frontier;
  return true;
}

void UdaoService::Insert(const std::string& key, uint64_t generation,
                         std::shared_ptr<const MooProblem> problem,
                         std::shared_ptr<const PfResult> frontier) {
  if (config_.frontier_cache_capacity <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent miss on the same key got here first. Deterministic
    // computation means both entries are identical; keep the newer tag in
    // case the other racer observed an older generation.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    if (generation > it->second.generation) {
      it->second.problem = std::move(problem);
      it->second.frontier = std::move(frontier);
      it->second.generation = generation;
    }
    return;
  }
  lru_.push_front(key);
  CacheEntry entry;
  entry.problem = std::move(problem);
  entry.frontier = std::move(frontier);
  entry.generation = generation;
  entry.lru_it = lru_.begin();
  cache_.emplace(key, std::move(entry));
  while (static_cast<int>(cache_.size()) > config_.frontier_cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.evictions", 1);
  }
  UDAO_METRIC_GAUGE_SET("udao.service.cache_size",
                        static_cast<double>(cache_.size()));
}

StatusOr<UdaoRecommendation> UdaoService::Handle(const UdaoRequest& request) {
  UDAO_TRACE_SPAN("service.handle");
  const auto t0 = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  UDAO_METRIC_COUNTER_ADD("udao.service.requests", 1);

  Status valid = Udao::Validate(request);
  if (!valid.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.errors", 1);
    return valid;
  }

  // Read the generation BEFORE resolving models: ResolveObjectives may
  // lazily retrain (bumping the generation), and a concurrent Ingest may
  // land between resolve and insert. Tagging with the pre-read value keeps
  // the entry conservatively old, so staleness detection can only err
  // toward recomputing, never toward serving a stale frontier.
  const uint64_t generation = server_->Generation(request.workload_id);
  const std::string key = CacheKey(request);

  std::shared_ptr<const MooProblem> problem;
  std::shared_ptr<const PfResult> frontier;
  const bool hit =
      config_.frontier_cache_capacity > 0 &&
      Lookup(key, generation, &problem, &frontier);
  if (hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.cache_hits", 1);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.cache_misses", 1);
    StatusOr<std::vector<ObjectiveSpec>> objectives =
        udao_.ResolveObjectives(request);
    if (!objectives.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      UDAO_METRIC_COUNTER_ADD("udao.service.errors", 1);
      return objectives.status();
    }
    auto owned_problem =
        std::make_shared<MooProblem>(request.space, std::move(*objectives));
    auto owned_frontier = std::make_shared<PfResult>();
    {
      UDAO_TRACE_SPAN("service.pf");
      ProgressiveFrontier pf(owned_problem.get(), udao_.options().pf);
      *owned_frontier = pf.Run(udao_.options().frontier_points);
    }
    problem = owned_problem;
    frontier = owned_frontier;
    // Empty (infeasible) frontiers are cached too: re-asking the same
    // constraints deterministically re-derives the same emptiness.
    Insert(key, generation, problem, frontier);
  }

  StatusOr<UdaoRecommendation> rec =
      udao_.Recommend(request, *problem, *frontier);
  if (!rec.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.errors", 1);
    UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
    return rec.status();
  }
  rec->seconds = NowMs(t0) / 1e3;
  UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
  return rec;
}

void UdaoService::OptimizeAsync(const UdaoRequest& request, Callback done) {
  UDAO_CHECK(done != nullptr);
  const auto enqueued = std::chrono::steady_clock::now();
  admission_.Submit(
      [this, request, done = std::move(done), enqueued]() mutable {
        UDAO_METRIC_OBSERVE("udao.service.queue_wait_ms", NowMs(enqueued));
        done(Handle(request));
      });
}

StatusOr<UdaoRecommendation> UdaoService::Optimize(const UdaoRequest& request) {
  std::mutex m;
  std::condition_variable cv;
  std::optional<StatusOr<UdaoRecommendation>> result;
  OptimizeAsync(request, [&](StatusOr<UdaoRecommendation> r) {
    // Notify while holding the lock: the waiter owns `m`/`cv` on its stack,
    // and may destroy them the moment it observes `result`. Signaling under
    // the lock guarantees it cannot wake and return before this worker is
    // completely done touching them.
    std::lock_guard<std::mutex> lock(m);
    result.emplace(std::move(r));
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return result.has_value(); });
  return std::move(*result);
}

UdaoServiceStats UdaoService::stats() const {
  UdaoServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

int UdaoService::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

}  // namespace udao
