#include "serving/udao_service.h"

#include <chrono>
#include <condition_variable>
#include <optional>
#include <string>
#include <utility>

#include "common/byte_key.h"
#include "common/check.h"
#include "common/metrics_registry.h"
#include "moo/progressive_frontier.h"

namespace udao {
namespace {

double NowMs(const std::chrono::steady_clock::time_point& since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

UdaoService::UdaoService(ModelServer* server, UdaoServiceConfig config)
    : server_(server),
      config_(config),
      udao_(server, config.udao),
      admission_(config.admission_threads) {
  UDAO_CHECK(server_ != nullptr);
  // The canonical SolverOptions serialization: every field that can change
  // what step 2 computes, in one place (tuning/udao.cc) instead of a
  // hand-maintained field list here.
  udao_.options().AppendFingerprint(&options_fingerprint_);
}

std::string UdaoService::CacheKey(const UdaoRequest& request) const {
  std::string key;
  key.reserve(256 + options_fingerprint_.size());
  AppendString(&key, request.workload_id);
  // The space enters by address AND by structural content. Address alone is
  // not enough: the documented lifetime contract (spaces outlive the
  // service) is not enforceable here, and a caller that destroys a space and
  // allocates a different one at the recycled address would otherwise be
  // silently served the old space's frontier. With the structure in the key
  // that scenario degrades to a cache miss; an address recycled by a
  // structurally identical space hits, which is semantically sound.
  AppendPod(&key, request.space);
  AppendPod(&key, request.space->NumParams());
  for (const ParamSpec& spec : request.space->specs()) {
    AppendString(&key, spec.name);
    AppendPod(&key, spec.type);
    AppendPod(&key, spec.lo);
    AppendPod(&key, spec.hi);
    AppendPod(&key, spec.default_value);
    // The count keeps variable-length category lists from aliasing across
    // adjacent specs.
    AppendPod(&key, spec.NumCategories());
    for (const std::string& category : spec.categories) {
      AppendString(&key, category);
    }
  }
  for (const ObjectiveSpec& obj : request.objectives) {
    AppendString(&key, obj.name);
    AppendPod(&key, obj.minimize);
    AppendPod(&key, obj.lower);
    AppendPod(&key, obj.upper);
    // Explicit models participate by identity. A cached entry's problem
    // holds a shared_ptr to the model, so the address cannot be recycled
    // while the entry is alive; null (server-resolved) models are covered
    // by workload_id + the generation tag instead.
    AppendPod(&key, obj.model.get());
  }
  key.append(options_fingerprint_);
  return key;
}

bool UdaoService::Lookup(const std::string& key, uint64_t generation,
                         std::shared_ptr<const MooProblem>* problem,
                         std::shared_ptr<const PfResult>* frontier) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  if (it->second.generation != generation) {
    // The workload saw new traces (or a retrain) since this frontier was
    // computed: the models behind it are no longer the latest available, so
    // report a miss and let the caller recompute. The entry itself stays --
    // LookupAnyGeneration serves it as a last resort under the stale-cache
    // shed policy, and the recompute's Insert overwrites it with the newer
    // generation.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.invalidations", 1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *problem = it->second.problem;
  *frontier = it->second.frontier;
  return true;
}

bool UdaoService::LookupAnyGeneration(
    const std::string& key, std::shared_ptr<const MooProblem>* problem,
    std::shared_ptr<const PfResult>* frontier) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *problem = it->second.problem;
  *frontier = it->second.frontier;
  return true;
}

void UdaoService::Insert(const std::string& key, uint64_t generation,
                         std::shared_ptr<const MooProblem> problem,
                         std::shared_ptr<const PfResult> frontier) {
  if (config_.frontier_cache_capacity <= 0) return;
  // Never cache a degraded frontier: it is whatever the budget allowed, not
  // the deterministic function of the key that makes concurrent misses and
  // later hits interchangeable.
  UDAO_DCHECK(!frontier->degraded);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent miss on the same key got here first. Deterministic
    // computation means both entries are identical; keep the newer tag in
    // case the other racer observed an older generation.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    if (generation > it->second.generation) {
      it->second.problem = std::move(problem);
      it->second.frontier = std::move(frontier);
      it->second.generation = generation;
    }
    return;
  }
  lru_.push_front(key);
  CacheEntry entry;
  entry.problem = std::move(problem);
  entry.frontier = std::move(frontier);
  entry.generation = generation;
  entry.lru_it = lru_.begin();
  cache_.emplace(key, std::move(entry));
  while (static_cast<int>(cache_.size()) > config_.frontier_cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.evictions", 1);
  }
  UDAO_METRIC_GAUGE_SET("udao.service.cache_size",
                        static_cast<double>(cache_.size()));
}

StatusOr<UdaoRecommendation> UdaoService::ServeStale(
    const UdaoRequest& request, const std::string& key,
    double queue_wait_ms) {
  std::shared_ptr<const MooProblem> problem;
  std::shared_ptr<const PfResult> frontier;
  if (!LookupAnyGeneration(key, &problem, &frontier)) {
    return Status::Unavailable(
        "overloaded and no cached frontier to degrade to");
  }
  UDAO_METRIC_COUNTER_ADD("udao.service.stale_serves", 1);
  StatusOr<UdaoRecommendation> rec =
      udao_.Recommend(request, *problem, *frontier);
  if (!rec.ok()) return rec.status();
  // The frontier may predate newer traces (any-generation lookup): correct
  // trade-offs as of some recent past, explicitly marked best-effort.
  rec->degraded = true;
  rec->queue_wait_ms = queue_wait_ms;
  return rec;
}

StatusOr<UdaoRecommendation> UdaoService::Handle(const UdaoRequest& request,
                                                 double queue_wait_ms) {
  UDAO_TRACE_SPAN("service.handle");
  const auto t0 = std::chrono::steady_clock::now();

  Status valid = Udao::Validate(request);
  if (!valid.ok()) return valid;

  // Read the generation BEFORE resolving models: ResolveObjectives may
  // lazily retrain (bumping the generation), and a concurrent Ingest may
  // land between resolve and insert. Tagging with the pre-read value keeps
  // the entry conservatively old, so staleness detection can only err
  // toward recomputing, never toward serving a stale frontier.
  const uint64_t generation = server_->Generation(request.workload_id);
  const std::string key = CacheKey(request);
  const StopToken stop = request.Stop();

  std::shared_ptr<const MooProblem> problem;
  std::shared_ptr<const PfResult> frontier;
  const bool hit =
      config_.frontier_cache_capacity > 0 &&
      Lookup(key, generation, &problem, &frontier);
  if (hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.cache_hits", 1);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.cache_misses", 1);
    StatusOr<std::vector<ObjectiveSpec>> objectives =
        udao_.ResolveObjectives(request);
    if (!objectives.ok()) {
      // Model resolution failed (server fault, missing traces). Under the
      // stale-cache shed policy a previously computed frontier -- possibly
      // for older models -- still beats an error.
      if (config_.shed_policy == ShedPolicy::kServeStaleCache) {
        StatusOr<UdaoRecommendation> stale =
            ServeStale(request, key, queue_wait_ms);
        if (stale.ok()) return stale;
      }
      return objectives.status();
    }
    auto owned_problem =
        std::make_shared<MooProblem>(request.space, std::move(*objectives));
    auto owned_frontier = std::make_shared<PfResult>();
    {
      UDAO_TRACE_SPAN("service.pf");
      ProgressiveFrontier pf(owned_problem.get(), udao_.options().pf);
      *owned_frontier = pf.Run(udao_.options().frontier_points, stop);
    }
    problem = owned_problem;
    frontier = owned_frontier;
    if (frontier->degraded) {
      if (frontier->frontier.empty()) {
        return Status::DeadlineExceeded(
            "budget expired before any Pareto point was found");
      }
      UDAO_METRIC_COUNTER_ADD("udao.service.degraded_solves", 1);
    } else {
      // Empty (infeasible) frontiers are cached too: re-asking the same
      // constraints deterministically re-derives the same emptiness. Only
      // complete frontiers enter the cache (see Insert).
      Insert(key, generation, problem, frontier);
    }
  }

  StatusOr<UdaoRecommendation> rec =
      udao_.Recommend(request, *problem, *frontier);
  if (!rec.ok()) {
    UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
    return rec.status();
  }
  rec->seconds = NowMs(t0) / 1e3;
  rec->queue_wait_ms = queue_wait_ms;
  UDAO_METRIC_OBSERVE("udao.service.e2e_ms", NowMs(t0));
  return rec;
}

void UdaoService::AccountResponse(
    const StatusOr<UdaoRecommendation>& response) {
  if (response.ok()) {
    if (response->degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      UDAO_METRIC_COUNTER_ADD("udao.service.degraded", 1);
    }
    return;
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  UDAO_METRIC_COUNTER_ADD("udao.service.errors", 1);
  if (response.status().code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.deadline_exceeded", 1);
  }
}

void UdaoService::OptimizeAsync(const UdaoRequest& request, Callback done) {
  UDAO_CHECK(done != nullptr);
  requests_.fetch_add(1, std::memory_order_relaxed);
  UDAO_METRIC_COUNTER_ADD("udao.service.requests", 1);

  // Overload control: bound the backlog, shed per policy. kDegrade admits
  // (flagged); the other policies answer on the calling thread right here.
  bool degrade_admission = false;
  if (config_.max_queue_depth > 0 &&
      queue_depth_.load(std::memory_order_relaxed) >=
          config_.max_queue_depth) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    UDAO_METRIC_COUNTER_ADD("udao.service.sheds", 1);
    switch (config_.shed_policy) {
      case ShedPolicy::kReject: {
        StatusOr<UdaoRecommendation> rejected =
            Status::Unavailable("admission queue full (max depth " +
                                std::to_string(config_.max_queue_depth) +
                                ")");
        AccountResponse(rejected);
        done(std::move(rejected));
        return;
      }
      case ShedPolicy::kServeStaleCache: {
        // Step-3-only work (microseconds): cheap enough for the caller's
        // thread, which is the point -- no queue slot consumed.
        StatusOr<UdaoRecommendation> stale =
            ServeStale(request, CacheKey(request), /*queue_wait_ms=*/0.0);
        AccountResponse(stale);
        done(std::move(stale));
        return;
      }
      case ShedPolicy::kDegrade:
        degrade_admission = true;
        break;
    }
  }

  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  UDAO_METRIC_GAUGE_SET(
      "udao.service.queue_depth",
      static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
  const auto enqueued = std::chrono::steady_clock::now();
  // Init-capture: a plain-copy capture of the const reference parameter
  // would keep its const, and the degrade clamp below mutates the deadline.
  admission_.Submit([this, request = request, done = std::move(done), enqueued,
                     degrade_admission]() mutable {
    const double queue_wait_ms = NowMs(enqueued);
    UDAO_METRIC_OBSERVE("udao.service.queue_wait_ms", queue_wait_ms);
    if (degrade_admission) {
      // The degraded budget starts when solving starts; a request that also
      // carries its own (tighter) deadline keeps it.
      request.deadline = Deadline::Earlier(
          request.deadline, Deadline::AfterMs(config_.degraded_budget_ms));
    }
    StatusOr<UdaoRecommendation> out = [&]() -> StatusOr<UdaoRecommendation> {
      // Queue-deadline enforcement: a request whose budget died while
      // queued is never solved -- solving it anyway is exactly the overload
      // death spiral (all workers busy computing answers nobody is waiting
      // for) that deadlines exist to prevent.
      if (request.deadline.IsExpired() || request.cancel.IsCancelled()) {
        if (config_.shed_policy == ShedPolicy::kServeStaleCache &&
            !request.cancel.IsCancelled()) {
          return ServeStale(request, CacheKey(request), queue_wait_ms);
        }
        return Status::DeadlineExceeded(
            "request budget expired after " +
            std::to_string(queue_wait_ms) + " ms in the admission queue");
      }
      return Handle(request, queue_wait_ms);
    }();
    AccountResponse(out);
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(out));
  });
}

StatusOr<UdaoRecommendation> UdaoService::Optimize(const UdaoRequest& request) {
  std::mutex m;
  std::condition_variable cv;
  std::optional<StatusOr<UdaoRecommendation>> result;
  OptimizeAsync(request, [&](StatusOr<UdaoRecommendation> r) {
    // Notify while holding the lock: the waiter owns `m`/`cv` on its stack,
    // and may destroy them the moment it observes `result`. Signaling under
    // the lock guarantees it cannot wake and return before this worker is
    // completely done touching them.
    std::lock_guard<std::mutex> lock(m);
    result.emplace(std::move(r));
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(m);
  // Bounded waits only in the serving layer (udao_lint unbounded-wait): the
  // predicate re-check makes the timeout purely a liveness backstop -- a
  // lost-wakeup or stuck-worker bug degrades to 50 ms extra latency and a
  // re-check instead of a hung client thread.
  while (!result.has_value()) {
    cv.wait_for(lock, std::chrono::milliseconds(50),
                [&] { return result.has_value(); });
  }
  return std::move(*result);
}

UdaoServiceStats UdaoService::stats() const {
  UdaoServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  return s;
}

int UdaoService::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

int UdaoService::QueueDepth() const {
  return queue_depth_.load(std::memory_order_relaxed);
}

}  // namespace udao
