#ifndef UDAO_SERVING_UDAO_SERVICE_H_
#define UDAO_SERVING_UDAO_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "moo/hierarchical.h"
#include "moo/solve_coalescer.h"
#include "tuning/udao.h"

namespace udao {

// ShedPolicy and the per-request RequestOptions knobs (deadline, cancel,
// shed-policy override, recommendation policy, metrics opt-out) live in
// tuning/udao.h next to UdaoRequest; this header re-exports them via that
// include so serving-layer callers keep compiling unchanged.

/// Serving-layer policy.
struct UdaoServiceConfig {
  /// Solver policy for the service's internal Udao instance. Fixed for
  /// the service lifetime -- per-request variation enters through
  /// UdaoRequest only, which is what makes cached frontiers reusable.
  SolverOptions udao;
  /// Workers admitting requests. This pool is deliberately distinct from the
  /// solver pool (udao.solver_threads): request tasks block in the solver
  /// pool's WaitIdle during PF fan-out, and a worker of a pool must never
  /// wait for that same pool to drain.
  int admission_threads = 4;
  /// Cached frontiers kept across all shards. The budget is divided evenly:
  /// each shard holds up to max(1, capacity / cache_shards) entries with
  /// independent recency-based eviction, so one tenant's churn cannot evict
  /// the whole service's working set. <= 0 disables caching.
  int frontier_cache_capacity = 64;
  /// Cache/stat shards. Requests route by hash(workload_id), so one tenant's
  /// entries and counters live in one shard and tenants do not contend on a
  /// shared lock. Clamped to >= 1.
  int cache_shards = 8;
  /// Funnel the MOGD constrained-optimization subproblems of concurrent
  /// requests into shared fused solves (see SolveCoalescer): N tenants
  /// asking for frontiers drive a few big GEMM streams instead of N small
  /// interleaved ones. Results stay bitwise-identical to solo solves; the
  /// only cost is up to coalesce_max_wait_us added latency per solve round.
  /// Ignored (no coalescer built) when the solver config is not batched.
  bool coalesce_solves = true;
  int coalesce_max_batch = 32;
  double coalesce_max_wait_us = 200.0;
  /// Capacity of the coalescer's solved-subproblem memo (identical CO
  /// subproblems from concurrent requests are solved once and the bits
  /// shared; see SolveCoalescerConfig::memo_capacity). 0 disables it.
  int coalesce_memo_capacity = 512;
  /// Overload bound: requests queued or running before shedding starts.
  /// <= 0 means unbounded (the pre-overload-control behavior). The bound is
  /// approximate under concurrency (check-then-admit is not atomic), which
  /// is fine: it exists to keep the backlog from growing without limit, not
  /// to enforce an exact count.
  int max_queue_depth = 0;
  /// Default shed policy; a request may override it for itself via
  /// UdaoRequest::options.shed_policy.
  ShedPolicy shed_policy = ShedPolicy::kReject;
  /// Solve budget granted to requests admitted under ShedPolicy::kDegrade,
  /// measured from the moment a worker dequeues the request (queue wait
  /// does not eat it). Also bounds their anytime PF run.
  double degraded_budget_ms = 50.0;
  /// Stage cost model for stage-level adaptive requests
  /// (RequestOptions::adaptive.granularity == kStage) and boundary
  /// re-solves (ResolveStages). Non-owning; must outlive the service. Null
  /// disables stage-level tuning: kStage requests are served job-level (the
  /// overlay stays empty), ResolveStages fails FailedPrecondition.
  const SparkEngine* engine = nullptr;
};

/// Per-shard slice of the cache counters (see UdaoServiceStats::shards).
struct UdaoServiceShardStats {
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long invalidations = 0;  ///< Generation-stale lookups in this shard.
  long long evictions = 0;      ///< Capacity evictions in this shard.
};

/// Point-in-time request/cache counters (see UdaoService::stats()). The
/// cache fields are aggregates over `shards`; the same split is exported to
/// the metrics registry as `udao.service.shard<i>.*` counters next to the
/// service-wide `udao.service.*` ones.
struct UdaoServiceStats {
  long long requests = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long invalidations = 0;  ///< Entries dropped for generation staleness.
  long long evictions = 0;      ///< Entries dropped for capacity.
  long long errors = 0;         ///< Requests that returned a non-OK status.
  long long sheds = 0;          ///< Requests hit by the overload shed policy.
  long long degraded = 0;       ///< OK responses tagged degraded.
  /// Requests failed with DeadlineExceeded (budget gone in queue, or solve
  /// stopped before finding any point).
  long long deadline_exceeded = 0;
  std::vector<UdaoServiceShardStats> shards;  ///< One entry per cache shard.
};

/// Handle to one submitted request (see UdaoService::Submit). Cheap to copy
/// (all copies share one result slot) and safe to destroy before the request
/// completes -- the service keeps the shared state alive until delivery.
///
/// A default-constructed ticket is empty (Valid() == false); Wait/TryGet/
/// Cancel on it abort, so tickets always originate from Submit().
class RequestTicket {
 public:
  RequestTicket() = default;

  /// True when the ticket came from Submit() (default-constructed tickets
  /// are inert placeholders).
  bool Valid() const { return state_ != nullptr; }

  /// Blocks until the result is ready and returns a copy of it. Idempotent:
  /// repeat calls (from any thread) return the same result again.
  StatusOr<UdaoRecommendation> Wait();

  /// Non-blocking probe: the result if it is already delivered, nullopt
  /// otherwise.
  std::optional<StatusOr<UdaoRecommendation>> TryGet();

  /// Requests cancellation of this submission. Composes with any token the
  /// request itself carried (either source firing cancels the solve); the
  /// solve stack notices at its next per-iteration check and delivers a
  /// best-so-far degraded frontier or Cancelled per the anytime contract.
  /// Idempotent; a no-op once the result is delivered.
  void Cancel();

 private:
  friend class UdaoService;
  struct State;
  std::shared_ptr<State> state_;
};

/// Thread-safe serving front-end over Udao + ModelServer (the "within a few
/// seconds" interactive loop of Fig. 1(a), made multi-tenant).
///
/// Five things distinguish it from calling Udao::Optimize directly:
///
///  - Admission: requests run on a fixed-size ThreadPool, so any number of
///    client threads can call Submit() concurrently while solver parallelism
///    stays bounded.
///  - Solve coalescing: the MOGD subproblems of concurrently admitted
///    requests are funneled through one SolveCoalescer, which fuses
///    same-shaped problems from different requests into shared batched
///    descents (one GEMM stream for the window instead of one per request)
///    without changing any request's results bitwise.
///  - Frontier caching: step 2 (Progressive Frontier) dominates end-to-end
///    latency but depends only on (workload, objectives, constraints, solver
///    options) -- NOT on preference weights or the recommendation policy.
///    Computed frontiers are cached under an exact key of those inputs, so a
///    request that differs only in weights/policy re-runs just step 3
///    (microseconds instead of seconds). The cache is sharded by
///    hash(workload_id): mutations take only their shard's lock, and warm-
///    path lookups probe an atomically published immutable snapshot without
///    locking at all. Degraded (budget-truncated) frontiers are never
///    cached: they are whatever the deadline allowed, not the deterministic
///    function of the key that cache correctness rests on.
///  - Frontier densification: when a request opts in
///    (RequestOptions::densify_samples > 0), cache-hit frontiers are
///    thickened by sampling (src/moo/densify.h) before step 3 -- the solve
///    they skipped pays for a denser menu of trade-offs -- and degraded
///    deadline-hit frontiers are thickened post-hoc. Both on private
///    copies; cached entries stay immutable. Because a densified variant
///    (and its conservative re-rank) is a pure function of the entry and the
///    densify knobs, it is memoized beside the entry (RecommendMemo) and
///    dies with it; degraded frontiers, which are not pure functions of the
///    key, are never cached or memoized.
///  - Invalidation: every cache entry is tagged with the model server's
///    per-workload generation (bumped on Ingest and on lazy retrain /
///    fine-tune). The generation is read *before* models are resolved, so an
///    entry can only ever be tagged older -- never newer -- than the models
///    that produced it: a stale frontier is never served (outside explicit
///    degraded mode), at worst one fresh frontier is recomputed spuriously.
///  - Deadlines & overload control: a request may carry a Deadline /
///    CancellationToken (UdaoRequest::options); the solve stack checks them
///    once per iteration block and returns best-so-far results tagged
///    degraded on expiry. When the admission queue exceeds max_queue_depth,
///    the shed policy (service default, or the request's own override)
///    decides between rejecting, serving stale cache, and degrading. A
///    request whose budget expired while still queued is never solved:
///    it sheds per policy (queue-deadline enforcement).
///
/// Two requests missing on the same key concurrently both compute the
/// frontier (no single-flighting); the computation is deterministic, so both
/// arrive at identical entries and the second insert is a no-op overwrite.
///
/// Lifetime: the caller keeps `server`, request spaces, and any explicit
/// request models alive for the service's lifetime. The destructor drains
/// in-flight requests. Callbacks run on admission workers (or, for shed
/// requests, on the calling thread): keep them light and never block on
/// another ticket or call the synchronous Optimize() from inside one (it
/// would wait for a worker slot while holding one).
class UdaoService {
 public:
  using Callback = std::function<void(StatusOr<UdaoRecommendation>)>;

  explicit UdaoService(ModelServer* server,
                       UdaoServiceConfig config = UdaoServiceConfig());

  /// Admits the request and returns a ticket immediately. The unified entry
  /// point: Wait() on the ticket for synchronous use, poll TryGet() for
  /// async use, Cancel() to abandon the solve early. The request is copied;
  /// the space/model pointers inside it must outlive the call. Safe from any
  /// number of threads concurrently. The returned recommendation carries
  /// queue_wait_ms -- the time the request spent waiting for an admission
  /// worker -- so callers and load generators can tell queueing delay from
  /// solve time.
  RequestTicket Submit(const UdaoRequest& request);

  /// AQE-style boundary re-solve entry: per-stage knobs for stages
  /// [first_stage, stages.size()) with context and plan-time knobs fixed by
  /// `base_raw`. Deployments wire this into SparkEngine::RunAdaptive's
  /// BoundaryResolver with *observed* stage profiles; the per-stage
  /// subproblems route through the service's SolveCoalescer, so boundary
  /// re-solves from concurrent requests coalesce with each other and with
  /// frontier solves. Fails -- never returns a half-tuned overlay -- when
  /// `stop` fires mid-resolve, so callers keep their incumbent config.
  /// FailedPrecondition unless UdaoServiceConfig::engine is set.
  StatusOr<StageConfOverlay> ResolveStages(const Vector& base_raw,
                                           const std::vector<StageProfile>& stages,
                                           int first_stage,
                                           WorkloadClass wclass,
                                           const StopToken& stop) const;

  /// Counter snapshot (approximate under concurrency: the fields are read
  /// individually, not atomically as a group). Includes the per-shard split.
  UdaoServiceStats stats() const;

  /// Frontiers currently cached (summed over shards).
  int CacheSize() const;

  /// Requests currently queued or running (the value the overload bound
  /// compares against).
  int QueueDepth() const;

  /// Which cache shard `workload_id` routes to (stable for the service
  /// lifetime; exposed for tests and shard-level monitoring).
  int ShardOf(const std::string& workload_id) const;

  const UdaoServiceConfig& config() const { return config_; }

 private:
  /// One memoized densified variant of a cached frontier: the thickened
  /// frontier plus its conservative (uncertainty-ranked) companion, both
  /// pure functions of (entry, densify knobs).
  struct DensifiedVariant {
    std::shared_ptr<const PfResult> frontier;
    std::shared_ptr<const std::vector<MooPoint>> ranked;
  };

  /// Per-entry recommendation memo. The conservative re-rank (MC-dropout,
  /// Udao::ConservativeRank) and the densified variants are deterministic
  /// functions of the immutable entry, so warm repeats reuse them instead of
  /// re-paying mc_samples forward passes per frontier point per request.
  /// Shared (like `tick`) between the live map and every published snapshot;
  /// dies with the entry, so generation invalidation covers it for free.
  /// Concurrent fills race benignly: both compute identical values and the
  /// second store overwrites with equal bits (the documented double-compute
  /// semantics of the cache itself).
  struct RecommendMemo {
    Mutex mu;
    /// Conservative companion of the entry's own frontier, index-aligned.
    std::shared_ptr<const std::vector<MooPoint>> base_ranked
        UDAO_GUARDED_BY(mu);
    /// Densified variants keyed by (densify_samples, densify_radius).
    std::map<std::pair<int, double>, DensifiedVariant> variants
        UDAO_GUARDED_BY(mu);
  };

  struct CacheEntry {
    std::shared_ptr<const MooProblem> problem;
    std::shared_ptr<const PfResult> frontier;
    /// Lazily filled recommendation memo (see RecommendMemo).
    std::shared_ptr<RecommendMemo> memo;
    /// ModelServer::Generation(workload) observed before resolving models.
    uint64_t generation = 0;
    /// Recency stamp (global lru_tick_ value of the last touch). Shared
    /// between the live map and every published snapshot of it, so a
    /// lock-free snapshot hit still refreshes recency for eviction.
    std::shared_ptr<std::atomic<uint64_t>> tick;
  };

  /// Immutable point-in-time copy of one shard's map, republished after
  /// every mutation; the warm path probes it without taking the shard lock.
  using Snapshot = std::unordered_map<std::string, CacheEntry>;

  struct CacheShard {
    /// Guards `cache` (mutations and snapshot republish only; reads go
    /// through `snapshot`).
    mutable Mutex mu;
    Snapshot cache UDAO_GUARDED_BY(mu);
    std::atomic<std::shared_ptr<const Snapshot>> snapshot;
    std::atomic<long long> cache_hits{0};
    std::atomic<long long> cache_misses{0};
    std::atomic<long long> invalidations{0};
    std::atomic<long long> evictions{0};
    /// Precomputed `udao.service.shard<i>.*` metric names (the UDAO_METRIC_*
    /// macros need literals; dynamic names go through the registry
    /// directly).
    std::string hits_metric;
    std::string misses_metric;
    std::string invalidations_metric;
    std::string evictions_metric;
  };

  /// Exact byte-serialized cache key: workload, space identity AND structure
  /// (knob names/types/bounds/categories, so a recycled address with
  /// different content misses instead of serving the old space's frontier),
  /// per-objective (name, direction, bounds, explicit model identity), plus
  /// the SolverOptions fingerprint. Preference weights, policy, and slope
  /// side are deliberately absent -- they only steer step 3. The deadline /
  /// cancellation token are absent too: a budget changes how much of the
  /// frontier gets computed, not which frontier the key denotes, and
  /// budget-truncated results are never inserted.
  std::string CacheKey(const UdaoRequest& request) const;

  /// Core admission path shared by Submit and the deprecated wrappers.
  void SubmitInternal(const UdaoRequest& request, Callback done);

  /// The whole request path; runs on an admission worker. `queue_wait_ms`
  /// is surfaced in the returned recommendation.
  StatusOr<UdaoRecommendation> Handle(const UdaoRequest& request,
                                      double queue_wait_ms);

  /// Lock-free cache lookup incl. staleness check; fills problem/frontier
  /// (and the entry's recommendation memo) on a hit and counts
  /// hit/miss/invalidation against `shard`. `emit` gates registry emission
  /// (per-request metrics opt-out); shard-local atomics always count.
  bool Lookup(CacheShard& shard, const std::string& key, uint64_t generation,
              std::shared_ptr<const MooProblem>* problem,
              std::shared_ptr<const PfResult>* frontier,
              std::shared_ptr<RecommendMemo>* memo, bool emit);
  /// Generation-blind lookup for ShedPolicy::kServeStaleCache; does not
  /// count hits or misses (the request already counted its real lookup).
  bool LookupAnyGeneration(CacheShard& shard, const std::string& key,
                           std::shared_ptr<const MooProblem>* problem,
                           std::shared_ptr<const PfResult>* frontier);
  /// `memo` is the new entry's recommendation memo (typically pre-seeded
  /// with the base frontier's conservative re-rank by the inserting
  /// request); on a same-key newer-generation overwrite it replaces the old
  /// entry's memo along with the frontier it described.
  void Insert(CacheShard& shard, const std::string& key, uint64_t generation,
              std::shared_ptr<const MooProblem> problem,
              std::shared_ptr<const PfResult> frontier,
              std::shared_ptr<RecommendMemo> memo);
  /// Evicts least-recently-touched entries until `shard.cache` fits
  /// per_shard_capacity_ (tick-based LRU; linear scan, insert-overflow only).
  void EvictOverflowLocked(CacheShard& shard) UDAO_REQUIRES(shard.mu);
  /// Publishes an immutable copy of `shard.cache` for lock-free lookups.
  /// Every mutation of the map must republish before the lock drops.
  void RepublishLocked(CacheShard& shard) UDAO_REQUIRES(shard.mu);

  CacheShard& ShardFor(const std::string& workload_id) const;

  /// Total entries across shards, read via the published snapshots (no shard
  /// locks taken; exact between mutations).
  int CountEntries() const;

  /// kServeStaleCache fallback: recommend from whatever is cached under
  /// `key`, any generation, tagged degraded. Unavailable when nothing is.
  StatusOr<UdaoRecommendation> ServeStale(const UdaoRequest& request,
                                          const std::string& key,
                                          double queue_wait_ms);

  /// Response-side bookkeeping shared by every delivery path (worker,
  /// shed-at-admission): errors / degraded / deadline_exceeded counters.
  /// `emit` gates registry emission per the request's metrics opt-out.
  void AccountResponse(const StatusOr<UdaoRecommendation>& response,
                       bool emit);

  ModelServer* server_;
  UdaoServiceConfig config_;
  Udao udao_;
  /// Constant over the service lifetime; precomputed CacheKey() suffix
  /// (the canonical SolverOptions byte serialization).
  std::string options_fingerprint_;

  /// Cross-request solve coalescer (null when coalescing is off or the
  /// solver config is not batched). Declared after udao_ so it is destroyed
  /// FIRST: its destructor waits out fused chunks running on udao_'s solver
  /// pool, which must still be alive at that point.
  std::unique_ptr<SolveCoalescer> coalescer_;
  /// udao_.options().pf with co_solver pointed at coalescer_; what Handle
  /// actually constructs ProgressiveFrontier with. co_solver is excluded
  /// from the options fingerprint (threading/routing never changes
  /// solutions), so cache keys are identical with coalescing on or off.
  PfConfig pf_config_;
  /// Stage-level solver (null without config_.engine). Its per-stage
  /// Minimize calls route through coalescer_; declared after it so it is
  /// destroyed first and never holds a dangling solver pointer.
  std::unique_ptr<HierarchicalMoo> hierarchical_;

  /// Cache shards, fixed at construction. unique_ptr because CacheShard
  /// carries a mutex and atomics (immovable) and vector needs movability.
  std::vector<std::unique_ptr<CacheShard>> shards_;
  int per_shard_capacity_ = 0;
  /// Global recency clock for tick-based per-shard eviction (monotone;
  /// higher = more recently used).
  mutable std::atomic<uint64_t> lru_tick_{0};
  /// Entries across shards as of the last Insert (feeds the cache_size
  /// gauge without re-walking shards on reads).
  mutable std::atomic<int> cache_entries_{0};

  std::atomic<long long> requests_{0};
  std::atomic<long long> errors_{0};
  std::atomic<long long> sheds_{0};
  std::atomic<long long> degraded_{0};
  std::atomic<long long> deadline_exceeded_{0};
  /// Requests admitted but not yet answered (queued + running).
  std::atomic<int> queue_depth_{0};

  /// MUST be the last member: ~ThreadPool drains queued/in-flight Handle
  /// tasks, which touch the coalescer, the cache shards, and the counters
  /// above. Members destroy in reverse declaration order, so declaring the
  /// pool last keeps everything a draining task needs alive until the drain
  /// completes (race_stress_test.ServiceDestructionWithInflightRequests
  /// regresses under TSan if this moves).
  ThreadPool admission_;
};

}  // namespace udao

#endif  // UDAO_SERVING_UDAO_SERVICE_H_
