#ifndef UDAO_SERVING_UDAO_SERVICE_H_
#define UDAO_SERVING_UDAO_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "tuning/udao.h"

namespace udao {

/// What the service does with a request that arrives while the admission
/// queue is at max_queue_depth (or whose budget expired while queued).
enum class ShedPolicy {
  /// Fail fast with Unavailable. The caller sees backpressure immediately
  /// and can retry against another replica.
  kReject,
  /// Serve the most recent cached frontier for the request's key regardless
  /// of model generation, tagged degraded. Falls back to Unavailable when
  /// nothing is cached. Also used when model resolution itself fails
  /// (stale answer beats no answer for a tuning advisor).
  kServeStaleCache,
  /// Admit the request anyway but clamp its budget to degraded_budget_ms,
  /// so it runs a short anytime solve and returns a degraded frontier
  /// instead of joining an unbounded backlog at full cost.
  kDegrade,
};

/// Serving-layer policy.
struct UdaoServiceConfig {
  /// Solver policy for the service's internal Udao instance. Fixed for
  /// the service lifetime -- per-request variation enters through
  /// UdaoRequest only, which is what makes cached frontiers reusable.
  SolverOptions udao;
  /// Workers admitting requests. This pool is deliberately distinct from the
  /// solver pool (udao.solver_threads): request tasks block in the solver
  /// pool's WaitIdle during PF fan-out, and a worker of a pool must never
  /// wait for that same pool to drain.
  int admission_threads = 4;
  /// Cached frontiers kept (LRU eviction). <= 0 disables caching.
  int frontier_cache_capacity = 64;
  /// Overload bound: requests queued or running before shedding starts.
  /// <= 0 means unbounded (the pre-overload-control behavior). The bound is
  /// approximate under concurrency (check-then-admit is not atomic), which
  /// is fine: it exists to keep the backlog from growing without limit, not
  /// to enforce an exact count.
  int max_queue_depth = 0;
  ShedPolicy shed_policy = ShedPolicy::kReject;
  /// Solve budget granted to requests admitted under ShedPolicy::kDegrade,
  /// measured from the moment a worker dequeues the request (queue wait
  /// does not eat it). Also bounds their anytime PF run.
  double degraded_budget_ms = 50.0;
};

/// Point-in-time request/cache counters (see UdaoService::stats()).
struct UdaoServiceStats {
  long long requests = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long invalidations = 0;  ///< Entries dropped for generation staleness.
  long long evictions = 0;      ///< Entries dropped for capacity.
  long long errors = 0;         ///< Requests that returned a non-OK status.
  long long sheds = 0;          ///< Requests hit by the overload shed policy.
  long long degraded = 0;       ///< OK responses tagged degraded.
  /// Requests failed with DeadlineExceeded (budget gone in queue, or solve
  /// stopped before finding any point).
  long long deadline_exceeded = 0;
};

/// Thread-safe serving front-end over Udao + ModelServer (the "within a few
/// seconds" interactive loop of Fig. 1(a), made multi-tenant).
///
/// Four things distinguish it from calling Udao::Optimize directly:
///
///  - Admission: requests run on a fixed-size ThreadPool, so any number of
///    client threads can call Optimize()/OptimizeAsync() concurrently while
///    solver parallelism stays bounded.
///  - Frontier caching: step 2 (Progressive Frontier) dominates end-to-end
///    latency but depends only on (workload, objectives, constraints, solver
///    options) -- NOT on preference weights or the recommendation policy.
///    Computed frontiers are cached under an exact key of those inputs, so a
///    request that differs only in weights/policy re-runs just step 3
///    (microseconds instead of seconds). Degraded (budget-truncated)
///    frontiers are never cached: they are whatever the deadline allowed,
///    not the deterministic function of the key that cache correctness
///    rests on.
///  - Invalidation: every cache entry is tagged with the model server's
///    per-workload generation (bumped on Ingest and on lazy retrain /
///    fine-tune). The generation is read *before* models are resolved, so an
///    entry can only ever be tagged older -- never newer -- than the models
///    that produced it: a stale frontier is never served (outside explicit
///    degraded mode), at worst one fresh frontier is recomputed spuriously.
///  - Deadlines & overload control: a request may carry a Deadline /
///    CancellationToken; the solve stack checks them once per iteration
///    block and returns best-so-far results tagged degraded on expiry.
///    When the admission queue exceeds max_queue_depth, the shed policy
///    decides between rejecting, serving stale cache, and degrading. A
///    request whose budget expired while still queued is never solved:
///    it sheds per policy (queue-deadline enforcement).
///
/// Two requests missing on the same key concurrently both compute the
/// frontier (no single-flighting); the computation is deterministic, so both
/// arrive at identical entries and the second insert is a no-op overwrite.
///
/// Lifetime: the caller keeps `server`, request spaces, and any explicit
/// request models alive for the service's lifetime. The destructor drains
/// in-flight requests. Callbacks run on admission workers (or, for shed
/// requests, on the calling thread): keep them light and never call the
/// synchronous Optimize() from inside one (it would wait for a worker slot
/// while holding one).
class UdaoService {
 public:
  using Callback = std::function<void(StatusOr<UdaoRecommendation>)>;

  explicit UdaoService(ModelServer* server,
                       UdaoServiceConfig config = UdaoServiceConfig());

  /// Admits the request and blocks for the result. Safe to call from any
  /// number of threads concurrently (but not from a Callback, see above).
  /// The returned recommendation carries queue_wait_ms -- the time the
  /// request spent waiting for an admission worker -- so callers and load
  /// generators can tell queueing delay from solve time.
  StatusOr<UdaoRecommendation> Optimize(const UdaoRequest& request);

  /// Admits the request and returns immediately; `done` runs on an admission
  /// worker with the result (on the calling thread when the request was shed
  /// at admission). The request is copied; the space/model pointers inside
  /// it must outlive the call.
  void OptimizeAsync(const UdaoRequest& request, Callback done);

  /// Counter snapshot (approximate under concurrency: the fields are read
  /// individually, not atomically as a group).
  UdaoServiceStats stats() const;

  /// Frontiers currently cached.
  int CacheSize() const;

  /// Requests currently queued or running (the value the overload bound
  /// compares against).
  int QueueDepth() const;

  const UdaoServiceConfig& config() const { return config_; }

 private:
  struct CacheEntry {
    std::shared_ptr<const MooProblem> problem;
    std::shared_ptr<const PfResult> frontier;
    /// ModelServer::Generation(workload) observed before resolving models.
    uint64_t generation = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
  };

  /// Exact byte-serialized cache key: workload, space identity AND structure
  /// (knob names/types/bounds/categories, so a recycled address with
  /// different content misses instead of serving the old space's frontier),
  /// per-objective (name, direction, bounds, explicit model identity), plus
  /// the SolverOptions fingerprint. Preference weights, policy, and slope
  /// side are deliberately absent -- they only steer step 3. The deadline /
  /// cancellation token are absent too: a budget changes how much of the
  /// frontier gets computed, not which frontier the key denotes, and
  /// budget-truncated results are never inserted.
  std::string CacheKey(const UdaoRequest& request) const;

  /// The whole request path; runs on an admission worker. `queue_wait_ms`
  /// is surfaced in the returned recommendation.
  StatusOr<UdaoRecommendation> Handle(const UdaoRequest& request,
                                      double queue_wait_ms);

  /// Cache lookup incl. staleness check; fills problem/frontier on a hit.
  bool Lookup(const std::string& key, uint64_t generation,
              std::shared_ptr<const MooProblem>* problem,
              std::shared_ptr<const PfResult>* frontier);
  /// Generation-blind lookup for ShedPolicy::kServeStaleCache.
  bool LookupAnyGeneration(const std::string& key,
                           std::shared_ptr<const MooProblem>* problem,
                           std::shared_ptr<const PfResult>* frontier);
  void Insert(const std::string& key, uint64_t generation,
              std::shared_ptr<const MooProblem> problem,
              std::shared_ptr<const PfResult> frontier);

  /// kServeStaleCache fallback: recommend from whatever is cached under
  /// `key`, any generation, tagged degraded. Unavailable when nothing is.
  StatusOr<UdaoRecommendation> ServeStale(const UdaoRequest& request,
                                          const std::string& key,
                                          double queue_wait_ms);

  /// Response-side bookkeeping shared by every delivery path (worker,
  /// shed-at-admission): errors / degraded / deadline_exceeded counters.
  void AccountResponse(const StatusOr<UdaoRecommendation>& response);

  ModelServer* server_;
  UdaoServiceConfig config_;
  Udao udao_;
  /// Constant over the service lifetime; precomputed CacheKey() suffix
  /// (the canonical SolverOptions byte serialization).
  std::string options_fingerprint_;

  /// Guards lru_ + cache_ only; never held while solving or recommending.
  mutable std::mutex mu_;
  std::list<std::string> lru_;
  std::unordered_map<std::string, CacheEntry> cache_;

  std::atomic<long long> requests_{0};
  std::atomic<long long> cache_hits_{0};
  std::atomic<long long> cache_misses_{0};
  std::atomic<long long> invalidations_{0};
  std::atomic<long long> evictions_{0};
  std::atomic<long long> errors_{0};
  std::atomic<long long> sheds_{0};
  std::atomic<long long> degraded_{0};
  std::atomic<long long> deadline_exceeded_{0};
  /// Requests admitted but not yet answered (queued + running).
  std::atomic<int> queue_depth_{0};

  /// MUST be the last member: ~ThreadPool drains queued/in-flight Handle
  /// tasks, which lock mu_ and touch the cache and counters above. Members
  /// destroy in reverse declaration order, so declaring the pool last keeps
  /// everything a draining task needs alive until the drain completes
  /// (race_stress_test.ServiceDestructionWithInflightRequests regresses
  /// under TSan if this moves).
  ThreadPool admission_;
};

}  // namespace udao

#endif  // UDAO_SERVING_UDAO_SERVICE_H_
