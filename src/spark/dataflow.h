#ifndef UDAO_SPARK_DATAFLOW_H_
#define UDAO_SPARK_DATAFLOW_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace udao {

/// Physical operator kinds supported by the dataflow programming model.
/// These mirror the operators appearing in TPCx-BB plans (Fig. 1(b) of the
/// paper shows HiveTableScan, Filter, Project, Exchange, Sort,
/// ScriptTransformation, HashAggregate, ...).
enum class OpType {
  kScan,             ///< Table scan from HDFS.
  kFilter,           ///< Row filter with a selectivity.
  kProject,          ///< Column projection (shrinks row width).
  kExchange,         ///< Shuffle boundary (repartition).
  kSort,             ///< Full sort (memory intensive).
  kHashAggregate,    ///< Group-by aggregation (memory intensive).
  kJoin,             ///< Equi-join; the engine picks broadcast vs shuffle.
  kScriptTransform,  ///< UDF via external script (CPU intensive).
  kMlIteration,      ///< Iterative ML training (CPU + cache intensive).
  kLimit,            ///< Local/collect limit (negligible cost).
};

/// One operator in a dataflow DAG. Interpretation of the numeric fields
/// depends on `type`; unused fields are ignored.
struct Operator {
  OpType type = OpType::kScan;
  /// Upstream operator ids (indices into Dataflow::ops()). Scans have none;
  /// joins have exactly two (build side listed first by convention of
  /// whichever is smaller at runtime).
  std::vector<int> inputs;

  /// kScan: number of rows in the scanned table.
  double scan_rows = 0;
  /// kScan: bytes per row of the scanned table.
  double scan_row_bytes = 100;
  /// kFilter/kHashAggregate/kJoin: output-to-input row ratio, as the
  /// *planner estimates* it.
  double selectivity = 1.0;
  /// Runtime-true row ratio when the planner's estimate is wrong (the
  /// cardinality misestimation that motivates adaptive stage-level tuning).
  /// Negative (the default) means the estimate is exact. Execution -- and
  /// the observed sizes reported at stage boundaries -- uses this value;
  /// plan-time estimates use `selectivity`.
  double actual_selectivity = -1.0;
  /// kProject: output-to-input byte ratio (column pruning).
  double width_ratio = 1.0;
  /// Relative CPU work per input row (1.0 = a cheap relational op;
  /// ScriptTransform UDFs are typically 10-100x).
  double cpu_per_row = 1.0;
  /// kMlIteration: number of passes over the data.
  int iterations = 1;
};

/// Category labels used for stage sizing: SQL stages take their task count
/// from spark.sql.shuffle.partitions, while RDD-style (UDF/ML) stages use
/// spark.default.parallelism, matching Spark semantics.
enum class WorkloadClass { kSql, kSqlUdf, kMl };

/// A dataflow program: a DAG of operators, used as the unified representation
/// for SQL, ETL/UDF, and ML analytic tasks (Section II-A). Operators must be
/// appended in topological order (inputs before consumers); the last appended
/// operator is the root (result).
class Dataflow {
 public:
  Dataflow(std::string name, WorkloadClass wclass)
      : name_(std::move(name)), wclass_(wclass) {}

  /// Appends a scan leaf and returns its operator id.
  int AddScan(double rows, double row_bytes);

  /// Appends a unary or binary operator; `op.inputs` must reference existing
  /// ids. Returns the new operator id.
  int AddOp(Operator op);

  const std::string& name() const { return name_; }
  WorkloadClass workload_class() const { return wclass_; }
  const std::vector<Operator>& ops() const { return ops_; }
  int root() const { return static_cast<int>(ops_.size()) - 1; }

  /// Total bytes scanned from storage by all scan leaves.
  double TotalInputBytes() const;

  /// Number of operators of the given type.
  int CountOps(OpType type) const;

  /// Structural sanity: non-empty, inputs in topological order, joins binary,
  /// non-scans have at least one input.
  Status Validate() const;

 private:
  std::string name_;
  WorkloadClass wclass_;
  std::vector<Operator> ops_;
};

}  // namespace udao

#endif  // UDAO_SPARK_DATAFLOW_H_
