#ifndef UDAO_SPARK_CONF_H_
#define UDAO_SPARK_CONF_H_

#include <map>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"

namespace udao {

/// Kind of a tunable runtime parameter (knob).
enum class ParamType { kContinuous, kInteger, kBoolean, kCategorical };

/// Declarative description of one Spark knob: its type, range, and default.
/// The MOO layer never manipulates raw knob values directly; it works through
/// ParamSpace's normalize/denormalize encoding, which is the paper's variable
/// transformation (one-hot for categoricals, [0,1] normalization, relaxation
/// of integers/booleans to continuous).
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kContinuous;
  /// Inclusive numeric range for continuous/integer knobs. Booleans use
  /// [0, 1]; categoricals use indices [0, categories.size() - 1].
  double lo = 0.0;
  double hi = 1.0;
  /// Labels for categorical knobs (empty otherwise).
  std::vector<std::string> categories;
  double default_value = 0.0;

  int NumCategories() const { return static_cast<int>(categories.size()); }
};

/// An ordered set of knobs together with the encoding used by the optimizer.
///
/// Encoding: continuous/integer/boolean knobs map to a single dimension
/// normalized to [0,1]; categorical knobs expand into one dimension per
/// category (one-hot, relaxed to [0,1] during optimization). Decoding rounds
/// integers to the nearest value, booleans at 0.5, and categoricals by argmax
/// over their dummy dimensions -- exactly the treatment in Section IV-B.
class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<ParamSpec> specs);

  int NumParams() const { return static_cast<int>(specs_.size()); }
  /// Total dimensionality after one-hot expansion.
  int EncodedDim() const { return encoded_dim_; }
  const ParamSpec& spec(int i) const { return specs_[i]; }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Index of the knob named `name`, or error if absent.
  StatusOr<int> IndexOf(const std::string& name) const;

  /// Raw knob values -> encoded point in [0,1]^EncodedDim().
  Vector Encode(const Vector& raw) const;

  /// Encoded point -> raw knob values (rounds integers/booleans, argmaxes
  /// categoricals, clamps to range). Any encoded point decodes to a *valid*
  /// configuration; this is what makes the relaxed optimization sound.
  Vector Decode(const Vector& encoded) const;

  /// Raw default configuration (x1 in the paper: the configuration used for a
  /// task's first-ever run).
  Vector Defaults() const;

  /// Uniform random raw configuration.
  Vector Sample(Rng* rng) const;

  /// Maps a unit-hypercube point (dim == NumParams(), not EncodedDim()) to a
  /// raw configuration; used by Latin-hypercube / Halton samplers.
  Vector FromUnit(const Vector& unit) const;

  /// Allocation-free forms of FromUnit and Encode for enumeration sweeps
  /// that stream many points through fixed buffers: `unit` and `raw` hold
  /// NumParams() values, `enc` EncodedDim() values. Semantics (including
  /// clamping) are identical to the Vector-returning forms.
  void FromUnitTo(const double* unit, double* raw) const;
  void EncodeTo(const double* raw, double* enc) const;

  /// Validates that `raw` is in range and well-typed.
  Status Validate(const Vector& raw) const;

 private:
  std::vector<ParamSpec> specs_;
  int encoded_dim_ = 0;
};

/// Sparse per-stage knob overrides over a shared base configuration -- the
/// theta_c (context) / theta_p (per-stage) split of the paper's successor
/// ("A Spark Optimizer for Adaptive, Fine-Grained Parameter Tuning",
/// arXiv 2403.00995). Stage ids are the engine's plan-walk stage indices;
/// knob ids are ParamSpace indices into the SAME space as the base conf.
/// Stages without an entry run the base conf untouched.
///
/// Overlays never change stage STRUCTURE: boundary placement (and the other
/// plan-time decisions -- broadcast-vs-shuffle joins, input splits, scan
/// batch sizing) is resolved once from the base conf; overrides change how
/// each stage is costed/executed.
struct StageConfOverlay {
  /// stage id -> (knob index -> raw value). Ordered maps keep iteration --
  /// and therefore serialization and noise-seed mixing -- deterministic.
  std::map<int, std::map<int, double>> overrides;

  bool empty() const { return overrides.empty(); }

  /// Records one override (replacing any previous value for that knob).
  void Set(int stage, int knob, double raw_value);

  /// Effective conf for `stage`: `base_raw` with this stage's overrides
  /// applied. Stages without overrides return `base_raw` unchanged.
  Vector Resolve(int stage, const Vector& base_raw) const;

  /// Adopts every entry of `other` (winning over this overlay on conflicts).
  void MergeFrom(const StageConfOverlay& other);

  /// Every knob index valid for `space` and every stage's resolved conf
  /// in range / well-typed. Stage ids are not bounded here: entries for
  /// stages a plan does not have are inert, which is what lets one overlay
  /// outlive re-planning.
  Status Validate(const ParamSpace& space, const Vector& base_raw) const;
};

/// ParamSpace indices of the BatchParamSpace() knobs that form the shared
/// context (theta_c): resource allocation, chosen once per job and never
/// re-tuned mid-query (executor instances / cores / memory).
const std::vector<int>& BatchContextKnobs();

/// ParamSpace indices of the per-stage re-tunable set (theta_p): knobs that
/// change how a stage is costed at runtime (parallelism, maxSizeInFlight,
/// bypass-merge threshold, shuffle compression, memory fraction, shuffle
/// partitions). Knobs in neither list (columnar batch size,
/// maxPartitionBytes, broadcast threshold) act only at plan time and stay
/// with the context.
const std::vector<int>& BatchStageKnobs();

/// Named accessor view over a raw configuration vector for the batch knob set;
/// mirrors the 12 most important Spark parameters the paper selects
/// (Appendix C-B).
struct SparkConf {
  double parallelism = 48;                    // spark.default.parallelism
  double executor_instances = 8;              // spark.executor.instances
  double executor_cores = 2;                  // spark.executor.cores
  double executor_memory_gb = 4;              // spark.executor.memory
  double max_size_in_flight_mb = 48;          // spark.reducer.maxSizeInFlight
  double bypass_merge_threshold = 200;        // shuffle.sort.bypassMergeThreshold
  double shuffle_compress = 1;                // spark.shuffle.compress (bool)
  double memory_fraction = 0.6;               // spark.memory.fraction
  double columnar_batch_size = 10000;         // inMemoryColumnarStorage.batchSize
  double max_partition_bytes_mb = 128;        // sql.files.maxPartitionBytes
  double broadcast_threshold_mb = 10;         // sql.autoBroadcastJoinThreshold
  double shuffle_partitions = 200;            // spark.sql.shuffle.partitions

  /// Total cores allocated to the job; the paper's "cost in #cores" objective.
  double TotalCores() const { return executor_instances * executor_cores; }

  Vector ToRaw() const;
  static SparkConf FromRaw(const Vector& raw);
};

/// Named accessor view for the streaming knob set (Appendix C-B: the 10+
/// most important Spark Streaming parameters, led by batch interval, block
/// interval, and input rate).
struct StreamConf {
  double batch_interval_ms = 4000;     // batchInterval
  double block_interval_ms = 400;      // spark.streaming.blockInterval
  double input_rate_krps = 600;        // inputRate (thousand records/s)
  double parallelism = 48;             // spark.default.parallelism
  double executor_instances = 8;       // spark.executor.instances
  double executor_cores = 2;           // spark.executor.cores
  double executor_memory_gb = 4;       // spark.executor.memory
  double max_size_in_flight_mb = 48;   // spark.reducer.maxSizeInFlight
  double bypass_merge_threshold = 200; // shuffle.sort.bypassMergeThreshold
  double shuffle_compress = 1;         // spark.shuffle.compress (bool)
  double memory_fraction = 0.6;        // spark.memory.fraction

  double TotalCores() const { return executor_instances * executor_cores; }

  Vector ToRaw() const;
  static StreamConf FromRaw(const Vector& raw);
};

/// The 12-knob batch parameter space used for all TPCx-BB experiments.
const ParamSpace& BatchParamSpace();

/// The 11-knob streaming parameter space used for the stream benchmark.
const ParamSpace& StreamParamSpace();

}  // namespace udao

#endif  // UDAO_SPARK_CONF_H_
