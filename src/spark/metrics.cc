#include "spark/metrics.h"

namespace udao {

Vector RuntimeMetrics::ToVector() const {
  return {latency_s,      cpu_time_s,        bytes_read_mb,
          bytes_written_mb, shuffle_write_mb, shuffle_read_mb,
          fetch_wait_s,   gc_time_s,         spill_mb,
          peak_task_memory_mb, num_tasks,    static_cast<double>(num_stages),
          scheduling_delay_s, cpu_utilization, io_wait_s,
          network_mb};
}

const std::vector<std::string>& RuntimeMetrics::Names() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "latency_s",      "cpu_time_s",        "bytes_read_mb",
      "bytes_written_mb", "shuffle_write_mb", "shuffle_read_mb",
      "fetch_wait_s",   "gc_time_s",         "spill_mb",
      "peak_task_memory_mb", "num_tasks",    "num_stages",
      "scheduling_delay_s", "cpu_utilization", "io_wait_s",
      "network_mb"};
  return names;
}

}  // namespace udao
