#ifndef UDAO_SPARK_ENGINE_H_
#define UDAO_SPARK_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "spark/cluster.h"
#include "spark/conf.h"
#include "spark/dataflow.h"
#include "spark/metrics.h"

namespace udao {

/// Tuning constants of the execution simulator. The defaults are calibrated
/// so that TPCx-BB-scale workloads span roughly 5-300 seconds, matching the
/// two-orders-of-magnitude latency spread the paper reports.
struct EngineOptions {
  ClusterSpec cluster;
  /// Row operations per second per core at the calibration baseline.
  double ops_per_core_per_s = 5e7;
  /// Fixed job setup/teardown (driver, DAG scheduling, result collection).
  double job_overhead_s = 1.2;
  /// Per-task launch overhead (serialization, dispatch), seconds.
  double task_overhead_s = 0.02;
  /// Driver scheduling throughput (tasks dispatched per second).
  double scheduler_tasks_per_s = 400.0;
  /// Shuffle compression ratio (compressed size / raw size).
  double compress_ratio = 0.35;
  /// CPU cost of compression, row-op-equivalents per MB (each side).
  double compress_ops_per_mb = 4e5;
  /// Working-set expansion of in-memory structures over raw bytes.
  double memory_expansion = 2.5;
  /// Multiplicative lognormal execution noise (stddev of log-latency); the
  /// source of irreducible model error. Set 0 for deterministic runs.
  double noise_stddev = 0.05;
};

/// Work profile of one stage as produced by the plan walk: everything the
/// per-stage cost model needs, decoupled from any configuration choice made
/// *after* planning. Public (rather than an engine-internal accumulator) so
/// the hierarchical MOO layer can cost candidate per-stage confs against the
/// same profiles the simulator executes.
struct StageProfile {
  double cpu_ops = 0;             ///< Row-op equivalents.
  double input_read_mb = 0;       ///< Storage reads.
  double shuffle_read_mb = 0;     ///< Raw (pre-compression) shuffle input.
  double shuffle_write_mb = 0;    ///< Raw shuffle output.
  double working_set_mb = 0;      ///< Bytes held by memory-intensive ops.
  double network_extra_mb = 0;    ///< Broadcasts etc.
  bool memory_intensive = false;
  /// >0 when the stage's task count is fixed by input splits (scan stages).
  int split_tasks = 0;
};

/// What the engine reports at one stage boundary of an adaptive run: the
/// observed (runtime-true) work of completed stages and refreshed estimates
/// for the rest -- the AQE statistics a mid-query re-solve keys on.
struct RuntimeObservation {
  int next_stage = 0;   ///< Stage about to start (== completed.size()).
  int num_stages = 0;   ///< Total stages in the plan.
  double elapsed_s = 0; ///< Simulated wall time spent so far.
  std::vector<StageProfile> completed;  ///< Observed sizes, stage order.
  std::vector<StageProfile> remaining;  ///< Refreshed estimates for stages
                                        ///< [next_stage, num_stages).
};

/// Boundary re-solve callback of RunAdaptive. Called between stages with the
/// current observation and a per-boundary budget; returns per-stage
/// overrides for the REMAINING stages (keyed by absolute stage id; entries
/// for completed stages are ignored). Contract: an error return, or
/// returning after `budget` expired, keeps the incumbent overlay -- a
/// re-solve can only improve the plan, never block the stage.
using BoundaryResolver = std::function<StatusOr<StageConfOverlay>(
    const RuntimeObservation&, const Deadline& budget)>;

/// Controls for one adaptive (stage-level) simulated run.
struct AdaptiveRunOptions {
  /// Per-stage overrides deployed from the start (e.g. the hierarchical
  /// solver's initial recommendation). May be empty.
  StageConfOverlay overlay;
  /// Invoked at each stage boundary; null runs `overlay` as-is.
  BoundaryResolver resolver;
  /// Budget handed to each resolver call.
  double resolve_budget_ms = 10.0;
  /// Resolver invocations are capped at this many boundaries.
  int max_boundaries = 8;
};

/// Outcome of RunAdaptive: the metrics plus the re-solve audit trail.
struct AdaptiveRunResult {
  RuntimeMetrics metrics;
  StageConfOverlay final_overlay;  ///< Overlay actually executed.
  int boundaries = 0;              ///< Resolver invocations.
  int applied = 0;                 ///< Boundaries whose overlay was adopted.
  int fallbacks = 0;               ///< Errors/overruns that kept the
                                   ///< incumbent.
  std::vector<double> resolve_ms;  ///< Wall-clock of each resolver call.
};

/// Analytical Spark batch execution simulator.
///
/// Given a dataflow DAG and a configuration, Run() decomposes the plan into
/// stages at shuffle boundaries (Exchange operators and shuffle joins; joins
/// whose build side fits under spark.sql.autoBroadcastJoinThreshold become
/// broadcast joins with no boundary), then costs each stage with a wave-based
/// task model capturing the phenomena the paper's tuning problem hinges on:
///
///  * diminishing returns and scheduling overhead as cores/parallelism grow;
///  * memory-pressure spills when executor memory x memory fraction is too
///    small for a stage's working set, and GC pressure when it is too large a
///    share of the heap;
///  * shuffle compression trading CPU for network bytes, fetch-wait dependent
///    on spark.reducer.maxSizeInFlight, and the bypass-merge threshold;
///  * input-split sizing from spark.sql.files.maxPartitionBytes.
///
/// The simulator is the ground truth against which models are trained and
/// recommendations "measured" (the paper's cluster runs).
///
/// Stage-level tuning: stage STRUCTURE (boundary placement, broadcast-vs-
/// shuffle joins, input splits) is always resolved from the base conf at
/// plan time; a StageConfOverlay changes how individual stages are costed.
class SparkEngine {
 public:
  explicit SparkEngine(EngineOptions options = EngineOptions());

  /// Simulates one job run. `conf_raw` must be a valid BatchParamSpace()
  /// configuration. The noise seed is derived from workload name + conf, so
  /// repeated identical runs return identical traces.
  RuntimeMetrics Run(const Dataflow& flow, const Vector& conf_raw) const;

  /// Run with per-stage overrides resolved at stage-costing time. An empty
  /// overlay is bitwise-identical to Run (same noise seed included).
  RuntimeMetrics RunWithOverlay(const Dataflow& flow, const Vector& conf_raw,
                                const StageConfOverlay& overlay) const;

  /// AQE-style adaptive run: pauses at stage boundaries, reports observed
  /// cardinalities/shuffle sizes into a RuntimeObservation, and lets
  /// `options.resolver` re-tune the remaining stages under a per-boundary
  /// Deadline. Resolver failures or budget overruns keep the incumbent
  /// overlay -- the run itself never fails or blocks on a re-solve. Emits
  /// udao.engine.stage_resolve_* counters/histograms.
  AdaptiveRunResult RunAdaptive(const Dataflow& flow, const Vector& conf_raw,
                                const AdaptiveRunOptions& options) const;

  /// Plan walk only: the per-stage work profiles `conf_raw` induces.
  /// `planner_estimates` selects the optimizer-visible selectivities;
  /// false uses the runtime-true ones (what an executed run observes).
  std::vector<StageProfile> PlanStages(const Dataflow& flow,
                                       const Vector& conf_raw,
                                       bool planner_estimates) const;

  /// Wall-clock cost of one stage under `conf` -- exactly the per-stage term
  /// Run() adds for it (resources re-derived from `conf`). `wclass` selects
  /// SQL vs RDD task sizing.
  double StageSeconds(const StageProfile& stage, const SparkConf& conf,
                      WorkloadClass wclass) const;

  /// Smooth relaxation of StageSeconds for gradient-based per-stage solvers:
  /// task and wave counts stay continuous instead of integer-quantized, so
  /// finite differences see a slope. Identical formulas otherwise.
  double StageSecondsRelaxed(const StageProfile& stage, const SparkConf& conf,
                             WorkloadClass wclass) const;

  /// Latency-only convenience wrapper.
  double Latency(const Dataflow& flow, const Vector& conf_raw) const;

  const EngineOptions& options() const { return options_; }

 private:
  RuntimeMetrics RunInternal(const Dataflow& flow, const Vector& conf_raw,
                             const StageConfOverlay& overlay,
                             const AdaptiveRunOptions* adaptive,
                             AdaptiveRunResult* adaptive_out) const;

  EngineOptions options_;
};

/// Resource cost in allocated CPU cores (the paper's objective 6).
double CostInCores(const Vector& batch_conf_raw);

/// Resource cost in CPU-hours: latency x allocated cores / 3600 (objective 7).
double CostInCpuHours(double latency_s, const Vector& batch_conf_raw);

/// Weighted CPU-hour + IO cost, the serverless-DB-inspired "cost2" measure of
/// Expt 4 / Fig. 9, in millidollars: c1 * CPU-hour + c2 * IO requests (one
/// request per 4 MB moved).
double Cost2(double latency_s, const RuntimeMetrics& metrics,
             const Vector& batch_conf_raw);

}  // namespace udao

#endif  // UDAO_SPARK_ENGINE_H_
