#ifndef UDAO_SPARK_ENGINE_H_
#define UDAO_SPARK_ENGINE_H_

#include <string>

#include "spark/cluster.h"
#include "spark/conf.h"
#include "spark/dataflow.h"
#include "spark/metrics.h"

namespace udao {

/// Tuning constants of the execution simulator. The defaults are calibrated
/// so that TPCx-BB-scale workloads span roughly 5-300 seconds, matching the
/// two-orders-of-magnitude latency spread the paper reports.
struct EngineOptions {
  ClusterSpec cluster;
  /// Row operations per second per core at the calibration baseline.
  double ops_per_core_per_s = 5e7;
  /// Fixed job setup/teardown (driver, DAG scheduling, result collection).
  double job_overhead_s = 1.2;
  /// Per-task launch overhead (serialization, dispatch), seconds.
  double task_overhead_s = 0.02;
  /// Driver scheduling throughput (tasks dispatched per second).
  double scheduler_tasks_per_s = 400.0;
  /// Shuffle compression ratio (compressed size / raw size).
  double compress_ratio = 0.35;
  /// CPU cost of compression, row-op-equivalents per MB (each side).
  double compress_ops_per_mb = 4e5;
  /// Working-set expansion of in-memory structures over raw bytes.
  double memory_expansion = 2.5;
  /// Multiplicative lognormal execution noise (stddev of log-latency); the
  /// source of irreducible model error. Set 0 for deterministic runs.
  double noise_stddev = 0.05;
};

/// Analytical Spark batch execution simulator.
///
/// Given a dataflow DAG and a configuration, Run() decomposes the plan into
/// stages at shuffle boundaries (Exchange operators and shuffle joins; joins
/// whose build side fits under spark.sql.autoBroadcastJoinThreshold become
/// broadcast joins with no boundary), then costs each stage with a wave-based
/// task model capturing the phenomena the paper's tuning problem hinges on:
///
///  * diminishing returns and scheduling overhead as cores/parallelism grow;
///  * memory-pressure spills when executor memory x memory fraction is too
///    small for a stage's working set, and GC pressure when it is too large a
///    share of the heap;
///  * shuffle compression trading CPU for network bytes, fetch-wait dependent
///    on spark.reducer.maxSizeInFlight, and the bypass-merge threshold;
///  * input-split sizing from spark.sql.files.maxPartitionBytes.
///
/// The simulator is the ground truth against which models are trained and
/// recommendations "measured" (the paper's cluster runs).
class SparkEngine {
 public:
  explicit SparkEngine(EngineOptions options = EngineOptions());

  /// Simulates one job run. `conf_raw` must be a valid BatchParamSpace()
  /// configuration. The noise seed is derived from workload name + conf, so
  /// repeated identical runs return identical traces.
  RuntimeMetrics Run(const Dataflow& flow, const Vector& conf_raw) const;

  /// Latency-only convenience wrapper.
  double Latency(const Dataflow& flow, const Vector& conf_raw) const;

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
};

/// Resource cost in allocated CPU cores (the paper's objective 6).
double CostInCores(const Vector& batch_conf_raw);

/// Resource cost in CPU-hours: latency x allocated cores / 3600 (objective 7).
double CostInCpuHours(double latency_s, const Vector& batch_conf_raw);

/// Weighted CPU-hour + IO cost, the serverless-DB-inspired "cost2" measure of
/// Expt 4 / Fig. 9, in millidollars: c1 * CPU-hour + c2 * IO requests (one
/// request per 4 MB moved).
double Cost2(double latency_s, const RuntimeMetrics& metrics,
             const Vector& batch_conf_raw);

}  // namespace udao

#endif  // UDAO_SPARK_ENGINE_H_
