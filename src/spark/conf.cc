#include "spark/conf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace udao {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

ParamSpace::ParamSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {
  encoded_dim_ = 0;
  for (const ParamSpec& spec : specs_) {
    UDAO_CHECK(!spec.name.empty());
    if (spec.type == ParamType::kCategorical) {
      UDAO_CHECK_GE(spec.NumCategories(), 2);
      encoded_dim_ += spec.NumCategories();
    } else {
      UDAO_CHECK_LT(spec.lo, spec.hi + 1e-12);
      encoded_dim_ += 1;
    }
  }
}

StatusOr<int> ParamSpace::IndexOf(const std::string& name) const {
  for (int i = 0; i < NumParams(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return Status::NotFound("no knob named " + name);
}

Vector ParamSpace::Encode(const Vector& raw) const {
  UDAO_CHECK_EQ(static_cast<int>(raw.size()), NumParams());
  Vector enc(encoded_dim_);
  EncodeTo(raw.data(), enc.data());
  return enc;
}

void ParamSpace::EncodeTo(const double* raw, double* enc) const {
  int pos = 0;
  for (int i = 0; i < NumParams(); ++i) {
    const ParamSpec& s = specs_[i];
    if (s.type == ParamType::kCategorical) {
      const int cat = static_cast<int>(std::lround(raw[i]));
      UDAO_CHECK(cat >= 0 && cat < s.NumCategories());
      for (int c = 0; c < s.NumCategories(); ++c) {
        enc[pos++] = c == cat ? 1.0 : 0.0;
      }
    } else {
      // Clamp into [lo, hi] before normalizing: MOGD's seeded/warm-start
      // entry points assume encodings live in the unit box (ClipToUnitBox
      // only guards the descent path), so an out-of-range raw must not
      // produce an encoding outside [0, 1].
      const double span = s.hi - s.lo;
      enc[pos++] = span > 0 ? (Clamp(raw[i], s.lo, s.hi) - s.lo) / span : 0.0;
    }
  }
  UDAO_DCHECK(pos == encoded_dim_);
}

Vector ParamSpace::Decode(const Vector& encoded) const {
  UDAO_CHECK_EQ(static_cast<int>(encoded.size()), encoded_dim_);
  Vector raw(NumParams());
  int pos = 0;
  for (int i = 0; i < NumParams(); ++i) {
    const ParamSpec& s = specs_[i];
    switch (s.type) {
      case ParamType::kCategorical: {
        int best = 0;
        for (int c = 1; c < s.NumCategories(); ++c) {
          if (encoded[pos + c] > encoded[pos + best]) best = c;
        }
        raw[i] = best;
        pos += s.NumCategories();
        break;
      }
      case ParamType::kBoolean: {
        raw[i] = Clamp(encoded[pos], 0.0, 1.0) >= 0.5 ? 1.0 : 0.0;
        ++pos;
        break;
      }
      case ParamType::kInteger: {
        const double v = s.lo + Clamp(encoded[pos], 0.0, 1.0) * (s.hi - s.lo);
        raw[i] = Clamp(std::round(v), s.lo, s.hi);
        ++pos;
        break;
      }
      case ParamType::kContinuous: {
        raw[i] = s.lo + Clamp(encoded[pos], 0.0, 1.0) * (s.hi - s.lo);
        ++pos;
        break;
      }
    }
  }
  return raw;
}

Vector ParamSpace::Defaults() const {
  Vector raw(NumParams());
  for (int i = 0; i < NumParams(); ++i) raw[i] = specs_[i].default_value;
  return raw;
}

Vector ParamSpace::Sample(Rng* rng) const {
  Vector unit(NumParams());
  for (double& u : unit) u = rng->Uniform();
  return FromUnit(unit);
}

Vector ParamSpace::FromUnit(const Vector& unit) const {
  UDAO_CHECK_EQ(static_cast<int>(unit.size()), NumParams());
  Vector raw(NumParams());
  FromUnitTo(unit.data(), raw.data());
  return raw;
}

void ParamSpace::FromUnitTo(const double* unit, double* raw) const {
  for (int i = 0; i < NumParams(); ++i) {
    const ParamSpec& s = specs_[i];
    const double u = Clamp(unit[i], 0.0, 1.0);
    switch (s.type) {
      case ParamType::kCategorical:
        raw[i] = std::min<double>(s.NumCategories() - 1,
                                  std::floor(u * s.NumCategories()));
        break;
      case ParamType::kBoolean:
        raw[i] = u >= 0.5 ? 1.0 : 0.0;
        break;
      case ParamType::kInteger:
        raw[i] = Clamp(std::round(s.lo + u * (s.hi - s.lo)), s.lo, s.hi);
        break;
      case ParamType::kContinuous:
        raw[i] = s.lo + u * (s.hi - s.lo);
        break;
    }
  }
}

Status ParamSpace::Validate(const Vector& raw) const {
  if (static_cast<int>(raw.size()) != NumParams()) {
    return Status::InvalidArgument("configuration has wrong arity");
  }
  for (int i = 0; i < NumParams(); ++i) {
    const ParamSpec& s = specs_[i];
    const double v = raw[i];
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("knob " + s.name + " is not finite");
    }
    if (s.type == ParamType::kCategorical) {
      if (v < 0 || v >= s.NumCategories() || v != std::floor(v)) {
        return Status::InvalidArgument("knob " + s.name +
                                       " has invalid category index");
      }
    } else if (v < s.lo - 1e-9 || v > s.hi + 1e-9) {
      return Status::InvalidArgument("knob " + s.name + " out of range");
    } else if ((s.type == ParamType::kInteger ||
                s.type == ParamType::kBoolean) &&
               v != std::floor(v)) {
      return Status::InvalidArgument("knob " + s.name + " must be integral");
    }
  }
  return Status::Ok();
}

void StageConfOverlay::Set(int stage, int knob, double raw_value) {
  overrides[stage][knob] = raw_value;
}

Vector StageConfOverlay::Resolve(int stage, const Vector& base_raw) const {
  auto it = overrides.find(stage);
  if (it == overrides.end()) return base_raw;
  Vector raw = base_raw;
  for (const auto& [knob, value] : it->second) {
    UDAO_CHECK(knob >= 0 && knob < static_cast<int>(raw.size()));
    raw[knob] = value;
  }
  return raw;
}

void StageConfOverlay::MergeFrom(const StageConfOverlay& other) {
  for (const auto& [stage, knobs] : other.overrides) {
    for (const auto& [knob, value] : knobs) overrides[stage][knob] = value;
  }
}

Status StageConfOverlay::Validate(const ParamSpace& space,
                                  const Vector& base_raw) const {
  Status base_ok = space.Validate(base_raw);
  if (!base_ok.ok()) return base_ok;
  for (const auto& [stage, knobs] : overrides) {
    if (stage < 0) {
      return Status::InvalidArgument("overlay has negative stage id");
    }
    for (const auto& [knob, value] : knobs) {
      (void)value;
      if (knob < 0 || knob >= space.NumParams()) {
        return Status::InvalidArgument("overlay knob index out of range");
      }
    }
    Status st = space.Validate(Resolve(stage, base_raw));
    if (!st.ok()) {
      return Status::InvalidArgument("overlay for stage " +
                                     std::to_string(stage) +
                                     " resolves invalid: " + st.message());
    }
  }
  return Status::Ok();
}

const std::vector<int>& BatchContextKnobs() {
  // executor.instances, executor.cores, executor.memory.
  static const std::vector<int>& knobs = *new std::vector<int>{1, 2, 3};
  return knobs;
}

const std::vector<int>& BatchStageKnobs() {
  // parallelism, maxSizeInFlight, bypassMergeThreshold, shuffle.compress,
  // memory.fraction, shuffle.partitions -- the knobs the stage-costing model
  // actually reads per stage. Indices 8/9/10 (columnar batch size,
  // maxPartitionBytes, broadcast threshold) only act during the plan walk.
  static const std::vector<int>& knobs = *new std::vector<int>{0, 4, 5, 6, 7,
                                                               11};
  return knobs;
}

Vector SparkConf::ToRaw() const {
  return {parallelism,
          executor_instances,
          executor_cores,
          executor_memory_gb,
          max_size_in_flight_mb,
          bypass_merge_threshold,
          shuffle_compress,
          memory_fraction,
          columnar_batch_size,
          max_partition_bytes_mb,
          broadcast_threshold_mb,
          shuffle_partitions};
}

SparkConf SparkConf::FromRaw(const Vector& raw) {
  UDAO_CHECK_EQ(raw.size(), 12u);
  SparkConf c;
  c.parallelism = raw[0];
  c.executor_instances = raw[1];
  c.executor_cores = raw[2];
  c.executor_memory_gb = raw[3];
  c.max_size_in_flight_mb = raw[4];
  c.bypass_merge_threshold = raw[5];
  c.shuffle_compress = raw[6];
  c.memory_fraction = raw[7];
  c.columnar_batch_size = raw[8];
  c.max_partition_bytes_mb = raw[9];
  c.broadcast_threshold_mb = raw[10];
  c.shuffle_partitions = raw[11];
  return c;
}

Vector StreamConf::ToRaw() const {
  return {batch_interval_ms,
          block_interval_ms,
          input_rate_krps,
          parallelism,
          executor_instances,
          executor_cores,
          executor_memory_gb,
          max_size_in_flight_mb,
          bypass_merge_threshold,
          shuffle_compress,
          memory_fraction};
}

StreamConf StreamConf::FromRaw(const Vector& raw) {
  UDAO_CHECK_EQ(raw.size(), 11u);
  StreamConf c;
  c.batch_interval_ms = raw[0];
  c.block_interval_ms = raw[1];
  c.input_rate_krps = raw[2];
  c.parallelism = raw[3];
  c.executor_instances = raw[4];
  c.executor_cores = raw[5];
  c.executor_memory_gb = raw[6];
  c.max_size_in_flight_mb = raw[7];
  c.bypass_merge_threshold = raw[8];
  c.shuffle_compress = raw[9];
  c.memory_fraction = raw[10];
  return c;
}

const ParamSpace& BatchParamSpace() {
  static const ParamSpace& space = *new ParamSpace({
      {"spark.default.parallelism", ParamType::kInteger, 8, 400, {}, 48},
      {"spark.executor.instances", ParamType::kInteger, 2, 28, {}, 8},
      {"spark.executor.cores", ParamType::kInteger, 1, 8, {}, 2},
      {"spark.executor.memory", ParamType::kInteger, 1, 32, {}, 4},
      {"spark.reducer.maxSizeInFlight", ParamType::kInteger, 8, 128, {}, 48},
      {"spark.shuffle.sort.bypassMergeThreshold", ParamType::kInteger, 100,
       800, {}, 200},
      {"spark.shuffle.compress", ParamType::kBoolean, 0, 1, {}, 1},
      {"spark.memory.fraction", ParamType::kContinuous, 0.4, 0.9, {}, 0.6},
      {"spark.sql.inMemoryColumnarStorage.batchSize", ParamType::kInteger,
       2500, 40000, {}, 10000},
      {"spark.sql.files.maxPartitionBytes", ParamType::kInteger, 32, 512, {},
       128},
      {"spark.sql.autoBroadcastJoinThreshold", ParamType::kInteger, 1, 64, {},
       10},
      {"spark.sql.shuffle.partitions", ParamType::kInteger, 8, 400, {}, 200},
  });
  return space;
}

const ParamSpace& StreamParamSpace() {
  static const ParamSpace& space = *new ParamSpace({
      {"batchInterval", ParamType::kInteger, 1000, 10000, {}, 4000},
      {"spark.streaming.blockInterval", ParamType::kInteger, 100, 1000, {},
       400},
      {"inputRate", ParamType::kInteger, 50, 1200, {}, 600},
      {"spark.default.parallelism", ParamType::kInteger, 8, 400, {}, 48},
      {"spark.executor.instances", ParamType::kInteger, 2, 28, {}, 8},
      {"spark.executor.cores", ParamType::kInteger, 1, 8, {}, 2},
      {"spark.executor.memory", ParamType::kInteger, 1, 32, {}, 4},
      {"spark.reducer.maxSizeInFlight", ParamType::kInteger, 8, 128, {}, 48},
      {"spark.shuffle.sort.bypassMergeThreshold", ParamType::kInteger, 100,
       800, {}, 200},
      {"spark.shuffle.compress", ParamType::kBoolean, 0, 1, {}, 1},
      {"spark.memory.fraction", ParamType::kContinuous, 0.4, 0.9, {}, 0.6},
  });
  return space;
}

}  // namespace udao
