#ifndef UDAO_SPARK_CLUSTER_H_
#define UDAO_SPARK_CLUSTER_H_

namespace udao {

/// Hardware description of the simulated cluster. Defaults mirror the paper's
/// testbed: 20 CentOS nodes, 2x Intel Xeon Gold 6130 (16 cores each) and
/// 768 GB of memory per node, with RAID disks.
struct ClusterSpec {
  int num_nodes = 20;
  int cores_per_node = 32;
  double memory_per_node_gb = 768.0;
  /// Aggregate sequential disk bandwidth per node (MB/s).
  double disk_bw_mb_per_s = 800.0;
  /// Network bandwidth per node (MB/s); 10 GbE.
  double network_bw_mb_per_s = 1100.0;
  /// Relative CPU speed multiplier (1.0 = calibration baseline).
  double core_speed = 1.0;

  int TotalCores() const { return num_nodes * cores_per_node; }
};

}  // namespace udao

#endif  // UDAO_SPARK_CLUSTER_H_
