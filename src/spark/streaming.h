#ifndef UDAO_SPARK_STREAMING_H_
#define UDAO_SPARK_STREAMING_H_

#include <string>

#include "spark/cluster.h"
#include "spark/conf.h"
#include "spark/metrics.h"

namespace udao {

/// Per-record cost profile of a streaming analytic template (the click-stream
/// benchmark's SQL+UDF / ML templates are instances of this).
struct StreamWorkloadProfile {
  std::string name;
  /// Row-op equivalents of CPU work per ingested record in the map phase.
  double map_ops_per_record = 3.0;
  /// Row-op equivalents per shuffled record in the reduce phase.
  double reduce_ops_per_record = 2.0;
  /// Bytes per ingested record.
  double bytes_per_record = 200.0;
  /// Fraction of ingested bytes that cross the shuffle.
  double shuffle_fraction = 0.3;
  /// Whether the reduce phase builds large in-memory state (windows, models).
  bool memory_intensive = true;
};

/// Outcome of simulating the steady state of a streaming job.
struct StreamResult {
  /// Average end-to-end record latency (batching delay + processing),
  /// seconds. Grows super-linearly once the job cannot keep up.
  double record_latency_s = 0;
  /// Sustained throughput in thousand records per second.
  double throughput_krps = 0;
  /// Whether batch processing time fits within the batch interval.
  bool stable = true;
  /// Processing time of one micro-batch, seconds.
  double batch_processing_s = 0;
  RuntimeMetrics metrics;
};

/// Micro-batch streaming execution simulator (Spark Streaming semantics).
///
/// Records arrive at `inputRate`; every `batchInterval` the accumulated
/// records form a micro-batch whose map stage is partitioned into one task
/// per block (`blockInterval`) and whose reduce stage is partitioned by
/// spark.default.parallelism. A batch whose processing time exceeds the
/// interval makes the job fall behind: throughput saturates at the processing
/// capacity and record latency inflates with the backlog -- the
/// latency-throughput tension of the paper's streaming experiments.
/// (Options for StreamEngine below.)
struct StreamEngineOptions {
  ClusterSpec cluster;
  double ops_per_core_per_s = 5e7;
  double compress_ratio = 0.35;
  double compress_ops_per_mb = 4e5;
  double memory_expansion = 2.5;
  double task_overhead_s = 0.004;
  double noise_stddev = 0.04;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = StreamEngineOptions());

  /// Simulates steady state under `conf_raw` (a StreamParamSpace() point).
  StreamResult Run(const StreamWorkloadProfile& profile,
                   const Vector& conf_raw) const;

  const StreamEngineOptions& options() const { return options_; }

 private:
  StreamEngineOptions options_;
};

}  // namespace udao

#endif  // UDAO_SPARK_STREAMING_H_
