#include "spark/streaming.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "common/random.h"

namespace udao {

namespace {

uint64_t NoiseSeed(const std::string& name, const Vector& conf) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (char c : name) mix(static_cast<uint64_t>(c));
  for (double v : conf) {
    uint64_t bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

StreamEngine::StreamEngine(StreamEngineOptions options) : options_(options) {}

StreamResult StreamEngine::Run(const StreamWorkloadProfile& profile,
                               const Vector& conf_raw) const {
  UDAO_CHECK(StreamParamSpace().Validate(conf_raw).ok());
  const StreamConf conf = StreamConf::FromRaw(conf_raw);
  const ClusterSpec& cluster = options_.cluster;

  const int cores_per_exec = static_cast<int>(conf.executor_cores);
  const int max_exec_per_node = std::max(
      1, std::min(cluster.cores_per_node / std::max(1, cores_per_exec),
                  static_cast<int>(cluster.memory_per_node_gb /
                                   std::max(1.0, conf.executor_memory_gb))));
  const int executors =
      std::min(static_cast<int>(conf.executor_instances),
               cluster.num_nodes * max_exec_per_node);
  const int total_cores = std::max(1, executors * cores_per_exec);
  const int nodes_used = std::max(1, std::min(cluster.num_nodes, executors));

  const double interval_s = conf.batch_interval_ms / 1000.0;
  const double records_per_batch =
      conf.input_rate_krps * 1000.0 * interval_s;
  const double batch_mb = records_per_batch * profile.bytes_per_record / 1e6;

  // ---- Map stage: one task per ingest block.
  const int blocks = std::max(
      1, static_cast<int>(conf.batch_interval_ms / conf.block_interval_ms));
  const int map_waves = (blocks + total_cores - 1) / total_cores;
  const double core_ops = options_.ops_per_core_per_s * cluster.core_speed;
  double map_cpu_s =
      records_per_batch * profile.map_ops_per_record / blocks / core_ops;

  const double compress =
      conf.shuffle_compress >= 0.5 ? options_.compress_ratio : 1.0;
  const double shuffle_mb = batch_mb * profile.shuffle_fraction;
  if (compress < 1.0) {
    map_cpu_s += shuffle_mb * options_.compress_ops_per_mb / blocks / core_ops;
  }
  const double map_task_s = map_cpu_s + options_.task_overhead_s;
  const double map_stage_s = map_waves * map_task_s;

  // ---- Reduce stage: sized by spark.default.parallelism.
  const int reduce_tasks = std::max(1, static_cast<int>(conf.parallelism));
  const int reduce_waves = (reduce_tasks + total_cores - 1) / total_cores;
  const int concurrent = std::min(reduce_tasks, total_cores);
  const double conc_per_node =
      std::max(1.0, static_cast<double>(concurrent) / nodes_used);
  const double net_bw_per_task = cluster.network_bw_mb_per_s / conc_per_node;
  const double disk_bw_per_task = cluster.disk_bw_mb_per_s / conc_per_node;

  const double shuffle_records = records_per_batch * profile.shuffle_fraction;
  double reduce_cpu_s =
      shuffle_records * profile.reduce_ops_per_record / reduce_tasks / core_ops;
  if (compress < 1.0) {
    reduce_cpu_s +=
        shuffle_mb * options_.compress_ops_per_mb / reduce_tasks / core_ops;
  }
  const double read_mb_eff = shuffle_mb * compress;
  const double net_s = (read_mb_eff / reduce_tasks) / net_bw_per_task;
  const double rounds = (read_mb_eff / reduce_tasks) /
                        std::max(1.0, conf.max_size_in_flight_mb);
  const double fetch_wait_s = std::max(0.0, rounds - 1.0) * 0.01;

  // Streaming state (windows/model) memory pressure in the reduce phase.
  const double mem_per_task_mb = conf.executor_memory_gb * 1024.0 *
                                 conf.memory_fraction /
                                 std::max(1, cores_per_exec);
  const double working_mb = profile.memory_intensive
                                ? batch_mb / reduce_tasks *
                                      options_.memory_expansion * 1.5
                                : shuffle_mb / reduce_tasks;
  double spill_mb = 0;
  if (profile.memory_intensive && working_mb > mem_per_task_mb) {
    spill_mb = (working_mb - mem_per_task_mb) * 2.0;
  }
  const double spill_s = spill_mb / disk_bw_per_task;
  const double heap_mb = conf.executor_memory_gb * 1024.0;
  const double occupancy =
      working_mb * cores_per_exec / std::max(1.0, heap_mb);
  const double gc_s =
      reduce_cpu_s * (0.02 + 0.4 * std::max(0.0, occupancy - 0.75));

  const double bypass =
      reduce_tasks <= conf.bypass_merge_threshold ? 0.7 : 1.0;
  const double write_s =
      (shuffle_mb * compress / std::max(1, blocks)) * bypass /
      disk_bw_per_task;

  const double reduce_task_s = reduce_cpu_s + gc_s + net_s + fetch_wait_s +
                               spill_s + options_.task_overhead_s;
  const double reduce_stage_s = reduce_waves * reduce_task_s;

  double proc_s = map_stage_s + write_s + reduce_stage_s + 0.05;
  if (options_.noise_stddev > 0) {
    Rng noise(NoiseSeed(profile.name, conf_raw));
    proc_s *= std::exp(noise.Gaussian(0.0, options_.noise_stddev));
  }

  StreamResult result;
  result.batch_processing_s = proc_s;
  result.stable = proc_s <= interval_s;
  if (result.stable) {
    // Average record waits half a batch to be batched, then the batch runs.
    result.record_latency_s = interval_s / 2.0 + proc_s;
    result.throughput_krps = conf.input_rate_krps;
  } else {
    // The job falls behind: capacity-bound throughput and backlog-inflated
    // latency (bounded proxy for the unbounded steady-state queue).
    const double overload = proc_s / interval_s;
    result.throughput_krps = conf.input_rate_krps / overload;
    result.record_latency_s =
        interval_s / 2.0 + proc_s * (1.0 + 4.0 * (overload - 1.0));
  }

  RuntimeMetrics& m = result.metrics;
  m.latency_s = result.record_latency_s;
  m.cpu_time_s = map_cpu_s * blocks + (reduce_cpu_s + gc_s) * reduce_tasks;
  m.shuffle_write_mb = shuffle_mb * compress;
  m.shuffle_read_mb = read_mb_eff;
  m.fetch_wait_s = fetch_wait_s * reduce_tasks;
  m.gc_time_s = gc_s * reduce_tasks;
  m.spill_mb = spill_mb * reduce_tasks;
  m.peak_task_memory_mb = working_mb;
  m.num_tasks = blocks + reduce_tasks;
  m.num_stages = 2;
  m.network_mb = read_mb_eff;
  m.bytes_read_mb = batch_mb;
  m.cpu_utilization = std::min(
      1.0, m.cpu_time_s / std::max(1e-9, proc_s * total_cores));
  UDAO_METRIC_COUNTER_ADD("udao.spark.sim_runs", 1);
  UDAO_METRIC_OBSERVE("udao.spark.sim_latency_s", result.record_latency_s);
  return result;
}

}  // namespace udao
