#include "spark/dataflow.h"

#include "common/check.h"

namespace udao {

int Dataflow::AddScan(double rows, double row_bytes) {
  Operator op;
  op.type = OpType::kScan;
  op.scan_rows = rows;
  op.scan_row_bytes = row_bytes;
  ops_.push_back(op);
  return root();
}

int Dataflow::AddOp(Operator op) {
  UDAO_CHECK(op.type != OpType::kScan);
  UDAO_CHECK(!op.inputs.empty());
  for (int input : op.inputs) {
    UDAO_CHECK(input >= 0 && input < static_cast<int>(ops_.size()));
  }
  ops_.push_back(std::move(op));
  return root();
}

double Dataflow::TotalInputBytes() const {
  double total = 0;
  for (const Operator& op : ops_) {
    if (op.type == OpType::kScan) total += op.scan_rows * op.scan_row_bytes;
  }
  return total;
}

int Dataflow::CountOps(OpType type) const {
  int count = 0;
  for (const Operator& op : ops_) {
    if (op.type == type) ++count;
  }
  return count;
}

Status Dataflow::Validate() const {
  if (ops_.empty()) return Status::InvalidArgument("empty dataflow");
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Operator& op = ops_[i];
    if (op.type == OpType::kScan) {
      if (!op.inputs.empty()) {
        return Status::InvalidArgument("scan must have no inputs");
      }
      if (op.scan_rows <= 0 || op.scan_row_bytes <= 0) {
        return Status::InvalidArgument("scan must have positive size");
      }
      continue;
    }
    if (op.inputs.empty()) {
      return Status::InvalidArgument("non-scan operator has no inputs");
    }
    if (op.type == OpType::kJoin && op.inputs.size() != 2) {
      return Status::InvalidArgument("join must be binary");
    }
    for (int input : op.inputs) {
      if (input < 0 || input >= static_cast<int>(i)) {
        return Status::InvalidArgument("inputs must be topologically ordered");
      }
    }
  }
  return Status::Ok();
}

}  // namespace udao
