#ifndef UDAO_SPARK_METRICS_H_
#define UDAO_SPARK_METRICS_H_

#include <string>
#include <vector>

#include "common/matrix.h"

namespace udao {

/// System-level runtime metrics collected from a (simulated) job execution.
/// The paper's model server collects 360 metrics per trace; this is the
/// representative subset that drives workload mapping (OtterTune-style) and
/// workload encodings. Time unit: seconds; size unit: MB.
struct RuntimeMetrics {
  double latency_s = 0;            ///< End-to-end job latency.
  double cpu_time_s = 0;           ///< Total CPU seconds across tasks.
  double bytes_read_mb = 0;        ///< Input bytes read from storage.
  double bytes_written_mb = 0;     ///< Output + spill bytes written.
  double shuffle_write_mb = 0;     ///< Shuffle bytes written (post-compress).
  double shuffle_read_mb = 0;      ///< Shuffle bytes fetched.
  double fetch_wait_s = 0;         ///< Shuffle fetch wait time.
  double gc_time_s = 0;            ///< JVM garbage-collection time.
  double spill_mb = 0;             ///< Bytes spilled to disk.
  double peak_task_memory_mb = 0;  ///< Max per-task working set.
  double num_tasks = 0;            ///< Tasks launched.
  int num_stages = 0;              ///< Stages executed (a count, kept
                                   ///< integral; widened only in ToVector).
  double scheduling_delay_s = 0;   ///< Driver scheduling overhead.
  double cpu_utilization = 0;      ///< Mean fraction of allocated cores busy.
  double io_wait_s = 0;            ///< Time tasks spent blocked on disk IO.
  double network_mb = 0;           ///< Bytes moved over the network.

  /// Flattens the metrics into a fixed-order vector (same order as Names()).
  Vector ToVector() const;
  /// Metric names aligned with ToVector().
  static const std::vector<std::string>& Names();
};

/// One observation used for model training: a configuration, the metrics it
/// produced, and the observed objective values.
struct TraceRecord {
  std::string workload_id;
  Vector conf_raw;          ///< Raw knob values (ParamSpace order).
  RuntimeMetrics metrics;   ///< Observed system metrics.
};

}  // namespace udao

#endif  // UDAO_SPARK_METRICS_H_
