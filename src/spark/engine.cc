#include "spark/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "common/random.h"

namespace udao {

namespace {

// Per-stage accumulation produced by the plan walk.
struct StageWork {
  double cpu_ops = 0;             // row-op equivalents
  double input_read_mb = 0;       // storage reads
  double shuffle_read_mb = 0;     // raw (pre-compression) shuffle input
  double shuffle_write_mb = 0;    // raw shuffle output
  double working_set_mb = 0;      // bytes held by memory-intensive ops
  double network_extra_mb = 0;    // broadcasts etc.
  bool memory_intensive = false;
  // >0 when the stage's task count is fixed by input splits (scan stages).
  int split_tasks = 0;
};

// Data-size annotation of one operator's output.
struct OpOutput {
  double rows = 0;
  double mb = 0;
  int stage = -1;
};

double MbOf(double rows, double row_bytes) { return rows * row_bytes / 1e6; }

// Deterministic 64-bit hash over workload name + configuration, used to seed
// the per-run noise so that identical runs reproduce identical traces.
uint64_t NoiseSeed(const std::string& name, const Vector& conf) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (char c : name) mix(static_cast<uint64_t>(c));
  for (double v : conf) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

SparkEngine::SparkEngine(EngineOptions options) : options_(options) {}

RuntimeMetrics SparkEngine::Run(const Dataflow& flow,
                                const Vector& conf_raw) const {
  UDAO_CHECK(flow.Validate().ok());
  UDAO_CHECK(BatchParamSpace().Validate(conf_raw).ok());
  const SparkConf conf = SparkConf::FromRaw(conf_raw);
  const ClusterSpec& cluster = options_.cluster;

  // ---- Resource derivation: executors packed onto nodes.
  const int cores_per_exec = static_cast<int>(conf.executor_cores);
  const double mem_per_exec_gb = conf.executor_memory_gb;
  const int max_exec_per_node = std::max(
      1, std::min(cluster.cores_per_node / std::max(1, cores_per_exec),
                  static_cast<int>(cluster.memory_per_node_gb /
                                   std::max(1.0, mem_per_exec_gb))));
  const int executors =
      std::min(static_cast<int>(conf.executor_instances),
               cluster.num_nodes * max_exec_per_node);
  const int total_cores = std::max(1, executors * cores_per_exec);
  const int nodes_used =
      std::max(1, std::min(cluster.num_nodes, executors));

  // ---- Plan walk: assign operators to stages and accumulate stage work.
  std::vector<StageWork> stages;
  std::vector<OpOutput> outs(flow.ops().size());
  auto new_stage = [&stages]() {
    stages.emplace_back();
    return static_cast<int>(stages.size()) - 1;
  };

  for (size_t i = 0; i < flow.ops().size(); ++i) {
    const Operator& op = flow.ops()[i];
    OpOutput& out = outs[i];
    switch (op.type) {
      case OpType::kScan: {
        out.stage = new_stage();
        out.rows = op.scan_rows;
        out.mb = MbOf(op.scan_rows, op.scan_row_bytes);
        StageWork& sw = stages[out.stage];
        sw.input_read_mb += out.mb;
        // Scan decode cost scales mildly with the columnar batch size's
        // distance from its sweet spot (vectorization vs footprint).
        const double batch_penalty =
            1.0 + 0.06 * std::abs(std::log2(conf.columnar_batch_size / 1e4));
        sw.cpu_ops += op.scan_rows * 0.3 * batch_penalty;
        sw.split_tasks = std::max(
            sw.split_tasks,
            static_cast<int>(
                std::ceil(out.mb / std::max(1.0, conf.max_partition_bytes_mb))));
        break;
      }
      case OpType::kFilter: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * op.selectivity;
        out.mb = in.mb * op.selectivity;
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row * 0.2;
        break;
      }
      case OpType::kProject: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows;
        out.mb = in.mb * op.width_ratio;
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row * 0.1;
        break;
      }
      case OpType::kExchange: {
        const OpOutput& in = outs[op.inputs[0]];
        stages[in.stage].shuffle_write_mb += in.mb;
        out.stage = new_stage();
        out.rows = in.rows;
        out.mb = in.mb;
        stages[out.stage].shuffle_read_mb += in.mb;
        break;
      }
      case OpType::kSort: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows;
        out.mb = in.mb;
        const double log_n = std::log2(std::max(2.0, in.rows));
        StageWork& sw = stages[out.stage];
        sw.cpu_ops += in.rows * 0.25 * log_n * op.cpu_per_row;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, in.mb);
        break;
      }
      case OpType::kHashAggregate: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * op.selectivity;
        out.mb = in.mb * op.selectivity;
        StageWork& sw = stages[out.stage];
        sw.cpu_ops += in.rows * op.cpu_per_row;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, out.mb * 1.5);
        break;
      }
      case OpType::kJoin: {
        const OpOutput& a = outs[op.inputs[0]];
        const OpOutput& b = outs[op.inputs[1]];
        const OpOutput& build = (a.mb <= b.mb) ? a : b;
        const OpOutput& probe = (a.mb <= b.mb) ? b : a;
        out.rows = std::max(a.rows, b.rows) * op.selectivity;
        out.mb = std::max(a.mb, b.mb) * op.selectivity;
        if (build.mb <= conf.broadcast_threshold_mb) {
          // Broadcast hash join: build side shipped to every executor, probe
          // side streams in place. No stage boundary.
          out.stage = probe.stage;
          StageWork& sw = stages[out.stage];
          sw.cpu_ops += (probe.rows + build.rows * 2.0) * op.cpu_per_row;
          sw.network_extra_mb += build.mb * executors;
          sw.working_set_mb = std::max(sw.working_set_mb, build.mb * 2.0);
          sw.memory_intensive = true;
        } else {
          // Shuffle hash join: both sides repartition into a new stage.
          stages[a.stage].shuffle_write_mb += a.mb;
          stages[b.stage].shuffle_write_mb += b.mb;
          out.stage = new_stage();
          StageWork& sw = stages[out.stage];
          sw.shuffle_read_mb += a.mb + b.mb;
          sw.cpu_ops += (a.rows + b.rows) * op.cpu_per_row;
          sw.memory_intensive = true;
          sw.working_set_mb = std::max(sw.working_set_mb, build.mb * 2.0);
        }
        break;
      }
      case OpType::kScriptTransform: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * op.selectivity;
        out.mb = in.mb * op.selectivity;
        // UDFs pay pipe + interpreter overhead per row; dominated by CPU.
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row;
        break;
      }
      case OpType::kMlIteration: {
        const OpOutput& in = outs[op.inputs[0]];
        // Training caches the input and makes `iterations` passes, each
        // ending in a small model-aggregation shuffle.
        stages[in.stage].shuffle_write_mb += in.mb;
        out.stage = new_stage();
        out.rows = in.rows;
        out.mb = in.mb;
        StageWork& sw = stages[out.stage];
        sw.shuffle_read_mb += in.mb;
        sw.cpu_ops += in.rows * op.cpu_per_row * op.iterations;
        sw.shuffle_write_mb += 8.0 * op.iterations;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, in.mb * 1.2);
        break;
      }
      case OpType::kLimit: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = std::min(in.rows, 1000.0);
        out.mb = in.mb * (out.rows / std::max(1.0, in.rows));
        break;
      }
    }
  }

  // ---- Stage costing.
  const bool sql_sizing = flow.workload_class() != WorkloadClass::kMl;
  const double compress =
      conf.shuffle_compress >= 0.5 ? options_.compress_ratio : 1.0;
  const double mem_per_task_mb = conf.executor_memory_gb * 1024.0 *
                                 conf.memory_fraction /
                                 std::max(1, cores_per_exec);

  RuntimeMetrics m;
  m.num_stages = static_cast<double>(stages.size());
  double latency = options_.job_overhead_s;
  double busy_core_seconds = 0;

  for (const StageWork& sw : stages) {
    int tasks;
    if (sw.split_tasks > 0) {
      tasks = sw.split_tasks;
    } else if (sql_sizing) {
      tasks = static_cast<int>(conf.shuffle_partitions);
    } else {
      tasks = static_cast<int>(conf.parallelism);
    }
    tasks = std::max(1, tasks);
    const int waves = (tasks + total_cores - 1) / total_cores;
    const int concurrent = std::min(tasks, total_cores);
    // Disk and network are shared per node: a stage cannot move bytes faster
    // than the aggregate bandwidth of the nodes it runs on, no matter how
    // many cores it holds. These terms are therefore costed at stage
    // granularity rather than wave-quantized.
    const double agg_disk_bw = nodes_used * cluster.disk_bw_mb_per_s;
    const double agg_net_bw = nodes_used * cluster.network_bw_mb_per_s;

    // CPU: base ops plus compression work on shuffled bytes.
    double cpu_ops = sw.cpu_ops;
    if (compress < 1.0) {
      cpu_ops += (sw.shuffle_write_mb + sw.shuffle_read_mb) *
                 options_.compress_ops_per_mb;
    }
    double cpu_s = cpu_ops / tasks /
                   (options_.ops_per_core_per_s * cluster.core_speed);

    // Memory pressure: spill when the per-task working set exceeds the
    // execution-memory share; GC pressure when heap occupancy runs high.
    const double working_mb =
        (sw.memory_intensive
             ? std::max(sw.working_set_mb,
                        (sw.input_read_mb + sw.shuffle_read_mb))
             : (sw.input_read_mb + sw.shuffle_read_mb)) /
        tasks * options_.memory_expansion;
    double spill_mb = 0;
    if (sw.memory_intensive && working_mb > mem_per_task_mb) {
      spill_mb = (working_mb - mem_per_task_mb) * 2.0;  // write + re-read
    }
    const double heap_mb = conf.executor_memory_gb * 1024.0;
    const double occupancy =
        working_mb * cores_per_exec / std::max(1.0, heap_mb);
    const double gc_frac = 0.02 + 0.4 * std::max(0.0, occupancy - 0.75);
    const double gc_s = cpu_s * gc_frac;

    // Disk IO: input reads, shuffle writes (with bypass-merge discount when
    // the partition count is small enough to skip the merge sort), spill.
    const double write_mb_eff = sw.shuffle_write_mb * compress;
    const double read_mb_eff = sw.shuffle_read_mb * compress;
    const double bypass =
        conf.shuffle_partitions <= conf.bypass_merge_threshold ? 0.7 : 1.0;
    const double total_io_mb =
        sw.input_read_mb + write_mb_eff * bypass + spill_mb * tasks;
    const double stage_io_s = total_io_mb / agg_disk_bw;

    // Network: shuffle fetches plus broadcasts; fetch-wait from the number of
    // in-flight windows needed to pull one task's shuffle input.
    const double total_net_mb = read_mb_eff + sw.network_extra_mb;
    const double stage_net_s = total_net_mb / agg_net_bw;
    const double rounds =
        (read_mb_eff / tasks) / std::max(1.0, conf.max_size_in_flight_mb);
    const double fetch_wait_s = std::max(0.0, rounds - 1.0) * 0.01;

    const double per_task_s =
        cpu_s + gc_s + fetch_wait_s + options_.task_overhead_s;
    const double sched_s = tasks / options_.scheduler_tasks_per_s;
    const double stage_s =
        waves * per_task_s + stage_io_s + stage_net_s + sched_s;
    const double io_s = stage_io_s * static_cast<double>(concurrent) / tasks;

    latency += stage_s;
    busy_core_seconds += per_task_s * tasks + (stage_io_s + stage_net_s) *
                                                  std::min(tasks, concurrent);
    m.cpu_time_s += (cpu_s + gc_s) * tasks;
    m.bytes_read_mb += sw.input_read_mb;
    m.bytes_written_mb += write_mb_eff + spill_mb * tasks / 2.0;
    m.shuffle_write_mb += write_mb_eff;
    m.shuffle_read_mb += read_mb_eff;
    m.fetch_wait_s += fetch_wait_s * tasks;
    m.gc_time_s += gc_s * tasks;
    m.spill_mb += spill_mb * tasks;
    m.peak_task_memory_mb = std::max(m.peak_task_memory_mb, working_mb);
    m.num_tasks += tasks;
    m.scheduling_delay_s += sched_s;
    m.io_wait_s += io_s * tasks;
    m.network_mb += total_net_mb;
  }

  // Deterministic multiplicative noise models run-to-run variance.
  if (options_.noise_stddev > 0) {
    Rng noise(NoiseSeed(flow.name(), conf_raw));
    latency *= std::exp(noise.Gaussian(0.0, options_.noise_stddev));
  }

  m.latency_s = latency;
  m.cpu_utilization =
      std::min(1.0, busy_core_seconds / std::max(1e-9, latency * total_cores));
  // Simulated-run accounting: trace collection and deployed-measurement
  // loops both funnel through here, so this counter is the bench reports'
  // "how many cluster runs did this experiment cost" number.
  UDAO_METRIC_COUNTER_ADD("udao.spark.sim_runs", 1);
  UDAO_METRIC_OBSERVE("udao.spark.sim_latency_s", latency);
  return m;
}

double SparkEngine::Latency(const Dataflow& flow,
                            const Vector& conf_raw) const {
  return Run(flow, conf_raw).latency_s;
}

double CostInCores(const Vector& batch_conf_raw) {
  const SparkConf conf = SparkConf::FromRaw(batch_conf_raw);
  return conf.TotalCores();
}

double CostInCpuHours(double latency_s, const Vector& batch_conf_raw) {
  return latency_s * CostInCores(batch_conf_raw) / 3600.0;
}

double Cost2(double latency_s, const RuntimeMetrics& metrics,
             const Vector& batch_conf_raw) {
  // c1 = 48 millidollar / CPU-hour, c2 = 0.4 millidollar / 1000 IO requests,
  // one IO request per 4 MB moved (storage + shuffle), in the spirit of
  // serverless-DB pricing.
  const double cpu_hours = CostInCpuHours(latency_s, batch_conf_raw);
  const double io_requests =
      (metrics.bytes_read_mb + metrics.bytes_written_mb) / 4.0;
  return 48.0 * cpu_hours + 0.4 * io_requests / 1000.0;
}

}  // namespace udao
