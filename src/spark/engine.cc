#include "spark/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "common/random.h"

namespace udao {

namespace {

// Data-size annotation of one operator's output.
struct OpOutput {
  double rows = 0;
  double mb = 0;
  int stage = -1;
};

double MbOf(double rows, double row_bytes) { return rows * row_bytes / 1e6; }

// Deterministic 64-bit hash over workload name + configuration, used to seed
// the per-run noise so that identical runs reproduce identical traces.
uint64_t NoiseSeed(const std::string& name, const Vector& conf) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (char c : name) mix(static_cast<uint64_t>(c));
  for (double v : conf) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

// Continues the FNV-1a stream over the overlay entries that the plan can
// actually execute (deterministic: the overlay's maps iterate in key
// order), so overlaid runs draw noise independent of the flat run while an
// overlay with no in-plan entries reproduces it exactly -- out-of-plan
// stage ids are inert everywhere, the seed included.
uint64_t MixOverlaySeed(uint64_t h, const StageConfOverlay& overlay,
                        int num_stages) {
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& [stage, knobs] : overlay.overrides) {
    if (stage < 0 || stage >= num_stages) continue;
    mix(static_cast<uint64_t>(stage));
    for (const auto& [knob, value] : knobs) {
      mix(static_cast<uint64_t>(knob));
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(value));
      __builtin_memcpy(&bits, &value, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

// Executors packed onto nodes, derived from the (effective) conf.
struct Resources {
  int cores_per_exec = 1;
  int executors = 1;
  int total_cores = 1;
  int nodes_used = 1;
};

Resources DeriveResources(const SparkConf& conf, const ClusterSpec& cluster) {
  Resources r;
  r.cores_per_exec = static_cast<int>(conf.executor_cores);
  const double mem_per_exec_gb = conf.executor_memory_gb;
  const int max_exec_per_node = std::max(
      1, std::min(cluster.cores_per_node / std::max(1, r.cores_per_exec),
                  static_cast<int>(cluster.memory_per_node_gb /
                                   std::max(1.0, mem_per_exec_gb))));
  r.executors = std::min(static_cast<int>(conf.executor_instances),
                         cluster.num_nodes * max_exec_per_node);
  r.total_cores = std::max(1, r.executors * r.cores_per_exec);
  r.nodes_used = std::max(1, std::min(cluster.num_nodes, r.executors));
  return r;
}

// The row ratio an executed run observes (vs the planner's estimate).
double RuntimeSelectivity(const Operator& op) {
  return op.actual_selectivity >= 0 ? op.actual_selectivity : op.selectivity;
}

// Plan walk: assigns operators to stages at shuffle boundaries and
// accumulates each stage's work profile. Structure and the plan-time knob
// effects (input splits, scan batch sizing, broadcast decisions) come from
// `conf`; `planner_estimates` picks estimated vs runtime-true selectivities.
std::vector<StageProfile> WalkPlan(const Dataflow& flow, const SparkConf& conf,
                                   int executors, bool planner_estimates) {
  std::vector<StageProfile> stages;
  std::vector<OpOutput> outs(flow.ops().size());
  auto new_stage = [&stages]() {
    stages.emplace_back();
    return static_cast<int>(stages.size()) - 1;
  };
  auto sel = [planner_estimates](const Operator& op) {
    return planner_estimates ? op.selectivity : RuntimeSelectivity(op);
  };

  for (size_t i = 0; i < flow.ops().size(); ++i) {
    const Operator& op = flow.ops()[i];
    OpOutput& out = outs[i];
    switch (op.type) {
      case OpType::kScan: {
        out.stage = new_stage();
        out.rows = op.scan_rows;
        out.mb = MbOf(op.scan_rows, op.scan_row_bytes);
        StageProfile& sw = stages[out.stage];
        sw.input_read_mb += out.mb;
        // Scan decode cost scales mildly with the columnar batch size's
        // distance from its sweet spot (vectorization vs footprint).
        const double batch_penalty =
            1.0 + 0.06 * std::abs(std::log2(conf.columnar_batch_size / 1e4));
        sw.cpu_ops += op.scan_rows * 0.3 * batch_penalty;
        sw.split_tasks = std::max(
            sw.split_tasks,
            static_cast<int>(
                std::ceil(out.mb / std::max(1.0, conf.max_partition_bytes_mb))));
        break;
      }
      case OpType::kFilter: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * sel(op);
        out.mb = in.mb * sel(op);
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row * 0.2;
        break;
      }
      case OpType::kProject: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows;
        out.mb = in.mb * op.width_ratio;
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row * 0.1;
        break;
      }
      case OpType::kExchange: {
        const OpOutput& in = outs[op.inputs[0]];
        stages[in.stage].shuffle_write_mb += in.mb;
        out.stage = new_stage();
        out.rows = in.rows;
        out.mb = in.mb;
        stages[out.stage].shuffle_read_mb += in.mb;
        break;
      }
      case OpType::kSort: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows;
        out.mb = in.mb;
        const double log_n = std::log2(std::max(2.0, in.rows));
        StageProfile& sw = stages[out.stage];
        sw.cpu_ops += in.rows * 0.25 * log_n * op.cpu_per_row;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, in.mb);
        break;
      }
      case OpType::kHashAggregate: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * sel(op);
        out.mb = in.mb * sel(op);
        StageProfile& sw = stages[out.stage];
        sw.cpu_ops += in.rows * op.cpu_per_row;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, out.mb * 1.5);
        break;
      }
      case OpType::kJoin: {
        const OpOutput& a = outs[op.inputs[0]];
        const OpOutput& b = outs[op.inputs[1]];
        const OpOutput& build = (a.mb <= b.mb) ? a : b;
        const OpOutput& probe = (a.mb <= b.mb) ? b : a;
        out.rows = std::max(a.rows, b.rows) * sel(op);
        out.mb = std::max(a.mb, b.mb) * sel(op);
        if (build.mb <= conf.broadcast_threshold_mb) {
          // Broadcast hash join: build side shipped to every executor, probe
          // side streams in place. No stage boundary.
          out.stage = probe.stage;
          StageProfile& sw = stages[out.stage];
          sw.cpu_ops += (probe.rows + build.rows * 2.0) * op.cpu_per_row;
          sw.network_extra_mb += build.mb * executors;
          sw.working_set_mb = std::max(sw.working_set_mb, build.mb * 2.0);
          sw.memory_intensive = true;
        } else {
          // Shuffle hash join: both sides repartition into a new stage.
          stages[a.stage].shuffle_write_mb += a.mb;
          stages[b.stage].shuffle_write_mb += b.mb;
          out.stage = new_stage();
          StageProfile& sw = stages[out.stage];
          sw.shuffle_read_mb += a.mb + b.mb;
          sw.cpu_ops += (a.rows + b.rows) * op.cpu_per_row;
          sw.memory_intensive = true;
          sw.working_set_mb = std::max(sw.working_set_mb, build.mb * 2.0);
        }
        break;
      }
      case OpType::kScriptTransform: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = in.rows * sel(op);
        out.mb = in.mb * sel(op);
        // UDFs pay pipe + interpreter overhead per row; dominated by CPU.
        stages[out.stage].cpu_ops += in.rows * op.cpu_per_row;
        break;
      }
      case OpType::kMlIteration: {
        const OpOutput& in = outs[op.inputs[0]];
        // Training caches the input and makes `iterations` passes, each
        // ending in a small model-aggregation shuffle.
        stages[in.stage].shuffle_write_mb += in.mb;
        out.stage = new_stage();
        out.rows = in.rows;
        out.mb = in.mb;
        StageProfile& sw = stages[out.stage];
        sw.shuffle_read_mb += in.mb;
        sw.cpu_ops += in.rows * op.cpu_per_row * op.iterations;
        sw.shuffle_write_mb += 8.0 * op.iterations;
        sw.memory_intensive = true;
        sw.working_set_mb = std::max(sw.working_set_mb, in.mb * 1.2);
        break;
      }
      case OpType::kLimit: {
        const OpOutput& in = outs[op.inputs[0]];
        out.stage = in.stage;
        out.rows = std::min(in.rows, 1000.0);
        out.mb = in.mb * (out.rows / std::max(1.0, in.rows));
        break;
      }
    }
  }
  return stages;
}

// Every per-stage cost term Run accumulates, from one stage's profile and
// its effective conf. `relaxed` keeps task/wave counts continuous for
// gradient-based per-stage solvers; the quantized path reproduces the
// original arithmetic bit for bit.
struct StageCost {
  double tasks = 1;
  double waves = 1;
  double concurrent = 1;
  double cpu_s = 0;
  double gc_s = 0;
  double fetch_wait_s = 0;
  double spill_mb = 0;
  double working_mb = 0;
  double write_mb_eff = 0;
  double read_mb_eff = 0;
  double stage_io_s = 0;
  double stage_net_s = 0;
  double total_net_mb = 0;
  double per_task_s = 0;
  double sched_s = 0;
  double stage_s = 0;
  double io_s = 0;
};

StageCost CostStage(const StageProfile& sw, const SparkConf& conf,
                    const EngineOptions& options, const Resources& res,
                    bool sql_sizing, bool relaxed) {
  const ClusterSpec& cluster = options.cluster;
  const double compress =
      conf.shuffle_compress >= 0.5 ? options.compress_ratio : 1.0;
  const double mem_per_task_mb = conf.executor_memory_gb * 1024.0 *
                                 conf.memory_fraction /
                                 std::max(1, res.cores_per_exec);

  StageCost c;
  if (relaxed) {
    const double sized =
        sw.split_tasks > 0
            ? sw.split_tasks
            : (sql_sizing ? conf.shuffle_partitions : conf.parallelism);
    c.tasks = std::max(1.0, sized);
    c.waves = std::max(1.0, c.tasks / res.total_cores);
    c.concurrent = std::min(c.tasks, static_cast<double>(res.total_cores));
  } else {
    int tasks;
    if (sw.split_tasks > 0) {
      tasks = sw.split_tasks;
    } else if (sql_sizing) {
      tasks = static_cast<int>(conf.shuffle_partitions);
    } else {
      tasks = static_cast<int>(conf.parallelism);
    }
    tasks = std::max(1, tasks);
    c.tasks = tasks;
    c.waves = (tasks + res.total_cores - 1) / res.total_cores;
    c.concurrent = std::min(tasks, res.total_cores);
  }
  const double tasks = c.tasks;
  // Disk and network are shared per node: a stage cannot move bytes faster
  // than the aggregate bandwidth of the nodes it runs on, no matter how
  // many cores it holds. These terms are therefore costed at stage
  // granularity rather than wave-quantized.
  const double agg_disk_bw = res.nodes_used * cluster.disk_bw_mb_per_s;
  const double agg_net_bw = res.nodes_used * cluster.network_bw_mb_per_s;

  // CPU: base ops plus compression work on shuffled bytes.
  double cpu_ops = sw.cpu_ops;
  if (compress < 1.0) {
    cpu_ops += (sw.shuffle_write_mb + sw.shuffle_read_mb) *
               options.compress_ops_per_mb;
  }
  c.cpu_s =
      cpu_ops / tasks / (options.ops_per_core_per_s * cluster.core_speed);

  // Memory pressure: spill when the per-task working set exceeds the
  // execution-memory share; GC pressure when heap occupancy runs high.
  c.working_mb = (sw.memory_intensive
                      ? std::max(sw.working_set_mb,
                                 (sw.input_read_mb + sw.shuffle_read_mb))
                      : (sw.input_read_mb + sw.shuffle_read_mb)) /
                 tasks * options.memory_expansion;
  if (sw.memory_intensive && c.working_mb > mem_per_task_mb) {
    c.spill_mb = (c.working_mb - mem_per_task_mb) * 2.0;  // write + re-read
  }
  const double heap_mb = conf.executor_memory_gb * 1024.0;
  const double occupancy =
      c.working_mb * res.cores_per_exec / std::max(1.0, heap_mb);
  const double gc_frac = 0.02 + 0.4 * std::max(0.0, occupancy - 0.75);
  c.gc_s = c.cpu_s * gc_frac;

  // Disk IO: input reads, shuffle writes (with bypass-merge discount when
  // the partition count is small enough to skip the merge sort), spill.
  c.write_mb_eff = sw.shuffle_write_mb * compress;
  c.read_mb_eff = sw.shuffle_read_mb * compress;
  const double bypass =
      conf.shuffle_partitions <= conf.bypass_merge_threshold ? 0.7 : 1.0;
  const double total_io_mb =
      sw.input_read_mb + c.write_mb_eff * bypass + c.spill_mb * tasks;
  c.stage_io_s = total_io_mb / agg_disk_bw;

  // Network: shuffle fetches plus broadcasts; fetch-wait from the number of
  // in-flight windows needed to pull one task's shuffle input.
  c.total_net_mb = c.read_mb_eff + sw.network_extra_mb;
  c.stage_net_s = c.total_net_mb / agg_net_bw;
  const double rounds =
      (c.read_mb_eff / tasks) / std::max(1.0, conf.max_size_in_flight_mb);
  c.fetch_wait_s = std::max(0.0, rounds - 1.0) * 0.01;

  c.per_task_s = c.cpu_s + c.gc_s + c.fetch_wait_s + options.task_overhead_s;
  c.sched_s = tasks / options.scheduler_tasks_per_s;
  c.stage_s = c.waves * c.per_task_s + c.stage_io_s + c.stage_net_s + c.sched_s;
  c.io_s = c.stage_io_s * c.concurrent / tasks;
  return c;
}

// Folds one costed stage into the running job totals.
void Accumulate(const StageProfile& sw, const StageCost& c, RuntimeMetrics* m,
                double* latency, double* busy_core_seconds) {
  *latency += c.stage_s;
  *busy_core_seconds +=
      c.per_task_s * c.tasks +
      (c.stage_io_s + c.stage_net_s) * std::min(c.tasks, c.concurrent);
  m->cpu_time_s += (c.cpu_s + c.gc_s) * c.tasks;
  m->bytes_read_mb += sw.input_read_mb;
  m->bytes_written_mb += c.write_mb_eff + c.spill_mb * c.tasks / 2.0;
  m->shuffle_write_mb += c.write_mb_eff;
  m->shuffle_read_mb += c.read_mb_eff;
  m->fetch_wait_s += c.fetch_wait_s * c.tasks;
  m->gc_time_s += c.gc_s * c.tasks;
  m->spill_mb += c.spill_mb * c.tasks;
  m->peak_task_memory_mb = std::max(m->peak_task_memory_mb, c.working_mb);
  m->num_tasks += c.tasks;
  m->scheduling_delay_s += c.sched_s;
  m->io_wait_s += c.io_s * c.tasks;
  m->network_mb += c.total_net_mb;
}

}  // namespace

SparkEngine::SparkEngine(EngineOptions options) : options_(options) {}

RuntimeMetrics SparkEngine::Run(const Dataflow& flow,
                                const Vector& conf_raw) const {
  static const StageConfOverlay& empty = *new StageConfOverlay();
  return RunInternal(flow, conf_raw, empty, nullptr, nullptr);
}

RuntimeMetrics SparkEngine::RunWithOverlay(
    const Dataflow& flow, const Vector& conf_raw,
    const StageConfOverlay& overlay) const {
  UDAO_CHECK(overlay.Validate(BatchParamSpace(), conf_raw).ok());
  return RunInternal(flow, conf_raw, overlay, nullptr, nullptr);
}

AdaptiveRunResult SparkEngine::RunAdaptive(
    const Dataflow& flow, const Vector& conf_raw,
    const AdaptiveRunOptions& options) const {
  UDAO_CHECK(options.overlay.Validate(BatchParamSpace(), conf_raw).ok());
  AdaptiveRunResult result;
  result.metrics =
      RunInternal(flow, conf_raw, options.overlay, &options, &result);
  return result;
}

RuntimeMetrics SparkEngine::RunInternal(const Dataflow& flow,
                                        const Vector& conf_raw,
                                        const StageConfOverlay& overlay,
                                        const AdaptiveRunOptions* adaptive,
                                        AdaptiveRunResult* adaptive_out) const {
  UDAO_CHECK(flow.Validate().ok());
  UDAO_CHECK(BatchParamSpace().Validate(conf_raw).ok());
  const SparkConf conf = SparkConf::FromRaw(conf_raw);
  const Resources base_res = DeriveResources(conf, options_.cluster);

  // Structure comes from the base conf; an executed run observes the
  // runtime-true selectivities.
  const std::vector<StageProfile> stages =
      WalkPlan(flow, conf, base_res.executors, /*planner_estimates=*/false);
  const int num_stages = static_cast<int>(stages.size());
  const bool sql_sizing = flow.workload_class() != WorkloadClass::kMl;

  // The overlay actually executed; adaptive boundaries refine it in place.
  StageConfOverlay live = overlay;

  RuntimeMetrics m;
  m.num_stages = num_stages;
  double latency = options_.job_overhead_s;
  double busy_core_seconds = 0;

  for (int s = 0; s < num_stages; ++s) {
    if (adaptive != nullptr && s > 0 && adaptive->resolver &&
        adaptive_out->boundaries < adaptive->max_boundaries) {
      RuntimeObservation obs;
      obs.next_stage = s;
      obs.num_stages = num_stages;
      obs.elapsed_s = latency;
      obs.completed.assign(stages.begin(), stages.begin() + s);
      obs.remaining.assign(stages.begin() + s, stages.end());
      const Deadline budget = Deadline::AfterMs(adaptive->resolve_budget_ms);
      const auto t0 = std::chrono::steady_clock::now();
      StatusOr<StageConfOverlay> resolved = adaptive->resolver(obs, budget);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      ++adaptive_out->boundaries;
      adaptive_out->resolve_ms.push_back(ms);
      UDAO_METRIC_COUNTER_ADD("udao.engine.stage_resolves", 1);
      UDAO_METRIC_OBSERVE("udao.engine.stage_resolve_ms", ms);
      const bool usable =
          resolved.ok() && !budget.IsExpired() &&
          resolved.value().Validate(BatchParamSpace(), conf_raw).ok();
      if (!usable) {
        // Safe-online-tuning contract: a failed, late, or invalid re-solve
        // keeps the incumbent config; the stage runs regardless.
        ++adaptive_out->fallbacks;
        UDAO_METRIC_COUNTER_ADD("udao.engine.stage_resolve_fallbacks", 1);
      } else {
        // Completed stages are immutable: adopt entries for the rest only.
        for (const auto& [stage_id, knobs] : resolved.value().overrides) {
          if (stage_id < s) continue;
          for (const auto& [knob, value] : knobs) {
            live.Set(stage_id, knob, value);
          }
        }
        ++adaptive_out->applied;
        UDAO_METRIC_COUNTER_ADD("udao.engine.stage_resolve_applied", 1);
      }
    }

    const StageProfile& sw = stages[s];
    StageCost c;
    if (live.overrides.find(s) != live.overrides.end()) {
      const SparkConf sconf = SparkConf::FromRaw(live.Resolve(s, conf_raw));
      const Resources sres = DeriveResources(sconf, options_.cluster);
      c = CostStage(sw, sconf, options_, sres, sql_sizing, /*relaxed=*/false);
    } else {
      c = CostStage(sw, conf, options_, base_res, sql_sizing,
                    /*relaxed=*/false);
    }
    Accumulate(sw, c, &m, &latency, &busy_core_seconds);
  }

  // Deterministic multiplicative noise models run-to-run variance.
  if (options_.noise_stddev > 0) {
    uint64_t seed = NoiseSeed(flow.name(), conf_raw);
    if (!live.empty()) seed = MixOverlaySeed(seed, live, num_stages);
    Rng noise(seed);
    latency *= std::exp(noise.Gaussian(0.0, options_.noise_stddev));
  }

  m.latency_s = latency;
  m.cpu_utilization = std::min(
      1.0,
      busy_core_seconds / std::max(1e-9, latency * base_res.total_cores));
  // Simulated-run accounting: trace collection and deployed-measurement
  // loops both funnel through here, so this counter is the bench reports'
  // "how many cluster runs did this experiment cost" number.
  UDAO_METRIC_COUNTER_ADD("udao.spark.sim_runs", 1);
  UDAO_METRIC_OBSERVE("udao.spark.sim_latency_s", latency);
  if (adaptive_out != nullptr) adaptive_out->final_overlay = std::move(live);
  return m;
}

std::vector<StageProfile> SparkEngine::PlanStages(
    const Dataflow& flow, const Vector& conf_raw,
    bool planner_estimates) const {
  UDAO_CHECK(flow.Validate().ok());
  UDAO_CHECK(BatchParamSpace().Validate(conf_raw).ok());
  const SparkConf conf = SparkConf::FromRaw(conf_raw);
  const Resources res = DeriveResources(conf, options_.cluster);
  return WalkPlan(flow, conf, res.executors, planner_estimates);
}

double SparkEngine::StageSeconds(const StageProfile& stage,
                                 const SparkConf& conf,
                                 WorkloadClass wclass) const {
  const Resources res = DeriveResources(conf, options_.cluster);
  return CostStage(stage, conf, options_, res, wclass != WorkloadClass::kMl,
                   /*relaxed=*/false)
      .stage_s;
}

double SparkEngine::StageSecondsRelaxed(const StageProfile& stage,
                                        const SparkConf& conf,
                                        WorkloadClass wclass) const {
  const Resources res = DeriveResources(conf, options_.cluster);
  return CostStage(stage, conf, options_, res, wclass != WorkloadClass::kMl,
                   /*relaxed=*/true)
      .stage_s;
}

double SparkEngine::Latency(const Dataflow& flow,
                            const Vector& conf_raw) const {
  return Run(flow, conf_raw).latency_s;
}

double CostInCores(const Vector& batch_conf_raw) {
  const SparkConf conf = SparkConf::FromRaw(batch_conf_raw);
  return conf.TotalCores();
}

double CostInCpuHours(double latency_s, const Vector& batch_conf_raw) {
  return latency_s * CostInCores(batch_conf_raw) / 3600.0;
}

double Cost2(double latency_s, const RuntimeMetrics& metrics,
             const Vector& batch_conf_raw) {
  // c1 = 48 millidollar / CPU-hour, c2 = 0.4 millidollar / 1000 IO requests,
  // one IO request per 4 MB moved (storage + shuffle), in the spirit of
  // serverless-DB pricing.
  const double cpu_hours = CostInCpuHours(latency_s, batch_conf_raw);
  const double io_requests =
      (metrics.bytes_read_mb + metrics.bytes_written_mb) / 4.0;
  return 48.0 * cpu_hours + 0.4 * io_requests / 1000.0;
}

}  // namespace udao
