#include "workload/tpcxbb.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace udao {

namespace {

// Per-template characteristics. Rows are in millions at scale 1.0 (100 GB).
struct TemplateSpec {
  WorkloadClass wclass;
  // Plan shape; see builders below.
  enum Shape {
    kScanAggSort,   // scan -> filter -> project -> exchange -> agg -> sort
    kJoinAgg,       // two scans -> join -> exchange -> agg
    kJoin3,         // three scans -> join -> join -> agg
    kUdfPipeline,   // Fig. 1(b): scan .. exchange -> sort -> UDF -> agg
    kUdfJoin,       // join feeding a UDF
    kMlTrain,       // scan -> filter -> project -> iterative training
  } shape;
  double rows_m;       // main table rows (millions)
  double row_bytes;    // main table row width
  double selectivity;  // base filter selectivity
  double udf_cost;     // cpu_per_row of UDF / ML operators
  int iterations;      // ML passes
};

// Template table; ids 1-14 SQL, 15-25 SQL+UDF, 26-30 ML, matching the
// TPCx-BB composition. Sizes are spread to give ~2 orders of magnitude in
// latency across the benchmark, as the paper reports. Template 2 (the
// paper's running example Q2) and template 30 are the long-running jobs.
const TemplateSpec kTemplates[kNumTpcxbbTemplates] = {
    // --- SQL (1-14)
    {WorkloadClass::kSql, TemplateSpec::kScanAggSort, 120, 120, 0.30, 1, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 900, 160, 0.45, 55,
     1},  // Q2: heavy UDF pipeline
    {WorkloadClass::kSql, TemplateSpec::kJoinAgg, 350, 140, 0.25, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoin3, 260, 130, 0.20, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kScanAggSort, 45, 100, 0.50, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoinAgg, 150, 110, 0.35, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kScanAggSort, 25, 90, 0.60, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoin3, 180, 150, 0.15, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoinAgg, 80, 120, 0.40, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kScanAggSort, 200, 130, 0.20, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoin3, 90, 110, 0.30, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoinAgg, 60, 100, 0.45, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kScanAggSort, 140, 140, 0.25, 1, 1},
    {WorkloadClass::kSql, TemplateSpec::kJoinAgg, 110, 120, 0.35, 1, 1},
    // --- SQL + UDF (15-25)
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 70, 130, 0.40, 10, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfJoin, 130, 120, 0.30, 14, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 40, 110, 0.50, 8, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfJoin, 90, 140, 0.25, 18, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 160, 150, 0.35, 12,
     1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfJoin, 55, 100, 0.45, 9, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 100, 120, 0.30, 16,
     1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfJoin, 75, 130, 0.40, 11, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 30, 90, 0.55, 7, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfJoin, 120, 110, 0.20, 13, 1},
    {WorkloadClass::kSqlUdf, TemplateSpec::kUdfPipeline, 85, 140, 0.35, 15,
     1},
    // --- ML (26-30)
    {WorkloadClass::kMl, TemplateSpec::kMlTrain, 50, 200, 0.80, 6, 12},
    {WorkloadClass::kMl, TemplateSpec::kMlTrain, 90, 180, 0.70, 8, 8},
    {WorkloadClass::kMl, TemplateSpec::kMlTrain, 35, 160, 0.90, 5, 20},
    {WorkloadClass::kMl, TemplateSpec::kMlTrain, 70, 220, 0.75, 7, 10},
    {WorkloadClass::kMl, TemplateSpec::kMlTrain, 300, 240, 0.85, 14, 22},
};

double ClampSel(double s) { return std::clamp(s, 0.02, 0.95); }

}  // namespace

Dataflow MakeTpcxbbTemplate(int template_id, double scale, double sel_shift) {
  UDAO_CHECK(template_id >= 1 && template_id <= kNumTpcxbbTemplates);
  const TemplateSpec& spec = kTemplates[template_id - 1];
  const double rows = spec.rows_m * 1e6 * scale;
  const double sel = ClampSel(spec.selectivity * (1.0 + sel_shift));
  Dataflow flow("tpcxbb_t" + std::to_string(template_id), spec.wclass);

  switch (spec.shape) {
    case TemplateSpec::kScanAggSort: {
      int scan = flow.AddScan(rows, spec.row_bytes);
      int filter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {scan}, .selectivity = sel});
      int project = flow.AddOp(
          {.type = OpType::kProject, .inputs = {filter}, .width_ratio = 0.6});
      int exchange =
          flow.AddOp({.type = OpType::kExchange, .inputs = {project}});
      int agg = flow.AddOp({.type = OpType::kHashAggregate,
                            .inputs = {exchange},
                            .selectivity = 0.05});
      int sort = flow.AddOp({.type = OpType::kSort, .inputs = {agg}});
      flow.AddOp({.type = OpType::kLimit, .inputs = {sort}});
      break;
    }
    case TemplateSpec::kJoinAgg: {
      int fact = flow.AddScan(rows, spec.row_bytes);
      int dim = flow.AddScan(rows * 0.02, 80);
      int ffilter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {fact}, .selectivity = sel});
      int join = flow.AddOp({.type = OpType::kJoin,
                             .inputs = {dim, ffilter},
                             .selectivity = 0.9});
      int exchange = flow.AddOp({.type = OpType::kExchange, .inputs = {join}});
      flow.AddOp({.type = OpType::kHashAggregate,
                  .inputs = {exchange},
                  .selectivity = 0.03});
      break;
    }
    case TemplateSpec::kJoin3: {
      int fact = flow.AddScan(rows, spec.row_bytes);
      int mid = flow.AddScan(rows * 0.3, 100);
      int dim = flow.AddScan(rows * 0.01, 70);
      int ffilter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {fact}, .selectivity = sel});
      int join1 = flow.AddOp({.type = OpType::kJoin,
                              .inputs = {mid, ffilter},
                              .selectivity = 0.7});
      int join2 = flow.AddOp(
          {.type = OpType::kJoin, .inputs = {dim, join1}, .selectivity = 0.8});
      int exchange =
          flow.AddOp({.type = OpType::kExchange, .inputs = {join2}});
      int agg = flow.AddOp({.type = OpType::kHashAggregate,
                            .inputs = {exchange},
                            .selectivity = 0.02});
      flow.AddOp({.type = OpType::kSort, .inputs = {agg}});
      break;
    }
    case TemplateSpec::kUdfPipeline: {
      // The paper's Fig. 1(b) plan for Q2: HiveTableScan -> Filter ->
      // Project -> Exchange -> Sort -> ScriptTransformation ->
      // HashAggregate -> ... -> CollectLimit.
      int scan = flow.AddScan(rows, spec.row_bytes);
      int filter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {scan}, .selectivity = sel});
      int project = flow.AddOp(
          {.type = OpType::kProject, .inputs = {filter}, .width_ratio = 0.7});
      int exchange =
          flow.AddOp({.type = OpType::kExchange, .inputs = {project}});
      int sort = flow.AddOp({.type = OpType::kSort, .inputs = {exchange}});
      int udf = flow.AddOp({.type = OpType::kScriptTransform,
                            .inputs = {sort},
                            .selectivity = 0.8,
                            .cpu_per_row = spec.udf_cost});
      int agg = flow.AddOp({.type = OpType::kHashAggregate,
                            .inputs = {udf},
                            .selectivity = 0.04});
      flow.AddOp({.type = OpType::kLimit, .inputs = {agg}});
      break;
    }
    case TemplateSpec::kUdfJoin: {
      int fact = flow.AddScan(rows, spec.row_bytes);
      int dim = flow.AddScan(rows * 0.05, 90);
      int filter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {fact}, .selectivity = sel});
      int join = flow.AddOp(
          {.type = OpType::kJoin, .inputs = {dim, filter}, .selectivity = 0.85});
      int udf = flow.AddOp({.type = OpType::kScriptTransform,
                            .inputs = {join},
                            .selectivity = 0.6,
                            .cpu_per_row = spec.udf_cost});
      int exchange = flow.AddOp({.type = OpType::kExchange, .inputs = {udf}});
      flow.AddOp({.type = OpType::kHashAggregate,
                  .inputs = {exchange},
                  .selectivity = 0.05});
      break;
    }
    case TemplateSpec::kMlTrain: {
      int scan = flow.AddScan(rows, spec.row_bytes);
      int filter = flow.AddOp(
          {.type = OpType::kFilter, .inputs = {scan}, .selectivity = sel});
      int project = flow.AddOp(
          {.type = OpType::kProject, .inputs = {filter}, .width_ratio = 0.5});
      flow.AddOp({.type = OpType::kMlIteration,
                  .inputs = {project},
                  .cpu_per_row = spec.udf_cost,
                  .iterations = spec.iterations});
      break;
    }
  }
  UDAO_CHECK(flow.Validate().ok());
  return flow;
}

std::vector<BatchWorkload> MakeTpcxbbWorkloads() {
  std::vector<BatchWorkload> workloads;
  workloads.reserve(kNumTpcxbbWorkloads);
  for (int k = 1; k <= kNumTpcxbbWorkloads; ++k) {
    workloads.push_back(MakeTpcxbbWorkload(k));
  }
  return workloads;
}

BatchWorkload MakeTpcxbbWorkload(int job_number) {
  UDAO_CHECK(job_number >= 1 && job_number <= kNumTpcxbbWorkloads);
  const int template_id = (job_number - 1) % kNumTpcxbbTemplates + 1;
  const int variant = (job_number - 1) / kNumTpcxbbTemplates;
  // Deterministic per-variant perturbation: scale in ~[0.5, 2.1],
  // selectivity shift in [-0.3, 0.3].
  const double scale = 0.5 * std::pow(1.2, variant) *
                       (1.0 + 0.07 * ((job_number * 7) % 5));
  const double sel_shift = -0.3 + 0.075 * ((job_number * 13) % 9);
  Dataflow flow = MakeTpcxbbTemplate(template_id, scale, sel_shift);
  // Give every workload a unique name so engine noise differs per workload.
  Dataflow named("tpcxbb_job" + std::to_string(job_number) + "_t" +
                     std::to_string(template_id),
                 flow.workload_class());
  for (const Operator& op : flow.ops()) {
    if (op.type == OpType::kScan) {
      named.AddScan(op.scan_rows, op.scan_row_bytes);
    } else {
      named.AddOp(op);
    }
  }
  return BatchWorkload{std::to_string(job_number), template_id, variant,
                       std::move(named)};
}

}  // namespace udao
