#ifndef UDAO_WORKLOAD_TPCXBB_H_
#define UDAO_WORKLOAD_TPCXBB_H_

#include <string>
#include <vector>

#include "spark/dataflow.h"

namespace udao {

/// One parameterized batch workload derived from a TPCx-BB-style template.
struct BatchWorkload {
  /// Paper-style workload id: "1".."258" (job 9 of the figures is id "9").
  std::string id;
  /// Template 1..30 (14 SQL, 11 SQL+UDF, 5 ML, as in TPCx-BB).
  int template_id = 1;
  /// Variant 0.. within the template (data-scale / selectivity variations).
  int variant = 0;
  Dataflow flow;
};

/// Builds one dataflow for template `template_id` (1..30) at data scale
/// `scale` (1.0 = the benchmark's 100 GB scale factor) with selectivity
/// variation `sel_shift` in [-0.5, 0.5].
///
/// The 30 templates mirror the TPCx-BB composition: templates 1-14 are SQL
/// (scan/join/aggregate pipelines), 15-25 mix SQL with UDFs
/// (ScriptTransformation operators; template 2's shape follows the paper's
/// Fig. 1(b) example), and 26-30 are ML tasks (iterative training).
Dataflow MakeTpcxbbTemplate(int template_id, double scale, double sel_shift);

/// The paper's full 258-workload batch benchmark: workload k (1-based) uses
/// template ((k-1) % 30) + 1 at variant (k-1) / 30, giving every template 8-9
/// parameterized instances. Deterministic.
std::vector<BatchWorkload> MakeTpcxbbWorkloads();

/// Convenience: workload by paper id ("9" -> job 9). CHECK-fails on bad ids.
BatchWorkload MakeTpcxbbWorkload(int job_number);

/// Total number of batch workloads (258).
constexpr int kNumTpcxbbWorkloads = 258;
/// Number of templates (30).
constexpr int kNumTpcxbbTemplates = 30;

}  // namespace udao

#endif  // UDAO_WORKLOAD_TPCXBB_H_
