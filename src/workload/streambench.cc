#include "workload/streambench.h"

#include <cmath>

#include "common/check.h"

namespace udao {

namespace {

// Click-stream analysis templates: sessionization, funnel analysis, top-K
// pages, ad-attribution UDF scoring, anomaly UDF, and streaming ML scoring.
struct StreamTemplateSpec {
  const char* name;
  double map_ops;
  double reduce_ops;
  double bytes;
  double shuffle_fraction;
  bool memory_intensive;
};

const StreamTemplateSpec kStreamTemplates[kNumStreamTemplates] = {
    {"sessionize", 3.0, 4.0, 220, 0.50, true},
    {"funnel", 2.5, 3.0, 180, 0.35, true},
    {"topk_pages", 2.0, 2.5, 150, 0.25, false},
    {"ad_attribution_udf", 8.0, 3.5, 260, 0.40, true},
    {"anomaly_udf", 10.0, 2.0, 200, 0.20, false},
    {"ml_scoring", 14.0, 6.0, 300, 0.30, true},
};

}  // namespace

StreamWorkloadProfile MakeStreamTemplate(int template_id, double intensity) {
  UDAO_CHECK(template_id >= 1 && template_id <= kNumStreamTemplates);
  const StreamTemplateSpec& spec = kStreamTemplates[template_id - 1];
  StreamWorkloadProfile profile;
  profile.name = spec.name;
  profile.map_ops_per_record = spec.map_ops * intensity;
  profile.reduce_ops_per_record = spec.reduce_ops * intensity;
  profile.bytes_per_record = spec.bytes * (0.7 + 0.3 * intensity);
  profile.shuffle_fraction = std::min(0.9, spec.shuffle_fraction * intensity);
  profile.memory_intensive = spec.memory_intensive;
  return profile;
}

std::vector<StreamWorkload> MakeStreamWorkloads() {
  std::vector<StreamWorkload> workloads;
  workloads.reserve(kNumStreamWorkloads);
  for (int k = 1; k <= kNumStreamWorkloads; ++k) {
    workloads.push_back(MakeStreamWorkload(k));
  }
  return workloads;
}

StreamWorkload MakeStreamWorkload(int job_number) {
  UDAO_CHECK(job_number >= 1 && job_number <= kNumStreamWorkloads);
  const int template_id = (job_number - 1) % kNumStreamTemplates + 1;
  const int variant = (job_number - 1) / kNumStreamTemplates;
  // Intensity spreads ~[0.6, 2.2] deterministically across variants.
  const double intensity =
      0.6 + 0.15 * variant + 0.05 * ((job_number * 11) % 4);
  StreamWorkloadProfile profile = MakeStreamTemplate(template_id, intensity);
  profile.name += "_job" + std::to_string(job_number);
  return StreamWorkload{std::to_string(job_number), template_id, variant,
                        std::move(profile)};
}

}  // namespace udao
