#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/status.h"
#include "model/gp_model.h"

namespace udao {

namespace {

// Curated "Spark best practice" presets in unit-cube coordinates, spanning
// small, balanced, and large allocations with sane shuffle settings.
const std::vector<Vector>& HeuristicUnitPresets(int dim) {
  static const std::vector<Vector>& presets = *new std::vector<Vector>{
      {0.1, 0.1, 0.2, 0.1, 0.3, 0.2, 1.0, 0.4, 0.3, 0.3, 0.2, 0.1},
      {0.3, 0.3, 0.4, 0.3, 0.4, 0.3, 1.0, 0.4, 0.3, 0.3, 0.2, 0.3},
      {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 1.0, 0.5, 0.5, 0.5, 0.5, 0.5},
      {0.7, 0.8, 0.6, 0.7, 0.6, 0.5, 1.0, 0.5, 0.5, 0.5, 0.5, 0.7},
      {0.9, 1.0, 0.8, 0.9, 0.7, 0.6, 1.0, 0.6, 0.5, 0.5, 0.5, 0.9},
  };
  // Presets are authored for the 12-knob batch space; pad or trim for other
  // arities so the strategy degrades gracefully.
  static std::vector<Vector>* adjusted = nullptr;
  if (dim == 12) return presets;
  if (adjusted == nullptr || (!adjusted->empty() &&
                              static_cast<int>((*adjusted)[0].size()) != dim)) {
    adjusted = new std::vector<Vector>();
    for (const Vector& p : presets) {
      Vector v(dim, 0.5);
      for (int i = 0; i < dim && i < static_cast<int>(p.size()); ++i) {
        v[i] = p[i];
      }
      adjusted->push_back(v);
    }
  }
  return *adjusted;
}

// Standard normal density / cdf for expected improvement.
double NormPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}
double NormCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

std::vector<Vector> SampleConfigs(const ParamSpace& space, int n,
                                  SamplingStrategy strategy, Rng* rng) {
  UDAO_CHECK_GT(n, 0);
  std::vector<Vector> configs;
  configs.reserve(n);
  switch (strategy) {
    case SamplingStrategy::kLatinHypercube: {
      for (const Vector& unit : LatinHypercube(n, space.NumParams(), rng)) {
        configs.push_back(space.FromUnit(unit));
      }
      break;
    }
    case SamplingStrategy::kHeuristic: {
      configs.push_back(space.Defaults());
      for (const Vector& preset : HeuristicUnitPresets(space.NumParams())) {
        if (static_cast<int>(configs.size()) >= n) break;
        configs.push_back(space.FromUnit(preset));
      }
      // One-knob-at-a-time sweeps around the defaults.
      const Vector defaults = space.Defaults();
      int knob = 0;
      while (static_cast<int>(configs.size()) < n) {
        Vector unit(space.NumParams(), 0.0);
        for (int i = 0; i < space.NumParams(); ++i) {
          const ParamSpec& s = space.spec(i);
          const double span = s.hi - s.lo;
          unit[i] = span > 0 ? (defaults[i] - s.lo) / span : 0.0;
        }
        unit[knob % space.NumParams()] = rng->Uniform();
        configs.push_back(space.FromUnit(unit));
        ++knob;
      }
      break;
    }
  }
  return configs;
}

std::vector<Vector> BoGuidedConfigs(
    const ParamSpace& space, int n,
    const std::function<double(const Vector&)>& latency_fn, Rng* rng) {
  UDAO_CHECK_GT(n, 0);
  const int seed_count = std::max(4, n / 4);
  std::vector<Vector> configs =
      SampleConfigs(space, std::min(seed_count, n),
                    SamplingStrategy::kLatinHypercube, rng);
  std::vector<Vector> encoded;
  Vector latencies;
  for (const Vector& raw : configs) {
    encoded.push_back(space.Encode(raw));
    latencies.push_back(latency_fn(raw));
  }

  GpConfig gp_config;
  gp_config.hyper_opt_steps = 15;
  while (static_cast<int>(configs.size()) < n) {
    auto gp = GpModel::Fit(Matrix::FromRows(encoded), latencies, gp_config);
    Vector best_raw = space.Sample(rng);
    if (gp.ok()) {
      // Maximize expected improvement over a random candidate pool.
      const double y_best =
          *std::min_element(latencies.begin(), latencies.end());
      double best_ei = -1.0;
      for (int c = 0; c < 64; ++c) {
        Vector raw = space.Sample(rng);
        double mean = 0.0;
        double stddev = 0.0;
        (*gp)->PredictWithUncertainty(space.Encode(raw), &mean, &stddev);
        double ei = 0.0;
        if (stddev > 1e-12) {
          const double z = (y_best - mean) / stddev;
          ei = stddev * (z * NormCdf(z) + NormPdf(z));
        }
        if (ei > best_ei) {
          best_ei = ei;
          best_raw = raw;
        }
      }
    }
    configs.push_back(best_raw);
    encoded.push_back(space.Encode(best_raw));
    latencies.push_back(latency_fn(best_raw));
  }
  return configs;
}

std::vector<TraceRecord> CollectBatchTraces(const SparkEngine& engine,
                                            const BatchWorkload& workload,
                                            const std::vector<Vector>& configs,
                                            ModelServer* server) {
  const ParamSpace& space = BatchParamSpace();
  std::vector<TraceRecord> traces;
  traces.reserve(configs.size());
  for (const Vector& raw : configs) {
    RuntimeMetrics metrics = engine.Run(workload.flow, raw);
    TraceRecord trace{workload.id, raw, metrics};
    traces.push_back(trace);
    if (server != nullptr) {
      const Vector enc = space.Encode(raw);
      // Generated traces are well-formed by construction; a rejection here
      // is a bug in the generator, so crash loudly.
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kLatency, enc,
                                   metrics.latency_s));
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kCostCores, enc,
                                   CostInCores(raw)));
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kCostCpuHour, enc,
                                   CostInCpuHours(metrics.latency_s, raw)));
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kCost2, enc,
                                   Cost2(metrics.latency_s, metrics, raw)));
      UDAO_CHECK_OK(server->IngestMetrics(workload.id, metrics));
    }
  }
  return traces;
}

std::vector<TraceRecord> CollectStreamTraces(
    const StreamEngine& engine, const StreamWorkload& workload,
    const std::vector<Vector>& configs, ModelServer* server) {
  const ParamSpace& space = StreamParamSpace();
  std::vector<TraceRecord> traces;
  traces.reserve(configs.size());
  for (const Vector& raw : configs) {
    StreamResult result = engine.Run(workload.profile, raw);
    TraceRecord trace{workload.id, raw, result.metrics};
    traces.push_back(trace);
    if (server != nullptr) {
      const Vector enc = space.Encode(raw);
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kLatency, enc,
                                   result.record_latency_s));
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kThroughput, enc,
                                   result.throughput_krps));
      UDAO_CHECK_OK(server->Ingest(workload.id, objectives::kCostCores, enc,
                                   StreamConf::FromRaw(raw).TotalCores()));
      UDAO_CHECK_OK(server->IngestMetrics(workload.id, result.metrics));
    }
  }
  return traces;
}

}  // namespace udao
