#ifndef UDAO_WORKLOAD_TRACE_GEN_H_
#define UDAO_WORKLOAD_TRACE_GEN_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "model/model_server.h"
#include "spark/conf.h"
#include "spark/engine.h"
#include "spark/streaming.h"
#include "workload/streambench.h"
#include "workload/tpcxbb.h"

namespace udao {

/// Canonical objective names used across the model server, the MOO layer and
/// the benchmarks.
namespace objectives {
inline constexpr char kLatency[] = "latency";
inline constexpr char kThroughput[] = "throughput";
inline constexpr char kCostCores[] = "cost_cores";
inline constexpr char kCostCpuHour[] = "cost_cpu_hour";
inline constexpr char kCost2[] = "cost2";
}  // namespace objectives

/// How training configurations are drawn (Section V "Training Data
/// Collection").
enum class SamplingStrategy {
  /// Space-filling Latin-hypercube sample.
  kLatinHypercube,
  /// Spark best-practice heuristics: the default config, curated presets
  /// (small / balanced / large allocations), and one-knob-at-a-time sweeps
  /// around the defaults.
  kHeuristic,
};

/// Draws `n` raw configurations from `space` with the given strategy.
std::vector<Vector> SampleConfigs(const ParamSpace& space, int n,
                                  SamplingStrategy strategy, Rng* rng);

/// Bayesian-optimization-guided sampling (the paper's second offline
/// strategy): seeds with an LHS batch, then repeatedly fits a GP to observed
/// latencies and picks the candidate maximizing expected improvement, so
/// sampling concentrates where latency is likely minimized.
std::vector<Vector> BoGuidedConfigs(
    const ParamSpace& space, int n,
    const std::function<double(const Vector&)>& latency_fn, Rng* rng);

/// Runs `workload` under every configuration and ingests per-objective traces
/// (latency, cost_cores, cost_cpu_hour, cost2) plus runtime metrics into the
/// model server. Returns the collected trace records.
std::vector<TraceRecord> CollectBatchTraces(const SparkEngine& engine,
                                            const BatchWorkload& workload,
                                            const std::vector<Vector>& configs,
                                            ModelServer* server);

/// Streaming counterpart: ingests latency, throughput and cost_cores.
std::vector<TraceRecord> CollectStreamTraces(
    const StreamEngine& engine, const StreamWorkload& workload,
    const std::vector<Vector>& configs, ModelServer* server);

}  // namespace udao

#endif  // UDAO_WORKLOAD_TRACE_GEN_H_
