#ifndef UDAO_WORKLOAD_STREAMBENCH_H_
#define UDAO_WORKLOAD_STREAMBENCH_H_

#include <string>
#include <vector>

#include "spark/streaming.h"

namespace udao {

/// One parameterized streaming workload from the click-stream benchmark
/// (Section VI "Streaming Workloads": 5 SQL+UDF templates and 1 ML template,
/// parameterized into 63 workloads).
struct StreamWorkload {
  /// Paper-style id: "1".."63" (job 54/56 of the figures).
  std::string id;
  int template_id = 1;  ///< 1..6.
  int variant = 0;
  StreamWorkloadProfile profile;
};

/// Cost profile for streaming template `template_id` (1..6) at the given
/// per-variant intensity factor.
StreamWorkloadProfile MakeStreamTemplate(int template_id, double intensity);

/// All 63 streaming workloads: workload k uses template ((k-1) % 6) + 1 at
/// variant (k-1) / 6. Deterministic.
std::vector<StreamWorkload> MakeStreamWorkloads();

/// Workload by paper id; CHECK-fails on bad numbers.
StreamWorkload MakeStreamWorkload(int job_number);

constexpr int kNumStreamWorkloads = 63;
constexpr int kNumStreamTemplates = 6;

}  // namespace udao

#endif  // UDAO_WORKLOAD_STREAMBENCH_H_
