#include "moo/normal_constraints.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

MooRunResult RunNormalConstraints(const MooProblem& problem, int num_points,
                                  const NcConfig& config) {
  UDAO_CHECK_GT(num_points, 0);
  const auto t0 = Clock::now();
  const int k = problem.NumObjectives();
  MooRunResult result;
  MogdSolver solver(config.mogd);

  // Anchor points: per-objective minima.
  std::vector<CoResult> anchors;
  anchors.reserve(k);
  for (int j = 0; j < k; ++j) anchors.push_back(solver.Minimize(problem, j));

  // Normalization bounds from the anchors.
  Vector lo(k);
  Vector hi(k);
  for (int j = 0; j < k; ++j) {
    lo[j] = anchors[0].objectives[j];
    hi[j] = anchors[0].objectives[j];
    for (int a = 1; a < k; ++a) {
      lo[j] = std::min(lo[j], anchors[a].objectives[j]);
      hi[j] = std::max(hi[j], anchors[a].objectives[j]);
    }
    hi[j] = std::max(hi[j], lo[j] + 1e-9);
  }
  auto normalize = [&](const Vector& f) {
    Vector n(k);
    for (int j = 0; j < k; ++j) n[j] = (f[j] - lo[j]) / (hi[j] - lo[j]);
    return n;
  };

  // Normalized anchor positions (anchor j is ~e_j flipped: 0 in its own
  // objective, ~1 elsewhere).
  std::vector<Vector> anchors_n;
  anchors_n.reserve(k);
  for (const CoResult& a : anchors) anchors_n.push_back(normalize(a.objectives));

  std::vector<MooPoint> found;
  for (const CoResult& a : anchors) {
    found.push_back(MooPoint{a.objectives, a.x});
  }

  // Evenly spread points on the utopia hyperplane between anchors via convex
  // combinations, then solve the NNC subproblem for each.
  std::vector<Vector> barys;
  if (k == 2) {
    for (int i = 0; i < num_points; ++i) {
      const double t = num_points == 1 ? 0.5
                                       : static_cast<double>(i) /
                                             (num_points - 1);
      barys.push_back({1.0 - t, t});
    }
  } else {
    // Low-discrepancy spread over the simplex by normalizing Halton draws.
    for (const Vector& h : HaltonSequence(num_points, k)) {
      double sum = 0;
      Vector b(k);
      for (int j = 0; j < k; ++j) {
        b[j] = -std::log(std::max(1e-9, h[j]));
        sum += b[j];
      }
      for (double& v : b) v /= sum;
      barys.push_back(std::move(b));
    }
  }

  for (const Vector& bary : barys) {
    // Plane point Xp in normalized space.
    Vector xp(k, 0.0);
    for (int a = 0; a < k; ++a) {
      for (int j = 0; j < k; ++j) xp[j] += bary[a] * anchors_n[a][j];
    }
    // NNC constraints: (F~ - Xp) . (anchor_k~ - anchor_a~) <= 0 for a < k,
    // expressed over the raw (minimization-orientation) objectives.
    CoProblem co;
    co.target = k - 1;
    co.lower.assign(k, -1e12);
    co.upper.assign(k, 1e12);
    for (int j = 0; j < k; ++j) {
      co.lower[j] = lo[j] - 0.5 * (hi[j] - lo[j]);
      co.upper[j] = hi[j] + 0.5 * (hi[j] - lo[j]);
    }
    for (int a = 0; a < k - 1; ++a) {
      CoProblem::LinearConstraint lc;
      lc.normal.assign(k, 0.0);
      double offset = 0.0;
      for (int j = 0; j < k; ++j) {
        const double dir = anchors_n[k - 1][j] - anchors_n[a][j];
        const double scale = dir / (hi[j] - lo[j]);
        lc.normal[j] = scale;
        offset += scale * (lo[j] + xp[j] * (hi[j] - lo[j]));
      }
      lc.offset = offset;
      co.linear.push_back(std::move(lc));
    }
    std::optional<CoResult> solved = solver.SolveCo(problem, co);
    if (solved.has_value()) {
      found.push_back(MooPoint{solved->objectives, solved->x});
    }
    // NC delivers its set only at completion.
    result.history.push_back(MooSnapshot{SecondsSince(t0), 0, 100.0});
  }

  result.frontier = ParetoFilter(std::move(found));
  result.seconds_total = SecondsSince(t0);
  MooSnapshot final_snap;
  final_snap.seconds = result.seconds_total;
  final_snap.num_points = static_cast<int>(result.frontier.size());
  final_snap.uncertain_percent =
      config.metric_box.valid()
          ? UncertainSpacePercent(result.frontier, config.metric_box.utopia,
                                  config.metric_box.nadir)
          : 100.0;
  result.history.push_back(final_snap);
  return result;
}

}  // namespace udao
