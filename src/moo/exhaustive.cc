#include "moo/exhaustive.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace udao {

std::vector<Vector> ExhaustiveSolver::EnumerateEncoded(
    const MooProblem& problem) const {
  // Enumerate in raw-parameter space via a Halton sweep, then encode: the
  // sweep thereby respects integrality/categoricality of every knob.
  const ParamSpace& space = problem.space();
  std::vector<Vector> encoded;
  encoded.reserve(budget_);
  for (const Vector& unit : HaltonSequence(budget_, space.NumParams())) {
    encoded.push_back(space.Encode(space.FromUnit(unit)));
  }
  return encoded;
}

std::vector<MooPoint> ExhaustiveSolver::Frontier(
    const MooProblem& problem) const {
  std::vector<MooPoint> points;
  points.reserve(budget_);
  for (const Vector& x : EnumerateEncoded(problem)) {
    points.push_back(MooPoint{problem.Evaluate(x), x});
  }
  return ParetoFilter(std::move(points));
}

std::optional<CoResult> ExhaustiveSolver::SolveCo(const MooProblem& problem,
                                                  const CoProblem& co) const {
  const int k = problem.NumObjectives();
  UDAO_CHECK_EQ(static_cast<int>(co.lower.size()), k);
  UDAO_CHECK_EQ(static_cast<int>(co.upper.size()), k);
  std::optional<CoResult> best;
  for (const Vector& x : EnumerateEncoded(problem)) {
    const Vector f = problem.Evaluate(x);
    bool feasible = true;
    for (int j = 0; j < k && feasible; ++j) {
      feasible = f[j] >= co.lower[j] && f[j] <= co.upper[j];
    }
    for (const CoProblem::LinearConstraint& lc : co.linear) {
      if (!feasible) break;
      feasible = Dot(lc.normal, f) <= lc.offset;
    }
    if (!feasible) continue;
    if (!best.has_value() || f[co.target] < best->target_value) {
      best = CoResult{x, problem.space().Decode(x), f, f[co.target]};
    }
  }
  return best;
}

CoResult ExhaustiveSolver::Minimize(const MooProblem& problem,
                                    int target) const {
  CoResult best;
  best.target_value = std::numeric_limits<double>::infinity();
  for (const Vector& x : EnumerateEncoded(problem)) {
    const Vector f = problem.Evaluate(x);
    if (f[target] < best.target_value) {
      best = CoResult{x, problem.space().Decode(x), f, f[target]};
    }
  }
  UDAO_CHECK(std::isfinite(best.target_value));
  return best;
}

}  // namespace udao
