#include "moo/exhaustive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace udao {

namespace {

// The sweep is evaluated in fixed-size batches through the models' batched
// surface, so a DNN objective costs one fused GEMM per chunk instead of a
// matrix-vector product per candidate. PredictBatch is bitwise-equal to the
// scalar Predict path (the contract batch_eval_test pins for every model
// class), so the chunked sweep selects exactly the candidates the original
// per-point loop did. The chunk bounds peak memory and keeps activations
// cache-resident.
constexpr int kChunk = 1024;

}  // namespace

void ExhaustiveSolver::SweepBatched(
    const MooProblem& problem,
    const std::function<void(const Matrix& xb, const std::vector<Vector>& f,
                             int rows)>& visit) const {
  // Enumerate in raw-parameter space via a Halton sweep, then encode: the
  // sweep thereby respects integrality/categoricality of every knob. The
  // candidates stream straight into the chunk matrix through the
  // allocation-free HaltonPoint / FromUnitTo / EncodeTo forms -- at MINLP
  // budgets (hundreds of thousands of points) per-point Vector returns would
  // dominate the sweep.
  const ParamSpace& space = problem.space();
  const int k = problem.NumObjectives();
  const int np = space.NumParams();
  const int dim = space.EncodedDim();
  Matrix xb;
  std::vector<Vector> f(k);
  Vector unit(np);
  Vector raw(np);
  for (int start = 0; start < budget_; start += kChunk) {
    const int rows = std::min(kChunk, budget_ - start);
    xb.Resize(rows, dim);
    for (int r = 0; r < rows; ++r) {
      HaltonPoint(start + r, np, unit.data());
      space.FromUnitTo(unit.data(), raw.data());
      space.EncodeTo(raw.data(), xb.RowPtr(r));
    }
    for (int j = 0; j < k; ++j) problem.EvaluateOneBatch(j, xb, &f[j]);
    visit(xb, f, rows);
  }
}

std::vector<MooPoint> ExhaustiveSolver::Frontier(
    const MooProblem& problem) const {
  const int k = problem.NumObjectives();
  std::vector<MooPoint> points;
  points.reserve(budget_);
  SweepBatched(problem, [&](const Matrix& xb, const std::vector<Vector>& f,
                            int rows) {
    for (int r = 0; r < rows; ++r) {
      Vector fr(k);
      for (int j = 0; j < k; ++j) fr[j] = f[j][r];
      points.push_back(MooPoint{
          std::move(fr), Vector(xb.RowPtr(r), xb.RowPtr(r) + xb.cols())});
    }
  });
  return ParetoFilter(std::move(points));
}

std::optional<CoResult> ExhaustiveSolver::SolveCo(const MooProblem& problem,
                                                  const CoProblem& co) const {
  const int k = problem.NumObjectives();
  UDAO_CHECK_EQ(static_cast<int>(co.lower.size()), k);
  UDAO_CHECK_EQ(static_cast<int>(co.upper.size()), k);
  std::optional<CoResult> best;
  Vector fr(k);
  SweepBatched(problem, [&](const Matrix& xb, const std::vector<Vector>& f,
                            int rows) {
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < k; ++j) fr[j] = f[j][r];
      bool feasible = true;
      for (int j = 0; j < k && feasible; ++j) {
        feasible = fr[j] >= co.lower[j] && fr[j] <= co.upper[j];
      }
      for (const CoProblem::LinearConstraint& lc : co.linear) {
        if (!feasible) break;
        feasible = Dot(lc.normal, fr) <= lc.offset;
      }
      if (!feasible) continue;
      if (!best.has_value() || fr[co.target] < best->target_value) {
        const Vector x(xb.RowPtr(r), xb.RowPtr(r) + xb.cols());
        best = CoResult{x, problem.space().Decode(x), fr, fr[co.target]};
      }
    }
  });
  return best;
}

CoResult ExhaustiveSolver::Minimize(const MooProblem& problem,
                                    int target) const {
  const int k = problem.NumObjectives();
  CoResult best;
  best.target_value = std::numeric_limits<double>::infinity();
  Vector fr(k);
  SweepBatched(problem, [&](const Matrix& xb, const std::vector<Vector>& f,
                            int rows) {
    for (int r = 0; r < rows; ++r) {
      if (f[target][r] >= best.target_value) continue;
      for (int j = 0; j < k; ++j) fr[j] = f[j][r];
      const Vector x(xb.RowPtr(r), xb.RowPtr(r) + xb.cols());
      best = CoResult{x, problem.space().Decode(x), fr, fr[target]};
    }
  });
  UDAO_CHECK(std::isfinite(best.target_value));
  return best;
}

}  // namespace udao
