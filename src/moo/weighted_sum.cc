#include "moo/weighted_sum.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>

#include "common/check.h"
#include "common/random.h"
#include "nn/adam.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::vector<Vector> SimplexWeights(int n, int k) {
  UDAO_CHECK_GT(n, 0);
  UDAO_CHECK_GE(k, 2);
  std::vector<Vector> weights;
  if (k == 2) {
    for (int i = 0; i < n; ++i) {
      const double w = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
      weights.push_back({w, 1.0 - w});
    }
    return weights;
  }
  // k >= 3: lattice weights w = (a, b, ...) / m with sum m, densified until
  // at least n vectors exist, then evenly subsampled down to n.
  int m = 1;
  std::vector<Vector> lattice;
  while (static_cast<int>(lattice.size()) < n) {
    lattice.clear();
    std::function<void(Vector&, int, int)> build = [&](Vector& acc, int dim,
                                                       int remaining) {
      if (dim == k - 1) {
        acc.push_back(static_cast<double>(remaining) / m);
        lattice.push_back(acc);
        acc.pop_back();
        return;
      }
      for (int a = 0; a <= remaining; ++a) {
        acc.push_back(static_cast<double>(a) / m);
        build(acc, dim + 1, remaining - a);
        acc.pop_back();
      }
    };
    Vector acc;
    build(acc, 0, m);
    ++m;
  }
  const double stride = static_cast<double>(lattice.size()) / n;
  for (int i = 0; i < n; ++i) {
    weights.push_back(lattice[static_cast<size_t>(i * stride)]);
  }
  return weights;
}

MooRunResult RunWeightedSum(const MooProblem& problem, int num_points,
                            const WsConfig& config) {
  UDAO_CHECK_GT(num_points, 0);
  const auto t0 = Clock::now();
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();
  MooRunResult result;
  MogdSolver solver(config.mogd);

  // Per-objective ranges for normalizing the scalarization, from the k
  // single-objective optima.
  std::vector<CoResult> plans;
  plans.reserve(k);
  for (int j = 0; j < k; ++j) plans.push_back(solver.Minimize(problem, j));
  Vector lo(k);
  Vector hi(k);
  for (int j = 0; j < k; ++j) {
    lo[j] = plans[0].objectives[j];
    hi[j] = plans[0].objectives[j];
    for (int a = 1; a < k; ++a) {
      lo[j] = std::min(lo[j], plans[a].objectives[j]);
      hi[j] = std::max(hi[j], plans[a].objectives[j]);
    }
    hi[j] = std::max(hi[j], lo[j] + 1e-9);
  }

  std::vector<MooPoint> found;
  Rng rng(config.mogd.seed + 99);
  for (const Vector& w : SimplexWeights(num_points, k)) {
    // Multi-start Adam on the scalarized loss sum_j w_j F~_j.
    Vector best_x;
    double best_val = std::numeric_limits<double>::infinity();
    for (int start = 0; start < config.mogd.multistart; ++start) {
      Vector x(dim);
      if (start == 0) {
        std::fill(x.begin(), x.end(), 0.5);
      } else {
        for (double& v : x) v = rng.Uniform();
      }
      Adam adam(dim, AdamConfig{.learning_rate = config.mogd.learning_rate});
      for (int iter = 0; iter < config.mogd.max_iters; ++iter) {
        Vector grad(dim, 0.0);
        for (int j = 0; j < k; ++j) {
          if (w[j] == 0.0) continue;
          Vector gj = problem.Gradient(j, x);
          const double scale = w[j] / (hi[j] - lo[j]);
          for (int d = 0; d < dim; ++d) grad[d] += scale * gj[d];
        }
        adam.Step(&x, grad);
        for (double& v : x) v = std::min(1.0, std::max(0.0, v));
        double val = 0.0;
        const Vector f = problem.Evaluate(x);
        for (int j = 0; j < k; ++j) {
          val += w[j] * (f[j] - lo[j]) / (hi[j] - lo[j]);
        }
        if (val < best_val) {
          best_val = val;
          best_x = x;
        }
      }
    }
    found.push_back(MooPoint{problem.Evaluate(best_x), best_x});
    // WS has no partial frontier: intermediate snapshots stay at 100%.
    result.history.push_back(
        MooSnapshot{SecondsSince(t0), 0, 100.0});
  }

  result.frontier = ParetoFilter(std::move(found));
  result.seconds_total = SecondsSince(t0);
  MooSnapshot final_snap;
  final_snap.seconds = result.seconds_total;
  final_snap.num_points = static_cast<int>(result.frontier.size());
  final_snap.uncertain_percent =
      config.metric_box.valid()
          ? UncertainSpacePercent(result.frontier, config.metric_box.utopia,
                                  config.metric_box.nadir)
          : 100.0;
  result.history.push_back(final_snap);
  return result;
}

}  // namespace udao
