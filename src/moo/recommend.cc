#include "moo/recommend.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace udao {

namespace {

Vector Normalize(const Vector& f, const Vector& utopia, const Vector& nadir) {
  Vector n(f.size());
  for (size_t j = 0; j < f.size(); ++j) {
    const double span = std::max(1e-12, nadir[j] - utopia[j]);
    n[j] = (f[j] - utopia[j]) / span;
  }
  return n;
}

// Frontier anchors in 2D: left = min first objective, right = min second.
std::pair<const MooPoint*, const MooPoint*> Anchors2D(
    const std::vector<MooPoint>& frontier) {
  const MooPoint* left = &frontier[0];
  const MooPoint* right = &frontier[0];
  for (const MooPoint& p : frontier) {
    if (p.objectives[0] < left->objectives[0]) left = &p;
    if (p.objectives[1] < right->objectives[1]) right = &p;
  }
  return {left, right};
}

double SlopeBetween(const Vector& a, const Vector& b) {
  const double dx = b[0] - a[0];
  if (std::abs(dx) < 1e-12) return std::numeric_limits<double>::infinity();
  return std::abs((b[1] - a[1]) / dx);
}

// Strict lexicographic order on objective vectors: the deterministic,
// frontier-order-independent tie-break shared by the recommendation
// policies. Two distinct frontier points never share an objective vector
// (ParetoFilter / PF's AddPoint dedup), so ties in a policy score resolve
// totally regardless of iteration order.
bool LexLess(const Vector& a, const Vector& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// Knee ratio num/den over slopes in [0, +inf], totally ordered so that
// axis-aligned frontier segments compare instead of being skipped: an
// infinite numerator or zero denominator is maximally knee-like (+inf), a
// zero numerator or infinite denominator minimally (0), and the doubly
// degenerate combinations carry no signal and rank neutral (1).
double SlopeRatio(double num, double den) {
  const bool num_inf = std::isinf(num);
  const bool den_inf = std::isinf(den);
  if ((num_inf && den_inf) || (num == 0.0 && den == 0.0)) return 1.0;
  if (num_inf || den == 0.0) return std::numeric_limits<double>::infinity();
  if (den_inf || num == 0.0) return 0.0;
  return num / den;
}

}  // namespace

std::optional<MooPoint> UtopiaNearest(const std::vector<MooPoint>& frontier,
                                      const Vector& utopia,
                                      const Vector& nadir) {
  Vector weights(utopia.size(), 1.0 / utopia.size());
  return WeightedUtopiaNearest(frontier, utopia, nadir, weights);
}

std::optional<MooPoint> WeightedUtopiaNearest(
    const std::vector<MooPoint>& frontier, const Vector& utopia,
    const Vector& nadir, const Vector& weights) {
  if (frontier.empty()) return std::nullopt;
  UDAO_CHECK_EQ(weights.size(), utopia.size());
  const MooPoint* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const MooPoint& p : frontier) {
    UDAO_CHECK_EQ(p.objectives.size(), utopia.size());
    const Vector n = Normalize(p.objectives, utopia, nadir);
    double dist = 0.0;
    for (size_t j = 0; j < n.size(); ++j) {
      const double term = weights[j] * n[j];
      dist += term * term;
    }
    // Total, order-independent selection: distance first, lexicographic
    // objectives on exact ties -- so permuting (or densifying) the frontier
    // can never flip the recommendation between equal-distance points.
    if (best == nullptr || dist < best_dist ||
        (dist == best_dist && LexLess(p.objectives, best->objectives))) {
      best_dist = dist;
      best = &p;
    }
  }
  return *best;
}

Vector CombineWeights(const Vector& internal, const Vector& external) {
  UDAO_CHECK_EQ(internal.size(), external.size());
  Vector w(internal.size());
  double sum = 0.0;
  for (size_t j = 0; j < w.size(); ++j) {
    w[j] = internal[j] * external[j];
    sum += w[j];
  }
  if (sum <= 0.0) {
    std::fill(w.begin(), w.end(), 1.0 / w.size());
    return w;
  }
  for (double& v : w) v /= sum;
  return w;
}

Vector WorkloadAwareInternalWeights(double default_latency_s) {
  // Three workload classes by observed default-config latency: short jobs
  // favor cost (limit cores), long jobs favor latency (allocate cores).
  if (default_latency_s < 15.0) return {0.35, 0.65};
  if (default_latency_s < 60.0) return {0.5, 0.5};
  return {0.7, 0.3};
}

std::optional<MooPoint> SlopeMaximization(
    const std::vector<MooPoint>& frontier, SlopeSide side) {
  if (frontier.empty()) return std::nullopt;
  UDAO_CHECK_EQ(frontier[0].objectives.size(), 2u);
  auto [left, right] = Anchors2D(frontier);
  const MooPoint* ref = (side == SlopeSide::kLeft) ? left : right;
  const MooPoint* best = nullptr;
  double best_slope = -1.0;
  for (const MooPoint& p : frontier) {
    if (&p == ref) continue;
    const double s = SlopeBetween(ref->objectives, p.objectives);
    // Infinite slope (a vertical segment off the anchor) is the steepest
    // possible and must win; ties -- including inf vs inf -- break by
    // lexicographic objectives so the pick is frontier-order-independent.
    if (best == nullptr || s > best_slope ||
        (s == best_slope && LexLess(p.objectives, best->objectives))) {
      best_slope = s;
      best = &p;
    }
  }
  if (best == nullptr) return *ref;  // single-point frontier
  return *best;
}

std::optional<MooPoint> KneePoint(const std::vector<MooPoint>& frontier,
                                  SlopeSide side) {
  if (frontier.empty()) return std::nullopt;
  UDAO_CHECK_EQ(frontier[0].objectives.size(), 2u);
  auto [left, right] = Anchors2D(frontier);
  if (left == right) return *left;
  const MooPoint* best = nullptr;
  double best_ratio = -1.0;
  for (const MooPoint& p : frontier) {
    if (&p == left || &p == right) continue;
    const double s_left = SlopeBetween(left->objectives, p.objectives);
    const double s_right = SlopeBetween(right->objectives, p.objectives);
    // SlopeRatio totalizes the degenerate cases, so points on axis-aligned
    // segments compete instead of being silently excluded.
    const double ratio = (side == SlopeSide::kLeft)
                             ? SlopeRatio(s_left, s_right)
                             : SlopeRatio(s_right, s_left);
    if (best == nullptr || ratio > best_ratio ||
        (ratio == best_ratio && LexLess(p.objectives, best->objectives))) {
      best_ratio = ratio;
      best = &p;
    }
  }
  if (best == nullptr) return (side == SlopeSide::kLeft) ? *left : *right;
  return *best;
}

}  // namespace udao
