#ifndef UDAO_MOO_RUN_RESULT_H_
#define UDAO_MOO_RUN_RESULT_H_

#include <vector>

#include "moo/pareto.h"

namespace udao {

/// One timed progress measurement from a MOO method run. For methods that
/// only deliver their frontier at completion (WS, NC), intermediate snapshots
/// report 100% uncertain space, matching how the paper plots them.
struct MooSnapshot {
  double seconds = 0;
  int num_points = 0;
  double uncertain_percent = 100.0;
};

/// Frontier + progress history produced by a baseline MOO method. The
/// uncertain-space percentages are measured against the caller-provided
/// Utopia-Nadir box so that all methods are compared in the same coordinates
/// (Fig. 4/5).
struct MooRunResult {
  std::vector<MooPoint> frontier;
  std::vector<MooSnapshot> history;
  double seconds_total = 0;
};

/// Reference box shared by all methods when computing uncertain space.
/// When empty (size 0), snapshots report uncertain space as 100.
struct MetricBox {
  Vector utopia;
  Vector nadir;

  bool valid() const { return !utopia.empty() && utopia.size() == nadir.size(); }
};

}  // namespace udao

#endif  // UDAO_MOO_RUN_RESULT_H_
