#include "moo/mogd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/matrix.h"
#include "common/random.h"
#include "nn/adam.h"

namespace udao {

namespace {

constexpr double kFeasibilityTol = 1e-6;

void ClipToUnitBox(Vector* x) {
  for (double& v : *x) v = std::min(1.0, std::max(0.0, v));
}

}  // namespace

MogdSolver::MogdSolver(MogdConfig config) : config_(config) {
  UDAO_CHECK_GT(config_.multistart, 0);
  UDAO_CHECK_GT(config_.max_iters, 0);
}

std::optional<CoResult> MogdSolver::SolveCo(const MooProblem& problem,
                                            const CoProblem& co) const {
  return SolveCoSeeded(problem, co, config_.seed);
}

std::optional<CoResult> MogdSolver::SolveCoSeeded(const MooProblem& problem,
                                                  const CoProblem& co,
                                                  uint64_t seed) const {
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();
  UDAO_CHECK(co.target >= 0 && co.target < k);
  UDAO_CHECK_EQ(static_cast<int>(co.lower.size()), k);
  UDAO_CHECK_EQ(static_cast<int>(co.upper.size()), k);

  Vector spans(k);
  for (int j = 0; j < k; ++j) {
    UDAO_CHECK(co.lower[j] <= co.upper[j]);
    spans[j] = std::max(1e-9, co.upper[j] - co.lower[j]);
  }

  // Evaluates objectives (uncertainty-adjusted when alpha > 0) and their
  // gradients at x.
  auto evaluate = [&](const Vector& x, Vector* f,
                      std::vector<Vector>* grads) {
    f->resize(k);
    grads->resize(k);
    for (int j = 0; j < k; ++j) {
      if (config_.alpha > 0.0) {
        double mean = 0.0;
        double stddev = 0.0;
        problem.EvaluateWithUncertainty(j, x, &mean, &stddev);
        (*f)[j] = mean + config_.alpha * stddev;
      } else {
        (*f)[j] = problem.EvaluateOne(j, x);
      }
      // The descent direction follows the mean's gradient; the uncertainty
      // term shifts values (conservatism) without steering the search.
      (*grads)[j] = problem.Gradient(j, x);
    }
  };

  Rng rng(seed);
  std::optional<CoResult> best;

  // Tracks the best feasible point seen anywhere along any trajectory.
  auto consider = [&](const Vector& x, const Vector& f) {
    for (int j = 0; j < k; ++j) {
      const double fn = (f[j] - co.lower[j]) / spans[j];
      if (fn < -kFeasibilityTol || fn > 1.0 + kFeasibilityTol) return;
    }
    for (const CoProblem::LinearConstraint& lc : co.linear) {
      if (Dot(lc.normal, f) - lc.offset > kFeasibilityTol) return;
    }
    if (!best.has_value() || f[co.target] < best->target_value) {
      CoResult result;
      result.x = x;
      result.raw = problem.space().Decode(x);
      result.objectives = f;
      result.target_value = f[co.target];
      best = std::move(result);
    }
  };

  for (int start = 0; start < config_.multistart; ++start) {
    Vector x(dim);
    if (start == 0) {
      std::fill(x.begin(), x.end(), 0.5);
    } else {
      for (double& v : x) v = rng.Uniform();
    }
    Adam adam(dim, AdamConfig{.learning_rate = config_.learning_rate});
    Vector f;
    std::vector<Vector> grads;
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      evaluate(x, &f, &grads);
      consider(x, f);
      // Loss gradient per Eq. 3.
      Vector loss_grad(dim, 0.0);
      for (int j = 0; j < k; ++j) {
        const double fn = (f[j] - co.lower[j]) / spans[j];
        double coeff = 0.0;
        if (fn < 0.0 || fn > 1.0) {
          coeff = 2.0 * (fn - 0.5) / spans[j];
        } else if (j == co.target) {
          coeff = 2.0 * fn / spans[j];
        }
        if (coeff != 0.0) {
          for (int d = 0; d < dim; ++d) loss_grad[d] += coeff * grads[j][d];
        }
      }
      for (const CoProblem::LinearConstraint& lc : co.linear) {
        const double g = Dot(lc.normal, f) - lc.offset;
        if (g > 0.0) {
          for (int j = 0; j < k; ++j) {
            if (lc.normal[j] == 0.0) continue;
            for (int d = 0; d < dim; ++d) {
              loss_grad[d] += 2.0 * g * lc.normal[j] * grads[j][d];
            }
          }
        }
      }
      adam.Step(&x, loss_grad);
      ClipToUnitBox(&x);
    }
    evaluate(x, &f, &grads);
    consider(x, f);
  }
  return best;
}

std::vector<std::optional<CoResult>> MogdSolver::SolveBatch(
    const MooProblem& problem, const std::vector<CoProblem>& problems) const {
  std::vector<std::optional<CoResult>> results(problems.size());
  if (problems.empty()) return results;
  if (config_.threads <= 1 || problems.size() == 1) {
    for (size_t i = 0; i < problems.size(); ++i) {
      results[i] =
          SolveCoSeeded(problem, problems[i], config_.seed + 1000 * i);
    }
    return results;
  }
  ThreadPool pool(config_.threads);
  pool.ParallelFor(static_cast<int>(problems.size()), [&](int i) {
    results[i] = SolveCoSeeded(problem, problems[i], config_.seed + 1000 * i);
  });
  return results;
}

CoResult MogdSolver::Minimize(const MooProblem& problem, int target) const {
  const int dim = problem.EncodedDim();
  Rng rng(config_.seed + 7 * target);
  CoResult best;
  best.target_value = std::numeric_limits<double>::infinity();

  auto consider = [&](const Vector& x) {
    const double v = problem.EvaluateOne(target, x);
    if (v < best.target_value) {
      best.x = x;
      best.raw = problem.space().Decode(x);
      best.objectives = problem.Evaluate(x);
      best.target_value = v;
    }
  };

  for (int start = 0; start < config_.multistart; ++start) {
    Vector x(dim);
    if (start == 0) {
      std::fill(x.begin(), x.end(), 0.5);
    } else {
      for (double& v : x) v = rng.Uniform();
    }
    Adam adam(dim, AdamConfig{.learning_rate = config_.learning_rate});
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      Vector grad = problem.Gradient(target, x);
      adam.Step(&x, grad);
      ClipToUnitBox(&x);
      consider(x);
    }
  }
  UDAO_CHECK(std::isfinite(best.target_value));
  return best;
}

}  // namespace udao
