#include "moo/mogd.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/matrix.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "nn/adam.h"

namespace udao {

namespace {

constexpr double kFeasibilityTol = 1e-6;

// One registry flush per completed solve: the inner descent loops accumulate
// into the local SolvePerf and the totals land here, so instrumentation cost
// never sits inside an Adam iteration.
void FlushSolveMetrics(const SolvePerf& perf, int restarts, bool feasible) {
#if UDAO_METRICS_ENABLED
  MetricsRegistry& m = MetricsRegistry::Global();
  m.AddCounter("udao.mogd.solves");
  m.AddCounter("udao.mogd.restarts", restarts);
  m.AddCounter("udao.mogd.iterations", perf.iterations);
  m.AddCounter("udao.mogd.model_evals", perf.model_evals);
  m.AddCounter("udao.mogd.batch_calls", perf.batch_calls);
  if (!feasible) m.AddCounter("udao.mogd.infeasible_solves");
  m.Observe("udao.mogd.solve_ms", perf.solve_seconds * 1e3);
  m.Observe("udao.mogd.eval_ms", perf.eval_seconds * 1e3);
#else
  (void)perf;
  (void)restarts;
  (void)feasible;
#endif
}

void ClipToUnitBox(Vector* x) {
  for (double& v : *x) v = std::min(1.0, std::max(0.0, v));
}

void ClipToUnitBox(double* x, int dim) {
  for (int d = 0; d < dim; ++d) x[d] = std::min(1.0, std::max(0.0, x[d]));
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Draws the multistart initial points in the scalar path's RNG order:
// start 0 is the center of the box, later starts are uniform draws taken
// start-major so both paths consume the same random sequence.
Matrix DrawStarts(int multistart, int dim, Rng* rng) {
  Matrix x(multistart, dim);
  double* row0 = x.RowPtr(0);
  for (int d = 0; d < dim; ++d) row0[d] = 0.5;
  for (int s = 1; s < multistart; ++s) {
    double* row = x.RowPtr(s);
    for (int d = 0; d < dim; ++d) row[d] = rng->Uniform();
  }
  return x;
}

// Debug-only finite sweeps over model results. A NaN objective would pass
// every feasibility comparison as "infeasible" silently (NaN compares false),
// and a NaN gradient permanently corrupts Adam's moment estimates -- both
// make the solver return plausible-looking garbage instead of crashing.
void DCheckFiniteModelOutputs(const Vector& values) {
  for (const double v : values) UDAO_DCHECK_FINITE(v);
}

void DCheckFiniteModelOutputs(const Matrix& m) {
  for (const double v : m.data()) UDAO_DCHECK_FINITE(v);
}

// Per-start incumbent for the batched paths. Keeping the best per start and
// merging in start order reproduces the scalar path's global
// first-best-wins bookkeeping exactly (strict < keeps the earliest).
struct StartBest {
  bool found = false;
  Vector x;
  Vector objectives;
  double target_value = std::numeric_limits<double>::infinity();
};

}  // namespace

MogdSolver::MogdSolver(MogdConfig config) : config_(config) {
  UDAO_CHECK_GT(config_.multistart, 0);
  UDAO_CHECK_GT(config_.max_iters, 0);
}

std::optional<CoResult> MogdSolver::SolveCo(const MooProblem& problem,
                                            const CoProblem& co,
                                            SolvePerf* perf,
                                            const StopToken& stop) const {
  return SolveCoSeeded(problem, co, config_.seed, perf, stop);
}

std::optional<CoResult> MogdSolver::SolveCoSeeded(
    const MooProblem& problem, const CoProblem& co, uint64_t seed,
    SolvePerf* perf, const StopToken& stop) const {
  const int k = problem.NumObjectives();
  UDAO_CHECK(co.target >= 0 && co.target < k);
  UDAO_CHECK_EQ(static_cast<int>(co.lower.size()), k);
  UDAO_CHECK_EQ(static_cast<int>(co.upper.size()), k);
  for (int j = 0; j < k; ++j) UDAO_CHECK(co.lower[j] <= co.upper[j]);
  return config_.batched ? SolveCoBatched(problem, co, seed, perf, stop)
                         : SolveCoScalar(problem, co, seed, perf, stop);
}

std::optional<CoResult> MogdSolver::SolveCoScalar(
    const MooProblem& problem, const CoProblem& co, uint64_t seed,
    SolvePerf* perf, const StopToken& stop) const {
  UDAO_TRACE_SPAN("mogd.solve_co");
  const auto t0 = std::chrono::steady_clock::now();
  SolvePerf local;
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();

  Vector spans(k);
  for (int j = 0; j < k; ++j) {
    spans[j] = std::max(1e-9, co.upper[j] - co.lower[j]);
  }

  // Evaluates objectives (uncertainty-adjusted when alpha > 0) and their
  // gradients at x.
  auto evaluate = [&](const Vector& x, Vector* f,
                      std::vector<Vector>* grads) {
    const auto e0 = std::chrono::steady_clock::now();
    f->resize(k);
    grads->resize(k);
    for (int j = 0; j < k; ++j) {
      if (config_.alpha > 0.0) {
        double mean = 0.0;
        double stddev = 0.0;
        problem.EvaluateWithUncertainty(j, x, &mean, &stddev);
        (*f)[j] = mean + config_.alpha * stddev;
      } else {
        (*f)[j] = problem.EvaluateOne(j, x);
      }
      // The descent direction follows the mean's gradient; the uncertainty
      // term shifts values (conservatism) without steering the search.
      (*grads)[j] = problem.Gradient(j, x);
      UDAO_DCHECK_FINITE((*f)[j]);
      DCheckFiniteModelOutputs((*grads)[j]);
    }
    local.model_evals += k;
    local.batch_calls += k;
    local.eval_seconds += SecondsSince(e0);
  };

  Rng rng(seed);
  std::optional<CoResult> best;

  // Tracks the best feasible point seen anywhere along any trajectory.
  auto consider = [&](const Vector& x, const Vector& f) {
    for (int j = 0; j < k; ++j) {
      const double fn = (f[j] - co.lower[j]) / spans[j];
      if (fn < -kFeasibilityTol || fn > 1.0 + kFeasibilityTol) return;
    }
    for (const CoProblem::LinearConstraint& lc : co.linear) {
      if (Dot(lc.normal, f) - lc.offset > kFeasibilityTol) return;
    }
    if (!best.has_value() || f[co.target] < best->target_value) {
      CoResult result;
      result.x = x;
      result.raw = problem.space().Decode(x);
      result.objectives = f;
      result.target_value = f[co.target];
      best = std::move(result);
    }
  };

  for (int start = 0; start < config_.multistart; ++start) {
    // Anytime stop (deadline/cancellation), amortized to one check per Adam
    // iteration. The first iteration of start 0 always runs, so even an
    // already-expired budget produces one real evaluation and a candidate
    // for the incumbent.
    if (start > 0 && stop.ShouldStop()) break;
    Vector x(dim);
    if (start == 0) {
      std::fill(x.begin(), x.end(), 0.5);
    } else {
      for (double& v : x) v = rng.Uniform();
    }
    Adam adam(dim, AdamConfig{.learning_rate = config_.learning_rate});
    Vector f;
    std::vector<Vector> grads;
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      if ((start > 0 || iter > 0) && stop.ShouldStop()) break;
      evaluate(x, &f, &grads);
      consider(x, f);
      // Loss gradient per Eq. 3.
      Vector loss_grad(dim, 0.0);
      for (int j = 0; j < k; ++j) {
        const double fn = (f[j] - co.lower[j]) / spans[j];
        double coeff = 0.0;
        if (fn < 0.0 || fn > 1.0) {
          coeff = 2.0 * (fn - 0.5) / spans[j];
        } else if (j == co.target) {
          coeff = 2.0 * fn / spans[j];
        }
        if (coeff != 0.0) {
          for (int d = 0; d < dim; ++d) loss_grad[d] += coeff * grads[j][d];
        }
      }
      for (const CoProblem::LinearConstraint& lc : co.linear) {
        const double g = Dot(lc.normal, f) - lc.offset;
        if (g > 0.0) {
          for (int j = 0; j < k; ++j) {
            if (lc.normal[j] == 0.0) continue;
            for (int d = 0; d < dim; ++d) {
              loss_grad[d] += 2.0 * g * lc.normal[j] * grads[j][d];
            }
          }
        }
      }
      adam.Step(&x, loss_grad);
      ClipToUnitBox(&x);
      ++local.iterations;
    }
    evaluate(x, &f, &grads);
    consider(x, f);
  }
  local.solve_seconds = SecondsSince(t0);
  FlushSolveMetrics(local, config_.multistart, best.has_value());
  if (best.has_value()) best->perf = local;
  if (perf != nullptr) perf->Merge(local);
  return best;
}

std::optional<CoResult> MogdSolver::SolveCoBatched(
    const MooProblem& problem, const CoProblem& co, uint64_t seed,
    SolvePerf* perf, const StopToken& stop) const {
  UDAO_TRACE_SPAN("mogd.solve_co");
  // The solo batched solve IS a fused solve of one problem. Delegating keeps
  // "coalesced == solo bitwise" true by construction instead of by keeping
  // two copies of the lockstep loop in sync.
  const std::vector<const CoProblem*> cos{&co};
  const std::vector<uint64_t> seeds{seed};
  const std::vector<const StopToken*> stops{&stop};
  std::vector<SolvePerf> perfs;
  std::vector<std::optional<CoResult>> results =
      SolveCoFused(problem, cos, seeds, stops, &perfs);
  if (perf != nullptr) perf->Merge(perfs[0]);
  return std::move(results[0]);
}

std::vector<std::optional<CoResult>> MogdSolver::SolveCoFused(
    const MooProblem& problem, const std::vector<const CoProblem*>& cos,
    const std::vector<uint64_t>& seeds,
    const std::vector<const StopToken*>& stops,
    std::vector<SolvePerf>* perfs) const {
  UDAO_TRACE_SPAN("mogd.solve_co_fused");
  UDAO_CHECK(config_.batched);
  const int K = static_cast<int>(cos.size());
  UDAO_CHECK_EQ(static_cast<int>(seeds.size()), K);
  UDAO_CHECK_EQ(static_cast<int>(stops.size()), K);
  std::vector<std::optional<CoResult>> results(K);
  if (perfs != nullptr) perfs->resize(K);
  if (K == 0) return results;

  const auto t0 = std::chrono::steady_clock::now();
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();
  const int S = config_.multistart;

  // Same structural validation SolveCoSeeded performs, per problem.
  for (int p = 0; p < K; ++p) {
    const CoProblem& co = *cos[p];
    UDAO_CHECK(co.target >= 0 && co.target < k);
    UDAO_CHECK_EQ(static_cast<int>(co.lower.size()), k);
    UDAO_CHECK_EQ(static_cast<int>(co.upper.size()), k);
    for (int j = 0; j < k; ++j) UDAO_CHECK(co.lower[j] <= co.upper[j]);
  }

  // Rows [p*S, (p+1)*S) of x belong to problem p. Every problem draws its
  // starts from its own seed and keeps its own Adam moments, incumbents and
  // spans, so its trajectory is byte-for-byte what a solo
  // SolveCoSeeded(seeds[p]) computes -- batch model evaluation is
  // row-independent, so co-residency in one fused call changes nothing.
  Matrix x(K * S, dim);
  std::vector<Vector> spans(K, Vector(k));
  std::vector<Adam> adams;
  adams.reserve(static_cast<size_t>(K) * S);
  std::vector<StartBest> best(static_cast<size_t>(K) * S);
  std::vector<SolvePerf> local(K);
  std::vector<char> active(K, 1);
  for (int p = 0; p < K; ++p) {
    const CoProblem& co = *cos[p];
    for (int j = 0; j < k; ++j) {
      spans[p][j] = std::max(1e-9, co.upper[j] - co.lower[j]);
    }
    Rng rng(seeds[p]);
    Matrix starts = DrawStarts(S, dim, &rng);
    std::copy(starts.RowPtr(0), starts.RowPtr(0) + S * dim, x.RowPtr(p * S));
    for (int s = 0; s < S; ++s) {
      adams.emplace_back(dim,
                         AdamConfig{.learning_rate = config_.learning_rate});
    }
  }

  // Fused evaluation over the still-participating problems (`parts`): their
  // rows are packed into xe and every objective is evaluated in ONE batched
  // model call for the whole group -- the cross-request GEMM share. f[j][r]
  // and grads[j](r, d) are indexed by packed row r = pi*S + s.
  std::vector<Vector> f(k);
  std::vector<Matrix> grads(k);
  Vector mean;
  Vector stddev;
  std::vector<int> parts;
  parts.reserve(K);
  Matrix xe;
  auto evaluate = [&]() {
    const int P = static_cast<int>(parts.size());
    // Resize reuses xe's allocation as participants drop out; every row is
    // overwritten by the packing copies below.
    xe.Resize(P * S, dim);
    for (int pi = 0; pi < P; ++pi) {
      const int p = parts[pi];
      std::copy(x.RowPtr(p * S), x.RowPtr(p * S) + S * dim, xe.RowPtr(pi * S));
    }
    const auto e0 = std::chrono::steady_clock::now();
    for (int j = 0; j < k; ++j) {
      if (config_.alpha > 0.0) {
        // Values come from the uncertainty-adjusted surface; the descent
        // direction still follows the mean's gradient (as in the scalar
        // path), so the fused values from GradientBatch are discarded.
        problem.EvaluateWithUncertaintyBatch(j, xe, &mean, &stddev);
        problem.GradientBatch(j, xe, &grads[j]);
        f[j].resize(P * S);
        for (int r = 0; r < P * S; ++r) {
          f[j][r] = mean[r] + config_.alpha * stddev[r];
        }
      } else {
        problem.GradientBatch(j, xe, &grads[j], &f[j]);
      }
      DCheckFiniteModelOutputs(f[j]);
      DCheckFiniteModelOutputs(grads[j]);
    }
    // model_evals is exact per problem; batch_calls counts each problem's
    // logical calls (the physical call is shared); the shared wall time is
    // split evenly among the participants.
    const double secs = SecondsSince(e0);
    for (int pi = 0; pi < P; ++pi) {
      SolvePerf& lp = local[parts[pi]];
      lp.model_evals += static_cast<long long>(S) * k;
      lp.batch_calls += k;
      lp.eval_seconds += secs / P;
    }
  };

  Vector fs(k);
  auto consider = [&]() {
    for (int pi = 0; pi < static_cast<int>(parts.size()); ++pi) {
      const int p = parts[pi];
      const CoProblem& co = *cos[p];
      for (int s = 0; s < S; ++s) {
        const int r = pi * S + s;
        bool feasible = true;
        for (int j = 0; j < k && feasible; ++j) {
          const double fn = (f[j][r] - co.lower[j]) / spans[p][j];
          feasible = fn >= -kFeasibilityTol && fn <= 1.0 + kFeasibilityTol;
        }
        if (!feasible) continue;
        if (!co.linear.empty()) {
          for (int j = 0; j < k; ++j) fs[j] = f[j][r];
          for (const CoProblem::LinearConstraint& lc : co.linear) {
            if (Dot(lc.normal, fs) - lc.offset > kFeasibilityTol) {
              feasible = false;
              break;
            }
          }
          if (!feasible) continue;
        }
        StartBest& b = best[p * S + s];
        if (!b.found || f[co.target][r] < b.target_value) {
          b.found = true;
          b.x.assign(xe.RowPtr(r), xe.RowPtr(r) + dim);
          b.objectives.resize(k);
          for (int j = 0; j < k; ++j) b.objectives[j] = f[j][r];
          b.target_value = f[co.target][r];
        }
      }
    }
  };

  // Merge problem p's per-start incumbents in start order (strict < keeps
  // the earliest, matching the scalar path) and flush its metrics.
  auto finalize = [&](int p) {
    std::optional<CoResult> out;
    for (int s = 0; s < S; ++s) {
      const StartBest& b = best[p * S + s];
      if (!b.found) continue;
      if (!out.has_value() || b.target_value < out->target_value) {
        CoResult result;
        result.x = b.x;
        result.raw = problem.space().Decode(b.x);
        result.objectives = b.objectives;
        result.target_value = b.target_value;
        out = std::move(result);
      }
    }
    local[p].solve_seconds = SecondsSince(t0);
    FlushSolveMetrics(local[p], config_.multistart, out.has_value());
    if (out.has_value()) out->perf = local[p];
    if (perfs != nullptr) (*perfs)[p].Merge(local[p]);
    results[p] = std::move(out);
  };

  Vector loss_grad(dim);
  Vector xs(dim);
  std::vector<char> stopping(K, 0);
  int remaining = K;
  for (int iter = 0; iter < config_.max_iters && remaining > 0; ++iter) {
    // Per-problem anytime stop, once per lockstep iteration, exactly the
    // solo sequence: iteration 0 always runs; a problem whose StopToken
    // fired gets THIS iteration's evaluate+consider as its trailing pass
    // (solo runs it after breaking the loop) and then freezes -- no step,
    // no further participation -- while its batchmates keep descending.
    parts.clear();
    for (int p = 0; p < K; ++p) {
      if (!active[p]) continue;
      stopping[p] = (iter > 0 && stops[p]->ShouldStop()) ? 1 : 0;
      parts.push_back(p);
    }
    evaluate();
    consider();
    for (int pi = 0; pi < static_cast<int>(parts.size()); ++pi) {
      const int p = parts[pi];
      if (stopping[p]) {
        active[p] = 0;
        --remaining;
        finalize(p);
        continue;
      }
      const CoProblem& co = *cos[p];
      for (int s = 0; s < S; ++s) {
        const int r = pi * S + s;
        // Loss gradient per Eq. 3 for problem p, start s.
        std::fill(loss_grad.begin(), loss_grad.end(), 0.0);
        for (int j = 0; j < k; ++j) {
          const double fn = (f[j][r] - co.lower[j]) / spans[p][j];
          double coeff = 0.0;
          if (fn < 0.0 || fn > 1.0) {
            coeff = 2.0 * (fn - 0.5) / spans[p][j];
          } else if (j == co.target) {
            coeff = 2.0 * fn / spans[p][j];
          }
          if (coeff != 0.0) {
            const double* g = grads[j].RowPtr(r);
            for (int d = 0; d < dim; ++d) loss_grad[d] += coeff * g[d];
          }
        }
        for (const CoProblem::LinearConstraint& lc : co.linear) {
          for (int j = 0; j < k; ++j) fs[j] = f[j][r];
          const double g = Dot(lc.normal, fs) - lc.offset;
          if (g > 0.0) {
            for (int j = 0; j < k; ++j) {
              if (lc.normal[j] == 0.0) continue;
              const double* gj = grads[j].RowPtr(r);
              for (int d = 0; d < dim; ++d) {
                loss_grad[d] += 2.0 * g * lc.normal[j] * gj[d];
              }
            }
          }
        }
        double* row = x.RowPtr(p * S + s);
        xs.assign(row, row + dim);
        adams[p * S + s].Step(&xs, loss_grad);
        std::copy(xs.begin(), xs.end(), row);
        ClipToUnitBox(row, dim);
        ++local[p].iterations;
      }
    }
  }

  // Trailing evaluate + consider for the problems that ran every iteration
  // (solo runs it after the loop ends normally).
  parts.clear();
  for (int p = 0; p < K; ++p) {
    if (active[p]) parts.push_back(p);
  }
  if (!parts.empty()) {
    evaluate();
    consider();
    for (int p : parts) finalize(p);
  }
  return results;
}

std::vector<std::optional<CoResult>> MogdSolver::SolveBatch(
    const MooProblem& problem, const std::vector<CoProblem>& problems,
    SolvePerf* perf, const StopToken& stop) const {
  UDAO_TRACE_SPAN("mogd.solve_batch");
  UDAO_METRIC_COUNTER_ADD("udao.mogd.solve_batches", 1);
  UDAO_METRIC_OBSERVE("udao.mogd.solve_batch_size",
                      static_cast<double>(problems.size()));
  std::vector<std::optional<CoResult>> results(problems.size());
  if (problems.empty()) return results;
  // Per-problem counters land in a fixed slot each, so the aggregate is
  // identical whether the batch ran inline or on the pool.
  std::vector<SolvePerf> perfs(problems.size());
  auto solve_one = [&](int i) {
    results[i] =
        SolveCoSeeded(problem, problems[i], config_.seed + 1000 * i,
                      &perfs[i], stop);
  };
  if (config_.pool == nullptr || problems.size() == 1) {
    for (size_t i = 0; i < problems.size(); ++i) {
      solve_one(static_cast<int>(i));
    }
  } else {
    config_.pool->ParallelFor(static_cast<int>(problems.size()), solve_one);
  }
  if (perf != nullptr) {
    for (const SolvePerf& p : perfs) perf->Merge(p);
  }
  return results;
}

CoResult MogdSolver::Minimize(const MooProblem& problem, int target,
                              SolvePerf* perf, const StopToken& stop) const {
  return config_.batched ? MinimizeBatched(problem, target, perf, stop)
                         : MinimizeScalar(problem, target, perf, stop);
}

CoResult MogdSolver::MinimizeScalar(const MooProblem& problem, int target,
                                    SolvePerf* perf,
                                    const StopToken& stop) const {
  UDAO_TRACE_SPAN("mogd.minimize");
  const auto t0 = std::chrono::steady_clock::now();
  SolvePerf local;
  const int dim = problem.EncodedDim();
  Rng rng(config_.seed + 7 * target);
  CoResult best;
  best.target_value = std::numeric_limits<double>::infinity();

  auto consider = [&](const Vector& x) {
    const auto e0 = std::chrono::steady_clock::now();
    const double v = problem.EvaluateOne(target, x);
    ++local.model_evals;
    ++local.batch_calls;
    local.eval_seconds += SecondsSince(e0);
    if (v < best.target_value) {
      best.x = x;
      best.raw = problem.space().Decode(x);
      best.objectives = problem.Evaluate(x);
      best.target_value = v;
    }
  };

  for (int start = 0; start < config_.multistart; ++start) {
    // Anytime stop. The first iteration of start 0 is unconditional, so the
    // incumbent below is always finite (the UDAO_CHECK after the loop).
    if (start > 0 && stop.ShouldStop()) break;
    Vector x(dim);
    if (start == 0) {
      std::fill(x.begin(), x.end(), 0.5);
    } else {
      for (double& v : x) v = rng.Uniform();
    }
    Adam adam(dim, AdamConfig{.learning_rate = config_.learning_rate});
    for (int iter = 0; iter < config_.max_iters; ++iter) {
      if ((start > 0 || iter > 0) && stop.ShouldStop()) break;
      const auto e0 = std::chrono::steady_clock::now();
      Vector grad = problem.Gradient(target, x);
      DCheckFiniteModelOutputs(grad);
      ++local.model_evals;
      ++local.batch_calls;
      local.eval_seconds += SecondsSince(e0);
      adam.Step(&x, grad);
      ClipToUnitBox(&x);
      consider(x);
      ++local.iterations;
    }
  }
  UDAO_CHECK(std::isfinite(best.target_value));
  local.solve_seconds = SecondsSince(t0);
  FlushSolveMetrics(local, config_.multistart, /*feasible=*/true);
  best.perf = local;
  if (perf != nullptr) perf->Merge(local);
  return best;
}

CoResult MogdSolver::MinimizeBatched(const MooProblem& problem, int target,
                                     SolvePerf* perf,
                                     const StopToken& stop) const {
  UDAO_TRACE_SPAN("mogd.minimize");
  const auto t0 = std::chrono::steady_clock::now();
  SolvePerf local;
  const int dim = problem.EncodedDim();
  const int S = config_.multistart;
  Rng rng(config_.seed + 7 * target);
  Matrix x = DrawStarts(S, dim, &rng);

  // The scalar path considers the point *after* each Adam step, so values
  // are needed at the stepped points: one gradient batch before the step and
  // one value batch after it per iteration (the scalar path pays the same
  // two model calls per point).
  std::vector<StartBest> best(S);
  Matrix grads;
  Vector values;
  Vector xs(dim);
  Vector grad(dim);
  std::vector<Adam> adams;
  adams.reserve(S);
  for (int s = 0; s < S; ++s) {
    adams.emplace_back(dim, AdamConfig{.learning_rate = config_.learning_rate});
  }

  for (int iter = 0; iter < config_.max_iters; ++iter) {
    // Anytime stop. Iteration 0 always completes (gradient step + value
    // batch + consider), so at least one per-start incumbent exists and the
    // finiteness UDAO_CHECK below holds under any budget.
    if (iter > 0 && stop.ShouldStop()) break;
    const auto g0 = std::chrono::steady_clock::now();
    problem.GradientBatch(target, x, &grads);
    DCheckFiniteModelOutputs(grads);
    local.model_evals += S;
    local.batch_calls += 1;
    local.eval_seconds += SecondsSince(g0);
    for (int s = 0; s < S; ++s) {
      xs.assign(x.RowPtr(s), x.RowPtr(s) + dim);
      grad.assign(grads.RowPtr(s), grads.RowPtr(s) + dim);
      adams[s].Step(&xs, grad);
      std::copy(xs.begin(), xs.end(), x.RowPtr(s));
      ClipToUnitBox(x.RowPtr(s), dim);
      ++local.iterations;
    }
    const auto v0 = std::chrono::steady_clock::now();
    problem.EvaluateOneBatch(target, x, &values);
    DCheckFiniteModelOutputs(values);
    local.model_evals += S;
    local.batch_calls += 1;
    local.eval_seconds += SecondsSince(v0);
    for (int s = 0; s < S; ++s) {
      StartBest& b = best[s];
      if (values[s] < b.target_value) {
        b.found = true;
        b.x.assign(x.RowPtr(s), x.RowPtr(s) + dim);
        b.target_value = values[s];
      }
    }
  }

  CoResult out;
  out.target_value = std::numeric_limits<double>::infinity();
  for (int s = 0; s < S; ++s) {
    const StartBest& b = best[s];
    if (b.found && b.target_value < out.target_value) {
      out.x = b.x;
      out.target_value = b.target_value;
    }
  }
  UDAO_CHECK(std::isfinite(out.target_value));
  out.raw = problem.space().Decode(out.x);
  out.objectives = problem.Evaluate(out.x);
  local.model_evals += problem.NumObjectives();
  local.batch_calls += problem.NumObjectives();
  local.solve_seconds = SecondsSince(t0);
  FlushSolveMetrics(local, config_.multistart, /*feasible=*/true);
  out.perf = local;
  if (perf != nullptr) perf->Merge(local);
  return out;
}

}  // namespace udao
