#include "moo/evo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/random.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Individual {
  Vector genes;       // encoded configuration in [0,1]^D
  Vector objectives;  // cached evaluation
  int rank = 0;
  double crowding = 0;
};

// Simulated binary crossover on one gene pair.
void SbxGene(double* a, double* b, double eta, Rng* rng) {
  const double u = rng->Uniform();
  double beta;
  if (u <= 0.5) {
    beta = std::pow(2.0 * u, 1.0 / (eta + 1.0));
  } else {
    beta = std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
  }
  const double x1 = *a;
  const double x2 = *b;
  *a = std::clamp(0.5 * ((1 + beta) * x1 + (1 - beta) * x2), 0.0, 1.0);
  *b = std::clamp(0.5 * ((1 - beta) * x1 + (1 + beta) * x2), 0.0, 1.0);
}

// Polynomial mutation on one gene.
double PolyMutate(double x, double eta, Rng* rng) {
  const double u = rng->Uniform();
  double delta;
  if (u < 0.5) {
    delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
  } else {
    delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
  }
  return std::clamp(x + delta, 0.0, 1.0);
}

}  // namespace

std::vector<int> FastNonDominatedSort(const std::vector<Vector>& objectives) {
  const int n = static_cast<int>(objectives.size());
  std::vector<int> rank(n, -1);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<int>> dominated(n);
  std::vector<int> current;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates(objectives[i], objectives[j])) {
        dominated[i].push_back(j);
      } else if (Dominates(objectives[j], objectives[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) {
      rank[i] = 0;
      current.push_back(i);
    }
  }
  int front = 0;
  while (!current.empty()) {
    std::vector<int> next;
    for (int i : current) {
      for (int j : dominated[i]) {
        if (--domination_count[j] == 0) {
          rank[j] = front + 1;
          next.push_back(j);
        }
      }
    }
    ++front;
    current = std::move(next);
  }
  return rank;
}

Vector CrowdingDistance(const std::vector<Vector>& front_objectives) {
  const int n = static_cast<int>(front_objectives.size());
  Vector distance(n, 0.0);
  if (n == 0) return distance;
  const int k = static_cast<int>(front_objectives[0].size());
  std::vector<int> order(n);
  for (int j = 0; j < k; ++j) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return front_objectives[a][j] < front_objectives[b][j];
    });
    const double span = front_objectives[order.back()][j] -
                        front_objectives[order.front()][j];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (span <= 0) continue;
    for (int i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (front_objectives[order[i + 1]][j] -
                             front_objectives[order[i - 1]][j]) /
                            span;
    }
  }
  return distance;
}

MooRunResult RunNsga2(const MooProblem& problem, int num_points,
                      const EvoConfig& config) {
  UDAO_CHECK_GT(num_points, 0);
  const auto t0 = Clock::now();
  const int dim = problem.EncodedDim();
  const int pop_size = std::max(8, config.population);
  const double mut_prob =
      config.mutation_prob > 0 ? config.mutation_prob : 1.0 / dim;
  // Independent run per budget: the source of the frontier inconsistency the
  // paper criticizes in randomized anytime methods.
  Rng rng(config.seed + static_cast<uint64_t>(num_points));

  MooRunResult result;

  std::vector<Individual> pop(pop_size);
  for (Individual& ind : pop) {
    ind.genes.resize(dim);
    for (double& g : ind.genes) g = rng.Uniform();
    ind.objectives = problem.Evaluate(ind.genes);
  }

  auto assign_ranks = [&](std::vector<Individual>* population) {
    std::vector<Vector> objs;
    objs.reserve(population->size());
    for (const Individual& ind : *population) objs.push_back(ind.objectives);
    std::vector<int> ranks = FastNonDominatedSort(objs);
    int max_rank = 0;
    for (size_t i = 0; i < population->size(); ++i) {
      (*population)[i].rank = ranks[i];
      max_rank = std::max(max_rank, ranks[i]);
    }
    for (int r = 0; r <= max_rank; ++r) {
      std::vector<int> members;
      std::vector<Vector> front;
      for (size_t i = 0; i < population->size(); ++i) {
        if ((*population)[i].rank == r) {
          members.push_back(static_cast<int>(i));
          front.push_back((*population)[i].objectives);
        }
      }
      Vector crowd = CrowdingDistance(front);
      for (size_t m = 0; m < members.size(); ++m) {
        (*population)[members[m]].crowding = crowd[m];
      }
    }
  };
  assign_ranks(&pop);

  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng.UniformInt(0, pop_size - 1)];
    const Individual& b = pop[rng.UniformInt(0, pop_size - 1)];
    if (a.rank != b.rank) return a.rank < b.rank ? a : b;
    return a.crowding > b.crowding ? a : b;
  };

  auto frontier_of = [&](const std::vector<Individual>& population) {
    std::vector<MooPoint> points;
    for (const Individual& ind : population) {
      if (ind.rank == 0) points.push_back(MooPoint{ind.objectives, ind.genes});
    }
    return ParetoFilter(std::move(points));
  };

  const int max_generations = 200;
  for (int gen = 0; gen < max_generations; ++gen) {
    // Offspring via tournament + SBX + polynomial mutation.
    std::vector<Individual> merged = pop;
    merged.reserve(2 * pop_size);
    for (int c = 0; c < pop_size; c += 2) {
      Individual child1 = tournament();
      Individual child2 = tournament();
      if (rng.Uniform() < config.crossover_prob) {
        for (int d = 0; d < dim; ++d) {
          if (rng.Uniform() < 0.5) {
            SbxGene(&child1.genes[d], &child2.genes[d], config.eta_crossover,
                    &rng);
          }
        }
      }
      for (int d = 0; d < dim; ++d) {
        if (rng.Uniform() < mut_prob) {
          child1.genes[d] = PolyMutate(child1.genes[d], config.eta_mutation,
                                       &rng);
        }
        if (rng.Uniform() < mut_prob) {
          child2.genes[d] = PolyMutate(child2.genes[d], config.eta_mutation,
                                       &rng);
        }
      }
      child1.objectives = problem.Evaluate(child1.genes);
      child2.objectives = problem.Evaluate(child2.genes);
      merged.push_back(std::move(child1));
      merged.push_back(std::move(child2));
    }
    // Elitist environmental selection.
    assign_ranks(&merged);
    std::sort(merged.begin(), merged.end(),
              [](const Individual& a, const Individual& b) {
                if (a.rank != b.rank) return a.rank < b.rank;
                return a.crowding > b.crowding;
              });
    merged.resize(pop_size);
    pop = std::move(merged);
    assign_ranks(&pop);

    std::vector<MooPoint> frontier = frontier_of(pop);
    // The method is only credited with the number of points requested
    // (the probe budget), like every other method in the comparison.
    if (static_cast<int>(frontier.size()) > num_points) {
      frontier.resize(num_points);
    }
    MooSnapshot snap;
    snap.seconds = SecondsSince(t0);
    snap.num_points = static_cast<int>(frontier.size());
    const bool deliverable = gen + 1 >= config.min_generations;
    snap.uncertain_percent =
        (deliverable && config.metric_box.valid())
            ? UncertainSpacePercent(frontier, config.metric_box.utopia,
                                    config.metric_box.nadir)
            : 100.0;
    result.history.push_back(snap);
    if (deliverable && snap.num_points >= num_points) break;
  }

  result.frontier = frontier_of(pop);
  if (static_cast<int>(result.frontier.size()) > num_points) {
    result.frontier.resize(num_points);
  }
  result.seconds_total = SecondsSince(t0);
  return result;
}

}  // namespace udao
