#include "moo/progressive_frontier.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/fault_injector.h"
#include "common/metrics_registry.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ProgressiveFrontier::ProgressiveFrontier(const MooProblem* problem,
                                         PfConfig config)
    : problem_(problem), config_(config), mogd_(config.mogd),
      exhaustive_(config.exhaustive_budget) {
  UDAO_CHECK(problem_ != nullptr);
  UDAO_CHECK_GE(config_.grid_per_dim, 2);
}

std::optional<CoResult> ProgressiveFrontier::Solve(const CoProblem& co,
                                                   const StopToken& stop) {
  // The exhaustive reference solver ignores the token: it exists for small
  // deterministic baselines, not the serving path.
  if (config_.use_exhaustive) return exhaustive_.SolveCo(*problem_, co);
  if (config_.co_solver != nullptr) {
    // A 1-problem batch carries seed `mogd.seed + 1000*0`, the same seed
    // SolveCo uses, so routing PF-AS probes through the coalescer keeps
    // them bitwise-identical to the direct call.
    std::vector<std::optional<CoResult>> solved =
        config_.co_solver->SolveBatch(*problem_, {co}, &result_.perf, stop);
    UDAO_CHECK_EQ(static_cast<int>(solved.size()), 1);
    return std::move(solved[0]);
  }
  return mogd_.SolveCo(*problem_, co, &result_.perf, stop);
}

CoResult ProgressiveFrontier::SolveMin(int target, const StopToken& stop) {
  if (config_.use_exhaustive) return exhaustive_.Minimize(*problem_, target);
  if (config_.co_solver != nullptr) {
    // Reference-point solves share bits across requests: Minimize is
    // unconstrained (user value bounds never enter it), so the coalescer's
    // singleflight can serve every hot-tenant request from one descent.
    return config_.co_solver->Minimize(*problem_, target, &result_.perf, stop);
  }
  return mogd_.Minimize(*problem_, target, &result_.perf, stop);
}

double ProgressiveFrontier::QueueVolume() const {
#ifndef NDEBUG
  // Cross-check the incrementally maintained sum against a recomputation
  // (priority_queue lacks iteration, hence the copy). The running +=/-= sum
  // is NOT bitwise-equal to the heap-order sum: each push/pop contributes
  // O(eps) relative rounding, and cancellation amplifies it, so the
  // tolerance scales with how many updates fed the running sum since the
  // last exact resync (the empty-queue pin in Run()).
  std::priority_queue<Rect> copy = queue_;
  double recomputed = 0;
  while (!copy.empty()) {
    recomputed += copy.top().volume;
    copy.pop();
  }
  const double scale = std::max({1.0, recomputed, queue_volume_});
  const double tol =
      std::max(1e-6, 1e-12 * static_cast<double>(volume_updates_));
  UDAO_CHECK(std::abs(recomputed - queue_volume_) <= tol * scale);
#endif
  return queue_volume_;
}

void ProgressiveFrontier::Snapshot() {
  PfSnapshot snap;
  snap.seconds = elapsed_s_;
  snap.num_points = static_cast<int>(result_.frontier.size());
  snap.uncertain_percent =
      initial_volume_ > 0
          ? 100.0 * std::min(1.0, QueueVolume() / initial_volume_)
          : 0.0;
  result_.uncertain_percent = snap.uncertain_percent;
  result_.history.push_back(snap);
}

void ProgressiveFrontier::AddPoint(const CoResult& co) {
  // Drop near-duplicates (relative tolerance): distinct probes can converge
  // onto the same frontier point up to solver precision.
  for (const MooPoint& p : result_.frontier) {
    bool same = true;
    for (size_t j = 0; j < p.objectives.size(); ++j) {
      const double scale = std::max({1.0, std::abs(p.objectives[j]),
                                     std::abs(co.objectives[j])});
      if (std::abs(p.objectives[j] - co.objectives[j]) > 1e-6 * scale) {
        same = false;
        break;
      }
    }
    if (same) return;
  }
  // Single-pass incremental insert (the resident frontier is mutually
  // non-dominated, so re-running the full O(n^2) ParetoFilter per insertion
  // is redundant): a candidate dominated by any resident point is dropped,
  // and by transitivity a surviving candidate can only evict points it
  // itself dominates. The stable erase keeps survivor order identical to
  // what ParetoFilter produced.
  for (const MooPoint& p : result_.frontier) {
    if (Dominates(p.objectives, co.objectives)) return;
  }
  result_.frontier.erase(
      std::remove_if(result_.frontier.begin(), result_.frontier.end(),
                     [&co](const MooPoint& p) {
                       return Dominates(co.objectives, p.objectives);
                     }),
      result_.frontier.end());
  result_.frontier.push_back(MooPoint{co.objectives, co.x});
  UDAO_METRIC_COUNTER_ADD("udao.pf.points_added", 1);
}

void ProgressiveFrontier::PushSplit(const Vector& u, const Vector& n,
                                    const Vector& m, bool drop_all_lower,
                                    bool drop_all_upper) {
  const int k = problem_->NumObjectives();
  const int cells = 1 << k;
  for (int mask = 0; mask < cells; ++mask) {
    if (drop_all_lower && mask == 0) continue;
    if (drop_all_upper && mask == cells - 1) continue;
    Rect rect;
    rect.utopia.resize(k);
    rect.nadir.resize(k);
    for (int d = 0; d < k; ++d) {
      if (mask & (1 << d)) {
        rect.utopia[d] = m[d];
        rect.nadir[d] = n[d];
      } else {
        rect.utopia[d] = u[d];
        rect.nadir[d] = m[d];
      }
    }
    rect.volume = HyperrectVolume(rect.utopia, rect.nadir);
    rect.priority =
        config_.fifo_queue ? -(next_seq_++) : rect.volume;
    // Rects below the volume floor are dropped entirely, so they never enter
    // the running sum either.
    if (rect.volume > 1e-12 * std::max(1.0, initial_volume_)) {
      queue_volume_ += rect.volume;
      ++volume_updates_;
      queue_.push(std::move(rect));
      UDAO_METRIC_COUNTER_ADD("udao.pf.rects_pushed", 1);
    }
  }
  UDAO_METRIC_COUNTER_ADD("udao.pf.splits", 1);
}

void ProgressiveFrontier::Initialize(const StopToken& stop) {
  UDAO_TRACE_SPAN("pf.initialize");
  UDAO_METRIC_COUNTER_ADD("udao.pf.initializes", 1);
  initialized_ = true;
  const int k = problem_->NumObjectives();
  const auto start = Clock::now();

  // Reference points: one single-objective minimization per objective
  // (line 2 of Algorithm 1). These run even under an expired budget --
  // Minimize is stop-aware and degrades to one iteration per objective --
  // because without them there is no box, no frontier seed, and nothing
  // best-so-far to return.
  std::vector<CoResult> plans;
  plans.reserve(k);
  for (int i = 0; i < k; ++i) plans.push_back(SolveMin(i, stop));

  Vector utopia(k);
  Vector nadir(k);
  for (int j = 0; j < k; ++j) {
    utopia[j] = plans[0].objectives[j];
    nadir[j] = plans[0].objectives[j];
    for (int i = 1; i < k; ++i) {
      utopia[j] = std::min(utopia[j], plans[i].objectives[j]);
      nadir[j] = std::max(nadir[j], plans[i].objectives[j]);
    }
    // User value constraints shrink the search box (Problem III.1).
    utopia[j] = std::max(utopia[j], problem_->UserLower(j));
    nadir[j] = std::min(nadir[j], problem_->UserUpper(j));
    if (nadir[j] - utopia[j] < 1e-12) {
      // Degenerate axis (constant objective): widen so volumes stay positive.
      nadir[j] = utopia[j] + std::max(1e-9, 1e-9 * std::abs(utopia[j]));
    }
  }
  result_.utopia = utopia;
  result_.nadir = nadir;
  if (HyperrectVolume(utopia, nadir) <= 0.0) {
    box_empty_ = true;
    elapsed_s_ += SecondsSince(start);
    result_.uncertain_percent = 0.0;
    return;
  }

  initial_volume_ = HyperrectVolume(utopia, nadir);
  queue_.push(Rect{utopia, nadir, initial_volume_,
                   config_.fifo_queue ? -(next_seq_++) : initial_volume_});
  queue_volume_ = initial_volume_;  // exact: single-element sum
  volume_updates_ = 0;

  // Reference points that satisfy the user constraints seed the frontier.
  for (const CoResult& plan : plans) {
    bool ok = true;
    for (int j = 0; j < k && ok; ++j) {
      ok = plan.objectives[j] >= problem_->UserLower(j) - 1e-9 &&
           plan.objectives[j] <= problem_->UserUpper(j) + 1e-9;
    }
    if (ok) AddPoint(plan);
  }
  elapsed_s_ += SecondsSince(start);
  Snapshot();
}

const PfResult& ProgressiveFrontier::Run(int total_points) {
  return Run(total_points, StopToken());
}

const PfResult& ProgressiveFrontier::Run(int total_points,
                                         const StopToken& stop) {
  if (!initialized_) Initialize(stop);
  if (box_empty_) return result_;
  const int k = problem_->NumObjectives();
  int probes_this_call = 0;

  while (static_cast<int>(result_.frontier.size()) < total_points &&
         !queue_.empty() && probes_this_call < config_.max_probes) {
    // Anytime exit (Section III's incremental property made operational):
    // the queue keeps its remaining rectangles, so a later Run() on the
    // same instance resumes exactly where this one stopped.
    if (stop.ShouldStop()) {
      result_.degraded = true;
      UDAO_METRIC_COUNTER_ADD("udao.pf.degraded_runs", 1);
      return result_;
    }
    UDAO_TRACE_SPAN("pf.probe");
    // Latency-injection site for deterministic deadline tests (the injected
    // Status is irrelevant here: PF has no per-probe error channel).
    (void)UDAO_FAULT_SITE("pf.probe");
    const auto start = Clock::now();
    Rect rect = queue_.top();
    queue_.pop();
    queue_volume_ -= rect.volume;
    ++volume_updates_;
    // An empty queue pins the sum to exactly 0, shedding any +=/-= drift.
    if (queue_.empty()) {
      queue_volume_ = 0;
      volume_updates_ = 0;
    }

    if (!config_.parallel) {
      // Middle-point probe (Definition III.3): search the lower half-box.
      Vector middle(k);
      for (int d = 0; d < k; ++d) {
        middle[d] = 0.5 * (rect.utopia[d] + rect.nadir[d]);
      }
      CoProblem co;
      co.target = 0;
      co.lower = rect.utopia;
      co.upper = middle;
      std::optional<CoResult> found = Solve(co, stop);
      ++result_.probes;
      ++probes_this_call;
      UDAO_METRIC_COUNTER_ADD("udao.pf.probes", 1);
      UDAO_METRIC_COUNTER_ADD("udao.pf.subspace_solves", 1);
      if (found.has_value()) {
        AddPoint(*found);
        // Split the whole rectangle at fM; [U, fM] is empty (else fM not
        // optimal) and [fM, N] is dominated (Fig. 2(a)).
        PushSplit(rect.utopia, rect.nadir, found->objectives,
                  /*drop_all_lower=*/true, /*drop_all_upper=*/true);
      } else {
        // The probed half-box is infeasible: drop it, keep the rest.
        PushSplit(rect.utopia, rect.nadir, middle, /*drop_all_lower=*/true,
                  /*drop_all_upper=*/false);
      }
    } else {
      // PF-AP: partition into an l^k grid and solve all cell CO problems
      // simultaneously (Section IV-C).
      const int l = config_.grid_per_dim;
      int cells = 1;
      for (int d = 0; d < k; ++d) cells *= l;
      std::vector<CoProblem> cos;
      std::vector<std::pair<Vector, Vector>> bounds;
      cos.reserve(cells);
      for (int cell = 0; cell < cells; ++cell) {
        Vector lo(k);
        Vector hi(k);
        int rem = cell;
        for (int d = 0; d < k; ++d) {
          const int idx = rem % l;
          rem /= l;
          const double step = (rect.nadir[d] - rect.utopia[d]) / l;
          lo[d] = rect.utopia[d] + idx * step;
          hi[d] = lo[d] + step;
        }
        CoProblem co;
        co.target = 0;
        co.lower = lo;
        co.upper = hi;
        cos.push_back(std::move(co));
        bounds.emplace_back(std::move(lo), std::move(hi));
      }
      std::vector<std::optional<CoResult>> solved =
          config_.use_exhaustive
              ? [&] {
                  std::vector<std::optional<CoResult>> r(cos.size());
                  for (size_t i = 0; i < cos.size(); ++i) {
                    r[i] = exhaustive_.SolveCo(*problem_, cos[i]);
                  }
                  return r;
                }()
          : config_.co_solver != nullptr
              ? config_.co_solver->SolveBatch(*problem_, cos, &result_.perf,
                                              stop)
              : mogd_.SolveBatch(*problem_, cos, &result_.perf, stop);
      result_.probes += cells;
      ++probes_this_call;
      UDAO_METRIC_COUNTER_ADD("udao.pf.probes", 1);
      UDAO_METRIC_COUNTER_ADD("udao.pf.subspace_solves", cells);
      for (size_t i = 0; i < solved.size(); ++i) {
        if (!solved[i].has_value()) continue;  // cell proven empty
        AddPoint(*solved[i]);
        // The found point minimizes the target within the cell: the
        // all-lower corner holds no additional frontier mass and the
        // all-upper corner is dominated.
        PushSplit(bounds[i].first, bounds[i].second, solved[i]->objectives,
                  /*drop_all_lower=*/true, /*drop_all_upper=*/true);
      }
    }
    const double probe_s = SecondsSince(start);
    elapsed_s_ += probe_s;
    UDAO_METRIC_OBSERVE("udao.pf.probe_ms", probe_s * 1e3);
    Snapshot();
  }
  // Reaching the point target / exhausting the space / hitting the probe cap
  // is a normal completion: a previously degraded result is now whole again.
  result_.degraded = false;
  return result_;
}

}  // namespace udao
