#ifndef UDAO_MOO_MOGD_H_
#define UDAO_MOO_MOGD_H_

#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "moo/problem.h"

namespace udao {

/// Settings for the Multi-Objective Gradient Descent solver (Section IV-B).
struct MogdConfig {
  /// Gradient-descent restarts from different initial points ("multi-start
  /// method to try gradient descent from multiple initial points").
  int multistart = 8;
  /// Adam iterations per start.
  int max_iters = 120;
  double learning_rate = 0.1;
  /// Uncertainty coefficient: objectives are replaced by
  /// E[F] + alpha * std[F] when alpha > 0 (Section IV-B.3).
  double alpha = 0.0;
  /// Worker threads for batch solves (PF-AP sends l^k CO problems at once).
  int threads = 4;
  uint64_t seed = 17;
};

/// A constrained-optimization task: minimize objective `target` subject to
/// F_j(x) in [lower_j, upper_j] for every objective j (Eq. 2's middle-point
/// probe instantiates these bounds), plus optional linear objective-space
/// constraints a . F(x) <= b (used by the Normal Constraints baseline).
struct CoProblem {
  int target = 0;
  Vector lower;  ///< Per-objective lower bounds (minimization orientation).
  Vector upper;  ///< Per-objective upper bounds.
  struct LinearConstraint {
    Vector normal;  ///< a (one weight per objective)
    double offset;  ///< b
  };
  std::vector<LinearConstraint> linear;
};

/// Solution of one CO problem.
struct CoResult {
  Vector x;           ///< Encoded configuration (relaxed, in [0,1]^D).
  Vector raw;         ///< Decoded raw knob values (rounded / argmaxed).
  Vector objectives;  ///< Objective values at x (minimization orientation).
  double target_value = 0.0;
};

/// Multi-Objective Gradient Descent solver. Uses the carefully-crafted loss
/// of Eq. 3 to drive Adam toward the constrained minimum of one objective:
///
///   L(x) = 1{0 <= F~t <= 1} F~t^2
///        + sum_j 1{F~j < 0 or F~j > 1} [ (F~j - 0.5)^2 + P ]
///
/// with F~j the objective normalized by its constraint bounds. Variables live
/// in [0,1]^D (one-hot + normalized + relaxed); each step clips back into the
/// box. Works with any subdifferentiable ObjectiveModel (DNN, GP, analytic).
///
/// Note on the constant P: in Eq. 3 it only orders losses so that every
/// infeasible candidate scores worse than any feasible one. This solver
/// enforces that ordering directly -- candidates are tracked feasibility-
/// first and ranked by the target value -- so P never needs a numeric value
/// (it also has zero gradient and thus no effect on the descent itself).
class MogdSolver {
 public:
  explicit MogdSolver(MogdConfig config = MogdConfig());

  /// Solves one CO problem; nullopt when no feasible point was found, which
  /// the Progressive Frontier treats as "this hyperrectangle is empty".
  std::optional<CoResult> SolveCo(const MooProblem& problem,
                                  const CoProblem& co) const;

  /// Solves a batch of CO problems in parallel on an internal thread pool
  /// (the PF-AP fan-out). Result i corresponds to problems[i].
  std::vector<std::optional<CoResult>> SolveBatch(
      const MooProblem& problem, const std::vector<CoProblem>& problems) const;

  /// Unconstrained single-objective minimization (line 2 of Algorithm 1, used
  /// to find the reference points). Only the box [0,1]^D constrains x.
  CoResult Minimize(const MooProblem& problem, int target) const;

  const MogdConfig& config() const { return config_; }

 private:
  std::optional<CoResult> SolveCoSeeded(const MooProblem& problem,
                                        const CoProblem& co,
                                        uint64_t seed) const;

  MogdConfig config_;
};

}  // namespace udao

#endif  // UDAO_MOO_MOGD_H_
