#ifndef UDAO_MOO_MOGD_H_
#define UDAO_MOO_MOGD_H_

#include <optional>
#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "moo/problem.h"

namespace udao {

/// Settings for the Multi-Objective Gradient Descent solver (Section IV-B).
struct MogdConfig {
  /// Gradient-descent restarts from different initial points ("multi-start
  /// method to try gradient descent from multiple initial points").
  int multistart = 8;
  /// Adam iterations per start.
  int max_iters = 120;
  double learning_rate = 0.1;
  /// Uncertainty coefficient: objectives are replaced by
  /// E[F] + alpha * std[F] when alpha > 0 (Section IV-B.3).
  double alpha = 0.0;
  /// Advance all multistarts in lockstep, evaluating every objective once
  /// per Adam iteration over the whole [multistart, dim] batch (one GEMM for
  /// DNN objectives, with the forward pass shared between values and
  /// gradients). The scalar path (false) descends one start at a time; both
  /// paths visit the same points and return the same solutions.
  bool batched = true;
  /// Worker threads for SolveBatch (PF-AP sends l^k CO problems at once).
  /// Non-owning: the caller creates the pool once (Udao / PipelineOptimizer
  /// own one per instance) and may share it across solvers. Null runs the
  /// batch inline on the calling thread. Per-problem results are independent
  /// of the pool, so threading never changes solutions.
  ThreadPool* pool = nullptr;
  uint64_t seed = 17;
};

/// Performance counters for one solve (or an aggregate of many). These feed
/// the numbers printed by tools/udao_cli.cc and bench_mogd_solver.
struct SolvePerf {
  long long model_evals = 0;   ///< Point-evaluations of objective models.
  long long batch_calls = 0;   ///< Model invocations issued (scalar call = 1).
  long long iterations = 0;    ///< Adam iterations executed (all starts).
  double eval_seconds = 0.0;   ///< Wall-clock inside model evaluation.
  double solve_seconds = 0.0;  ///< Wall-clock of the whole solve.

  /// Mean points per model invocation; 1.0 for the scalar path.
  double AvgBatch() const {
    return batch_calls > 0 ? static_cast<double>(model_evals) / batch_calls
                           : 0.0;
  }
  void Merge(const SolvePerf& other) {
    model_evals += other.model_evals;
    batch_calls += other.batch_calls;
    iterations += other.iterations;
    eval_seconds += other.eval_seconds;
    solve_seconds += other.solve_seconds;
  }
};

/// A constrained-optimization task: minimize objective `target` subject to
/// F_j(x) in [lower_j, upper_j] for every objective j (Eq. 2's middle-point
/// probe instantiates these bounds), plus optional linear objective-space
/// constraints a . F(x) <= b (used by the Normal Constraints baseline).
struct CoProblem {
  int target = 0;
  Vector lower;  ///< Per-objective lower bounds (minimization orientation).
  Vector upper;  ///< Per-objective upper bounds.
  struct LinearConstraint {
    Vector normal;  ///< a (one weight per objective)
    double offset;  ///< b
  };
  std::vector<LinearConstraint> linear;
};

/// Solution of one CO problem.
struct CoResult {
  Vector x;           ///< Encoded configuration (relaxed, in [0,1]^D).
  Vector raw;         ///< Decoded raw knob values (rounded / argmaxed).
  Vector objectives;  ///< Objective values at x (minimization orientation).
  double target_value = 0.0;
  SolvePerf perf;     ///< Counters for the solve that produced this result.
};

/// Pluggable batch-solve surface with MogdSolver::SolveBatch's exact
/// contract: result i corresponds to problems[i], per-problem results are
/// independent of scheduling, and problem i is seeded with
/// `mogd.seed + 1000 * i` so any implementation returns bitwise-identical
/// solutions. ProgressiveFrontier routes its CO batches through this when
/// PfConfig::co_solver is set -- the hook the cross-request SolveCoalescer
/// plugs into so concurrent requests share fused GEMM streams.
class CoBatchSolver {
 public:
  virtual ~CoBatchSolver() = default;
  virtual std::vector<std::optional<CoResult>> SolveBatch(
      const MooProblem& problem, const std::vector<CoProblem>& problems,
      SolvePerf* perf, const StopToken& stop) = 0;

  /// Unconstrained single-objective minimization with
  /// MogdSolver::Minimize's exact contract (same seed, same bits). PF's
  /// Initialize routes its per-objective reference-point solves through this
  /// so implementations can dedupe them across concurrent requests -- the
  /// solves are unconstrained, so their bits are independent of any
  /// per-tenant value bounds and safe to share between tenants.
  virtual CoResult Minimize(const MooProblem& problem, int target,
                            SolvePerf* perf, const StopToken& stop) = 0;
};

/// Multi-Objective Gradient Descent solver. Uses the carefully-crafted loss
/// of Eq. 3 to drive Adam toward the constrained minimum of one objective:
///
///   L(x) = 1{0 <= F~t <= 1} F~t^2
///        + sum_j 1{F~j < 0 or F~j > 1} [ (F~j - 0.5)^2 + P ]
///
/// with F~j the objective normalized by its constraint bounds. Variables live
/// in [0,1]^D (one-hot + normalized + relaxed); each step clips back into the
/// box. Works with any subdifferentiable ObjectiveModel (DNN, GP, analytic).
///
/// Note on the constant P: in Eq. 3 it only orders losses so that every
/// infeasible candidate scores worse than any feasible one. This solver
/// enforces that ordering directly -- candidates are tracked feasibility-
/// first and ranked by the target value -- so P never needs a numeric value
/// (it also has zero gradient and thus no effect on the descent itself).
class MogdSolver {
 public:
  explicit MogdSolver(MogdConfig config = MogdConfig());

  /// Solves one CO problem; nullopt when no feasible point was found, which
  /// the Progressive Frontier treats as "this hyperrectangle is empty".
  /// `perf`, when non-null, accumulates this solve's counters (also reported
  /// even when the solve comes back infeasible).
  ///
  /// `stop` makes the solve *anytime*: the descent checks it once per Adam
  /// iteration (never per model evaluation) and, when it fires, returns the
  /// current incumbent -- the best feasible point seen so far -- instead of
  /// running the remaining iterations. The first iteration of the first
  /// start always runs, so even an already-expired deadline yields a real
  /// evaluation. The default token never stops; solves without one are
  /// bitwise-identical to the pre-deadline code.
  std::optional<CoResult> SolveCo(const MooProblem& problem,
                                  const CoProblem& co,
                                  SolvePerf* perf = nullptr,
                                  const StopToken& stop = StopToken()) const;

  /// Solves a batch of CO problems on config().pool (inline when null) --
  /// the PF-AP fan-out. Result i corresponds to problems[i] and is
  /// independent of the pool's thread count. Each per-problem solve checks
  /// `stop` per iteration (see SolveCo).
  std::vector<std::optional<CoResult>> SolveBatch(
      const MooProblem& problem, const std::vector<CoProblem>& problems,
      SolvePerf* perf = nullptr, const StopToken& stop = StopToken()) const;

  /// Unconstrained single-objective minimization (line 2 of Algorithm 1, used
  /// to find the reference points). Only the box [0,1]^D constrains x.
  /// Always returns a finite incumbent even when `stop` fires immediately
  /// (the first iteration is unconditional).
  CoResult Minimize(const MooProblem& problem, int target,
                    SolvePerf* perf = nullptr,
                    const StopToken& stop = StopToken()) const;

  /// SolveCo with an explicit RNG seed -- the primitive SolveBatch builds on
  /// (`config().seed + 1000 * i` for slot i) and the one batch-submission
  /// queues must call to keep coalesced solves bitwise-identical to solo
  /// ones: a problem's solution depends only on (problem, co, seed), never
  /// on which batch it rode in.
  std::optional<CoResult> SolveCoSeeded(const MooProblem& problem,
                                        const CoProblem& co, uint64_t seed,
                                        SolvePerf* perf,
                                        const StopToken& stop) const;

  /// Solves several CO problems of the SAME MooProblem in one fused lockstep
  /// descent: all problems' multistarts are stacked into a single
  /// [problems * multistart, dim] batch, so each Adam iteration issues ONE
  /// batched model call per objective for the whole group (one GEMM stream
  /// for N requests, not N). Per-problem results are bitwise-identical to
  /// SolveCoSeeded(problem, *cos[i], seeds[i], ...): model batch evaluation
  /// is row-independent, each problem keeps its own seed, Adam state, and
  /// incumbents, and a problem whose `stops[i]` fires is frozen (final
  /// evaluate+consider, then excluded from stepping) without stalling the
  /// rest of the group -- exactly the solo early-exit sequence.
  ///
  /// Counter attribution: model_evals/iterations are exact per problem;
  /// batch_calls counts each problem's logical batched calls (the physical
  /// fused call is shared by the group), and the shared evaluation wall time
  /// is split evenly across the problems that participated.
  ///
  /// Requires config().batched; callers with the scalar configuration should
  /// fall back to per-problem SolveCoSeeded.
  std::vector<std::optional<CoResult>> SolveCoFused(
      const MooProblem& problem, const std::vector<const CoProblem*>& cos,
      const std::vector<uint64_t>& seeds,
      const std::vector<const StopToken*>& stops,
      std::vector<SolvePerf>* perfs) const;

 private:
  // One start at a time; the original formulation.
  std::optional<CoResult> SolveCoScalar(const MooProblem& problem,
                                        const CoProblem& co, uint64_t seed,
                                        SolvePerf* perf,
                                        const StopToken& stop) const;
  // All starts in lockstep, batched model evaluation. Visits exactly the
  // points the scalar path visits (same seeds) and keeps the same best.
  std::optional<CoResult> SolveCoBatched(const MooProblem& problem,
                                         const CoProblem& co, uint64_t seed,
                                         SolvePerf* perf,
                                         const StopToken& stop) const;
  CoResult MinimizeScalar(const MooProblem& problem, int target,
                          SolvePerf* perf, const StopToken& stop) const;
  CoResult MinimizeBatched(const MooProblem& problem, int target,
                           SolvePerf* perf, const StopToken& stop) const;

  MogdConfig config_;
};

}  // namespace udao

#endif  // UDAO_MOO_MOGD_H_
