#ifndef UDAO_MOO_EVO_H_
#define UDAO_MOO_EVO_H_

#include "moo/problem.h"
#include "moo/run_result.h"

namespace udao {

/// NSGA-II settings.
struct EvoConfig {
  int population = 100;
  /// NSGA-II needs generations to converge before its non-dominated set is a
  /// deliverable Pareto frontier; snapshots before this floor report 100%
  /// uncertain space (nothing usable has been delivered yet).
  int min_generations = 60;
  double crossover_prob = 0.9;
  /// Per-gene mutation probability; <= 0 means 1/D.
  double mutation_prob = -1.0;
  /// SBX and polynomial-mutation distribution indices (standard values).
  double eta_crossover = 15.0;
  double eta_mutation = 20.0;
  uint64_t seed = 23;
  MetricBox metric_box;
};

/// NSGA-II [Deb et al. 2002], the paper's representative Evolutionary MOO
/// baseline: fast non-dominated sorting, crowding-distance selection,
/// simulated binary crossover and polynomial mutation over the encoded
/// configuration space.
///
/// `num_points` plays the role of the probe budget: the run executes
/// generations until the non-dominated set reaches that size (or a generation
/// cap). Every call is an independent randomized run (seeded by
/// config.seed + num_points) -- which is precisely why frontiers produced
/// with 30/40/50 probes can contradict each other, the *inconsistency* the
/// paper demonstrates in Fig. 4(e).
MooRunResult RunNsga2(const MooProblem& problem, int num_points,
                      const EvoConfig& config = EvoConfig());

/// Exposed for testing: fast non-dominated sort; returns the front index of
/// each point (0 = non-dominated).
std::vector<int> FastNonDominatedSort(const std::vector<Vector>& objectives);

/// Exposed for testing: crowding distance of each member of one front.
Vector CrowdingDistance(const std::vector<Vector>& front_objectives);

}  // namespace udao

#endif  // UDAO_MOO_EVO_H_
