#ifndef UDAO_MOO_DENSIFY_H_
#define UDAO_MOO_DENSIFY_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "moo/pareto.h"
#include "moo/problem.h"

namespace udao {

/// Tuning for sampling-based frontier densification (the SPREAD-style
/// refinement stage): how many perturbed candidates to draw around each
/// incumbent, how far, and the near-duplicate tolerance of the merge.
struct DensifyConfig {
  /// Candidates sampled around each incumbent frontier point. <= 0 disables
  /// densification (DensifyFrontier returns its input).
  int samples_per_point = 16;
  /// Gaussian perturbation stddev per encoded dimension. Samples are clamped
  /// back into the [0,1]^D encoded box.
  double radius = 0.05;
  /// Cap on total candidates per call. When incumbents * samples_per_point
  /// exceeds it, the per-incumbent budget shrinks (deterministically) so
  /// every incumbent still gets an equal share.
  int max_candidates = 4096;
  /// Relative near-duplicate tolerance of the merge, matching
  /// ProgressiveFrontier::AddPoint's dedup: a candidate within this relative
  /// distance of a resident point (in every objective) is dropped.
  double dedup_tolerance = 1e-6;
  /// Base RNG seed. Incumbent i draws from seed + 1000*i -- the same
  /// slot-seed convention as MogdSolver::SolveBatch -- so the candidate
  /// stream is a pure function of (config, incumbent index), independent of
  /// threading or call history.
  uint64_t seed = 17;
};

/// Counters for one DensifyFrontier call.
struct DensifyStats {
  int candidates = 0;  ///< Perturbed points generated and evaluated.
  int added = 0;       ///< Candidates merged into the returned frontier.
  int evicted = 0;     ///< Input points replaced by a dominating candidate.
  bool stopped = false;  ///< Stop fired mid-call; input returned unchanged.
};

/// Thickens a sparse Pareto frontier by *sampling* instead of re-solving:
/// perturbs each incumbent's encoded configuration (deterministic Gaussian
/// jitter, seed contract above), batch-evaluates all candidates through the
/// model's PredictBatch surface (one GEMM per objective on the kernel path,
/// temporaries bump-allocated in a KernelArena scope), then merges the
/// candidates that are user-constraint-feasible (Problem III.1 value bounds,
/// minimization orientation) and not dominated or near-duplicated by the
/// resident set. Residents dominated by an accepted candidate are evicted,
/// so the returned set is mutually non-dominated and weakly dominates the
/// input frontier point-for-point.
///
/// Anytime contract: `stop` is checked between sampling and each objective's
/// batch evaluation. If it fires, the *input* frontier is returned unchanged
/// (densification is transactional -- never a partial merge), with
/// stats->stopped set; callers keep whatever degradation state the input
/// already had.
///
/// Determinism: the result is a pure function of (problem, frontier, config)
/// -- bitwise-identical across runs and thread counts within one kernel
/// backend, and within the kernel parity envelope (1e-12) across backends.
std::vector<MooPoint> DensifyFrontier(const MooProblem& problem,
                                      const std::vector<MooPoint>& frontier,
                                      const DensifyConfig& config,
                                      const StopToken& stop = StopToken(),
                                      DensifyStats* stats = nullptr);

}  // namespace udao

#endif  // UDAO_MOO_DENSIFY_H_
