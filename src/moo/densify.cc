#include "moo/densify.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/matrix.h"
#include "common/metrics_registry.h"
#include "common/random.h"
#include "nn/kernels.h"

namespace udao {

namespace {

// ProgressiveFrontier::AddPoint's near-duplicate predicate, parameterized on
// the tolerance: true when the two objective vectors agree to within `tol`
// relative in every coordinate.
bool NearDuplicate(const Vector& a, const Vector& b, double tol) {
  for (size_t j = 0; j < a.size(); ++j) {
    const double scale = std::max({1.0, std::abs(a[j]), std::abs(b[j])});
    if (std::abs(a[j] - b[j]) > tol * scale) return false;
  }
  return true;
}

}  // namespace

std::vector<MooPoint> DensifyFrontier(const MooProblem& problem,
                                      const std::vector<MooPoint>& frontier,
                                      const DensifyConfig& config,
                                      const StopToken& stop,
                                      DensifyStats* stats) {
  DensifyStats local;
  if (stats == nullptr) stats = &local;
  *stats = DensifyStats{};
  if (frontier.empty() || config.samples_per_point <= 0 ||
      config.max_candidates <= 0) {
    return frontier;
  }
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();
  const int n = static_cast<int>(frontier.size());
  // Equal per-incumbent budget under the global cap (deterministic: depends
  // only on sizes, never on timing).
  const int per_point =
      std::min(config.samples_per_point, std::max(1, config.max_candidates / n));
  const int total = n * per_point;

  if (stop.ShouldStop()) {
    stats->stopped = true;
    return frontier;
  }

  // Sample all candidates up front. Incumbent i's jitter stream is seeded
  // seed + 1000*i (the MogdSolver slot-seed convention), so the candidate set
  // is a pure function of (frontier, config) -- insensitive to thread counts
  // and to how many densifications ran before this one.
  Matrix x(total, dim);
  for (int i = 0; i < n; ++i) {
    UDAO_CHECK_EQ(static_cast<int>(frontier[i].conf_encoded.size()), dim);
    Rng rng(config.seed + 1000 * static_cast<uint64_t>(i));
    for (int s = 0; s < per_point; ++s) {
      double* row = x.RowPtr(i * per_point + s);
      for (int d = 0; d < dim; ++d) {
        const double v =
            frontier[i].conf_encoded[d] + rng.Gaussian(0.0, config.radius);
        row[d] = std::min(1.0, std::max(0.0, v));
      }
    }
  }

  // Batch-evaluate every objective over the whole candidate block: one
  // PredictBatch (one GEMM stream for DNN objectives) per objective, with the
  // MLP activation temporaries bump-allocated in the calling thread's kernel
  // arena and released on scope exit.
  std::vector<Vector> values(k);
  {
    kernels::KernelArena::Scope scope(&kernels::KernelArena::ThreadLocal());
    for (int j = 0; j < k; ++j) {
      if (stop.ShouldStop()) {
        stats->stopped = true;
        return frontier;
      }
      problem.EvaluateOneBatch(j, x, &values[j]);
    }
  }
  stats->candidates = total;

  // Merge: feasibility, then near-dup, then dominance -- candidates in
  // deterministic sample order against the growing resident set. An accepted
  // candidate evicts the residents it dominates (stable erase), so the
  // result stays mutually non-dominated and every input point is weakly
  // dominated by something that survived.
  std::vector<MooPoint> merged = frontier;
  for (int c = 0; c < total; ++c) {
    Vector obj(k);
    for (int j = 0; j < k; ++j) obj[j] = values[j][c];
    // User value constraints (Problem III.1), minimization orientation, with
    // the same slack PF::Initialize grants its reference points.
    bool feasible = true;
    for (int j = 0; j < k && feasible; ++j) {
      feasible = obj[j] >= problem.UserLower(j) - 1e-9 &&
                 obj[j] <= problem.UserUpper(j) + 1e-9;
    }
    if (!feasible) continue;
    bool drop = false;
    for (const MooPoint& p : merged) {
      if (NearDuplicate(p.objectives, obj, config.dedup_tolerance) ||
          Dominates(p.objectives, obj)) {
        drop = true;
        break;
      }
    }
    if (drop) continue;
    size_t w = 0;
    for (size_t r = 0; r < merged.size(); ++r) {
      if (Dominates(obj, merged[r].objectives)) {
        ++stats->evicted;
        continue;
      }
      if (w != r) merged[w] = std::move(merged[r]);
      ++w;
    }
    merged.resize(w);
    merged.push_back(MooPoint{std::move(obj), x.Row(c)});
    ++stats->added;
  }
  UDAO_METRIC_COUNTER_ADD("udao.densify.candidates", total);
  UDAO_METRIC_COUNTER_ADD("udao.densify.points_added", stats->added);
  return merged;
}

}  // namespace udao
