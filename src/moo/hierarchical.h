#ifndef UDAO_MOO_HIERARCHICAL_H_
#define UDAO_MOO_HIERARCHICAL_H_

#include <map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "moo/mogd.h"
#include "moo/problem.h"
#include "spark/engine.h"

namespace udao {

/// Configuration of the hierarchical (shared-context x per-stage) solver.
struct HierarchicalConfig {
  /// Per-stage descent settings. The defaults are deliberately lighter than
  /// the frontier solver's: per-stage subproblems are 6-knob analytic
  /// minimizations, and boundary re-solves must fit inside ~10 ms budgets.
  /// Determinism follows the MogdSolver contract -- a solve's bits are a
  /// pure function of (problem, seed), never of pools or batching.
  MogdConfig mogd = [] {
    MogdConfig cfg;
    cfg.multistart = 4;
    cfg.max_iters = 60;
    return cfg;
  }();
  /// When set, every per-stage Minimize routes through this solver. The
  /// serving layer passes its SolveCoalescer here, so boundary re-solves
  /// from concurrent requests coalesce (window sharing + singleflight).
  /// Null solves inline on an owned MogdSolver with the same config.
  CoBatchSolver* co_solver = nullptr;
  /// Context candidates Solve() enumerates along the resource diagonal
  /// (small-and-cheap to large-and-fast). Each candidate fixes theta_c; the
  /// per-stage subproblems then decompose independently.
  int context_candidates = 6;
};

/// One point of the hierarchical frontier.
struct HierarchicalPoint {
  /// Full base conf: the candidate context plus, as a flat fallback, the
  /// dominant (most expensive) stage's per-stage knob choices folded in.
  Vector conf_raw;
  /// Per-stage knob values for every stage, keyed by plan-walk stage id.
  StageConfOverlay overlay;
  /// Composed objectives {predicted job latency_s, cost in cores}.
  Vector objectives;
};

/// Result of a hierarchical solve: mutually non-dominated points, one per
/// surviving context candidate.
struct HierarchicalResult {
  std::vector<HierarchicalPoint> points;
  /// True when the stop token fired before every candidate was solved; the
  /// points computed so far are still exact.
  bool degraded = false;
};

/// Hierarchical MOO for stage-level tuning (arXiv 2403.00995): shared
/// context knobs theta_c (resources) are chosen once per job, per-stage
/// knobs theta_p are solved independently per stage subproblem, and the two
/// compose through the engine's stage cost model:
///
///   latency(theta_c, theta_p_1..S) = overhead + sum_s stage_s(theta_c,
///                                                            theta_p_s)
///   cost(theta_c)                  = instances * cores
///
/// With cost a pure function of the context, fixing theta_c makes the job
/// latency separable: each stage's knobs are an independent single-objective
/// minimization over the relaxed stage cost, routed through CoBatchSolver::
/// Minimize (descent on the smooth relaxation; the reported objectives
/// re-evaluate the rounded conf through the exact quantized model).
class HierarchicalMoo {
 public:
  /// `engine` supplies the stage cost model; non-owning, must outlive this.
  HierarchicalMoo(const SparkEngine* engine, HierarchicalConfig config);

  /// Full hierarchical solve for `flow` from planner estimates: enumerates
  /// context candidates, solves every stage subproblem per candidate, and
  /// returns the composed non-dominated frontier. `base_raw` supplies the
  /// plan-time knobs every candidate shares. Anytime: when `stop` fires the
  /// remaining candidates are skipped and the result is tagged degraded.
  StatusOr<HierarchicalResult> Solve(const Dataflow& flow,
                                     const Vector& base_raw,
                                     const StopToken& stop) const;

  /// Boundary re-solve: per-stage knobs for stages [first_stage, size) of
  /// `stages` with the context (and plan-time knobs) fixed by `base_raw`.
  /// This is the entry AQE-style boundary hooks call with *observed*
  /// profiles. Fails -- rather than returning a half-tuned overlay -- when
  /// `stop` fires before every remaining stage was solved, so callers keep
  /// their incumbent config (the safe-online-tuning fallback).
  StatusOr<StageConfOverlay> ResolveStages(const Vector& base_raw,
                                           const std::vector<StageProfile>& stages,
                                           int first_stage,
                                           WorkloadClass wclass,
                                           const StopToken& stop) const;

  const HierarchicalConfig& config() const { return config_; }

 private:
  /// Solves one stage subproblem; returns the chosen raw values keyed by
  /// full-space knob index.
  std::map<int, double> SolveOneStage(const Vector& base_raw,
                                      const StageProfile& stage,
                                      WorkloadClass wclass,
                                      const StopToken& stop) const;

  const SparkEngine* engine_;
  HierarchicalConfig config_;
  MogdSolver inline_solver_;
};

}  // namespace udao

#endif  // UDAO_MOO_HIERARCHICAL_H_
