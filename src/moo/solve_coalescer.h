#ifndef UDAO_MOO_SOLVE_COALESCER_H_
#define UDAO_MOO_SOLVE_COALESCER_H_

#include <chrono>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "moo/mogd.h"

namespace udao {

/// Tuning for the cross-request solve coalescer.
struct SolveCoalescerConfig {
  /// Flush the window as soon as this many CO problems are pending across
  /// submissions. One fused descent over ~max_batch problems is the target
  /// GEMM shape; larger windows add queueing latency for little extra
  /// arithmetic intensity.
  int max_batch = 32;
  /// ... or as soon as the oldest pending submission has waited this long.
  /// This bounds the latency a lone request pays for the chance to share its
  /// GEMM stream with a neighbor; it is the only latency the coalescer ever
  /// adds.
  double max_wait_us = 200.0;
  /// Solver settings. MUST equal the MogdConfig of the ProgressiveFrontier
  /// instances that route through this coalescer (same seed, iterations,
  /// learning rate, alpha, pool): the coalescer re-derives each problem's
  /// seed from `mogd.seed` exactly as MogdSolver::SolveBatch would, which is
  /// what keeps coalesced solves bitwise-identical to solo ones.
  MogdConfig mogd;
  /// Capacity of the solved-subproblem memo (identical-subproblem coalescing
  /// across windows). A solve's bits are a pure function of (problem
  /// identity, CoProblem, seed); concurrent tenants replaying the same
  /// deterministic probe sequence hit the memo instead of re-descending.
  /// Entries whose stop token fired mid-solve are never inserted, and
  /// deadline-armed submissions bypass the memo entirely so anytime
  /// semantics stay exact. 0 disables the memo (in-window dedup remains).
  int memo_capacity = 512;
};

/// Funnels MOGD constrained-optimization batches from concurrent requests
/// into shared fused solves: submissions arriving within a small time/size
/// window (`max_batch` problems / `max_wait_us`) are grouped by *fuse key*
/// -- parameter space + per-objective model identity + orientation, i.e.
/// "these problems evaluate through the same functions" -- and each group
/// runs as MogdSolver::SolveCoFused chunks on the shared compute pool. One
/// hundred concurrent tenants asking for frontiers drive one GEMM stream per
/// chunk instead of one hundred interleaved ones.
///
/// Determinism: a problem's solution depends only on (problem, CoProblem,
/// seed), and the coalescer assigns slot i of a submission the seed
/// `mogd.seed + 1000*i` -- the MogdSolver::SolveBatch contract -- so results
/// are bitwise-identical to solo solves no matter how submissions happen to
/// share windows, groups, or chunks (coalescer_test pins this).
///
/// Cancellation: each fused problem carries its own submitter's StopToken,
/// checked per lockstep iteration inside SolveCoFused. A cancelled or
/// deadline-expired request freezes with its best-so-far incumbent while its
/// batchmates keep descending -- one doomed request never stalls the window.
///
/// Identical-subproblem coalescing: that same determinism means two units
/// with identical (problem identity + structural space, CoProblem bytes,
/// slot seed) would compute identical bits, so the coalescer solves one and
/// shares the result -- via a singleflight registry (an identical unit
/// arriving while its twin is still descending, in this window or a later
/// one, attaches as a waiter to the pending solve) and a bounded LRU memo of
/// completed subproblems (pinning the objective models so a recycled model
/// address can never alias a stale entry). Concurrent tenants replaying the
/// same probe stream -- the thundering-herd shape the frontier cache cannot
/// absorb because every stampeding request misses before the first insert --
/// collapse to one descent stream. Deadline-armed submissions opt out of
/// both (their anytime truncation semantics stay exactly solo); a dedupable
/// slot descends under a never-stopping token, because a twin may attach at
/// any point mid-descent and must not receive bits truncated by the
/// representative's own cancellation (cancellation is still honored between
/// probes, at the frontier layer). A result is only memoized when its
/// governing stop never fired.
///
/// Threading: SolveBatch blocks the calling (admission) thread until its
/// results are ready, so callers use it exactly like MogdSolver::SolveBatch.
/// A dedicated single-thread flusher owns the window clock; fused chunks run
/// on `mogd.pool` via Submit (never ParallelFor, whose WaitIdle would convoy
/// on unrelated work), sized so a lone submission still spreads over the
/// pool like today's per-problem fan-out.
class SolveCoalescer : public CoBatchSolver {
 public:
  explicit SolveCoalescer(SolveCoalescerConfig config);
  /// Drains: flushes every pending submission, then waits (bounded polls)
  /// for in-flight fused chunks on the shared pool to deliver. Callers must
  /// destroy the coalescer before the compute pool.
  ~SolveCoalescer() override;

  SolveCoalescer(const SolveCoalescer&) = delete;
  SolveCoalescer& operator=(const SolveCoalescer&) = delete;

  /// CoBatchSolver surface: blocks until every problem in `problems` is
  /// solved, possibly fused with concurrent submissions. Falls back to an
  /// inline MogdSolver::SolveBatch when batching is off in the config or the
  /// coalescer is shutting down.
  std::vector<std::optional<CoResult>> SolveBatch(
      const MooProblem& problem, const std::vector<CoProblem>& problems,
      SolvePerf* perf, const StopToken& stop) override;

  /// Minimize-keyed singleflight (dedup only, no fusion): unconstrained
  /// reference-point solves keyed by (problem identity + structural space +
  /// target) -- user value bounds are deliberately absent from the key
  /// because Minimize never sees them, so tenants with different SLOs share
  /// one descent. A call that finds its key in flight blocks on the
  /// representative's result; completed solves land in the same bounded LRU
  /// memo as CO subproblems. Deadline-armed callers bypass both and solve
  /// solo inline (exact anytime semantics); the representative descends
  /// under a never-stopping token so a twin attaching mid-descent cannot
  /// receive truncated bits. Bits always equal a solo
  /// MogdSolver::Minimize with the shared config.
  CoResult Minimize(const MooProblem& problem, int target, SolvePerf* perf,
                    const StopToken& stop) override;

  /// Monotonic counters, for stats endpoints and the fusion tests.
  struct Stats {
    long long submissions = 0;      ///< SolveBatch calls that enqueued.
    long long problems = 0;         ///< CO problems across submissions.
    long long flushes = 0;          ///< Windows flushed.
    long long fuse_groups = 0;      ///< Fuse-key groups across flushes.
    long long fused_chunks = 0;     ///< SolveCoFused calls dispatched.
    long long fused_problems = 0;   ///< Problems that shared a chunk with a
                                    ///< problem of ANOTHER submission.
    long long inline_fallbacks = 0; ///< SolveBatch calls served inline.
    long long dedup_hits = 0;       ///< Problems served by joining an
                                    ///< identical in-flight representative
                                    ///< (singleflight, same or later window).
    long long memo_hits = 0;        ///< Problems served from the memo.
    long long min_solves = 0;       ///< Minimize calls admitted to the
                                    ///< singleflight path (all outcomes).
    long long min_dedup_hits = 0;   ///< Minimize calls served by joining an
                                    ///< in-flight identical solve.
    long long min_memo_hits = 0;    ///< Minimize calls served from the memo.
  };
  Stats stats() const;

  const SolveCoalescerConfig& config() const { return config_; }

 private:
  struct Submission;

  /// One memoized subproblem solve. `pins` keeps the objective models alive
  /// so the model-identity pointers baked into the key cannot be recycled
  /// into a different model while the entry is resident (same argument as
  /// the serving cache's explicit-model keying).
  struct MemoEntry {
    std::optional<CoResult> result;
    std::vector<std::shared_ptr<const ObjectiveModel>> pins;
    std::list<std::string>::iterator lru;
  };

  /// Singleflight state for one in-flight dedupable solve. Later flushes
  /// that meet the same dedup key attach (sub, index) waiters here instead
  /// of re-solving; the representative's delivery fans its bits out to every
  /// waiter and retires the registry entry. Guarded by mu_.
  struct SharedSlot {
    std::vector<std::pair<Submission*, int>> waiters;
  };

  /// Singleflight state for one in-flight Minimize solve. Waiters block on
  /// done_cv_ until the representative publishes `result`; the shared_ptr
  /// keeps the state alive for waiters that wake after the registry entry
  /// was retired. Fields are guarded by mu_ (stated here; guarded_by cannot
  /// name another object's mutex).
  struct MinFlight {
    bool done = false;
    CoResult result;
  };

  /// Body of the long-lived flusher task (runs on flusher_).
  void FlusherLoop();
  /// Groups `batch` by fuse key (deduplicating identical subproblems against
  /// the memo and within the window), chunks each group, and dispatches the
  /// chunks. Called by the flusher with mu_ NOT held.
  void Flush(std::vector<Submission*> batch);
  /// Inserts a solved subproblem into the memo, evicting LRU entries past
  /// capacity. Keeps the incumbent on key collision (two in-flight flushes
  /// can race to solve the same key; the bits agree).
  void MemoInsertLocked(std::string key, std::optional<CoResult> result,
                        std::vector<std::shared_ptr<const ObjectiveModel>> pins)
      UDAO_REQUIRES(mu_);

  const SolveCoalescerConfig config_;
  /// Solver all fused chunks run on; shares config_.mogd (and its pool
  /// pointer, though chunks never use it -- they ARE the parallelism).
  const MogdSolver solver_;

  mutable Mutex mu_;
  CondVar flush_cv_;  ///< Wakes the flusher (arrival/shutdown).
  CondVar done_cv_;   ///< Wakes blocked submitters.
  /// Pending submissions, oldest first. The pointed-to Submissions' result
  /// slots / remaining / done are mu_-guarded too (stated on the struct;
  /// guarded_by cannot name another object's mutex).
  std::vector<Submission*> pending_ UDAO_GUARDED_BY(mu_);
  int pending_problems_ UDAO_GUARDED_BY(mu_) = 0;
  int inflight_chunks_ UDAO_GUARDED_BY(mu_) = 0;
  bool shutdown_ UDAO_GUARDED_BY(mu_) = false;
  Stats stats_ UDAO_GUARDED_BY(mu_);
  /// Solved-subproblem memo: key -> entry, with recency order in memo_lru_
  /// (front = coldest).
  std::unordered_map<std::string, MemoEntry> memo_ UDAO_GUARDED_BY(mu_);
  std::list<std::string> memo_lru_ UDAO_GUARDED_BY(mu_);
  /// Singleflight registry: dedup key -> in-flight slot. Entries live from
  /// unit creation to delivery, so any identical unit -- same flush or a
  /// later one -- joins the pending solve instead of launching a redundant
  /// descent.
  std::unordered_map<std::string, std::shared_ptr<SharedSlot>> inflight_
      UDAO_GUARDED_BY(mu_);
  /// Minimize singleflight registry: key -> in-flight solve. Same lifetime
  /// discipline as inflight_ (insert at admission, erase at delivery).
  std::unordered_map<std::string, std::shared_ptr<MinFlight>> min_inflight_
      UDAO_GUARDED_BY(mu_);

  /// One worker dedicated to the window clock. Owned last-constructed /
  /// first-destroyed is irrelevant here; the destructor explicitly drains it
  /// before waiting out inflight chunks.
  std::unique_ptr<ThreadPool> flusher_;
};

}  // namespace udao

#endif  // UDAO_MOO_SOLVE_COALESCER_H_
