#ifndef UDAO_MOO_MOBO_H_
#define UDAO_MOO_MOBO_H_

#include "model/gp_model.h"
#include "moo/problem.h"
#include "moo/run_result.h"

namespace udao {

/// Multi-objective Bayesian optimization settings.
struct MoboConfig {
  /// Acquisition flavour:
  ///  - kQehvi follows qEHVI [Daulton et al. 2020]: Monte-Carlo expected
  ///    hypervolume improvement with a moderate candidate pool;
  ///  - kPesm follows PESM [Hernandez-Lobato et al. 2016]: an entropy-search
  ///    style acquisition whose much heavier per-iteration computation (large
  ///    pool, many MC draws, deeper GP refits) reproduces its slow wall-clock
  ///    profile from Fig. 4(d).
  enum class Kind { kQehvi, kPesm };
  Kind kind = Kind::kQehvi;
  /// BoTorch-style defaults: a 2(d+1)-scale initial design and per-probe
  /// surrogate refits, the dominant cost in Fig. 4(d)/5(d).
  int init_samples = 32;
  int candidate_pool = 96;
  int mc_samples = 24;
  /// MOBO delivers its first usable Pareto set only after this many
  /// acquisition steps (the paper requests sets of 10+ points); earlier
  /// snapshots report 100% uncertain space.
  int delivery_min_probes = 10;
  GpConfig gp;
  uint64_t seed = 31;
  MetricBox metric_box;
};

/// Runs MOBO for `num_points` acquisition steps: fit one GP surrogate per
/// objective on all observations, maximize the acquisition over a random
/// candidate pool, evaluate the winner on the true objective models, repeat.
/// The per-iteration surrogate refit dominates the cost, which is what makes
/// MOBO methods take tens to hundreds of seconds to produce a usable Pareto
/// set in the paper's comparison.
MooRunResult RunMobo(const MooProblem& problem, int num_points,
                     const MoboConfig& config = MoboConfig());

}  // namespace udao

#endif  // UDAO_MOO_MOBO_H_
