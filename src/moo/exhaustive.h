#ifndef UDAO_MOO_EXHAUSTIVE_H_
#define UDAO_MOO_EXHAUSTIVE_H_

#include <functional>
#include <optional>
#include <vector>

#include "moo/mogd.h"
#include "moo/pareto.h"
#include "moo/problem.h"

namespace udao {

/// Dense-enumeration reference solver, the repository's stand-in for a
/// general MINLP solver (the paper benchmarks Knitro, which takes 17-42
/// minutes per CO problem). It evaluates the objectives over a deterministic
/// low-discrepancy sweep of the (raw) parameter space -- thorough and
/// derivative-free, hence slow, but usable as ground truth in tests and as
/// the baseline of the MOGD-vs-MINLP benchmark.
class ExhaustiveSolver {
 public:
  /// `budget` = number of candidate configurations enumerated per solve.
  explicit ExhaustiveSolver(int budget = 20000) : budget_(budget) {}

  /// Approximate true Pareto frontier of the problem by enumerating `budget`
  /// configurations and Pareto-filtering them.
  std::vector<MooPoint> Frontier(const MooProblem& problem) const;

  /// Constrained single-objective solve over the same enumeration; nullopt
  /// when no enumerated point is feasible.
  std::optional<CoResult> SolveCo(const MooProblem& problem,
                                  const CoProblem& co) const;

  /// Unconstrained single-objective minimum over the enumeration.
  CoResult Minimize(const MooProblem& problem, int target) const;

  int budget() const { return budget_; }

 private:
  // Runs the enumeration in fixed-size chunks through the problem's batched
  // evaluation surface (one GEMM per objective per chunk for DNN models) and
  // hands each chunk's candidates plus per-objective values to `visit`;
  // f[j][r] is objective j at row r of xb, with `rows` valid rows.
  void SweepBatched(
      const MooProblem& problem,
      const std::function<void(const Matrix& xb, const std::vector<Vector>& f,
                               int rows)>& visit) const;

  int budget_;
};

}  // namespace udao

#endif  // UDAO_MOO_EXHAUSTIVE_H_
