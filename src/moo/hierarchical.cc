#include "moo/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/fault_injector.h"
#include "model/objective_model.h"

namespace udao {

namespace {

// The per-stage knob subspace: the BatchParamSpace() specs at the
// BatchStageKnobs() indices, in that order. No categoricals, so encoded
// dimension == knob count.
const ParamSpace& StageKnobSpace() {
  static const ParamSpace& space = *new ParamSpace([] {
    const ParamSpace& full = BatchParamSpace();
    std::vector<ParamSpec> specs;
    for (int idx : BatchStageKnobs()) specs.push_back(full.spec(idx));
    return specs;
  }());
  return space;
}

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Builds the analytic objective of one stage subproblem: encoded per-stage
// knobs -> relaxed raw values (no integer rounding -- the descent needs a
// slope) -> effective conf over `base_raw` -> relaxed stage seconds. The
// gradient falls back to CallableModel's central finite differences.
std::shared_ptr<const ObjectiveModel> MakeStageModel(const SparkEngine* engine,
                                                     Vector base_raw,
                                                     StageProfile stage,
                                                     WorkloadClass wclass) {
  const ParamSpace& sub = StageKnobSpace();
  const std::vector<int>& idx = BatchStageKnobs();
  auto fn = [engine, base_raw = std::move(base_raw), stage, wclass,
             &sub, &idx](const Vector& x) {
    Vector raw = base_raw;
    for (size_t j = 0; j < idx.size(); ++j) {
      const ParamSpec& s = sub.spec(static_cast<int>(j));
      raw[idx[j]] = s.lo + Clamp01(x[j]) * (s.hi - s.lo);
    }
    return engine->StageSecondsRelaxed(stage, SparkConf::FromRaw(raw), wclass);
  };
  return std::make_shared<CallableModel>("stage-latency", sub.EncodedDim(),
                                         std::move(fn));
}

// Strict Pareto dominance for minimization.
bool DominatesMin(const Vector& a, const Vector& b) {
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

}  // namespace

HierarchicalMoo::HierarchicalMoo(const SparkEngine* engine,
                                 HierarchicalConfig config)
    : engine_(engine), config_(std::move(config)),
      inline_solver_(config_.mogd) {
  UDAO_CHECK(engine_ != nullptr);
}

std::map<int, double> HierarchicalMoo::SolveOneStage(
    const Vector& base_raw, const StageProfile& stage, WorkloadClass wclass,
    const StopToken& stop) const {
  const ParamSpace& sub = StageKnobSpace();
  std::vector<ObjectiveSpec> objectives(1);
  objectives[0].name = "stage_latency_s";
  objectives[0].model = MakeStageModel(engine_, base_raw, stage, wclass);
  const MooProblem problem(&sub, std::move(objectives));

  SolvePerf perf;
  const CoResult result =
      config_.co_solver != nullptr
          ? config_.co_solver->Minimize(problem, 0, &perf, stop)
          : inline_solver_.Minimize(problem, 0, &perf, stop);

  // CoResult.raw is the rounded decode of the relaxed solution: already a
  // valid knob assignment (Decode clamps and quantizes).
  std::map<int, double> chosen;
  const std::vector<int>& idx = BatchStageKnobs();
  for (size_t j = 0; j < idx.size(); ++j) chosen[idx[j]] = result.raw[j];
  return chosen;
}

StatusOr<StageConfOverlay> HierarchicalMoo::ResolveStages(
    const Vector& base_raw, const std::vector<StageProfile>& stages,
    int first_stage, WorkloadClass wclass, const StopToken& stop) const {
  if (Status fault = UDAO_FAULT_SITE("moo.stage_resolve"); !fault.ok()) {
    return fault;
  }
  Status valid = BatchParamSpace().Validate(base_raw);
  if (!valid.ok()) return valid;
  if (first_stage < 0 || first_stage > static_cast<int>(stages.size())) {
    return Status::InvalidArgument("first_stage out of range");
  }

  StageConfOverlay overlay;
  for (int s = first_stage; s < static_cast<int>(stages.size()); ++s) {
    // All-or-nothing: a half-tuned plan is worse than the incumbent the
    // caller already has, so an expired budget fails the whole re-solve.
    if (stop.ShouldStop()) {
      return Status::DeadlineExceeded("stage re-solve budget exhausted");
    }
    overlay.overrides[s] = SolveOneStage(base_raw, stages[s], wclass, stop);
  }
  return overlay;
}

StatusOr<HierarchicalResult> HierarchicalMoo::Solve(
    const Dataflow& flow, const Vector& base_raw, const StopToken& stop) const {
  Status flow_ok = flow.Validate();
  if (!flow_ok.ok()) return flow_ok;
  const ParamSpace& full = BatchParamSpace();
  Status valid = full.Validate(base_raw);
  if (!valid.ok()) return valid;

  const WorkloadClass wclass = flow.workload_class();
  const int candidates = std::max(1, config_.context_candidates);

  HierarchicalResult result;
  std::vector<HierarchicalPoint> points;
  for (int i = 0; i < candidates; ++i) {
    if (stop.ShouldStop()) {
      result.degraded = true;
      break;
    }
    // Context diagonal: resource knobs swept jointly from the cheapest to
    // the largest allocation. Deterministic by construction.
    const double u =
        candidates == 1 ? 0.5 : static_cast<double>(i) / (candidates - 1);
    Vector candidate_raw = base_raw;
    for (int knob : BatchContextKnobs()) {
      const ParamSpec& s = full.spec(knob);
      candidate_raw[knob] =
          std::min(s.hi, std::max(s.lo, std::round(s.lo + u * (s.hi - s.lo))));
    }

    // Planner's view: estimated profiles under this candidate's plan-time
    // knobs. (Boundary re-solves later correct against observed profiles.)
    const std::vector<StageProfile> stages =
        engine_->PlanStages(flow, candidate_raw, /*planner_estimates=*/true);

    StatusOr<StageConfOverlay> overlay =
        ResolveStages(candidate_raw, stages, 0, wclass, stop);
    if (!overlay.ok()) {
      result.degraded = true;
      break;
    }

    // Compose: exact (quantized) stage costs under the rounded choices.
    HierarchicalPoint point;
    point.overlay = std::move(overlay).value();
    double latency = engine_->options().job_overhead_s;
    double worst_stage_s = -1.0;
    int dominant = 0;
    for (int s = 0; s < static_cast<int>(stages.size()); ++s) {
      const Vector eff = point.overlay.Resolve(s, candidate_raw);
      const double stage_s =
          engine_->StageSeconds(stages[s], SparkConf::FromRaw(eff), wclass);
      latency += stage_s;
      if (stage_s > worst_stage_s) {
        worst_stage_s = stage_s;
        dominant = s;
      }
    }
    // Flat fallback conf: the dominant stage's knobs folded into the base.
    point.conf_raw = point.overlay.Resolve(dominant, candidate_raw);
    point.objectives = {latency,
                        SparkConf::FromRaw(candidate_raw).TotalCores()};
    points.push_back(std::move(point));
  }

  if (points.empty()) {
    return Status::DeadlineExceeded("no context candidate solved in budget");
  }
  // Keep the mutually non-dominated candidates, in sweep order.
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (j != i &&
          DominatesMin(points[j].objectives, points[i].objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.points.push_back(points[i]);
  }
  return result;
}

}  // namespace udao
