#ifndef UDAO_MOO_WEIGHTED_SUM_H_
#define UDAO_MOO_WEIGHTED_SUM_H_

#include "moo/mogd.h"
#include "moo/problem.h"
#include "moo/run_result.h"

namespace udao {

/// Settings for the Weighted Sum baseline.
struct WsConfig {
  /// Gradient-descent settings used for each scalarized solve. WS has no
  /// warm-started subregions, so each weight requires a global multi-start
  /// solve; defaults are heavier than PF's per-probe settings.
  MogdConfig mogd = MogdConfig{.multistart = 16, .max_iters = 200};
  /// Box used for uncertain-space reporting.
  MetricBox metric_box;
};

/// Weighted Sum baseline [Marler & Arora]: scalarizes the k objectives into
/// sum_j w_j F~_j for `num_points` weight vectors spread over the simplex and
/// solves each to (local) optimality. Known weaknesses reproduced here: it
/// only reaches convex-hull points, many weights collapse onto the same
/// extreme solutions (poor coverage, Fig. 4(b)), and the frontier is only
/// available once every weight has been solved.
MooRunResult RunWeightedSum(const MooProblem& problem, int num_points,
                            const WsConfig& config = WsConfig());

/// Evenly spreads `n` weight vectors over the k-simplex (endpoints included).
std::vector<Vector> SimplexWeights(int n, int k);

}  // namespace udao

#endif  // UDAO_MOO_WEIGHTED_SUM_H_
