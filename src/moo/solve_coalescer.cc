#include "moo/solve_coalescer.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/byte_key.h"
#include "common/check.h"
#include "common/metrics_registry.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

// Problems may fuse into one SolveCoFused call exactly when they evaluate
// through the same functions: same parameter space (encode/decode) and, per
// objective, the same model identity and orientation. Constraint bounds and
// targets live in the CoProblem and differ freely within a group.
std::string FuseKey(const MooProblem& problem) {
  std::string key;
  AppendPod(&key, reinterpret_cast<uintptr_t>(&problem.space()));
  for (int j = 0; j < problem.NumObjectives(); ++j) {
    const ObjectiveSpec& obj = problem.objective(j);
    AppendPod(&key, reinterpret_cast<uintptr_t>(obj.model->FuseIdentity()));
    AppendPod(&key, obj.minimize);
  }
  return key;
}

// Structural space content for dedup/memo keys. The fuse key carries the
// space by address, which is only safe within one window (submitters pin
// their problems for the exchange); memo entries outlive windows, so -- as
// in UdaoService::CacheKey -- a recycled address degrades to a miss unless
// the structure also matches, in which case sharing is semantically sound.
void AppendSpaceStructure(std::string* key, const ParamSpace& space) {
  AppendPod(key, space.NumParams());
  for (const ParamSpec& spec : space.specs()) {
    AppendString(key, spec.name);
    AppendPod(key, spec.type);
    AppendPod(key, spec.lo);
    AppendPod(key, spec.hi);
    AppendPod(key, spec.default_value);
    AppendPod(key, spec.NumCategories());
    for (const std::string& category : spec.categories) {
      AppendString(key, category);
    }
  }
}

// Everything in a CoProblem that steers the descent: target objective,
// constraint box, linear constraints. Vector lengths are framed so adjacent
// fields cannot alias.
void AppendCo(std::string* key, const CoProblem& co) {
  AppendPod(key, co.target);
  AppendPod(key, static_cast<int>(co.lower.size()));
  for (const double v : co.lower) AppendPod(key, v);
  for (const double v : co.upper) AppendPod(key, v);
  AppendPod(key, static_cast<int>(co.linear.size()));
  for (const CoProblem::LinearConstraint& lc : co.linear) {
    AppendPod(key, static_cast<int>(lc.normal.size()));
    for (const double v : lc.normal) AppendPod(key, v);
    AppendPod(key, lc.offset);
  }
}

}  // namespace

/// One blocked SolveBatch call. Lives on the submitter's stack for the whole
/// exchange (the submitter waits for `done`), so borrowing its problem,
/// CoProblem storage, and StopToken by pointer is safe. `remaining`, the
/// result slots, and `done` are guarded by the coalescer's mu_.
struct SolveCoalescer::Submission {
  const MooProblem* problem = nullptr;
  const std::vector<CoProblem>* cos = nullptr;
  const StopToken* stop = nullptr;
  std::vector<std::optional<CoResult>> results;
  std::vector<SolvePerf> perfs;
  int remaining = 0;
  bool done = false;
  Clock::time_point enqueued;
};

SolveCoalescer::SolveCoalescer(SolveCoalescerConfig config)
    : config_(config), solver_(config.mogd),
      flusher_(std::make_unique<ThreadPool>(1)) {
  UDAO_CHECK_GT(config_.max_batch, 0);
  UDAO_CHECK_GE(config_.max_wait_us, 0.0);
  flusher_->Submit([this] { FlusherLoop(); });
}

SolveCoalescer::~SolveCoalescer() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  flush_cv_.NotifyAll();
  // The flusher observes shutdown_, force-flushes whatever is pending, and
  // returns; WaitIdle + reset join it.
  flusher_->WaitIdle();
  flusher_.reset();
  // Fused chunks already dispatched run on the shared compute pool, which
  // this coalescer does not own; wait them out (bounded polls) so no task
  // touches this object after destruction.
  MutexLock lock(mu_);
  while (inflight_chunks_ > 0) {
    done_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
  }
}

std::vector<std::optional<CoResult>> SolveCoalescer::SolveBatch(
    const MooProblem& problem, const std::vector<CoProblem>& problems,
    SolvePerf* perf, const StopToken& stop) {
  if (problems.empty()) return {};
  // Inline (non-coalesced) service for the scalar-descent configuration,
  // which has no fused path, and for submissions racing shutdown.
  bool inline_solve = !config_.mogd.batched;

  Submission sub;
  sub.problem = &problem;
  sub.cos = &problems;
  sub.stop = &stop;
  sub.results.resize(problems.size());
  sub.perfs.resize(problems.size());
  sub.remaining = static_cast<int>(problems.size());
  {
    MutexLock lock(mu_);
    if (inline_solve || shutdown_) {
      inline_solve = true;
      ++stats_.inline_fallbacks;
    } else {
      sub.enqueued = Clock::now();
      pending_.push_back(&sub);
      pending_problems_ += static_cast<int>(problems.size());
      ++stats_.submissions;
      stats_.problems += static_cast<long long>(problems.size());
    }
  }
  if (inline_solve) {
    return solver_.SolveBatch(problem, problems, perf, stop);
  }
  flush_cv_.NotifyOne();
  UDAO_METRIC_COUNTER_ADD("udao.coalescer.submissions", 1);

  // Block until every slot is delivered. Bounded re-check period (the
  // notify makes the common case prompt; the bound makes a lost wakeup a
  // latency blip, never a hang).
  {
    MutexLock lock(mu_);
    while (!sub.done) {
      done_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
  }
  if (perf != nullptr) {
    for (const SolvePerf& p : sub.perfs) perf->Merge(p);
  }
  return std::move(sub.results);
}

CoResult SolveCoalescer::Minimize(const MooProblem& problem, int target,
                                  SolvePerf* perf, const StopToken& stop) {
  // Deadline carriers keep exactly-solo anytime truncation (the same opt-out
  // SolveBatch's dedup applies); pure cancellation still dedups, honored
  // between probes at the frontier layer.
  if (stop.deadline().has_deadline()) {
    return solver_.Minimize(problem, target, perf, stop);
  }
  // Key = problem identity + structural space + target. User value bounds
  // are deliberately absent: Minimize never reads them, so requests that
  // differ only in per-tenant SLOs share one descent. The "min|" tag keeps
  // the namespace disjoint from CO dedup keys in the shared memo.
  std::string key("min|");
  key += FuseKey(problem);
  AppendSpaceStructure(&key, problem.space());
  AppendPod(&key, target);

  std::shared_ptr<MinFlight> flight;
  bool representative = false;
  bool inline_solve = false;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      ++stats_.inline_fallbacks;
      inline_solve = true;
    } else {
      ++stats_.min_solves;
      if (config_.memo_capacity > 0) {
        auto mit = memo_.find(key);
        if (mit != memo_.end()) {
          memo_lru_.splice(memo_lru_.end(), memo_lru_, mit->second.lru);
          ++stats_.min_memo_hits;
          UDAO_CHECK(mit->second.result.has_value());
          return *mit->second.result;
        }
      }
      auto iit = min_inflight_.find(key);
      if (iit != min_inflight_.end()) {
        flight = iit->second;
        ++stats_.min_dedup_hits;
      } else {
        flight = std::make_shared<MinFlight>();
        min_inflight_.emplace(key, flight);
        representative = true;
      }
    }
  }
  if (inline_solve) {
    return solver_.Minimize(problem, target, perf, stop);
  }
  if (!representative) {
    // Join the in-flight twin. Like CO singleflight waiters, joiners get no
    // perf contribution -- the representative's caller owns the counters of
    // the one descent that actually ran.
    UDAO_METRIC_COUNTER_ADD("udao.coalescer.min_dedup_hits", 1);
    MutexLock lock(mu_);
    while (!flight->done) {
      done_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
    return flight->result;
  }
  // Descend under a never-stopping token: a twin may attach at any point
  // before delivery and must not receive bits truncated by this caller's
  // cancellation. Minimize is cheap and bounded (max_iters), so the overrun
  // a cancelled representative pays is one solve, not a frontier.
  static const StopToken kNeverStop;
  SolvePerf local;
  CoResult result = solver_.Minimize(problem, target, &local, kNeverStop);
  {
    MutexLock lock(mu_);
    min_inflight_.erase(key);
    flight->result = result;
    flight->done = true;
    std::vector<std::shared_ptr<const ObjectiveModel>> pins;
    pins.reserve(problem.NumObjectives());
    for (int j = 0; j < problem.NumObjectives(); ++j) {
      pins.push_back(problem.objective(j).model);
    }
    // Never-stopped bits equal an unstopped solo run -- safe to memoize.
    MemoInsertLocked(std::move(key), result, std::move(pins));
    done_cv_.NotifyAll();
  }
  if (perf != nullptr) perf->Merge(local);
  return result;
}

void SolveCoalescer::FlusherLoop() {
  while (true) {
    std::vector<Submission*> batch;
    int batch_problems = 0;
    {
      MutexLock lock(mu_);
      if (pending_.empty()) {
        if (shutdown_) return;
        flush_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
        continue;
      }
      const double oldest_us = std::chrono::duration<double, std::micro>(
                                   Clock::now() - pending_.front()->enqueued)
                                   .count();
      const bool full = pending_problems_ >= config_.max_batch;
      if (!full && !shutdown_ && oldest_us < config_.max_wait_us) {
        // Sleep out the remainder of the window; an arrival that fills the
        // batch (or shutdown) notifies and re-evaluates early.
        flush_cv_.WaitFor(mu_, std::chrono::duration<double, std::micro>(
                                   config_.max_wait_us - oldest_us));
        continue;
      }
      batch.swap(pending_);
      batch_problems = pending_problems_;
      pending_problems_ = 0;
      ++stats_.flushes;
    }
    UDAO_METRIC_COUNTER_ADD("udao.coalescer.flushes", 1);
    UDAO_METRIC_OBSERVE("udao.coalescer.flush_problems",
                        static_cast<double>(batch_problems));
    Flush(std::move(batch));
  }
}

void SolveCoalescer::Flush(std::vector<Submission*> batch) {
  struct Unit {
    Submission* sub;
    int index;  ///< Problem index within the submission; determines the seed.
    /// Non-null => this unit is the registered singleflight representative
    /// for dedup_key; delivery fans its bits out to slot->waiters (identical
    /// subproblems that joined, from this window or a later one) and retires
    /// the registry entry.
    std::shared_ptr<SharedSlot> slot;
    std::string dedup_key;
    /// Models pinned for the memo entry (see MemoEntry::pins).
    std::vector<std::shared_ptr<const ObjectiveModel>> pins;
  };
  // Group by fuse key, preserving first-seen order so dispatch order is a
  // function of arrival order alone. Along the way, identical subproblems
  // (same dedup key: problem identity + structural space + slot seed +
  // CoProblem bytes) are coalesced: first against the cross-window memo of
  // completed solves, then against the singleflight registry of in-flight
  // ones -- the latter catches both twins inside this window and a twin
  // still descending from an earlier window, which is the common shape under
  // staggered closed-loop clients. Deadline-armed submissions skip both so
  // their anytime semantics stay exactly solo.
  std::unordered_map<std::string, std::vector<Unit>> groups;
  std::vector<std::string> order;
  int total = 0;
  long long memo_hits = 0;
  long long dedup_hits = 0;
  for (Submission* sub : batch) {
    std::string fuse_key = FuseKey(*sub->problem);
    const bool dedupable = !sub->stop->deadline().has_deadline();
    const int n = static_cast<int>(sub->cos->size());
    for (int i = 0; i < n; ++i) {
      std::string dkey;
      std::shared_ptr<SharedSlot> slot;
      if (dedupable) {
        dkey = fuse_key;
        AppendSpaceStructure(&dkey, sub->problem->space());
        AppendPod(&dkey, i);
        AppendCo(&dkey, (*sub->cos)[i]);
        bool served = false;
        MutexLock lock(mu_);
        if (config_.memo_capacity > 0) {
          auto mit = memo_.find(dkey);
          if (mit != memo_.end()) {
            memo_lru_.splice(memo_lru_.end(), memo_lru_, mit->second.lru);
            sub->results[i] = mit->second.result;
            if (--sub->remaining == 0) {
              sub->done = true;
              done_cv_.NotifyAll();
            }
            ++stats_.memo_hits;
            ++memo_hits;
            served = true;
          }
        }
        if (!served) {
          auto iit = inflight_.find(dkey);
          if (iit != inflight_.end()) {
            iit->second->waiters.emplace_back(sub, i);
            ++stats_.dedup_hits;
            ++dedup_hits;
            served = true;
          } else {
            slot = std::make_shared<SharedSlot>();
            inflight_.emplace(dkey, slot);
          }
        }
        if (served) continue;
      }
      auto [it, inserted] = groups.try_emplace(fuse_key);
      if (inserted) order.push_back(it->first);
      Unit unit{sub, i, std::move(slot), std::move(dkey), {}};
      if (unit.slot != nullptr && config_.memo_capacity > 0) {
        unit.pins.reserve(sub->problem->NumObjectives());
        for (int j = 0; j < sub->problem->NumObjectives(); ++j) {
          unit.pins.push_back(sub->problem->objective(j).model);
        }
      }
      it->second.push_back(std::move(unit));
      ++total;
    }
  }
  if (memo_hits > 0) {
    UDAO_METRIC_COUNTER_ADD("udao.coalescer.memo_hits", memo_hits);
  }
  if (dedup_hits > 0) {
    UDAO_METRIC_COUNTER_ADD("udao.coalescer.dedup_hits", dedup_hits);
  }
  if (total == 0) return;
  {
    MutexLock lock(mu_);
    stats_.fuse_groups += static_cast<long long>(groups.size());
  }

  // Split each group into ~pool-width chunks: a lone submission still fans
  // out across the pool (today's parallelism), a full window turns into a
  // few large fused descents (the GEMM share).
  const int threads =
      config_.mogd.pool != nullptr ? config_.mogd.pool->num_threads() : 1;
  const int chunk_size = std::max(1, (total + threads - 1) / threads);

  for (const std::string& key : order) {
    std::vector<Unit>& units = groups[key];
    for (size_t begin = 0; begin < units.size(); begin += chunk_size) {
      const size_t end = std::min(units.size(), begin + chunk_size);
      std::vector<Unit> chunk(units.begin() + begin, units.begin() + end);
      bool cross_request = false;
      for (const Unit& u : chunk) {
        if (u.sub != chunk.front().sub) {
          cross_request = true;
          break;
        }
      }
      {
        MutexLock lock(mu_);
        ++inflight_chunks_;
        ++stats_.fused_chunks;
        if (cross_request) {
          stats_.fused_problems += static_cast<long long>(chunk.size());
        }
      }
      UDAO_METRIC_OBSERVE("udao.coalescer.chunk_problems",
                          static_cast<double>(chunk.size()));
      auto run = [this, chunk = std::move(chunk)]() mutable {
        // A registered (dedupable) slot descends under a never-stopping
        // token: an identical subproblem may join as a waiter at any point
        // before delivery, and the bits it receives must not have been
        // truncated by the representative's own cancellation. Cancellation
        // is still honored between probes at the frontier layer; deadline
        // carriers never register, so their per-iteration anytime truncation
        // stays exactly solo.
        static const StopToken kNeverStop;
        const MooProblem& problem = *chunk.front().sub->problem;
        std::vector<const CoProblem*> cos;
        std::vector<uint64_t> seeds;
        std::vector<const StopToken*> stops;
        cos.reserve(chunk.size());
        seeds.reserve(chunk.size());
        stops.reserve(chunk.size());
        for (const Unit& u : chunk) {
          cos.push_back(&(*u.sub->cos)[u.index]);
          // The MogdSolver::SolveBatch seed contract, per submission: slot i
          // gets mogd.seed + 1000*i regardless of window placement.
          seeds.push_back(config_.mogd.seed +
                          1000 * static_cast<uint64_t>(u.index));
          stops.push_back(u.slot != nullptr ? &kNeverStop : u.sub->stop);
        }
        std::vector<SolvePerf> perfs;
        std::vector<std::optional<CoResult>> results =
            solver_.SolveCoFused(problem, cos, seeds, stops, &perfs);
        {
          MutexLock lock(mu_);
          for (size_t i = 0; i < chunk.size(); ++i) {
            Unit& u = chunk[i];
            if (u.slot != nullptr) {
              // Retire the registry entry first so later lookups under this
              // same lock fall through to the memo insert below.
              inflight_.erase(u.dedup_key);
              for (const auto& [wsub, windex] : u.slot->waiters) {
                wsub->results[windex] = results[i];
                if (--wsub->remaining == 0) wsub->done = true;
              }
              // A registered slot's governing stop is kNeverStop, so these
              // bits were never truncated and equal an unstopped solo run --
              // safe to memoize.
              MemoInsertLocked(std::move(u.dedup_key), results[i],
                               std::move(u.pins));
            }
            u.sub->results[u.index] = std::move(results[i]);
            u.sub->perfs[u.index] = perfs[i];
            if (--u.sub->remaining == 0) u.sub->done = true;
          }
          --inflight_chunks_;
          // Notify while holding mu_: the destructor's drain loop exits the
          // moment it observes inflight_chunks_ == 0 under this mutex, and a
          // notify outside the lock could then touch a destroyed condvar.
          // Same for submitters, whose stack-owned Submission dies when
          // SolveBatch returns.
          done_cv_.NotifyAll();
        }
      };
      if (config_.mogd.pool != nullptr) {
        config_.mogd.pool->Submit(std::move(run));
      } else {
        run();
      }
    }
  }
}

void SolveCoalescer::MemoInsertLocked(
    std::string key, std::optional<CoResult> result,
    std::vector<std::shared_ptr<const ObjectiveModel>> pins) {
  if (config_.memo_capacity <= 0) return;
  auto [it, inserted] = memo_.try_emplace(std::move(key));
  // Two in-flight flushes can both solve a key that was open when each
  // looked; determinism says their bits agree, so keeping the incumbent (and
  // its LRU position) is correct.
  if (!inserted) return;
  it->second.result = std::move(result);
  it->second.pins = std::move(pins);
  memo_lru_.push_back(it->first);
  it->second.lru = std::prev(memo_lru_.end());
  while (static_cast<int>(memo_.size()) > config_.memo_capacity) {
    memo_.erase(memo_lru_.front());
    memo_lru_.pop_front();
  }
}

SolveCoalescer::Stats SolveCoalescer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace udao
