#ifndef UDAO_MOO_RECOMMEND_H_
#define UDAO_MOO_RECOMMEND_H_

#include <optional>

#include "moo/pareto.h"

namespace udao {

/// Which reference anchor the slope-based strategies use: the left anchor is
/// the frontier point minimizing the first objective, the right anchor the
/// one minimizing the second (2D only).
enum class SlopeSide { kLeft, kRight };

/// Utopia Nearest (UN): the Pareto point with the smallest Euclidean distance
/// to the Utopia point, measured on objectives normalized by [utopia, nadir].
/// Returns nullopt on an empty frontier.
std::optional<MooPoint> UtopiaNearest(const std::vector<MooPoint>& frontier,
                                      const Vector& utopia,
                                      const Vector& nadir);

/// Weighted Utopia Nearest (WUN): UN with per-objective importance weights
/// (the application preference vector); higher weight pulls the
/// recommendation toward optimality in that objective.
std::optional<MooPoint> WeightedUtopiaNearest(
    const std::vector<MooPoint>& frontier, const Vector& utopia,
    const Vector& nadir, const Vector& weights);

/// Element-wise product of internal (expert-knowledge) and external
/// (application-preference) weights, renormalized to sum 1 -- the
/// workload-aware WUN combination w = (w_1^I w_1^E, ..., w_k^I w_k^E).
Vector CombineWeights(const Vector& internal, const Vector& external);

/// Workload-aware internal weights for a (latency, cost) problem: long
/// jobs weight latency more (encouraging more cores), short jobs weight cost
/// more, based on the latency observed under the default configuration
/// (Section V "Recommendation").
Vector WorkloadAwareInternalWeights(double default_latency_s);

/// Slope Maximization (Appendix B): from the chosen reference anchor, picks
/// the frontier point with the steepest tradeoff slope. 2D only.
std::optional<MooPoint> SlopeMaximization(const std::vector<MooPoint>& frontier,
                                          SlopeSide side);

/// Knee Point (Appendix B): maximizes the ratio between the slopes to the two
/// reference anchors -- best gain in one objective per unit sacrificed in the
/// other. 2D only.
std::optional<MooPoint> KneePoint(const std::vector<MooPoint>& frontier,
                                  SlopeSide side);

}  // namespace udao

#endif  // UDAO_MOO_RECOMMEND_H_
