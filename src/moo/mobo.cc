#include "moo/mobo.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace udao {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

MooRunResult RunMobo(const MooProblem& problem, int num_points,
                     const MoboConfig& config) {
  UDAO_CHECK_GT(num_points, 0);
  const auto t0 = Clock::now();
  const int k = problem.NumObjectives();
  const int dim = problem.EncodedDim();
  Rng rng(config.seed);
  MooRunResult result;

  // PESM pays for a much heavier acquisition (entropy approximation): larger
  // candidate pool, more MC draws, deeper hyperparameter refits.
  const bool pesm = config.kind == MoboConfig::Kind::kPesm;
  const int pool = pesm ? config.candidate_pool * 4 : config.candidate_pool;
  const int mc = pesm ? config.mc_samples * 8 : config.mc_samples;
  GpConfig gp_config = config.gp;
  gp_config.hyper_opt_steps = pesm ? 240 : 80;

  // Initial space-filling design.
  std::vector<Vector> xs;
  std::vector<Vector> fs;
  for (const Vector& unit : LatinHypercube(config.init_samples, dim, &rng)) {
    xs.push_back(unit);
    fs.push_back(problem.Evaluate(unit));
  }

  auto frontier_of = [&]() {
    std::vector<MooPoint> points;
    for (size_t i = 0; i < xs.size(); ++i) {
      points.push_back(MooPoint{fs[i], xs[i]});
    }
    return ParetoFilter(std::move(points));
  };

  // Hypervolume reference: the worst observed value per objective, padded.
  auto reference = [&]() {
    Vector ref(k, -1e300);
    for (const Vector& f : fs) {
      for (int j = 0; j < k; ++j) ref[j] = std::max(ref[j], f[j]);
    }
    for (int j = 0; j < k; ++j) ref[j] += 0.1 * (std::abs(ref[j]) + 1.0);
    return ref;
  };

  for (int step = 0; step < num_points; ++step) {
    // Refit one surrogate per objective on everything observed so far.
    std::vector<std::shared_ptr<GpModel>> gps;
    Matrix x_train = Matrix::FromRows(xs);
    bool fit_ok = true;
    for (int j = 0; j < k; ++j) {
      Vector y(fs.size());
      for (size_t i = 0; i < fs.size(); ++i) y[i] = fs[i][j];
      auto gp = GpModel::Fit(x_train, y, gp_config);
      if (!gp.ok()) {
        fit_ok = false;
        break;
      }
      gps.push_back(*gp);
    }

    Vector next(dim);
    if (!fit_ok) {
      for (double& v : next) v = rng.Uniform();
    } else {
      const Vector ref = reference();
      std::vector<MooPoint> front = frontier_of();
      std::vector<Vector> front_objs;
      for (const MooPoint& p : front) front_objs.push_back(p.objectives);
      const double base_hv = DominatedHypervolume(front_objs, ref);

      double best_acq = -1.0;
      for (int c = 0; c < pool; ++c) {
        Vector cand(dim);
        for (double& v : cand) v = rng.Uniform();
        // Monte-Carlo EHVI: sample GP posteriors, average HV improvement.
        double acq = 0.0;
        Vector mean(k);
        Vector stddev(k);
        for (int j = 0; j < k; ++j) {
          gps[j]->PredictWithUncertainty(cand, &mean[j], &stddev[j]);
        }
        for (int s = 0; s < mc; ++s) {
          Vector draw(k);
          for (int j = 0; j < k; ++j) {
            draw[j] = mean[j] + stddev[j] * rng.Gaussian();
          }
          std::vector<Vector> with = front_objs;
          with.push_back(draw);
          acq += std::max(0.0, DominatedHypervolume(with, ref) - base_hv);
        }
        acq /= mc;
        if (acq > best_acq) {
          best_acq = acq;
          next = cand;
        }
      }
    }

    xs.push_back(next);
    fs.push_back(problem.Evaluate(next));

    std::vector<MooPoint> frontier = frontier_of();
    MooSnapshot snap;
    snap.seconds = SecondsSince(t0);
    snap.num_points = static_cast<int>(frontier.size());
    const bool deliverable = step + 1 >= config.delivery_min_probes;
    snap.uncertain_percent =
        (deliverable && config.metric_box.valid())
            ? UncertainSpacePercent(frontier, config.metric_box.utopia,
                                    config.metric_box.nadir)
            : 100.0;
    result.history.push_back(snap);
  }

  result.frontier = frontier_of();
  result.seconds_total = SecondsSince(t0);
  return result;
}

}  // namespace udao
