#ifndef UDAO_MOO_PARETO_H_
#define UDAO_MOO_PARETO_H_

#include <vector>

#include "common/matrix.h"
#include "common/random.h"

namespace udao {

/// One solution in objective space together with the (encoded) configuration
/// that achieves it. All objectives are in minimization orientation.
struct MooPoint {
  Vector objectives;       ///< k objective values (minimize).
  Vector conf_encoded;     ///< Encoded configuration in [0,1]^D.

  bool operator==(const MooPoint& other) const {
    return objectives == other.objectives;
  }
};

/// True iff `a` Pareto-dominates `b` under minimization: a <= b in every
/// objective and a < b in at least one (Definition III.1).
bool Dominates(const Vector& a, const Vector& b);

/// Removes every point dominated by another point in the set (and duplicate
/// objective vectors, keeping the first). Order of survivors follows the
/// input order.
std::vector<MooPoint> ParetoFilter(std::vector<MooPoint> points);

/// True iff no point in the set dominates another (a valid Pareto frontier).
bool MutuallyNonDominated(const std::vector<MooPoint>& points);

/// Volume of the axis-aligned hyperrectangle [lo, hi]; 0 if degenerate.
double HyperrectVolume(const Vector& lo, const Vector& hi);

/// Hypervolume dominated by `points` with respect to reference point `ref`
/// (which every point must weakly dominate): the Lebesgue measure of
/// union_i [p_i, ref]. Exact sweep in 2D, recursive slicing in 3D, and
/// deterministic quasi-Monte-Carlo for k >= 4.
double DominatedHypervolume(const std::vector<Vector>& points,
                            const Vector& ref);

/// Hypervolume the frontier dominates within the [utopia, nadir] box, with
/// the nadir as reference point (points are clamped into the box first, as
/// in UncertainSpacePercent). The frontier-quality measure the densification
/// gates compare: adding any non-dominated, non-duplicate point inside the
/// box strictly increases it. 0 for an empty frontier or a degenerate box.
double BoxHypervolume(const std::vector<MooPoint>& frontier,
                      const Vector& utopia, const Vector& nadir);

/// The paper's uncertain-space measure as a percentage of the Utopia-Nadir
/// box: the volume not yet proven to be dominated by the frontier nor
/// impossible (i.e. dominating the frontier). 100 for an empty frontier, and
/// it shrinks toward 0 as the frontier fills in. Points outside the box are
/// clamped onto it.
double UncertainSpacePercent(const std::vector<MooPoint>& frontier,
                             const Vector& utopia, const Vector& nadir);

}  // namespace udao

#endif  // UDAO_MOO_PARETO_H_
