#ifndef UDAO_MOO_PROBLEM_H_
#define UDAO_MOO_PROBLEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/objective_model.h"
#include "spark/conf.h"

namespace udao {

/// One objective, shared by every layer of the stack (the tuning-facing
/// `UdaoRequest` and the solver-facing `MooProblem` use this same struct).
///
/// Conventions:
///  - Direction: `minimize` describes the *natural* orientation of the
///    objective ("latency: minimize", "throughput: maximize"). The solver
///    layer negates maximization objectives internally so the whole problem
///    is a minimization (Problem III.1); values reported back to callers are
///    always in the natural orientation.
///  - Bounds: `lower`/`upper` are the optional user value constraints
///    F_i in [lower, upper], stated in the natural (un-negated) orientation.
///    ±kInf means unbounded on that side.
///  - Model resolution: the tuning layer accepts a null `model` and resolves
///    it by `name` against its trained-model registry (or trains one from
///    traces). By the time a `MooProblem` is constructed the model must be
///    non-null; MooProblem checks this.
struct ObjectiveSpec {
  std::string name;
  std::shared_ptr<const ObjectiveModel> model;
  bool minimize = true;
  double lower = -kInf;
  double upper = kInf;

  static constexpr double kInf = 1e300;
};

/// Transitional alias: solver-side code historically named this
/// MooObjective. New code should say ObjectiveSpec.
using MooObjective = ObjectiveSpec;

/// The multi-objective optimization problem (Problem III.1): k objective
/// models over one parameter space. All evaluation happens in the encoded
/// [0,1]^D space; callers convert to raw knob values via space().Decode().
class MooProblem {
 public:
  MooProblem(const ParamSpace* space, std::vector<ObjectiveSpec> objectives);

  int NumObjectives() const { return static_cast<int>(objectives_.size()); }
  int EncodedDim() const { return space_->EncodedDim(); }
  const ParamSpace& space() const { return *space_; }
  const ObjectiveSpec& objective(int i) const { return objectives_[i]; }

  /// Evaluates all objectives at encoded point x, in minimization
  /// orientation (maximization objectives come back negated).
  Vector Evaluate(const Vector& x) const;

  /// Evaluates one objective (minimization orientation).
  double EvaluateOne(int i, const Vector& x) const;

  /// Gradient of objective i (minimization orientation).
  Vector Gradient(int i, const Vector& x) const;

  /// Mean/stddev of objective i (minimization orientation: mean negated for
  /// maximization objectives, stddev unchanged).
  void EvaluateWithUncertainty(int i, const Vector& x, double* mean,
                               double* stddev) const;

  /// Batched forms over rows of `x`, in minimization orientation. These
  /// forward to the model's batch surface, so DNN objectives collapse to one
  /// GEMM per call; MOGD's lockstep multistart loop and PF-AP's grid cells
  /// enter evaluation through here.
  void EvaluateOneBatch(int i, const Matrix& x, Vector* out) const;
  /// Gradients of objective i for every row; when `values` is non-null it
  /// receives the objective values from the same forward pass (fused
  /// value+gradient -- MOGD needs both each Adam iteration).
  void GradientBatch(int i, const Matrix& x, Matrix* grads,
                     Vector* values = nullptr) const;
  void EvaluateWithUncertaintyBatch(int i, const Matrix& x, Vector* mean,
                                    Vector* stddev) const;

  /// User value constraints in minimization orientation: objective i must lie
  /// in [lower(i), upper(i)] (±ObjectiveSpec::kInf when unbounded).
  double UserLower(int i) const;
  double UserUpper(int i) const;

  /// Converts a value of objective i from minimization orientation back to
  /// its natural sign (identity for minimized objectives).
  double ToNatural(int i, double v) const {
    return objectives_[i].minimize ? v : -v;
  }

 private:
  const ParamSpace* space_;
  std::vector<ObjectiveSpec> objectives_;
};

}  // namespace udao

#endif  // UDAO_MOO_PROBLEM_H_
