#ifndef UDAO_MOO_PROBLEM_H_
#define UDAO_MOO_PROBLEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/objective_model.h"
#include "spark/conf.h"

namespace udao {

/// One objective of a MOO problem: a predictive model plus its direction.
/// Maximization objectives (e.g. throughput) are negated internally so the
/// whole problem is a minimization (Problem III.1).
struct MooObjective {
  std::string name;
  std::shared_ptr<const ObjectiveModel> model;
  bool minimize = true;
  /// Optional user value constraint F_i in [lower, upper] (in the original,
  /// un-negated orientation). NaN means unbounded.
  double user_lower = -kInf;
  double user_upper = kInf;

  static constexpr double kInf = 1e300;
};

/// The multi-objective optimization problem (Problem III.1): k objective
/// models over one parameter space. All evaluation happens in the encoded
/// [0,1]^D space; callers convert to raw knob values via space().Decode().
class MooProblem {
 public:
  MooProblem(const ParamSpace* space, std::vector<MooObjective> objectives);

  int NumObjectives() const { return static_cast<int>(objectives_.size()); }
  int EncodedDim() const { return space_->EncodedDim(); }
  const ParamSpace& space() const { return *space_; }
  const MooObjective& objective(int i) const { return objectives_[i]; }

  /// Evaluates all objectives at encoded point x, in minimization
  /// orientation (maximization objectives come back negated).
  Vector Evaluate(const Vector& x) const;

  /// Evaluates one objective (minimization orientation).
  double EvaluateOne(int i, const Vector& x) const;

  /// Gradient of objective i (minimization orientation).
  Vector Gradient(int i, const Vector& x) const;

  /// Mean/stddev of objective i (minimization orientation: mean negated for
  /// maximization objectives, stddev unchanged).
  void EvaluateWithUncertainty(int i, const Vector& x, double* mean,
                               double* stddev) const;

  /// User value constraints in minimization orientation: objective i must lie
  /// in [lower(i), upper(i)] (±MooObjective::kInf when unbounded).
  double UserLower(int i) const;
  double UserUpper(int i) const;

  /// Converts a value of objective i from minimization orientation back to
  /// its natural sign (identity for minimized objectives).
  double ToNatural(int i, double v) const {
    return objectives_[i].minimize ? v : -v;
  }

 private:
  const ParamSpace* space_;
  std::vector<MooObjective> objectives_;
};

}  // namespace udao

#endif  // UDAO_MOO_PROBLEM_H_
