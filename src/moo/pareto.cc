#include "moo/pareto.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace udao {

bool Dominates(const Vector& a, const Vector& b) {
  UDAO_CHECK_EQ(a.size(), b.size());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<MooPoint> ParetoFilter(std::vector<MooPoint> points) {
  std::vector<bool> keep(points.size(), true);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size() && keep[i]; ++j) {
      if (i == j) continue;
      if (Dominates(points[j].objectives, points[i].objectives)) {
        keep[i] = false;
      }
      // Deduplicate equal objective vectors: keep the first occurrence.
      if (j < i && points[j].objectives == points[i].objectives) {
        keep[i] = false;
      }
    }
  }
  std::vector<MooPoint> out;
  out.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(std::move(points[i]));
  }
  return out;
}

bool MutuallyNonDominated(const std::vector<MooPoint>& points) {
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[i].objectives, points[j].objectives)) {
        return false;
      }
    }
  }
  return true;
}

double HyperrectVolume(const Vector& lo, const Vector& hi) {
  UDAO_CHECK_EQ(lo.size(), hi.size());
  double volume = 1.0;
  for (size_t i = 0; i < lo.size(); ++i) {
    if (hi[i] <= lo[i]) return 0.0;
    volume *= hi[i] - lo[i];
  }
  return volume;
}

namespace {

// Keeps only points that strictly improve on `ref` in every coordinate after
// clamping; points at or beyond the reference contribute nothing.
std::vector<Vector> ClampAgainstRef(const std::vector<Vector>& points,
                                    const Vector& ref) {
  std::vector<Vector> out;
  out.reserve(points.size());
  for (const Vector& p : points) {
    UDAO_CHECK_EQ(p.size(), ref.size());
    bool contributes = true;
    for (size_t d = 0; d < p.size(); ++d) {
      if (p[d] >= ref[d]) {
        contributes = false;
        break;
      }
    }
    if (contributes) out.push_back(p);
  }
  return out;
}

double Hypervolume2D(std::vector<Vector> points, const Vector& ref) {
  if (points.empty()) return 0.0;
  std::sort(points.begin(), points.end());
  double hv = 0.0;
  double y_bound = ref[1];
  for (const Vector& p : points) {
    if (p[1] < y_bound) {
      hv += (ref[0] - p[0]) * (y_bound - p[1]);
      y_bound = p[1];
    }
  }
  return hv;
}

double Hypervolume3D(std::vector<Vector> points, const Vector& ref) {
  if (points.empty()) return 0.0;
  // Sweep slabs along the third axis: within [z_i, z_next) the dominated
  // (x, y) region is the 2D hypervolume of all points with z <= z_i.
  std::vector<double> levels;
  levels.reserve(points.size());
  for (const Vector& p : points) levels.push_back(p[2]);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  double hv = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    const double z_lo = levels[i];
    const double z_hi = (i + 1 < levels.size()) ? levels[i + 1] : ref[2];
    std::vector<Vector> slab;
    for (const Vector& p : points) {
      if (p[2] <= z_lo) slab.push_back({p[0], p[1]});
    }
    hv += Hypervolume2D(std::move(slab), {ref[0], ref[1]}) * (z_hi - z_lo);
  }
  return hv;
}

double HypervolumeQmc(const std::vector<Vector>& points, const Vector& ref) {
  // Deterministic quasi-Monte-Carlo over the bounding box [lo, ref].
  const size_t k = ref.size();
  Vector lo = ref;
  for (const Vector& p : points) {
    for (size_t d = 0; d < k; ++d) lo[d] = std::min(lo[d], p[d]);
  }
  const double box = HyperrectVolume(lo, ref);
  if (box <= 0.0) return 0.0;
  constexpr int kSamples = 8192;
  const auto samples = HaltonSequence(kSamples, static_cast<int>(k));
  int dominated = 0;
  Vector q(k);
  for (const auto& s : samples) {
    for (size_t d = 0; d < k; ++d) q[d] = lo[d] + s[d] * (ref[d] - lo[d]);
    for (const Vector& p : points) {
      bool dom = true;
      for (size_t d = 0; d < k; ++d) {
        if (p[d] > q[d]) {
          dom = false;
          break;
        }
      }
      if (dom) {
        ++dominated;
        break;
      }
    }
  }
  return box * dominated / kSamples;
}

}  // namespace

double DominatedHypervolume(const std::vector<Vector>& points,
                            const Vector& ref) {
  std::vector<Vector> clamped = ClampAgainstRef(points, ref);
  if (clamped.empty()) return 0.0;
  switch (ref.size()) {
    case 1: {
      double best = ref[0];
      for (const Vector& p : clamped) best = std::min(best, p[0]);
      return ref[0] - best;
    }
    case 2:
      return Hypervolume2D(std::move(clamped), ref);
    case 3:
      return Hypervolume3D(std::move(clamped), ref);
    default:
      return HypervolumeQmc(clamped, ref);
  }
}

double BoxHypervolume(const std::vector<MooPoint>& frontier,
                      const Vector& utopia, const Vector& nadir) {
  if (frontier.empty() || HyperrectVolume(utopia, nadir) <= 0.0) return 0.0;
  const size_t k = utopia.size();
  std::vector<Vector> clamped;
  clamped.reserve(frontier.size());
  for (const MooPoint& p : frontier) {
    UDAO_CHECK_EQ(p.objectives.size(), k);
    Vector c(k);
    for (size_t d = 0; d < k; ++d) {
      c[d] = std::min(nadir[d], std::max(utopia[d], p.objectives[d]));
    }
    clamped.push_back(std::move(c));
  }
  return DominatedHypervolume(clamped, nadir);
}

double UncertainSpacePercent(const std::vector<MooPoint>& frontier,
                             const Vector& utopia, const Vector& nadir) {
  const double total = HyperrectVolume(utopia, nadir);
  if (total <= 0.0) return 0.0;
  if (frontier.empty()) return 100.0;
  const size_t k = utopia.size();

  // Clamp frontier points into the box.
  std::vector<Vector> clamped;
  clamped.reserve(frontier.size());
  for (const MooPoint& p : frontier) {
    UDAO_CHECK_EQ(p.objectives.size(), k);
    Vector c(k);
    for (size_t d = 0; d < k; ++d) {
      c[d] = std::min(nadir[d], std::max(utopia[d], p.objectives[d]));
    }
    clamped.push_back(std::move(c));
  }

  // Volume dominated by the frontier (no Pareto point can be there).
  const double dominated = DominatedHypervolume(clamped, nadir);

  // Volume dominating the frontier (would contradict Pareto optimality of
  // the found points, hence proven empty): the union of boxes [utopia, p],
  // computed as a hypervolume in the sign-flipped space.
  std::vector<Vector> flipped;
  flipped.reserve(clamped.size());
  for (const Vector& p : clamped) {
    Vector f(k);
    for (size_t d = 0; d < k; ++d) f[d] = -p[d];
    flipped.push_back(std::move(f));
  }
  Vector flipped_ref(k);
  for (size_t d = 0; d < k; ++d) flipped_ref[d] = -utopia[d];
  const double impossible = DominatedHypervolume(flipped, flipped_ref);

  const double uncertain = total - dominated - impossible;
  return 100.0 * std::min(1.0, std::max(0.0, uncertain / total));
}

}  // namespace udao
