#ifndef UDAO_MOO_PROGRESSIVE_FRONTIER_H_
#define UDAO_MOO_PROGRESSIVE_FRONTIER_H_

#include <queue>
#include <vector>

#include "common/deadline.h"
#include "moo/exhaustive.h"
#include "moo/mogd.h"
#include "moo/pareto.h"
#include "moo/problem.h"

namespace udao {

/// Variant selection and tuning for the Progressive Frontier algorithms.
struct PfConfig {
  /// PF-AP when true: each popped hyperrectangle is partitioned into an
  /// l^k grid whose CO problems are solved in parallel. PF-AS when false:
  /// one middle-point probe at a time (Algorithm 1).
  bool parallel = false;
  /// The grid degree l of PF-AP.
  int grid_per_dim = 2;
  /// CO subroutine settings (MOGD, Section IV-B).
  MogdConfig mogd;
  /// PF-S: replace MOGD with the dense reference solver, giving the
  /// deterministic-but-slow sequential algorithm of Section IV-A.
  bool use_exhaustive = false;
  int exhaustive_budget = 4096;
  /// Safety cap on probes per Run() call (middle-point probes can come back
  /// empty without adding points).
  int max_probes = 2000;
  /// Ablation switch: explore hyperrectangles in FIFO order instead of
  /// largest-volume-first, disabling the paper's uncertainty-aware property.
  bool fifo_queue = false;
  /// When set (and use_exhaustive is off), every CO batch -- the PF-AP grid
  /// fan-out and the PF-AS single probe alike -- is routed through this
  /// solver instead of the private MogdSolver. Non-owning; the serving layer
  /// points it at its cross-request SolveCoalescer so concurrent requests
  /// share fused GEMM streams. The CoBatchSolver contract (mogd.h) pins
  /// per-problem seeds, so routing never changes solutions -- like the MOGD
  /// pool pointer, it is deliberately excluded from the options fingerprint.
  /// Reference-point minimizations (SolveMin) route through it too: they are
  /// unconstrained, so the coalescer's Minimize singleflight can serve every
  /// hot-tenant request's Initialize from one shared descent.
  CoBatchSolver* co_solver = nullptr;
};

/// One timed measurement of frontier progress, used to draw the paper's
/// uncertain-space-vs-time curves (Fig. 4(a)/4(d)/5(d)).
struct PfSnapshot {
  double seconds = 0;            ///< Elapsed optimization time so far.
  int num_points = 0;            ///< Pareto points found so far.
  double uncertain_percent = 0;  ///< Remaining uncertain space, % of box.
};

/// Output of a Progressive Frontier run.
struct PfResult {
  std::vector<MooPoint> frontier;    ///< Non-dominated solutions found.
  Vector utopia;                     ///< Initial Utopia point (Def. III.2).
  Vector nadir;                      ///< Initial Nadir point.
  double uncertain_percent = 100.0;  ///< Final uncertain space.
  std::vector<PfSnapshot> history;   ///< Per-probe progress.
  int probes = 0;                    ///< CO problems solved.
  /// True when the last Run() stopped on a deadline/cancellation before
  /// reaching its point target: the frontier is valid (mutually
  /// non-dominated, every point real) but best-so-far rather than complete
  /// -- the paper's anytime property. A later Run() that finishes normally
  /// clears it. Serving layers must not cache degraded frontiers.
  bool degraded = false;
  /// Aggregated MOGD counters over every CO solve of the run (reference
  /// points, probes, and PF-AP grid cells). Zero when use_exhaustive is on.
  SolvePerf perf;
};

/// The paper's core contribution: incrementally transforms the MOO problem
/// into a series of constrained single-objective problems via iterative
/// middle-point probes over a shrinking set of hyperrectangles
/// (Sections III-IV).
///
/// The algorithm is *incremental* -- Run(m) followed by Run(m') with m' > m
/// extends the same frontier, never contradicting earlier answers (the
/// consistency property evolutionary methods lack) -- and *uncertainty-
/// aware* -- the hyperrectangle with the largest volume is probed first, so
/// computation goes where the frontier is least known.
class ProgressiveFrontier {
 public:
  ProgressiveFrontier(const MooProblem* problem, PfConfig config = PfConfig());

  /// Expands the frontier until it holds at least `total_points` points, the
  /// uncertain space is exhausted, or the probe cap is hit. Returns the
  /// up-to-date result; callable repeatedly with growing targets.
  const PfResult& Run(int total_points);

  /// Deadline-aware Run: checks `stop` once per expansion (and the CO
  /// solves check it once per Adam iteration). When it fires, returns the
  /// best-so-far frontier with result().degraded == true. Initialization's
  /// reference-point solves always execute (stop-aware, so they finish in
  /// one iteration under an expired budget), which is what keeps even a
  /// zero-budget frontier non-empty whenever the box is feasible. With the
  /// default token this is bitwise-identical to Run(total_points).
  const PfResult& Run(int total_points, const StopToken& stop);

  const PfResult& result() const { return result_; }

 private:
  struct Rect {
    Vector utopia;
    Vector nadir;
    double volume;
    /// Heap key: the volume for uncertainty-aware order, or a decreasing
    /// sequence number for FIFO order (ablation).
    double priority;
    bool operator<(const Rect& other) const {  // max-heap by priority
      return priority < other.priority;
    }
  };

  void Initialize(const StopToken& stop);
  // Splits [u, n] at interior point m into its 2^k corner cells and pushes
  // every cell except the masked-out corners (all-lower and/or all-upper).
  void PushSplit(const Vector& u, const Vector& n, const Vector& m,
                 bool drop_all_lower, bool drop_all_upper);
  void AddPoint(const CoResult& co);
  void Snapshot();
  /// Total volume of the queued hyperrectangles, maintained incrementally on
  /// every push/pop (recomputing it per probe meant copying the whole
  /// priority_queue once per Snapshot). Debug builds cross-check the running
  /// sum against a recomputation.
  double QueueVolume() const;
  // Non-const: both fold their MOGD counters into result_.perf.
  std::optional<CoResult> Solve(const CoProblem& co, const StopToken& stop);
  CoResult SolveMin(int target, const StopToken& stop);

  const MooProblem* problem_;
  PfConfig config_;
  MogdSolver mogd_;
  ExhaustiveSolver exhaustive_;
  bool initialized_ = false;
  bool box_empty_ = false;
  std::priority_queue<Rect> queue_;
  /// Running sum of queue_'s rect volumes (see QueueVolume()).
  double queue_volume_ = 0;
  /// +=/-= updates applied to queue_volume_ since its last exact resync;
  /// scales the debug-build drift tolerance in QueueVolume().
  long long volume_updates_ = 0;
  double initial_volume_ = 0;
  double next_seq_ = 0;  // FIFO ordering counter (ablation)
  double elapsed_s_ = 0;
  PfResult result_;
};

}  // namespace udao

#endif  // UDAO_MOO_PROGRESSIVE_FRONTIER_H_
