#include "moo/problem.h"

#include "common/check.h"

namespace udao {

MooProblem::MooProblem(const ParamSpace* space,
                       std::vector<ObjectiveSpec> objectives)
    : space_(space), objectives_(std::move(objectives)) {
  UDAO_CHECK(space_ != nullptr);
  UDAO_CHECK(!objectives_.empty());
  for (const ObjectiveSpec& obj : objectives_) {
    UDAO_CHECK(obj.model != nullptr);
    UDAO_CHECK_EQ(obj.model->input_dim(), space_->EncodedDim());
    UDAO_CHECK(obj.lower <= obj.upper);
  }
}

Vector MooProblem::Evaluate(const Vector& x) const {
  Vector f(objectives_.size());
  for (size_t i = 0; i < objectives_.size(); ++i) {
    f[i] = EvaluateOne(static_cast<int>(i), x);
  }
  return f;
}

double MooProblem::EvaluateOne(int i, const Vector& x) const {
  const ObjectiveSpec& obj = objectives_[i];
  const double v = obj.model->Predict(x);
  return obj.minimize ? v : -v;
}

Vector MooProblem::Gradient(int i, const Vector& x) const {
  const ObjectiveSpec& obj = objectives_[i];
  Vector g = obj.model->InputGradient(x);
  if (!obj.minimize) {
    for (double& v : g) v = -v;
  }
  return g;
}

void MooProblem::EvaluateWithUncertainty(int i, const Vector& x, double* mean,
                                         double* stddev) const {
  const ObjectiveSpec& obj = objectives_[i];
  obj.model->PredictWithUncertainty(x, mean, stddev);
  if (!obj.minimize) *mean = -*mean;
}

void MooProblem::EvaluateOneBatch(int i, const Matrix& x, Vector* out) const {
  const ObjectiveSpec& obj = objectives_[i];
  obj.model->PredictBatch(x, out);
  if (!obj.minimize) {
    for (double& v : *out) v = -v;
  }
}

void MooProblem::GradientBatch(int i, const Matrix& x, Matrix* grads,
                               Vector* values) const {
  const ObjectiveSpec& obj = objectives_[i];
  obj.model->GradientBatch(x, grads, values);
  if (!obj.minimize) {
    for (double& v : grads->data()) v = -v;
    if (values != nullptr) {
      for (double& v : *values) v = -v;
    }
  }
}

void MooProblem::EvaluateWithUncertaintyBatch(int i, const Matrix& x,
                                              Vector* mean,
                                              Vector* stddev) const {
  const ObjectiveSpec& obj = objectives_[i];
  obj.model->PredictWithUncertaintyBatch(x, mean, stddev);
  if (!obj.minimize) {
    for (double& v : *mean) v = -v;
  }
}

double MooProblem::UserLower(int i) const {
  const ObjectiveSpec& obj = objectives_[i];
  // In minimization orientation, a maximize objective's [L, U] becomes
  // [-U, -L].
  return obj.minimize ? obj.lower : -obj.upper;
}

double MooProblem::UserUpper(int i) const {
  const ObjectiveSpec& obj = objectives_[i];
  return obj.minimize ? obj.upper : -obj.lower;
}

}  // namespace udao
