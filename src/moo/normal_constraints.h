#ifndef UDAO_MOO_NORMAL_CONSTRAINTS_H_
#define UDAO_MOO_NORMAL_CONSTRAINTS_H_

#include "moo/mogd.h"
#include "moo/problem.h"
#include "moo/run_result.h"

namespace udao {

/// Settings for the Normalized Normal Constraints baseline.
struct NcConfig {
  MogdConfig mogd = MogdConfig{.multistart = 16, .max_iters = 200};
  MetricBox metric_box;
};

/// Normalized Normal Constraints [Messac et al. 2003]: anchors the frontier
/// at the k single-objective optima, spreads `num_points` points over the
/// utopia hyperplane between them, and for each solves a constrained problem
/// that pushes the solution onto the frontier along the plane normal.
///
/// Weaknesses the paper calls out and this implementation reproduces: some
/// plane points yield infeasible/duplicate solutions so fewer than
/// `num_points` come back, and asking for more points later means restarting
/// from scratch.
MooRunResult RunNormalConstraints(const MooProblem& problem, int num_points,
                                  const NcConfig& config = NcConfig());

}  // namespace udao

#endif  // UDAO_MOO_NORMAL_CONSTRAINTS_H_
