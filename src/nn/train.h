#ifndef UDAO_NN_TRAIN_H_
#define UDAO_NN_TRAIN_H_

#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "nn/mlp.h"

namespace udao {

/// Settings for mini-batch training of an Mlp.
struct TrainConfig {
  int epochs = 200;
  int batch_size = 32;
  double learning_rate = 1e-3;
  /// When > 0, stop after this many epochs without improvement on the
  /// (training) loss; checkpoints the best weights seen (the paper's model
  /// server "checkpoints the best model weights").
  int early_stop_patience = 0;
};

/// Outcome of a training run.
struct TrainResult {
  double final_loss = 0.0;
  double best_loss = 0.0;
  int epochs_run = 0;
};

/// Trains `mlp` in place on rows of `x` against scalar targets `y` with Adam,
/// restoring the best checkpoint at the end. This is the "retrain" path of
/// the model server; "fine-tuning" simply calls this again on the warm model
/// with a lower learning rate and fewer epochs.
TrainResult TrainMlp(Mlp* mlp, const Matrix& x, const Vector& y,
                     const TrainConfig& config, Rng* rng);

/// Multi-output variant: rows of `y` are target vectors (autoencoders,
/// multi-head regressors).
TrainResult TrainMlpMulti(Mlp* mlp, const Matrix& x, const Matrix& y,
                          const TrainConfig& config, Rng* rng);

}  // namespace udao

#endif  // UDAO_NN_TRAIN_H_
