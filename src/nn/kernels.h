#ifndef UDAO_NN_KERNELS_H_
#define UDAO_NN_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace udao {
namespace kernels {

/// The dense-kernel backends. Exactly one is active per process; it is chosen
/// once at startup (see ActiveTable) and every dense primitive in the
/// codebase -- Matrix products, the MLP forward/backward GEMMs, Adam's axpy
/// updates -- routes through it. Within one backend, batched and scalar
/// entry points share the same primitives, so batch-vs-scalar results stay
/// bitwise equal; across backends results may differ in the last bits (the
/// tolerance contract pinned by kernel_parity_test and DESIGN.md).
enum class Backend {
  /// Portable reference kernels: bitwise-identical to the plain loops the
  /// Matrix/Mlp code used before the kernel layer existed. Elementwise axpy
  /// is `#pragma omp simd` vectorized (exact -- no reassociation); dot
  /// products stay a single sequential accumulation chain.
  kScalar,
  /// AVX2+FMA intrinsics (x86-64 only): 4-accumulator dot products, fused
  /// multiply-add axpy, and a fully-unrolled 128-wide dot for the paper's
  /// 4x128 ReLU topology. Requires CpuSupportsAvx2().
  kAvx2,
};

/// Fusion applied by the layer-forward kernel after each output dot product.
enum class Fused {
  /// out = in * W^T + bias (the output layer, and tanh layers whose
  /// activation is applied by the caller).
  kBias,
  /// out = relu(in * W^T + bias) -- the hidden-layer hot path.
  kBiasRelu,
};

/// One backend's kernel set. All pointers are non-null. Rows are contiguous
/// (row-major) and operands never alias.
struct KernelTable {
  Backend backend;
  const char* name;
  /// Generic dot product (no 128-specialization dispatch; use kernels::Dot
  /// for the dispatched form).
  double (*dot)(const double* a, const double* b, int n);
  /// Fully-unrolled dot for n == 128, the hidden width of the paper's
  /// largest model. Bitwise-identical to dot(a, b, 128) of the same backend
  /// by construction (same accumulator structure and reduction order);
  /// kernel_parity_test pins that equality.
  double (*dot128)(const double* a, const double* b);
  /// dst[i] += scale * src[i] for i in [0, n).
  void (*axpy)(double* dst, const double* src, double scale, int n);
  /// Fused dense layer: for each of `rows` input rows,
  ///   out[r][c] = fuse(dot(in_row, w_row_c) + bias[c])
  /// with w in [out_dim, in_dim] row-major ([fan_out, fan_in] weights).
  /// Uses the backend's dot (dot128 when in_dim == 128 -- the specialized
  /// 4x128 path is selected here whenever the model shape matches).
  void (*layer_forward)(const double* in, int rows, int in_dim,
                        const double* w, const double* bias, int out_dim,
                        Fused fuse, double* out);
  /// out[rows, cols] = a[rows, k] * b[k, cols]. Zeroes out first, then
  /// accumulates via axpy in k order, skipping a[i][kk] == 0.0 terms -- the
  /// exact semantics (and, per element, the exact operation order) of the
  /// pre-kernel Matrix::Multiply / ApplyTranspose loops, which is what keeps
  /// batched backprop bitwise-equal to the scalar path within a backend.
  void (*gemm_nn)(const double* a, int rows, int k, const double* b, int cols,
                  double* out);
};

/// True when the CPU executes AVX2+FMA (always false off x86-64).
bool CpuSupportsAvx2();

/// The process-wide active kernel table. Chosen once, on first use, from the
/// UDAO_KERNEL environment variable:
///   unset / "native"  best supported backend (avx2 when available)
///   "scalar"          force the portable reference kernels
///   "avx2"            force AVX2; aborts loudly if the CPU lacks it, so a
///                     CI matrix leg can never silently test the wrong code
/// Any other value aborts. Reads are lock-free (acquire load of an atomic
/// pointer), so concurrent PredictBatch callers share the table safely.
const KernelTable* ActiveTable();

/// Backend of ActiveTable().
Backend ActiveBackend();

/// The table for one backend; aborts if the backend is unsupported here.
const KernelTable* TableForBackend(Backend backend);

/// Swaps the active table (release store). Testing/bench only: the parity
/// suite and bench_kernels flip backends in-process to compare them.
void SetBackendForTesting(Backend backend);

/// RAII backend override that restores the previous backend on destruction.
class ScopedBackendForTesting {
 public:
  explicit ScopedBackendForTesting(Backend backend) : prev_(ActiveBackend()) {
    SetBackendForTesting(backend);
  }
  ~ScopedBackendForTesting() { SetBackendForTesting(prev_); }
  ScopedBackendForTesting(const ScopedBackendForTesting&) = delete;
  ScopedBackendForTesting& operator=(const ScopedBackendForTesting&) = delete;

 private:
  Backend prev_;
};

/// Dispatched conveniences over ActiveTable(). Hot loops that issue many
/// calls should hoist `const KernelTable* t = ActiveTable()` instead.
inline double Dot(const double* a, const double* b, int n) {
  const KernelTable* t = ActiveTable();
  return n == 128 ? t->dot128(a, b) : t->dot(a, b, n);
}

inline void Axpy(double* dst, const double* src, double scale, int n) {
  ActiveTable()->axpy(dst, src, scale, n);
}

inline void LayerForward(const double* in, int rows, int in_dim,
                         const double* w, const double* bias, int out_dim,
                         Fused fuse, double* out) {
  ActiveTable()->layer_forward(in, rows, in_dim, w, bias, out_dim, fuse, out);
}

inline void GemmNn(const double* a, int rows, int k, const double* b,
                   int cols, double* out) {
  ActiveTable()->gemm_nn(a, rows, k, b, cols, out);
}

/// Bump allocator for the per-solve activation/gradient temporaries of the
/// batched MLP paths. The MOGD descent loop calls PredictBatch/GradientBatch
/// every Adam iteration; routing their temporaries through a thread-local
/// arena turns thousands of Matrix heap allocations per solve into pointer
/// bumps over memory acquired during the first iteration (warmup). Growth
/// events -- the only times the arena touches the heap -- are counted
/// (grow_count) and reported via the udao.nn.arena_bytes counter, which is
/// how tests assert zero allocations per iteration after warmup.
///
/// Not thread-safe; use ThreadLocal() (one arena per thread) or confine an
/// instance to one thread. Blocks are released in LIFO order by Scope.
class KernelArena {
 public:
  KernelArena() = default;
  KernelArena(const KernelArena&) = delete;
  KernelArena& operator=(const KernelArena&) = delete;

  /// Returns an uninitialized block of n doubles, valid until the enclosing
  /// Scope unwinds past the current position.
  double* Alloc(size_t n);

  /// Number of slab acquisitions (heap allocations) so far.
  size_t grow_count() const { return grow_count_; }

  /// Total heap bytes this arena holds.
  size_t reserved_bytes() const { return reserved_ * sizeof(double); }

  /// The calling thread's arena.
  static KernelArena& ThreadLocal();

  /// Rewinds the arena to its construction-time position, releasing every
  /// allocation made inside the scope (capacity is retained).
  class Scope {
   public:
    explicit Scope(KernelArena* arena)
        : arena_(arena), slab_(arena->slab_), used_(arena->used_) {}
    ~Scope() {
      arena_->slab_ = slab_;
      arena_->used_ = used_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    KernelArena* arena_;
    size_t slab_;
    size_t used_;
  };

 private:
  struct Slab {
    std::unique_ptr<double[]> data;
    size_t size = 0;
  };

  std::vector<Slab> slabs_;
  size_t slab_ = 0;  ///< Index of the slab currently bumped into.
  size_t used_ = 0;  ///< Doubles consumed in slabs_[slab_].
  size_t grow_count_ = 0;
  size_t reserved_ = 0;  ///< Total doubles across all slabs.
};

}  // namespace kernels
}  // namespace udao

#endif  // UDAO_NN_KERNELS_H_
