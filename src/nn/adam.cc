#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace udao {

Adam::Adam(int dim, AdamConfig config)
    : config_(config), m_(dim, 0.0), v_(dim, 0.0) {
  UDAO_CHECK_GT(dim, 0);
}

void Adam::Step(Vector* params, const Vector& grad) {
  UDAO_CHECK_EQ(params->size(), m_.size());
  UDAO_CHECK_EQ(grad.size(), m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, t_);
  const double bc2 = 1.0 - std::pow(config_.beta2, t_);
  for (size_t i = 0; i < m_.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * grad[i];
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * grad[i] * grad[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    (*params)[i] -=
        config_.learning_rate * mhat / (std::sqrt(vhat) + config_.epsilon);
  }
}

void Adam::Reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  t_ = 0;
}

}  // namespace udao
