#include "nn/train.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "nn/adam.h"

namespace udao {

TrainResult TrainMlp(Mlp* mlp, const Matrix& x, const Vector& y,
                     const TrainConfig& config, Rng* rng) {
  UDAO_CHECK_EQ(x.rows(), static_cast<int>(y.size()));
  Matrix ym(static_cast<int>(y.size()), 1);
  for (size_t i = 0; i < y.size(); ++i) ym(static_cast<int>(i), 0) = y[i];
  return TrainMlpMulti(mlp, x, ym, config, rng);
}

TrainResult TrainMlpMulti(Mlp* mlp, const Matrix& x, const Matrix& y,
                          const TrainConfig& config, Rng* rng) {
  UDAO_CHECK_EQ(x.rows(), y.rows());
  UDAO_CHECK_GT(x.rows(), 0);
  const int n = x.rows();
  const int batch_size = std::min(config.batch_size, n);

  Vector params = mlp->Snapshot();
  Adam adam(static_cast<int>(params.size()),
            AdamConfig{.learning_rate = config.learning_rate});

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  result.best_loss = std::numeric_limits<double>::infinity();
  Vector best_snapshot = params;
  int since_best = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0.0;
    int num_batches = 0;
    for (int start = 0; start < n; start += batch_size) {
      const int end = std::min(start + batch_size, n);
      Matrix bx(end - start, x.cols());
      Matrix by(end - start, y.cols());
      for (int i = start; i < end; ++i) {
        const int src = order[i];
        for (int c = 0; c < x.cols(); ++c) bx(i - start, c) = x(src, c);
        for (int c = 0; c < y.cols(); ++c) by(i - start, c) = y(src, c);
      }
      std::vector<Mlp::LayerGrad> grads = mlp->ZeroGrads();
      epoch_loss += mlp->ForwardBackwardMulti(bx, by, &grads);
      ++num_batches;
      // Flatten gradients in the same order as Snapshot().
      Vector flat;
      flat.reserve(params.size());
      for (const Mlp::LayerGrad& g : grads) {
        flat.insert(flat.end(), g.dw.data().begin(), g.dw.data().end());
        flat.insert(flat.end(), g.db.begin(), g.db.end());
      }
      params = mlp->Snapshot();
      adam.Step(&params, flat);
      mlp->Restore(params);
    }
    epoch_loss /= std::max(1, num_batches);
    result.final_loss = epoch_loss;
    result.epochs_run = epoch + 1;
    if (epoch_loss < result.best_loss) {
      result.best_loss = epoch_loss;
      best_snapshot = mlp->Snapshot();
      since_best = 0;
    } else if (config.early_stop_patience > 0 &&
               ++since_best >= config.early_stop_patience) {
      break;
    }
  }
  mlp->Restore(best_snapshot);
  return result;
}

}  // namespace udao
