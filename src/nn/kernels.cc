// The only translation unit allowed to contain vector intrinsics or
// `#pragma omp simd` (udao_lint raw-intrinsic rule): everything SIMD lives
// behind the KernelTable dispatch so a bad intrinsic can only enter through
// one reviewed funnel, and the scalar backend stays a faithful bit-for-bit
// reference for the pre-kernel plain loops.
//
// Exactness rules the implementations below obey (tests pin them):
//  - Scalar kernels replicate the original matrix.cc / mlp.cc loops exactly:
//    single-chain sequential dot accumulation, per-element mul+add axpy (no
//    FMA contraction on baseline x86-64), zero-coefficient skips in gemm_nn.
//    Under UDAO_KERNEL=scalar the whole system is bitwise-identical to the
//    pre-kernel code.
//  - Within a backend, dot128 is bitwise-identical to dot(a, b, 128): the
//    unrolled form preserves the generic accumulator structure and reduction
//    order, only removing loop control.
//  - Across backends, results agree to a relative 1e-10 (kernel_parity_test
//    uses 1e-12 headroom per element; DESIGN.md "Kernel layer" documents the
//    contract). AVX2 reassociates dot sums (4 vector accumulators) and
//    contracts mul+add to FMA, which is where the low-bit drift comes from.
#include "nn/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/metrics_registry.h"

#if defined(__x86_64__) || defined(__i386__)
#define UDAO_KERNELS_X86 1
#include <immintrin.h>
#else
#define UDAO_KERNELS_X86 0
#endif

namespace udao {
namespace kernels {

namespace {

// ------------------------------------------------------------------ scalar

double DotScalar(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Same single dependency chain and order as DotScalar (so the result is
// bitwise-identical); the unroll only amortizes loop control.
double Dot128Scalar(const double* a, const double* b) {
  double acc = 0.0;
  for (int i = 0; i < 128; i += 8) {
    acc += a[i] * b[i];
    acc += a[i + 1] * b[i + 1];
    acc += a[i + 2] * b[i + 2];
    acc += a[i + 3] * b[i + 3];
    acc += a[i + 4] * b[i + 4];
    acc += a[i + 5] * b[i + 5];
    acc += a[i + 6] * b[i + 6];
    acc += a[i + 7] * b[i + 7];
  }
  return acc;
}

// Elementwise, so vectorization cannot reassociate anything: each lane is an
// independent mul+add, bitwise-identical to the sequential loop. This is the
// portable-SIMD fallback lane of the kernel layer (no -mavx2 required).
void AxpyScalar(double* dst, const double* src, double scale, int n) {
#pragma omp simd
  for (int i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void LayerForwardScalar(const double* in, int rows, int in_dim,
                        const double* w, const double* bias, int out_dim,
                        Fused fuse, double* out) {
  for (int r = 0; r < rows; ++r) {
    const double* a = in + static_cast<size_t>(r) * in_dim;
    double* o = out + static_cast<size_t>(r) * out_dim;
    for (int c = 0; c < out_dim; ++c) {
      double acc = in_dim == 128 ? Dot128Scalar(a, w + 128 * c)
                                 : DotScalar(a, w + static_cast<size_t>(c) *
                                                        in_dim,
                                             in_dim);
      acc += bias[c];
      o[c] = (fuse == Fused::kBiasRelu && !(acc > 0.0)) ? 0.0 : acc;
    }
  }
}

void GemmNnScalar(const double* a, int rows, int k, const double* b, int cols,
                  double* out) {
  for (int i = 0; i < rows; ++i) {
    double* out_row = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) out_row[j] = 0.0;
    const double* a_row = a + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const double a_ik = a_row[kk];
      if (a_ik == 0.0) continue;
      AxpyScalar(out_row, b + static_cast<size_t>(kk) * cols, a_ik, cols);
    }
  }
}

const KernelTable kScalarTable = {
    Backend::kScalar, "scalar",     &DotScalar,   &Dot128Scalar,
    &AxpyScalar,      &LayerForwardScalar, &GemmNnScalar,
};

// -------------------------------------------------------------------- avx2
//
// Per-function target attributes keep the rest of the build on the baseline
// architecture: no global -mavx2, so the binary still starts on any x86-64
// and the dispatcher alone decides whether these functions ever execute.

#if UDAO_KERNELS_X86

// Reduction order shared by DotAvx2 and Dot128Avx2: (acc0+acc1)+(acc2+acc3),
// then low lane pair + high lane pair, then the two scalars.
__attribute__((target("avx2,fma"))) inline double HorizontalSum(
    __m256d acc0, __m256d acc1, __m256d acc2, __m256d acc3) {
  const __m256d acc =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double acc = HorizontalSum(acc0, acc1, acc2, acc3);
  for (; i < n; ++i) acc = std::fma(a[i], b[i], acc);
  return acc;
}

// n == 128 fully unrolled: 8 blocks of 16, the exact iterations DotAvx2's
// main loop performs for n = 128 (and no tail), so the result is
// bitwise-identical to DotAvx2(a, b, 128).
#define UDAO_DOT128_BLOCK(off)                                              \
  acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + (off)),                        \
                         _mm256_loadu_pd(b + (off)), acc0);                 \
  acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + (off) + 4),                    \
                         _mm256_loadu_pd(b + (off) + 4), acc1);             \
  acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + (off) + 8),                    \
                         _mm256_loadu_pd(b + (off) + 8), acc2);             \
  acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + (off) + 12),                   \
                         _mm256_loadu_pd(b + (off) + 12), acc3);

__attribute__((target("avx2,fma"))) double Dot128Avx2(const double* a,
                                                      const double* b) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  UDAO_DOT128_BLOCK(0)
  UDAO_DOT128_BLOCK(16)
  UDAO_DOT128_BLOCK(32)
  UDAO_DOT128_BLOCK(48)
  UDAO_DOT128_BLOCK(64)
  UDAO_DOT128_BLOCK(80)
  UDAO_DOT128_BLOCK(96)
  UDAO_DOT128_BLOCK(112)
  return HorizontalSum(acc0, acc1, acc2, acc3);
}

#undef UDAO_DOT128_BLOCK

__attribute__((target("avx2,fma"))) void AxpyAvx2(double* dst,
                                                  const double* src,
                                                  double scale, int n) {
  const __m256d vs = _mm256_set1_pd(scale);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i,
        _mm256_fmadd_pd(_mm256_loadu_pd(src + i), vs,
                        _mm256_loadu_pd(dst + i)));
  }
  for (; i < n; ++i) dst[i] = std::fma(src[i], scale, dst[i]);
}

__attribute__((target("avx2,fma"))) void LayerForwardAvx2(
    const double* in, int rows, int in_dim, const double* w,
    const double* bias, int out_dim, Fused fuse, double* out) {
  for (int r = 0; r < rows; ++r) {
    const double* a = in + static_cast<size_t>(r) * in_dim;
    double* o = out + static_cast<size_t>(r) * out_dim;
    for (int c = 0; c < out_dim; ++c) {
      double acc = in_dim == 128 ? Dot128Avx2(a, w + 128 * c)
                                 : DotAvx2(a, w + static_cast<size_t>(c) *
                                                      in_dim,
                                           in_dim);
      acc += bias[c];
      o[c] = (fuse == Fused::kBiasRelu && !(acc > 0.0)) ? 0.0 : acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void GemmNnAvx2(const double* a, int rows,
                                                    int k, const double* b,
                                                    int cols, double* out) {
  for (int i = 0; i < rows; ++i) {
    double* out_row = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) out_row[j] = 0.0;
    const double* a_row = a + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const double a_ik = a_row[kk];
      if (a_ik == 0.0) continue;
      AxpyAvx2(out_row, b + static_cast<size_t>(kk) * cols, a_ik, cols);
    }
  }
}

const KernelTable kAvx2Table = {
    Backend::kAvx2, "avx2",            &DotAvx2,    &Dot128Avx2,
    &AxpyAvx2,      &LayerForwardAvx2, &GemmNnAvx2,
};

#endif  // UDAO_KERNELS_X86

// --------------------------------------------------------------- dispatch

const KernelTable* ChooseStartupTable() {
  const char* env = std::getenv("UDAO_KERNEL");
  if (env == nullptr || env[0] == '\0' ||
      std::strcmp(env, "native") == 0) {
    return CpuSupportsAvx2() ? TableForBackend(Backend::kAvx2)
                             : TableForBackend(Backend::kScalar);
  }
  if (std::strcmp(env, "scalar") == 0) {
    return TableForBackend(Backend::kScalar);
  }
  if (std::strcmp(env, "avx2") == 0) {
    // Failing loudly instead of falling back keeps the CI parity matrix
    // honest: an avx2 leg on a machine without AVX2 must go red, not
    // silently re-test the scalar kernels.
    UDAO_CHECK(CpuSupportsAvx2());
    return TableForBackend(Backend::kAvx2);
  }
  // Unknown value: abort via a self-describing check (stderr itself is
  // reserved for the CHECK abort path in common/check.h).
  const bool udao_kernel_env_must_be_scalar_avx2_or_native = false;
  UDAO_CHECK(udao_kernel_env_must_be_scalar_avx2_or_native);
  return nullptr;
}

std::atomic<const KernelTable*>& TableSlot() {
  static std::atomic<const KernelTable*> slot{ChooseStartupTable()};
  return slot;
}

}  // namespace

bool CpuSupportsAvx2() {
#if UDAO_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* ActiveTable() {
  return TableSlot().load(std::memory_order_acquire);
}

Backend ActiveBackend() { return ActiveTable()->backend; }

const KernelTable* TableForBackend(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarTable;
    case Backend::kAvx2:
#if UDAO_KERNELS_X86
      UDAO_CHECK(CpuSupportsAvx2());
      return &kAvx2Table;
#else
      break;
#endif
  }
  UDAO_CHECK(false);
  return nullptr;
}

void SetBackendForTesting(Backend backend) {
  TableSlot().store(TableForBackend(backend), std::memory_order_release);
}

// ------------------------------------------------------------------ arena

double* KernelArena::Alloc(size_t n) {
  if (n == 0) n = 1;
  while (slab_ < slabs_.size()) {
    Slab& s = slabs_[slab_];
    if (used_ + n <= s.size) {
      double* p = s.data.get() + used_;
      used_ += n;
      return p;
    }
    // Skip the remainder of this slab and bump into the next one.
    ++slab_;
    used_ = 0;
  }
  // Growth: the only heap traffic the arena ever causes. Doubling against
  // the total already reserved keeps the slab count logarithmic in demand.
  constexpr size_t kMinSlabDoubles = 4096;  // 32 KiB
  const size_t size = std::max(n, std::max(kMinSlabDoubles, reserved_));
  Slab slab;
  slab.data = std::make_unique<double[]>(size);
  slab.size = size;
  slabs_.push_back(std::move(slab));
  reserved_ += size;
  ++grow_count_;
  UDAO_METRIC_COUNTER_ADD("udao.nn.arena_bytes",
                          static_cast<long long>(size * sizeof(double)));
  slab_ = slabs_.size() - 1;
  used_ = n;
  return slabs_.back().data.get();
}

KernelArena& KernelArena::ThreadLocal() {
  static thread_local KernelArena arena;
  return arena;
}

}  // namespace kernels
}  // namespace udao
