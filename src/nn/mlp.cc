#include "nn/mlp.h"

#include <cmath>

#include "common/check.h"

namespace udao {

Mlp::Mlp(MlpConfig config, Rng* rng) : config_(std::move(config)) {
  UDAO_CHECK_GE(config_.layer_sizes.size(), 2u);
  const int num_layers = static_cast<int>(config_.layer_sizes.size()) - 1;
  layers_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    const int fan_in = config_.layer_sizes[l];
    const int fan_out = config_.layer_sizes[l + 1];
    UDAO_CHECK_GT(fan_in, 0);
    UDAO_CHECK_GT(fan_out, 0);
    Layer layer{Matrix(fan_out, fan_in), Vector(fan_out, 0.0)};
    // He initialization suits ReLU; it also works acceptably for tanh.
    const double scale = std::sqrt(2.0 / fan_in);
    for (int r = 0; r < fan_out; ++r) {
      for (int c = 0; c < fan_in; ++c) layer.w(r, c) = rng->Gaussian(0, scale);
    }
    layers_.push_back(std::move(layer));
  }
}

double Mlp::Act(double v) const {
  switch (config_.activation) {
    case Activation::kRelu:
      return v > 0.0 ? v : 0.0;
    case Activation::kTanh:
      return std::tanh(v);
  }
  return v;
}

double Mlp::ActGrad(double pre, double post) const {
  switch (config_.activation) {
    case Activation::kRelu:
      // Subgradient 0 at the kink (pre == 0), per the paper's
      // subdifferentiability discussion.
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
  }
  return 1.0;
}

Vector Mlp::ForwardCached(const Vector& x, std::vector<Vector>* pre,
                          std::vector<Vector>* post,
                          const std::vector<Vector>* dropout_masks) const {
  UDAO_CHECK_EQ(static_cast<int>(x.size()), input_dim());
  Vector cur = x;
  const int num_layers = static_cast<int>(layers_.size());
  for (int l = 0; l < num_layers; ++l) {
    Vector z = layers_[l].w.Apply(cur);
    for (size_t i = 0; i < z.size(); ++i) z[i] += layers_[l].b[i];
    if (pre != nullptr) pre->push_back(z);
    const bool is_output = (l == num_layers - 1);
    Vector a(z.size());
    for (size_t i = 0; i < z.size(); ++i) a[i] = is_output ? z[i] : Act(z[i]);
    if (!is_output && dropout_masks != nullptr) {
      const Vector& mask = (*dropout_masks)[l];
      for (size_t i = 0; i < a.size(); ++i) a[i] *= mask[i];
    }
    if (post != nullptr) post->push_back(a);
    cur = std::move(a);
  }
  return cur;
}

Matrix Mlp::ForwardCachedBatch(const Matrix& x, std::vector<Matrix>* pre,
                               std::vector<Matrix>* post) const {
  UDAO_CHECK_EQ(x.cols(), input_dim());
  Matrix cur = x;
  const int num_layers = static_cast<int>(layers_.size());
  for (int l = 0; l < num_layers; ++l) {
    // z = cur * W^T + b: one GEMM for the whole batch. Accumulation order
    // per output element matches the scalar Apply path, so batched and
    // scalar predictions agree exactly.
    Matrix z = cur.MultiplyTransposed(layers_[l].w);
    const Vector& b = layers_[l].b;
    for (int i = 0; i < z.rows(); ++i) {
      double* row = z.RowPtr(i);
      for (int j = 0; j < z.cols(); ++j) row[j] += b[j];
    }
    if (pre != nullptr) pre->push_back(z);
    const bool is_output = (l == num_layers - 1);
    if (!is_output) {
      for (double& v : z.data()) v = Act(v);
    }
    if (post != nullptr) post->push_back(z);
    cur = std::move(z);
  }
  return cur;
}

Matrix Mlp::ForwardBatch(const Matrix& x) const {
  return ForwardCachedBatch(x, nullptr, nullptr);
}

void Mlp::PredictBatch(const Matrix& x, Vector* out) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  const Matrix y = ForwardBatch(x);
  out->resize(y.rows());
  for (int i = 0; i < y.rows(); ++i) {
    (*out)[i] = y(i, 0);
    UDAO_DCHECK_FINITE((*out)[i]);
  }
}

Matrix Mlp::InputGradientBatch(const Matrix& x, Vector* values) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  std::vector<Matrix> pre;
  std::vector<Matrix> post;
  const Matrix out = ForwardCachedBatch(x, &pre, &post);
  if (values != nullptr) {
    values->resize(out.rows());
    for (int i = 0; i < out.rows(); ++i) {
      (*values)[i] = out(i, 0);
      UDAO_DCHECK_FINITE((*values)[i]);
    }
  }
  const int num_layers = static_cast<int>(layers_.size());
  // Seed every row with d(out)/d(out) = 1 and back-propagate all points at
  // once; delta * W replicates the per-point ApplyTranspose exactly.
  Matrix delta(x.rows(), 1, 1.0);
  for (int l = num_layers - 1; l >= 0; --l) {
    if (l != num_layers - 1) {
      for (int i = 0; i < delta.rows(); ++i) {
        double* row = delta.RowPtr(i);
        for (int j = 0; j < delta.cols(); ++j) {
          row[j] *= ActGrad(pre[l](i, j), post[l](i, j));
        }
      }
    }
    delta = delta.Multiply(layers_[l].w);
  }
  // A non-finite entry here means the forward pass overflowed; fail loudly
  // before the solver averages NaN gradients into Adam's moments.
  for (const double g : delta.data()) UDAO_DCHECK_FINITE(g);
  return delta;
}

Vector Mlp::Forward(const Vector& x) const {
  return ForwardCached(x, nullptr, nullptr, nullptr);
}

double Mlp::Predict(const Vector& x) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  const double y = Forward(x)[0];
  UDAO_DCHECK_FINITE(y);
  return y;
}

Vector Mlp::InputGradient(const Vector& x) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  std::vector<Vector> pre;
  std::vector<Vector> post;
  ForwardCached(x, &pre, &post, nullptr);
  const int num_layers = static_cast<int>(layers_.size());
  // Seed with d(out)/d(out) = 1 and back-propagate to the input.
  Vector delta(1, 1.0);
  for (int l = num_layers - 1; l >= 0; --l) {
    // delta currently holds d(out)/d(post-activation of layer l).
    if (l != num_layers - 1) {
      for (size_t i = 0; i < delta.size(); ++i) {
        delta[i] *= ActGrad(pre[l][i], post[l][i]);
      }
    }
    delta = layers_[l].w.ApplyTranspose(delta);
  }
  for (const double g : delta) UDAO_DCHECK_FINITE(g);
  return delta;
}

void Mlp::PredictWithUncertainty(const Vector& x, int samples, Rng* rng,
                                 double* mean, double* stddev) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  UDAO_CHECK_GT(samples, 0);
  const int num_hidden = static_cast<int>(layers_.size()) - 1;
  const double keep = 1.0 - config_.dropout;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    std::vector<Vector> masks(layers_.size());
    for (int l = 0; l < num_hidden; ++l) {
      masks[l].assign(layers_[l].b.size(), 0.0);
      for (size_t i = 0; i < masks[l].size(); ++i) {
        // Inverted dropout keeps the expected activation unchanged.
        masks[l][i] = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
      }
    }
    const double y = ForwardCached(x, nullptr, nullptr, &masks)[0];
    sum += y;
    sum_sq += y * y;
  }
  *mean = sum / samples;
  const double var =
      samples > 1 ? std::max(0.0, (sum_sq - sum * sum / samples) / (samples - 1))
                  : 0.0;
  *stddev = std::sqrt(var);
  UDAO_DCHECK_FINITE(*mean);
  UDAO_DCHECK_FINITE(*stddev);
}

std::vector<Mlp::LayerGrad> Mlp::ZeroGrads() const {
  std::vector<LayerGrad> grads;
  grads.reserve(layers_.size());
  for (const Layer& layer : layers_) {
    grads.push_back(LayerGrad{Matrix(layer.w.rows(), layer.w.cols()),
                              Vector(layer.b.size(), 0.0)});
  }
  return grads;
}

double Mlp::ForwardBackward(const Matrix& x, const Vector& y,
                            std::vector<Mlp::LayerGrad>* grads) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  Matrix ym(static_cast<int>(y.size()), 1);
  for (size_t i = 0; i < y.size(); ++i) ym(static_cast<int>(i), 0) = y[i];
  return ForwardBackwardMulti(x, ym, grads);
}

Vector Mlp::LayerActivations(const Vector& x, int layer) const {
  UDAO_CHECK(layer >= 0 && layer < static_cast<int>(layers_.size()));
  std::vector<Vector> pre;
  std::vector<Vector> post;
  ForwardCached(x, &pre, &post, nullptr);
  return post[layer];
}

double Mlp::ForwardBackwardMulti(const Matrix& x, const Matrix& y,
                                 std::vector<Mlp::LayerGrad>* grads) const {
  UDAO_CHECK_EQ(y.cols(), output_dim());
  UDAO_CHECK_EQ(x.rows(), y.rows());
  UDAO_CHECK_EQ(x.cols(), input_dim());
  UDAO_CHECK_EQ(grads->size(), layers_.size());
  const int batch = x.rows();
  UDAO_CHECK_GT(batch, 0);
  const int num_layers = static_cast<int>(layers_.size());
  double loss = 0.0;
  for (int n = 0; n < batch; ++n) {
    std::vector<Vector> pre;
    std::vector<Vector> post;
    const Vector input = x.Row(n);
    const Vector out = ForwardCached(input, &pre, &post, nullptr);
    Vector delta(out.size());
    for (size_t o = 0; o < out.size(); ++o) {
      const double err = out[o] - y(n, static_cast<int>(o));
      loss += err * err / static_cast<double>(out.size());
      // d(per-sample MSE)/d(out); the 2/batch factor folds the batch mean.
      delta[o] = 2.0 * err / (batch * static_cast<double>(out.size()));
    }
    for (int l = num_layers - 1; l >= 0; --l) {
      if (l != num_layers - 1) {
        for (size_t i = 0; i < delta.size(); ++i) {
          delta[i] *= ActGrad(pre[l][i], post[l][i]);
        }
      }
      const Vector& in = (l == 0) ? input : post[l - 1];
      LayerGrad& g = (*grads)[l];
      for (int r = 0; r < g.dw.rows(); ++r) {
        const double d = delta[r];
        if (d == 0.0) continue;
        double* row = g.dw.RowPtr(r);
        for (int c = 0; c < g.dw.cols(); ++c) row[c] += d * in[c];
        g.db[r] += d;
      }
      delta = layers_[l].w.ApplyTranspose(delta);
    }
  }
  loss /= batch;
  // L2 regularization on weights (not biases).
  if (config_.l2 > 0.0) {
    for (int l = 0; l < num_layers; ++l) {
      const Matrix& w = layers_[l].w;
      Matrix& dw = (*grads)[l].dw;
      for (size_t i = 0; i < w.data().size(); ++i) {
        loss += config_.l2 * w.data()[i] * w.data()[i];
        dw.data()[i] += 2.0 * config_.l2 * w.data()[i];
      }
    }
  }
  return loss;
}

Vector Mlp::Snapshot() const {
  Vector snap;
  for (const Layer& layer : layers_) {
    snap.insert(snap.end(), layer.w.data().begin(), layer.w.data().end());
    snap.insert(snap.end(), layer.b.begin(), layer.b.end());
  }
  return snap;
}

void Mlp::Restore(const Vector& snapshot) {
  size_t pos = 0;
  for (Layer& layer : layers_) {
    for (double& v : layer.w.data()) v = snapshot[pos++];
    for (double& v : layer.b) v = snapshot[pos++];
  }
  UDAO_CHECK_EQ(pos, snapshot.size());
}

}  // namespace udao
