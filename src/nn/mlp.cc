#include "nn/mlp.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace udao {

Mlp::Mlp(MlpConfig config, Rng* rng) : config_(std::move(config)) {
  UDAO_CHECK_GE(config_.layer_sizes.size(), 2u);
  const int num_layers = static_cast<int>(config_.layer_sizes.size()) - 1;
  layers_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    const int fan_in = config_.layer_sizes[l];
    const int fan_out = config_.layer_sizes[l + 1];
    UDAO_CHECK_GT(fan_in, 0);
    UDAO_CHECK_GT(fan_out, 0);
    Layer layer{Matrix(fan_out, fan_in), Vector(fan_out, 0.0)};
    // He initialization suits ReLU; it also works acceptably for tanh.
    const double scale = std::sqrt(2.0 / fan_in);
    for (int r = 0; r < fan_out; ++r) {
      for (int c = 0; c < fan_in; ++c) layer.w(r, c) = rng->Gaussian(0, scale);
    }
    layers_.push_back(std::move(layer));
  }
}

double Mlp::Act(double v) const {
  switch (config_.activation) {
    case Activation::kRelu:
      return v > 0.0 ? v : 0.0;
    case Activation::kTanh:
      return std::tanh(v);
  }
  return v;
}

double Mlp::ActGrad(double pre, double post) const {
  switch (config_.activation) {
    case Activation::kRelu:
      // Subgradient 0 at the kink (pre == 0), per the paper's
      // subdifferentiability discussion.
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
  }
  return 1.0;
}

Vector Mlp::ForwardCached(const Vector& x, std::vector<Vector>* pre,
                          std::vector<Vector>* post,
                          const std::vector<Vector>* dropout_masks) const {
  UDAO_CHECK_EQ(static_cast<int>(x.size()), input_dim());
  Vector cur = x;
  const int num_layers = static_cast<int>(layers_.size());
  for (int l = 0; l < num_layers; ++l) {
    Vector z = layers_[l].w.Apply(cur);
    for (size_t i = 0; i < z.size(); ++i) z[i] += layers_[l].b[i];
    if (pre != nullptr) pre->push_back(z);
    const bool is_output = (l == num_layers - 1);
    Vector a(z.size());
    for (size_t i = 0; i < z.size(); ++i) a[i] = is_output ? z[i] : Act(z[i]);
    if (!is_output && dropout_masks != nullptr) {
      const Vector& mask = (*dropout_masks)[l];
      for (size_t i = 0; i < a.size(); ++i) a[i] *= mask[i];
    }
    if (post != nullptr) post->push_back(a);
    cur = std::move(a);
  }
  return cur;
}

const double* Mlp::ForwardArena(const Matrix& x, kernels::KernelArena* arena,
                                std::vector<const double*>* post) const {
  UDAO_CHECK_EQ(x.cols(), input_dim());
  const int rows = x.rows();
  const double* cur = x.data().data();
  const int num_layers = static_cast<int>(layers_.size());
  // One table load for the whole pass: every layer of a forward runs on the
  // same backend even if a concurrent test flips the dispatch mid-call.
  const kernels::KernelTable* t = kernels::ActiveTable();
  for (int l = 0; l < num_layers; ++l) {
    // out = fuse(cur * W^T + bias): one fused layer kernel for the whole
    // batch. Per output element the kernel performs dot, then + bias, then
    // the activation -- the exact operation sequence of the scalar Apply
    // path -- so batched and scalar predictions agree bitwise within a
    // kernel backend. The kernel picks the fully-unrolled 128-wide dot
    // whenever fan_in == 128 (the paper's 4x128 topology).
    const Layer& layer = layers_[l];
    const int fan_in = layer.w.cols();
    const int fan_out = layer.w.rows();
    double* out =
        arena->Alloc(static_cast<size_t>(rows) * fan_out);
    const bool is_output = (l == num_layers - 1);
    const bool fuse_relu =
        !is_output && config_.activation == Activation::kRelu;
    t->layer_forward(cur, rows, fan_in, layer.w.data().data(),
                     layer.b.data(), fan_out,
                     fuse_relu ? kernels::Fused::kBiasRelu
                               : kernels::Fused::kBias,
                     out);
    if (!is_output && config_.activation == Activation::kTanh) {
      // tanh stays a scalar per-element call in every backend, matching
      // Act() exactly (libm's tanh is the dominant cost either way).
      const size_t count = static_cast<size_t>(rows) * fan_out;
      for (size_t i = 0; i < count; ++i) out[i] = std::tanh(out[i]);
    }
    if (post != nullptr) post->push_back(out);
    cur = out;
  }
  return cur;
}

Matrix Mlp::ForwardBatch(const Matrix& x) const {
  kernels::KernelArena& arena = kernels::KernelArena::ThreadLocal();
  kernels::KernelArena::Scope scope(&arena);
  const double* out = ForwardArena(x, &arena, nullptr);
  Matrix y(x.rows(), output_dim());
  std::copy(out, out + static_cast<size_t>(x.rows()) * output_dim(),
            y.data().begin());
  return y;
}

void Mlp::PredictBatch(const Matrix& x, Vector* out) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  kernels::KernelArena& arena = kernels::KernelArena::ThreadLocal();
  kernels::KernelArena::Scope scope(&arena);
  const double* y = ForwardArena(x, &arena, nullptr);
  out->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    (*out)[i] = y[i];
    UDAO_DCHECK_FINITE((*out)[i]);
  }
}

void Mlp::InputGradientBatch(const Matrix& x, Matrix* grad,
                             Vector* values) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  const int rows = x.rows();
  kernels::KernelArena& arena = kernels::KernelArena::ThreadLocal();
  kernels::KernelArena::Scope scope(&arena);
  std::vector<const double*> post;
  ForwardArena(x, &arena, &post);
  const double* out = post.back();
  if (values != nullptr) {
    values->resize(rows);
    for (int i = 0; i < rows; ++i) {
      (*values)[i] = out[i];
      UDAO_DCHECK_FINITE((*values)[i]);
    }
  }
  const int num_layers = static_cast<int>(layers_.size());
  // Widest delta the backward pass produces (layer_sizes minus the input,
  // whose deltas land directly in *grad).
  size_t max_width = 1;
  for (int l = 1; l < static_cast<int>(config_.layer_sizes.size()); ++l) {
    max_width = std::max(max_width,
                         static_cast<size_t>(config_.layer_sizes[l]));
  }
  // Seed every row with d(out)/d(out) = 1 and back-propagate all points at
  // once; gemm_nn's axpy accumulation replicates the per-point
  // ApplyTranspose exactly (same order, same zero skips). Two arena buffers
  // ping-pong the deltas; the final product is written straight into *grad.
  double* delta = arena.Alloc(static_cast<size_t>(rows) * max_width);
  double* scratch = arena.Alloc(static_cast<size_t>(rows) * max_width);
  std::fill(delta, delta + rows, 1.0);
  int width = 1;
  grad->Resize(rows, input_dim());
  for (int l = num_layers - 1; l >= 0; --l) {
    if (l != num_layers - 1) {
      // Elementwise activation-gradient scaling stays plain (non-kernel)
      // code: it must not be FMA-contracted, or the batched path would drift
      // from the scalar ActGrad computation within one backend.
      const double* p = post[l];
      const size_t count = static_cast<size_t>(rows) * width;
      if (config_.activation == Activation::kRelu) {
        // post > 0 iff pre > 0 for relu, so ActGrad needs no pre-activation.
        for (size_t i = 0; i < count; ++i) delta[i] *= p[i] > 0.0 ? 1.0 : 0.0;
      } else {
        for (size_t i = 0; i < count; ++i) delta[i] *= 1.0 - p[i] * p[i];
      }
    }
    const Layer& layer = layers_[l];
    double* out_buf = l == 0 ? grad->RowPtr(0) : scratch;
    kernels::GemmNn(delta, rows, width, layer.w.data().data(), layer.w.cols(),
                    out_buf);
    width = layer.w.cols();
    std::swap(delta, scratch);
  }
  // A non-finite entry here means the forward pass overflowed; fail loudly
  // before the solver averages NaN gradients into Adam's moments.
  for (const double g : grad->data()) UDAO_DCHECK_FINITE(g);
}

Vector Mlp::Forward(const Vector& x) const {
  return ForwardCached(x, nullptr, nullptr, nullptr);
}

double Mlp::Predict(const Vector& x) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  const double y = Forward(x)[0];
  UDAO_DCHECK_FINITE(y);
  return y;
}

Vector Mlp::InputGradient(const Vector& x) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  std::vector<Vector> pre;
  std::vector<Vector> post;
  ForwardCached(x, &pre, &post, nullptr);
  const int num_layers = static_cast<int>(layers_.size());
  // Seed with d(out)/d(out) = 1 and back-propagate to the input.
  Vector delta(1, 1.0);
  for (int l = num_layers - 1; l >= 0; --l) {
    // delta currently holds d(out)/d(post-activation of layer l).
    if (l != num_layers - 1) {
      for (size_t i = 0; i < delta.size(); ++i) {
        delta[i] *= ActGrad(pre[l][i], post[l][i]);
      }
    }
    delta = layers_[l].w.ApplyTranspose(delta);
  }
  for (const double g : delta) UDAO_DCHECK_FINITE(g);
  return delta;
}

void Mlp::PredictWithUncertainty(const Vector& x, int samples, Rng* rng,
                                 double* mean, double* stddev) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  UDAO_CHECK_GT(samples, 0);
  const int num_hidden = static_cast<int>(layers_.size()) - 1;
  const double keep = 1.0 - config_.dropout;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    std::vector<Vector> masks(layers_.size());
    for (int l = 0; l < num_hidden; ++l) {
      masks[l].assign(layers_[l].b.size(), 0.0);
      for (size_t i = 0; i < masks[l].size(); ++i) {
        // Inverted dropout keeps the expected activation unchanged.
        masks[l][i] = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
      }
    }
    const double y = ForwardCached(x, nullptr, nullptr, &masks)[0];
    sum += y;
    sum_sq += y * y;
  }
  *mean = sum / samples;
  const double var =
      samples > 1 ? std::max(0.0, (sum_sq - sum * sum / samples) / (samples - 1))
                  : 0.0;
  *stddev = std::sqrt(var);
  UDAO_DCHECK_FINITE(*mean);
  UDAO_DCHECK_FINITE(*stddev);
}

void Mlp::PredictWithUncertaintyBatch(const Matrix& x, int samples,
                                      std::vector<Rng>* rngs, Vector* mean,
                                      Vector* stddev) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  UDAO_CHECK_GT(samples, 0);
  UDAO_CHECK_EQ(rngs->size(), static_cast<size_t>(x.rows()));
  const int rows = x.rows();
  const int num_layers = static_cast<int>(layers_.size());
  const int num_hidden = num_layers - 1;
  const double keep = 1.0 - config_.dropout;
  Vector sum(rows, 0.0);
  Vector sum_sq(rows, 0.0);
  kernels::KernelArena& arena = kernels::KernelArena::ThreadLocal();
  kernels::KernelArena::Scope outer(&arena);
  // Per-layer mask buffers ([rows x fan_out] each), refilled every sample.
  std::vector<double*> masks(num_hidden);
  for (int l = 0; l < num_hidden; ++l) {
    masks[l] = arena.Alloc(static_cast<size_t>(rows) * layers_[l].b.size());
  }
  const kernels::KernelTable* t = kernels::ActiveTable();
  for (int s = 0; s < samples; ++s) {
    // Row r's generator emits this sample's masks layer by layer, unit by
    // unit -- the exact stream PredictWithUncertainty consumes, which is
    // what keeps the two entry points bitwise-interchangeable.
    for (int r = 0; r < rows; ++r) {
      Rng& rng = (*rngs)[r];
      for (int l = 0; l < num_hidden; ++l) {
        const size_t width = layers_[l].b.size();
        double* m = masks[l] + static_cast<size_t>(r) * width;
        for (size_t i = 0; i < width; ++i) {
          // Inverted dropout keeps the expected activation unchanged.
          m[i] = rng.Bernoulli(keep) ? 1.0 / keep : 0.0;
        }
      }
    }
    kernels::KernelArena::Scope pass(&arena);
    const double* cur = x.data().data();
    for (int l = 0; l < num_layers; ++l) {
      const Layer& layer = layers_[l];
      const int fan_out = layer.w.rows();
      double* out = arena.Alloc(static_cast<size_t>(rows) * fan_out);
      const bool is_output = (l == num_layers - 1);
      const bool fuse_relu =
          !is_output && config_.activation == Activation::kRelu;
      t->layer_forward(cur, rows, layer.w.cols(), layer.w.data().data(),
                       layer.b.data(), fan_out,
                       fuse_relu ? kernels::Fused::kBiasRelu
                                 : kernels::Fused::kBias,
                       out);
      if (!is_output) {
        const size_t count = static_cast<size_t>(rows) * fan_out;
        if (config_.activation == Activation::kTanh) {
          for (size_t i = 0; i < count; ++i) out[i] = std::tanh(out[i]);
        }
        // Mask after activation, as ForwardCached does.
        const double* m = masks[l];
        for (size_t i = 0; i < count; ++i) out[i] *= m[i];
      }
      cur = out;
    }
    for (int r = 0; r < rows; ++r) {
      const double y = cur[r];
      sum[r] += y;
      sum_sq[r] += y * y;
    }
  }
  mean->resize(rows);
  stddev->resize(rows);
  for (int r = 0; r < rows; ++r) {
    (*mean)[r] = sum[r] / samples;
    const double var =
        samples > 1
            ? std::max(0.0, (sum_sq[r] - sum[r] * sum[r] / samples) /
                                (samples - 1))
            : 0.0;
    (*stddev)[r] = std::sqrt(var);
    UDAO_DCHECK_FINITE((*mean)[r]);
    UDAO_DCHECK_FINITE((*stddev)[r]);
  }
}

std::vector<Mlp::LayerGrad> Mlp::ZeroGrads() const {
  std::vector<LayerGrad> grads;
  grads.reserve(layers_.size());
  for (const Layer& layer : layers_) {
    grads.push_back(LayerGrad{Matrix(layer.w.rows(), layer.w.cols()),
                              Vector(layer.b.size(), 0.0)});
  }
  return grads;
}

double Mlp::ForwardBackward(const Matrix& x, const Vector& y,
                            std::vector<Mlp::LayerGrad>* grads) const {
  UDAO_CHECK_EQ(output_dim(), 1);
  Matrix ym(static_cast<int>(y.size()), 1);
  for (size_t i = 0; i < y.size(); ++i) ym(static_cast<int>(i), 0) = y[i];
  return ForwardBackwardMulti(x, ym, grads);
}

Vector Mlp::LayerActivations(const Vector& x, int layer) const {
  UDAO_CHECK(layer >= 0 && layer < static_cast<int>(layers_.size()));
  std::vector<Vector> pre;
  std::vector<Vector> post;
  ForwardCached(x, &pre, &post, nullptr);
  return post[layer];
}

double Mlp::ForwardBackwardMulti(const Matrix& x, const Matrix& y,
                                 std::vector<Mlp::LayerGrad>* grads) const {
  UDAO_CHECK_EQ(y.cols(), output_dim());
  UDAO_CHECK_EQ(x.rows(), y.rows());
  UDAO_CHECK_EQ(x.cols(), input_dim());
  UDAO_CHECK_EQ(grads->size(), layers_.size());
  const int batch = x.rows();
  UDAO_CHECK_GT(batch, 0);
  const int num_layers = static_cast<int>(layers_.size());
  double loss = 0.0;
  for (int n = 0; n < batch; ++n) {
    std::vector<Vector> pre;
    std::vector<Vector> post;
    const Vector input = x.Row(n);
    const Vector out = ForwardCached(input, &pre, &post, nullptr);
    Vector delta(out.size());
    for (size_t o = 0; o < out.size(); ++o) {
      const double err = out[o] - y(n, static_cast<int>(o));
      loss += err * err / static_cast<double>(out.size());
      // d(per-sample MSE)/d(out); the 2/batch factor folds the batch mean.
      delta[o] = 2.0 * err / (batch * static_cast<double>(out.size()));
    }
    for (int l = num_layers - 1; l >= 0; --l) {
      if (l != num_layers - 1) {
        for (size_t i = 0; i < delta.size(); ++i) {
          delta[i] *= ActGrad(pre[l][i], post[l][i]);
        }
      }
      const Vector& in = (l == 0) ? input : post[l - 1];
      LayerGrad& g = (*grads)[l];
      for (int r = 0; r < g.dw.rows(); ++r) {
        const double d = delta[r];
        if (d == 0.0) continue;
        kernels::Axpy(g.dw.RowPtr(r), in.data(), d, g.dw.cols());
        g.db[r] += d;
      }
      delta = layers_[l].w.ApplyTranspose(delta);
    }
  }
  loss /= batch;
  // L2 regularization on weights (not biases).
  if (config_.l2 > 0.0) {
    for (int l = 0; l < num_layers; ++l) {
      const Matrix& w = layers_[l].w;
      Matrix& dw = (*grads)[l].dw;
      for (size_t i = 0; i < w.data().size(); ++i) {
        loss += config_.l2 * w.data()[i] * w.data()[i];
        dw.data()[i] += 2.0 * config_.l2 * w.data()[i];
      }
    }
  }
  return loss;
}

Vector Mlp::Snapshot() const {
  Vector snap;
  for (const Layer& layer : layers_) {
    snap.insert(snap.end(), layer.w.data().begin(), layer.w.data().end());
    snap.insert(snap.end(), layer.b.begin(), layer.b.end());
  }
  return snap;
}

void Mlp::Restore(const Vector& snapshot) {
  size_t pos = 0;
  for (Layer& layer : layers_) {
    for (double& v : layer.w.data()) v = snapshot[pos++];
    for (double& v : layer.b) v = snapshot[pos++];
  }
  UDAO_CHECK_EQ(pos, snapshot.size());
}

}  // namespace udao
