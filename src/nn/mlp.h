#ifndef UDAO_NN_MLP_H_
#define UDAO_NN_MLP_H_

#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "nn/kernels.h"

namespace udao {

/// Activation function for hidden layers. The paper's largest model uses ReLU
/// (4 hidden layers of 128 units); Tanh is provided for smoother surfaces in
/// small tests.
enum class Activation { kRelu, kTanh };

/// Architecture and regularization settings for an Mlp.
struct MlpConfig {
  /// Layer widths including input and output, e.g. {12, 128, 128, 128, 128, 1}
  /// for the paper's largest latency model.
  std::vector<int> layer_sizes;
  Activation activation = Activation::kRelu;
  /// L2 weight-decay coefficient applied during training (the paper notes the
  /// DNN "is regularized by the L2 loss").
  double l2 = 1e-4;
  /// Dropout probability used for MC-dropout uncertainty estimates
  /// (Gal & Ghahramani-style Bayesian approximation, paper ref [9]).
  double dropout = 0.1;
};

/// A feed-forward multi-layer perceptron with manual forward/backward passes.
///
/// The backward pass produces gradients with respect to the *weights* (used by
/// the trainer in train.h) and with respect to the *input* (used by the MOGD
/// solver, which descends on the configuration x while weights stay frozen).
/// Uncertainty estimates come from Monte-Carlo dropout.
class Mlp {
 public:
  /// One dense layer: out = act(w * in + b); w has shape [fan_out, fan_in].
  struct Layer {
    Matrix w;
    Vector b;
  };

  /// Gradient of the training loss with respect to one layer's parameters.
  struct LayerGrad {
    Matrix dw;
    Vector db;
  };

  Mlp(MlpConfig config, Rng* rng);

  /// Deterministic forward pass (no dropout). `x` must match the input width;
  /// returns the output vector (usually 1-dimensional for regression).
  Vector Forward(const Vector& x) const;

  /// Scalar convenience wrapper for 1-output networks.
  double Predict(const Vector& x) const;

  /// Gradient of the scalar output with respect to the input, evaluated at x.
  /// ReLU is subdifferentiable; we use the subgradient 0 at the kink, which is
  /// exactly what the paper's MOGD solver requires.
  Vector InputGradient(const Vector& x) const;

  /// Batched deterministic forward: rows of `x` are inputs, rows of the
  /// result are outputs. One fused layer kernel per layer (dispatched GEMM +
  /// bias + ReLU, see nn/kernels.h) instead of a matrix-vector product per
  /// point -- the kernel behind ObjectiveModel::PredictBatch. Activation and
  /// gradient temporaries live on the thread-local KernelArena, so steady-
  /// state batched calls perform no heap allocation.
  Matrix ForwardBatch(const Matrix& x) const;

  /// Batched scalar prediction for 1-output networks.
  void PredictBatch(const Matrix& x, Vector* out) const;

  /// Batched input gradients: row i of `*grad` becomes InputGradient of row
  /// i of `x` (grad is Resize()d in place, so a caller-held matrix is reused
  /// across solver iterations without reallocating). When `values` is
  /// non-null it receives the predictions from the same forward pass, so the
  /// MOGD hot path pays for one forward per Adam iteration instead of two.
  void InputGradientBatch(const Matrix& x, Matrix* grad,
                          Vector* values = nullptr) const;

  /// MC-dropout estimate: runs `samples` stochastic forward passes and
  /// reports mean and standard deviation of the scalar output.
  void PredictWithUncertainty(const Vector& x, int samples, Rng* rng,
                              double* mean, double* stddev) const;

  /// Batched MC-dropout: row r of mean/stddev reproduces
  /// PredictWithUncertainty(x.Row(r), samples, &(*rngs)[r], ...) bitwise
  /// within a kernel backend. Each row's masks are drawn from its own Rng in
  /// the scalar path's (sample, layer, unit) order, and each stochastic pass
  /// runs as one fused layer kernel per layer over all rows -- so ranking a
  /// frontier under uncertainty costs `samples` batched forwards instead of
  /// rows x samples scalar ones. `rngs` must hold one generator per row and
  /// is advanced exactly as the scalar calls would advance it.
  void PredictWithUncertaintyBatch(const Matrix& x, int samples,
                                   std::vector<Rng>* rngs, Vector* mean,
                                   Vector* stddev) const;

  /// Mini-batch forward+backward: accumulates into `grads` (pre-sized via
  /// ZeroGrads) the gradient of the mean-squared-error over the batch (plus L2
  /// on the weights), and returns that loss. Rows of `x` are inputs, `y` holds
  /// scalar targets.
  double ForwardBackward(const Matrix& x, const Vector& y,
                         std::vector<LayerGrad>* grads) const;

  /// Multi-output variant: rows of `y` are target vectors matching the
  /// network's output width (used to train autoencoders).
  double ForwardBackwardMulti(const Matrix& x, const Matrix& y,
                              std::vector<LayerGrad>* grads) const;

  /// Post-activation output of hidden layer `layer` (0-based); used to read
  /// an autoencoder's bottleneck encoding.
  Vector LayerActivations(const Vector& x, int layer) const;

  /// Allocates a zeroed gradient structure matching this network's layers.
  std::vector<LayerGrad> ZeroGrads() const;

  /// Flattens all parameters into a single vector (checkpointing).
  Vector Snapshot() const;
  /// Restores parameters from a Snapshot of the same architecture.
  void Restore(const Vector& snapshot);

  std::vector<Layer>& layers() { return layers_; }
  const std::vector<Layer>& layers() const { return layers_; }
  const MlpConfig& config() const { return config_; }
  int input_dim() const { return config_.layer_sizes.front(); }
  int output_dim() const { return config_.layer_sizes.back(); }

 private:
  double Act(double v) const;
  double ActGrad(double pre, double post) const;
  // Forward pass caching pre-activations; optionally applies dropout masks.
  Vector ForwardCached(const Vector& x, std::vector<Vector>* pre,
                       std::vector<Vector>* post,
                       const std::vector<Vector>* dropout_masks) const;
  // Batched forward over arena-owned buffers. Returns the final layer's
  // output buffer [x.rows() x output_dim]; when `post` is non-null it
  // receives each layer's post-activation buffer (the backward pass needs
  // only post-activations: relu's gradient is post > 0, tanh's 1 - post^2).
  // Buffers live until the caller's KernelArena::Scope unwinds.
  const double* ForwardArena(const Matrix& x, kernels::KernelArena* arena,
                             std::vector<const double*>* post) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace udao

#endif  // UDAO_NN_MLP_H_
