#ifndef UDAO_NN_ADAM_H_
#define UDAO_NN_ADAM_H_

#include <vector>

#include "common/matrix.h"

namespace udao {

/// Hyperparameters for the Adam optimizer (Kingma & Ba defaults; the paper
/// uses Adam both for model training and inside the MOGD solver).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adaptive-moment-estimation optimizer over a flat parameter vector.
/// Maintains first/second moment estimates and bias correction; each Step
/// applies one update in place.
class Adam {
 public:
  Adam(int dim, AdamConfig config = AdamConfig());

  /// Applies one Adam update: params -= lr * mhat / (sqrt(vhat) + eps).
  /// `params` and `grad` must both have the configured dimension.
  void Step(Vector* params, const Vector& grad);

  /// Resets moments and the step counter (e.g. for a new multi-start trial).
  void Reset();

  int step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  AdamConfig config_;
  Vector m_;
  Vector v_;
  int t_ = 0;
};

}  // namespace udao

#endif  // UDAO_NN_ADAM_H_
