#include "common/metrics_registry.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace udao {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// FNV-1a over the metric name; stable so a metric always maps to one stripe.
size_t StripeHash(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

// JSON string escaping for metric/span names. Names are identifiers by
// convention, but the snapshot must stay valid JSON for any input.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; clamp to null, which readers treat as absent.
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

// Thread-local trace assembly: the nodes of the in-progress tree plus the
// index of the innermost open span. When the last open span closes, the
// finished tree moves to the registry. No locking: each thread owns its own
// buffer, and pool workers therefore produce one tree per task chain.
struct ThreadTrace {
  std::vector<SpanNode> nodes;
  int current = -1;
  int open = 0;
  uint64_t root_start_ns = 0;
};

ThreadTrace& LocalTrace() {
  thread_local ThreadTrace trace;
  return trace;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Stripe& MetricsRegistry::StripeFor(const std::string& name) {
  return stripes_[StripeHash(name) % kStripes];
}

const MetricsRegistry::Stripe& MetricsRegistry::StripeFor(
    const std::string& name) const {
  return stripes_[StripeHash(name) % kStripes];
}

void MetricsRegistry::AddCounter(const std::string& name, long long delta) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  stripe.counters[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  stripe.gauges[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  Histogram& h = stripe.histograms[name];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
  ++h.buckets[static_cast<size_t>(BucketIndex(value))];
}

void MetricsRegistry::RecordTrace(std::vector<SpanNode> nodes) {
  if (nodes.empty()) return;
  MutexLock lock(traces_mu_);
  traces_.push_back(std::move(nodes));
  while (traces_.size() > kMaxTraces) traces_.pop_front();
}

long long MetricsRegistry::CounterValue(const std::string& name) const {
  const Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  auto it = stripe.counters.find(name);
  return it == stripe.counters.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  auto it = stripe.gauges.find(name);
  return it == stripe.gauges.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::HistogramValue(
    const std::string& name) const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  const Stripe& stripe = StripeFor(name);
  MutexLock lock(stripe.mu);
  auto it = stripe.histograms.find(name);
  if (it == stripe.histograms.end()) return snap;
  const Histogram& h = it->second;
  snap.count = h.count;
  snap.sum = h.sum;
  snap.min = h.min;
  snap.max = h.max;
  snap.buckets.assign(h.buckets.begin(), h.buckets.end());
  return snap;
}

std::map<std::string, long long> MetricsRegistry::Counters() const {
  std::map<std::string, long long> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    for (const auto& [name, value] : stripe.counters) out[name] = value;
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  // Merge the stripes under their locks first, then render without holding
  // any lock. A snapshot taken during writes is a coherent per-metric view
  // (each metric is read atomically under its stripe lock).
  std::map<std::string, long long> counters = Counters();
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    for (const auto& [name, value] : stripe.gauges) gauges[name] = value;
    for (const auto& [name, h] : stripe.histograms) histograms[name] = h;
  }
  std::deque<std::vector<SpanNode>> traces;
  {
    MutexLock lock(traces_mu_);
    traces = traces_;
  }

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": ";
    AppendJsonNumber(value, &out);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(name, &out);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    AppendJsonNumber(h.sum, &out);
    out += ", \"min\": ";
    AppendJsonNumber(h.count > 0 ? h.min : 0.0, &out);
    out += ", \"max\": ";
    AppendJsonNumber(h.count > 0 ? h.max : 0.0, &out);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < kNumBuckets; ++i) {
      if (h.buckets[static_cast<size_t>(i)] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[";
      AppendJsonNumber(BucketLowerBound(i), &out);
      out += ", " + std::to_string(h.buckets[static_cast<size_t>(i)]) + "]";
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"traces\": [";
  first = true;
  for (const std::vector<SpanNode>& tree : traces) {
    out += first ? "\n    [" : ",\n    [";
    first = false;
    bool first_span = true;
    for (const SpanNode& span : tree) {
      if (!first_span) out += ", ";
      first_span = false;
      out += "{\"name\": ";
      AppendJsonString(span.name, &out);
      out += ", \"parent\": " + std::to_string(span.parent) +
             ", \"start_ms\": ";
      AppendJsonNumber(span.start_ms, &out);
      out += ", \"duration_ms\": ";
      AppendJsonNumber(span.duration_ms, &out);
      out += "}";
    }
    out += "]";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    stripe.counters.clear();
    stripe.gauges.clear();
    stripe.histograms.clear();
  }
  MutexLock lock(traces_mu_);
  traces_.clear();
}

double MetricsRegistry::BucketLowerBound(int i) {
  if (i <= 0) return 0.0;
  return std::ldexp(1.0, i - 32);
}

int MetricsRegistry::BucketIndex(double value) {
  if (!(value >= 0.0) || value < std::ldexp(1.0, -31)) return 0;
  int exp = 0;
  // frexp: value = m * 2^exp with m in [0.5, 1), so value in
  // [2^(exp-1), 2^exp) -> bucket lower bound 2^(exp-1) = 2^(i-32).
  std::frexp(value, &exp);
  const int idx = exp + 31;
  if (idx < 1) return 1;
  if (idx > kNumBuckets - 1) return kNumBuckets - 1;
  return idx;
}

#if UDAO_METRICS_ENABLED

TraceSpan::TraceSpan(const char* name) {
  ThreadTrace& trace = LocalTrace();
  start_ns_ = NowNs();
  if (trace.open == 0) {
    trace.nodes.clear();
    trace.current = -1;
    trace.root_start_ns = start_ns_;
  }
  SpanNode node;
  node.name = name;
  node.parent = trace.current;
  node.start_ms =
      static_cast<double>(start_ns_ - trace.root_start_ns) / 1e6;
  index_ = static_cast<int>(trace.nodes.size());
  trace.nodes.push_back(std::move(node));
  trace.current = index_;
  ++trace.open;
}

TraceSpan::~TraceSpan() {
  ThreadTrace& trace = LocalTrace();
  const double duration_ms = static_cast<double>(NowNs() - start_ns_) / 1e6;
  SpanNode& node = trace.nodes[static_cast<size_t>(index_)];
  node.duration_ms = duration_ms;
  MetricsRegistry::Global().Observe("udao.span." + node.name + "_ms",
                                    duration_ms);
  trace.current = node.parent;
  --trace.open;
  if (trace.open == 0) {
    MetricsRegistry::Global().RecordTrace(std::move(trace.nodes));
    trace.nodes = {};
    trace.current = -1;
  }
}

#else

TraceSpan::TraceSpan(const char* /*name*/) {}
TraceSpan::~TraceSpan() = default;

#endif  // UDAO_METRICS_ENABLED

}  // namespace udao
