#ifndef UDAO_COMMON_FAULT_INJECTOR_H_
#define UDAO_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <map>
#include <string>

#include "common/status.h"
#include "common/sync.h"

namespace udao {

/// Deterministic fault injection for degradation-path testing. Production
/// code plants named sites (e.g. "model_server.get_model", "pf.probe");
/// tests arm a site with an error Status or a latency, exercise the path,
/// and disarm. Without armed faults a site check is one relaxed atomic load,
/// cheap enough to leave in hot paths permanently.
///
/// Thread-safe: sites may be armed/disarmed while other threads run through
/// them (race_stress_test exercises this). Faults fire a bounded number of
/// times (`count`) and then auto-disarm, so a test can inject exactly N
/// failures without a disarm race at the end.
class FaultInjector {
 public:
  /// Process-wide instance; the serving stack has no plumbing for carrying
  /// a per-test injector through ModelServer and the solvers, and tests that
  /// arm faults are serialized by gtest anyway.
  static FaultInjector& Global();

  /// Arms `site` to return `status` from its next `count` traversals.
  void FailNext(const std::string& site, Status status, int count = 1);

  /// Arms `site` to sleep `latency_ms` on each of its next `count`
  /// traversals (simulates a slow model server / solver stall so deadline
  /// expiry is deterministic in tests).
  void DelayNext(const std::string& site, double latency_ms, int count = 1);

  /// Clears every armed fault.
  void Reset();

  /// Production-side check. Returns OK and does nothing when `site` is not
  /// armed (the common case: one relaxed load). When armed with a delay it
  /// sleeps; when armed with an error it returns that Status.
  Status Traverse(const std::string& site);

 private:
  FaultInjector() = default;

  struct Fault {
    Status status;        // OK for pure-latency faults
    double latency_ms = 0;
    int remaining = 0;
  };

  std::atomic<int> armed_{0};  ///< Number of armed sites (fast-path gate).
  Mutex mu_;
  std::map<std::string, Fault> faults_ UDAO_GUARDED_BY(mu_);
};

/// Sugar for the call sites:
///   if (Status s = FaultInjector::Global().Traverse("x.y"); !s.ok()) ...
#define UDAO_FAULT_SITE(site) ::udao::FaultInjector::Global().Traverse(site)

}  // namespace udao

#endif  // UDAO_COMMON_FAULT_INJECTOR_H_
