#ifndef UDAO_COMMON_METRICS_REGISTRY_H_
#define UDAO_COMMON_METRICS_REGISTRY_H_

// Zero-dependency observability substrate: a process-wide MetricsRegistry
// (counters, gauges, log-scale histograms) plus a TraceSpan scoped timer
// that records parent/child span trees per solve.
//
// Metric names follow the convention `udao.<subsystem>.<name>` (see
// DESIGN.md "Observability"). All registry operations are thread-safe; the
// name space is lock-striped so concurrent writers on unrelated metrics do
// not contend. Hot paths accumulate locally (e.g. SolvePerf) and flush once
// per solve, so the per-operation cost of the registry never sits inside an
// inner gradient-descent loop.
//
// Instrumentation call sites use the UDAO_METRIC_* / UDAO_TRACE_SPAN macros
// below, which compile to nothing when UDAO_METRICS_ENABLED is 0 (CMake
// option -DUDAO_METRICS=OFF). The registry itself stays linked either way so
// tools that read snapshots keep building.

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"

#ifndef UDAO_METRICS_ENABLED
#define UDAO_METRICS_ENABLED 1
#endif

namespace udao {

/// One completed span in a trace tree. Spans form a forest per thread: a
/// span's parent is the span that was open on the same thread when it
/// started (-1 for roots). Offsets are relative to the root span's start so
/// trees are self-contained.
struct SpanNode {
  std::string name;
  int parent = -1;
  double start_ms = 0.0;     ///< Offset from the root span's start.
  double duration_ms = 0.0;  ///< 0 until the span closes.
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  long long count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;
  /// Occupancy per fixed log2-scale bucket (see MetricsRegistry::kNumBuckets
  /// and BucketLowerBound for the edge layout).
  std::vector<long long> buckets;
};

/// Process-wide metrics sink. Use MetricsRegistry::Global(); instances are
/// only constructed directly in tests.
class MetricsRegistry {
 public:
  /// Histogram layout: bucket 0 catches values < 2^-31 (including <= 0);
  /// bucket i in [1, kNumBuckets-2] covers [2^(i-32), 2^(i-31)); the last
  /// bucket catches everything >= 2^30. Fixed edges keep snapshots mergeable
  /// across processes and runs.
  static constexpr int kNumBuckets = 64;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  void AddCounter(const std::string& name, long long delta = 1);
  void SetGauge(const std::string& name, double value);
  void Observe(const std::string& name, double value);

  /// Appends one finished span tree (nodes in creation order, parents before
  /// children). Keeps the most recent kMaxTraces trees.
  void RecordTrace(std::vector<SpanNode> nodes);

  /// Point reads; 0 / empty snapshot when the metric does not exist.
  long long CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  HistogramSnapshot HistogramValue(const std::string& name) const;

  /// All counters, merged across stripes (sorted by name).
  std::map<std::string, long long> Counters() const;

  /// Whole-registry snapshot as a JSON object:
  ///   {"counters": {name: int, ...},
  ///    "gauges": {name: double, ...},
  ///    "histograms": {name: {"count", "sum", "min", "max",
  ///                          "buckets": [[lower_bound, count], ...]}, ...},
  ///    "traces": [[{"name", "parent", "start_ms", "duration_ms"}, ...], ...]}
  /// Histogram bucket lists carry only occupied buckets.
  std::string SnapshotJson() const;

  /// Clears every metric and recorded trace (bench harness / test isolation).
  void Reset();

  /// Inclusive lower edge of bucket `i` (0 for bucket 0).
  static double BucketLowerBound(int i);
  /// Index of the bucket that `value` lands in.
  static int BucketIndex(double value);

 private:
  static constexpr int kStripes = 16;
  static constexpr int kMaxTraces = 16;

  struct Histogram {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<long long, kNumBuckets> buckets{};
  };

  struct Stripe {
    mutable Mutex mu;
    std::map<std::string, long long> counters UDAO_GUARDED_BY(mu);
    std::map<std::string, double> gauges UDAO_GUARDED_BY(mu);
    std::map<std::string, Histogram> histograms UDAO_GUARDED_BY(mu);
  };

  Stripe& StripeFor(const std::string& name);
  const Stripe& StripeFor(const std::string& name) const;

  std::array<Stripe, kStripes> stripes_;
  mutable Mutex traces_mu_;
  std::deque<std::vector<SpanNode>> traces_ UDAO_GUARDED_BY(traces_mu_);
};

/// Scoped timer recording one node in the current thread's span tree. The
/// tree a solve produces (root span plus nested children) is handed to
/// MetricsRegistry::Global() when the outermost span on the thread closes,
/// and every span feeds the histogram `udao.span.<name>_ms`. Spans opened on
/// pool worker threads form their own trees, which is the desired shape for
/// fan-out solves: one tree per worker chain.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if UDAO_METRICS_ENABLED
  int index_ = -1;
  uint64_t start_ns_ = 0;
#endif
};

}  // namespace udao

// Call-site macros: compiled out entirely under -DUDAO_METRICS=OFF so the
// bench suite can measure instrumented-vs-bare overhead. The metric name
// must be a string literal; it is materialized once per call site (function-
// local static) because the names outgrow the small-string buffer and a
// per-call heap allocation is what pushes instrumented hot paths over the
// overhead budget.
#if UDAO_METRICS_ENABLED
#define UDAO_METRIC_COUNTER_ADD(name, delta)                        \
  do {                                                              \
    static const ::std::string udao_metric_name_(name);            \
    ::udao::MetricsRegistry::Global().AddCounter(udao_metric_name_, \
                                                 (delta));          \
  } while (0)
#define UDAO_METRIC_GAUGE_SET(name, value)                                     \
  do {                                                                         \
    static const ::std::string udao_metric_name_(name);                       \
    ::udao::MetricsRegistry::Global().SetGauge(udao_metric_name_, (value));    \
  } while (0)
#define UDAO_METRIC_OBSERVE(name, value)                                    \
  do {                                                                      \
    static const ::std::string udao_metric_name_(name);                    \
    ::udao::MetricsRegistry::Global().Observe(udao_metric_name_, (value)); \
  } while (0)
#define UDAO_TRACE_SPAN_CONCAT2(a, b) a##b
#define UDAO_TRACE_SPAN_CONCAT(a, b) UDAO_TRACE_SPAN_CONCAT2(a, b)
#define UDAO_TRACE_SPAN(name) \
  ::udao::TraceSpan UDAO_TRACE_SPAN_CONCAT(udao_span_, __LINE__)(name)
#else
#define UDAO_METRIC_COUNTER_ADD(name, delta) ((void)0)
#define UDAO_METRIC_GAUGE_SET(name, value) ((void)0)
#define UDAO_METRIC_OBSERVE(name, value) ((void)0)
#define UDAO_TRACE_SPAN(name) ((void)0)
#endif

#endif  // UDAO_COMMON_METRICS_REGISTRY_H_
