#include "common/random.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace udao {

std::vector<std::vector<double>> LatinHypercube(int n, int dim, Rng* rng) {
  UDAO_CHECK_GT(n, 0);
  UDAO_CHECK_GT(dim, 0);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  std::vector<int> perm(n);
  for (int d = 0; d < dim; ++d) {
    std::iota(perm.begin(), perm.end(), 0);
    rng->Shuffle(&perm);
    for (int i = 0; i < n; ++i) {
      points[i][d] = (perm[i] + rng->Uniform()) / n;
    }
  }
  return points;
}

namespace {

// First 16 primes; enough for every parameter space in this project.
constexpr int kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                           23, 29, 31, 37, 41, 43, 47, 53};

double HaltonValue(int index, int base) {
  double f = 1.0;
  double r = 0.0;
  int i = index;
  while (i > 0) {
    f /= base;
    r += f * (i % base);
    i /= base;
  }
  return r;
}

}  // namespace

void HaltonPoint(int i, int dim, double* out) {
  UDAO_CHECK_GE(i, 0);
  UDAO_CHECK_GT(dim, 0);
  UDAO_CHECK_LE(dim, static_cast<int>(sizeof(kPrimes) / sizeof(kPrimes[0])));
  for (int d = 0; d < dim; ++d) out[d] = HaltonValue(i + 1, kPrimes[d]);
}

std::vector<std::vector<double>> HaltonSequence(int n, int dim) {
  UDAO_CHECK_GT(n, 0);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (int i = 0; i < n; ++i) HaltonPoint(i, dim, points[i].data());
  return points;
}

}  // namespace udao
