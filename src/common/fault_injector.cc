#include "common/fault_injector.h"

#include <chrono>
#include <thread>
#include <utility>

namespace udao {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::FailNext(const std::string& site, Status status,
                             int count) {
  MutexLock lock(mu_);
  Fault& f = faults_[site];
  f.status = std::move(status);
  f.latency_ms = 0;
  f.remaining = count;
  armed_.store(static_cast<int>(faults_.size()), std::memory_order_release);
}

void FaultInjector::DelayNext(const std::string& site, double latency_ms,
                              int count) {
  MutexLock lock(mu_);
  Fault& f = faults_[site];
  f.status = Status::Ok();
  f.latency_ms = latency_ms;
  f.remaining = count;
  armed_.store(static_cast<int>(faults_.size()), std::memory_order_release);
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  faults_.clear();
  armed_.store(0, std::memory_order_release);
}

Status FaultInjector::Traverse(const std::string& site) {
  if (armed_.load(std::memory_order_acquire) == 0) return Status::Ok();
  double sleep_ms = 0;
  Status status;
  {
    MutexLock lock(mu_);
    auto it = faults_.find(site);
    if (it == faults_.end() || it->second.remaining <= 0) return Status::Ok();
    --it->second.remaining;
    sleep_ms = it->second.latency_ms;
    status = it->second.status;
    if (it->second.remaining == 0) {
      faults_.erase(it);
      armed_.store(static_cast<int>(faults_.size()),
                   std::memory_order_release);
    }
  }
  // Sleep outside the lock so a slow site never serializes other sites.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  return status;
}

}  // namespace udao
