#ifndef UDAO_COMMON_STATUS_H_
#define UDAO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace udao {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kNumericalError,
  kUnimplemented,
  kDeadlineExceeded,  ///< The request's time budget expired before an answer.
  kUnavailable,       ///< Transient overload/shed; retrying later may succeed.
};

/// Lightweight success/error result for fallible public APIs. UDAO does not
/// use exceptions; operations that can fail for reasons other than programmer
/// error return Status (or StatusOr<T> when they produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "InvalidArgument: bad knob".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kNumericalError:
        return "NumericalError";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kDeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::kUnavailable:
        return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value is only
/// legal when ok(); this is enforced with UDAO_CHECK.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error Status mirrors
  /// absl::StatusOr and keeps call sites terse.
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT
    UDAO_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    UDAO_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    UDAO_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    UDAO_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace udao

/// Aborts when a Status-returning expression is not OK. For call sites whose
/// inputs are valid by construction (trace generators, tests, benches) after
/// an API migrated from void-with-CHECK to Status: the caller keeps
/// crash-on-bug semantics while real services branch on the Status instead.
#define UDAO_CHECK_OK(expr)                           \
  do {                                                \
    const ::udao::Status udao_check_ok_s_ = (expr);   \
    UDAO_CHECK(udao_check_ok_s_.ok());                \
  } while (0)

#endif  // UDAO_COMMON_STATUS_H_
