#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace udao {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Percentile(std::vector<double> v, double p) {
  UDAO_CHECK(!v.empty());
  UDAO_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(const std::vector<double>& v) { return Percentile(v, 50.0); }

double WeightedMape(const std::vector<double>& actual,
                    const std::vector<double>& predicted) {
  UDAO_CHECK_EQ(actual.size(), predicted.size());
  UDAO_CHECK(!actual.empty());
  double err = 0.0;
  double denom = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    err += std::abs(actual[i] - predicted[i]);
    denom += std::abs(actual[i]);
  }
  if (denom == 0.0) return 0.0;
  return err / denom;
}

}  // namespace udao
