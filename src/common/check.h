#ifndef UDAO_COMMON_CHECK_H_
#define UDAO_COMMON_CHECK_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>

/// \file check.h
/// CHECK-style invariant macros. A failed CHECK indicates a programming error
/// (violated precondition or internal invariant), prints the failing condition
/// with its source location, and aborts. Recoverable errors are reported via
/// udao::Status instead (see status.h).

#define UDAO_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "UDAO_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define UDAO_CHECK_OP(a, op, b)                                               \
  do {                                                                        \
    if (!((a)op(b))) {                                                        \
      std::fprintf(stderr, "UDAO_CHECK failed at %s:%d: %s %s %s\n",          \
                   __FILE__, __LINE__, #a, #op, #b);                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define UDAO_CHECK_EQ(a, b) UDAO_CHECK_OP(a, ==, b)
#define UDAO_CHECK_NE(a, b) UDAO_CHECK_OP(a, !=, b)
#define UDAO_CHECK_LT(a, b) UDAO_CHECK_OP(a, <, b)
#define UDAO_CHECK_LE(a, b) UDAO_CHECK_OP(a, <=, b)
#define UDAO_CHECK_GT(a, b) UDAO_CHECK_OP(a, >, b)
#define UDAO_CHECK_GE(a, b) UDAO_CHECK_OP(a, >=, b)

/// Aborts when `val` is NaN or infinite. Model outputs and gradients must
/// stay finite: a single NaN silently poisons every downstream Adam step and
/// Pareto comparison (NaN compares false against everything, so the solver
/// would "converge" to garbage instead of crashing).
#define UDAO_CHECK_FINITE(val)                                                \
  do {                                                                        \
    const double udao_check_finite_v_ = (val);                                \
    if (!std::isfinite(udao_check_finite_v_)) {                               \
      std::fprintf(stderr,                                                    \
                   "UDAO_CHECK_FINITE failed at %s:%d: %s = %g\n", __FILE__,  \
                   __LINE__, #val, udao_check_finite_v_);                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Release bodies reference their argument inside sizeof (unevaluated, so no
// runtime cost or side effects) to keep variables used only in checks from
// triggering -Wunused under -Werror.
#ifdef NDEBUG
#define UDAO_DCHECK(cond)        \
  do {                           \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)
#define UDAO_DCHECK_FINITE(val) \
  do {                          \
    (void)sizeof(val);          \
  } while (0)
#else
#define UDAO_DCHECK(cond) UDAO_CHECK(cond)
#define UDAO_DCHECK_FINITE(val) UDAO_CHECK_FINITE(val)
#endif

#endif  // UDAO_COMMON_CHECK_H_
