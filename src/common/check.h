#ifndef UDAO_COMMON_CHECK_H_
#define UDAO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// CHECK-style invariant macros. A failed CHECK indicates a programming error
/// (violated precondition or internal invariant), prints the failing condition
/// with its source location, and aborts. Recoverable errors are reported via
/// udao::Status instead (see status.h).

#define UDAO_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "UDAO_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define UDAO_CHECK_OP(a, op, b)                                               \
  do {                                                                        \
    if (!((a)op(b))) {                                                        \
      std::fprintf(stderr, "UDAO_CHECK failed at %s:%d: %s %s %s\n",          \
                   __FILE__, __LINE__, #a, #op, #b);                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define UDAO_CHECK_EQ(a, b) UDAO_CHECK_OP(a, ==, b)
#define UDAO_CHECK_NE(a, b) UDAO_CHECK_OP(a, !=, b)
#define UDAO_CHECK_LT(a, b) UDAO_CHECK_OP(a, <, b)
#define UDAO_CHECK_LE(a, b) UDAO_CHECK_OP(a, <=, b)
#define UDAO_CHECK_GT(a, b) UDAO_CHECK_OP(a, >, b)
#define UDAO_CHECK_GE(a, b) UDAO_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define UDAO_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define UDAO_DCHECK(cond) UDAO_CHECK(cond)
#endif

#endif  // UDAO_COMMON_CHECK_H_
