#ifndef UDAO_COMMON_RANDOM_H_
#define UDAO_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace udao {

/// Deterministic random number generator used throughout UDAO. All stochastic
/// components (trace sampling, NSGA-II, MOGD multi-start, MOBO) take an
/// explicit Rng so that experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Standard normal sample scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; useful for parallel workers.
  Rng Fork() { return Rng(engine_()); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Draws `n` points from the unit hypercube [0,1]^dim using Latin hypercube
/// sampling: each dimension is split into n strata and each stratum is hit
/// exactly once, giving much better space coverage than i.i.d. uniform draws.
std::vector<std::vector<double>> LatinHypercube(int n, int dim, Rng* rng);

/// Generates `n` points of the low-discrepancy Halton sequence in [0,1]^dim
/// (bases = first `dim` primes). Deterministic; used for grid-free coverage
/// baselines and exhaustive-solver seeding.
std::vector<std::vector<double>> HaltonSequence(int n, int dim);

/// Writes point `i` (0-based; equals HaltonSequence(n, dim)[i]) into
/// out[0..dim). Allocation-free form for enumeration sweeps that stream
/// hundreds of thousands of points through a fixed buffer.
void HaltonPoint(int i, int dim, double* out);

}  // namespace udao

#endif  // UDAO_COMMON_RANDOM_H_
