#ifndef UDAO_COMMON_SYNC_H_
#define UDAO_COMMON_SYNC_H_

// Annotated synchronization wrappers: the one place in the library where raw
// std::mutex / std::condition_variable appear (udao_lint's raw-sync rule
// enforces this). Every other component declares udao::Mutex /
// udao::SharedMutex members, tags the state they protect with
// UDAO_GUARDED_BY, and tags helpers that assume a held lock with
// UDAO_REQUIRES.
//
// The point of the wrappers is Clang Thread Safety Analysis: under clang with
// -Wthread-safety (the -DUDAO_THREAD_SAFETY=ON build, see tools/check.sh and
// the thread-safety CI job) the lock/data relationships below are *proved at
// compile time* -- an unguarded read of a guarded member, a REQUIRES helper
// called without the lock, or a double acquire is a build error, not a TSan
// report that depends on an interleaving actually executing.
// tests/thread_safety_fixtures/ pins that the analysis really rejects each
// seeded violation class. On GCC (the default container toolchain) every
// annotation macro expands to nothing and the wrappers are zero-cost
// forwarding shims over the std primitives.
//
// Conventions (see DESIGN.md "Static analysis & lock discipline"):
//  * declare the Mutex before the members it guards;
//  * every Mutex member either has at least one UDAO_GUARDED_BY sibling or a
//    `// lint: standalone-mutex` tag explaining why not (udao_lint's
//    standalone-mutex rule);
//  * private helpers whose contract is "caller holds the lock" are named
//    *Locked() and annotated UDAO_REQUIRES(mu);
//  * condition waits are explicit `while (!cond) cv.Wait(mu);` loops --
//    predicate-lambda overloads are deliberately absent because the analysis
//    cannot see a capability held across a lambda boundary.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute spellings per the Clang Thread Safety Analysis documentation
// (mutex.h reference header). GCC ignores unknown __attribute__ spellings
// only with a warning, so non-clang compilers get empty expansions instead.
#if defined(__clang__)
#define UDAO_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define UDAO_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define UDAO_CAPABILITY(x) UDAO_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define UDAO_SCOPED_CAPABILITY \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#define UDAO_GUARDED_BY(x) UDAO_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#define UDAO_PT_GUARDED_BY(x) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#define UDAO_ACQUIRED_BEFORE(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define UDAO_ACQUIRED_AFTER(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#define UDAO_REQUIRES(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define UDAO_REQUIRES_SHARED(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#define UDAO_ACQUIRE(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define UDAO_ACQUIRE_SHARED(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define UDAO_RELEASE(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define UDAO_RELEASE_SHARED(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define UDAO_TRY_ACQUIRE(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define UDAO_EXCLUDES(...) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define UDAO_ASSERT_CAPABILITY(x) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define UDAO_RETURN_CAPABILITY(x) \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#define UDAO_NO_THREAD_SAFETY_ANALYSIS \
  UDAO_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace udao {

/// Exclusive mutex carrying the "mutex" capability. Same cost and semantics
/// as std::mutex; the annotations exist so the analysis can connect it to
/// the UDAO_GUARDED_BY members it protects.
class UDAO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UDAO_ACQUIRE() { mu_.lock(); }
  void Unlock() UDAO_RELEASE() { mu_.unlock(); }
  bool TryLock() UDAO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex. LockShared establishes the shared capability, so a
/// UDAO_GUARDED_BY member may be read (not written) under it.
class UDAO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() UDAO_ACQUIRE() { mu_.lock(); }
  void Unlock() UDAO_RELEASE() { mu_.unlock(); }
  bool TryLock() UDAO_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() UDAO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() UDAO_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() UDAO_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the std::lock_guard idiom, as a scoped
/// capability so the analysis tracks the critical section's extent).
class UDAO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UDAO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() UDAO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over SharedMutex.
class UDAO_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) UDAO_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() UDAO_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class UDAO_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) UDAO_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() UDAO_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to udao::Mutex. Every Wait* overload REQUIRES
/// the mutex: the caller holds it on entry and holds it again on return (the
/// wait releases and reacquires internally, which the analysis -- like any
/// condvar protocol -- treats as the lock never leaving the caller's hands).
///
/// There are deliberately no predicate overloads: a predicate lambda is a
/// separate function to the analysis, so its guarded-member reads could not
/// be proven. Call sites spell the loop out:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Unbounded wait for a notification. Forbidden in src/serving/ (udao_lint
  /// unbounded-wait): serving threads owe bounded-time answers, so they use
  /// WaitFor in a re-check loop instead.
  void Wait(Mutex& mu) UDAO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's MutexLock still owns the mutex.
  }

  /// Bounded wait: returns false on timeout, true when notified. Either way
  /// the mutex is held again on return; callers re-check their condition.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      UDAO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace udao

#endif  // UDAO_COMMON_SYNC_H_
