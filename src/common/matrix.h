#ifndef UDAO_COMMON_MATRIX_H_
#define UDAO_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace udao {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles with the small linear-algebra kernel UDAO
/// needs: products, transposes, Cholesky factorization, and triangular solves.
/// Built from scratch; GP regression, LASSO, and the MLP run on top of it.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    UDAO_CHECK_GE(rows, 0);
    UDAO_CHECK_GE(cols, 0);
  }

  /// Builds a matrix from nested initializer data (rows of equal length).
  static Matrix FromRows(const std::vector<Vector>& rows);
  /// Identity matrix of size n.
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Reshapes to rows x cols, reusing the existing allocation when capacity
  /// allows (std::vector never shrinks its capacity here). Contents are
  /// unspecified afterwards -- callers that need zeros must fill. This is
  /// what lets per-iteration solver temporaries stop hitting the heap.
  void Resize(int rows, int cols) {
    UDAO_CHECK_GE(rows, 0);
    UDAO_CHECK_GE(cols, 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<size_t>(rows) * cols);
  }

  double& operator()(int r, int c) {
    UDAO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    UDAO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  double* RowPtr(int r) {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  Vector Row(int r) const;

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  /// Product with the transpose, A*B^T. Both operands are walked row-wise
  /// (contiguously), making this the cache-friendly kernel for batched MLP
  /// forward passes where B holds weights as [fan_out, fan_in] rows.
  Matrix MultiplyTransposed(const Matrix& other) const;
  /// Matrix-vector product A*v.
  Vector Apply(const Vector& v) const;
  /// Transposed matrix-vector product A^T * v.
  Vector ApplyTranspose(const Vector& v) const;

  /// Element-wise in-place addition of `other * scale`.
  void AddScaled(const Matrix& other, double scale);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Fails with NumericalError when the matrix is not (numerically) SPD.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves L*x = b where L is lower triangular (forward substitution).
Vector SolveLowerTriangular(const Matrix& l, const Vector& b);

/// Solves L^T*x = b where L is lower triangular (back substitution).
Vector SolveUpperTriangularFromLower(const Matrix& l, const Vector& b);

/// Solves the SPD system A*x = b via Cholesky: x = A^{-1} b.
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Dot product; the two vectors must have equal length.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// Squared Euclidean distance between two equal-length vectors.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace udao

#endif  // UDAO_COMMON_MATRIX_H_
