#ifndef UDAO_COMMON_DEADLINE_H_
#define UDAO_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace udao {

/// A point in time after which a request's answer is no longer worth
/// computing. Deadlines are values (copyable, cheap) and flow down the solve
/// stack inside StopToken; "no deadline" is the default and costs a single
/// branch per check.
///
/// Deadlines use the steady clock: wall-clock adjustments (NTP slew) must not
/// extend or shrink a request budget.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires.
  Deadline() = default;

  /// Expires `budget_ms` from now. Non-positive budgets are already expired
  /// (a zero budget is the canonical "best effort, right now" request).
  static Deadline AfterMs(double budget_ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(budget_ms));
    return d;
  }

  static Deadline Never() { return Deadline(); }

  bool has_deadline() const { return has_deadline_; }

  bool IsExpired() const {
    return has_deadline_ && Clock::now() >= at_;
  }

  /// Milliseconds until expiry; negative once expired, +infinity when no
  /// deadline is set.
  double RemainingMs() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

  /// The earlier of the two deadlines (overload control clamps a request's
  /// own deadline against the service's degraded budget with this).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (!a.has_deadline_) return b;
    if (!b.has_deadline_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Shared cancellation flag. A CancellationSource owns the flag and flips it;
/// any number of CancellationTokens observe it. Tokens are cheap to copy
/// (one shared_ptr) and safe to read from any thread; the default-constructed
/// token never reports cancellation without ever touching shared state.
class CancellationSource;

class CancellationToken {
 public:
  /// Default: never cancelled (no allocation, no atomic load on checks).
  CancellationToken() = default;

  bool CanBeCancelled() const { return !flags_.empty(); }

  bool IsCancelled() const {
    for (const auto& flag : flags_) {
      if (flag->load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// A token cancelled when EITHER input is: the serving ticket API composes
  /// its per-request CancellationSource with a caller-supplied token this
  /// way. The result observes the union of both tokens' flags (flattened, so
  /// nesting Any does not build towers of indirection); combining with a
  /// default token is the identity.
  static CancellationToken Any(const CancellationToken& a,
                               const CancellationToken& b) {
    if (a.flags_.empty()) return b;
    if (b.flags_.empty()) return a;
    CancellationToken out = a;
    out.flags_.insert(out.flags_.end(), b.flags_.begin(), b.flags_.end());
    return out;
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag) {
    flags_.push_back(std::move(flag));
  }

  std::vector<std::shared_ptr<std::atomic<bool>>> flags_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Idempotent; safe from any thread. Solvers holding a token observe the
  /// flag at their next per-iteration check and unwind with best-so-far
  /// results.
  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool IsCancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The stop signal solvers actually check: deadline OR cancellation. One
/// value threaded down UdaoService -> Udao -> ProgressiveFrontier -> MOGD.
/// The default token never stops, so code paths without a budget behave
/// bitwise-identically to code written before deadlines existed
/// (determinism_test guards this).
///
/// ShouldStop() costs one branch when neither mechanism is armed; armed
/// checks read the steady clock and/or one atomic. Loops amortize further by
/// checking once per iteration block, never per model evaluation.
class StopToken {
 public:
  StopToken() = default;
  StopToken(Deadline deadline, CancellationToken cancel)
      : deadline_(deadline), cancel_(std::move(cancel)) {}
  explicit StopToken(Deadline deadline) : deadline_(deadline) {}

  bool CanStop() const {
    return deadline_.has_deadline() || cancel_.CanBeCancelled();
  }

  bool ShouldStop() const {
    return cancel_.IsCancelled() || deadline_.IsExpired();
  }

  const Deadline& deadline() const { return deadline_; }
  const CancellationToken& cancellation() const { return cancel_; }

 private:
  Deadline deadline_;
  CancellationToken cancel_;
};

}  // namespace udao

#endif  // UDAO_COMMON_DEADLINE_H_
