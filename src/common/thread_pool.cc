#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace udao {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  UDAO_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    // Accepted even when shutdown has begun: the submitter is then a task
    // already running on a worker (the destructor joins before external
    // callers could legally touch the pool), and that worker drains the
    // queue — including this submission — before it exits.
    queue_.push(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_.Wait(mu_);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;  // WaitIdle would otherwise block on unrelated tasks.
  for (int i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(mu_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace udao
