#include "common/matrix.h"

#include <cmath>

#include "nn/kernels.h"

// The dense products below route through the runtime-dispatched kernel table
// (nn/kernels.h). The scalar backend replicates this file's original loops
// bitwise; the avx2 backend vectorizes them. Every consumer -- GP algebra,
// MLP training, the scalar and batched solver paths -- shifts backend
// together, which is what keeps the codebase's batch-vs-scalar exact-equality
// contracts intact in either mode.

namespace udao {

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    UDAO_CHECK_EQ(rows[r].size(), rows[0].size());
    for (int c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(int r) const {
  UDAO_CHECK(r >= 0 && r < rows_);
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  UDAO_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j order with zero-coefficient skips, delegated to the kernel table's
  // gemm_nn (which owns zeroing the output rows).
  kernels::GemmNn(data_.data(), rows_, cols_, other.data_.data(), other.cols_,
                  out.data_.data());
  return out;
}

Matrix Matrix::MultiplyTransposed(const Matrix& other) const {
  UDAO_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  const kernels::KernelTable* t = kernels::ActiveTable();
  for (int i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (int j = 0; j < other.rows_; ++j) {
      const double* b_row = other.RowPtr(j);
      out_row[j] = cols_ == 128 ? t->dot128(a_row, b_row)
                                : t->dot(a_row, b_row, cols_);
    }
  }
  return out;
}

Vector Matrix::Apply(const Vector& v) const {
  UDAO_CHECK_EQ(static_cast<int>(v.size()), cols_);
  Vector out(rows_, 0.0);
  const kernels::KernelTable* t = kernels::ActiveTable();
  for (int r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    out[r] = cols_ == 128 ? t->dot128(row, v.data())
                          : t->dot(row, v.data(), cols_);
  }
  return out;
}

Vector Matrix::ApplyTranspose(const Vector& v) const {
  UDAO_CHECK_EQ(static_cast<int>(v.size()), rows_);
  Vector out(cols_, 0.0);
  const kernels::KernelTable* t = kernels::ActiveTable();
  for (int r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    t->axpy(out.data(), RowPtr(r), vr, cols_);
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  UDAO_CHECK_EQ(rows_, other.rows_);
  UDAO_CHECK_EQ(cols_, other.cols_);
  kernels::Axpy(data_.data(), other.data_.data(), scale,
                static_cast<int>(data_.size()));
}

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  UDAO_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::NumericalError(
              "Cholesky failed: matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Vector SolveLowerTriangular(const Matrix& l, const Vector& b) {
  const int n = l.rows();
  UDAO_CHECK_EQ(n, l.cols());
  UDAO_CHECK_EQ(static_cast<int>(b.size()), n);
  Vector x(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l(i, k) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Vector SolveUpperTriangularFromLower(const Matrix& l, const Vector& b) {
  const int n = l.rows();
  UDAO_CHECK_EQ(n, l.cols());
  UDAO_CHECK_EQ(static_cast<int>(b.size()), n);
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[i];
    for (int k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  StatusOr<Matrix> l = CholeskyFactor(a);
  if (!l.ok()) return l.status();
  Vector y = SolveLowerTriangular(*l, b);
  return SolveUpperTriangularFromLower(*l, y);
}

double Dot(const Vector& a, const Vector& b) {
  UDAO_CHECK_EQ(a.size(), b.size());
  return kernels::Dot(a.data(), b.data(), static_cast<int>(a.size()));
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const Vector& a, const Vector& b) {
  UDAO_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace udao
