#ifndef UDAO_COMMON_BYTE_KEY_H_
#define UDAO_COMMON_BYTE_KEY_H_

#include <string>

namespace udao {

/// Exact byte-serialization helpers shared by every component that needs a
/// canonical, collision-free encoding of configuration state: the serving
/// layer's frontier-cache key, SolverOptions::Fingerprint(), and the bench
/// reports' config field. Keys are exact serializations, not hashes -- a
/// collision would silently serve the wrong frontier, and the keys are small
/// enough (a few hundred bytes) that exactness costs nothing.
///
/// Fields are separated by a unit separator so variable-length strings
/// cannot alias across field boundaries; numeric fields are appended as raw
/// fixed-width bytes.
inline constexpr char kByteKeySep = '\x1f';

template <typename T>
void AppendPod(std::string* out, T value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(value));
  out->push_back(kByteKeySep);
}

inline void AppendString(std::string* out, const std::string& s) {
  out->append(s);
  out->push_back(kByteKeySep);
}

/// Lowercase-hex rendering for embedding a byte key in JSON/text reports.
inline std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const unsigned char u = static_cast<unsigned char>(c);
    hex.push_back(kDigits[u >> 4]);
    hex.push_back(kDigits[u & 0xf]);
  }
  return hex;
}

}  // namespace udao

#endif  // UDAO_COMMON_BYTE_KEY_H_
