#ifndef UDAO_COMMON_STATS_H_
#define UDAO_COMMON_STATS_H_

#include <vector>

namespace udao {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); returns 0 when n < 2.
double StdDev(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
double Percentile(std::vector<double> v, double p);

/// Median (50th percentile).
double Median(const std::vector<double>& v);

/// Weighted mean absolute percentage error of predictions against actuals,
/// weighting each term by the actual value, as used in the paper's Expt 4:
///   WMAPE = sum_i |y_i - yhat_i| / sum_i |y_i|.
double WeightedMape(const std::vector<double>& actual,
                    const std::vector<double>& predicted);

}  // namespace udao

#endif  // UDAO_COMMON_STATS_H_
