#ifndef UDAO_COMMON_THREAD_POOL_H_
#define UDAO_COMMON_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace udao {

/// Fixed-size worker pool used by the PF-AP algorithm and the MOGD solver's
/// multi-threaded batch mode. Tasks are plain std::function<void()>; callers
/// coordinate results themselves (typically by writing to pre-sized slots and
/// waiting on WaitIdle).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker. Safe to call from inside
  /// a running task, including while the destructor is draining: workers
  /// finish everything in the queue before exiting, so follow-up work
  /// submitted by an in-flight task still runs before destruction completes.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Safe to call
  /// concurrently from several threads; each returns once the pool is idle.
  void WaitIdle();

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Returns immediately when n <= 0 (it never waits on unrelated tasks).
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  /// Immutable after the constructor returns (workers join only in the
  /// destructor, after every worker has exited its loop), so reads like
  /// num_threads() need no lock.
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::queue<std::function<void()>> queue_ UDAO_GUARDED_BY(mu_);
  int active_ UDAO_GUARDED_BY(mu_) = 0;
  bool shutdown_ UDAO_GUARDED_BY(mu_) = false;
  CondVar work_available_;
  CondVar idle_;
};

}  // namespace udao

#endif  // UDAO_COMMON_THREAD_POOL_H_
