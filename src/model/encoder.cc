#include "model/encoder.h"

#include "common/check.h"
#include "nn/train.h"

namespace udao {

StatusOr<std::shared_ptr<WorkloadEncoder>> WorkloadEncoder::Fit(
    const Matrix& metrics, const EncoderConfig& config, Rng* rng) {
  if (metrics.rows() == 0 || metrics.cols() == 0) {
    return Status::InvalidArgument("encoder fit needs non-empty metrics");
  }
  if (config.encoding_dim <= 0 || config.encoding_dim >= metrics.cols()) {
    return Status::InvalidArgument(
        "encoding_dim must be in (0, metric_dim)");
  }
  StandardScaler scaler;
  scaler.Fit(metrics);
  Matrix z = scaler.Transform(metrics);

  MlpConfig net_config;
  net_config.layer_sizes = {metrics.cols(), config.hidden,
                            config.encoding_dim, config.hidden,
                            metrics.cols()};
  net_config.activation = Activation::kTanh;  // bounded encodings
  net_config.l2 = config.l2;
  net_config.dropout = 0.0;
  auto net = std::make_unique<Mlp>(net_config, rng);
  TrainMlpMulti(net.get(), z, z, config.train, rng);
  return std::shared_ptr<WorkloadEncoder>(
      new WorkloadEncoder(config, std::move(scaler), std::move(net)));
}

Vector WorkloadEncoder::Encode(const Vector& metrics) const {
  // Bottleneck = post-activation of layer 1 (0-based) in the 5-layer stack.
  return net_->LayerActivations(scaler_.TransformRow(metrics), 1);
}

Vector WorkloadEncoder::Reconstruct(const Vector& metrics) const {
  Vector z = net_->Forward(scaler_.TransformRow(metrics));
  for (size_t c = 0; c < z.size(); ++c) {
    z[c] = scaler_.Inverse(static_cast<int>(c), z[c]);
  }
  return z;
}

double WorkloadEncoder::ReconstructionError(const Matrix& metrics) const {
  UDAO_CHECK_GT(metrics.rows(), 0);
  Matrix z = scaler_.Transform(metrics);
  double total = 0.0;
  for (int r = 0; r < z.rows(); ++r) {
    const Vector out = net_->Forward(z.Row(r));
    for (int c = 0; c < z.cols(); ++c) {
      const double err = out[c] - z(r, c);
      total += err * err;
    }
  }
  return total / (static_cast<double>(z.rows()) * z.cols());
}

StatusOr<std::shared_ptr<GlobalPredictor>> GlobalPredictor::Fit(
    const std::vector<Observation>& observations,
    std::shared_ptr<const WorkloadEncoder> encoder,
    const MlpModelConfig& config, Rng* rng) {
  if (observations.empty()) {
    return Status::InvalidArgument("global fit needs observations");
  }
  UDAO_CHECK(encoder != nullptr);
  const int conf_dim =
      static_cast<int>(observations.front().conf_encoded.size());
  const int input_dim = encoder->encoding_dim() + conf_dim;
  Matrix x(static_cast<int>(observations.size()), input_dim);
  Vector y(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    const Observation& obs = observations[i];
    if (static_cast<int>(obs.conf_encoded.size()) != conf_dim) {
      return Status::InvalidArgument("inconsistent configuration arity");
    }
    const Vector enc = encoder->Encode(obs.metrics);
    int col = 0;
    for (double v : enc) x(static_cast<int>(i), col++) = v;
    for (double v : obs.conf_encoded) x(static_cast<int>(i), col++) = v;
    y[i] = obs.value;
  }
  StatusOr<std::shared_ptr<MlpModel>> model =
      MlpModel::Fit(x, y, config, rng);
  if (!model.ok()) return model.status();
  return std::shared_ptr<GlobalPredictor>(
      new GlobalPredictor(std::move(encoder), *model));
}

double GlobalPredictor::Predict(const Vector& workload_metrics,
                                const Vector& conf_encoded) const {
  const Vector enc = encoder_->Encode(workload_metrics);
  Vector input;
  input.reserve(enc.size() + conf_encoded.size());
  input.insert(input.end(), enc.begin(), enc.end());
  input.insert(input.end(), conf_encoded.begin(), conf_encoded.end());
  return model_->Predict(input);
}

}  // namespace udao
