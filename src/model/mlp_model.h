#ifndef UDAO_MODEL_MLP_MODEL_H_
#define UDAO_MODEL_MLP_MODEL_H_

#include <iosfwd>
#include <memory>

#include "model/objective_model.h"
#include "nn/mlp.h"
#include "nn/train.h"

namespace udao {

/// Training settings for a DNN objective model.
struct MlpModelConfig {
  /// Hidden layer widths; the paper's largest model is 4 x 128 ReLU.
  std::vector<int> hidden = {64, 64};
  Activation activation = Activation::kRelu;
  double l2 = 1e-4;
  double dropout = 0.1;
  TrainConfig train;
  /// MC-dropout samples for uncertainty estimates.
  int mc_samples = 32;
  /// Train on log targets and predict exp(.): guarantees positive
  /// predictions and multiplicative error, the right geometry for latency /
  /// cost / throughput objectives spanning orders of magnitude.
  bool log_transform_targets = false;
};

/// DNN objective model (modeling option 2 in Section II-B): an Mlp trained on
/// runtime traces, with target standardization, analytic input gradients for
/// MOGD, and MC-dropout predictive uncertainty. Uncertainty sampling is
/// seeded from the query point, making Predict* deterministic and
/// thread-safe.
class MlpModel : public ObjectiveModel {
 public:
  /// Trains a fresh model on rows of `x` against targets `y`.
  static StatusOr<std::shared_ptr<MlpModel>> Fit(const Matrix& x,
                                                 const Vector& y,
                                                 const MlpModelConfig& config,
                                                 Rng* rng);

  /// Continues training the existing network on new data with a reduced
  /// learning rate -- the model server's "small trace update" fine-tune path.
  TrainResult FineTune(const Matrix& x, const Vector& y, int epochs, Rng* rng);

  /// Deep copy (network weights included). The model server fine-tunes a
  /// clone and swaps it in, so previously served handles stay immutable.
  std::shared_ptr<MlpModel> Clone() const;

  double Predict(const Vector& x) const override;
  void PredictWithUncertainty(const Vector& x, double* mean,
                              double* stddev) const override;
  Vector InputGradient(const Vector& x) const override;
  // Batched inference rides the GEMM forward/backward in nn/mlp.cc; MOGD's
  // lockstep multistart loop enters here. Batched MC-dropout keeps the
  // per-point seed contract (row r is seeded from row r's coordinates) while
  // running each stochastic pass as one fused kernel over all rows, so it is
  // bitwise-interchangeable with the scalar PredictWithUncertainty per row.
  void PredictBatch(const Matrix& x, Vector* out) const override;
  void PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                   Vector* stddev) const override;
  void GradientBatch(const Matrix& x, Matrix* grads,
                     Vector* values = nullptr) const override;
  int input_dim() const override { return mlp_->input_dim(); }
  std::string Name() const override { return "dnn"; }

  const Mlp& mlp() const { return *mlp_; }
  const MlpModelConfig& config() const { return config_; }

  /// Writes architecture, target transform and weights as portable text.
  void SerializeTo(std::ostream& out) const;
  /// Rebuilds a model from SerializeTo output.
  static StatusOr<std::shared_ptr<MlpModel>> Deserialize(std::istream& in);

 private:
  MlpModel(MlpModelConfig config, std::unique_ptr<Mlp> mlp, double y_mean,
           double y_std)
      : config_(std::move(config)), mlp_(std::move(mlp)), y_mean_(y_mean),
        y_std_(y_std) {}

  // Target transform helpers (identity unless log_transform_targets).
  double ToTarget(double y) const;
  double FromTarget(double t) const;

  MlpModelConfig config_;
  std::unique_ptr<Mlp> mlp_;
  double y_mean_;
  double y_std_;
};

}  // namespace udao

#endif  // UDAO_MODEL_MLP_MODEL_H_
