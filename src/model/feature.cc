#include "model/feature.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/stats.h"

namespace udao {

void StandardScaler::Fit(const Matrix& x) {
  UDAO_CHECK_GT(x.rows(), 0);
  const int cols = x.cols();
  mean_.assign(cols, 0.0);
  scale_.assign(cols, 1.0);
  constant_.assign(cols, false);
  for (int c = 0; c < cols; ++c) {
    Vector col(x.rows());
    for (int r = 0; r < x.rows(); ++r) col[r] = x(r, c);
    mean_[c] = Mean(col);
    const double sd = StdDev(col);
    if (sd < 1e-12) {
      constant_[c] = true;
      scale_[c] = 1.0;
    } else {
      scale_[c] = sd;
    }
  }
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  UDAO_CHECK(fitted());
  UDAO_CHECK_EQ(x.cols(), static_cast<int>(mean_.size()));
  Matrix out(x.rows(), x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / scale_[c];
    }
  }
  return out;
}

Vector StandardScaler::TransformRow(const Vector& row) const {
  UDAO_CHECK(fitted());
  UDAO_CHECK_EQ(row.size(), mean_.size());
  Vector out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / scale_[c];
  }
  return out;
}

double StandardScaler::Inverse(int col, double v) const {
  UDAO_CHECK(fitted());
  return v * scale_[col] + mean_[col];
}

LassoResult LassoFit(const Matrix& x, const Vector& y, double lambda,
                     int max_iters, double tol) {
  UDAO_CHECK_EQ(x.rows(), static_cast<int>(y.size()));
  UDAO_CHECK_GT(x.rows(), 0);
  const int n = x.rows();
  const int p = x.cols();

  // Standardize columns and center targets internally.
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix xs = scaler.Transform(x);
  const double y_mean = Mean(y);
  Vector yc(n);
  for (int i = 0; i < n; ++i) yc[i] = y[i] - y_mean;

  // Precompute column squared norms / n (constant columns give 0 -> skip).
  Vector col_sq(p, 0.0);
  for (int c = 0; c < p; ++c) {
    for (int r = 0; r < n; ++r) col_sq[c] += xs(r, c) * xs(r, c);
    col_sq[c] /= n;
  }

  LassoResult result;
  result.coefficients.assign(p, 0.0);
  Vector residual = yc;  // y - Xw with w = 0

  for (int iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (int c = 0; c < p; ++c) {
      if (col_sq[c] < 1e-12) continue;
      // rho = (1/n) x_c . (residual + x_c w_c)
      double rho = 0.0;
      for (int r = 0; r < n; ++r) rho += xs(r, c) * residual[r];
      rho = rho / n + col_sq[c] * result.coefficients[c];
      // Soft threshold.
      double w_new = 0.0;
      if (rho > lambda) {
        w_new = (rho - lambda) / col_sq[c];
      } else if (rho < -lambda) {
        w_new = (rho + lambda) / col_sq[c];
      }
      const double delta = w_new - result.coefficients[c];
      if (delta != 0.0) {
        for (int r = 0; r < n; ++r) residual[r] -= xs(r, c) * delta;
        result.coefficients[c] = w_new;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    result.iterations = iter + 1;
    if (max_delta < tol) break;
  }
  result.intercept = y_mean;
  return result;
}

std::vector<int> LassoPathRank(const Matrix& x, const Vector& y,
                               int num_lambdas) {
  UDAO_CHECK_GT(num_lambdas, 1);
  const int p = x.cols();
  // lambda_max: smallest lambda with all-zero solution on standardized data.
  StandardScaler scaler;
  scaler.Fit(x);
  Matrix xs = scaler.Transform(x);
  const double y_mean = Mean(y);
  double lambda_max = 1e-12;
  for (int c = 0; c < p; ++c) {
    double rho = 0.0;
    for (int r = 0; r < x.rows(); ++r) rho += xs(r, c) * (y[r] - y_mean);
    lambda_max = std::max(lambda_max, std::abs(rho) / x.rows());
  }

  std::vector<int> entry_step(p, num_lambdas + 1);
  Vector final_coefs(p, 0.0);
  for (int step = 0; step < num_lambdas; ++step) {
    // Geometric path from lambda_max down to lambda_max * 1e-3.
    const double frac =
        static_cast<double>(step) / std::max(1, num_lambdas - 1);
    const double lambda = lambda_max * std::pow(1e-3, frac);
    LassoResult fit = LassoFit(x, y, lambda);
    for (int c = 0; c < p; ++c) {
      if (fit.coefficients[c] != 0.0 && entry_step[c] > num_lambdas) {
        entry_step[c] = step;
      }
    }
    if (step == num_lambdas - 1) final_coefs = fit.coefficients;
  }

  std::vector<int> order(p);
  for (int c = 0; c < p; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (entry_step[a] != entry_step[b]) return entry_step[a] < entry_step[b];
    return std::abs(final_coefs[a]) > std::abs(final_coefs[b]);
  });
  return order;
}

std::vector<int> SelectKnobs(const Matrix& x, const Vector& y, int k,
                             const std::vector<int>& always_keep) {
  UDAO_CHECK_GT(k, 0);
  std::set<int> chosen(always_keep.begin(), always_keep.end());
  for (int idx : always_keep) {
    UDAO_CHECK(idx >= 0 && idx < x.cols());
  }
  const std::vector<int> ranked = LassoPathRank(x, y);
  for (int idx : ranked) {
    if (static_cast<int>(chosen.size()) >= k) break;
    chosen.insert(idx);
  }
  return std::vector<int>(chosen.begin(), chosen.end());
}

}  // namespace udao
