#include "model/objective_model.h"

#include <algorithm>

#include "common/check.h"

namespace udao {

Vector FiniteDifferenceGradient(const ObjectiveModel& model, const Vector& x,
                                double h) {
  Vector grad(x.size());
  Vector probe = x;
  for (size_t d = 0; d < x.size(); ++d) {
    const double orig = probe[d];
    probe[d] = orig + h;
    const double fp = model.Predict(probe);
    probe[d] = orig - h;
    const double fm = model.Predict(probe);
    probe[d] = orig;
    grad[d] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

void ObjectiveModel::PredictBatch(const Matrix& x, Vector* out) const {
  UDAO_CHECK_EQ(x.cols(), input_dim());
  out->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) (*out)[i] = Predict(x.Row(i));
}

void ObjectiveModel::GradientBatch(const Matrix& x, Matrix* grads,
                                   Vector* values) const {
  UDAO_CHECK_EQ(x.cols(), input_dim());
  // Resize (not reconstruct) so a caller-held matrix keeps its allocation
  // across solver iterations; every row is fully overwritten below.
  grads->Resize(x.rows(), input_dim());
  if (values != nullptr) values->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const Vector point = x.Row(i);
    const Vector g = InputGradient(point);
    UDAO_CHECK_EQ(static_cast<int>(g.size()), grads->cols());
    double* row = grads->RowPtr(i);
    for (int d = 0; d < grads->cols(); ++d) row[d] = g[d];
    if (values != nullptr) (*values)[i] = Predict(point);
  }
}

void ObjectiveModel::PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                                 Vector* stddev) const {
  UDAO_CHECK_EQ(x.cols(), input_dim());
  mean->resize(x.rows());
  stddev->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    PredictWithUncertainty(x.Row(i), &(*mean)[i], &(*stddev)[i]);
  }
}

CallableModel::CallableModel(std::string name, int dim, Fn fn)
    : name_(std::move(name)), dim_(dim), fn_(std::move(fn)) {
  grad_ = [this](const Vector& x) {
    return FiniteDifferenceGradient(*this, x);
  };
}

CallableModel& CallableModel::WithBatch(BatchFn batch_fn,
                                        BatchGradFn batch_grad) {
  batch_fn_ = std::move(batch_fn);
  batch_grad_ = std::move(batch_grad);
  return *this;
}

void CallableModel::PredictBatch(const Matrix& x, Vector* out) const {
  if (batch_fn_ == nullptr) {
    ObjectiveModel::PredictBatch(x, out);
    return;
  }
  UDAO_CHECK_EQ(x.cols(), dim_);
  out->resize(x.rows());
  batch_fn_(x, out);
}

void CallableModel::GradientBatch(const Matrix& x, Matrix* grads,
                                  Vector* values) const {
  if (batch_grad_ == nullptr) {
    // A vectorized value form still speeds up the fused path's values.
    if (batch_fn_ != nullptr && values != nullptr) {
      ObjectiveModel::GradientBatch(x, grads, nullptr);
      PredictBatch(x, values);
      return;
    }
    ObjectiveModel::GradientBatch(x, grads, values);
    return;
  }
  UDAO_CHECK_EQ(x.cols(), dim_);
  // The callback contract hands user code a zeroed gradient matrix, so the
  // Resize is followed by an explicit fill.
  grads->Resize(x.rows(), dim_);
  std::fill(grads->data().begin(), grads->data().end(), 0.0);
  if (values != nullptr) values->resize(x.rows());
  batch_grad_(x, grads, values);
}

double NonNegativeModel::Predict(const Vector& x) const {
  return std::max(0.0, base_->Predict(x));
}

void NonNegativeModel::PredictWithUncertainty(const Vector& x, double* mean,
                                              double* stddev) const {
  base_->PredictWithUncertainty(x, mean, stddev);
  *mean = std::max(0.0, *mean);
}

Vector NonNegativeModel::InputGradient(const Vector& x) const {
  return base_->InputGradient(x);
}

void NonNegativeModel::PredictBatch(const Matrix& x, Vector* out) const {
  base_->PredictBatch(x, out);
  for (double& v : *out) v = std::max(0.0, v);
}

void NonNegativeModel::GradientBatch(const Matrix& x, Matrix* grads,
                                     Vector* values) const {
  // Gradients pass through unfloored (pseudo-gradient); values get the floor.
  base_->GradientBatch(x, grads, values);
  if (values != nullptr) {
    for (double& v : *values) v = std::max(0.0, v);
  }
}

void NonNegativeModel::PredictWithUncertaintyBatch(const Matrix& x,
                                                   Vector* mean,
                                                   Vector* stddev) const {
  base_->PredictWithUncertaintyBatch(x, mean, stddev);
  for (double& v : *mean) v = std::max(0.0, v);
}

double UncertaintyAdjustedModel::Predict(const Vector& x) const {
  double mean = 0.0;
  double stddev = 0.0;
  base_->PredictWithUncertainty(x, &mean, &stddev);
  return mean + alpha_ * stddev;
}

void UncertaintyAdjustedModel::PredictWithUncertainty(const Vector& x,
                                                      double* mean,
                                                      double* stddev) const {
  base_->PredictWithUncertainty(x, mean, stddev);
  *mean += alpha_ * *stddev;
}

void UncertaintyAdjustedModel::PredictBatch(const Matrix& x,
                                            Vector* out) const {
  Vector stddev;
  base_->PredictWithUncertaintyBatch(x, out, &stddev);
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] += alpha_ * stddev[i];
}

void UncertaintyAdjustedModel::PredictWithUncertaintyBatch(
    const Matrix& x, Vector* mean, Vector* stddev) const {
  base_->PredictWithUncertaintyBatch(x, mean, stddev);
  for (size_t i = 0; i < mean->size(); ++i) (*mean)[i] += alpha_ * (*stddev)[i];
}

Vector UncertaintyAdjustedModel::InputGradient(const Vector& x) const {
  Vector grad = base_->InputGradient(x);
  if (alpha_ == 0.0) return grad;
  // Gradient of the stddev term by central differences; GP/MC-dropout stddev
  // fields are smooth enough for this to guide descent.
  const double h = 1e-4;
  Vector probe = x;
  for (size_t d = 0; d < x.size(); ++d) {
    double mean = 0.0;
    double sp = 0.0;
    double sm = 0.0;
    const double orig = probe[d];
    probe[d] = orig + h;
    base_->PredictWithUncertainty(probe, &mean, &sp);
    probe[d] = orig - h;
    base_->PredictWithUncertainty(probe, &mean, &sm);
    probe[d] = orig;
    grad[d] += alpha_ * (sp - sm) / (2.0 * h);
  }
  return grad;
}

}  // namespace udao
