#include "model/objective_model.h"

#include <algorithm>

#include "common/check.h"

namespace udao {

Vector FiniteDifferenceGradient(const ObjectiveModel& model, const Vector& x,
                                double h) {
  Vector grad(x.size());
  Vector probe = x;
  for (size_t d = 0; d < x.size(); ++d) {
    const double orig = probe[d];
    probe[d] = orig + h;
    const double fp = model.Predict(probe);
    probe[d] = orig - h;
    const double fm = model.Predict(probe);
    probe[d] = orig;
    grad[d] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

CallableModel::CallableModel(std::string name, int dim, Fn fn)
    : name_(std::move(name)), dim_(dim), fn_(std::move(fn)) {
  grad_ = [this](const Vector& x) {
    return FiniteDifferenceGradient(*this, x);
  };
}

double NonNegativeModel::Predict(const Vector& x) const {
  return std::max(0.0, base_->Predict(x));
}

void NonNegativeModel::PredictWithUncertainty(const Vector& x, double* mean,
                                              double* stddev) const {
  base_->PredictWithUncertainty(x, mean, stddev);
  *mean = std::max(0.0, *mean);
}

Vector NonNegativeModel::InputGradient(const Vector& x) const {
  return base_->InputGradient(x);
}

double UncertaintyAdjustedModel::Predict(const Vector& x) const {
  double mean = 0.0;
  double stddev = 0.0;
  base_->PredictWithUncertainty(x, &mean, &stddev);
  return mean + alpha_ * stddev;
}

void UncertaintyAdjustedModel::PredictWithUncertainty(const Vector& x,
                                                      double* mean,
                                                      double* stddev) const {
  base_->PredictWithUncertainty(x, mean, stddev);
  *mean += alpha_ * *stddev;
}

Vector UncertaintyAdjustedModel::InputGradient(const Vector& x) const {
  Vector grad = base_->InputGradient(x);
  if (alpha_ == 0.0) return grad;
  // Gradient of the stddev term by central differences; GP/MC-dropout stddev
  // fields are smooth enough for this to guide descent.
  const double h = 1e-4;
  Vector probe = x;
  for (size_t d = 0; d < x.size(); ++d) {
    double mean = 0.0;
    double sp = 0.0;
    double sm = 0.0;
    const double orig = probe[d];
    probe[d] = orig + h;
    base_->PredictWithUncertainty(probe, &mean, &sp);
    probe[d] = orig - h;
    base_->PredictWithUncertainty(probe, &mean, &sm);
    probe[d] = orig;
    grad[d] += alpha_ * (sp - sm) / (2.0 * h);
  }
  return grad;
}

}  // namespace udao
