#include "model/gp_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/stats.h"
#include "nn/adam.h"

namespace udao {

namespace {

constexpr double kLogTwoPi = 1.8378770664093453;

// Inverts an SPD matrix from its lower Cholesky factor.
Matrix InverseFromCholesky(const Matrix& l) {
  const int n = l.rows();
  Matrix inv(n, n);
  for (int col = 0; col < n; ++col) {
    Vector e(n, 0.0);
    e[col] = 1.0;
    Vector y = SolveLowerTriangular(l, e);
    Vector x = SolveUpperTriangularFromLower(l, y);
    for (int row = 0; row < n; ++row) inv(row, col) = x[row];
  }
  return inv;
}

}  // namespace

double GpModel::Kernel(const double* a, const double* b) const {
  double quad = 0.0;
  for (int d = 0; d < x_.cols(); ++d) {
    const double diff = (a[d] - b[d]) / lengthscales_[d];
    quad += diff * diff;
  }
  return signal_var_ * std::exp(-0.5 * quad);
}

Vector GpModel::KernelVector(const Vector& x) const {
  UDAO_CHECK_EQ(static_cast<int>(x.size()), x_.cols());
  Vector k(x_.rows());
  for (int i = 0; i < x_.rows(); ++i) k[i] = Kernel(x.data(), x_.RowPtr(i));
  return k;
}

Matrix GpModel::KernelMatrix(const Matrix& x) const {
  UDAO_CHECK_EQ(x.cols(), x_.cols());
  Matrix k(x.rows(), x_.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double* out = k.RowPtr(i);
    for (int j = 0; j < x_.rows(); ++j) out[j] = Kernel(row, x_.RowPtr(j));
  }
  return k;
}

bool GpModel::Refactorize() {
  const int n = x_.rows();
  Matrix k(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = Kernel(x_.RowPtr(i), x_.RowPtr(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  double jitter = jitter_;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Matrix kj = k;
    for (int i = 0; i < n; ++i) kj(i, i) += noise_var_ + jitter;
    StatusOr<Matrix> chol = CholeskyFactor(kj);
    if (chol.ok()) {
      chol_ = std::move(*chol);
      Vector y = SolveLowerTriangular(chol_, z_);
      alpha_ = SolveUpperTriangularFromLower(chol_, y);
      double logdet = 0.0;
      for (int i = 0; i < n; ++i) logdet += std::log(chol_(i, i));
      lml_ = -0.5 * Dot(z_, alpha_) - logdet - 0.5 * n * kLogTwoPi;
      jitter_ = jitter;
      return true;
    }
    jitter = std::max(jitter * 10.0, 1e-10);
  }
  return false;
}

StatusOr<std::shared_ptr<GpModel>> GpModel::Fit(const Matrix& x,
                                                const Vector& y,
                                                const GpConfig& config) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("GP fit requires non-empty inputs");
  }
  if (x.rows() != static_cast<int>(y.size())) {
    return Status::InvalidArgument("GP fit: |x| != |y|");
  }
  auto gp = std::shared_ptr<GpModel>(new GpModel());
  gp->x_ = x;
  gp->log_targets_ = config.log_transform_targets;
  Vector t(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = gp->log_targets_ ? std::log(std::max(1e-9, y[i])) : y[i];
  }
  gp->y_mean_ = Mean(t);
  gp->y_std_ = std::max(1e-9, StdDev(t));
  gp->z_.resize(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    gp->z_[i] = (t[i] - gp->y_mean_) / gp->y_std_;
  }
  const int d = x.cols();
  gp->lengthscales_.assign(d, config.init_lengthscale);
  gp->signal_var_ = config.init_signal_var;
  gp->noise_var_ = config.init_noise_var;
  gp->jitter_ = config.jitter;
  if (!gp->Refactorize()) {
    return Status::NumericalError("GP kernel not factorizable");
  }

  // Maximize log marginal likelihood over log-hyperparameters with Adam.
  // Parameter layout: [log l_1..log l_m, log sigma_f^2, log sigma_n^2],
  // m = d for ARD, 1 otherwise.
  const int m = config.ard ? d : 1;
  const int n = x.rows();
  if (config.hyper_opt_steps > 0) {
    Vector theta(m + 2);
    for (int i = 0; i < m; ++i) theta[i] = std::log(config.init_lengthscale);
    theta[m] = std::log(config.init_signal_var);
    theta[m + 1] = std::log(config.init_noise_var);
    Adam adam(m + 2, AdamConfig{.learning_rate = config.hyper_learning_rate});
    Vector best_theta = theta;
    double best_lml = gp->lml_;

    for (int step = 0; step < config.hyper_opt_steps; ++step) {
      // W = alpha alpha^T - K^{-1}; dL/dtheta_j = 0.5 tr(W dK/dtheta_j).
      Matrix kinv = InverseFromCholesky(gp->chol_);
      Vector grad(m + 2, 0.0);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          const double w =
              gp->alpha_[i] * gp->alpha_[j] - kinv(i, j);
          const double kij = gp->Kernel(gp->x_.RowPtr(i), gp->x_.RowPtr(j));
          // log-lengthscales: dk/dlog l_d = k * r_d^2 / l_d^2.
          for (int dd = 0; dd < d; ++dd) {
            const double diff = gp->x_(i, dd) - gp->x_(j, dd);
            const double term =
                kij * diff * diff /
                (gp->lengthscales_[dd] * gp->lengthscales_[dd]);
            grad[config.ard ? dd : 0] += 0.5 * w * term;
          }
          // log signal variance: dK = K_signal.
          grad[m] += 0.5 * w * kij;
          // log noise variance: dK = sigma_n^2 I.
          if (i == j) grad[m + 1] += 0.5 * w * gp->noise_var_;
        }
      }
      // Ascent: Adam minimizes, so negate.
      for (double& g : grad) g = -g;
      adam.Step(&theta, grad);
      // Clamp to sane ranges to keep the kernel well conditioned.
      for (int i = 0; i < m; ++i) {
        theta[i] = std::clamp(theta[i], std::log(1e-2), std::log(1e2));
      }
      theta[m] = std::clamp(theta[m], std::log(1e-3), std::log(1e3));
      theta[m + 1] = std::clamp(theta[m + 1], std::log(1e-6), std::log(1.0));

      for (int dd = 0; dd < d; ++dd) {
        gp->lengthscales_[dd] = std::exp(theta[config.ard ? dd : 0]);
      }
      gp->signal_var_ = std::exp(theta[m]);
      gp->noise_var_ = std::exp(theta[m + 1]);
      if (!gp->Refactorize()) break;
      if (gp->lml_ > best_lml) {
        best_lml = gp->lml_;
        best_theta = theta;
      }
    }
    // Restore the best hyperparameters seen.
    for (int dd = 0; dd < d; ++dd) {
      gp->lengthscales_[dd] = std::exp(best_theta[config.ard ? dd : 0]);
    }
    gp->signal_var_ = std::exp(best_theta[m]);
    gp->noise_var_ = std::exp(best_theta[m + 1]);
    if (!gp->Refactorize()) {
      return Status::NumericalError("GP kernel not factorizable after fit");
    }
  }
  return gp;
}

double GpModel::Predict(const Vector& x) const {
  const Vector k = KernelVector(x);
  const double t = Dot(k, alpha_) * y_std_ + y_mean_;
  const double v = log_targets_ ? std::exp(t) : t;
  UDAO_DCHECK_FINITE(v);
  return v;
}

void GpModel::PredictWithUncertainty(const Vector& x, double* mean,
                                     double* stddev) const {
  const Vector k = KernelVector(x);
  const double t_mean = Dot(k, alpha_) * y_std_ + y_mean_;
  const Vector v = SolveLowerTriangular(chol_, k);
  const double var = std::max(0.0, signal_var_ + noise_var_ - Dot(v, v));
  const double t_std = std::sqrt(var) * y_std_;
  if (log_targets_) {
    // Delta method around the log-space posterior mean.
    *mean = std::exp(t_mean);
    *stddev = *mean * t_std;
  } else {
    *mean = t_mean;
    *stddev = t_std;
  }
  UDAO_DCHECK_FINITE(*mean);
  UDAO_DCHECK_FINITE(*stddev);
}

Vector GpModel::InputGradient(const Vector& x) const {
  // d mean / d x_d = sum_i alpha_i k(x, x_i) (x_i_d - x_d) / l_d^2.
  const Vector k = KernelVector(x);
  Vector grad(x.size(), 0.0);
  for (int i = 0; i < x_.rows(); ++i) {
    const double w = alpha_[i] * k[i];
    for (int d = 0; d < x_.cols(); ++d) {
      grad[d] += w * (x_(i, d) - x[d]) /
                 (lengthscales_[d] * lengthscales_[d]);
    }
  }
  double scale = y_std_;
  if (log_targets_) {
    const Vector kv = KernelVector(x);
    scale *= std::exp(Dot(kv, alpha_) * y_std_ + y_mean_);
  }
  for (double& g : grad) {
    g *= scale;
    UDAO_DCHECK_FINITE(g);
  }
  return grad;
}

void GpModel::PredictBatch(const Matrix& x, Vector* out) const {
  const Matrix k = KernelMatrix(x);
  // Apply uses the same dispatched dot kernel as the scalar Predict path, so
  // batch and scalar predictions stay bitwise-equal in every backend.
  const Vector acc = k.Apply(alpha_);
  out->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const double t = acc[i] * y_std_ + y_mean_;
    (*out)[i] = log_targets_ ? std::exp(t) : t;
    UDAO_DCHECK_FINITE((*out)[i]);
  }
}

void GpModel::GradientBatch(const Matrix& x, Matrix* grads,
                            Vector* values) const {
  const Matrix k = KernelMatrix(x);
  // Same dispatched dot as the scalar path; see PredictBatch.
  const Vector acc = k.Apply(alpha_);
  grads->Resize(x.rows(), x_.cols());
  std::fill(grads->data().begin(), grads->data().end(), 0.0);
  if (values != nullptr) values->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const double* krow = k.RowPtr(i);
    const double* xrow = x.RowPtr(i);
    double* grow = grads->RowPtr(i);
    for (int j = 0; j < x_.rows(); ++j) {
      const double w = alpha_[j] * krow[j];
      const double* train = x_.RowPtr(j);
      for (int d = 0; d < x_.cols(); ++d) {
        grow[d] += w * (train[d] - xrow[d]) /
                   (lengthscales_[d] * lengthscales_[d]);
      }
    }
    const double t = acc[i] * y_std_ + y_mean_;
    double scale = y_std_;
    if (log_targets_) scale *= std::exp(t);
    for (int d = 0; d < x_.cols(); ++d) {
      grow[d] *= scale;
      UDAO_DCHECK_FINITE(grow[d]);
    }
    if (values != nullptr) {
      (*values)[i] = log_targets_ ? std::exp(t) : t;
      UDAO_DCHECK_FINITE((*values)[i]);
    }
  }
}

void GpModel::PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                          Vector* stddev) const {
  const Matrix k = KernelMatrix(x);
  mean->resize(x.rows());
  stddev->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const Vector ki = k.Row(i);
    const double t_mean = Dot(ki, alpha_) * y_std_ + y_mean_;
    const Vector v = SolveLowerTriangular(chol_, ki);
    const double var = std::max(0.0, signal_var_ + noise_var_ - Dot(v, v));
    const double t_std = std::sqrt(var) * y_std_;
    if (log_targets_) {
      (*mean)[i] = std::exp(t_mean);
      (*stddev)[i] = (*mean)[i] * t_std;
    } else {
      (*mean)[i] = t_mean;
      (*stddev)[i] = t_std;
    }
    UDAO_DCHECK_FINITE((*mean)[i]);
    UDAO_DCHECK_FINITE((*stddev)[i]);
  }
}

void GpModel::SerializeTo(std::ostream& out) const {
  out << "udao-gp-v1\n";
  out << x_.rows() << ' ' << x_.cols() << ' ' << (log_targets_ ? 1 : 0)
      << '\n';
  out.precision(17);
  out << y_mean_ << ' ' << y_std_ << ' ' << signal_var_ << ' ' << noise_var_
      << ' ' << jitter_ << '\n';
  for (double l : lengthscales_) out << l << ' ';
  out << '\n';
  for (int r = 0; r < x_.rows(); ++r) {
    for (int c = 0; c < x_.cols(); ++c) out << x_(r, c) << ' ';
    out << z_[r] << '\n';
  }
}

StatusOr<std::shared_ptr<GpModel>> GpModel::Deserialize(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != "udao-gp-v1") {
    return Status::InvalidArgument("not a GP checkpoint");
  }
  int rows = 0;
  int cols = 0;
  int log_flag = 0;
  in >> rows >> cols >> log_flag;
  if (!in || rows <= 0 || cols <= 0 || rows > (1 << 20) || cols > 4096) {
    return Status::InvalidArgument("corrupt GP checkpoint header");
  }
  auto gp = std::shared_ptr<GpModel>(new GpModel());
  gp->log_targets_ = log_flag != 0;
  in >> gp->y_mean_ >> gp->y_std_ >> gp->signal_var_ >> gp->noise_var_ >>
      gp->jitter_;
  gp->lengthscales_.resize(cols);
  for (double& l : gp->lengthscales_) in >> l;
  gp->x_ = Matrix(rows, cols);
  gp->z_.resize(rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) in >> gp->x_(r, c);
    in >> gp->z_[r];
  }
  if (!in) return Status::InvalidArgument("truncated GP checkpoint");
  if (!gp->Refactorize()) {
    return Status::NumericalError("GP checkpoint kernel not factorizable");
  }
  return gp;
}

}  // namespace udao
