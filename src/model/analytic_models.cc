#include "model/analytic_models.h"

#include <cmath>

#include "common/check.h"

namespace udao {

namespace {

// Numerically safe softplus; smooth stand-in for max(0, v).
double Softplus(double v, double beta = 1.0) {
  const double bv = beta * v;
  if (bv > 30) return v;
  return std::log1p(std::exp(bv)) / beta;
}

// Smooth min via soft clipping: smin(v, cap) = cap - softplus(cap - v).
double SoftMin(double v, double cap, double beta = 1.0) {
  return cap - Softplus(cap - v, beta);
}

// Denormalizes one encoded [0,1] coordinate to its knob range *without*
// rounding, keeping the model smooth in the relaxed variables.
double Denorm(const ParamSpec& spec, double u) {
  const double c = std::min(1.0, std::max(0.0, u));
  return spec.lo + c * (spec.hi - spec.lo);
}

// The closed forms below are written over a raw point pointer so the same
// arithmetic serves the scalar Predict and the vectorized PredictBatch (one
// pass over the row-major batch, no per-point std::function dispatch).

double BatchLatencyAt(const AnalyticWorkload& w, const ParamSpace& space,
                      const double* x) {
  // Encoded layout of BatchParamSpace(): all scalar knobs, one dim each.
  const double parallelism = Denorm(space.spec(0), x[0]);
  const double instances = Denorm(space.spec(1), x[1]);
  const double cores_per_exec = Denorm(space.spec(2), x[2]);
  const double mem_gb = Denorm(space.spec(3), x[3]);
  const double inflight_mb = Denorm(space.spec(4), x[4]);
  const double compress = std::min(1.0, std::max(0.0, x[6]));
  const double mem_fraction = Denorm(space.spec(7), x[7]);
  const double partitions = Denorm(space.spec(11), x[11]);

  const double cores = instances * cores_per_exec;
  // Amdahl split of compute work; 1e9 ops ~ 20 core-seconds at baseline.
  const double work_s = w.work * 20.0;
  const double serial_s = work_s * (1.0 - w.parallel_fraction);
  const double parallel_s = work_s * w.parallel_fraction / cores;
  // Shuffle: compression shrinks the transfer 3x but costs CPU.
  const double net_factor = 1.0 - 0.65 * compress;
  const double shuffle_s =
      w.shuffle_gb * 1024.0 * net_factor / (instances * 1100.0) +
      compress * w.shuffle_gb * 0.4;
  // Fetch-wait grows when per-partition transfers exceed the window.
  const double fetch_s =
      0.01 * Softplus(w.shuffle_gb * 1024.0 * net_factor / partitions /
                          inflight_mb - 1.0);
  // Memory pressure: spill when per-task state exceeds execution memory.
  const double state_per_task_mb = w.state_gb * 1024.0 / partitions * 2.5;
  const double mem_per_task_mb =
      mem_gb * 1024.0 * mem_fraction / cores_per_exec;
  const double spill_s =
      Softplus((state_per_task_mb - mem_per_task_mb) / 200.0, 0.5) * 1.5;
  // Per-partition scheduling overhead and a parallelism sweet spot.
  const double overhead_s = 0.004 * (partitions + parallelism) +
                            0.02 * Softplus(cores - parallelism, 0.2);
  return 1.2 + serial_s + parallel_s + shuffle_s + fetch_s + spill_s +
         overhead_s;
}

double Fig3LatencyAt(const double* x) {
  const double execs = 1.0 + 11.0 * std::min(1.0, std::max(0.0, x[0]));
  const double cpe = 1.0 + 1.0 * std::min(1.0, std::max(0.0, x[1]));
  const double cores = SoftMin(execs * cpe, 24.0, 2.0);
  return 100.0 + Softplus(2400.0 / std::max(1e-6, cores) - 100.0, 0.5);
}

double Fig3CostAt(const double* x) {
  const double execs = 1.0 + 11.0 * std::min(1.0, std::max(0.0, x[0]));
  const double cpe = 1.0 + 1.0 * std::min(1.0, std::max(0.0, x[1]));
  return SoftMin(execs * cpe, 24.0, 2.0);
}

}  // namespace

std::shared_ptr<ObjectiveModel> MakeAnalyticBatchLatencyModel(
    const AnalyticWorkload& workload) {
  const ParamSpace& space = BatchParamSpace();
  const int dim = space.EncodedDim();
  AnalyticWorkload w = workload;
  auto fn = [w, &space](const Vector& x) {
    return BatchLatencyAt(w, space, x.data());
  };
  auto model = std::make_shared<CallableModel>("analytic-latency", dim,
                                               std::move(fn));
  model->WithBatch([w, &space](const Matrix& x, Vector* out) {
    for (int i = 0; i < x.rows(); ++i) {
      (*out)[i] = BatchLatencyAt(w, space, x.RowPtr(i));
    }
  });
  return model;
}

namespace {

std::shared_ptr<ObjectiveModel> BuildCostCoresModel() {
  const ParamSpace& space = BatchParamSpace();
  const int dim = space.EncodedDim();
  auto fn = [&space](const Vector& x) {
    const double instances = Denorm(space.spec(1), x[1]);
    const double cores_per_exec = Denorm(space.spec(2), x[2]);
    return instances * cores_per_exec;
  };
  auto grad = [&space, dim](const Vector& x) {
    Vector g(dim, 0.0);
    const ParamSpec& si = space.spec(1);
    const ParamSpec& sc = space.spec(2);
    const double instances = Denorm(si, x[1]);
    const double cores_per_exec = Denorm(sc, x[2]);
    g[1] = (si.hi - si.lo) * cores_per_exec;
    g[2] = (sc.hi - sc.lo) * instances;
    return g;
  };
  auto model = std::make_shared<CallableModel>("cost-cores", dim,
                                               std::move(fn), std::move(grad));
  model->WithBatch(
      [&space](const Matrix& x, Vector* out) {
        for (int i = 0; i < x.rows(); ++i) {
          const double* row = x.RowPtr(i);
          (*out)[i] = Denorm(space.spec(1), row[1]) *
                      Denorm(space.spec(2), row[2]);
        }
      },
      [&space](const Matrix& x, Matrix* grads, Vector* values) {
        const ParamSpec& si = space.spec(1);
        const ParamSpec& sc = space.spec(2);
        for (int i = 0; i < x.rows(); ++i) {
          const double* row = x.RowPtr(i);
          const double instances = Denorm(si, row[1]);
          const double cores_per_exec = Denorm(sc, row[2]);
          double* g = grads->RowPtr(i);
          g[1] = (si.hi - si.lo) * cores_per_exec;
          g[2] = (sc.hi - sc.lo) * instances;
          if (values != nullptr) (*values)[i] = instances * cores_per_exec;
        }
      });
  return model;
}

std::shared_ptr<ObjectiveModel> BuildStreamCostCoresModel() {
  const ParamSpace& space = StreamParamSpace();
  const int dim = space.EncodedDim();
  // Stream space layout: executor instances at knob 4, cores/executor at 5.
  auto fn = [&space](const Vector& x) {
    const double instances = Denorm(space.spec(4), x[4]);
    const double cores_per_exec = Denorm(space.spec(5), x[5]);
    return instances * cores_per_exec;
  };
  auto grad = [&space, dim](const Vector& x) {
    Vector g(dim, 0.0);
    const ParamSpec& si = space.spec(4);
    const ParamSpec& sc = space.spec(5);
    g[4] = (si.hi - si.lo) * Denorm(sc, x[5]);
    g[5] = (sc.hi - sc.lo) * Denorm(si, x[4]);
    return g;
  };
  auto model = std::make_shared<CallableModel>("stream-cost-cores", dim,
                                               std::move(fn), std::move(grad));
  model->WithBatch(
      [&space](const Matrix& x, Vector* out) {
        for (int i = 0; i < x.rows(); ++i) {
          const double* row = x.RowPtr(i);
          (*out)[i] = Denorm(space.spec(4), row[4]) *
                      Denorm(space.spec(5), row[5]);
        }
      },
      [&space](const Matrix& x, Matrix* grads, Vector* values) {
        const ParamSpec& si = space.spec(4);
        const ParamSpec& sc = space.spec(5);
        for (int i = 0; i < x.rows(); ++i) {
          const double* row = x.RowPtr(i);
          double* g = grads->RowPtr(i);
          g[4] = (si.hi - si.lo) * Denorm(sc, row[5]);
          g[5] = (sc.hi - sc.lo) * Denorm(si, row[4]);
          if (values != nullptr) {
            (*values)[i] = Denorm(si, row[4]) * Denorm(sc, row[5]);
          }
        }
      });
  return model;
}

}  // namespace

std::shared_ptr<ObjectiveModel> MakeCostCoresModel() {
  // One process-wide instance: the model is stateless and every request that
  // asks for cost-in-cores means the same function, so sharing the instance
  // (a) skips a per-request allocation and (b) gives all such requests the
  // same FuseIdentity, which is what lets the solve coalescer fuse their CO
  // subproblems into one batched evaluation stream.
  static const std::shared_ptr<ObjectiveModel> kShared = BuildCostCoresModel();
  return kShared;
}

std::shared_ptr<ObjectiveModel> MakeStreamCostCoresModel() {
  // Shared for the same reasons as MakeCostCoresModel above.
  static const std::shared_ptr<ObjectiveModel> kShared =
      BuildStreamCostCoresModel();
  return kShared;
}

std::shared_ptr<ObjectiveModel> MakeCpuHourModel(
    std::shared_ptr<ObjectiveModel> latency_model) {
  UDAO_CHECK(latency_model != nullptr);
  const int dim = latency_model->input_dim();
  std::shared_ptr<ObjectiveModel> cores = MakeCostCoresModel();
  UDAO_CHECK_EQ(dim, cores->input_dim());
  auto fn = [latency_model, cores](const Vector& x) {
    return latency_model->Predict(x) * cores->Predict(x) / 3600.0;
  };
  auto grad = [latency_model, cores](const Vector& x) {
    const double lat = latency_model->Predict(x);
    const double c = cores->Predict(x);
    Vector gl = latency_model->InputGradient(x);
    Vector gc = cores->InputGradient(x);
    for (size_t d = 0; d < gl.size(); ++d) {
      gl[d] = (gl[d] * c + lat * gc[d]) / 3600.0;
    }
    return gl;
  };
  auto model = std::make_shared<CallableModel>("cost-cpu-hour", dim,
                                               std::move(fn), std::move(grad));
  // The product rule composes batch-wise from the factors' batch paths, so a
  // DNN latency times the analytic cores model stays one GEMM per batch.
  model->WithBatch(
      [latency_model, cores](const Matrix& x, Vector* out) {
        Vector lat;
        Vector c;
        latency_model->PredictBatch(x, &lat);
        cores->PredictBatch(x, &c);
        for (int i = 0; i < x.rows(); ++i) (*out)[i] = lat[i] * c[i] / 3600.0;
      },
      [latency_model, cores](const Matrix& x, Matrix* grads, Vector* values) {
        Vector lat;
        Vector c;
        Matrix gl;
        Matrix gc;
        latency_model->GradientBatch(x, &gl, &lat);
        cores->GradientBatch(x, &gc, &c);
        for (int i = 0; i < x.rows(); ++i) {
          double* out = grads->RowPtr(i);
          const double* l = gl.RowPtr(i);
          const double* r = gc.RowPtr(i);
          for (int d = 0; d < grads->cols(); ++d) {
            out[d] = (l[d] * c[i] + lat[i] * r[d]) / 3600.0;
          }
          if (values != nullptr) (*values)[i] = lat[i] * c[i] / 3600.0;
        }
      });
  return model;
}

std::shared_ptr<ObjectiveModel> MakeFig3LatencyModel() {
  auto fn = [](const Vector& x) { return Fig3LatencyAt(x.data()); };
  auto model = std::make_shared<CallableModel>("fig3-latency", 2,
                                               std::move(fn));
  model->WithBatch([](const Matrix& x, Vector* out) {
    for (int i = 0; i < x.rows(); ++i) (*out)[i] = Fig3LatencyAt(x.RowPtr(i));
  });
  return model;
}

std::shared_ptr<ObjectiveModel> MakeFig3CostModel() {
  auto fn = [](const Vector& x) { return Fig3CostAt(x.data()); };
  auto model = std::make_shared<CallableModel>("fig3-cost", 2, std::move(fn));
  model->WithBatch([](const Matrix& x, Vector* out) {
    for (int i = 0; i < x.rows(); ++i) (*out)[i] = Fig3CostAt(x.RowPtr(i));
  });
  return model;
}

}  // namespace udao
