#ifndef UDAO_MODEL_FEATURE_H_
#define UDAO_MODEL_FEATURE_H_

#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace udao {

/// Column-wise standardizer (zero mean / unit variance). Constant columns are
/// passed through unchanged (scale 1), implementing the paper's
/// "filter features with a constant value" step.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation from rows of `x`.
  void Fit(const Matrix& x);

  /// Applies (v - mean) / std column-wise.
  Matrix Transform(const Matrix& x) const;
  Vector TransformRow(const Vector& row) const;

  /// Inverse transform for one column index.
  double Inverse(int col, double v) const;

  bool fitted() const { return !mean_.empty(); }
  const Vector& mean() const { return mean_; }
  const Vector& scale() const { return scale_; }
  /// Columns whose training values were constant.
  const std::vector<bool>& constant_columns() const { return constant_; }

 private:
  Vector mean_;
  Vector scale_;
  std::vector<bool> constant_;
};

/// LASSO linear regression by cyclic coordinate descent on standardized data.
/// Used for knob selection: knobs whose coefficients survive the strongest
/// regularization are the most important (the OtterTune-style LASSO-path
/// practice the paper follows in Section V "Feature Engineering").
struct LassoResult {
  Vector coefficients;  ///< One per input column (standardized space).
  double intercept = 0.0;
  int iterations = 0;
};

/// Solves min_w 1/(2n) ||y - Xw||^2 + lambda ||w||_1.
LassoResult LassoFit(const Matrix& x, const Vector& y, double lambda,
                     int max_iters = 500, double tol = 1e-7);

/// Ranks input columns by the regularization strength at which they enter the
/// LASSO path (earlier entry = more important), breaking ties by |coef| at
/// the weakest lambda. Returns column indices in importance order.
std::vector<int> LassoPathRank(const Matrix& x, const Vector& y,
                               int num_lambdas = 20);

/// Selects the `k` most important knobs for predicting `y` from raw knob
/// matrix `x`, mixing the LASSO ranking with an always-keep list (indices
/// that Spark practice says matter, mirroring the paper's hybrid approach in
/// Appendix C-A). Returned indices are sorted ascending.
std::vector<int> SelectKnobs(const Matrix& x, const Vector& y, int k,
                             const std::vector<int>& always_keep);

}  // namespace udao

#endif  // UDAO_MODEL_FEATURE_H_
