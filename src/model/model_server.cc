#include "model/model_server.h"

#include <cmath>

#include "common/check.h"
#include "common/fault_injector.h"
#include "common/metrics_registry.h"

namespace udao {

ModelServer::ModelServer(ModelServerConfig config)
    : config_(config), rng_(config.seed) {}

Status ModelServer::Ingest(const std::string& workload_id,
                           const std::string& objective,
                           const Vector& encoded_conf, double value) {
  if (encoded_conf.empty()) {
    return Status::InvalidArgument("empty encoded configuration for " +
                                   workload_id + "/" + objective);
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("non-finite objective value for " +
                                   workload_id + "/" + objective);
  }
  MutexLock lock(mu_);
  Entry& entry = entries_[{workload_id, objective}];
  if (!entry.data.x.empty() &&
      entry.data.x.front().size() != encoded_conf.size()) {
    return Status::InvalidArgument(
        "configuration dimension mismatch for " + workload_id + "/" +
        objective + ": got " + std::to_string(encoded_conf.size()) +
        ", expected " + std::to_string(entry.data.x.front().size()));
  }
  entry.data.x.push_back(encoded_conf);
  entry.data.y.push_back(value);
  ++entry.pending;
  BumpGeneration(workload_id);
  UDAO_METRIC_COUNTER_ADD("udao.model.ingests", 1);
  return Status::Ok();
}

Status ModelServer::IngestMetrics(const std::string& workload_id,
                                  const RuntimeMetrics& metrics) {
  const Vector v = metrics.ToVector();
  MutexLock lock(mu_);
  std::vector<Vector>& rows = metrics_[workload_id];
  if (!rows.empty() && rows.front().size() != v.size()) {
    return Status::InvalidArgument("metrics dimension mismatch for " +
                                   workload_id);
  }
  rows.push_back(v);
  return Status::Ok();
}

StatusOr<std::shared_ptr<const ObjectiveModel>> ModelServer::TrainFreshLocked(
    const DataSet& data) {
  Matrix x = Matrix::FromRows(data.x);
  if (config_.kind == ModelKind::kGp) {
    StatusOr<std::shared_ptr<GpModel>> gp =
        GpModel::Fit(x, data.y, config_.gp);
    if (!gp.ok()) return gp.status();
    return std::shared_ptr<const ObjectiveModel>(*gp);
  }
  StatusOr<std::shared_ptr<MlpModel>> dnn =
      MlpModel::Fit(x, data.y, config_.dnn, &rng_);
  if (!dnn.ok()) return dnn.status();
  return std::shared_ptr<const ObjectiveModel>(*dnn);
}

StatusOr<std::shared_ptr<const ObjectiveModel>> ModelServer::GetModel(
    const std::string& workload_id, const std::string& objective) {
  // Fault-injection site for degradation testing: an armed failure surfaces
  // exactly like a real model-resolution error (the serving layer's
  // stale-cache shed path keys off it), an armed delay simulates a slow
  // model store. Checked outside the lock so injected latency never
  // serializes unrelated lookups.
  if (Status fault = UDAO_FAULT_SITE("model_server.get_model"); !fault.ok()) {
    return fault;
  }
  MutexLock lock(mu_);
  auto it = entries_.find({workload_id, objective});
  if (it == entries_.end() || it->second.data.x.empty()) {
    return Status::NotFound("no traces for workload " + workload_id +
                            " objective " + objective);
  }
  Entry& entry = it->second;
  UDAO_METRIC_COUNTER_ADD("udao.model.get_model", 1);
  if (entry.model == nullptr || entry.pending >= config_.retrain_threshold) {
    // First model, or a large trace update: full retrain.
    UDAO_TRACE_SPAN("model.train_full");
    UDAO_METRIC_COUNTER_ADD("udao.model.train_full", 1);
    UDAO_METRIC_OBSERVE("udao.model.train_traces",
                        static_cast<double>(entry.data.x.size()));
    StatusOr<std::shared_ptr<const ObjectiveModel>> model =
        TrainFreshLocked(entry.data);
    if (!model.ok()) return model.status();
    entry.model = *model;
    entry.pending = 0;
    BumpGeneration(workload_id);
  } else if (entry.pending >= config_.finetune_threshold) {
    UDAO_TRACE_SPAN("model.finetune");
    UDAO_METRIC_COUNTER_ADD("udao.model.finetune", 1);
    if (config_.kind == ModelKind::kDnn) {
      // Small update: fine-tune from the latest checkpoint. Handles already
      // returned by GetModel are immutable snapshots, so training happens on
      // a deep copy that is swapped in once it is ready.
      const auto* dnn = dynamic_cast<const MlpModel*>(entry.model.get());
      UDAO_CHECK(dnn != nullptr);
      std::shared_ptr<MlpModel> tuned = dnn->Clone();
      Matrix x = Matrix::FromRows(entry.data.x);
      tuned->FineTune(x, entry.data.y, config_.finetune_epochs, &rng_);
      entry.model = std::move(tuned);
    } else {
      // GPs have no incremental path; refit on all data.
      StatusOr<std::shared_ptr<const ObjectiveModel>> model =
          TrainFreshLocked(entry.data);
      if (!model.ok()) return model.status();
      entry.model = *model;
    }
    entry.pending = 0;
    BumpGeneration(workload_id);
  } else {
    // Served straight from the trained snapshot: the cache-hit path that
    // keeps GetModel off the few-seconds MOO budget.
    UDAO_METRIC_COUNTER_ADD("udao.model.cache_hits", 1);
  }
  return entry.model;
}

bool ModelServer::HasTraces(const std::string& workload_id,
                            const std::string& objective) const {
  MutexLock lock(mu_);
  auto it = entries_.find({workload_id, objective});
  return it != entries_.end() && !it->second.data.x.empty();
}

StatusOr<ModelServer::DataSet> ModelServer::GetData(
    const std::string& workload_id, const std::string& objective) const {
  MutexLock lock(mu_);
  auto it = entries_.find({workload_id, objective});
  if (it == entries_.end()) {
    return Status::NotFound("no traces for workload " + workload_id);
  }
  return it->second.data;
}

StatusOr<Vector> ModelServer::MeanMetrics(
    const std::string& workload_id) const {
  MutexLock lock(mu_);
  auto it = metrics_.find(workload_id);
  if (it == metrics_.end() || it->second.empty()) {
    return Status::NotFound("no metrics for workload " + workload_id);
  }
  Vector mean(it->second.front().size(), 0.0);
  for (const Vector& v : it->second) {
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += v[i];
  }
  for (double& m : mean) m /= static_cast<double>(it->second.size());
  return mean;
}

std::vector<std::string> ModelServer::WorkloadsWithMetrics() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [id, unused] : metrics_) out.push_back(id);
  return out;
}

int ModelServer::NumTraces(const std::string& workload_id,
                           const std::string& objective) const {
  MutexLock lock(mu_);
  auto it = entries_.find({workload_id, objective});
  if (it == entries_.end()) return 0;
  return static_cast<int>(it->second.data.x.size());
}

ModelServer::GenerationShard& ModelServer::GenerationShardFor(
    const std::string& workload_id) const {
  const size_t h = std::hash<std::string>{}(workload_id);
  return generation_shards_[h % kGenerationShards];
}

void ModelServer::BumpGeneration(const std::string& workload_id) {
  GenerationShard& shard = GenerationShardFor(workload_id);
  MutexLock lock(shard.mu);
  ++shard.generations[workload_id];
}

uint64_t ModelServer::Generation(const std::string& workload_id) const {
  GenerationShard& shard = GenerationShardFor(workload_id);
  MutexLock lock(shard.mu);
  auto it = shard.generations.find(workload_id);
  return it == shard.generations.end() ? 0 : it->second;
}

}  // namespace udao
