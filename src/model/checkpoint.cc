#include "model/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace udao {

namespace {

namespace fs = std::filesystem;

// Workload/objective names become file names; keep them path-safe.
std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Status SaveMlpModel(const MlpModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  model.SerializeTo(out);
  if (!out) return Status::InvalidArgument("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::shared_ptr<MlpModel>> LoadMlpModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return MlpModel::Deserialize(in);
}

Status SaveGpModel(const GpModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  model.SerializeTo(out);
  if (!out) return Status::InvalidArgument("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::shared_ptr<GpModel>> LoadGpModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return GpModel::Deserialize(in);
}

Status SaveModelServerData(const ModelServer& server,
                           const std::vector<std::string>& workload_ids,
                           const std::vector<std::string>& objective_names,
                           const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::InvalidArgument("cannot create " + directory);
  for (const std::string& workload : workload_ids) {
    for (const std::string& objective : objective_names) {
      StatusOr<ModelServer::DataSet> data =
          server.GetData(workload, objective);
      if (!data.ok()) continue;  // pair never observed: nothing to persist
      const fs::path path = fs::path(directory) / (Sanitize(workload) +
                                                   "__" +
                                                   Sanitize(objective) +
                                                   ".traces");
      std::ofstream out(path);
      if (!out) return Status::InvalidArgument("cannot open " + path.string());
      out << "udao-traces-v1\n";
      out << workload << '\n' << objective << '\n';
      out << data->x.size() << ' '
          << (data->x.empty() ? 0 : data->x.front().size()) << '\n';
      out.precision(17);
      for (size_t i = 0; i < data->x.size(); ++i) {
        for (double v : data->x[i]) out << v << ' ';
        out << data->y[i] << '\n';
      }
      if (!out) return Status::InvalidArgument("write failed");
    }
  }
  return Status::Ok();
}

Status LoadModelServerData(const std::string& directory, ModelServer* server) {
  UDAO_CHECK(server != nullptr);
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound("no such directory: " + directory);
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (entry.path().extension() != ".traces") continue;
    std::ifstream in(entry.path());
    std::string magic;
    in >> magic;
    if (magic != "udao-traces-v1") {
      return Status::InvalidArgument("not a trace file: " +
                                     entry.path().string());
    }
    std::string workload;
    std::string objective;
    in >> workload >> objective;
    size_t rows = 0;
    size_t cols = 0;
    in >> rows >> cols;
    if (!in || cols == 0 || cols > 4096 || rows > (1u << 22)) {
      return Status::InvalidArgument("corrupt trace file: " +
                                     entry.path().string());
    }
    for (size_t r = 0; r < rows; ++r) {
      Vector x(cols);
      for (double& v : x) in >> v;
      double y = 0.0;
      in >> y;
      if (!in) {
        return Status::InvalidArgument("truncated trace file: " +
                                       entry.path().string());
      }
      if (Status s = server->Ingest(workload, objective, x, y); !s.ok()) {
        // A dimension clash between the file and already-resident traces is
        // corrupt input, not a programming error.
        return Status::InvalidArgument("rejected trace in " +
                                       entry.path().string() + ": " +
                                       s.ToString());
      }
    }
  }
  return Status::Ok();
}

}  // namespace udao
