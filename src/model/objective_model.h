#ifndef UDAO_MODEL_OBJECTIVE_MODEL_H_
#define UDAO_MODEL_OBJECTIVE_MODEL_H_

#include <functional>
#include <memory>
#include <string>

#include "common/matrix.h"

namespace udao {

/// A predictive model Psi_i(x) of one task objective as a function of the
/// *encoded* configuration x in [0,1]^D (ParamSpace::Encode output).
///
/// This is the contract between the model server and the MOO layer
/// (Section II-B): MOO works with any model exposing a (sub)gradient and an
/// uncertainty estimate -- hand-crafted regression functions, Gaussian
/// Processes, or DNNs.
class ObjectiveModel {
 public:
  virtual ~ObjectiveModel() = default;

  /// Predicted objective value at encoded configuration x.
  virtual double Predict(const Vector& x) const = 0;

  /// Predictive mean and standard deviation. Models without a native
  /// uncertainty notion report stddev 0.
  virtual void PredictWithUncertainty(const Vector& x, double* mean,
                                      double* stddev) const {
    *mean = Predict(x);
    *stddev = 0.0;
  }

  /// Subgradient of Predict with respect to x. Every model used by MOGD must
  /// be subdifferentiable (Section IV-B).
  virtual Vector InputGradient(const Vector& x) const = 0;

  /// Batched evaluation surface. Each row of `x` is one encoded point; the
  /// defaults fall back to a scalar loop, so every model supports batching
  /// and fast models (GEMM MLP forward, batched GP kernels, vectorized
  /// closed forms) override with a single tensor-style pass. MOGD and PF-AP
  /// issue thousands of predictions per run through these entry points.
  virtual void PredictBatch(const Matrix& x, Vector* out) const;

  /// Gradients for every row of `x`: row i of `grads` is InputGradient of
  /// x.Row(i). When `values` is non-null it also receives the predictions,
  /// letting implementations share one forward pass between value and
  /// gradient -- the MOGD hot path evaluates both at every Adam step.
  virtual void GradientBatch(const Matrix& x, Matrix* grads,
                             Vector* values = nullptr) const;

  /// Batched mean/stddev; same contract as PredictWithUncertainty per row.
  virtual void PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                           Vector* stddev) const;

  /// Input dimensionality (encoded).
  virtual int input_dim() const = 0;

  /// Short description for logs ("gp", "dnn", "analytic-latency", ...).
  virtual std::string Name() const = 0;

  /// Identity for cross-request solve fusion: two models with the same
  /// FuseIdentity are guaranteed to produce bitwise-identical predictions
  /// and gradients for identical inputs, so the solve coalescer may
  /// evaluate both callers' points through either one. The default -- the
  /// instance itself -- is always safe (it merely forgoes fusion).
  /// Stateless pass-through wrappers forward to the wrapped model, which is
  /// what lets per-request NonNegativeModel shells around one shared
  /// server-side model coalesce. A retrained model is a new instance, so
  /// generation changes split fuse groups automatically.
  virtual const void* FuseIdentity() const { return this; }
};

/// A model defined by arbitrary callables; the adapter used in tests and for
/// the hand-crafted regression models' lambdas.
class CallableModel : public ObjectiveModel {
 public:
  using Fn = std::function<double(const Vector&)>;
  using GradFn = std::function<Vector(const Vector&)>;
  using BatchFn = std::function<void(const Matrix&, Vector*)>;
  using BatchGradFn = std::function<void(const Matrix&, Matrix*, Vector*)>;

  /// Builds from a value function and an explicit gradient.
  CallableModel(std::string name, int dim, Fn fn, GradFn grad)
      : name_(std::move(name)), dim_(dim), fn_(std::move(fn)),
        grad_(std::move(grad)) {}

  /// Builds from a value function only; the gradient falls back to central
  /// finite differences (adequate for baselines that do not descend).
  CallableModel(std::string name, int dim, Fn fn);

  /// Installs vectorized closed forms used by PredictBatch/GradientBatch
  /// instead of the scalar loop (the analytic models provide these).
  /// Returns *this for chained setup at construction sites.
  CallableModel& WithBatch(BatchFn batch_fn, BatchGradFn batch_grad = nullptr);

  double Predict(const Vector& x) const override { return fn_(x); }
  Vector InputGradient(const Vector& x) const override { return grad_(x); }
  void PredictBatch(const Matrix& x, Vector* out) const override;
  void GradientBatch(const Matrix& x, Matrix* grads,
                     Vector* values = nullptr) const override;
  int input_dim() const override { return dim_; }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  int dim_;
  Fn fn_;
  GradFn grad_;
  BatchFn batch_fn_;
  BatchGradFn batch_grad_;
};

/// Wraps a base model with the paper's uncertainty adjustment:
///   F~(x) = E[F(x)] + alpha * std[F(x)]
/// which MOGD minimizes instead of the raw mean when models are inaccurate
/// (Section IV-B.3). The gradient of the std term is approximated by finite
/// differences of the stddev field, which is smooth for GPs.
class UncertaintyAdjustedModel : public ObjectiveModel {
 public:
  UncertaintyAdjustedModel(std::shared_ptr<const ObjectiveModel> base,
                           double alpha)
      : base_(std::move(base)), alpha_(alpha) {}

  double Predict(const Vector& x) const override;
  void PredictWithUncertainty(const Vector& x, double* mean,
                              double* stddev) const override;
  Vector InputGradient(const Vector& x) const override;
  void PredictBatch(const Matrix& x, Vector* out) const override;
  void PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                   Vector* stddev) const override;
  int input_dim() const override { return base_->input_dim(); }
  std::string Name() const override { return base_->Name() + "+ucb"; }

 private:
  std::shared_ptr<const ObjectiveModel> base_;
  double alpha_;
};

/// Wraps a learned model of a physically non-negative quantity (latency,
/// throughput, monetary cost): predictions are floored at zero so the
/// optimizer cannot chase fictitious negative extrapolations, and spurious
/// orderings among such garbage predictions collapse (all floored points tie
/// and get resolved by the other objectives). The gradient passes through
/// unfloored as a pseudo-gradient, which keeps constraint terms able to push
/// the solution back into the trained region.
class NonNegativeModel : public ObjectiveModel {
 public:
  explicit NonNegativeModel(std::shared_ptr<const ObjectiveModel> base)
      : base_(std::move(base)) {}

  double Predict(const Vector& x) const override;
  void PredictWithUncertainty(const Vector& x, double* mean,
                              double* stddev) const override;
  Vector InputGradient(const Vector& x) const override;
  void PredictBatch(const Matrix& x, Vector* out) const override;
  void GradientBatch(const Matrix& x, Matrix* grads,
                     Vector* values = nullptr) const override;
  void PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                   Vector* stddev) const override;
  int input_dim() const override { return base_->input_dim(); }
  std::string Name() const override { return base_->Name() + "+floor"; }
  /// The floor is stateless and deterministic, so two shells around one
  /// model are interchangeable for fusion purposes.
  const void* FuseIdentity() const override { return base_->FuseIdentity(); }

 private:
  std::shared_ptr<const ObjectiveModel> base_;
};

/// Central finite-difference gradient of an arbitrary model; shared helper.
Vector FiniteDifferenceGradient(const ObjectiveModel& model, const Vector& x,
                                double h = 1e-5);

}  // namespace udao

#endif  // UDAO_MODEL_OBJECTIVE_MODEL_H_
