#include "model/mlp_model.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "common/stats.h"

namespace udao {

namespace {

// Deterministic seed from the query point so MC-dropout estimates are
// reproducible and safe under concurrent callers.
uint64_t SeedFromPoint(const Vector& x) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (double v : x) {
    uint64_t bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

double MlpModel::ToTarget(double y) const {
  if (!config_.log_transform_targets) return y;
  return std::log(std::max(1e-9, y));
}

double MlpModel::FromTarget(double t) const {
  if (!config_.log_transform_targets) return t;
  return std::exp(t);
}

StatusOr<std::shared_ptr<MlpModel>> MlpModel::Fit(const Matrix& x,
                                                  const Vector& y,
                                                  const MlpModelConfig& config,
                                                  Rng* rng) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("MLP fit requires non-empty inputs");
  }
  if (x.rows() != static_cast<int>(y.size())) {
    return Status::InvalidArgument("MLP fit: |x| != |y|");
  }
  MlpConfig net_config;
  net_config.layer_sizes.push_back(x.cols());
  for (int h : config.hidden) net_config.layer_sizes.push_back(h);
  net_config.layer_sizes.push_back(1);
  net_config.activation = config.activation;
  net_config.l2 = config.l2;
  net_config.dropout = config.dropout;
  auto mlp = std::make_unique<Mlp>(net_config, rng);

  Vector t(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    t[i] = config.log_transform_targets ? std::log(std::max(1e-9, y[i]))
                                        : y[i];
  }
  const double y_mean = Mean(t);
  const double y_std = std::max(1e-9, StdDev(t));
  Vector z(t.size());
  for (size_t i = 0; i < t.size(); ++i) z[i] = (t[i] - y_mean) / y_std;
  TrainMlp(mlp.get(), x, z, config.train, rng);
  return std::shared_ptr<MlpModel>(
      new MlpModel(config, std::move(mlp), y_mean, y_std));
}

TrainResult MlpModel::FineTune(const Matrix& x, const Vector& y, int epochs,
                               Rng* rng) {
  UDAO_CHECK_EQ(x.rows(), static_cast<int>(y.size()));
  Vector z(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    z[i] = (ToTarget(y[i]) - y_mean_) / y_std_;
  }
  TrainConfig ft = config_.train;
  ft.epochs = epochs;
  ft.learning_rate = config_.train.learning_rate * 0.1;
  return TrainMlp(mlp_.get(), x, z, ft, rng);
}

std::shared_ptr<MlpModel> MlpModel::Clone() const {
  return std::shared_ptr<MlpModel>(
      new MlpModel(config_, std::make_unique<Mlp>(*mlp_), y_mean_, y_std_));
}

double MlpModel::Predict(const Vector& x) const {
  return FromTarget(mlp_->Predict(x) * y_std_ + y_mean_);
}

void MlpModel::PredictWithUncertainty(const Vector& x, double* mean,
                                      double* stddev) const {
  if (config_.dropout <= 0.0 || config_.mc_samples < 2) {
    *mean = Predict(x);
    *stddev = 0.0;
    return;
  }
  Rng rng(SeedFromPoint(x));
  double zm = 0.0;
  double zs = 0.0;
  mlp_->PredictWithUncertainty(x, config_.mc_samples, &rng, &zm, &zs);
  const double t_mean = zm * y_std_ + y_mean_;
  const double t_std = zs * y_std_;
  if (config_.log_transform_targets) {
    // Delta method around the log-space mean.
    *mean = std::exp(t_mean);
    *stddev = *mean * t_std;
  } else {
    *mean = t_mean;
    *stddev = t_std;
  }
}

Vector MlpModel::InputGradient(const Vector& x) const {
  Vector grad = mlp_->InputGradient(x);
  double scale = y_std_;
  if (config_.log_transform_targets) {
    // d exp(t(x)) / dx = exp(t(x)) * dt/dx.
    scale *= FromTarget(mlp_->Predict(x) * y_std_ + y_mean_);
  }
  for (double& g : grad) g *= scale;
  return grad;
}

void MlpModel::PredictBatch(const Matrix& x, Vector* out) const {
  // Batched entry points are the GEMM fast path MOGD's lockstep descent
  // lives on; the batch-size histogram is how bench reports show whether
  // batching is actually engaged (avg batch >> 1) or degenerated to scalar.
  // batch_calls is not a separate counter -- it is the histogram's count,
  // and these sites run hot enough that every registry op shows up in the
  // bench_mogd_solver overhead budget.
  UDAO_METRIC_COUNTER_ADD("udao.model.mlp.batch_evals", x.rows());
  UDAO_METRIC_OBSERVE("udao.model.mlp.batch_size",
                      static_cast<double>(x.rows()));
  mlp_->PredictBatch(x, out);
  for (double& v : *out) v = FromTarget(v * y_std_ + y_mean_);
}

void MlpModel::PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                           Vector* stddev) const {
  if (config_.dropout <= 0.0 || config_.mc_samples < 2) {
    PredictBatch(x, mean);
    stddev->assign(x.rows(), 0.0);
    return;
  }
  std::vector<Rng> rngs;
  rngs.reserve(x.rows());
  for (int r = 0; r < x.rows(); ++r) {
    rngs.emplace_back(SeedFromPoint(x.Row(r)));
  }
  UDAO_METRIC_COUNTER_ADD("udao.model.mlp.batch_evals", x.rows());
  UDAO_METRIC_OBSERVE("udao.model.mlp.batch_size",
                      static_cast<double>(x.rows()));
  Vector zm;
  Vector zs;
  mlp_->PredictWithUncertaintyBatch(x, config_.mc_samples, &rngs, &zm, &zs);
  mean->resize(x.rows());
  stddev->resize(x.rows());
  for (int r = 0; r < x.rows(); ++r) {
    const double t_mean = zm[r] * y_std_ + y_mean_;
    const double t_std = zs[r] * y_std_;
    if (config_.log_transform_targets) {
      // Delta method around the log-space mean.
      (*mean)[r] = std::exp(t_mean);
      (*stddev)[r] = (*mean)[r] * t_std;
    } else {
      (*mean)[r] = t_mean;
      (*stddev)[r] = t_std;
    }
  }
}

void MlpModel::GradientBatch(const Matrix& x, Matrix* grads,
                             Vector* values) const {
  UDAO_METRIC_COUNTER_ADD("udao.model.mlp.batch_evals", x.rows());
  UDAO_METRIC_OBSERVE("udao.model.mlp.batch_size",
                      static_cast<double>(x.rows()));
  // Raw-prediction scratch persists across solver iterations; the gradient
  // matrix itself is Resize()d in place by InputGradientBatch, so the steady
  // state of the MOGD loop allocates nothing here.
  thread_local Vector raw;
  mlp_->InputGradientBatch(x, grads, &raw);
  for (int i = 0; i < grads->rows(); ++i) {
    double scale = y_std_;
    if (config_.log_transform_targets) {
      scale *= FromTarget(raw[i] * y_std_ + y_mean_);
    }
    double* row = grads->RowPtr(i);
    for (int d = 0; d < grads->cols(); ++d) row[d] *= scale;
  }
  if (values != nullptr) {
    values->resize(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      (*values)[i] = FromTarget(raw[i] * y_std_ + y_mean_);
    }
  }
}

void MlpModel::SerializeTo(std::ostream& out) const {
  out << "udao-mlp-v1\n";
  const auto& sizes = mlp_->config().layer_sizes;
  out << sizes.size();
  for (int s : sizes) out << ' ' << s;
  out << '\n';
  out << static_cast<int>(config_.activation) << ' ' << config_.l2 << ' '
      << config_.dropout << ' ' << config_.mc_samples << ' '
      << (config_.log_transform_targets ? 1 : 0) << '\n';
  out.precision(17);
  out << y_mean_ << ' ' << y_std_ << '\n';
  const Vector snapshot = mlp_->Snapshot();
  out << snapshot.size() << '\n';
  for (double w : snapshot) out << w << ' ';
  out << '\n';
}

StatusOr<std::shared_ptr<MlpModel>> MlpModel::Deserialize(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != "udao-mlp-v1") {
    return Status::InvalidArgument("not an MLP checkpoint");
  }
  size_t num_sizes = 0;
  in >> num_sizes;
  if (!in || num_sizes < 2 || num_sizes > 64) {
    return Status::InvalidArgument("corrupt MLP checkpoint header");
  }
  MlpConfig net;
  net.layer_sizes.resize(num_sizes);
  for (size_t i = 0; i < num_sizes; ++i) in >> net.layer_sizes[i];
  MlpModelConfig cfg;
  int activation = 0;
  int log_flag = 0;
  in >> activation >> cfg.l2 >> cfg.dropout >> cfg.mc_samples >> log_flag;
  cfg.activation = static_cast<Activation>(activation);
  cfg.log_transform_targets = log_flag != 0;
  cfg.hidden.assign(net.layer_sizes.begin() + 1, net.layer_sizes.end() - 1);
  net.activation = cfg.activation;
  net.l2 = cfg.l2;
  net.dropout = cfg.dropout;
  double y_mean = 0.0;
  double y_std = 1.0;
  in >> y_mean >> y_std;
  size_t num_weights = 0;
  in >> num_weights;
  if (!in || num_weights > (1u << 26)) {
    return Status::InvalidArgument("corrupt MLP checkpoint body");
  }
  Vector snapshot(num_weights);
  for (double& w : snapshot) in >> w;
  if (!in) return Status::InvalidArgument("truncated MLP checkpoint");
  Rng rng(0);
  auto mlp = std::make_unique<Mlp>(net, &rng);
  if (mlp->Snapshot().size() != snapshot.size()) {
    return Status::InvalidArgument("MLP checkpoint weight count mismatch");
  }
  mlp->Restore(snapshot);
  return std::shared_ptr<MlpModel>(
      new MlpModel(cfg, std::move(mlp), y_mean, y_std));
}

}  // namespace udao
