#ifndef UDAO_MODEL_CHECKPOINT_H_
#define UDAO_MODEL_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "model/gp_model.h"
#include "model/mlp_model.h"
#include "model/model_server.h"

namespace udao {

/// Model checkpointing (Section V: the model server "checkpoints the best
/// model weights" as training data accumulates over months). Checkpoints use
/// a small self-describing text format: a header line with a magic tag and
/// shape information, followed by whitespace-separated doubles, so files are
/// portable and diffable.

/// Writes the MLP's architecture and weights to `path`.
Status SaveMlpModel(const MlpModel& model, const std::string& path);

/// Reads an MLP checkpoint written by SaveMlpModel.
StatusOr<std::shared_ptr<MlpModel>> LoadMlpModel(const std::string& path);

/// Writes the GP's training set and fitted hyperparameters to `path`.
Status SaveGpModel(const GpModel& model, const std::string& path);

/// Reads a GP checkpoint; the kernel factorization is rebuilt on load.
StatusOr<std::shared_ptr<GpModel>> LoadGpModel(const std::string& path);

/// Persists every training dataset held by the model server under
/// `directory` (one file per workload/objective pair named
/// `<workload>__<objective>.traces`). Models retrain from these on demand.
Status SaveModelServerData(const ModelServer& server,
                           const std::vector<std::string>& workload_ids,
                           const std::vector<std::string>& objective_names,
                           const std::string& directory);

/// Reloads datasets written by SaveModelServerData into `server`.
Status LoadModelServerData(const std::string& directory, ModelServer* server);

}  // namespace udao

#endif  // UDAO_MODEL_CHECKPOINT_H_
