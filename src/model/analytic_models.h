#ifndef UDAO_MODEL_ANALYTIC_MODELS_H_
#define UDAO_MODEL_ANALYTIC_MODELS_H_

#include <memory>

#include "model/objective_model.h"
#include "spark/conf.h"

namespace udao {

/// Hand-crafted (Ernest-style) regression models of Spark objectives
/// (modeling option 1 in Section II-B "Remarks on modeling choices"). They
/// are smooth closed forms over the *encoded* configuration: integer knobs
/// are treated as relaxed continuous values, so the models are differentiable
/// everywhere MOGD needs them (gradients via central differences, which are
/// exact up to O(h^2) for these smooth forms).
///
/// Workload-specific coefficients:
struct AnalyticWorkload {
  /// Total compute work (row-op equivalents / 1e9).
  double work = 5.0;
  /// Bytes shuffled (GB).
  double shuffle_gb = 3.0;
  /// Fraction of work that is embarrassingly parallel (Amdahl).
  double parallel_fraction = 0.97;
  /// Memory demand of the widest stage (GB, pre-partitioning).
  double state_gb = 6.0;
};

/// Latency model over BatchParamSpace(): serial + parallel/cores terms,
/// shuffle transfer, memory-pressure spill penalty (softplus), and
/// per-partition overhead. Seconds.
std::shared_ptr<ObjectiveModel> MakeAnalyticBatchLatencyModel(
    const AnalyticWorkload& workload);

/// Cost in allocated cores over BatchParamSpace() (objective 6). This
/// objective is *certain* (a known function of the knobs, as the paper notes
/// in Expt 4), so it is always served analytically rather than learned.
std::shared_ptr<ObjectiveModel> MakeCostCoresModel();

/// Cost in allocated cores over StreamParamSpace().
std::shared_ptr<ObjectiveModel> MakeStreamCostCoresModel();

/// Cost in CPU-hours: latency(x) * cores(x) / 3600 (objective 7).
std::shared_ptr<ObjectiveModel> MakeCpuHourModel(
    std::shared_ptr<ObjectiveModel> latency_model);

/// The paper's running example (Fig. 3(f)): two relaxed inputs x1 (#exec),
/// x2 (#cores/exec) on [0,1]^2 mapped to [1,12]x[1,2], with
///   latency = max(100, 2400 / min(24, x1*x2))   (softened for gradients)
///   cost    = min(24, x1*x2)
std::shared_ptr<ObjectiveModel> MakeFig3LatencyModel();
std::shared_ptr<ObjectiveModel> MakeFig3CostModel();

}  // namespace udao

#endif  // UDAO_MODEL_ANALYTIC_MODELS_H_
