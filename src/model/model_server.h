#ifndef UDAO_MODEL_MODEL_SERVER_H_
#define UDAO_MODEL_MODEL_SERVER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"
#include "model/gp_model.h"
#include "model/mlp_model.h"
#include "model/objective_model.h"
#include "spark/metrics.h"

namespace udao {

/// Which learned-model family the server trains for its objectives.
enum class ModelKind { kGp, kDnn };

/// Model-server policy knobs.
struct ModelServerConfig {
  ModelKind kind = ModelKind::kDnn;
  /// All served objectives (latency, throughput, costs) are positive-valued,
  /// so models train in log space by default (see log_transform_targets).
  GpConfig gp = [] {
    GpConfig cfg;
    cfg.log_transform_targets = true;
    return cfg;
  }();
  MlpModelConfig dnn = [] {
    MlpModelConfig cfg;
    cfg.log_transform_targets = true;
    return cfg;
  }();
  /// A "large trace update": at least this many new traces triggers a full
  /// retrain (the paper retrains with hyper-parameter tuning on ~5000 new
  /// traces; scaled to simulator data volumes).
  int retrain_threshold = 48;
  /// A "small trace update": at least this many new traces triggers
  /// incremental fine-tuning from the latest checkpoint (DNN only).
  int finetune_threshold = 8;
  int finetune_epochs = 40;
  uint64_t seed = 7;
};

/// Offline model server (Section II-B / V). Collects runtime traces
/// asynchronously from the optimizer's hot path, trains one predictive model
/// per (workload, objective), and serves the most recent model to the MOO
/// module on demand.
///
/// Training is lazy: traces accumulate via Ingest(); the first GetModel()
/// call after enough new data applies the paper's retrain/fine-tune policy.
/// This mirrors the architecture's key property -- modeling never blocks the
/// few-seconds MOO path, which always uses the latest *available* model.
///
/// Thread safety: all methods may be called concurrently (several optimizer
/// instances share one server). A single mutex serializes trace ingestion
/// and the lazy (re)train inside GetModel; the returned model handle is an
/// immutable snapshot, so callers use it lock-free after retrieval.
class ModelServer {
 public:
  /// A training dataset for one (workload, objective) pair: encoded
  /// configurations against observed objective values.
  struct DataSet {
    std::vector<Vector> x;
    Vector y;
  };

  explicit ModelServer(ModelServerConfig config = ModelServerConfig());

  /// Records one observation: the encoded configuration and the value of one
  /// objective for `workload_id`. InvalidArgument when the configuration is
  /// empty, its dimension disagrees with earlier traces of the pair, or the
  /// value is non-finite -- ingestion is a public service boundary, so bad
  /// telemetry is a recoverable Status for the caller, not a process abort.
  /// Rejected traces change nothing (no generation bump).
  Status Ingest(const std::string& workload_id, const std::string& objective,
                const Vector& encoded_conf, double value);

  /// Records the runtime metric vector of one run (used for OtterTune-style
  /// workload mapping). InvalidArgument when the vector's dimension
  /// disagrees with earlier metrics of the workload.
  Status IngestMetrics(const std::string& workload_id,
                       const RuntimeMetrics& metrics);

  /// Returns the current model, training or updating it first if the policy
  /// calls for it. NotFound if no traces exist for the pair.
  StatusOr<std::shared_ptr<const ObjectiveModel>> GetModel(
      const std::string& workload_id, const std::string& objective);

  /// True once at least one trace exists for the pair.
  bool HasTraces(const std::string& workload_id,
                 const std::string& objective) const;

  /// Training data for the pair (for workload mapping / baselines), returned
  /// as a snapshot copy so it stays coherent however many Ingest() calls race
  /// with the caller's use of it.
  StatusOr<DataSet> GetData(const std::string& workload_id,
                            const std::string& objective) const;

  /// Mean metric vector over all ingested runs of a workload.
  StatusOr<Vector> MeanMetrics(const std::string& workload_id) const;

  /// All workload ids with metric observations.
  std::vector<std::string> WorkloadsWithMetrics() const;

  /// Number of traces ingested for the pair (0 if none).
  int NumTraces(const std::string& workload_id,
                const std::string& objective) const;

  /// Monotone per-workload data/model generation: bumped by every Ingest()
  /// for the workload and again whenever GetModel retrains or fine-tunes one
  /// of its models. Serving-layer caches tag entries with the generation they
  /// were computed under and compare against this to detect staleness in one
  /// cheap map lookup -- no model access, no training. Starts at 0 for
  /// workloads never seen.
  ///
  /// Reads take only the workload's generation shard lock, NEVER mu_: the
  /// serving warm path probes this per request, and making it wait behind a
  /// training run (which holds mu_ for seconds) would turn every cache hit
  /// into a cold-path stall. Different workloads hash to different shards,
  /// so tenants do not contend on each other's staleness probes either.
  uint64_t Generation(const std::string& workload_id) const;

  const ModelServerConfig& config() const { return config_; }

 private:
  struct Entry {
    DataSet data;
    std::shared_ptr<const ObjectiveModel> model;
    /// Traces ingested since the model was last (re)trained.
    int pending = 0;
  };

  /// Trains a model on `data` with this server's config. Requires mu_: it
  /// draws from rng_, and the deterministic-training story (same ingest
  /// order -> same model bits) depends on those draws being serialized with
  /// the ingest/retrain sequence.
  StatusOr<std::shared_ptr<const ObjectiveModel>> TrainFreshLocked(
      const DataSet& data) UDAO_REQUIRES(mu_);

  /// Generation counters live outside mu_ in a small sharded map (see
  /// Generation()). Bumps happen inside mu_ critical sections AFTER the data
  /// mutation, with lock order mu_ -> shard everywhere, so a concurrent
  /// reader can observe a generation slightly older than the data but never
  /// newer -- the conservative direction: a too-old tag makes a serving
  /// cache revalidate once more, a too-new one would let it serve stale.
  static constexpr int kGenerationShards = 16;
  struct GenerationShard {
    mutable Mutex mu;
    std::map<std::string, uint64_t> generations UDAO_GUARDED_BY(mu);
  };
  GenerationShard& GenerationShardFor(const std::string& workload_id) const;
  void BumpGeneration(const std::string& workload_id);

  ModelServerConfig config_;
  /// Guards rng_, entries_, and metrics_ (every member below config_ except
  /// generation_shards_, which carries per-shard locks).
  mutable Mutex mu_;
  Rng rng_ UDAO_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, Entry> entries_
      UDAO_GUARDED_BY(mu_);
  std::map<std::string, std::vector<Vector>> metrics_ UDAO_GUARDED_BY(mu_);
  mutable std::array<GenerationShard, kGenerationShards> generation_shards_;
};

}  // namespace udao

#endif  // UDAO_MODEL_MODEL_SERVER_H_
