#ifndef UDAO_MODEL_ENCODER_H_
#define UDAO_MODEL_ENCODER_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "model/feature.h"
#include "model/mlp_model.h"
#include "nn/mlp.h"

namespace udao {

/// Autoencoder settings for workload encodings.
struct EncoderConfig {
  /// Width of the bottleneck (the workload encoding).
  int encoding_dim = 4;
  /// Hidden width on each side of the bottleneck.
  int hidden = 32;
  TrainConfig train = [] {
    TrainConfig cfg;
    cfg.epochs = 400;
    return cfg;
  }();
  double l2 = 1e-5;
};

/// Workload encoder (the paper's reference [38]: "our custom DNN models can
/// further extract workload encodings for blackbox programs using advanced
/// autoencoders to improve prediction").
///
/// An autoencoder metric -> encoding -> metric is trained on standardized
/// runtime-metric vectors; the bottleneck activation is the workload's
/// encoding. Workloads with similar observed behaviour land near each other
/// in encoding space, which is what lets a single *global* model generalize
/// across workloads (see GlobalPredictor).
class WorkloadEncoder {
 public:
  /// Trains the autoencoder on rows of `metrics` (one row per observed run).
  static StatusOr<std::shared_ptr<WorkloadEncoder>> Fit(
      const Matrix& metrics, const EncoderConfig& config, Rng* rng);

  /// Encoding of one metric vector.
  Vector Encode(const Vector& metrics) const;

  /// Round trip through the bottleneck, in original metric units.
  Vector Reconstruct(const Vector& metrics) const;

  /// Mean squared reconstruction error over rows of `metrics`
  /// (standardized space); small values mean the encoding preserved the
  /// workload's behavioural signature.
  double ReconstructionError(const Matrix& metrics) const;

  int encoding_dim() const { return config_.encoding_dim; }
  int metric_dim() const { return static_cast<int>(scaler_.mean().size()); }

 private:
  WorkloadEncoder(EncoderConfig config, StandardScaler scaler,
                  std::unique_ptr<Mlp> net)
      : config_(config), scaler_(std::move(scaler)), net_(std::move(net)) {}

  EncoderConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<Mlp> net_;  // metric_dim -> hidden -> enc -> hidden -> dim
};

/// A single cross-workload objective model: predicts an objective from the
/// concatenation [workload encoding, encoded configuration]. Once trained on
/// traces of many workloads, it gives *cold-start* predictions for a new
/// workload after a single default-configuration run (enough to compute its
/// metric vector), before any workload-specific model exists.
class GlobalPredictor {
 public:
  /// One training observation: the run's metric vector (for encoding), the
  /// encoded configuration, and the objective value.
  struct Observation {
    Vector metrics;
    Vector conf_encoded;
    double value = 0;
  };

  static StatusOr<std::shared_ptr<GlobalPredictor>> Fit(
      const std::vector<Observation>& observations,
      std::shared_ptr<const WorkloadEncoder> encoder,
      const MlpModelConfig& config, Rng* rng);

  /// Predicts the objective for a workload characterized by
  /// `workload_metrics` (e.g. its default-run metric vector) under
  /// configuration `conf_encoded`.
  double Predict(const Vector& workload_metrics,
                 const Vector& conf_encoded) const;

 private:
  GlobalPredictor(std::shared_ptr<const WorkloadEncoder> encoder,
                  std::shared_ptr<MlpModel> model)
      : encoder_(std::move(encoder)), model_(std::move(model)) {}

  std::shared_ptr<const WorkloadEncoder> encoder_;
  std::shared_ptr<MlpModel> model_;
};

}  // namespace udao

#endif  // UDAO_MODEL_ENCODER_H_
