#ifndef UDAO_MODEL_GP_MODEL_H_
#define UDAO_MODEL_GP_MODEL_H_

#include <iosfwd>
#include <memory>

#include "common/matrix.h"
#include "model/objective_model.h"

namespace udao {

/// Hyperparameter-fitting settings for GpModel.
struct GpConfig {
  /// Learn one lengthscale per input dimension (ARD) vs a shared one.
  bool ard = true;
  /// Gradient-ascent steps of marginal-likelihood maximization (0 keeps the
  /// initial hyperparameters).
  int hyper_opt_steps = 120;
  double hyper_learning_rate = 0.05;
  double init_lengthscale = 0.5;
  double init_signal_var = 1.0;
  double init_noise_var = 1e-2;
  /// Base diagonal jitter; escalated automatically if factorization fails
  /// (duplicate training points).
  double jitter = 1e-8;
  /// Fit the GP on log targets and predict exp(.): positive predictions and
  /// multiplicative error, suited to latency/cost/throughput objectives.
  bool log_transform_targets = false;
};

/// Zero-mean Gaussian Process regression with a squared-exponential (ARD)
/// kernel -- the model family used by OtterTune and by UDAO's model server
/// for GP objectives. Targets are standardized internally. Hyperparameters
/// are learned by maximum marginal likelihood with analytic gradients
/// (Section 3.4 of the GP background in the paper's reference chain).
///
/// Exposes analytic input gradients of the posterior mean, which is what lets
/// MOGD descend on GP objectives in 0.1-0.5 s where a general MINLP solver
/// takes minutes (Section V).
class GpModel : public ObjectiveModel {
 public:
  /// Fits a GP to rows of `x` (encoded configs) against targets `y`.
  /// Fails when inputs are empty/mismatched or the kernel cannot be
  /// factorized even with escalated jitter.
  static StatusOr<std::shared_ptr<GpModel>> Fit(const Matrix& x,
                                                const Vector& y,
                                                const GpConfig& config);

  double Predict(const Vector& x) const override;
  void PredictWithUncertainty(const Vector& x, double* mean,
                              double* stddev) const override;
  Vector InputGradient(const Vector& x) const override;
  // Batched inference shares one cross-kernel matrix K* [n, n_train] across
  // predictions, gradients, and the posterior variance of all query points.
  void PredictBatch(const Matrix& x, Vector* out) const override;
  void GradientBatch(const Matrix& x, Matrix* grads,
                     Vector* values = nullptr) const override;
  void PredictWithUncertaintyBatch(const Matrix& x, Vector* mean,
                                   Vector* stddev) const override;
  int input_dim() const override { return x_.cols(); }
  std::string Name() const override { return "gp"; }

  /// Log marginal likelihood of the training data under the fitted
  /// hyperparameters (standardized targets).
  double log_marginal_likelihood() const { return lml_; }
  const Vector& lengthscales() const { return lengthscales_; }
  double signal_var() const { return signal_var_; }
  double noise_var() const { return noise_var_; }
  int num_training_points() const { return x_.rows(); }

  /// Writes the training set and fitted hyperparameters as portable text.
  void SerializeTo(std::ostream& out) const;
  /// Rebuilds a GP (refactorizing the kernel) from SerializeTo output.
  static StatusOr<std::shared_ptr<GpModel>> Deserialize(std::istream& in);

 private:
  GpModel() = default;

  double Kernel(const double* a, const double* b) const;
  Vector KernelVector(const Vector& x) const;
  // Cross-kernel matrix k(x_i, train_j) for every row of `x`.
  Matrix KernelMatrix(const Matrix& x) const;
  // Recomputes the factorization for the current hyperparameters; returns
  // false if even escalated jitter cannot make the kernel SPD.
  bool Refactorize();

  Matrix x_;            // training inputs, n x d
  Vector z_;            // standardized (possibly log-transformed) targets
  bool log_targets_ = false;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  Vector lengthscales_;  // per-dimension (or broadcast) lengthscales
  double signal_var_ = 1.0;
  double noise_var_ = 1e-2;
  double jitter_ = 1e-8;
  Matrix chol_;          // lower Cholesky of K + (noise+jitter) I
  Vector alpha_;         // (K + noise I)^{-1} z
  double lml_ = 0.0;
};

}  // namespace udao

#endif  // UDAO_MODEL_GP_MODEL_H_
