#include "tuning/expert.h"

#include <algorithm>
#include <cmath>

#include "spark/conf.h"

namespace udao {

Vector ExpertBatchConfig(const Dataflow& flow) {
  const double input_gb = flow.TotalInputBytes() / 1e9;
  SparkConf conf;
  // Executors scale with data volume; capped at the cluster.
  conf.executor_instances =
      std::clamp(std::round(4.0 + input_gb / 8.0), 2.0, 28.0);
  conf.executor_cores = 4;
  // ~1.5 GB of executor memory per core plus headroom for wide stages.
  conf.executor_memory_gb = std::clamp(
      std::round(6.0 + input_gb / 16.0), 4.0, 32.0);
  const double cores = conf.TotalCores();
  conf.parallelism = std::clamp(std::round(2.5 * cores), 8.0, 400.0);
  conf.shuffle_partitions = conf.parallelism;
  conf.shuffle_compress = 1;
  conf.memory_fraction = 0.6;
  conf.max_size_in_flight_mb = 48;
  conf.bypass_merge_threshold = 200;
  // UDF/ML stages benefit from more partitions per core (straggler slack).
  if (flow.workload_class() != WorkloadClass::kSql) {
    conf.parallelism = std::min(400.0, conf.parallelism * 1.5);
  }
  Vector raw = conf.ToRaw();
  // Snap to the knob space (rounds and clamps every knob).
  const ParamSpace& space = BatchParamSpace();
  return space.Decode(space.Encode(raw));
}

Vector ExpertStreamConfig(const StreamWorkloadProfile& profile,
                          double input_rate_krps) {
  StreamConf conf;
  conf.input_rate_krps = std::clamp(input_rate_krps, 50.0, 1200.0);
  // Size cores so the expected per-batch CPU fits in half the interval.
  const double ops_per_s = conf.input_rate_krps * 1000.0 *
                           (profile.map_ops_per_record +
                            profile.reduce_ops_per_record);
  const double cores_needed = ops_per_s / 5e7 * 2.0;
  conf.executor_cores = 4;
  conf.executor_instances =
      std::clamp(std::ceil(cores_needed / conf.executor_cores), 2.0, 28.0);
  conf.batch_interval_ms = 4000;
  conf.block_interval_ms = 200;
  conf.parallelism =
      std::clamp(std::round(2.0 * conf.TotalCores()), 8.0, 400.0);
  conf.executor_memory_gb = 8;
  conf.shuffle_compress = 1;
  Vector raw = conf.ToRaw();
  const ParamSpace& space = StreamParamSpace();
  return space.Decode(space.Encode(raw));
}

}  // namespace udao
