#include "tuning/udao.h"

#include <chrono>
#include <cstdio>

#include "common/byte_key.h"
#include "common/check.h"
#include "model/analytic_models.h"
#include "workload/trace_gen.h"

namespace udao {

void SolverOptions::AppendFingerprint(std::string* out) const {
  AppendPod(out, pf.parallel);
  AppendPod(out, pf.grid_per_dim);
  AppendPod(out, pf.use_exhaustive);
  AppendPod(out, pf.exhaustive_budget);
  AppendPod(out, pf.max_probes);
  AppendPod(out, pf.fifo_queue);
  AppendPod(out, pf.mogd.multistart);
  AppendPod(out, pf.mogd.max_iters);
  AppendPod(out, pf.mogd.learning_rate);
  AppendPod(out, pf.mogd.alpha);
  AppendPod(out, pf.mogd.batched);
  AppendPod(out, pf.mogd.seed);
  AppendPod(out, frontier_points);
  AppendPod(out, workload_aware);
  AppendPod(out, uncertainty_alpha);
}

std::string SolverOptions::Fingerprint() const {
  std::string out;
  AppendFingerprint(&out);
  return out;
}

std::string SolverOptions::FingerprintHex() const { return ToHex(Fingerprint()); }

Udao::Udao(ModelServer* server, UdaoOptions options)
    : server_(server), options_(options) {
  UDAO_CHECK(server_ != nullptr);
  if (options_.pf.mogd.pool == nullptr && options_.solver_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.solver_threads);
    options_.pf.mogd.pool = pool_.get();
  }
}

Status Udao::Validate(const UdaoRequest& request) {
  if (request.space == nullptr) {
    return Status::InvalidArgument("request needs a parameter space");
  }
  if (request.objectives.empty()) {
    return Status::InvalidArgument("request needs at least one objective");
  }
  if (!request.preference_weights.empty() &&
      request.preference_weights.size() != request.objectives.size()) {
    return Status::InvalidArgument("one preference weight per objective");
  }
  return Status::Ok();
}

StatusOr<std::vector<ObjectiveSpec>> Udao::ResolveObjectives(
    const UdaoRequest& request) const {
  Status valid = Validate(request);
  if (!valid.ok()) return valid;
  // Retrieve the latest task-specific models (Fig. 1(a), step 1).
  std::vector<ObjectiveSpec> objectives;
  for (const ObjectiveSpec& spec : request.objectives) {
    ObjectiveSpec obj = spec;
    if (obj.model == nullptr) {
      if (obj.name == objectives::kCostCores &&
          request.space == &BatchParamSpace()) {
        obj.model = MakeCostCoresModel();
      } else if (obj.name == objectives::kCostCores &&
                 request.space == &StreamParamSpace()) {
        obj.model = MakeStreamCostCoresModel();
      } else {
        StatusOr<std::shared_ptr<const ObjectiveModel>> model =
            server_->GetModel(request.workload_id, obj.name);
        if (!model.ok()) return model.status();
        // Learned models of physical quantities get a non-negativity floor
        // so the optimizer cannot chase extrapolated negative predictions.
        obj.model = std::make_shared<NonNegativeModel>(*model);
      }
    }
    objectives.push_back(std::move(obj));
  }
  return objectives;
}

std::vector<MooPoint> Udao::ConservativeRank(
    const MooProblem& problem, const std::vector<MooPoint>& points) const {
  std::vector<MooPoint> ranked = points;
  if (options_.uncertainty_alpha <= 0.0 || ranked.empty()) return ranked;
  // Batched re-rank: one PredictWithUncertaintyBatch per objective instead
  // of a scalar MC-dropout per point, so ranking a frontier -- a densified
  // one in particular -- runs one fused forward stream per stochastic
  // sample. Bitwise-identical to a per-point loop (the batch surface keeps
  // the per-point seed contract).
  const int k = problem.NumObjectives();
  const int dim = static_cast<int>(ranked.front().conf_encoded.size());
  Matrix x(static_cast<int>(ranked.size()), dim);
  for (size_t i = 0; i < ranked.size(); ++i) {
    for (int d = 0; d < dim; ++d) {
      x(static_cast<int>(i), d) = ranked[i].conf_encoded[d];
    }
  }
  Vector mean;
  Vector stddev;
  for (int j = 0; j < k; ++j) {
    problem.EvaluateWithUncertaintyBatch(j, x, &mean, &stddev);
    for (size_t i = 0; i < ranked.size(); ++i) {
      ranked[i].objectives[j] =
          mean[i] + options_.uncertainty_alpha * stddev[i];
    }
  }
  return ranked;
}

StatusOr<UdaoRecommendation> Udao::Recommend(
    const UdaoRequest& request, const MooProblem& problem,
    const PfResult& frontier, const std::vector<MooPoint>* ranked_in) const {
  Status valid = Validate(request);
  if (!valid.ok()) return valid;
  if (frontier.frontier.empty()) {
    return Status::FailedPrecondition(
        "no Pareto point satisfies the requested constraints");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Recommend via (workload-aware) Weighted Utopia Nearest (step 3).
  const int k = problem.NumObjectives();
  Vector external = request.preference_weights;
  if (external.empty()) external.assign(k, 1.0 / k);
  Vector weights = external;
  if (options_.workload_aware && k == 2 &&
      request.objectives[0].name == objectives::kLatency) {
    // Expert internal weights keyed to the default-configuration latency.
    const Vector default_encoded =
        request.space->Encode(request.space->Defaults());
    const double default_latency = problem.ToNatural(
        0, problem.EvaluateOne(0, default_encoded));
    weights =
        CombineWeights(WorkloadAwareInternalWeights(default_latency), external);
  } else {
    double sum = 0.0;
    for (double w : weights) sum += w;
    if (sum > 0) {
      for (double& w : weights) w /= sum;
    }
  }

  // Conservative re-ranking under model uncertainty: evaluate each frontier
  // point at F~ = E[F] + alpha * std[F] (minimization orientation) before
  // choosing, which demotes points whose predicted appeal sits on sparse
  // training coverage.
  const std::vector<MooPoint> ranked =
      ranked_in != nullptr ? *ranked_in
                           : ConservativeRank(problem, frontier.frontier);
  UDAO_CHECK_EQ(ranked.size(), frontier.frontier.size());
  std::optional<MooPoint> choice;
  switch (request.options.policy) {
    case RecommendPolicy::kWun:
      break;  // the fallback below is the WUN pick
    case RecommendPolicy::kKnee:
      if (k == 2) choice = KneePoint(ranked, request.options.slope_side);
      break;
    case RecommendPolicy::kSlope:
      if (k == 2) {
        choice = SlopeMaximization(ranked, request.options.slope_side);
      }
      break;
  }
  if (!choice.has_value()) {
    choice = WeightedUtopiaNearest(ranked, frontier.utopia, frontier.nadir,
                                   weights);
  }
  UDAO_CHECK(choice.has_value());
  // Report the conservative estimates the system acted on ("F~ offers a more
  // conservative estimate of F ... given the model uncertainty", IV-B.3);
  // with alpha = 0 these are the plain model predictions.
  const Vector& chosen_objectives = choice->objectives;

  UdaoRecommendation rec;
  rec.conf_encoded = choice->conf_encoded;
  rec.conf_raw = request.space->Decode(choice->conf_encoded);
  rec.predicted_objectives.resize(k);
  for (int j = 0; j < k; ++j) {
    rec.predicted_objectives[j] = problem.ToNatural(j, chosen_objectives[j]);
  }
  rec.frontier = frontier;
  rec.weights_used = weights;
  rec.knob_names.reserve(request.space->NumParams());
  for (const ParamSpec& spec : request.space->specs()) {
    rec.knob_names.push_back(spec.name);
  }
  rec.degraded = frontier.degraded;
  rec.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rec;
}

namespace {

void JsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void JsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void JsonVector(std::string* out, const Vector& v) {
  out->push_back('[');
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out->push_back(',');
    JsonDouble(out, v[i]);
  }
  out->push_back(']');
}

}  // namespace

std::string RecommendationJson(const UdaoRecommendation& rec) {
  std::string out = "{";
  // Named knobs when the recommendation is self-describing (names zip with
  // values); the raw vector is always present as the fallback.
  if (rec.knob_names.size() == rec.conf_raw.size()) {
    out += "\"conf\":{";
    for (size_t i = 0; i < rec.knob_names.size(); ++i) {
      if (i) out.push_back(',');
      JsonString(&out, rec.knob_names[i]);
      out.push_back(':');
      JsonDouble(&out, rec.conf_raw[i]);
    }
    out += "},";
  }
  out += "\"conf_raw\":";
  JsonVector(&out, rec.conf_raw);
  out += ",\"predicted_objectives\":";
  JsonVector(&out, rec.predicted_objectives);
  out += ",\"weights_used\":";
  JsonVector(&out, rec.weights_used);
  out += ",\"frontier_points\":";
  JsonDouble(&out, static_cast<double>(rec.frontier.frontier.size()));
  out += ",\"degraded\":";
  out += rec.degraded ? "true" : "false";
  out += ",\"seconds\":";
  JsonDouble(&out, rec.seconds);
  out += ",\"queue_wait_ms\":";
  JsonDouble(&out, rec.queue_wait_ms);
  // Stage-level refinement. std::map iteration makes both levels ordered,
  // hence byte-stable across runs.
  out += ",\"stage_overlay\":{";
  bool first_stage = true;
  for (const auto& [stage, knobs] : rec.stage_overlay.overrides) {
    if (!first_stage) out.push_back(',');
    first_stage = false;
    JsonString(&out, std::to_string(stage));
    out += ":{";
    bool first_knob = true;
    for (const auto& [knob, value] : knobs) {
      if (!first_knob) out.push_back(',');
      first_knob = false;
      if (static_cast<size_t>(knob) < rec.knob_names.size()) {
        JsonString(&out, rec.knob_names[knob]);
      } else {
        JsonString(&out, std::to_string(knob));
      }
      out.push_back(':');
      JsonDouble(&out, value);
    }
    out += "}";
  }
  out += "},\"stage_confs\":[";
  for (size_t s = 0; s < rec.stage_confs.size(); ++s) {
    if (s) out.push_back(',');
    JsonVector(&out, rec.stage_confs[s]);
  }
  out += "]}";
  return out;
}

StatusOr<UdaoRecommendation> Udao::Optimize(const UdaoRequest& request) {
  const auto t0 = std::chrono::steady_clock::now();
  const StopToken stop = request.Stop();
  if (request.options.cancel.IsCancelled()) {
    return Status::DeadlineExceeded("request cancelled before solving");
  }
  StatusOr<std::vector<ObjectiveSpec>> objectives = ResolveObjectives(request);
  if (!objectives.ok()) return objectives.status();
  MooProblem problem(request.space, std::move(*objectives));

  // Compute the Pareto frontier (step 2). With a stop token armed this is
  // anytime: expiry mid-run yields the best-so-far frontier, degraded.
  ProgressiveFrontier pf(&problem, options_.pf);
  const PfResult& frontier = pf.Run(options_.frontier_points, stop);
  if (frontier.degraded && frontier.frontier.empty()) {
    return Status::DeadlineExceeded(
        "budget expired before any Pareto point was found");
  }

  StatusOr<UdaoRecommendation> rec = Recommend(request, problem, frontier);
  if (!rec.ok()) return rec.status();
  rec->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rec;
}

}  // namespace udao
