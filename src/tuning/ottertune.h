#ifndef UDAO_TUNING_OTTERTUNE_H_
#define UDAO_TUNING_OTTERTUNE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "model/gp_model.h"
#include "model/model_server.h"
#include "spark/conf.h"

namespace udao {

/// OtterTune baseline settings.
struct OtterTuneConfig {
  GpConfig gp;
  /// Candidate configurations scored during GP search.
  int search_candidates = 400;
  /// Fraction of candidates drawn as perturbations around the best observed
  /// configuration (the rest are space-filling).
  double local_fraction = 0.5;
  /// GP-UCB style exploration coefficient during search.
  double exploration = 0.5;
  uint64_t seed = 41;
};

/// Reimplementation of OtterTune's recommendation pipeline [Van Aken et al.
/// 2017], the paper's end-to-end comparison target (Section VI-B):
///
///  1. *Workload mapping*: the target workload is matched to the most similar
///     past workload by Euclidean distance over standardized runtime metrics,
///     and the matched workload's traces augment the target's own.
///  2. *GP model*: one GP per objective on the merged traces.
///  3. *Single-objective search*: OtterTune cannot do MOO, so k objectives
///     are folded into sum_i w_i Psi~_i(x) (the weighted method the paper
///     applies to it) and a GP-guided candidate search returns the best
///     configuration.
class OtterTune {
 public:
  /// `server` supplies traces and metrics; it is not modified.
  OtterTune(const ModelServer* server, OtterTuneConfig config);

  /// Recommends a configuration for `workload_id` minimizing the weighted
  /// combination of the named objectives. A negative weight flips that
  /// objective to maximization (e.g. throughput), mirroring how the paper
  /// folds multiple objectives into OtterTune's single-objective search.
  /// Fails when the workload has no traces for some objective.
  StatusOr<Vector> Recommend(const ParamSpace& space,
                             const std::string& workload_id,
                             const std::vector<std::string>& objective_names,
                             const Vector& weights) const;

  /// One fitted surrogate with its observed value range (for normalization).
  struct Surrogate {
    std::shared_ptr<const ObjectiveModel> model;
    double lo = 0.0;
    double hi = 1.0;
  };

  /// Builds the per-objective surrogates exactly as Recommend() uses them:
  /// GPs over the workload's own traces merged with the mapped workload's
  /// traces; cost-in-cores is served analytically (it is a certain function
  /// of the knobs). Exposed so the end-to-end benchmarks can run UDAO's MOO
  /// on "the GP models from Ottertune" (Expt 3).
  StatusOr<std::vector<Surrogate>> BuildSurrogates(
      const ParamSpace& space, const std::string& workload_id,
      const std::vector<std::string>& objective_names) const;

  /// The workload mapping step, exposed for tests: the id of the most
  /// similar *other* workload by metric distance, or NotFound when no other
  /// workload has metrics.
  StatusOr<std::string> MapWorkload(const std::string& workload_id) const;

 private:
  const ModelServer* server_;
  OtterTuneConfig config_;
};

}  // namespace udao

#endif  // UDAO_TUNING_OTTERTUNE_H_
