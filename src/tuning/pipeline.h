#ifndef UDAO_TUNING_PIPELINE_H_
#define UDAO_TUNING_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "moo/progressive_frontier.h"

namespace udao {

/// One stage of an analytics pipeline: a named task with its own MOO problem
/// (its own models and knob space). All stages must expose the same list of
/// *additive* objectives in the same order -- e.g. (latency, CPU-hour):
/// pipeline latency is the sum of sequential stage latencies and pipeline
/// cost the sum of stage costs.
struct PipelineStage {
  std::string name;
  const MooProblem* problem = nullptr;
};

/// One point on the pipeline-level frontier: the summed objectives plus the
/// per-stage encoded configurations that achieve them.
struct PipelinePoint {
  Vector objectives;                        ///< Summed, minimization orient.
  std::vector<Vector> stage_confs_encoded;  ///< One configuration per stage.
};

/// Pipeline optimization output.
struct PipelineResult {
  std::vector<PipelinePoint> frontier;
  Vector utopia;
  Vector nadir;
  /// Per-stage frontier sizes (diagnostics).
  std::vector<int> stage_frontier_sizes;
};

/// Settings for PipelineOptimizer.
struct PipelineOptions {
  PfConfig pf;                ///< Per-stage frontier computation.
  int points_per_stage = 12;  ///< Frontier size requested per stage.
  int max_points = 64;        ///< Thinning cap on composed frontiers.
  /// Conservative stage-point values F~ = E[F] + alpha std[F] before
  /// composing, so pipeline plans avoid configurations whose appeal rests on
  /// model holes (same guard as UdaoOptions::uncertainty_alpha).
  double uncertainty_alpha = 1.0;
  /// Worker threads for the per-stage PF-AP fan-out; one ThreadPool is
  /// created at construction and shared by every stage solve (a caller-set
  /// pf.mogd.pool wins). <= 1 runs solves inline.
  int solver_threads = 4;
};

/// Multi-task pipeline optimizer -- the extension the paper names as future
/// work ("we plan to extend UDAO to support a pipeline of analytic tasks").
///
/// Each stage's Pareto frontier is computed independently with the
/// Progressive Frontier algorithm; the pipeline-level frontier is the Pareto
/// filter of the Minkowski sum of stage frontiers, composed stage by stage
/// with thinning so the intermediate sets stay bounded. Every pipeline
/// frontier point decomposes into one concrete configuration per stage, so a
/// single preference vector picks a coherent end-to-end plan.
class PipelineOptimizer {
 public:
  explicit PipelineOptimizer(PipelineOptions options = PipelineOptions());

  /// Computes the pipeline frontier. Fails on an empty pipeline, mismatched
  /// objective arities, or a stage with an empty frontier.
  StatusOr<PipelineResult> Optimize(
      const std::vector<PipelineStage>& stages) const;

  /// Weighted-Utopia-Nearest recommendation over a pipeline frontier.
  static std::optional<PipelinePoint> Recommend(const PipelineResult& result,
                                                const Vector& weights);

  /// Exposed for testing: Pareto-filter of the pairwise sums of two frontier
  /// sets, thinned to `max_points` (evenly by the first objective).
  static std::vector<PipelinePoint> Compose(
      const std::vector<PipelinePoint>& a, const std::vector<PipelinePoint>& b,
      int max_points);

 private:
  PipelineOptions options_;
  /// Lives as long as the optimizer; options_.pf.mogd.pool points here
  /// unless the caller supplied a pool of their own.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace udao

#endif  // UDAO_TUNING_PIPELINE_H_
