#include "tuning/ottertune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stats.h"
#include "model/analytic_models.h"
#include "workload/trace_gen.h"

namespace udao {

OtterTune::OtterTune(const ModelServer* server, OtterTuneConfig config)
    : server_(server), config_(config) {
  UDAO_CHECK(server_ != nullptr);
}

StatusOr<std::string> OtterTune::MapWorkload(
    const std::string& workload_id) const {
  StatusOr<Vector> own = server_->MeanMetrics(workload_id);
  if (!own.ok()) return own.status();
  const std::vector<std::string> all = server_->WorkloadsWithMetrics();

  // Standardize each metric dimension over the fleet so that large-magnitude
  // metrics do not drown the rest (OtterTune bins/deciles; z-scores serve the
  // same purpose here).
  std::vector<Vector> fleet;
  std::vector<std::string> ids;
  for (const std::string& id : all) {
    StatusOr<Vector> m = server_->MeanMetrics(id);
    if (m.ok()) {
      fleet.push_back(*m);
      ids.push_back(id);
    }
  }
  if (fleet.size() < 2) {
    return Status::NotFound("no other workloads with metrics to map against");
  }
  const size_t dims = fleet.front().size();
  Vector mean(dims, 0.0);
  Vector stddev(dims, 0.0);
  for (size_t d = 0; d < dims; ++d) {
    Vector col(fleet.size());
    for (size_t i = 0; i < fleet.size(); ++i) col[i] = fleet[i][d];
    mean[d] = Mean(col);
    stddev[d] = std::max(1e-9, StdDev(col));
  }
  auto standardize = [&](const Vector& v) {
    Vector z(dims);
    for (size_t d = 0; d < dims; ++d) z[d] = (v[d] - mean[d]) / stddev[d];
    return z;
  };
  const Vector own_z = standardize(*own);

  std::string best_id;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (ids[i] == workload_id) continue;
    const double dist = SquaredDistance(own_z, standardize(fleet[i]));
    if (dist < best_dist) {
      best_dist = dist;
      best_id = ids[i];
    }
  }
  if (best_id.empty()) {
    return Status::NotFound("no other workloads with metrics to map against");
  }
  return best_id;
}

StatusOr<std::vector<OtterTune::Surrogate>> OtterTune::BuildSurrogates(
    const ParamSpace& space, const std::string& workload_id,
    const std::vector<std::string>& objective_names) const {
  // Workload mapping (best effort: without a match, use own traces only).
  StatusOr<std::string> mapped = MapWorkload(workload_id);

  std::vector<Surrogate> surrogates;
  for (size_t o = 0; o < objective_names.size(); ++o) {
    if (objective_names[o] == objectives::kCostCores) {
      // Certain function of the knobs: no learning needed.
      Surrogate s;
      s.model = (&space == &StreamParamSpace()) ? MakeStreamCostCoresModel()
                                                : MakeCostCoresModel();
      s.lo = 0.0;
      s.hi = 224.0;
      surrogates.push_back(std::move(s));
      continue;
    }
    StatusOr<ModelServer::DataSet> own_data =
        server_->GetData(workload_id, objective_names[o]);
    if (!own_data.ok()) return own_data.status();
    std::vector<Vector> xs = std::move(own_data->x);
    Vector ys = std::move(own_data->y);
    if (mapped.ok()) {
      StatusOr<ModelServer::DataSet> other =
          server_->GetData(*mapped, objective_names[o]);
      if (other.ok()) {
        xs.insert(xs.end(), other->x.begin(), other->x.end());
        ys.insert(ys.end(), other->y.begin(), other->y.end());
      }
    }
    StatusOr<std::shared_ptr<GpModel>> gp =
        GpModel::Fit(Matrix::FromRows(xs), ys, config_.gp);
    if (!gp.ok()) return gp.status();
    Surrogate s;
    s.model = std::make_shared<NonNegativeModel>(*gp);
    s.lo = *std::min_element(ys.begin(), ys.end());
    s.hi = std::max(s.lo + 1e-9, *std::max_element(ys.begin(), ys.end()));
    surrogates.push_back(std::move(s));
  }
  return surrogates;
}

StatusOr<Vector> OtterTune::Recommend(
    const ParamSpace& space, const std::string& workload_id,
    const std::vector<std::string>& objective_names,
    const Vector& weights) const {
  if (objective_names.empty() || objective_names.size() != weights.size()) {
    return Status::InvalidArgument("objectives/weights mismatch");
  }
  StatusOr<std::vector<Surrogate>> built =
      BuildSurrogates(space, workload_id, objective_names);
  if (!built.ok()) return built.status();
  const std::vector<Surrogate>& surrogates = *built;

  StatusOr<ModelServer::DataSet> own_data =
      server_->GetData(workload_id, objective_names[0]);
  if (!own_data.ok()) return own_data.status();
  const std::vector<Vector>& observed_x = own_data->x;
  UDAO_CHECK(!observed_x.empty());

  // Best observed own configuration under the weighted objective seeds the
  // local part of the search.
  Vector best_seen = observed_x[0];
  {
    double best_val = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < observed_x.size(); ++i) {
      double val = 0.0;
      for (size_t o = 0; o < surrogates.size(); ++o) {
        const double pred = surrogates[o].model->Predict(observed_x[i]);
        val += weights[o] * (pred - surrogates[o].lo) /
               (surrogates[o].hi - surrogates[o].lo);
      }
      if (val < best_val) {
        best_val = val;
        best_seen = observed_x[i];
      }
    }
  }

  // GP-guided candidate search: global space-filling candidates plus local
  // perturbations of the best observed point, scored by weighted LCB.
  Rng rng(config_.seed);
  Vector best_x;
  double best_score = std::numeric_limits<double>::infinity();
  for (int c = 0; c < config_.search_candidates; ++c) {
    Vector x(space.EncodedDim());
    if (rng.Uniform() < config_.local_fraction) {
      for (size_t d = 0; d < x.size(); ++d) {
        x[d] = std::clamp(best_seen[d] + rng.Gaussian(0, 0.08), 0.0, 1.0);
      }
    } else {
      for (double& v : x) v = rng.Uniform();
    }
    // Snap to a valid configuration before scoring.
    x = space.Encode(space.Decode(x));
    double score = 0.0;
    for (size_t o = 0; o < surrogates.size(); ++o) {
      double mean = 0.0;
      double stddev = 0.0;
      surrogates[o].model->PredictWithUncertainty(x, &mean, &stddev);
      // Optimistic bound in the direction of this weight's optimization.
      const double bound = weights[o] >= 0
                               ? mean - config_.exploration * stddev
                               : mean + config_.exploration * stddev;
      score += weights[o] * (bound - surrogates[o].lo) /
               (surrogates[o].hi - surrogates[o].lo);
    }
    if (score < best_score) {
      best_score = score;
      best_x = x;
    }
  }
  return space.Decode(best_x);
}

}  // namespace udao
