#ifndef UDAO_TUNING_UDAO_H_
#define UDAO_TUNING_UDAO_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"

#include "common/deadline.h"
#include "common/status.h"
#include "model/model_server.h"
#include "moo/progressive_frontier.h"
#include "moo/recommend.h"
#include "spark/conf.h"

namespace udao {

class Dataflow;

/// Which step-3 strategy picks the final configuration from the computed
/// frontier (Appendix B). Knee/slope are 2D-only and fall back to WUN when
/// inapplicable (k != 2, or the frontier has too few points for a slope).
/// The policy never affects step 2, so the serving layer serves any policy
/// change from a cached frontier.
enum class RecommendPolicy { kWun, kKnee, kSlope };

/// What a serving layer does with a request that arrives while its admission
/// queue is at capacity (or whose budget expired while queued). Defined here
/// rather than in src/serving because requests can carry a per-request
/// override (RequestOptions::shed_policy) and the request types live at this
/// layer.
enum class ShedPolicy {
  /// Fail fast with Unavailable. The caller sees backpressure immediately
  /// and can retry against another replica.
  kReject,
  /// Serve the most recent cached frontier for the request's key regardless
  /// of model generation, tagged degraded. Falls back to Unavailable when
  /// nothing is cached. Also used when model resolution itself fails
  /// (stale answer beats no answer for a tuning advisor).
  kServeStaleCache,
  /// Admit the request anyway but clamp its budget to the service's degraded
  /// budget, so it runs a short anytime solve and returns a degraded
  /// frontier instead of joining an unbounded backlog at full cost.
  kDegrade,
};

/// Tuning granularity of one request. kJob is the paper's original surface:
/// one configuration for the whole job. kStage adds the hierarchical layer
/// (src/moo/hierarchical.h): shared context knobs chosen once, per-stage
/// knobs solved per subproblem, returned as a StageConfOverlay beside the
/// flat configuration.
enum class AdaptiveGranularity { kJob, kStage };

/// Stage-level adaptive tuning knobs. Like the rest of RequestOptions these
/// never enter the serving cache key: the per-stage refinement is computed at
/// recommendation time from the cached frontier's chosen point (which depends
/// on the request's weights), never cached with the frontier itself.
struct AdaptiveOptions {
  AdaptiveGranularity granularity = AdaptiveGranularity::kJob;
  /// Budget handed to each AQE-style boundary re-solve (engine
  /// RunAdaptive deployments); also bounds the recommend-time per-stage
  /// refinement as a whole-overlay budget.
  double resolve_budget_ms = 10.0;
  /// Boundary re-solves are capped at this many stage boundaries.
  int max_boundaries = 8;
};

/// Per-request knobs, collected in one place so UdaoRequest stays "what to
/// optimize" and this stays "how to treat this particular request". None of
/// these fields enters the serving cache key: they steer step 3, budgets,
/// and bookkeeping -- never which frontier step 2 computes.
struct RequestOptions {
  /// Recommendation (step 3) strategy. Requests that differ only in
  /// preference weights, `policy`, or `slope_side` share the same frontier
  /// and are served from UdaoService's cache without re-running PF.
  RecommendPolicy policy = RecommendPolicy::kWun;
  /// Reference anchor for the kKnee / kSlope policies.
  SlopeSide slope_side = SlopeSide::kLeft;

  /// Sampling-based frontier densification (src/moo/densify.h) before the
  /// recommendation step: > 0 enables it, drawing this many perturbed
  /// candidates per frontier point. UdaoService applies it to cache-hit
  /// frontiers on weight/policy-only repeats (deadline-aware via the
  /// request's StopToken) and post-hoc to degraded deadline-hit frontiers.
  /// The cached entry itself is immutable; the densified variant -- a pure
  /// function of the entry and these knobs -- is memoized beside the entry
  /// (and dies with it), so warm repeats reuse it instead of re-sampling.
  /// 0 (the default) serves exactly what PF produced.
  int densify_samples = 0;
  /// Gaussian jitter stddev, per encoded knob dimension in [0,1], used by
  /// densification sampling.
  double densify_radius = 0.05;

  /// Time budget for the whole request, queue wait included. Default: none.
  /// On expiry the solve stops at its next amortized check and returns the
  /// best-so-far frontier tagged `degraded` (PF's anytime property) rather
  /// than erroring -- unless nothing was computed yet, in which case the
  /// request fails with DeadlineExceeded. Budgets change *how much* of the
  /// frontier gets computed, not which frontier, and degraded results are
  /// never cached.
  Deadline deadline;
  /// Cooperative cancellation (e.g. the client disconnected). The default
  /// token never cancels and costs nothing to check.
  CancellationToken cancel;

  /// Stage-level adaptive tuning (granularity, boundary re-solve budget).
  /// Requires UdaoRequest::flow and a serving engine to take effect; plain
  /// job-level requests leave the defaults.
  AdaptiveOptions adaptive;

  /// Per-request override of the service-wide shed policy; nullopt uses
  /// UdaoServiceConfig::shed_policy. A latency-critical caller can demand
  /// kReject while the service default degrades, and vice versa.
  std::optional<ShedPolicy> shed_policy;
  /// False opts this request out of per-request MetricsRegistry emissions
  /// (counters/histograms on the serving path). Aggregate stats() counters
  /// are always maintained; this only silences the registry for callers that
  /// do their own accounting (load generators, replayed traffic).
  bool metrics = true;
};

/// One optimization request (Fig. 1(a)): a workload (standing in for its
/// dataflow program, whose models live in the model server), the chosen
/// objectives, optional value constraints, and optional preference weights.
struct UdaoRequest {
  std::string workload_id;
  const ParamSpace* space = nullptr;
  /// The workload's dataflow program, required for stage-level requests
  /// (options.adaptive.granularity == kStage): the hierarchical solver plans
  /// stages from it. Non-owning; may be null for job-level requests.
  const Dataflow* flow = nullptr;

  /// Objectives use the stack-wide ObjectiveSpec (src/moo/problem.h). `name`
  /// is the model-server objective name (see workload/trace_gen.h constants).
  /// `model` may be left null: the optimizer resolves it itself --
  /// cost-in-cores is served analytically (it is a certain function of the
  /// knobs), other objectives come from the model server with a
  /// non-negativity floor.
  using Objective = ObjectiveSpec;
  std::vector<ObjectiveSpec> objectives;

  /// External (application) preference weights, one per objective; empty
  /// means uniform. They need not be normalized.
  Vector preference_weights;

  /// Per-request knobs (policy, deadline, cancellation, shed override,
  /// metrics opt-out). See RequestOptions.
  RequestOptions options;

  /// The combined stop signal solvers check.
  StopToken Stop() const {
    return StopToken(options.deadline, options.cancel);
  }
};

/// The optimizer's answer: a configuration plus the frontier that justified
/// it.
struct UdaoRecommendation {
  Vector conf_raw;               ///< Recommended raw knob values.
  Vector conf_encoded;           ///< Same point, encoded.
  Vector predicted_objectives;   ///< Model predictions, natural orientation.
  PfResult frontier;             ///< The Pareto frontier used.
  Vector weights_used;           ///< Final (combined) WUN weights.
  double seconds = 0;            ///< End-to-end optimization time.
  /// True when the answer is best-effort rather than complete: the frontier
  /// stopped early on a deadline/cancellation, or the serving layer fell
  /// back to a stale cached frontier under its shed policy. The
  /// configuration is still real and feasible -- it just came from a
  /// frontier that explored less of the trade-off space.
  bool degraded = false;
  /// Milliseconds the request sat in the serving admission queue before a
  /// worker picked it up. 0 when Udao is called directly (no queue).
  double queue_wait_ms = 0;

  /// Self-description: the knob name for each conf_raw entry, in order,
  /// copied from the request's ParamSpace. Always filled by Recommend, so
  /// consumers never need the space to interpret the vector.
  std::vector<std::string> knob_names;
  /// Stage-level refinement (kStage requests only; empty otherwise): sparse
  /// per-stage overrides of conf_raw, keyed by plan-walk stage id.
  StageConfOverlay stage_overlay;
  /// The overlay resolved per stage: stage_confs[s] is the full effective
  /// raw configuration stage s runs under (== conf_raw where no override
  /// applies). Empty for job-level requests.
  std::vector<Vector> stage_confs;
};

/// Stable JSON rendering of a recommendation for tooling (udao_cli --json):
/// knob names zipped with values, per-stage configurations, predicted
/// objectives, and the degradation flags. Doubles print with %.17g so equal
/// recommendations serialize byte-identically; map iteration is ordered, so
/// the output is deterministic.
std::string RecommendationJson(const UdaoRecommendation& rec);

/// Solver policy: everything that determines what step 2 (Progressive
/// Frontier) computes plus how step 3 recommends from it. One struct, nested
/// -- SolverOptions holds the PfConfig which holds the MogdConfig -- with
/// ONE canonical byte-serialization (AppendFingerprint) consumed by both the
/// serving cache key and the bench reports' config field, so the two can
/// never drift apart field-by-field.
struct SolverOptions {
  PfConfig pf = [] {
    PfConfig cfg;
    cfg.parallel = true;  // PF-AP is the production default (Section IV-C)
    return cfg;
  }();
  /// Pareto points requested from PF before recommending.
  int frontier_points = 20;
  /// Workload-aware WUN: fold expert internal weights (based on the
  /// workload's default-configuration latency) into the preference weights
  /// for 2D latency-vs-cost problems (Section V "Recommendation").
  bool workload_aware = true;
  /// Model-uncertainty guard (Section IV-B.3): frontier points are re-ranked
  /// for recommendation using conservative estimates F~ = E[F] + alpha
  /// std[F], so configurations whose appeal rests on confident-looking holes
  /// in a sparsely-trained model lose to well-supported ones. Applied only
  /// at the (cheap) recommendation stage; 0 disables it.
  double uncertainty_alpha = 1.0;
  /// Worker threads for the solver's PF-AP fan-out. The optimizer creates
  /// one ThreadPool at construction and reuses it across every Optimize()
  /// call (pf.mogd.pool, when already set by the caller, wins). <= 1 runs
  /// solves inline.
  int solver_threads = 4;

  /// Canonical byte-serialization of every field that can change what the
  /// solver computes: the full nested PF + MOGD configuration and the
  /// recommendation-stage policy fields. Deliberately excluded: the MOGD
  /// pool pointer and solver_threads (threading never changes solutions).
  /// Append-only framing via common/byte_key.h, so equal fingerprints mean
  /// equal solver behavior.
  void AppendFingerprint(std::string* out) const;
  std::string Fingerprint() const;
  /// Fingerprint() in lowercase hex, for JSON bench-report config fields.
  std::string FingerprintHex() const;
};

/// Historic name from before the options consolidation; the service/bench
/// layers still spell it both ways (same precedent as MooObjective ->
/// ObjectiveSpec).
using UdaoOptions = SolverOptions;

/// UDAO: the Spark-based Unified Data Analytics Optimizer (Fig. 1(a)).
///
/// Given a request, it pulls the workload's latest objective models from the
/// model server, computes a Pareto frontier with the Progressive Frontier
/// algorithm, and recommends the configuration that best explores the
/// trade-offs under the application's preferences (Weighted Utopia Nearest).
///
/// Model training happens elsewhere (ModelServer + workload/trace_gen.h);
/// this hot path only reads the most recent models, which is what keeps
/// recommendations within seconds.
class Udao {
 public:
  /// `server` owns the models; the optimizer refreshes them lazily on use.
  Udao(ModelServer* server, UdaoOptions options = UdaoOptions());

  /// Handles one request end to end. NotFound when the workload has no
  /// traces yet for some requested objective -- callers should run the
  /// default configuration once and retry after ingestion.
  ///
  /// Equivalent to Validate + ResolveObjectives + PF + Recommend below; the
  /// decomposed surface exists so the serving layer can reuse a cached
  /// frontier and re-run only step 3.
  StatusOr<UdaoRecommendation> Optimize(const UdaoRequest& request);

  /// Structural request validation (no model access): non-null space, at
  /// least one objective, one preference weight per objective when given.
  static Status Validate(const UdaoRequest& request);

  /// Step 1: resolves every requested objective to a concrete model --
  /// analytic cost-in-cores when applicable, otherwise the model server's
  /// latest model behind a non-negativity floor. May train lazily inside the
  /// server. Also validates the request.
  StatusOr<std::vector<ObjectiveSpec>> ResolveObjectives(
      const UdaoRequest& request) const;

  /// Step 3 alone: recommends from an already-computed frontier of
  /// `problem` (which must hold the resolved objectives the frontier was
  /// computed with). This is the serving layer's cache-hit path; it touches
  /// no solver state and is safe to call concurrently. The returned
  /// `seconds` covers only this call.
  ///
  /// `ranked`, when non-null, supplies the conservative (uncertainty-
  /// adjusted) companion of `frontier.frontier` -- the exact vector
  /// ConservativeRank returns for it -- and skips the MC-dropout re-rank.
  /// The serving layer memoizes that companion per cache entry so warm
  /// repeats do not re-pay `mc_samples` forward passes per frontier point.
  StatusOr<UdaoRecommendation> Recommend(
      const UdaoRequest& request, const MooProblem& problem,
      const PfResult& frontier,
      const std::vector<MooPoint>* ranked = nullptr) const;

  /// The conservative re-ranking Recommend applies before choosing: each
  /// point's objectives replaced by F~ = E[F] + uncertainty_alpha * std[F]
  /// (batched MC-dropout, one PredictWithUncertaintyBatch per objective).
  /// With uncertainty_alpha == 0 (or an empty input) this is the identity.
  /// Deterministic -- the per-point seed contract makes it a pure function
  /// of (problem, points) -- which is what makes it cacheable.
  std::vector<MooPoint> ConservativeRank(
      const MooProblem& problem, const std::vector<MooPoint>& points) const;

  const UdaoOptions& options() const { return options_; }

 private:
  ModelServer* server_;
  UdaoOptions options_;
  /// Lives as long as the optimizer; options_.pf.mogd.pool points here
  /// unless the caller supplied a pool of their own.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace udao

#endif  // UDAO_TUNING_UDAO_H_
