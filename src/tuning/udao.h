#ifndef UDAO_TUNING_UDAO_H_
#define UDAO_TUNING_UDAO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/model_server.h"
#include "moo/progressive_frontier.h"
#include "moo/recommend.h"
#include "spark/conf.h"

namespace udao {

/// One optimization request (Fig. 1(a)): a workload (standing in for its
/// dataflow program, whose models live in the model server), the chosen
/// objectives, optional value constraints, and optional preference weights.
struct UdaoRequest {
  std::string workload_id;
  const ParamSpace* space = nullptr;

  struct Objective {
    /// Model-server objective name (see workload/trace_gen.h constants).
    std::string name;
    bool minimize = true;
    /// Optional value constraints F_i in [lower, upper], natural orientation.
    double lower = -MooObjective::kInf;
    double upper = MooObjective::kInf;
    /// Optional explicit model (e.g. a hand-crafted regression function);
    /// when null the optimizer resolves the model itself: cost-in-cores is
    /// served analytically (it is a certain function of the knobs), other
    /// objectives come from the model server with a non-negativity floor.
    std::shared_ptr<const ObjectiveModel> model;
  };
  std::vector<Objective> objectives;

  /// External (application) preference weights, one per objective; empty
  /// means uniform. They need not be normalized.
  Vector preference_weights;
};

/// The optimizer's answer: a configuration plus the frontier that justified
/// it.
struct UdaoRecommendation {
  Vector conf_raw;               ///< Recommended raw knob values.
  Vector conf_encoded;           ///< Same point, encoded.
  Vector predicted_objectives;   ///< Model predictions, natural orientation.
  PfResult frontier;             ///< The Pareto frontier used.
  Vector weights_used;           ///< Final (combined) WUN weights.
  double seconds = 0;            ///< End-to-end optimization time.
};

/// Optimizer policy.
struct UdaoOptions {
  PfConfig pf = [] {
    PfConfig cfg;
    cfg.parallel = true;  // PF-AP is the production default (Section IV-C)
    return cfg;
  }();
  /// Pareto points requested from PF before recommending.
  int frontier_points = 20;
  /// Workload-aware WUN: fold expert internal weights (based on the
  /// workload's default-configuration latency) into the preference weights
  /// for 2D latency-vs-cost problems (Section V "Recommendation").
  bool workload_aware = true;
  /// Model-uncertainty guard (Section IV-B.3): frontier points are re-ranked
  /// for recommendation using conservative estimates F~ = E[F] + alpha
  /// std[F], so configurations whose appeal rests on confident-looking holes
  /// in a sparsely-trained model lose to well-supported ones. Applied only
  /// at the (cheap) recommendation stage; 0 disables it.
  double uncertainty_alpha = 1.0;
};

/// UDAO: the Spark-based Unified Data Analytics Optimizer (Fig. 1(a)).
///
/// Given a request, it pulls the workload's latest objective models from the
/// model server, computes a Pareto frontier with the Progressive Frontier
/// algorithm, and recommends the configuration that best explores the
/// trade-offs under the application's preferences (Weighted Utopia Nearest).
///
/// Model training happens elsewhere (ModelServer + workload/trace_gen.h);
/// this hot path only reads the most recent models, which is what keeps
/// recommendations within seconds.
class Udao {
 public:
  /// `server` owns the models; the optimizer refreshes them lazily on use.
  Udao(ModelServer* server, UdaoOptions options = UdaoOptions());

  /// Handles one request end to end. NotFound when the workload has no
  /// traces yet for some requested objective -- callers should run the
  /// default configuration once and retry after ingestion.
  StatusOr<UdaoRecommendation> Optimize(const UdaoRequest& request);

  const UdaoOptions& options() const { return options_; }

 private:
  ModelServer* server_;
  UdaoOptions options_;
};

}  // namespace udao

#endif  // UDAO_TUNING_UDAO_H_
