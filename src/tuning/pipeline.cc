#include "tuning/pipeline.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "moo/recommend.h"

namespace udao {

PipelineOptimizer::PipelineOptimizer(PipelineOptions options)
    : options_(options) {
  UDAO_CHECK_GT(options_.points_per_stage, 0);
  UDAO_CHECK_GT(options_.max_points, 1);
  if (options_.pf.mogd.pool == nullptr && options_.solver_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.solver_threads);
    options_.pf.mogd.pool = pool_.get();
  }
}

std::vector<PipelinePoint> PipelineOptimizer::Compose(
    const std::vector<PipelinePoint>& a, const std::vector<PipelinePoint>& b,
    int max_points) {
  // Pareto filter of pairwise sums, tracking the decomposition.
  std::vector<MooPoint> sums;
  sums.reserve(a.size() * b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      UDAO_CHECK_EQ(a[i].objectives.size(), b[j].objectives.size());
      Vector sum(a[i].objectives.size());
      for (size_t d = 0; d < sum.size(); ++d) {
        sum[d] = a[i].objectives[d] + b[j].objectives[d];
      }
      // Stash the origin index pair in conf_encoded to survive filtering.
      sums.push_back(MooPoint{std::move(sum),
                              {static_cast<double>(i),
                               static_cast<double>(j)}});
    }
  }
  std::vector<MooPoint> filtered = ParetoFilter(std::move(sums));

  // Thin by even spacing along the first objective when oversized; the
  // extremes are always kept.
  if (static_cast<int>(filtered.size()) > max_points) {
    std::sort(filtered.begin(), filtered.end(),
              [](const MooPoint& x, const MooPoint& y) {
                return x.objectives[0] < y.objectives[0];
              });
    std::vector<MooPoint> thinned;
    const double stride =
        static_cast<double>(filtered.size() - 1) / (max_points - 1);
    for (int t = 0; t < max_points; ++t) {
      thinned.push_back(filtered[static_cast<size_t>(t * stride)]);
    }
    filtered = std::move(thinned);
  }

  std::vector<PipelinePoint> out;
  out.reserve(filtered.size());
  for (const MooPoint& p : filtered) {
    const size_t i = static_cast<size_t>(p.conf_encoded[0]);
    const size_t j = static_cast<size_t>(p.conf_encoded[1]);
    PipelinePoint point;
    point.objectives = p.objectives;
    point.stage_confs_encoded = a[i].stage_confs_encoded;
    point.stage_confs_encoded.insert(point.stage_confs_encoded.end(),
                                     b[j].stage_confs_encoded.begin(),
                                     b[j].stage_confs_encoded.end());
    out.push_back(std::move(point));
  }
  return out;
}

StatusOr<PipelineResult> PipelineOptimizer::Optimize(
    const std::vector<PipelineStage>& stages) const {
  if (stages.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  const int k = stages.front().problem->NumObjectives();
  for (const PipelineStage& stage : stages) {
    if (stage.problem == nullptr) {
      return Status::InvalidArgument("stage " + stage.name + " has no problem");
    }
    if (stage.problem->NumObjectives() != k) {
      return Status::InvalidArgument(
          "all stages must share the same objective list");
    }
  }

  PipelineResult result;
  std::vector<PipelinePoint> composed;
  for (const PipelineStage& stage : stages) {
    ProgressiveFrontier pf(stage.problem, options_.pf);
    const PfResult& stage_result = pf.Run(options_.points_per_stage);
    if (stage_result.frontier.empty()) {
      return Status::FailedPrecondition("stage " + stage.name +
                                        " produced an empty frontier");
    }
    result.stage_frontier_sizes.push_back(
        static_cast<int>(stage_result.frontier.size()));
    std::vector<PipelinePoint> stage_points;
    stage_points.reserve(stage_result.frontier.size());
    for (const MooPoint& p : stage_result.frontier) {
      Vector objectives = p.objectives;
      if (options_.uncertainty_alpha > 0.0) {
        for (int d = 0; d < k; ++d) {
          double mean = 0.0;
          double stddev = 0.0;
          stage.problem->EvaluateWithUncertainty(d, p.conf_encoded, &mean,
                                                 &stddev);
          objectives[d] = mean + options_.uncertainty_alpha * stddev;
        }
      }
      stage_points.push_back(
          PipelinePoint{std::move(objectives), {p.conf_encoded}});
    }
    composed = composed.empty()
                   ? std::move(stage_points)
                   : Compose(composed, stage_points, options_.max_points);
  }

  result.utopia.assign(k, std::numeric_limits<double>::infinity());
  result.nadir.assign(k, -std::numeric_limits<double>::infinity());
  for (const PipelinePoint& p : composed) {
    for (int d = 0; d < k; ++d) {
      result.utopia[d] = std::min(result.utopia[d], p.objectives[d]);
      result.nadir[d] = std::max(result.nadir[d], p.objectives[d]);
    }
  }
  for (int d = 0; d < k; ++d) {
    if (result.nadir[d] - result.utopia[d] < 1e-12) {
      result.nadir[d] = result.utopia[d] + 1e-12;
    }
  }
  result.frontier = std::move(composed);
  return result;
}

std::optional<PipelinePoint> PipelineOptimizer::Recommend(
    const PipelineResult& result, const Vector& weights) {
  if (result.frontier.empty()) return std::nullopt;
  std::vector<MooPoint> points;
  points.reserve(result.frontier.size());
  for (size_t i = 0; i < result.frontier.size(); ++i) {
    points.push_back(MooPoint{result.frontier[i].objectives,
                              {static_cast<double>(i)}});
  }
  std::optional<MooPoint> best =
      WeightedUtopiaNearest(points, result.utopia, result.nadir, weights);
  if (!best.has_value()) return std::nullopt;
  return result.frontier[static_cast<size_t>(best->conf_encoded[0])];
}

}  // namespace udao
