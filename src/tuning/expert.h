#ifndef UDAO_TUNING_EXPERT_H_
#define UDAO_TUNING_EXPERT_H_

#include "common/matrix.h"
#include "spark/dataflow.h"
#include "spark/streaming.h"

namespace udao {

/// Rule-based "expert engineer" configurations, the manual baseline of the
/// paper's Expt 5 (performance improvement rate is measured against "a manual
/// configuration chosen by an expert engineer"). The rules follow common
/// Spark sizing folklore: scale executors with input size, 4-5 cores per
/// executor, parallelism at 2-3x the core count, executor memory sized to
/// the per-core data share, compression on.
Vector ExpertBatchConfig(const Dataflow& flow);

/// Streaming counterpart: sized for the expected input rate.
Vector ExpertStreamConfig(const StreamWorkloadProfile& profile,
                          double input_rate_krps);

}  // namespace udao

#endif  // UDAO_TUNING_EXPERT_H_
